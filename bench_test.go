// Benchmarks regenerating every table and figure of the paper's evaluation
// (run with `go test -bench=. -benchmem`), plus the performance ablations of
// DESIGN.md: per-NLP-layer cost, serial vs parallel Stage I and Stage II,
// and document-size scaling.
package repro_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/depparse"
	"repro/internal/doc"
	"repro/internal/experiments"
	"repro/internal/nlp"
	"repro/internal/nvvp"
	"repro/internal/obs"
	"repro/internal/postag"
	"repro/internal/selectors"
	"repro/internal/service"
	"repro/internal/srl"
	"repro/internal/study"
	"repro/internal/textproc"
	"repro/internal/vsm"
)

var (
	setupOnce   sync.Once
	cudaGuide   *corpus.Guide
	cudaAdvisor *core.Advisor
)

func setup(b *testing.B) (*corpus.Guide, *core.Advisor) {
	b.Helper()
	setupOnce.Do(func() {
		cudaGuide, cudaAdvisor = experiments.BuildAdvisor(corpus.CUDA)
	})
	return cudaGuide, cudaAdvisor
}

// --- one benchmark per table / figure -------------------------------------

func BenchmarkTable3_ReportExtraction(b *testing.B) {
	text, err := nvvp.Synthesize("norm")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nvvp.Parse(text); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4_QueryAnswer(b *testing.B) {
	_, adv := setup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adv.Query("reduce instruction and memory latency")
	}
}

func BenchmarkTable5_UserStudy(b *testing.B) {
	_, adv := setup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := study.Run(adv, study.DefaultParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6_AnswerQuality(b *testing.B) {
	g, adv := setup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table6(g, adv)
	}
}

func BenchmarkTable7_Compression(b *testing.B) {
	// full Stage-I pipeline over the 558-sentence Xeon guide per iteration
	g := corpus.Generate(corpus.XeonPhi, experiments.Seed)
	fw := core.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adv := fw.BuildFromSentences(g.Doc, g.Sentences)
		_ = adv.CompressionRatio()
	}
}

func BenchmarkTable8_Recognition(b *testing.B) {
	g := corpus.Generate(corpus.CUDA, experiments.Seed)
	texts, _ := g.EvalSentences()
	rec := selectors.Default()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range texts {
			rec.Classify(s)
		}
	}
}

func BenchmarkFig2_DependencyParse(b *testing.B) {
	sentences := [][]string{
		textproc.Words("Thus, a developer may prefer using buffers instead of images if no sampling operation is needed."),
		textproc.Words("This synchronization guarantee can often be leveraged to avoid explicit clWaitForEvents() calls between command submissions."),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		depparse.ParseWords(sentences[i%2])
	}
}

func BenchmarkFig3_SRL(b *testing.B) {
	tree := depparse.ParseText("The first step in maximizing overall memory throughput for the application is to minimize data transfers with low bandwidth.")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srl.Label(tree)
	}
}

func BenchmarkFig5_KernelModel(b *testing.B) {
	_, adv := setup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := study.SurfacedOptimizations(adv); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6_WebRuleList(b *testing.B) {
	_, adv := setup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = adv.Rules()
		_ = adv.CompressionRatio()
	}
}

// --- NLP layer cost ablation ----------------------------------------------

var layerSentence = "The number of threads per block should be chosen as a multiple of the warp size to avoid wasting computing resources with under-populated warps as much as possible."

func BenchmarkLayer1_Tokenize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		textproc.Words(layerSentence)
	}
}

func BenchmarkLayer2_POSTag(b *testing.B) {
	words := textproc.Words(layerSentence)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postag.Tags(words)
	}
}

func BenchmarkLayer3_DependencyParse(b *testing.B) {
	words := textproc.Words(layerSentence)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		depparse.ParseWords(words)
	}
}

func BenchmarkLayer4_SRL(b *testing.B) {
	tree := depparse.ParseText(layerSentence)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srl.Label(tree)
	}
}

func BenchmarkLayer5_Selectors(b *testing.B) {
	rec := selectors.Default()
	tree := depparse.ParseText(layerSentence)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.ClassifyParsed(tree)
	}
}

// --- parallelism ablations -------------------------------------------------

func benchStageI(b *testing.B, workers int) {
	g := corpus.GenerateSized(corpus.CUDA, 400, 0.2, 11)
	fw := core.New(core.WithParallelism(workers))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fw.BuildFromSentences(g.Doc, g.Sentences)
	}
}

func BenchmarkStageI_Serial(b *testing.B)   { benchStageI(b, 1) }
func BenchmarkStageI_Parallel(b *testing.B) { benchStageI(b, 0) } // GOMAXPROCS

func BenchmarkStageII_QuerySerial(b *testing.B) {
	g, _ := setup(b)
	ix := vsm.Build(g.Texts())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.QuerySerial("minimize divergent warps caused by control flow")
	}
}

func BenchmarkStageII_QueryParallel(b *testing.B) {
	g, _ := setup(b)
	ix := vsm.Build(g.Texts())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.QueryAll("minimize divergent warps caused by control flow")
	}
}

// --- retrieval-weighting ablation -------------------------------------------

func BenchmarkRanker_TFIDF(b *testing.B) {
	g, _ := setup(b)
	ix := vsm.Build(g.Texts())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Query("minimize data transfers with low bandwidth", vsm.DefaultThreshold)
	}
}

func BenchmarkRanker_BM25(b *testing.B) {
	g, _ := setup(b)
	ix := vsm.BuildBM25(g.Texts())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.TopK("minimize data transfers with low bandwidth", 25)
	}
}

// --- serving layer -----------------------------------------------------------

func newBenchService(b *testing.B) *service.Service {
	_, adv := setup(b)
	reg := service.NewRegistry()
	reg.Add("cuda", adv)
	return service.New(reg, service.Options{
		CacheSize:   8192,
		MaxInFlight: 64,
		Timeout:     30 * time.Second,
	})
}

// BenchmarkServiceQuery contrasts a cache miss (every query unique, full
// Stage-II retrieval) with a cache hit (same query repeated); the warm path
// should be >= 10x cheaper — the whole point of the serving layer.
func BenchmarkServiceQuery(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		svc := newBenchService(b)
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := fmt.Sprintf("reduce instruction and memory latency variant %d", i)
			if _, _, err := svc.CachedQuery(ctx, "cuda", q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		svc := newBenchService(b)
		ctx := context.Background()
		const q = "reduce instruction and memory latency"
		if _, _, err := svc.CachedQuery(ctx, "cuda", q); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, hit, err := svc.CachedQuery(ctx, "cuda", q); err != nil || !hit {
				b.Fatalf("hit=%v err=%v", hit, err)
			}
		}
	})
	// the warm path with every request's span tree recorded (sampling 1.0)
	// — the worst-case tracing cost, for the EXPERIMENTS.md overhead table
	b.Run("warm-traced", func(b *testing.B) {
		svc := newBenchService(b)
		tracer := obs.NewTracer(1.0, obs.NewTraceStore(obs.DefaultTraceCapacity))
		const q = "reduce instruction and memory latency"
		if _, _, err := svc.CachedQuery(context.Background(), "cuda", q); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx, root := tracer.Start(context.Background(), "bench.query")
			if _, hit, err := svc.CachedQuery(ctx, "cuda", q); err != nil || !hit {
				b.Fatalf("hit=%v err=%v", hit, err)
			}
			root.Finish()
		}
	})
}

// BenchmarkBatchRetrieval contrasts the two ways a client gets N answers
// out of the service: N sequential /v1/{advisor}/query round trips, each
// paying HTTP dispatch, admission, tracing, and a JSON response of its own,
// versus one POST /v1/batch that amortizes all of that across a worker
// pool. Every iteration uses fresh query texts so both paths stay on the
// cache-miss path being measured.
func BenchmarkBatchRetrieval(b *testing.B) {
	for _, n := range []int{8, 32} {
		b.Run(fmt.Sprintf("sequential-%d", n), func(b *testing.B) {
			svc := newBenchService(b)
			ts := httptest.NewServer(svc)
			defer ts.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < n; j++ {
					q := url.QueryEscape(fmt.Sprintf("memory latency seq %d-%d", i, j))
					resp, err := http.Get(ts.URL + "/v1/cuda/query?q=" + q)
					if err != nil {
						b.Fatal(err)
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						b.Fatalf("status %d", resp.StatusCode)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("batch-%d", n), func(b *testing.B) {
			svc := newBenchService(b)
			ts := httptest.NewServer(svc)
			defer ts.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var sb strings.Builder
				sb.WriteString(`{"queries":[`)
				for j := 0; j < n; j++ {
					if j > 0 {
						sb.WriteByte(',')
					}
					fmt.Fprintf(&sb, `{"advisor":"cuda","query":"memory latency batch %d-%d"}`, i, j)
				}
				sb.WriteString(`]}`)
				resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(sb.String()))
				if err != nil {
					b.Fatal(err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("status %d", resp.StatusCode)
				}
			}
		})
	}
}

// BenchmarkFederatedAsk measures one cross-advisor fan-out (three advisors,
// cold then warm) — the /v1/ask hot path.
func BenchmarkFederatedAsk(b *testing.B) {
	_, adv := setup(b)
	reg := service.NewRegistry()
	reg.Add("cuda", adv)
	for i, r := range []corpus.Register{corpus.OpenCL, corpus.XeonPhi} {
		g := corpus.GenerateSized(r, 300, 0.2, int64(23+i))
		reg.Add([]string{"opencl", "xeon"}[i], core.New().BuildFromSentences(g.Doc, g.Sentences))
	}
	svc := service.New(reg, service.Options{CacheSize: 8192, Timeout: 30 * time.Second})
	ctx := context.Background()
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := fmt.Sprintf("overlap transfers with execution variant %d", i)
			if ans, errs := svc.Ask(ctx, "", q, 3); len(errs) != 0 {
				b.Fatalf("%v (%d answers)", errs, len(ans))
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		const q = "overlap transfers with execution"
		svc.Ask(ctx, "", q, 3)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, errs := svc.Ask(ctx, "", q, 3); len(errs) != 0 {
				b.Fatal(errs)
			}
		}
	})
}

// --- Stage-II index layout: inverted postings vs dense scan ------------------

func BenchmarkVSMInvertedIndex(b *testing.B) {
	g, _ := setup(b)
	ix := vsm.Build(g.Texts())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Query("minimize divergent warps caused by control flow", vsm.DefaultThreshold)
	}
}

func BenchmarkVSMDenseScan(b *testing.B) {
	g, _ := setup(b)
	ix := vsm.Build(g.Texts())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.QueryDense("minimize divergent warps caused by control flow", vsm.DefaultThreshold)
	}
}

// --- maintenance workflows ---------------------------------------------------

func BenchmarkDiffRules(b *testing.B) {
	g1 := corpus.GenerateSized(corpus.CUDA, 400, 0.2, 71)
	g2 := corpus.GenerateSized(corpus.CUDA, 400, 0.2, 72)
	fw := core.New()
	a1 := fw.BuildFromSentences(g1.Doc, g1.Sentences)
	a2 := fw.BuildFromSentences(g2.Doc, g2.Sentences)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.DiffRules(a1, a2)
	}
}

// --- build pipeline (trajectory benchmark) ---------------------------------

// BenchmarkBuildAdvisor150 is the fixed-size build benchmark tracked across
// PRs: full advisor synthesis (Stage I + index) over a 150-sentence guide.
func BenchmarkBuildAdvisor150(b *testing.B) {
	g := corpus.GenerateSized(corpus.CUDA, 150, 0.2, 17)
	fw := core.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fw.BuildFromSentences(g.Doc, g.Sentences)
	}
}

// BenchmarkAnnotateOnce measures what the shared-annotation pipeline buys:
// "recompute" runs classification and indexing the pre-refactor way, each
// stage re-deriving tokens/stems/trees from the raw strings; "shared"
// annotates every sentence once and feeds the same annotation to both
// stages. Same corpus, same outputs — only the redundant NLP work differs.
func BenchmarkAnnotateOnce(b *testing.B) {
	g := corpus.GenerateSized(corpus.CUDA, 150, 0.2, 17)
	texts := g.Texts()
	rec := selectors.Default()

	b.Run("recompute", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, s := range texts {
				rec.ClassifyParsed(depparse.ParseText(s))
			}
			vsm.Build(texts)
		}
	})
	b.Run("shared", func(b *testing.B) {
		ator := nlp.NewAnnotator(nlp.WithParallelism(1)) // serial, like recompute
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			anns := ator.AnnotateAll(texts)
			terms := make([][]string, len(anns))
			for j, ann := range anns {
				rec.ClassifyAnnotated(ann)
				terms[j] = ann.Terms()
			}
			vsm.BuildFromTerms(terms)
		}
	})
}

// --- sharded retrieval scaling ----------------------------------------------

// BenchmarkShardedQuery measures Stage-II fan-out/merge cost across shard
// counts and corpus sizes (tracked across PRs). The corpora come from the
// same seeded generator corpusgen exposes, so the numbers are reproducible
// from the (register, size, frac, seed) tuple. shards=1 uses the monolithic
// Index — the baseline the sharded layouts are judged against; scores are
// bit-identical at every shard count, so this benchmark isolates pure
// orchestration overhead (goroutine fan-out, k-way merge) against whatever
// parallel speedup the host's cores provide.
func BenchmarkShardedQuery(b *testing.B) {
	const query = "minimize divergent warps caused by control flow"
	for _, nDocs := range []int{1000, 10000} {
		g := corpus.GenerateSized(corpus.CUDA, nDocs, 0.2, 19)
		texts := g.Texts()
		termLists := make([][]string, len(texts))
		ids := make([]doc.SentenceID, len(texts))
		for i, s := range texts {
			termLists[i] = textproc.NormalizeTerms(s)
			ids[i] = doc.SentenceID(fmt.Sprintf("bench-%d-%d", nDocs, i))
		}
		for _, nShards := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("docs=%d/shards=%d", nDocs, nShards), func(b *testing.B) {
				var ix interface{ QueryAll(string) []float64 }
				if nShards == 1 {
					ix = vsm.BuildFromTerms(termLists)
				} else {
					ix = vsm.BuildShardedFromTerms(termLists, ids, nShards)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ix.QueryAll(query)
				}
			})
		}
	}
}

// --- pruned top-k retrieval --------------------------------------------------

// BenchmarkPrunedTopK contrasts MaxScore-pruned top-k selection against the
// exhaustive score-everything baseline it is bit-identical to (tracked across
// PRs). Same index, same query, same k — the only difference is the
// WithPruning toggle, so the ratio is the pure win from impact-ordered
// candidate elimination. k spans the paper's serving shape (10), the
// degenerate best-answer case (1), and a k wide enough that pruning has
// little room to skip (100).
func BenchmarkPrunedTopK(b *testing.B) {
	const query = "minimize divergent warps caused by control flow"
	for _, nDocs := range []int{1000, 10000} {
		g := corpus.GenerateSized(corpus.CUDA, nDocs, 0.2, 19)
		texts := g.Texts()
		termLists := make([][]string, len(texts))
		for i, s := range texts {
			termLists[i] = textproc.NormalizeTerms(s)
		}
		ix := vsm.BuildFromTerms(termLists)
		for _, k := range []int{1, 10, 100} {
			for _, mode := range []string{"pruned", "exhaustive"} {
				b.Run(fmt.Sprintf("docs=%d/k=%d/%s", nDocs, k, mode), func(b *testing.B) {
					ctx := vsm.WithPruning(context.Background(), mode == "pruned")
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						ix.TopKCtx(ctx, query, k, vsm.DefaultThreshold)
					}
				})
			}
		}
	}
}

// --- document-size scaling -------------------------------------------------

func benchScaling(b *testing.B, n int) {
	g := corpus.GenerateSized(corpus.CUDA, n, 0.2, 13)
	fw := core.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fw.BuildFromSentences(g.Doc, g.Sentences)
	}
}

func BenchmarkScaling_200Sentences(b *testing.B)  { benchScaling(b, 200) }
func BenchmarkScaling_800Sentences(b *testing.B)  { benchScaling(b, 800) }
func BenchmarkScaling_2000Sentences(b *testing.B) { benchScaling(b, 2000) }
