package main

import (
	"strings"
	"testing"

	"repro/internal/depparse"
)

func TestConLLFormat(t *testing.T) {
	tree := depparse.ParseText("Avoid bank conflicts.")
	out := ConLL(tree)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "Avoid") || !strings.Contains(lines[0], "root") {
		t.Errorf("root row: %q", lines[0])
	}
	// lemma column present
	if !strings.Contains(lines[2], "conflict") {
		t.Errorf("lemma row: %q", lines[2])
	}
	// punctuation row shows head 0
	if !strings.Contains(lines[3], "punct") {
		t.Errorf("punct row: %q", lines[3])
	}
}

func TestConLLHeadIndices(t *testing.T) {
	tree := depparse.ParseText("The compiler unrolls loops.")
	out := ConLL(tree)
	// "The" (token 1) heads to "compiler" (token 2)
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[0], "  2  det") {
		t.Errorf("det head column wrong: %q", lines[0])
	}
}

func TestClip(t *testing.T) {
	if got := clip("short", 18); got != "short" {
		t.Errorf("%q", got)
	}
	long := clip("averyverylongtokenthatkeepsgoing", 10)
	if len(long) > 12 { // 9 bytes + ellipsis rune
		t.Errorf("clip too long: %q", long)
	}
}

func TestIndent(t *testing.T) {
	if got := indent("a\nb\n"); got != "  a\n  b\n" {
		t.Errorf("%q", got)
	}
}
