// Command egeria-parse prints the full NLP analysis of sentences — tokens,
// POS tags, the typed dependency tree (in both relation notation and a
// CoNLL-style table), semantic role frames, and the selector decision. It is
// the debugging surface for the reimplemented NLP stack, playing the role of
// the corenlp.run and SRL demo pages the paper's figures were produced with.
//
// Usage:
//
//	egeria-parse "Thus, a developer may prefer using buffers."
//	echo "Avoid bank conflicts." | egeria-parse
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/depparse"
	"repro/internal/selectors"
	"repro/internal/srl"
	"repro/internal/textproc"
)

func main() {
	log.SetFlags(0)
	conll := flag.Bool("conll", false, "print only the CoNLL-style table")
	flag.Parse()

	if args := flag.Args(); len(args) > 0 {
		analyze(strings.Join(args, " "), *conll)
		return
	}
	scanner := bufio.NewScanner(os.Stdin)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		analyze(line, *conll)
	}
}

func analyze(text string, conllOnly bool) {
	for _, sentence := range textproc.SentenceStrings(text) {
		tree := depparse.ParseText(sentence)
		if conllOnly {
			fmt.Print(ConLL(tree))
			fmt.Println()
			continue
		}
		fmt.Printf("== %s\n\n", sentence)
		fmt.Print(ConLL(tree))

		fmt.Println("\nrelations:")
		fmt.Print(indent(tree.String()))

		frames := srl.Label(tree)
		if len(frames) > 0 {
			fmt.Println("\nsemantic frames:")
			for _, f := range frames {
				fmt.Printf("  %s.01:\n", f.Lemma)
				for _, a := range f.Args {
					fmt.Printf("    %-7s %s\n", a.Role, srl.SpanText(tree, a.Start, a.End))
				}
			}
		}

		evidence := selectors.Default().ExplainParsed(tree)
		if len(evidence) > 0 {
			fmt.Println("\nselector decision: ADVISING")
			for _, ev := range evidence {
				fmt.Printf("  %-28s %s\n", ev.Selector, ev.Detail)
			}
			fmt.Println()
		} else {
			fmt.Printf("\nselector decision: not advising\n\n")
		}
	}
}

// ConLL renders the tree as a CoNLL-style table:
// index, form, lemma, tag, head index (0 = root), relation.
func ConLL(tree *depparse.Tree) string {
	var b strings.Builder
	for i, w := range tree.Words {
		head := tree.HeadOf(i)
		rel := string(tree.RelationTo(i))
		headCol := head + 1
		switch head {
		case -1:
			rel = "root"
			headCol = 0
		case -2:
			rel = "punct"
			headCol = 0
		}
		fmt.Fprintf(&b, "%3d  %-18s %-18s %-5s %3d  %s\n",
			i+1, clip(w, 18), clip(tree.Lemma(i), 18), tree.Tags[i], headCol, rel)
	}
	return b.String()
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
