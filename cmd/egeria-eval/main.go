// Command egeria-eval regenerates the tables of the paper's evaluation
// section (Tables 3-8), the Fleiss' kappa agreement statistics, and the
// extension ablations (similarity-threshold sweep). Select a single table
// with -table N or print everything with no flags.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/selectors"
	"repro/internal/study"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("egeria-eval: ")
	table := flag.Int("table", 0, "print only this table (3-8); 0 = all")
	ablations := flag.Bool("ablations", false, "also run the extension ablations")
	flag.Parse()

	if *table != 0 && (*table < 3 || *table > 8) {
		fmt.Fprintln(os.Stderr, "unknown table; want 3-8")
		os.Exit(2)
	}
	want := func(n int) bool { return *table == 0 || *table == n }

	var cudaGuide *corpus.Guide
	var cudaAdvisor *core.Advisor
	if want(4) || want(5) || want(6) || *ablations {
		cudaGuide, cudaAdvisor = experiments.BuildAdvisor(corpus.CUDA)
		if *table == 0 {
			fmt.Println(experiments.FormatBuildStats("CUDA", cudaAdvisor))
			fmt.Println()
		}
	}

	if want(3) {
		out, err := experiments.Table3()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}
	if want(4) {
		fmt.Println(experiments.Table4(cudaGuide, cudaAdvisor))
	}
	if want(5) {
		res, out, err := experiments.Table5(cudaAdvisor)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
		fmt.Println(study.Table5CI(res))
	}
	if want(6) {
		fmt.Println(experiments.FormatTable6(experiments.Table6(cudaGuide, cudaAdvisor)))
	}
	if want(7) {
		fmt.Println(experiments.FormatTable7(experiments.Table7()))
	}
	if want(8) {
		for _, reg := range []corpus.Register{corpus.CUDA, corpus.OpenCL, corpus.XeonPhi} {
			fmt.Println(experiments.FormatTable8(reg, experiments.Table8(reg, selectors.DefaultConfig())))
		}
		fmt.Println("Xeon with §4.3 keyword tuning ('have to be', 'user', 'one'):")
		fmt.Println(experiments.FormatTable8(corpus.XeonPhi, experiments.Table8(corpus.XeonPhi, selectors.XeonTunedConfig())))
	}
	if *table == 0 {
		fmt.Println("Fleiss' kappa of the simulated expert raters (paper: > 0.8):")
		kappas := experiments.Kappas()
		for _, guide := range []string{"CUDA", "OpenCL", "Xeon"} {
			fmt.Printf("  %-8s %.3f\n", guide, kappas[guide])
		}
		fmt.Println()
	}
	if *ablations {
		points := experiments.ThresholdSweep(cudaGuide, cudaAdvisor,
			[]float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40})
		fmt.Println(experiments.FormatThresholdSweep(points))
		fmt.Println("Ablation: leave-one-selector-out (CUDA recognition):")
		fmt.Println(experiments.FormatTable8(corpus.CUDA,
			experiments.Table8LeaveOneOut(corpus.CUDA, selectors.DefaultConfig())))
		fmt.Println("Ablation: TextRank summarization baseline (CUDA, same budget):")
		fmt.Println(experiments.FormatTable8(corpus.CUDA,
			experiments.Table8WithSummarizer(corpus.CUDA, selectors.DefaultConfig())))
		fmt.Println(experiments.FormatAttribution(corpus.CUDA,
			experiments.CategoryAttribution(corpus.CUDA, selectors.DefaultConfig())))
		fmt.Println(experiments.FormatRetrievalAblation(
			experiments.RetrievalAblation(cudaGuide, cudaAdvisor)))
		fmt.Println(experiments.FormatBackendAblation(
			experiments.BackendAblation(cudaGuide, cudaAdvisor)))
	}
}
