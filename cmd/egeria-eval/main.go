// Command egeria-eval regenerates the tables of the paper's evaluation
// section (Tables 3-8), the Fleiss' kappa agreement statistics, and the
// extension ablations (similarity-threshold sweep). Select a single table
// with -table N or print everything with no flags.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/selectors"
	"repro/internal/study"
)

// errUsage marks operator mistakes (exit 2) as opposed to runtime failures
// (exit 1).
var errUsage = errors.New("usage")

func main() {
	log.SetFlags(0)
	log.SetPrefix("egeria-eval: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, errUsage) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run is the testable body of the command: flags in, report out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("egeria-eval", flag.ContinueOnError)
	table := fs.Int("table", 0, "print only this table (3-8); 0 = all")
	ablations := fs.Bool("ablations", false, "also run the extension ablations")
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("%w: %v", errUsage, err)
	}

	if *table != 0 && (*table < 3 || *table > 8) {
		return fmt.Errorf("%w: unknown table %d; want 3-8", errUsage, *table)
	}
	want := func(n int) bool { return *table == 0 || *table == n }

	var cudaGuide *corpus.Guide
	var cudaAdvisor *core.Advisor
	if want(4) || want(5) || want(6) || *ablations {
		cudaGuide, cudaAdvisor = experiments.BuildAdvisor(corpus.CUDA)
		if *table == 0 {
			fmt.Fprintln(out, experiments.FormatBuildStats("CUDA", cudaAdvisor))
			fmt.Fprintln(out)
		}
	}

	if want(3) {
		o, err := experiments.Table3()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, o)
	}
	if want(4) {
		fmt.Fprintln(out, experiments.Table4(cudaGuide, cudaAdvisor))
	}
	if want(5) {
		res, o, err := experiments.Table5(cudaAdvisor)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, o)
		fmt.Fprintln(out, study.Table5CI(res))
	}
	if want(6) {
		fmt.Fprintln(out, experiments.FormatTable6(experiments.Table6(cudaGuide, cudaAdvisor)))
	}
	if want(7) {
		fmt.Fprintln(out, experiments.FormatTable7(experiments.Table7()))
	}
	if want(8) {
		for _, reg := range []corpus.Register{corpus.CUDA, corpus.OpenCL, corpus.XeonPhi} {
			fmt.Fprintln(out, experiments.FormatTable8(reg, experiments.Table8(reg, selectors.DefaultConfig())))
		}
		fmt.Fprintln(out, "Xeon with §4.3 keyword tuning ('have to be', 'user', 'one'):")
		fmt.Fprintln(out, experiments.FormatTable8(corpus.XeonPhi, experiments.Table8(corpus.XeonPhi, selectors.XeonTunedConfig())))
	}
	if *table == 0 {
		fmt.Fprintln(out, "Fleiss' kappa of the simulated expert raters (paper: > 0.8):")
		kappas := experiments.Kappas()
		for _, guide := range []string{"CUDA", "OpenCL", "Xeon"} {
			fmt.Fprintf(out, "  %-8s %.3f\n", guide, kappas[guide])
		}
		fmt.Fprintln(out)
	}
	if *ablations {
		points := experiments.ThresholdSweep(cudaGuide, cudaAdvisor,
			[]float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40})
		fmt.Fprintln(out, experiments.FormatThresholdSweep(points))
		fmt.Fprintln(out, "Ablation: leave-one-selector-out (CUDA recognition):")
		fmt.Fprintln(out, experiments.FormatTable8(corpus.CUDA,
			experiments.Table8LeaveOneOut(corpus.CUDA, selectors.DefaultConfig())))
		fmt.Fprintln(out, "Ablation: TextRank summarization baseline (CUDA, same budget):")
		fmt.Fprintln(out, experiments.FormatTable8(corpus.CUDA,
			experiments.Table8WithSummarizer(corpus.CUDA, selectors.DefaultConfig())))
		fmt.Fprintln(out, experiments.FormatAttribution(corpus.CUDA,
			experiments.CategoryAttribution(corpus.CUDA, selectors.DefaultConfig())))
		fmt.Fprintln(out, experiments.FormatRetrievalAblation(
			experiments.RetrievalAblation(cudaGuide, cudaAdvisor)))
		fmt.Fprintln(out, experiments.FormatBackendAblation(
			experiments.BackendAblation(cudaGuide, cudaAdvisor)))
	}
	return nil
}
