package main

import (
	"errors"
	"strings"
	"testing"
)

// The smoke tests stick to the cheap tables (3 and 7 need no advisor build)
// so `go test ./...` stays fast; the expensive tables share the same run()
// plumbing and are exercised by the experiments package's own tests.

func TestRunTable7(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-table", "7"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, wantSub := range []string{"Table 7", "CUDA Guide", "OpenCL Guide", "Xeon Guide", "Ratio"} {
		if !strings.Contains(got, wantSub) {
			t.Errorf("table 7 output missing %q:\n%s", wantSub, got)
		}
	}
	if strings.Contains(got, "Fleiss") {
		t.Error("single-table run printed the kappa summary")
	}
}

func TestRunTable3(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-table", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table 3") || !strings.Contains(out.String(), "norm.cu") {
		t.Errorf("table 3 output:\n%s", out.String())
	}
}

func TestRunRejectsUnknownTable(t *testing.T) {
	for _, bad := range []string{"1", "2", "9", "-4"} {
		var out strings.Builder
		err := run([]string{"-table", bad}, &out)
		if !errors.Is(err, errUsage) {
			t.Errorf("-table %s: err = %v, want errUsage", bad, err)
		}
		if out.Len() != 0 {
			t.Errorf("-table %s: printed output despite usage error", bad)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-no-such-flag"}, &out); !errors.Is(err, errUsage) {
		t.Errorf("bad flag: err = %v, want errUsage", err)
	}
}
