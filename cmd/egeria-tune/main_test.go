package main

import (
	"strings"
	"testing"
)

func TestRunTuneXeon(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-corpus", "xeon", "-max", "1", "-v"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "Tuning the default configuration against the Xeon") {
		t.Errorf("missing header:\n%.300s", got)
	}
	// the tuning report always states the baseline and tuned F-measure
	if !strings.Contains(got, "F") {
		t.Errorf("no F-measure in report:\n%.300s", got)
	}
}

func TestRunTuneCorpusAliases(t *testing.T) {
	// xeonphi is an accepted alias; the run must behave like xeon
	var out strings.Builder
	if err := run([]string{"-corpus", "XeonPhi", "-max", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Xeon") {
		t.Errorf("alias output:\n%.200s", out.String())
	}
}

func TestRunTuneRejectsUnknownCorpus(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-corpus", "fortran"}, &out); err == nil || !strings.Contains(err.Error(), "fortran") {
		t.Errorf("unknown corpus: err = %v", err)
	}
}

func TestRunTuneRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}
