// Command egeria-tune runs the keyword-tuning workflow of the paper's §4.3:
// given a guide with labeled advising sentences, it mines keyword candidates
// from the recognizer's false negatives and greedily extends the keyword
// sets where doing so raises F-measure.
//
// Usage:
//
//	egeria-tune -corpus xeon                # tune against a synthetic guide
//	egeria-tune -corpus xeon -max 4 -v     # more suggestions, show config
//
// Labeled external documents are not supported from the CLI (labels are what
// the synthetic corpora provide); use the tuning package directly for custom
// samples.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro/internal/corpus"
	"repro/internal/selectors"
	"repro/internal/tuning"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("egeria-tune: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the testable body of the command: flags in, tuning report out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("egeria-tune", flag.ContinueOnError)
	corpusReg := fs.String("corpus", "xeon", "synthetic guide to tune against: cuda, opencl, xeon")
	seed := fs.Int64("seed", 1, "corpus generation seed")
	max := fs.Int("max", 5, "maximum keywords to accept")
	verbose := fs.Bool("v", false, "print the resulting keyword sets")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var reg corpus.Register
	switch strings.ToLower(*corpusReg) {
	case "cuda":
		reg = corpus.CUDA
	case "opencl":
		reg = corpus.OpenCL
	case "xeon", "xeonphi":
		reg = corpus.XeonPhi
	default:
		return fmt.Errorf("unknown corpus %q", *corpusReg)
	}

	g := corpus.Generate(reg, *seed)
	texts, labels := g.EvalSentences()
	truth := make([]bool, len(labels))
	for i, l := range labels {
		truth[i] = l.Advising
	}

	fmt.Fprintf(out, "Tuning the default configuration against the %s guide's %d labeled sentences...\n\n",
		reg, len(texts))
	res, err := tuning.Tune(selectors.DefaultConfig(), texts, truth, tuning.Options{MaxSuggestions: *max})
	if err != nil {
		return err
	}
	fmt.Fprint(out, tuning.FormatResult(res))

	if *verbose {
		fmt.Fprintln(out, "\nExtended keyword sets:")
		base := selectors.DefaultConfig()
		printAdded := func(name string, before, after []string) {
			if len(after) > len(before) {
				fmt.Fprintf(out, "  %s: +%v\n", name, after[len(before):])
			}
		}
		printAdded("FLAGGING WORDS", base.FlaggingWords, res.Config.FlaggingWords)
		printAdded("KEY SUBJECTS", base.KeySubjects, res.Config.KeySubjects)
		printAdded("IMPERATIVE WORDS", base.ImperativeWords, res.Config.ImperativeWords)
	}
	return nil
}
