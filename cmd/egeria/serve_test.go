package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/lifecycle"
	"repro/internal/obs"
)

// testSource wraps a small synthetic guide as a lifecycle source, so serve
// tests boot quickly instead of building full-size advisors.
func testSource(t testing.TB, name string, size int, seed int64) lifecycle.Source {
	t.Helper()
	reg, err := corpusRegister(name)
	if err != nil {
		t.Fatal(err)
	}
	return lifecycle.Source{
		Name:        name,
		Fingerprint: func() (string, error) { return fmt.Sprintf("test:%s:%d:%d", name, size, seed), nil },
		Build: func(ctx context.Context) (*core.Advisor, error) {
			g := corpus.GenerateSized(reg, size, 0.3, seed)
			return core.New().BuildFromSentences(g.Doc, g.Sentences), nil
		},
	}
}

// TestServeEndToEnd exercises the full serve stack exactly as `egeria serve`
// assembles it — buildServeHandler on an ephemeral port — under concurrent
// load (run with -race in CI): every /v1/query answer carries a unique trace
// ID, the webui and JSON API share one cache, pprof and /tracez respond, and
// the /metricz request counter equals the number of requests served.
func TestServeEndToEnd(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))

	// a dedicated registry so the reconciliation below counts only this
	// test's requests
	metrics := obs.NewRegistry()
	handler, svc, _, err := buildServeHandler(core.New(), serveConfig{
		primaryName: "cuda",
		seed:        3,
		cacheSize:   64,
		maxInflight: 16,
		timeout:     10 * time.Second,
		traceSample: 1,
		metrics:     metrics,
		sources:     []lifecycle.Source{testSource(t, "cuda", 120, 3)},
	}, logger)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()

	const (
		goroutines = 8
		perG       = 10
	)
	queries := []string{
		"how to reduce global memory latency",
		"avoid divergent warps",
		"improve occupancy",
	}
	var (
		mu       sync.Mutex
		traceIDs = map[string]int{}
	)
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				q := queries[(gi+i)%len(queries)]
				resp, err := http.Get(ts.URL + "/v1/cuda/query?q=" + strings.ReplaceAll(q, " ", "+"))
				if err != nil {
					t.Error(err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("query %q: %d %s", q, resp.StatusCode, body)
					return
				}
				var qr struct {
					TraceID string `json:"trace_id"`
				}
				if err := json.Unmarshal(body, &qr); err != nil {
					t.Error(err)
					return
				}
				if qr.TraceID == "" || qr.TraceID != resp.Header.Get("X-Trace-Id") {
					t.Errorf("trace_id %q vs header %q", qr.TraceID, resp.Header.Get("X-Trace-Id"))
					return
				}
				mu.Lock()
				traceIDs[qr.TraceID]++
				mu.Unlock()
			}
		}(gi)
	}
	wg.Wait()

	served := goroutines * perG
	if len(traceIDs) != served {
		dups := 0
		for _, n := range traceIDs {
			if n > 1 {
				dups++
			}
		}
		t.Errorf("%d distinct trace IDs over %d requests (%d duplicated)", len(traceIDs), served, dups)
	}

	// the webui must answer through the same stack (and the shared cache)
	for _, path := range []string{"/", "/query?q=reduce+memory+latency", "/doc"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("webui %s: %d", path, resp.StatusCode)
		}
		if resp.Header.Get("X-Trace-Id") == "" {
			t.Errorf("webui %s: no X-Trace-Id (tracing middleware not mounted)", path)
		}
	}

	// debug surfaces
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/tracez", "/metricz", "/statsz", "/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s: %d", path, resp.StatusCode)
		}
	}

	// a sampled trace is retrievable by ID
	var anyID string
	for id := range traceIDs {
		anyID = id
		break
	}
	resp, err := http.Get(ts.URL + "/tracez?id=" + anyID)
	if err != nil {
		t.Fatal(err)
	}
	tbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		// the trace store holds 128 traces and we made 80+ requests, so the
		// sampled tree for this ID may have been evicted only if capacity
		// were exceeded — it is not
		t.Fatalf("tracez?id=%s: %d %s", anyID, resp.StatusCode, tbody)
	}
	var tr obs.TraceJSON
	if err := json.Unmarshal(tbody, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Root.Children) == 0 {
		t.Error("sampled trace has no child spans")
	}

	// reconciliation: the service counted exactly the /v1 + health/statsz
	// requests that went through it; its query histogram counted every query
	code, mbody := httpGet(t, ts.URL+"/metricz")
	if code != 200 {
		t.Fatalf("metricz %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(mbody, &snap); err != nil {
		t.Fatal(err)
	}
	qh, ok := snap.Histograms["service_query_latency_micros"]
	if !ok {
		t.Fatal("metricz missing service_query_latency_micros")
	}
	// exactly the JSON queries: webui queries share CachedQuery but only
	// the /v1 handler records query latency
	if qh.Count != int64(served) {
		t.Errorf("query histogram count %d, want %d", qh.Count, served)
	}
	if got := snap.Counters["service_requests_total"]; got < int64(served) {
		t.Errorf("service_requests_total %d < %d queries served", got, served)
	}
	stats := svc.Stats()
	if snap.Counters["service_cache_hits_total"] != stats.CacheHits {
		t.Errorf("metricz hits %d != statsz hits %d", snap.Counters["service_cache_hits_total"], stats.CacheHits)
	}
}

// TestServePruneToggle pins the pruning escape hatch end to end: the
// default (pruned) path, ?prune=on, and ?prune=off must return identical
// bytes after trace-ID scrubbing; an invalid ?prune= value is a 400; and
// the vsm_prune_* counters are visible on /metricz. The config uses the
// process-default metrics registry — the one the vsm pruning counters
// report into — unlike the reconciliation tests, which isolate theirs.
func TestServePruneToggle(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	handler, _, _, err := buildServeHandler(core.New(), serveConfig{
		primaryName: "cuda",
		seed:        3,
		cacheSize:   64,
		maxInflight: 16,
		timeout:     10 * time.Second,
		traceSample: 1,
		sources:     []lifecycle.Source{testSource(t, "cuda", 120, 3)},
	}, logger)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()

	queries := []string{
		"how to reduce global memory latency",
		"avoid divergent warps",
		"improve occupancy with more blocks",
	}
	for _, q := range queries {
		base := ts.URL + "/v1/cuda/query?q=" + strings.ReplaceAll(q, " ", "+")
		code, def := httpGet(t, base)
		if code != 200 {
			t.Fatalf("query %q: %d %s", q, code, def)
		}
		for _, variant := range []string{"&prune=on", "&prune=off", "&prune=false", "&prune=1"} {
			vcode, vbody := httpGet(t, base+variant)
			if vcode != 200 {
				t.Fatalf("query %q%s: %d %s", q, variant, vcode, vbody)
			}
			if scrubTrace(vbody) != scrubTrace(def) {
				t.Fatalf("query %q%s: bytes differ from default path:\n%s\nvs\n%s",
					q, variant, vbody, def)
			}
		}
	}

	if code, body := httpGet(t, ts.URL+"/v1/cuda/query?q=warps&prune=bogus"); code != 400 {
		t.Fatalf("prune=bogus: %d %s, want 400", code, body)
	}

	code, mbody := httpGet(t, ts.URL+"/metricz")
	if code != 200 {
		t.Fatalf("metricz %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(mbody, &snap); err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["vsm_prune_queries_total"]; got < 1 {
		t.Errorf("vsm_prune_queries_total = %d, want >= 1 (pruned path never engaged)", got)
	}
	for _, name := range []string{"vsm_prune_postings_skipped_total", "vsm_prune_fallbacks_total"} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("metricz missing %s", name)
		}
	}
}

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestServeBatchAskBackend exercises the federated serving surface end to
// end as `egeria serve -corpora opencl` assembles it: per-query backend
// selection on /v1/query, the /v1/batch worker pool with per-item trace
// IDs, the cross-advisor /v1/ask merge, and the webui's /ask page.
func TestServeBatchAskBackend(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	handler, svc, _, err := buildServeHandler(core.New(), serveConfig{
		primaryName: "cuda",
		seed:        7,
		cacheSize:   64,
		maxInflight: 16,
		maxBatch:    8,
		timeout:     10 * time.Second,
		metrics:     obs.NewRegistry(),
		sources: []lifecycle.Source{
			testSource(t, "cuda", 120, 7),
			testSource(t, "opencl", 120, 7),
		},
	}, logger)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()

	// per-query backend selection: both backends answer, responses echo the
	// chosen backend, unknown backends are client errors
	for _, backend := range []string{"", "vsm", "bm25"} {
		url := ts.URL + "/v1/cuda/query?q=reduce+memory+latency"
		if backend != "" {
			url += "&backend=" + backend
		}
		code, body := httpGet(t, url)
		if code != 200 {
			t.Fatalf("backend %q: %d %s", backend, code, body)
		}
		var qr struct {
			Backend string `json:"backend"`
		}
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		if qr.Backend != backend {
			t.Errorf("backend %q echoed as %q", backend, qr.Backend)
		}
	}
	if code, _ := httpGet(t, ts.URL+"/v1/cuda/query?q=x&backend=nope"); code != 400 {
		t.Errorf("unknown backend: %d, want 400", code)
	}
	code, body := httpGet(t, ts.URL+"/v1/backends")
	if code != 200 || !strings.Contains(string(body), "bm25") {
		t.Errorf("/v1/backends: %d %s", code, body)
	}

	// batch: mixed advisors and backends, one bad item; per-item trace IDs
	// must be unique and the bad item must not fail the batch
	batch := `{"queries":[
		{"advisor":"cuda","query":"reduce global memory latency"},
		{"advisor":"opencl","query":"work group size"},
		{"advisor":"cuda","query":"avoid divergent warps","backend":"bm25"},
		{"advisor":"nosuch","query":"anything"}
	]}`
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	bbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("batch: %d %s", resp.StatusCode, bbody)
	}
	var br struct {
		Count   int `json:"count"`
		Errors  int `json:"errors"`
		Results []struct {
			Advisor string `json:"advisor"`
			Error   string `json:"error"`
			TraceID string `json:"trace_id"`
		} `json:"results"`
	}
	if err := json.Unmarshal(bbody, &br); err != nil {
		t.Fatal(err)
	}
	if br.Count != 4 || br.Errors != 1 {
		t.Errorf("batch count=%d errors=%d, want 4/1", br.Count, br.Errors)
	}
	ids := map[string]bool{}
	for i, r := range br.Results {
		if r.TraceID == "" || ids[r.TraceID] {
			t.Errorf("item %d: trace ID %q empty or duplicated", i, r.TraceID)
		}
		ids[r.TraceID] = true
	}
	if br.Results[3].Error == "" || br.Results[0].Error != "" {
		t.Errorf("per-item errors misplaced: %+v", br.Results)
	}
	// batch limits: empty and oversized batches are client errors
	for _, bad := range []string{`{"queries":[]}`, `{not json`} {
		resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("bad batch %q: %d, want 400", bad, resp.StatusCode)
		}
	}

	// federated ask: answers must come from more than one advisor when both
	// match, with normalized scores in (0, 1] and advisor attribution
	code, abody := httpGet(t, ts.URL+"/v1/ask?q=memory+performance&k=5")
	if code != 200 {
		t.Fatalf("ask: %d %s", code, abody)
	}
	var ar struct {
		Count   int `json:"count"`
		Answers []struct {
			Advisor string  `json:"advisor"`
			Norm    float64 `json:"norm"`
		} `json:"answers"`
	}
	if err := json.Unmarshal(abody, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Count == 0 {
		t.Fatal("federated ask found nothing")
	}
	advisors := map[string]bool{}
	for i, a := range ar.Answers {
		advisors[a.Advisor] = true
		if a.Norm <= 0 || a.Norm > 1 {
			t.Errorf("answer %d: norm %v out of (0,1]", i, a.Norm)
		}
		if i > 0 && ar.Answers[i-1].Norm < a.Norm {
			t.Errorf("answers not sorted by norm at %d", i)
		}
	}
	if len(advisors) < 2 {
		t.Errorf("federation drew from %d advisor(s), want >= 2 (got %v)", len(advisors), advisors)
	}
	if code, _ := httpGet(t, ts.URL+"/v1/ask"); code != 400 {
		t.Errorf("ask without q: %d, want 400", code)
	}

	// the webui /ask page federates through the same service
	code, hbody := httpGet(t, ts.URL+"/ask?q=memory+performance")
	if code != 200 || !strings.Contains(string(hbody), "opencl") && !strings.Contains(string(hbody), "cuda") {
		t.Errorf("webui /ask: %d (advisor attribution missing)", code)
	}

	stats := svc.Stats()
	if stats.Batches != 1 || stats.BatchItems != 4 {
		t.Errorf("batch stats %d/%d, want 1/4", stats.Batches, stats.BatchItems)
	}
	if stats.Asks < 2 {
		t.Errorf("asks %d, want >= 2 (JSON + webui)", stats.Asks)
	}
}

// TestServeConfigTraceSampleOff: with sampling off (the default), requests
// still get trace IDs but /tracez records nothing.
func TestServeConfigTraceSampleOff(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	handler, _, _, err := buildServeHandler(core.New(), serveConfig{
		primaryName: "cuda",
		cacheSize:   16,
		maxInflight: 4,
		timeout:     5 * time.Second,
		metrics:     obs.NewRegistry(),
		sources:     []lifecycle.Source{testSource(t, "cuda", 60, 5)},
	}, logger)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/cuda/query?q=memory+latency")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	id := resp.Header.Get("X-Trace-Id")
	if id == "" {
		t.Error("no trace ID with sampling off; IDs must be assigned regardless")
	}
	code, body := httpGet(t, ts.URL+"/tracez?id="+id)
	if code != 404 {
		t.Errorf("tracez with sampling off: %d %s, want 404", code, body)
	}
	if code, _ := httpGet(t, ts.URL+fmt.Sprintf("/tracez?n=%d", 5)); code != 200 {
		t.Errorf("tracez listing: %d", code)
	}
}

// TestServeReloadRaceHammer hammers the full stack with concurrent queries
// while advisors are hot-swapped underneath them from two directions at
// once: direct service Reloads (the lifecycle watcher's path) and
// POST /v1/admin/reload (the operator's path). Run under -race in CI. Every
// query must succeed with a unique trace ID, and the lifecycle counters on
// /statsz must show the reloads.
func TestServeReloadRaceHammer(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	var buildSeq int64 // varied per rebuild so swaps carry a real rule diff
	var seqMu sync.Mutex
	src := lifecycle.Source{
		Name:        "cuda",
		Fingerprint: func() (string, error) { return "hammer", nil },
		Build: func(ctx context.Context) (*core.Advisor, error) {
			seqMu.Lock()
			buildSeq++
			seed := buildSeq
			seqMu.Unlock()
			g := corpus.GenerateSized(corpus.CUDA, 80, 0.3, seed)
			return core.New().BuildFromSentences(g.Doc, g.Sentences), nil
		},
	}
	metrics := obs.NewRegistry()
	handler, svc, _, err := buildServeHandler(core.New(), serveConfig{
		primaryName: "cuda",
		cacheSize:   64,
		maxInflight: 32,
		timeout:     10 * time.Second,
		traceSample: 1,
		metrics:     metrics,
		sources:     []lifecycle.Source{src},
	}, logger)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()

	const queryWorkers = 6
	const perWorker = 12
	var (
		mu       sync.Mutex
		traceIDs = map[string]int{}
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// direction 1: background Replace, as the watcher would do it
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(100); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			g := corpus.GenerateSized(corpus.CUDA, 80, 0.3, i)
			svc.Reload("cuda", core.New().BuildFromSentences(g.Doc, g.Sentences))
		}
	}()
	// direction 2: operator reloads through the admin endpoint; 200 and 409
	// (single-flight collision with another reload) are both fine
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Post(ts.URL+"/v1/admin/reload?advisor=cuda", "", nil)
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 && resp.StatusCode != 409 {
				t.Errorf("admin reload: %d", resp.StatusCode)
				return
			}
		}
	}()

	var qwg sync.WaitGroup
	for w := 0; w < queryWorkers; w++ {
		qwg.Add(1)
		go func(w int) {
			defer qwg.Done()
			queries := []string{"reduce memory latency", "improve occupancy", "avoid divergent warps"}
			for i := 0; i < perWorker; i++ {
				q := strings.ReplaceAll(queries[(w+i)%len(queries)], " ", "+")
				resp, err := http.Get(ts.URL + "/v1/cuda/query?q=" + q)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				id := resp.Header.Get("X-Trace-Id")
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("query during reload storm: %d", resp.StatusCode)
					return
				}
				mu.Lock()
				traceIDs[id]++
				mu.Unlock()
			}
		}(w)
	}
	qwg.Wait()
	close(stop)
	wg.Wait()

	if len(traceIDs) != queryWorkers*perWorker {
		t.Errorf("%d distinct trace IDs over %d queries", len(traceIDs), queryWorkers*perWorker)
	}

	// the admin reloads must be visible on /statsz and /metricz, and agree
	var stats struct {
		Lifecycle *lifecycle.State `json:"lifecycle"`
	}
	code, sbody := httpGet(t, ts.URL+"/statsz")
	if code != 200 {
		t.Fatalf("statsz: %d", code)
	}
	if err := json.Unmarshal(sbody, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Lifecycle == nil || stats.Lifecycle.Reloads < 1 {
		t.Fatalf("statsz lifecycle missing or reload-free: %s", sbody)
	}
	code, mbody := httpGet(t, ts.URL+"/metricz")
	if code != 200 {
		t.Fatalf("metricz: %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(mbody, &snap); err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["lifecycle_reloads_total"]; got != stats.Lifecycle.Reloads {
		t.Errorf("metricz reloads %d != statsz reloads %d", got, stats.Lifecycle.Reloads)
	}
}

// TestServeCrashSafetyFallback: a garbage snapshot in -snapshot-dir (as a
// crash mid-write would leave only if the atomic rename protocol were
// violated) must not stop the server from starting — the bad file is
// quarantined, the advisor is cold-built and re-snapshotted, and the event
// is visible on /metricz.
func TestServeCrashSafetyFallback(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "cuda.snap"), []byte("\x00garbage, not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "cuda.json"), []byte(`{"format_version":1,"advisor":"cuda","source_hash":"test:cuda:90:11","checksum":"deadbeef","bytes":26}`), 0o644); err != nil {
		t.Fatal(err)
	}
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	metrics := obs.NewRegistry()
	handler, _, _, err := buildServeHandler(core.New(), serveConfig{
		primaryName: "cuda",
		snapshotDir: dir,
		cacheSize:   16,
		maxInflight: 4,
		timeout:     5 * time.Second,
		metrics:     metrics,
		sources:     []lifecycle.Source{testSource(t, "cuda", 90, 11)},
	}, logger)
	if err != nil {
		t.Fatalf("server failed to start over a corrupt snapshot: %v", err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()

	if code, _ := httpGet(t, ts.URL+"/readyz"); code != 200 {
		t.Errorf("readyz after fallback: %d", code)
	}
	if code, body := httpGet(t, ts.URL+"/v1/cuda/query?q=memory+latency"); code != 200 {
		t.Errorf("query after fallback: %d %s", code, body)
	}
	// the bad snapshot is preserved as evidence, not silently overwritten
	if _, err := os.Stat(filepath.Join(dir, "cuda.snap.bad")); err != nil {
		t.Errorf("corrupt snapshot not quarantined: %v", err)
	}
	// the rebuild re-snapshotted: the next boot warm-starts cleanly
	if _, err := os.Stat(filepath.Join(dir, "cuda.snap")); err != nil {
		t.Errorf("no fresh snapshot after fallback rebuild: %v", err)
	}
	// and the corruption event is visible on /metricz
	code, mbody := httpGet(t, ts.URL+"/metricz")
	if code != 200 {
		t.Fatalf("metricz: %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(mbody, &snap); err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["lifecycle_snapshot_corrupt_total"]; got != 1 {
		t.Errorf("lifecycle_snapshot_corrupt_total = %d, want 1", got)
	}

	// second boot over the repaired store: pure warm start, zero cold builds
	metrics2 := obs.NewRegistry()
	_, svc2, _, err := buildServeHandler(core.New(), serveConfig{
		primaryName: "cuda",
		snapshotDir: dir,
		cacheSize:   16,
		maxInflight: 4,
		timeout:     5 * time.Second,
		metrics:     metrics2,
		sources:     []lifecycle.Source{testSource(t, "cuda", 90, 11)},
	}, logger)
	if err != nil {
		t.Fatal(err)
	}
	lc := svc2.Stats().Lifecycle
	if lc == nil || lc.SnapshotHits != 1 || lc.SnapshotMisses != 0 {
		t.Errorf("second boot not a pure warm start: %+v", lc)
	}
}
