package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/obs"
)

// TestServeEndToEnd exercises the full serve stack exactly as `egeria serve`
// assembles it — buildServeHandler on an ephemeral port — under concurrent
// load (run with -race in CI): every /v1/query answer carries a unique trace
// ID, the webui and JSON API share one cache, pprof and /tracez respond, and
// the /metricz request counter equals the number of requests served.
func TestServeEndToEnd(t *testing.T) {
	g := corpus.GenerateSized(corpus.CUDA, 120, 0.3, 3)
	advisor := core.New().BuildFromSentences(g.Doc, g.Sentences)
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))

	// a dedicated registry so the reconciliation below counts only this
	// test's requests
	metrics := obs.NewRegistry()
	handler, svc, err := buildServeHandler(core.New(), advisor, g.Doc.Title, serveConfig{
		primaryName: "cuda",
		seed:        3,
		cacheSize:   64,
		maxInflight: 16,
		timeout:     10 * time.Second,
		traceSample: 1,
		metrics:     metrics,
	}, logger)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()

	const (
		goroutines = 8
		perG       = 10
	)
	queries := []string{
		"how to reduce global memory latency",
		"avoid divergent warps",
		"improve occupancy",
	}
	var (
		mu       sync.Mutex
		traceIDs = map[string]int{}
	)
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				q := queries[(gi+i)%len(queries)]
				resp, err := http.Get(ts.URL + "/v1/cuda/query?q=" + strings.ReplaceAll(q, " ", "+"))
				if err != nil {
					t.Error(err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("query %q: %d %s", q, resp.StatusCode, body)
					return
				}
				var qr struct {
					TraceID string `json:"trace_id"`
				}
				if err := json.Unmarshal(body, &qr); err != nil {
					t.Error(err)
					return
				}
				if qr.TraceID == "" || qr.TraceID != resp.Header.Get("X-Trace-Id") {
					t.Errorf("trace_id %q vs header %q", qr.TraceID, resp.Header.Get("X-Trace-Id"))
					return
				}
				mu.Lock()
				traceIDs[qr.TraceID]++
				mu.Unlock()
			}
		}(gi)
	}
	wg.Wait()

	served := goroutines * perG
	if len(traceIDs) != served {
		dups := 0
		for _, n := range traceIDs {
			if n > 1 {
				dups++
			}
		}
		t.Errorf("%d distinct trace IDs over %d requests (%d duplicated)", len(traceIDs), served, dups)
	}

	// the webui must answer through the same stack (and the shared cache)
	for _, path := range []string{"/", "/query?q=reduce+memory+latency", "/doc"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("webui %s: %d", path, resp.StatusCode)
		}
		if resp.Header.Get("X-Trace-Id") == "" {
			t.Errorf("webui %s: no X-Trace-Id (tracing middleware not mounted)", path)
		}
	}

	// debug surfaces
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/tracez", "/metricz", "/statsz", "/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s: %d", path, resp.StatusCode)
		}
	}

	// a sampled trace is retrievable by ID
	var anyID string
	for id := range traceIDs {
		anyID = id
		break
	}
	resp, err := http.Get(ts.URL + "/tracez?id=" + anyID)
	if err != nil {
		t.Fatal(err)
	}
	tbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		// the trace store holds 128 traces and we made 80+ requests, so the
		// sampled tree for this ID may have been evicted only if capacity
		// were exceeded — it is not
		t.Fatalf("tracez?id=%s: %d %s", anyID, resp.StatusCode, tbody)
	}
	var tr obs.TraceJSON
	if err := json.Unmarshal(tbody, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Root.Children) == 0 {
		t.Error("sampled trace has no child spans")
	}

	// reconciliation: the service counted exactly the /v1 + health/statsz
	// requests that went through it; its query histogram counted every query
	code, mbody := httpGet(t, ts.URL+"/metricz")
	if code != 200 {
		t.Fatalf("metricz %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(mbody, &snap); err != nil {
		t.Fatal(err)
	}
	qh, ok := snap.Histograms["service_query_latency_micros"]
	if !ok {
		t.Fatal("metricz missing service_query_latency_micros")
	}
	// exactly the JSON queries: webui queries share CachedQuery but only
	// the /v1 handler records query latency
	if qh.Count != int64(served) {
		t.Errorf("query histogram count %d, want %d", qh.Count, served)
	}
	if got := snap.Counters["service_requests_total"]; got < int64(served) {
		t.Errorf("service_requests_total %d < %d queries served", got, served)
	}
	stats := svc.Stats()
	if snap.Counters["service_cache_hits_total"] != stats.CacheHits {
		t.Errorf("metricz hits %d != statsz hits %d", snap.Counters["service_cache_hits_total"], stats.CacheHits)
	}
}

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestServeBatchAskBackend exercises the federated serving surface end to
// end as `egeria serve -corpora opencl` assembles it: per-query backend
// selection on /v1/query, the /v1/batch worker pool with per-item trace
// IDs, the cross-advisor /v1/ask merge, and the webui's /ask page.
func TestServeBatchAskBackend(t *testing.T) {
	g := corpus.GenerateSized(corpus.CUDA, 120, 0.3, 7)
	advisor := core.New().BuildFromSentences(g.Doc, g.Sentences)
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	handler, svc, err := buildServeHandler(core.New(), advisor, g.Doc.Title, serveConfig{
		primaryName: "cuda",
		extra:       []string{"opencl"},
		seed:        7,
		cacheSize:   64,
		maxInflight: 16,
		maxBatch:    8,
		timeout:     10 * time.Second,
		metrics:     obs.NewRegistry(),
	}, logger)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()

	// per-query backend selection: both backends answer, responses echo the
	// chosen backend, unknown backends are client errors
	for _, backend := range []string{"", "vsm", "bm25"} {
		url := ts.URL + "/v1/cuda/query?q=reduce+memory+latency"
		if backend != "" {
			url += "&backend=" + backend
		}
		code, body := httpGet(t, url)
		if code != 200 {
			t.Fatalf("backend %q: %d %s", backend, code, body)
		}
		var qr struct {
			Backend string `json:"backend"`
		}
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		if qr.Backend != backend {
			t.Errorf("backend %q echoed as %q", backend, qr.Backend)
		}
	}
	if code, _ := httpGet(t, ts.URL+"/v1/cuda/query?q=x&backend=nope"); code != 400 {
		t.Errorf("unknown backend: %d, want 400", code)
	}
	code, body := httpGet(t, ts.URL+"/v1/backends")
	if code != 200 || !strings.Contains(string(body), "bm25") {
		t.Errorf("/v1/backends: %d %s", code, body)
	}

	// batch: mixed advisors and backends, one bad item; per-item trace IDs
	// must be unique and the bad item must not fail the batch
	batch := `{"queries":[
		{"advisor":"cuda","query":"reduce global memory latency"},
		{"advisor":"opencl","query":"work group size"},
		{"advisor":"cuda","query":"avoid divergent warps","backend":"bm25"},
		{"advisor":"nosuch","query":"anything"}
	]}`
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	bbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("batch: %d %s", resp.StatusCode, bbody)
	}
	var br struct {
		Count   int `json:"count"`
		Errors  int `json:"errors"`
		Results []struct {
			Advisor string `json:"advisor"`
			Error   string `json:"error"`
			TraceID string `json:"trace_id"`
		} `json:"results"`
	}
	if err := json.Unmarshal(bbody, &br); err != nil {
		t.Fatal(err)
	}
	if br.Count != 4 || br.Errors != 1 {
		t.Errorf("batch count=%d errors=%d, want 4/1", br.Count, br.Errors)
	}
	ids := map[string]bool{}
	for i, r := range br.Results {
		if r.TraceID == "" || ids[r.TraceID] {
			t.Errorf("item %d: trace ID %q empty or duplicated", i, r.TraceID)
		}
		ids[r.TraceID] = true
	}
	if br.Results[3].Error == "" || br.Results[0].Error != "" {
		t.Errorf("per-item errors misplaced: %+v", br.Results)
	}
	// batch limits: empty and oversized batches are client errors
	for _, bad := range []string{`{"queries":[]}`, `{not json`} {
		resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("bad batch %q: %d, want 400", bad, resp.StatusCode)
		}
	}

	// federated ask: answers must come from more than one advisor when both
	// match, with normalized scores in (0, 1] and advisor attribution
	code, abody := httpGet(t, ts.URL+"/v1/ask?q=memory+performance&k=5")
	if code != 200 {
		t.Fatalf("ask: %d %s", code, abody)
	}
	var ar struct {
		Count   int `json:"count"`
		Answers []struct {
			Advisor string  `json:"advisor"`
			Norm    float64 `json:"norm"`
		} `json:"answers"`
	}
	if err := json.Unmarshal(abody, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Count == 0 {
		t.Fatal("federated ask found nothing")
	}
	advisors := map[string]bool{}
	for i, a := range ar.Answers {
		advisors[a.Advisor] = true
		if a.Norm <= 0 || a.Norm > 1 {
			t.Errorf("answer %d: norm %v out of (0,1]", i, a.Norm)
		}
		if i > 0 && ar.Answers[i-1].Norm < a.Norm {
			t.Errorf("answers not sorted by norm at %d", i)
		}
	}
	if len(advisors) < 2 {
		t.Errorf("federation drew from %d advisor(s), want >= 2 (got %v)", len(advisors), advisors)
	}
	if code, _ := httpGet(t, ts.URL+"/v1/ask"); code != 400 {
		t.Errorf("ask without q: %d, want 400", code)
	}

	// the webui /ask page federates through the same service
	code, hbody := httpGet(t, ts.URL+"/ask?q=memory+performance")
	if code != 200 || !strings.Contains(string(hbody), "opencl") && !strings.Contains(string(hbody), "cuda") {
		t.Errorf("webui /ask: %d (advisor attribution missing)", code)
	}

	stats := svc.Stats()
	if stats.Batches != 1 || stats.BatchItems != 4 {
		t.Errorf("batch stats %d/%d, want 1/4", stats.Batches, stats.BatchItems)
	}
	if stats.Asks < 2 {
		t.Errorf("asks %d, want >= 2 (JSON + webui)", stats.Asks)
	}
}

// TestServeConfigTraceSampleOff: with sampling off (the default), requests
// still get trace IDs but /tracez records nothing.
func TestServeConfigTraceSampleOff(t *testing.T) {
	g := corpus.GenerateSized(corpus.CUDA, 60, 0.3, 5)
	advisor := core.New().BuildFromSentences(g.Doc, g.Sentences)
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	handler, _, err := buildServeHandler(core.New(), advisor, "t", serveConfig{
		primaryName: "cuda",
		cacheSize:   16,
		maxInflight: 4,
		timeout:     5 * time.Second,
		metrics:     obs.NewRegistry(),
	}, logger)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/cuda/query?q=memory+latency")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	id := resp.Header.Get("X-Trace-Id")
	if id == "" {
		t.Error("no trace ID with sampling off; IDs must be assigned regardless")
	}
	code, body := httpGet(t, ts.URL+"/tracez?id="+id)
	if code != 404 {
		t.Errorf("tracez with sampling off: %d %s, want 404", code, body)
	}
	if code, _ := httpGet(t, ts.URL+fmt.Sprintf("/tracez?n=%d", 5)); code != 200 {
		t.Errorf("tracez listing: %d", code)
	}
}
