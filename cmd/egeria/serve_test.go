package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/obs"
)

// TestServeEndToEnd exercises the full serve stack exactly as `egeria serve`
// assembles it — buildServeHandler on an ephemeral port — under concurrent
// load (run with -race in CI): every /v1/query answer carries a unique trace
// ID, the webui and JSON API share one cache, pprof and /tracez respond, and
// the /metricz request counter equals the number of requests served.
func TestServeEndToEnd(t *testing.T) {
	g := corpus.GenerateSized(corpus.CUDA, 120, 0.3, 3)
	advisor := core.New().BuildFromSentences(g.Doc, g.Sentences)
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))

	// a dedicated registry so the reconciliation below counts only this
	// test's requests
	metrics := obs.NewRegistry()
	handler, svc, err := buildServeHandler(core.New(), advisor, g.Doc.Title, serveConfig{
		primaryName: "cuda",
		seed:        3,
		cacheSize:   64,
		maxInflight: 16,
		timeout:     10 * time.Second,
		traceSample: 1,
		metrics:     metrics,
	}, logger)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()

	const (
		goroutines = 8
		perG       = 10
	)
	queries := []string{
		"how to reduce global memory latency",
		"avoid divergent warps",
		"improve occupancy",
	}
	var (
		mu       sync.Mutex
		traceIDs = map[string]int{}
	)
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				q := queries[(gi+i)%len(queries)]
				resp, err := http.Get(ts.URL + "/v1/cuda/query?q=" + strings.ReplaceAll(q, " ", "+"))
				if err != nil {
					t.Error(err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("query %q: %d %s", q, resp.StatusCode, body)
					return
				}
				var qr struct {
					TraceID string `json:"trace_id"`
				}
				if err := json.Unmarshal(body, &qr); err != nil {
					t.Error(err)
					return
				}
				if qr.TraceID == "" || qr.TraceID != resp.Header.Get("X-Trace-Id") {
					t.Errorf("trace_id %q vs header %q", qr.TraceID, resp.Header.Get("X-Trace-Id"))
					return
				}
				mu.Lock()
				traceIDs[qr.TraceID]++
				mu.Unlock()
			}
		}(gi)
	}
	wg.Wait()

	served := goroutines * perG
	if len(traceIDs) != served {
		dups := 0
		for _, n := range traceIDs {
			if n > 1 {
				dups++
			}
		}
		t.Errorf("%d distinct trace IDs over %d requests (%d duplicated)", len(traceIDs), served, dups)
	}

	// the webui must answer through the same stack (and the shared cache)
	for _, path := range []string{"/", "/query?q=reduce+memory+latency", "/doc"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("webui %s: %d", path, resp.StatusCode)
		}
		if resp.Header.Get("X-Trace-Id") == "" {
			t.Errorf("webui %s: no X-Trace-Id (tracing middleware not mounted)", path)
		}
	}

	// debug surfaces
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/tracez", "/metricz", "/statsz", "/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s: %d", path, resp.StatusCode)
		}
	}

	// a sampled trace is retrievable by ID
	var anyID string
	for id := range traceIDs {
		anyID = id
		break
	}
	resp, err := http.Get(ts.URL + "/tracez?id=" + anyID)
	if err != nil {
		t.Fatal(err)
	}
	tbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		// the trace store holds 128 traces and we made 80+ requests, so the
		// sampled tree for this ID may have been evicted only if capacity
		// were exceeded — it is not
		t.Fatalf("tracez?id=%s: %d %s", anyID, resp.StatusCode, tbody)
	}
	var tr obs.TraceJSON
	if err := json.Unmarshal(tbody, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Root.Children) == 0 {
		t.Error("sampled trace has no child spans")
	}

	// reconciliation: the service counted exactly the /v1 + health/statsz
	// requests that went through it; its query histogram counted every query
	code, mbody := httpGet(t, ts.URL+"/metricz")
	if code != 200 {
		t.Fatalf("metricz %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(mbody, &snap); err != nil {
		t.Fatal(err)
	}
	qh, ok := snap.Histograms["service_query_latency_micros"]
	if !ok {
		t.Fatal("metricz missing service_query_latency_micros")
	}
	// exactly the JSON queries: webui queries share CachedQuery but only
	// the /v1 handler records query latency
	if qh.Count != int64(served) {
		t.Errorf("query histogram count %d, want %d", qh.Count, served)
	}
	if got := snap.Counters["service_requests_total"]; got < int64(served) {
		t.Errorf("service_requests_total %d < %d queries served", got, served)
	}
	stats := svc.Stats()
	if snap.Counters["service_cache_hits_total"] != stats.CacheHits {
		t.Errorf("metricz hits %d != statsz hits %d", snap.Counters["service_cache_hits_total"], stats.CacheHits)
	}
}

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestServeConfigTraceSampleOff: with sampling off (the default), requests
// still get trace IDs but /tracez records nothing.
func TestServeConfigTraceSampleOff(t *testing.T) {
	g := corpus.GenerateSized(corpus.CUDA, 60, 0.3, 5)
	advisor := core.New().BuildFromSentences(g.Doc, g.Sentences)
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	handler, _, err := buildServeHandler(core.New(), advisor, "t", serveConfig{
		primaryName: "cuda",
		cacheSize:   16,
		maxInflight: 4,
		timeout:     5 * time.Second,
		metrics:     obs.NewRegistry(),
	}, logger)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/cuda/query?q=memory+latency")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	id := resp.Header.Get("X-Trace-Id")
	if id == "" {
		t.Error("no trace ID with sampling off; IDs must be assigned regardless")
	}
	code, body := httpGet(t, ts.URL+"/tracez?id="+id)
	if code != 404 {
		t.Errorf("tracez with sampling off: %d %s, want 404", code, body)
	}
	if code, _ := httpGet(t, ts.URL+fmt.Sprintf("/tracez?n=%d", 5)); code != 200 {
		t.Errorf("tracez listing: %d", code)
	}
}
