package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestBuildAdvisorFromCorpus(t *testing.T) {
	fw := core.New()
	for _, reg := range []string{"cuda", "opencl", "xeon", "XeonPhi"} {
		a, title, err := buildAdvisor(fw, "", reg, 1)
		if err != nil {
			t.Fatalf("%s: %v", reg, err)
		}
		if a.SentenceCount() == 0 || title == "" {
			t.Errorf("%s: empty advisor", reg)
		}
	}
	if _, _, err := buildAdvisor(fw, "", "fortran", 1); err == nil {
		t.Error("unknown corpus accepted")
	}
	if _, _, err := buildAdvisor(fw, "", "", 1); err == nil {
		t.Error("neither -doc nor -corpus rejected")
	}
}

func TestBuildAdvisorFromDocFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "guide.html")
	html := `<html><head><title>T</title></head><body><h1>1. X</h1>
<p>Avoid bank conflicts by padding. The warp size is thirty-two threads.</p></body></html>`
	if err := os.WriteFile(path, []byte(html), 0o644); err != nil {
		t.Fatal(err)
	}
	a, title, err := buildAdvisor(core.New(), path, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if title != path || a.SentenceCount() != 2 {
		t.Errorf("title %q count %d", title, a.SentenceCount())
	}
	if _, _, err := buildAdvisor(core.New(), filepath.Join(dir, "missing.html"), "", 1); err == nil {
		t.Error("missing file accepted")
	}
}

func TestExportCorpusRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "xeon.html")
	if err := exportCorpus("xeon", 1, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Xeon Phi Best Practice Guide") {
		t.Error("exported HTML missing title")
	}
	a, _, err := buildAdvisor(core.New(), path, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.SentenceCount() != 558 {
		t.Errorf("re-ingested guide has %d sentences", a.SentenceCount())
	}
	if err := exportCorpus("bogus", 1, path); err == nil {
		t.Error("bogus register accepted")
	}
}

func TestParseAnyReportDispatch(t *testing.T) {
	// JSON metrics
	r, err := parseAnyReport(`{"program": "k", "warp_execution_efficiency": 0.4,
		"occupancy": 0.9, "global_load_efficiency": 0.9, "branch_divergence": 0.0,
		"dram_utilization": 0.2, "issue_slot_utilization": 0.9,
		"low_throughput_inst_fraction": 0.0, "transfer_compute_ratio": 0.1}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Issues()) != 1 {
		t.Errorf("metrics issues: %+v", r.Issues())
	}
	// text report
	r2, err := parseAnyReport("=== NVVP Analysis Report ===\nProgram: a.cu\n\n-- 1. Overview --\nbody\n")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Program != "a.cu" {
		t.Errorf("program %q", r2.Program)
	}
	// garbage in both formats
	if _, err := parseAnyReport("{broken json"); err == nil {
		t.Error("broken JSON accepted")
	}
	if _, err := parseAnyReport("not a report"); err == nil {
		t.Error("broken text accepted")
	}
}

func TestPrimaryAdvisorName(t *testing.T) {
	cases := []struct{ corpus, doc, want string }{
		{"cuda", "", "cuda"},
		{"CUDA", "", "cuda"},
		{"XeonPhi", "", "xeon"},
		{"", "/tmp/guides/cuda-c-best-practices.html", "cuda-c-best-practices"},
		{"", "guide.md", "guide"},
	}
	for _, c := range cases {
		if got := primaryAdvisorName(c.corpus, c.doc); got != c.want {
			t.Errorf("primaryAdvisorName(%q, %q) = %q, want %q", c.corpus, c.doc, got, c.want)
		}
	}
}

func TestSplitList(t *testing.T) {
	if got := splitList(" opencl, xeon ,,"); len(got) != 2 || got[0] != "opencl" || got[1] != "xeon" {
		t.Errorf("splitList = %v", got)
	}
	if got := splitList(""); got != nil {
		t.Errorf("splitList(\"\") = %v, want nil", got)
	}
}

func TestCorpusRegisterHelper(t *testing.T) {
	for _, name := range []string{"cuda", "OpenCL", "xeon", "xeonphi"} {
		if _, err := corpusRegister(name); err != nil {
			t.Errorf("corpusRegister(%q): %v", name, err)
		}
	}
	if _, err := corpusRegister("fortran"); err == nil {
		t.Error("unknown register accepted")
	}
}

// TestSaveLoadCLIRoundTrip covers the save -> load CLI path: an advisor
// saved the way `egeria save` writes it must come back through
// loadAdvisorFile (the `egeria load` entry) answering queries identically,
// and cmdLoad must reject unusable inputs with errors instead of exits.
func TestSaveLoadCLIRoundTrip(t *testing.T) {
	fw := core.New()
	orig, _, err := buildAdvisor(fw, "", "cuda", 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cuda.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	loaded, err := loadAdvisorFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name() != "cuda" {
		t.Errorf("loaded advisor named %q, want cuda (from filename)", loaded.Name())
	}
	if len(loaded.Rules()) != len(orig.Rules()) {
		t.Fatalf("rules: %d loaded vs %d original", len(loaded.Rules()), len(orig.Rules()))
	}
	q := "reduce global memory latency"
	oa, la := orig.Query(q), loaded.Query(q)
	if len(oa) != len(la) {
		t.Fatalf("answers: %d loaded vs %d original", len(la), len(oa))
	}
	for i := range oa {
		if oa[i].Score != la[i].Score || oa[i].Sentence.Index != la[i].Sentence.Index {
			t.Errorf("answer %d differs after round trip", i)
		}
	}

	// the cmdLoad dispatcher: valid subcommands work, junk is an error
	if err := cmdLoad(path, "rules", nil); err != nil {
		t.Errorf("load rules: %v", err)
	}
	if err := cmdLoad(path, "query", []string{"memory", "latency"}); err != nil {
		t.Errorf("load query: %v", err)
	}
	if err := cmdLoad(path, "query", nil); err == nil {
		t.Error("load query without text did not error")
	}
	if err := cmdLoad(path, "dance", nil); err == nil {
		t.Error("unknown load subcommand accepted")
	}
	if err := cmdLoad(filepath.Join(t.TempDir(), "missing.snap"), "rules", nil); err == nil {
		t.Error("missing snapshot file accepted")
	}
	garbage := filepath.Join(t.TempDir(), "bad.snap")
	if err := os.WriteFile(garbage, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdLoad(garbage, "rules", nil); err == nil {
		t.Error("garbage snapshot accepted")
	}
}
