package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/url"
	"regexp"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/lifecycle"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
)

// -chaos.short shrinks the soak volume for make check / CI smoke runs; the
// full volume is the default for a dedicated chaos pass.
var chaosShort = flag.Bool("chaos.short", false, "run the chaos soak at reduced volume")

// chaosTraceRe scrubs per-request trace IDs so post-recovery bodies can be
// byte-compared against the fault-free control.
var chaosTraceRe = regexp.MustCompile(`"trace_id":"[^"]*"`)

func scrubTrace(b []byte) string {
	return string(chaosTraceRe.ReplaceAll(b, []byte(`"trace_id":"X"`)))
}

// TestServeChaosSoak is the end-to-end chaos suite from DESIGN.md §12: boot
// the full serve stack with every fault point armed at >= 10% probability,
// drive concurrent query/ask/batch/reload/stats traffic against it (run with
// -race in CI), and assert the resilience contract:
//
//   - no panics or torn responses (every response is well-formed JSON with a
//     trace ID and an expected status);
//   - circuit breakers open under sustained failure and recover after the
//     cooldown;
//   - torn snapshot writes never corrupt the store (post-run loads are clean);
//   - after faults stop, answers are byte-identical — hence
//     Float64bits-identical scores — to a fault-free control server.
func TestServeChaosSoak(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	advisors := []string{"cuda", "opencl"}
	queries := []string{
		"reduce global memory latency",
		"avoid divergent warps",
		"improve occupancy",
		"work group size tuning",
	}
	newSources := func() []lifecycle.Source {
		return []lifecycle.Source{
			testSource(t, "cuda", 120, 9),
			testSource(t, "opencl", 120, 9),
		}
	}
	const (
		brkThreshold = 3
		brkCooldown  = 150 * time.Millisecond
	)

	// fault-free control: same advisors, no injector. Its answers are the
	// ground truth the chaos server must reproduce after recovery.
	control, _, _, err := buildServeHandler(core.New(), serveConfig{
		primaryName: "cuda",
		cacheSize:   128,
		maxInflight: 64,
		maxBatch:    8,
		timeout:     5 * time.Second,
		metrics:     obs.NewRegistry(),
		sources:     newSources(),
	}, logger)
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(control)
	defer cts.Close()

	var probeURLs []string
	for _, a := range advisors {
		for _, q := range queries {
			probeURLs = append(probeURLs, fmt.Sprintf("/v1/%s/query?q=%s", a, url.QueryEscape(q)))
		}
	}
	for _, q := range queries {
		probeURLs = append(probeURLs, "/v1/ask?q="+url.QueryEscape(q)+"&k=4")
	}
	want := make(map[string]string, len(probeURLs))
	for _, p := range probeURLs {
		code, body := httpGet(t, cts.URL+p)
		if code != 200 {
			t.Fatalf("control %s: %d %s", p, code, body)
		}
		want[p] = scrubTrace(body)
	}

	// the chaos server: a live injector threaded through store, lifecycle,
	// and service, exactly as `egeria serve -fault` wires it. Boot happens
	// before any rule is armed so the warm start is clean.
	inj := fault.New(42)
	snapDir := t.TempDir()
	handler, _, _, err := buildServeHandler(core.New(), serveConfig{
		primaryName:  "cuda",
		snapshotDir:  snapDir,
		cacheSize:    128,
		maxInflight:  64,
		maxBatch:     8,
		timeout:      5 * time.Second,
		metrics:      obs.NewRegistry(),
		faults:       inj,
		brkThreshold: brkThreshold,
		brkCooldown:  brkCooldown,
		retries:      2,
		backoff:      time.Millisecond,
		sources:      newSources(),
	}, logger)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()

	// arm every point in the catalog at >= 10%, plus torn writes and latency
	for _, p := range fault.Points() {
		inj.Set(p, fault.Rule{ErrProb: 0.2})
	}
	inj.Set(fault.StoreWrite, fault.Rule{ErrProb: 0.2, PartialProb: 0.3})
	inj.Set(fault.VSMScore, fault.Rule{ErrProb: 0.2, Latency: 200 * time.Microsecond, LatencyProb: 0.5})

	workers, requests := 6, 60
	if *chaosShort {
		workers, requests = 3, 25
	}
	res := chaos.Run(chaos.Config{
		BaseURL:  ts.URL,
		Advisors: advisors,
		Queries:  queries,
		Workers:  workers,
		Requests: requests,
		Seed:     42,
		Reload:   true,
	})
	if res.AnomalyN != 0 {
		t.Fatalf("chaos storm: %d contract violations, e.g. %v", res.AnomalyN, res.Anomalies)
	}
	if res.Errors5xx() == 0 {
		t.Fatalf("no 5xx under a 20%% fault storm — injection not wired? statuses %v", res.Statuses())
	}
	t.Logf("storm: %d requests, %d 5xx, statuses %v, mix %v", res.Requests, res.Errors5xx(), res.Statuses(), res.ByKind)

	// deterministic point sweep: volume alone could miss a low-traffic point
	// in -chaos.short mode, so drive each one at err=1 and demand the hit
	inj.Reset()
	sweep := []struct {
		point fault.Point
		drive func()
	}{
		{fault.ServiceHandler, func() { httpGet(t, ts.URL+"/v1/cuda/query?q=sweep+handler") }},
		{fault.NLPAnnotate, func() { httpGet(t, ts.URL+"/v1/cuda/query?q=sweep+annotate") }},
		{fault.VSMScore, func() { httpGet(t, ts.URL+"/v1/cuda/query?q=sweep+score") }},
		{fault.LifecycleRebuild, func() {
			resp, err := http.Post(ts.URL+"/v1/admin/reload?advisor=cuda", "", nil)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 500 {
				t.Errorf("reload under total rebuild faults: %d, want 500", resp.StatusCode)
			}
		}},
		{fault.StoreWrite, func() {
			resp, err := http.Post(ts.URL+"/v1/admin/reload?advisor=cuda", "", nil)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("reload with snapshot-save faults: %d, want 200 (persistence is off the serving path)", resp.StatusCode)
			}
		}},
	}
	for _, s := range sweep {
		before := inj.Hits()[s.point]
		inj.Set(s.point, fault.Rule{ErrProb: 1})
		s.drive()
		inj.Reset()
		if inj.Hits()[s.point] <= before {
			t.Errorf("point %s: no injected faults recorded", s.point)
		}
	}

	// breakers: with scoring failing hard, brkThreshold asks trip every
	// advisor's breaker; /statsz reports them open and further asks skip the
	// advisors with ErrBreakerOpen in the errors map
	inj.Set(fault.VSMScore, fault.Rule{ErrProb: 1})
	for i := 0; i < brkThreshold; i++ {
		httpGet(t, ts.URL+fmt.Sprintf("/v1/ask?q=trip+breaker+%d", i))
	}
	var st struct {
		Breakers []service.BreakerInfo `json:"breakers"`
	}
	code, sbody := httpGet(t, ts.URL+"/statsz")
	if code != 200 {
		t.Fatalf("statsz: %d", code)
	}
	if err := json.Unmarshal(sbody, &st); err != nil {
		t.Fatal(err)
	}
	open := map[string]bool{}
	for _, b := range st.Breakers {
		if b.State == "open" {
			open[b.Advisor] = true
		}
	}
	for _, a := range advisors {
		if !open[a] {
			t.Fatalf("breaker for %s not open after %d failing asks: %s", a, brkThreshold, sbody)
		}
	}
	var ask struct {
		Count  int               `json:"count"`
		Errors map[string]string `json:"errors"`
	}
	code, abody := httpGet(t, ts.URL+"/v1/ask?q=ask+while+open")
	if code != 200 {
		t.Fatalf("ask with breakers open: %d %s", code, abody)
	}
	if err := json.Unmarshal(abody, &ask); err != nil {
		t.Fatal(err)
	}
	if ask.Count != 0 {
		t.Errorf("open breakers still produced %d answers", ask.Count)
	}
	for _, a := range advisors {
		if ask.Errors[a] != service.ErrBreakerOpen.Error() {
			t.Errorf("advisor %s error %q, want %q", a, ask.Errors[a], service.ErrBreakerOpen)
		}
	}

	// recovery: faults off, cooldown elapses, one ask probes each advisor
	// half-open and closes the breakers
	inj.Reset()
	time.Sleep(brkCooldown + 50*time.Millisecond)
	httpGet(t, ts.URL+"/v1/ask?q=recovery+probe")
	code, sbody = httpGet(t, ts.URL+"/statsz")
	if code != 200 {
		t.Fatalf("statsz after recovery: %d", code)
	}
	st.Breakers = nil
	if err := json.Unmarshal(sbody, &st); err != nil {
		t.Fatal(err)
	}
	for _, b := range st.Breakers {
		if b.State != "closed" {
			t.Errorf("breaker %s still %s after recovery", b.Advisor, b.State)
		}
	}

	// post-chaos answers must be byte-identical to the fault-free control:
	// identical JSON floats means Float64bits-identical scores, so no torn
	// state leaked into retrieval
	for _, p := range probeURLs {
		code, body := httpGet(t, ts.URL+p)
		if code != 200 {
			t.Fatalf("post-chaos %s: %d %s", p, code, body)
		}
		if got := scrubTrace(body); got != want[p] {
			t.Errorf("post-chaos %s diverged from control:\n got %s\nwant %s", p, got, want[p])
		}
	}

	// torn-write check: injected torn writes deliberately violate the
	// atomic-rename protocol, so a post-storm snapshot may be corrupt — but
	// it must be *detectably* corrupt (ErrCorrupt), cleanly absent, or clean.
	// Any other error means corruption escaped the checksum protocol.
	fresh, err := store.Open(snapDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range advisors {
		_, _, err := fresh.Load(a)
		switch {
		case err == nil, errors.Is(err, store.ErrNotFound):
		case errors.Is(err, store.ErrCorrupt):
			t.Logf("snapshot %s torn by injection and detected: %v", a, err)
		default:
			t.Errorf("snapshot %s after chaos: %v (undetected torn write)", a, err)
		}
	}

	// boot-under-read-faults: a second server over the same snapshot dir with
	// store.read failing hard must still come up (quarantine + cold rebuild)
	inj.Set(fault.StoreRead, fault.Rule{ErrProb: 1})
	_, svc2, _, err := buildServeHandler(core.New(), serveConfig{
		primaryName: "cuda",
		snapshotDir: snapDir,
		cacheSize:   16,
		maxInflight: 4,
		timeout:     5 * time.Second,
		metrics:     obs.NewRegistry(),
		faults:      inj,
		sources:     newSources(),
	}, logger)
	if err != nil {
		t.Fatalf("boot under store.read faults failed: %v", err)
	}
	inj.Reset()
	if inj.Hits()[fault.StoreRead] == 0 {
		t.Error("warm start under read faults never drew store.read")
	}
	if lc := svc2.Stats().Lifecycle; lc == nil || lc.SnapshotMisses == 0 {
		t.Errorf("read-fault boot should cold-build: %+v", lc)
	}

	// the read-fault boot quarantined every unreadable snapshot and re-saved
	// clean ones (write faults were off), so the store is now fully healed:
	// strict clean loads for every advisor
	healed, err := store.Open(snapDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range advisors {
		if _, man, err := healed.Load(a); err != nil || man.Advisor != a {
			t.Errorf("store not healed after quarantine boot: %s: %v", a, err)
		}
	}

	// full point coverage across the whole run
	hits := inj.Hits()
	for _, p := range fault.Points() {
		if hits[p] == 0 {
			t.Errorf("fault point %s never fired during the suite", p)
		}
	}
	t.Logf("fault hits: %v", hits)
}
