// Command egeria is the framework CLI: it synthesizes an advising tool from
// an HPC document and lets you list its rules, ask optimization questions,
// answer profiler reports, or serve the tool over HTTP.
//
// Usage:
//
//	egeria -doc guide.html rules
//	egeria -corpus cuda query "how to avoid shared memory bank conflicts"
//	egeria -corpus cuda report norm            # synthesize + answer a report
//	egeria -doc guide.html report report.txt   # answer a report file
//	egeria -corpus cuda serve -addr :8080
//	egeria -corpus cuda -corpora opencl,xeon serve   # multi-advisor registry
//
// The -corpus flag selects a built-in synthetic guide (cuda, opencl, xeon)
// instead of an HTML document; -xeon-tuned applies the paper's §4.3 keyword
// tuning; -threshold overrides the 0.15 recommendation threshold.
//
// serve hosts the production layer of internal/service: the HTML UI at /
// (with a federated /ask page), a JSON API under /v1/ (advisors, rules,
// query with a selectable scoring backend, report, batch, and the
// cross-advisor ask), health endpoints (/healthz, /readyz, /statsz), a
// sharded LRU query cache (-cache-size), and admission control
// (-max-inflight, -max-batch, -timeout). SIGINT/SIGTERM drains gracefully. Observability: every response carries an X-Trace-Id;
// -trace-sample records span trees for a fraction of requests on /tracez,
// /metricz exposes the process metrics registry, and Go profiling lives
// under /debug/pprof/.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/htmldoc"
	"repro/internal/nvvp"
	"repro/internal/obs"
	"repro/internal/selectors"
	"repro/internal/service"
	"repro/internal/webui"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("egeria: ")

	var (
		docPath   = flag.String("doc", "", "document to build the advisor from (.html, .md, .txt by extension)")
		corpusReg = flag.String("corpus", "", "built-in synthetic guide: cuda, opencl, xeon")
		seed      = flag.Int64("seed", 1, "corpus generation seed")
		threshold = flag.Float64("threshold", 0.15, "similarity threshold for recommendations")
		xeonTuned = flag.Bool("xeon-tuned", false, "use the Xeon-tuned keyword sets (§4.3)")
		cfgPath   = flag.String("config", "", "JSON keyword configuration merged over the defaults")
		addr      = flag.String("addr", ":8080", "listen address for serve")

		// serving-layer flags (serve subcommand)
		corpora     = flag.String("corpora", "", "comma-separated extra built-in guides to serve alongside the primary advisor (e.g. opencl,xeon)")
		cacheSize   = flag.Int("cache-size", 1024, "query cache capacity (entries)")
		maxInflight = flag.Int("max-inflight", 64, "max concurrent retrievals before queuing/429")
		maxBatch    = flag.Int("max-batch", 64, "max queries accepted per POST /v1/batch request")
		timeout     = flag.Duration("timeout", 2*time.Second, "per-request deadline")
		traceSample = flag.Float64("trace-sample", 0, "fraction of requests whose span trees are recorded for /tracez (0 = off, 1 = every request)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := selectors.DefaultConfig()
	if *xeonTuned {
		cfg = selectors.XeonTunedConfig()
	}
	if *cfgPath != "" {
		f, err := os.Open(*cfgPath)
		if err != nil {
			log.Fatal(err)
		}
		extra, err := selectors.ReadConfigJSON(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		cfg = cfg.Merge(extra)
	}
	fw := core.New(core.WithConfig(cfg), core.WithThreshold(*threshold))
	advisor, title, err := buildAdvisor(fw, *docPath, *corpusReg, *seed)
	if err != nil {
		log.Fatal(err)
	}

	switch args[0] {
	case "rules":
		cmdRules(advisor)
	case "query":
		if len(args) < 2 {
			log.Fatal("query requires the question text")
		}
		cmdQuery(advisor, strings.Join(args[1:], " "))
	case "report":
		if len(args) < 2 {
			log.Fatal("report requires a program name or report file")
		}
		cmdReport(advisor, args[1])
	case "serve":
		// accept flags after the subcommand too ("serve -addr :8080", the
		// form the usage examples show): flag.Parse stops at the first
		// non-flag argument, so re-parse the remainder
		if len(args) > 1 {
			if err := flag.CommandLine.Parse(args[1:]); err != nil {
				log.Fatal(err)
			}
		}
		if err := cmdServe(fw, advisor, title, serveConfig{
			addr:        *addr,
			primaryName: primaryAdvisorName(*corpusReg, *docPath),
			extra:       splitList(*corpora),
			seed:        *seed,
			cacheSize:   *cacheSize,
			maxInflight: *maxInflight,
			maxBatch:    *maxBatch,
			timeout:     *timeout,
			traceSample: *traceSample,
		}); err != nil {
			log.Fatal(err)
		}
	case "repl":
		cmdREPL(advisor, title)
	case "save":
		if len(args) < 2 {
			log.Fatal("save requires an output path")
		}
		f, err := os.Create(args[1])
		if err != nil {
			log.Fatal(err)
		}
		if err := advisor.Save(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("advisor saved to %s (reload with LoadAdvisor)", args[1])
	case "export":
		if len(args) < 2 {
			log.Fatal("export requires an output path")
		}
		if *corpusReg == "" {
			log.Fatal("export only applies to -corpus guides")
		}
		if err := exportCorpus(*corpusReg, *seed, args[1]); err != nil {
			log.Fatal(err)
		}
		log.Printf("synthetic guide exported to %s", args[1])
	default:
		log.Fatalf("unknown subcommand %q (want rules, query, report, repl, serve, save, export)", args[0])
	}
}

func buildAdvisor(fw *core.Framework, docPath, corpusReg string, seed int64) (*core.Advisor, string, error) {
	switch {
	case docPath != "":
		data, err := os.ReadFile(docPath)
		if err != nil {
			return nil, "", err
		}
		var doc *htmldoc.Document
		switch {
		case strings.HasSuffix(docPath, ".md") || strings.HasSuffix(docPath, ".markdown"):
			doc = htmldoc.ParseMarkdown(string(data))
		case strings.HasSuffix(docPath, ".txt"):
			doc = htmldoc.ParsePlainText(string(data))
		default:
			doc = htmldoc.Parse(string(data))
		}
		return fw.BuildFromDocument(doc), docPath, nil
	case corpusReg != "":
		reg, err := corpusRegister(corpusReg)
		if err != nil {
			return nil, "", err
		}
		g := corpus.Generate(reg, seed)
		return fw.BuildFromSentences(g.Doc, g.Sentences), g.Doc.Title, nil
	}
	return nil, "", fmt.Errorf("one of -doc or -corpus is required")
}

// corpusRegister maps a -corpus flag value onto a built-in guide register.
func corpusRegister(name string) (corpus.Register, error) {
	switch strings.ToLower(name) {
	case "cuda":
		return corpus.CUDA, nil
	case "opencl":
		return corpus.OpenCL, nil
	case "xeon", "xeonphi":
		return corpus.XeonPhi, nil
	}
	return 0, fmt.Errorf("unknown corpus %q", name)
}

// primaryAdvisorName derives the registry name for the primary advisor: the
// corpus register when one was selected, else the document's base filename.
func primaryAdvisorName(corpusReg, docPath string) string {
	if corpusReg != "" {
		name := strings.ToLower(corpusReg)
		if name == "xeonphi" {
			name = "xeon"
		}
		return name
	}
	base := filepath.Base(docPath)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// serveConfig carries the serve subcommand's knobs.
type serveConfig struct {
	addr        string
	primaryName string
	extra       []string // additional built-in guides to host
	seed        int64
	cacheSize   int
	maxInflight int
	maxBatch    int
	timeout     time.Duration
	traceSample float64       // fraction of requests with recorded span trees
	metrics     *obs.Registry // nil: the process-wide default registry
}

// buildServeHandler assembles the full serving stack — registry, JSON API
// service, HTML UI sharing the service's cache, tracing middleware, and the
// debug endpoints (/metricz, /tracez, /debug/pprof) — without binding a
// listener, so tests can mount it on httptest.Server. It returns the root
// handler and the service (for BeginDrain and stats).
func buildServeHandler(fw *core.Framework, advisor *core.Advisor, title string, cfg serveConfig, logger *slog.Logger) (http.Handler, *service.Service, error) {
	// build any extra guides concurrently, then add the primary advisor
	builders := map[string]func() (*core.Advisor, error){}
	for _, name := range cfg.extra {
		name := strings.ToLower(name)
		if name == "xeonphi" {
			name = "xeon"
		}
		if name == cfg.primaryName {
			continue
		}
		builders[name] = func() (*core.Advisor, error) {
			reg, err := corpusRegister(name)
			if err != nil {
				return nil, err
			}
			g := corpus.Generate(reg, cfg.seed)
			return fw.BuildFromSentences(g.Doc, g.Sentences), nil
		}
	}
	registry, err := service.BuildAll(builders)
	if err != nil {
		return nil, nil, err
	}
	registry.Add(cfg.primaryName, advisor)

	tracer := obs.NewTracer(cfg.traceSample, obs.NewTraceStore(obs.DefaultTraceCapacity))
	svc := service.New(registry, service.Options{
		CacheSize:   cfg.cacheSize,
		MaxInFlight: cfg.maxInflight,
		MaxBatch:    cfg.maxBatch,
		Timeout:     cfg.timeout,
		Logger:      logger,
		Tracer:      tracer,
		Metrics:     cfg.metrics,
	})

	// the HTML UI shares the service's cache and admission control; the
	// request context carries the UI request's span so shared-path queries
	// appear in its trace tree
	ui := webui.New(advisor, title)
	ui.SetQuerier(func(ctx context.Context, backend, q string) []core.Answer {
		answers, _, err := svc.CachedQueryBackend(ctx, cfg.primaryName, backend, q)
		if err != nil {
			logger.Warn("webui query failed", "err", err)
			return nil
		}
		return answers
	})
	// the /ask page fans out to every advisor in the registry through the
	// service's federation path, sharing its cache and admission control
	ui.SetFederator(func(ctx context.Context, backend, q string, k int) []webui.FederatedHit {
		answers, errs := svc.Ask(ctx, backend, q, k)
		for name, msg := range errs {
			logger.Warn("webui federated ask failed for advisor", "advisor", name, "err", msg)
		}
		hits := make([]webui.FederatedHit, len(answers))
		for i, a := range answers {
			hits[i] = webui.FederatedHit{
				Advisor: a.Advisor,
				Section: a.Rule.Section,
				Text:    a.Rule.Text,
				Score:   a.Score,
				Norm:    a.Norm,
			}
		}
		return hits
	})

	root := http.NewServeMux()
	root.Handle("/v1/", svc)
	root.Handle("/healthz", svc)
	root.Handle("/readyz", svc)
	root.Handle("/statsz", svc)
	root.Handle("/metricz", svc)
	root.Handle("/tracez", svc)
	// profiling endpoints on the serving mux (mounted explicitly rather than
	// relying on the net/http/pprof DefaultServeMux registration)
	root.HandleFunc("/debug/pprof/", pprof.Index)
	root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	root.HandleFunc("/debug/pprof/profile", pprof.Profile)
	root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	root.HandleFunc("/debug/pprof/trace", pprof.Trace)
	root.Handle("/", obs.Middleware(tracer, ui))
	return root, svc, nil
}

// cmdServe runs the production serving layer: a registry hosting the primary
// advisor plus any -corpora extras (built concurrently), the /v1 JSON API
// with query cache and admission control, and the HTML webui on the same
// mux sharing both. SIGINT/SIGTERM triggers a graceful drain.
func cmdServe(fw *core.Framework, advisor *core.Advisor, title string, cfg serveConfig) error {
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	root, svc, err := buildServeHandler(fw, advisor, title, cfg, logger)
	if err != nil {
		return err
	}

	srv := &http.Server{Addr: cfg.addr, Handler: root}
	done := make(chan error, 1)
	go func() {
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		<-sigc
		logger.Info("signal received, draining")
		svc.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx) // drains in-flight requests
	}()
	log.Printf("serving %s on %s (advisors: %s; JSON API under /v1/; debug: /metricz /tracez /debug/pprof)",
		title, cfg.addr, strings.Join(svc.Registry().Names(), ", "))
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-done
}

func cmdRules(a *core.Advisor) {
	rules := a.Rules()
	st := a.BuildStats()
	fmt.Printf("%d advising sentences out of %d (ratio %.1f); annotate %v, classify %v, index %v\n",
		len(rules), a.SentenceCount(), a.CompressionRatio(),
		st.Annotate.Round(time.Millisecond), st.Classify.Round(time.Millisecond), st.Indexing.Round(time.Millisecond))
	for _, sel := range []selectors.SelectorID{selectors.Keyword, selectors.Comparative, selectors.Imperative, selectors.Subject, selectors.Purpose} {
		if n := st.BySelector[sel]; n > 0 {
			fmt.Printf("  %-28s %d\n", sel, n)
		}
	}
	fmt.Println()
	lastSection := ""
	for _, r := range rules {
		if r.Section != lastSection {
			fmt.Printf("%s\n", r.Section)
			lastSection = r.Section
		}
		fmt.Printf("  - %s  [%s]\n", r.Text, r.Selector)
	}
}

func cmdQuery(a *core.Advisor, q string) {
	answers := a.Query(q)
	if len(answers) == 0 {
		fmt.Println("No relevant sentences found.")
		return
	}
	for _, ans := range answers {
		fmt.Printf("%.2f  [%s]  %s\n", ans.Score, ans.Sentence.Section, ans.Sentence.Text)
	}
}

func cmdReport(a *core.Advisor, arg string) {
	var text string
	if data, err := os.ReadFile(arg); err == nil {
		text = string(data)
	} else {
		synth, serr := nvvp.Synthesize(arg)
		if serr != nil {
			log.Fatalf("%q is neither a readable file (%v) nor a known program (%v)", arg, err, serr)
		}
		text = synth
	}
	report, err := parseAnyReport(text)
	if err != nil {
		log.Fatal(err)
	}
	for _, ra := range a.AnswerReport(report) {
		fmt.Printf("== Issue: %s (section %s)\n", ra.Issue.Title, ra.Issue.Section)
		if len(ra.Answers) == 0 {
			fmt.Println("   No relevant sentences found.")
			continue
		}
		for _, ans := range ra.Answers {
			fmt.Printf("   %.2f  [%s]  %s\n", ans.Score, ans.Sentence.Section, ans.Sentence.Text)
		}
	}
}

// cmdREPL runs an interactive question loop against the advisor — the
// terminal analogue of the web tool's query box.
func cmdREPL(a *core.Advisor, title string) {
	fmt.Printf("%s — %d rules from %d sentences. Ask optimization questions; blank line quits.\n",
		title, len(a.Rules()), a.SentenceCount())
	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("egeria> ")
		if !scanner.Scan() {
			break
		}
		q := strings.TrimSpace(scanner.Text())
		if q == "" {
			break
		}
		answers := a.Query(q)
		if len(answers) == 0 {
			fmt.Println("No relevant sentences found.")
			continue
		}
		for i, ans := range answers {
			if i >= 10 {
				fmt.Printf("... and %d more\n", len(answers)-i)
				break
			}
			fmt.Printf("  %.2f  [%s]\n        %s\n", ans.Score, ans.Sentence.Section, ans.Sentence.Text)
		}
	}
}

// exportCorpus renders a synthetic guide as an HTML file, so the HTML
// ingestion path can be exercised against a document with known properties.
func exportCorpus(register string, seed int64, path string) error {
	reg, err := corpusRegister(register)
	if err != nil {
		return err
	}
	g := corpus.Generate(reg, seed)
	return os.WriteFile(path, []byte(g.RenderHTML()), 0o644)
}

// parseAnyReport accepts both supported profiler formats: the NVVP-style
// text report and the JSON metrics snapshot.
func parseAnyReport(text string) (*nvvp.Report, error) {
	trimmed := strings.TrimSpace(text)
	if strings.HasPrefix(trimmed, "{") {
		m, err := nvvp.ParseMetricsJSON([]byte(trimmed))
		if err != nil {
			return nil, err
		}
		return m.Report(), nil
	}
	return nvvp.Parse(text)
}
