// Command egeria is the framework CLI: it synthesizes an advising tool from
// an HPC document and lets you list its rules, ask optimization questions,
// answer profiler reports, or serve the tool over HTTP.
//
// Usage:
//
//	egeria -doc guide.html rules
//	egeria -corpus cuda query "how to avoid shared memory bank conflicts"
//	egeria -corpus cuda report norm            # synthesize + answer a report
//	egeria -doc guide.html report report.txt   # answer a report file
//	egeria -corpus cuda serve -addr :8080
//
// The -corpus flag selects a built-in synthetic guide (cuda, opencl, xeon)
// instead of an HTML document; -xeon-tuned applies the paper's §4.3 keyword
// tuning; -threshold overrides the 0.15 recommendation threshold.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/htmldoc"
	"repro/internal/nvvp"
	"repro/internal/selectors"
	"repro/internal/webui"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("egeria: ")

	var (
		docPath   = flag.String("doc", "", "document to build the advisor from (.html, .md, .txt by extension)")
		corpusReg = flag.String("corpus", "", "built-in synthetic guide: cuda, opencl, xeon")
		seed      = flag.Int64("seed", 1, "corpus generation seed")
		threshold = flag.Float64("threshold", 0.15, "similarity threshold for recommendations")
		xeonTuned = flag.Bool("xeon-tuned", false, "use the Xeon-tuned keyword sets (§4.3)")
		cfgPath   = flag.String("config", "", "JSON keyword configuration merged over the defaults")
		addr      = flag.String("addr", ":8080", "listen address for serve")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := selectors.DefaultConfig()
	if *xeonTuned {
		cfg = selectors.XeonTunedConfig()
	}
	if *cfgPath != "" {
		f, err := os.Open(*cfgPath)
		if err != nil {
			log.Fatal(err)
		}
		extra, err := selectors.ReadConfigJSON(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		cfg = cfg.Merge(extra)
	}
	fw := core.New(core.WithConfig(cfg), core.WithThreshold(*threshold))
	advisor, title, err := buildAdvisor(fw, *docPath, *corpusReg, *seed)
	if err != nil {
		log.Fatal(err)
	}

	switch args[0] {
	case "rules":
		cmdRules(advisor)
	case "query":
		if len(args) < 2 {
			log.Fatal("query requires the question text")
		}
		cmdQuery(advisor, strings.Join(args[1:], " "))
	case "report":
		if len(args) < 2 {
			log.Fatal("report requires a program name or report file")
		}
		cmdReport(advisor, args[1])
	case "serve":
		log.Printf("serving %s on %s", title, *addr)
		if err := http.ListenAndServe(*addr, webui.New(advisor, title)); err != nil {
			log.Fatal(err)
		}
	case "repl":
		cmdREPL(advisor, title)
	case "save":
		if len(args) < 2 {
			log.Fatal("save requires an output path")
		}
		f, err := os.Create(args[1])
		if err != nil {
			log.Fatal(err)
		}
		if err := advisor.Save(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("advisor saved to %s (reload with LoadAdvisor)", args[1])
	case "export":
		if len(args) < 2 {
			log.Fatal("export requires an output path")
		}
		if *corpusReg == "" {
			log.Fatal("export only applies to -corpus guides")
		}
		if err := exportCorpus(*corpusReg, *seed, args[1]); err != nil {
			log.Fatal(err)
		}
		log.Printf("synthetic guide exported to %s", args[1])
	default:
		log.Fatalf("unknown subcommand %q (want rules, query, report, repl, serve, save, export)", args[0])
	}
}

func buildAdvisor(fw *core.Framework, docPath, corpusReg string, seed int64) (*core.Advisor, string, error) {
	switch {
	case docPath != "":
		data, err := os.ReadFile(docPath)
		if err != nil {
			return nil, "", err
		}
		var doc *htmldoc.Document
		switch {
		case strings.HasSuffix(docPath, ".md") || strings.HasSuffix(docPath, ".markdown"):
			doc = htmldoc.ParseMarkdown(string(data))
		case strings.HasSuffix(docPath, ".txt"):
			doc = htmldoc.ParsePlainText(string(data))
		default:
			doc = htmldoc.Parse(string(data))
		}
		return fw.BuildFromDocument(doc), docPath, nil
	case corpusReg != "":
		var reg corpus.Register
		switch strings.ToLower(corpusReg) {
		case "cuda":
			reg = corpus.CUDA
		case "opencl":
			reg = corpus.OpenCL
		case "xeon", "xeonphi":
			reg = corpus.XeonPhi
		default:
			return nil, "", fmt.Errorf("unknown corpus %q", corpusReg)
		}
		g := corpus.Generate(reg, seed)
		return fw.BuildFromSentences(g.Doc, g.Sentences), g.Doc.Title, nil
	}
	return nil, "", fmt.Errorf("one of -doc or -corpus is required")
}

func cmdRules(a *core.Advisor) {
	rules := a.Rules()
	st := a.BuildStats()
	fmt.Printf("%d advising sentences out of %d (ratio %.1f); Stage I %v, indexing %v\n",
		len(rules), a.SentenceCount(), a.CompressionRatio(), st.StageI.Round(time.Millisecond), st.Indexing.Round(time.Millisecond))
	for _, sel := range []selectors.SelectorID{selectors.Keyword, selectors.Comparative, selectors.Imperative, selectors.Subject, selectors.Purpose} {
		if n := st.BySelector[sel]; n > 0 {
			fmt.Printf("  %-28s %d\n", sel, n)
		}
	}
	fmt.Println()
	lastSection := ""
	for _, r := range rules {
		if r.Section != lastSection {
			fmt.Printf("%s\n", r.Section)
			lastSection = r.Section
		}
		fmt.Printf("  - %s  [%s]\n", r.Text, r.Selector)
	}
}

func cmdQuery(a *core.Advisor, q string) {
	answers := a.Query(q)
	if len(answers) == 0 {
		fmt.Println("No relevant sentences found.")
		return
	}
	for _, ans := range answers {
		fmt.Printf("%.2f  [%s]  %s\n", ans.Score, ans.Sentence.Section, ans.Sentence.Text)
	}
}

func cmdReport(a *core.Advisor, arg string) {
	var text string
	if data, err := os.ReadFile(arg); err == nil {
		text = string(data)
	} else {
		synth, serr := nvvp.Synthesize(arg)
		if serr != nil {
			log.Fatalf("%q is neither a readable file (%v) nor a known program (%v)", arg, err, serr)
		}
		text = synth
	}
	report, err := parseAnyReport(text)
	if err != nil {
		log.Fatal(err)
	}
	for _, ra := range a.AnswerReport(report) {
		fmt.Printf("== Issue: %s (section %s)\n", ra.Issue.Title, ra.Issue.Section)
		if len(ra.Answers) == 0 {
			fmt.Println("   No relevant sentences found.")
			continue
		}
		for _, ans := range ra.Answers {
			fmt.Printf("   %.2f  [%s]  %s\n", ans.Score, ans.Sentence.Section, ans.Sentence.Text)
		}
	}
}

// cmdREPL runs an interactive question loop against the advisor — the
// terminal analogue of the web tool's query box.
func cmdREPL(a *core.Advisor, title string) {
	fmt.Printf("%s — %d rules from %d sentences. Ask optimization questions; blank line quits.\n",
		title, len(a.Rules()), a.SentenceCount())
	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("egeria> ")
		if !scanner.Scan() {
			break
		}
		q := strings.TrimSpace(scanner.Text())
		if q == "" {
			break
		}
		answers := a.Query(q)
		if len(answers) == 0 {
			fmt.Println("No relevant sentences found.")
			continue
		}
		for i, ans := range answers {
			if i >= 10 {
				fmt.Printf("... and %d more\n", len(answers)-i)
				break
			}
			fmt.Printf("  %.2f  [%s]\n        %s\n", ans.Score, ans.Sentence.Section, ans.Sentence.Text)
		}
	}
}

// exportCorpus renders a synthetic guide as an HTML file, so the HTML
// ingestion path can be exercised against a document with known properties.
func exportCorpus(register string, seed int64, path string) error {
	var reg corpus.Register
	switch strings.ToLower(register) {
	case "cuda":
		reg = corpus.CUDA
	case "opencl":
		reg = corpus.OpenCL
	case "xeon", "xeonphi":
		reg = corpus.XeonPhi
	default:
		return fmt.Errorf("unknown corpus %q", register)
	}
	g := corpus.Generate(reg, seed)
	return os.WriteFile(path, []byte(g.RenderHTML()), 0o644)
}

// parseAnyReport accepts both supported profiler formats: the NVVP-style
// text report and the JSON metrics snapshot.
func parseAnyReport(text string) (*nvvp.Report, error) {
	trimmed := strings.TrimSpace(text)
	if strings.HasPrefix(trimmed, "{") {
		m, err := nvvp.ParseMetricsJSON([]byte(trimmed))
		if err != nil {
			return nil, err
		}
		return m.Report(), nil
	}
	return nvvp.Parse(text)
}
