// Command egeria is the framework CLI: it synthesizes an advising tool from
// an HPC document and lets you list its rules, ask optimization questions,
// answer profiler reports, or serve the tool over HTTP.
//
// Usage:
//
//	egeria -doc guide.html rules
//	egeria -corpus cuda query "how to avoid shared memory bank conflicts"
//	egeria -corpus cuda report norm            # synthesize + answer a report
//	egeria -doc guide.html report report.txt   # answer a report file
//	egeria -corpus cuda serve -addr :8080
//	egeria -corpus cuda -corpora opencl,xeon serve   # multi-advisor registry
//	egeria diff advisor.snap guide.html              # what changed since the snapshot?
//
// The -corpus flag selects a built-in synthetic guide (cuda, opencl, xeon)
// instead of an HTML document; -xeon-tuned applies the paper's §4.3 keyword
// tuning; -threshold overrides the 0.15 recommendation threshold.
//
// diff compares a saved advisor snapshot against the current version of a
// source (a document file, or a built-in corpus name with -seed) by stable
// sentence identity: it prints the kept/added/removed partition, the change
// ratio, and whether a serve reload at -incremental-threshold would take
// the differential rebuild path or run the full pipeline.
//
// serve hosts the production layer of internal/service: the HTML UI at /
// (with a federated /ask page), a JSON API under /v1/ (advisors, rules,
// query with a selectable scoring backend, report, batch, and the
// cross-advisor ask), health endpoints (/healthz, /readyz, /statsz), a
// sharded LRU query cache (-cache-size), and admission control
// (-max-inflight, -max-batch, -timeout). SIGINT/SIGTERM drains gracefully. Observability: every response carries an X-Trace-Id;
// -trace-sample records span trees for a fraction of requests on /tracez,
// /metricz exposes the process metrics registry, and Go profiling lives
// under /debug/pprof/.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/doc"
	"repro/internal/fault"
	"repro/internal/htmldoc"
	"repro/internal/lifecycle"
	"repro/internal/nvvp"
	"repro/internal/obs"
	"repro/internal/selectors"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/webui"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("egeria: ")

	var (
		docPath   = flag.String("doc", "", "document to build the advisor from (.html, .md, .txt by extension)")
		corpusReg = flag.String("corpus", "", "built-in synthetic guide: cuda, opencl, xeon")
		seed      = flag.Int64("seed", 1, "corpus generation seed")
		threshold = flag.Float64("threshold", 0.15, "similarity threshold for recommendations")
		shards    = flag.Int("shards", defaultShards(), "Stage-II index shard count (1 = monolithic; retrieval scores are identical at any count)")
		prune     = flag.Bool("prune", true, "MaxScore pruning in Stage-II retrieval (results are bit-identical on or off; per-request override via ?prune=)")
		xeonTuned = flag.Bool("xeon-tuned", false, "use the Xeon-tuned keyword sets (§4.3)")
		cfgPath   = flag.String("config", "", "JSON keyword configuration merged over the defaults")
		addr      = flag.String("addr", ":8080", "listen address for serve")

		// serving-layer flags (serve subcommand)
		corpora     = flag.String("corpora", "", "comma-separated extra built-in guides to serve alongside the primary advisor (e.g. opencl,xeon)")
		cacheSize   = flag.Int("cache-size", 1024, "query cache capacity (entries)")
		maxInflight = flag.Int("max-inflight", 64, "max concurrent retrievals before queuing/429")
		maxBatch    = flag.Int("max-batch", 64, "max queries accepted per POST /v1/batch request")
		timeout     = flag.Duration("timeout", 2*time.Second, "per-request deadline")
		traceSample = flag.Float64("trace-sample", 0, "fraction of requests whose span trees are recorded for /tracez (0 = off, 1 = every request)")

		// resilience flags (serve subcommand). -fault is a development/chaos
		// knob, off by default; production pays one nil check per fault point.
		faultSpec = flag.String("fault", "", "fault-injection spec for chaos testing, e.g. 'all:err=0.1' or 'store.write:err=0.2;partial=0.3,vsm.score:lat=5ms@0.5' (dev only; empty = off)")
		faultSeed = flag.Int64("fault-seed", 1, "PRNG seed for -fault draws (fixed seed = reproducible fault sequence)")
		brkThresh = flag.Int("breaker-threshold", service.DefaultBreakerThreshold, "consecutive failures that open an advisor's circuit breaker")
		brkCool   = flag.Duration("breaker-cooldown", service.DefaultBreakerCooldown, "how long an open breaker waits before probing the advisor again")

		// corpus lifecycle flags (serve subcommand; -incremental-threshold
		// also sets the mode the diff subcommand predicts)
		snapshotDir     = flag.String("snapshot-dir", "", "directory of advisor snapshots: serve warm-starts from it and persists rebuilds to it (empty: cold build, no persistence)")
		watch           = flag.Bool("watch", false, "poll source documents and hot-reload advisors when they change")
		rebuildInterval = flag.Duration("rebuild-interval", 15*time.Second, "poll period for -watch")
		incrThreshold   = flag.Float64("incremental-threshold", lifecycle.DefaultIncrementalThreshold,
			"change-ratio ceiling for differential rebuilds: edits touching at most this fraction of a document reuse the previous advisor's per-sentence work (negative disables incremental rebuilds)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := selectors.DefaultConfig()
	if *xeonTuned {
		cfg = selectors.XeonTunedConfig()
	}
	if *cfgPath != "" {
		f, err := os.Open(*cfgPath)
		if err != nil {
			log.Fatal(err)
		}
		extra, err := selectors.ReadConfigJSON(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		cfg = cfg.Merge(extra)
	}
	fw := core.New(core.WithConfig(cfg), core.WithThreshold(*threshold), core.WithShards(*shards))
	// rules/query/report/repl/save build the advisor in-process; serve warm
	// starts from the snapshot store (cold-building only what is missing),
	// and load reads a snapshot file instead of building anything
	buildNow := func() (*core.Advisor, string) {
		advisor, title, err := buildAdvisor(fw, *docPath, *corpusReg, *seed)
		if err != nil {
			log.Fatal(err)
		}
		return advisor, title
	}

	switch args[0] {
	case "rules":
		advisor, _ := buildNow()
		cmdRules(advisor)
	case "query":
		if len(args) < 2 {
			log.Fatal("query requires the question text")
		}
		advisor, _ := buildNow()
		cmdQuery(advisor, strings.Join(args[1:], " "))
	case "report":
		if len(args) < 2 {
			log.Fatal("report requires a program name or report file")
		}
		advisor, _ := buildNow()
		cmdReport(advisor, args[1])
	case "serve":
		// accept flags after the subcommand too ("serve -addr :8080", the
		// form the usage examples show): flag.Parse stops at the first
		// non-flag argument, so re-parse the remainder
		if len(args) > 1 {
			if err := flag.CommandLine.Parse(args[1:]); err != nil {
				log.Fatal(err)
			}
			// the re-parse may have changed framework-level flags
			// (-threshold, -shards), so rebuild the framework from them
			fw = core.New(core.WithConfig(cfg), core.WithThreshold(*threshold), core.WithShards(*shards))
		}
		if *docPath == "" && *corpusReg == "" {
			log.Fatal("serve needs one of -doc or -corpus")
		}
		if err := cmdServe(fw, serveConfig{
			addr:            *addr,
			primaryName:     primaryAdvisorName(*corpusReg, *docPath),
			docPath:         *docPath,
			corpusReg:       *corpusReg,
			extra:           splitList(*corpora),
			seed:            *seed,
			cfgHash:         configFingerprint(cfg, *threshold, *shards),
			snapshotDir:     *snapshotDir,
			watch:           *watch,
			rebuildInterval: *rebuildInterval,
			incrThreshold:   *incrThreshold,
			cacheSize:       *cacheSize,
			maxInflight:     *maxInflight,
			maxBatch:        *maxBatch,
			timeout:         *timeout,
			traceSample:     *traceSample,
			noPrune:         !*prune,
			faultSpec:       *faultSpec,
			faultSeed:       *faultSeed,
			brkThreshold:    *brkThresh,
			brkCooldown:     *brkCool,
		}); err != nil {
			log.Fatal(err)
		}
	case "repl":
		advisor, title := buildNow()
		cmdREPL(advisor, title)
	case "save":
		if len(args) < 2 {
			log.Fatal("save requires an output path")
		}
		advisor, _ := buildNow()
		f, err := os.Create(args[1])
		if err != nil {
			log.Fatal(err)
		}
		if err := advisor.Save(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("advisor saved to %s (use it with: egeria load %s query ...)", args[1], args[1])
	case "load":
		// load <snapshot> <rules|query|report|repl> [...] — serve a saved
		// advisor without -doc/-corpus or a Stage-I rebuild
		if len(args) < 3 {
			log.Fatal("load requires a snapshot path and a subcommand (rules, query, report, repl)")
		}
		if err := cmdLoad(args[1], args[2], args[3:]); err != nil {
			log.Fatal(err)
		}
	case "export":
		if len(args) < 2 {
			log.Fatal("export requires an output path")
		}
		if *corpusReg == "" {
			log.Fatal("export only applies to -corpus guides")
		}
		if err := exportCorpus(*corpusReg, *seed, args[1]); err != nil {
			log.Fatal(err)
		}
		log.Printf("synthetic guide exported to %s", args[1])
	case "diff":
		// diff <snapshot> <source> — compare a saved advisor against the
		// current version of its source by sentence identity, and predict
		// whether a reload would rebuild incrementally or in full
		if len(args) < 3 {
			log.Fatal("diff requires a snapshot path and a source (document path or built-in corpus name)")
		}
		if err := cmdDiff(args[1], args[2], *seed, *incrThreshold); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown subcommand %q (want rules, query, report, repl, serve, save, load, export, diff)", args[0])
	}
}

// diffSampleCap bounds how many added/removed sentences cmdDiff prints.
const diffSampleCap = 10

// loadDiffSource resolves the diff subcommand's source argument: a document
// file when it has a known extension, otherwise a built-in corpus name
// generated with -seed.
func loadDiffSource(source string, seed int64) (*htmldoc.Document, []htmldoc.Sentence, error) {
	switch filepath.Ext(source) {
	case ".html", ".htm", ".md", ".markdown", ".txt":
		d, err := parseDocFile(source)
		if err != nil {
			return nil, nil, err
		}
		return d, d.Sentences(), nil
	}
	reg, err := corpusRegister(source)
	if err != nil {
		return nil, nil, fmt.Errorf("diff source %q is neither a document path (.html, .md, .txt) nor a built-in corpus name", source)
	}
	g := corpus.Generate(reg, seed)
	return g.Doc, g.Sentences, nil
}

// cmdDiff prints the identity diff between a saved advisor and the current
// version of a source: the kept/added/removed partition, the change ratio,
// and the rebuild mode a serve reload would pick at the given threshold.
func cmdDiff(snapPath, source string, seed int64, threshold float64) error {
	advisor, err := loadAdvisorFile(snapPath)
	if err != nil {
		return err
	}
	d, sents, err := loadDiffSource(source, seed)
	if err != nil {
		return err
	}
	sents = htmldoc.StampIDs(d, sents)
	diffs := doc.Diff(advisor.SentenceIDs(), htmldoc.IDsOf(sents))

	fmt.Printf("%s (%d sentences) vs %s (%d sentences)\n", snapPath, diffs.OldLen, source, diffs.NewLen)
	fmt.Printf("  kept    %d\n  added   %d\n  removed %d\n", len(diffs.Kept), len(diffs.Added), len(diffs.Removed))
	fmt.Printf("  change ratio %.3f, reuse ratio %.3f\n", diffs.ChangeRatio(), diffs.ReuseRatio())
	mode := "full"
	if threshold >= 0 && diffs.ChangeRatio() <= threshold {
		mode = "incremental"
	}
	fmt.Printf("  a reload at -incremental-threshold %.2f would rebuild: %s\n", threshold, mode)

	for i, j := range diffs.Added {
		if i == diffSampleCap {
			fmt.Printf("  ... and %d more added\n", len(diffs.Added)-diffSampleCap)
			break
		}
		fmt.Printf("  + %s\n", sents[j].Text)
	}
	for i, k := range diffs.Removed {
		if i == diffSampleCap {
			fmt.Printf("  ... and %d more removed\n", len(diffs.Removed)-diffSampleCap)
			break
		}
		fmt.Printf("  - %s\n", advisor.SentenceText(k))
	}
	return nil
}

// cmdLoad answers a subcommand from a snapshot file written by save,
// skipping Stage I entirely.
func cmdLoad(path, sub string, rest []string) error {
	advisor, err := loadAdvisorFile(path)
	if err != nil {
		return err
	}
	switch sub {
	case "rules":
		cmdRules(advisor)
	case "query":
		if len(rest) == 0 {
			return fmt.Errorf("load %s query requires the question text", path)
		}
		cmdQuery(advisor, strings.Join(rest, " "))
	case "report":
		if len(rest) == 0 {
			return fmt.Errorf("load %s report requires a program name or report file", path)
		}
		cmdReport(advisor, rest[0])
	case "repl":
		cmdREPL(advisor, advisor.Title())
	default:
		return fmt.Errorf("load: unknown subcommand %q (want rules, query, report, repl)", sub)
	}
	return nil
}

// loadAdvisorFile reads one advisor snapshot as written by save (a raw
// versioned gob stream, the same payload the snapshot store manages).
func loadAdvisorFile(path string) (*core.Advisor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	advisor, err := core.LoadAdvisor(f)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	base := filepath.Base(path)
	advisor.SetName(strings.TrimSuffix(base, filepath.Ext(base)))
	return advisor, nil
}

// configFingerprint hashes everything an advisor build depends on besides
// the document: the keyword configuration, the recommendation threshold,
// and the index shard count (a snapshot stores its shard layout, so a
// -shards change must invalidate it). selectors.Config is plain string
// slices, so the JSON encoding is deterministic.
func configFingerprint(cfg selectors.Config, threshold float64, shards int) string {
	blob, _ := json.Marshal(struct {
		Config    selectors.Config
		Threshold float64
		Shards    int
	}{cfg, threshold, shards})
	return store.HashBytes(blob)
}

// defaultShards derives the default -shards value from the machine: one
// shard per available CPU, capped at 8 (shards beyond the core count only
// add merge overhead), and never below 1. On a single-CPU machine this is
// 1 — the monolithic layout.
func defaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// parseDocFile loads and parses an on-disk document, choosing the parser by
// file extension (.md/.markdown, .txt, else HTML).
func parseDocFile(path string) (*htmldoc.Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	switch {
	case strings.HasSuffix(path, ".md") || strings.HasSuffix(path, ".markdown"):
		return htmldoc.ParseMarkdown(string(data)), nil
	case strings.HasSuffix(path, ".txt"):
		return htmldoc.ParsePlainText(string(data)), nil
	default:
		return htmldoc.Parse(string(data)), nil
	}
}

func buildAdvisor(fw *core.Framework, docPath, corpusReg string, seed int64) (*core.Advisor, string, error) {
	switch {
	case docPath != "":
		doc, err := parseDocFile(docPath)
		if err != nil {
			return nil, "", err
		}
		return fw.BuildFromDocument(doc), docPath, nil
	case corpusReg != "":
		reg, err := corpusRegister(corpusReg)
		if err != nil {
			return nil, "", err
		}
		g := corpus.Generate(reg, seed)
		return fw.BuildFromSentences(g.Doc, g.Sentences), g.Doc.Title, nil
	}
	return nil, "", fmt.Errorf("one of -doc or -corpus is required")
}

// corpusRegister maps a -corpus flag value onto a built-in guide register.
func corpusRegister(name string) (corpus.Register, error) {
	switch strings.ToLower(name) {
	case "cuda":
		return corpus.CUDA, nil
	case "opencl":
		return corpus.OpenCL, nil
	case "xeon", "xeonphi":
		return corpus.XeonPhi, nil
	}
	return 0, fmt.Errorf("unknown corpus %q", name)
}

// primaryAdvisorName derives the registry name for the primary advisor: the
// corpus register when one was selected, else the document's base filename.
func primaryAdvisorName(corpusReg, docPath string) string {
	if corpusReg != "" {
		name := strings.ToLower(corpusReg)
		if name == "xeonphi" {
			name = "xeon"
		}
		return name
	}
	base := filepath.Base(docPath)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// serveConfig carries the serve subcommand's knobs.
type serveConfig struct {
	addr            string
	primaryName     string
	docPath         string   // primary advisor from a document...
	corpusReg       string   // ...or from a built-in guide
	extra           []string // additional built-in guides to host
	seed            int64
	cfgHash         string // configFingerprint of keyword config + threshold
	snapshotDir     string // "" disables the snapshot store
	watch           bool
	rebuildInterval time.Duration
	incrThreshold   float64 // change-ratio ceiling for differential rebuilds (0: default, negative: disabled)
	cacheSize       int
	maxInflight     int
	maxBatch        int
	timeout         time.Duration
	traceSample     float64       // fraction of requests with recorded span trees
	noPrune         bool          // disable MaxScore pruning by default (-prune=false)
	metrics         *obs.Registry // nil: the process-wide default registry

	// fault injection (dev/chaos only): faultSpec is the -fault grammar
	// parsed at startup with faultSeed; faults overrides it with a
	// pre-built injector — the hook chaos tests use to flip rules mid-run.
	faultSpec    string
	faultSeed    int64
	faults       *fault.Injector
	brkThreshold int           // circuit-breaker trip threshold (0: default)
	brkCooldown  time.Duration // circuit-breaker probe cooldown (0: default)

	// sources overrides the flag-derived lifecycle sources — the hook tests
	// use to serve small fixture advisors.
	sources []lifecycle.Source
	// retries/backoff override the lifecycle retry policy (0: defaults) —
	// chaos tests shrink the backoff so fault storms resolve in
	// milliseconds instead of seconds.
	retries int
	backoff time.Duration
}

// corpusSource describes one built-in guide as a lifecycle source. Its
// fingerprint is a function of everything the build depends on (register,
// seed, keyword config, threshold), so a snapshot is stale exactly when one
// of those changed.
func corpusSource(fw *core.Framework, name string, reg corpus.Register, seed int64, cfgHash string) lifecycle.Source {
	fp := store.HashBytes([]byte(fmt.Sprintf("corpus:%s:seed=%d:cfg=%s", name, seed, cfgHash)))
	return lifecycle.Source{
		Name:        name,
		Fingerprint: func() (string, error) { return fp, nil },
		Build: func(ctx context.Context) (*core.Advisor, error) {
			g := corpus.Generate(reg, seed)
			return fw.BuildFromSentencesCtx(ctx, g.Doc, g.Sentences), nil
		},
		Sentences: func(ctx context.Context) (*htmldoc.Document, []htmldoc.Sentence, error) {
			g := corpus.Generate(reg, seed)
			return g.Doc, g.Sentences, nil
		},
		Update: fw.UpdateFromSentencesCtx,
	}
}

// docSource describes an on-disk document as a lifecycle source: the
// fingerprint re-hashes the file contents on every poll, which is what makes
// -watch notice edits.
func docSource(fw *core.Framework, name, path, cfgHash string) lifecycle.Source {
	return lifecycle.Source{
		Name: name,
		Path: path,
		Fingerprint: func() (string, error) {
			h, err := store.HashFile(path)
			if err != nil {
				return "", err
			}
			return store.HashBytes([]byte("doc:" + h + ":cfg=" + cfgHash)), nil
		},
		Build: func(ctx context.Context) (*core.Advisor, error) {
			doc, err := parseDocFile(path)
			if err != nil {
				return nil, err
			}
			return fw.BuildFromSentencesCtx(ctx, doc, doc.Sentences()), nil
		},
		Sentences: func(ctx context.Context) (*htmldoc.Document, []htmldoc.Sentence, error) {
			doc, err := parseDocFile(path)
			if err != nil {
				return nil, nil, err
			}
			return doc, doc.Sentences(), nil
		},
		Update: fw.UpdateFromSentencesCtx,
	}
}

// serveSources derives the lifecycle sources from the serve flags: the
// primary advisor (document or built-in guide) plus every -corpora extra.
func serveSources(fw *core.Framework, cfg serveConfig) ([]lifecycle.Source, error) {
	var sources []lifecycle.Source
	if cfg.docPath != "" {
		sources = append(sources, docSource(fw, cfg.primaryName, cfg.docPath, cfg.cfgHash))
	} else {
		reg, err := corpusRegister(cfg.corpusReg)
		if err != nil {
			return nil, err
		}
		sources = append(sources, corpusSource(fw, cfg.primaryName, reg, cfg.seed, cfg.cfgHash))
	}
	for _, name := range cfg.extra {
		name := strings.ToLower(name)
		if name == "xeonphi" {
			name = "xeon"
		}
		if name == cfg.primaryName {
			continue
		}
		reg, err := corpusRegister(name)
		if err != nil {
			return nil, err
		}
		sources = append(sources, corpusSource(fw, name, reg, cfg.seed, cfg.cfgHash))
	}
	return sources, nil
}

// buildServeHandler assembles the full serving stack — snapshot store,
// lifecycle manager (warm start + hot reload), registry, JSON API service,
// HTML UI sharing the service's cache, tracing middleware, and the debug
// endpoints (/metricz, /tracez, /debug/pprof) — without binding a listener,
// so tests can mount it on httptest.Server. It returns the root handler, the
// service (for BeginDrain and stats), and the lifecycle manager (run its
// watcher with mgr.Run when cfg.watch is set).
func buildServeHandler(fw *core.Framework, cfg serveConfig, logger *slog.Logger) (http.Handler, *service.Service, *lifecycle.Manager, error) {
	sources := cfg.sources
	if sources == nil {
		var err error
		if sources, err = serveSources(fw, cfg); err != nil {
			return nil, nil, nil, err
		}
	}
	// fault injection wires through every layer from one injector, so a
	// single -fault spec covers store I/O, lifecycle rebuilds, and the
	// serving path; nil (the default) compiles to one nil check per point
	injector := cfg.faults
	if injector == nil && cfg.faultSpec != "" {
		var err error
		if injector, err = fault.Parse(cfg.faultSpec, cfg.faultSeed); err != nil {
			return nil, nil, nil, err
		}
	}
	if injector.Active() {
		logger.Warn("fault injection ENABLED — not for production", "spec", injector.String(), "seed", cfg.faultSeed)
	}

	var snapStore *store.Store
	if cfg.snapshotDir != "" {
		var err error
		if snapStore, err = store.Open(cfg.snapshotDir); err != nil {
			return nil, nil, nil, err
		}
		snapStore.SetFaults(injector)
	}

	registry := service.NewRegistry()
	mgr := lifecycle.New(lifecycle.Options{
		Store:                snapStore,
		Register:             registry.Add,
		Interval:             cfg.rebuildInterval,
		Retries:              cfg.retries,
		Backoff:              cfg.backoff,
		Logger:               logger,
		Metrics:              cfg.metrics,
		Fault:                injector,
		IncrementalThreshold: cfg.incrThreshold,
	})
	for _, src := range sources {
		if err := mgr.AddSource(src); err != nil {
			return nil, nil, nil, err
		}
	}
	// warm start: snapshots with matching source fingerprints load directly;
	// everything missing, stale, or corrupt is cold-built and re-snapshotted
	if err := mgr.WarmStart(context.Background()); err != nil {
		return nil, nil, nil, err
	}
	advisor, ok := registry.Get(cfg.primaryName)
	if !ok {
		return nil, nil, nil, fmt.Errorf("primary advisor %q missing after warm start", cfg.primaryName)
	}
	title := advisor.Title()
	if title == "" {
		title = cfg.primaryName
	}

	tracer := obs.NewTracer(cfg.traceSample, obs.NewTraceStore(obs.DefaultTraceCapacity))
	svc := service.New(registry, service.Options{
		CacheSize:        cfg.cacheSize,
		MaxInFlight:      cfg.maxInflight,
		MaxBatch:         cfg.maxBatch,
		Timeout:          cfg.timeout,
		NoPrune:          cfg.noPrune,
		Logger:           logger,
		Tracer:           tracer,
		Metrics:          cfg.metrics,
		Fault:            injector,
		BreakerThreshold: cfg.brkThreshold,
		BreakerCooldown:  cfg.brkCooldown,
	})
	// rebuilds now swap through the service (Replace + cache invalidation),
	// and the admin/stats surface gains the lifecycle view
	mgr.SetSwap(svc.Reload)
	svc.SetLifecycle(mgr)

	// the HTML UI shares the service's cache and admission control; the
	// request context carries the UI request's span so shared-path queries
	// appear in its trace tree
	ui := webui.New(advisor, title)
	// pages always render the registry's current advisor, so a hot swap
	// reaches the HTML UI without restarting it
	ui.SetAdvisorProvider(func() *core.Advisor {
		a, _ := registry.Get(cfg.primaryName)
		return a
	})
	ui.SetReloadInfo(func() *webui.ReloadInfo {
		for _, a := range mgr.State().Advisors {
			if a.Advisor == cfg.primaryName {
				return &webui.ReloadInfo{
					Origin:   a.Origin,
					BuiltAt:  a.BuiltAt,
					LastSwap: a.LastSwap,
					Reloads:  a.Reloads,
					LastDiff: a.LastDiff,
				}
			}
		}
		return nil
	})
	ui.SetQuerier(func(ctx context.Context, backend, q string) []core.Answer {
		answers, _, err := svc.CachedQueryBackend(ctx, cfg.primaryName, backend, q)
		if err != nil {
			logger.Warn("webui query failed", "err", err)
			return nil
		}
		return answers
	})
	// the /ask page fans out to every advisor in the registry through the
	// service's federation path, sharing its cache and admission control
	ui.SetFederator(func(ctx context.Context, backend, q string, k int) []webui.FederatedHit {
		answers, errs := svc.Ask(ctx, backend, q, k)
		for name, msg := range errs {
			logger.Warn("webui federated ask failed for advisor", "advisor", name, "err", msg)
		}
		hits := make([]webui.FederatedHit, len(answers))
		for i, a := range answers {
			hits[i] = webui.FederatedHit{
				Advisor: a.Advisor,
				Section: a.Rule.Section,
				Text:    a.Rule.Text,
				Score:   a.Score,
				Norm:    a.Norm,
			}
		}
		return hits
	})

	root := http.NewServeMux()
	root.Handle("/v1/", svc)
	root.Handle("/healthz", svc)
	root.Handle("/readyz", svc)
	root.Handle("/statsz", svc)
	root.Handle("/metricz", svc)
	root.Handle("/tracez", svc)
	// profiling endpoints on the serving mux (mounted explicitly rather than
	// relying on the net/http/pprof DefaultServeMux registration)
	root.HandleFunc("/debug/pprof/", pprof.Index)
	root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	root.HandleFunc("/debug/pprof/profile", pprof.Profile)
	root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	root.HandleFunc("/debug/pprof/trace", pprof.Trace)
	root.Handle("/", obs.Middleware(tracer, ui))
	return root, svc, mgr, nil
}

// cmdServe runs the production serving layer: a registry warm-started from
// the snapshot store (cold-building only what is missing or stale), the /v1
// JSON API with query cache and admission control, the HTML webui on the
// same mux sharing both, and — with -watch — a background rebuild loop that
// hot-swaps advisors when their sources change. SIGINT/SIGTERM triggers a
// graceful drain.
func cmdServe(fw *core.Framework, cfg serveConfig) error {
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	root, svc, mgr, err := buildServeHandler(fw, cfg, logger)
	if err != nil {
		return err
	}
	watchCtx, stopWatch := context.WithCancel(context.Background())
	defer stopWatch()
	if cfg.watch {
		go mgr.Run(watchCtx)
		logger.Info("watching sources", "interval", cfg.rebuildInterval.String())
	}

	srv := &http.Server{Addr: cfg.addr, Handler: root}
	done := make(chan error, 1)
	go func() {
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		<-sigc
		logger.Info("signal received, draining")
		stopWatch() // no rebuilds during shutdown
		svc.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx) // drains in-flight requests
	}()
	log.Printf("serving on %s (advisors: %s; JSON API under /v1/; debug: /metricz /tracez /debug/pprof)",
		cfg.addr, strings.Join(svc.Registry().Names(), ", "))
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-done
}

func cmdRules(a *core.Advisor) {
	rules := a.Rules()
	st := a.BuildStats()
	fmt.Printf("%d advising sentences out of %d (ratio %.1f); annotate %v, classify %v, index %v\n",
		len(rules), a.SentenceCount(), a.CompressionRatio(),
		st.Annotate.Round(time.Millisecond), st.Classify.Round(time.Millisecond), st.Indexing.Round(time.Millisecond))
	for _, sel := range []selectors.SelectorID{selectors.Keyword, selectors.Comparative, selectors.Imperative, selectors.Subject, selectors.Purpose} {
		if n := st.BySelector[sel]; n > 0 {
			fmt.Printf("  %-28s %d\n", sel, n)
		}
	}
	fmt.Println()
	lastSection := ""
	for _, r := range rules {
		if r.Section != lastSection {
			fmt.Printf("%s\n", r.Section)
			lastSection = r.Section
		}
		fmt.Printf("  - %s  [%s]\n", r.Text, r.Selector)
	}
}

func cmdQuery(a *core.Advisor, q string) {
	answers := a.Query(q)
	if len(answers) == 0 {
		fmt.Println("No relevant sentences found.")
		return
	}
	for _, ans := range answers {
		fmt.Printf("%.2f  [%s]  %s\n", ans.Score, ans.Sentence.Section, ans.Sentence.Text)
	}
}

func cmdReport(a *core.Advisor, arg string) {
	var text string
	if data, err := os.ReadFile(arg); err == nil {
		text = string(data)
	} else {
		synth, serr := nvvp.Synthesize(arg)
		if serr != nil {
			log.Fatalf("%q is neither a readable file (%v) nor a known program (%v)", arg, err, serr)
		}
		text = synth
	}
	report, err := parseAnyReport(text)
	if err != nil {
		log.Fatal(err)
	}
	for _, ra := range a.AnswerReport(report) {
		fmt.Printf("== Issue: %s (section %s)\n", ra.Issue.Title, ra.Issue.Section)
		if len(ra.Answers) == 0 {
			fmt.Println("   No relevant sentences found.")
			continue
		}
		for _, ans := range ra.Answers {
			fmt.Printf("   %.2f  [%s]  %s\n", ans.Score, ans.Sentence.Section, ans.Sentence.Text)
		}
	}
}

// cmdREPL runs an interactive question loop against the advisor — the
// terminal analogue of the web tool's query box.
func cmdREPL(a *core.Advisor, title string) {
	fmt.Printf("%s — %d rules from %d sentences. Ask optimization questions; blank line quits.\n",
		title, len(a.Rules()), a.SentenceCount())
	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("egeria> ")
		if !scanner.Scan() {
			break
		}
		q := strings.TrimSpace(scanner.Text())
		if q == "" {
			break
		}
		answers := a.Query(q)
		if len(answers) == 0 {
			fmt.Println("No relevant sentences found.")
			continue
		}
		for i, ans := range answers {
			if i >= 10 {
				fmt.Printf("... and %d more\n", len(answers)-i)
				break
			}
			fmt.Printf("  %.2f  [%s]\n        %s\n", ans.Score, ans.Sentence.Section, ans.Sentence.Text)
		}
	}
}

// exportCorpus renders a synthetic guide as an HTML file, so the HTML
// ingestion path can be exercised against a document with known properties.
func exportCorpus(register string, seed int64, path string) error {
	reg, err := corpusRegister(register)
	if err != nil {
		return err
	}
	g := corpus.Generate(reg, seed)
	return os.WriteFile(path, []byte(g.RenderHTML()), 0o644)
}

// parseAnyReport accepts both supported profiler formats: the NVVP-style
// text report and the JSON metrics snapshot.
func parseAnyReport(text string) (*nvvp.Report, error) {
	trimmed := strings.TrimSpace(text)
	if strings.HasPrefix(trimmed, "{") {
		m, err := nvvp.ParseMetricsJSON([]byte(trimmed))
		if err != nil {
			return nil, err
		}
		return m.Report(), nil
	}
	return nvvp.Parse(text)
}
