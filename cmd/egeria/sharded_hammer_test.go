package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/lifecycle"
	"repro/internal/obs"
	"repro/internal/service"
)

// shardedSource is testSource with a shard count: the built advisor carries
// a ShardedIndex, so the serving stack exercises the fan-out/merge path.
func shardedSource(t testing.TB, name string, size int, seed int64, shards int) lifecycle.Source {
	t.Helper()
	reg, err := corpusRegister(name)
	if err != nil {
		t.Fatal(err)
	}
	return lifecycle.Source{
		Name:        name,
		Fingerprint: func() (string, error) { return fmt.Sprintf("sharded:%s:%d:%d:%d", name, size, seed, shards), nil },
		Build: func(ctx context.Context) (*core.Advisor, error) {
			g := corpus.GenerateSized(reg, size, 0.3, seed)
			return core.New(core.WithShards(shards)).BuildFromSentences(g.Doc, g.Sentences), nil
		},
	}
}

// TestServeShardedHammer is the sharded-retrieval race hammer from
// DESIGN.md §13: a serve stack whose advisor holds a 4-shard index, driven
// by concurrent cache-missing queries while admin reloads hot-swap the
// advisor underneath and the vsm.score fault point fails individual shards.
// Run with -race in CI. The contract:
//
//   - every response is well-formed JSON, never a panic or a torn merge;
//   - a losing shard degrades the response to HTTP 200 with shards_failed
//     in 1..shards-1 and answers drawn from the surviving shards only;
//   - partial results are never cached: after faults stop, the same
//     queries return complete, byte-identical answers;
//   - all shards failing is a clean 5xx, not an empty 200.
//
// A third of the hammer requests carry ?prune=off, so pruned and
// exhaustive per-shard selection race side by side under -race and under
// shard faults; after recovery both spellings must be byte-identical to
// the fault-free control.
func TestServeShardedHammer(t *testing.T) {
	const nShards = 4
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	queries := []string{
		"reduce global memory latency",
		"avoid divergent warps",
		"improve occupancy",
	}

	// fault-free control over the same sharded source: ground truth bodies
	control, _, _, err := buildServeHandler(core.New(core.WithShards(nShards)), serveConfig{
		primaryName: "cuda",
		cacheSize:   256,
		maxInflight: 64,
		timeout:     5 * time.Second,
		metrics:     obs.NewRegistry(),
		sources:     []lifecycle.Source{shardedSource(t, "cuda", 150, 11, nShards)},
	}, logger)
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(control)
	defer cts.Close()
	want := make(map[string]string, len(queries))
	for _, q := range queries {
		p := "/v1/cuda/query?q=" + url.QueryEscape(q)
		code, body := httpGet(t, cts.URL+p)
		if code != 200 {
			t.Fatalf("control %s: %d %s", p, code, body)
		}
		want[p] = scrubTrace(body)
	}

	inj := fault.New(7)
	handler, svc, _, err := buildServeHandler(core.New(core.WithShards(nShards)), serveConfig{
		primaryName:  "cuda",
		cacheSize:    256,
		maxInflight:  64,
		timeout:      5 * time.Second,
		metrics:      obs.NewRegistry(),
		faults:       inj,
		brkThreshold: 1 << 20, // keep the breaker out of the way: this test is about shard degradation
		retries:      0,
		backoff:      time.Millisecond,
		sources:      []lifecycle.Source{shardedSource(t, "cuda", 150, 11, nShards)},
	}, logger)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()

	if got := svc.Stats().Advisors; got == 0 {
		t.Fatal("no advisors registered")
	}

	// every shard execution draws vsm.score independently: at 35% roughly
	// four of five cache-missing queries lose at least one shard
	inj.Set(fault.VSMScore, fault.Rule{ErrProb: 0.35})

	const (
		workers = 6
		perG    = 40
	)
	var (
		partials  atomic.Int64 // 200s with 1 <= shards_failed < nShards
		healthy   atomic.Int64
		failures  atomic.Int64 // 5xx
		reloads   atomic.Int64
		anomalyMu sync.Mutex
		anomalies []string
	)
	anomaly := func(format string, args ...any) {
		anomalyMu.Lock()
		defer anomalyMu.Unlock()
		if len(anomalies) < 10 {
			anomalies = append(anomalies, fmt.Sprintf(format, args...))
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if g == 0 && i%8 == 3 {
					// hot-swap the advisor mid-storm: rebuild + atomic swap
					// must never tear a merge in a concurrent query
					resp, err := http.Post(ts.URL+"/v1/admin/reload?advisor=cuda", "", nil)
					if err != nil {
						anomaly("reload: %v", err)
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					reloads.Add(1)
					continue
				}
				// unique q per request defeats the cache, forcing a fresh
				// fan-out that draws the fault point
				q := fmt.Sprintf("%s hammer-%d-%d", queries[i%len(queries)], g, i)
				u := ts.URL + "/v1/cuda/query?q=" + url.QueryEscape(q)
				if i%3 == 2 {
					// exhaustive scoring races the pruned default
					u += "&prune=off"
				}
				resp, err := http.Get(u)
				if err != nil {
					anomaly("get: %v", err)
					continue
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					anomaly("read: %v", err)
					continue
				}
				var qr struct {
					Count        int    `json:"count"`
					ShardsFailed int    `json:"shards_failed"`
					TraceID      string `json:"trace_id"`
					Error        string `json:"error"`
				}
				if err := json.Unmarshal(body, &qr); err != nil {
					anomaly("torn response %d: %s", resp.StatusCode, body)
					continue
				}
				switch {
				case resp.StatusCode == 200 && qr.ShardsFailed == 0:
					healthy.Add(1)
				case resp.StatusCode == 200 && qr.ShardsFailed >= 1 && qr.ShardsFailed < nShards:
					partials.Add(1)
				case resp.StatusCode == 200:
					anomaly("200 with shards_failed=%d (>= shard count %d): %s", qr.ShardsFailed, nShards, body)
				case resp.StatusCode >= 500:
					failures.Add(1)
				default:
					anomaly("unexpected status %d: %s", resp.StatusCode, body)
				}
			}
		}(g)
	}
	wg.Wait()
	if len(anomalies) != 0 {
		t.Fatalf("hammer anomalies: %v", anomalies)
	}
	if partials.Load() == 0 {
		t.Fatalf("no degraded responses under a 35%% per-shard fault storm (healthy %d, 5xx %d) — shard fault injection not wired?",
			healthy.Load(), failures.Load())
	}
	if reloads.Load() == 0 {
		t.Fatal("no reloads completed")
	}
	t.Logf("hammer: %d healthy, %d partial, %d 5xx, %d reloads", healthy.Load(), partials.Load(), failures.Load(), reloads.Load())

	// all shards failing must be a clean 5xx, never an empty 200
	inj.Set(fault.VSMScore, fault.Rule{ErrProb: 1})
	code, body := httpGet(t, ts.URL+"/v1/cuda/query?q=total+shard+loss")
	if code < 500 {
		t.Fatalf("query with every shard failing: %d %s, want 5xx", code, body)
	}

	// recovery: faults off, the exact control queries must come back
	// complete and byte-identical — proving no partial result was cached
	// during the storm and no torn state survived the reload races
	inj.Reset()
	for _, q := range queries {
		p := "/v1/cuda/query?q=" + url.QueryEscape(q)
		code, body := httpGet(t, ts.URL+p)
		if code != 200 {
			t.Fatalf("post-storm %s: %d %s", p, code, body)
		}
		var qr service.QueryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatalf("post-storm %s: torn body %s", p, body)
		}
		if qr.ShardsFailed != 0 {
			t.Fatalf("post-storm %s: shards_failed=%d with faults off", p, qr.ShardsFailed)
		}
		if got := scrubTrace(body); got != want[p] {
			t.Errorf("post-storm %s diverged from fault-free control:\n got %s\nwant %s", p, got, want[p])
		}
		// the exhaustive spelling must produce the same bytes as the pruned
		// default — the serving-layer face of the parity guarantee
		code, body = httpGet(t, ts.URL+p+"&prune=off")
		if code != 200 {
			t.Fatalf("post-storm %s&prune=off: %d %s", p, code, body)
		}
		if got := scrubTrace(body); got != want[p] {
			t.Errorf("post-storm %s&prune=off diverged from control:\n got %s\nwant %s", p, got, want[p])
		}
	}
}

// TestServeShardedPartialNotCached pins the cache interaction in
// isolation: a degraded answer set must not poison the cache, and the
// first fault-free request after recovery recomputes and caches the
// complete answers.
func TestServeShardedPartialNotCached(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	inj := fault.New(3)
	handler, _, _, err := buildServeHandler(core.New(core.WithShards(4)), serveConfig{
		primaryName: "cuda",
		cacheSize:   64,
		maxInflight: 8,
		timeout:     5 * time.Second,
		metrics:     obs.NewRegistry(),
		faults:      inj,
		sources:     []lifecycle.Source{shardedSource(t, "cuda", 150, 11, 4)},
	}, logger)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()

	// probe distinct queries until one lands degraded: a complete answer is
	// cached on first touch, so each attempt needs a fresh cache key. The
	// query that came back partial is the one whose cache entry must NOT
	// hold the partial answer set.
	inj.Set(fault.VSMScore, fault.Rule{ErrProb: 0.5})
	probe := ""
	for i := 0; i < 200 && probe == ""; i++ {
		u := ts.URL + "/v1/cuda/query?q=" + url.QueryEscape(fmt.Sprintf("reduce global memory latency %d", i))
		code, body := httpGet(t, u)
		if code != 200 {
			continue
		}
		var qr service.QueryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatalf("torn body: %s", body)
		}
		if qr.ShardsFailed > 0 {
			probe = u
		}
	}
	if probe == "" {
		t.Fatal("no degraded response in 200 draws at 50% per-shard fault probability")
	}

	// with faults off, the next hit must be a complete miss-then-compute:
	// a cached partial would surface here as shards_failed > 0 or X-Cache hit
	// with missing answers
	inj.Reset()
	resp, err := http.Get(probe)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var qr service.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("torn body: %s", body)
	}
	if qr.ShardsFailed != 0 {
		t.Fatalf("partial result was cached: shards_failed=%d after faults off", qr.ShardsFailed)
	}
	if qr.Count == 0 {
		t.Fatalf("post-recovery answers empty: %s", body)
	}
	// and the complete result is what gets cached
	code, body2 := httpGet(t, probe)
	if code != 200 {
		t.Fatalf("cached read: %d", code)
	}
	if scrubTrace(body2) != scrubTrace(body) {
		t.Fatalf("cached body diverged:\n got %s\nwant %s", body2, body)
	}
}
