// Command fuzzseed regenerates the checked-in seed corpora for the fuzz
// targets (FuzzTokenize, FuzzParse, FuzzQuery, FuzzLoadAdvisor) from the
// three built-in synthetic guides. Run from the repository root:
//
//	go run ./tools/fuzzseed
//
// The seeds live in each package's testdata/fuzz/<Target>/ directory — the
// layout `go test -fuzz` reads natively — so the fuzzers start from
// realistic guide HTML, guide sentences, and guide-derived queries rather
// than from empty inputs. htmldoc cannot import corpus (corpus builds on
// htmldoc), which is why these are files instead of f.Add calls.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/core"
	"repro/internal/corpus"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fuzzseed: ")

	guides := map[string]corpus.Register{
		"cuda":   corpus.CUDA,
		"opencl": corpus.OpenCL,
		"xeon":   corpus.XeonPhi,
	}

	var html, sentences, queries []seed
	for name, reg := range guides {
		g := corpus.GenerateSized(reg, 60, 0.3, 11)
		html = append(html, seed{name + "_guide", g.RenderHTML()})
		for i, text := range g.Texts() {
			if i >= 12 {
				break
			}
			sentences = append(sentences, seed{fmt.Sprintf("%s_sent_%02d", name, i), text})
		}
	}
	for i, q := range corpus.CUDAQueries() {
		queries = append(queries, seed{fmt.Sprintf("cuda_query_%02d", i), q.Text})
	}

	write("internal/htmldoc/testdata/fuzz/FuzzTokenize", html)
	write("internal/depparse/testdata/fuzz/FuzzParse", sentences)
	write("internal/service/testdata/fuzz/FuzzQuery", queries)

	// snapshot-format seeds: a valid gob stream per guide plus the corrupt
	// shapes a crash or disk fault could produce — truncation, bit rot, and
	// a plausible-looking stream with a skewed leading version
	var snaps []seed
	for name, reg := range guides {
		g := corpus.GenerateSized(reg, 60, 0.3, 11)
		adv := core.New().BuildFromSentences(g.Doc, g.Sentences)
		var buf bytes.Buffer
		if err := adv.Save(&buf); err != nil {
			log.Fatal(err)
		}
		valid := buf.Bytes()
		snaps = append(snaps, seed{name + "_snapshot", string(valid)})
		if name == "cuda" {
			snaps = append(snaps, seed{"cuda_truncated", string(valid[:len(valid)/2])})
			flipped := bytes.Clone(valid)
			flipped[len(flipped)/3] ^= 0xff
			snaps = append(snaps, seed{"cuda_bitrot", string(flipped)})
			snaps = append(snaps, seed{"cuda_head_only", string(valid[:24])})
		}
	}
	snaps = append(snaps, seed{"empty", ""}, seed{"not_gob", "{\"advisor\":\"cuda\"}"})
	writeBytes("internal/core/testdata/fuzz/FuzzLoadAdvisor", snaps)
}

type seed struct{ name, value string }

// write emits one file per seed in the `go test fuzz v1` corpus format.
func write(dir string, seeds []seed) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, s := range seeds {
		body := "go test fuzz v1\nstring(" + strconv.Quote(s.value) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, s.name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("%s: %d seeds", dir, len(seeds))
}

// writeBytes is write for []byte-typed fuzz targets (binary inputs).
func writeBytes(dir string, seeds []seed) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, s := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(s.value) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, s.name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("%s: %d seeds", dir, len(seeds))
}
