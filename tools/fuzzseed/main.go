// Command fuzzseed regenerates the checked-in seed corpora for the fuzz
// targets (FuzzTokenize, FuzzParse, FuzzQuery, FuzzLoadAdvisor) from the
// three built-in synthetic guides. Run from the repository root:
//
//	go run ./tools/fuzzseed
//
// The seeds live in each package's testdata/fuzz/<Target>/ directory — the
// layout `go test -fuzz` reads natively — so the fuzzers start from
// realistic guide HTML, guide sentences, and guide-derived queries rather
// than from empty inputs. htmldoc cannot import corpus (corpus builds on
// htmldoc), which is why these are files instead of f.Add calls.
package main

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/htmldoc"
	"repro/internal/textproc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fuzzseed: ")

	guides := map[string]corpus.Register{
		"cuda":   corpus.CUDA,
		"opencl": corpus.OpenCL,
		"xeon":   corpus.XeonPhi,
	}

	var html, sentences, queries []seed
	for name, reg := range guides {
		g := corpus.GenerateSized(reg, 60, 0.3, 11)
		html = append(html, seed{name + "_guide", g.RenderHTML()})
		for i, text := range g.Texts() {
			if i >= 12 {
				break
			}
			sentences = append(sentences, seed{fmt.Sprintf("%s_sent_%02d", name, i), text})
		}
	}
	for i, q := range corpus.CUDAQueries() {
		queries = append(queries, seed{fmt.Sprintf("cuda_query_%02d", i), q.Text})
	}

	write("internal/htmldoc/testdata/fuzz/FuzzTokenize", html)
	write("internal/depparse/testdata/fuzz/FuzzParse", sentences)
	write("internal/service/testdata/fuzz/FuzzQuery", queries)

	// top-k parity seeds: realistic guide corpora × guide queries, across
	// the k / threshold / shard-count axes the pruning bound math cares
	// about (tiny k, k past the corpus size, the paper's threshold, the
	// exhaustive-fallback thresholds, monolithic and many-shard layouts)
	var parity []topkSeed
	for name, reg := range guides {
		g := corpus.GenerateSized(reg, 60, 0.3, 11)
		texts := g.Texts()
		if len(texts) > 48 {
			texts = texts[:48]
		}
		blob := joinLines(texts)
		for i, q := range corpus.CUDAQueries() {
			if i >= 4 {
				break
			}
			parity = append(parity,
				topkSeed{fmt.Sprintf("%s_q%02d_top10", name, i), blob, q.Text, 10, 0.15, 4},
				topkSeed{fmt.Sprintf("%s_q%02d_top1", name, i), blob, q.Text, 1, 0.01, 1},
				topkSeed{fmt.Sprintf("%s_q%02d_all", name, i), blob, q.Text, 2 * len(texts), 0, 8},
			)
		}
	}
	writeTopK("internal/vsm/testdata/fuzz/FuzzTopKParity", parity)

	// snapshot-format seeds: a valid gob stream per guide plus the corrupt
	// shapes a crash or disk fault could produce — truncation, bit rot, and
	// a plausible-looking stream with a skewed leading version
	var snaps []seed
	for name, reg := range guides {
		g := corpus.GenerateSized(reg, 60, 0.3, 11)
		adv := core.New().BuildFromSentences(g.Doc, g.Sentences)
		var buf bytes.Buffer
		if err := adv.Save(&buf); err != nil {
			log.Fatal(err)
		}
		valid := buf.Bytes()
		snaps = append(snaps, seed{name + "_snapshot", string(valid)})
		if name == "cuda" {
			snaps = append(snaps, seed{"cuda_truncated", string(valid[:len(valid)/2])})
			flipped := bytes.Clone(valid)
			flipped[len(flipped)/3] ^= 0xff
			snaps = append(snaps, seed{"cuda_bitrot", string(flipped)})
			snaps = append(snaps, seed{"cuda_head_only", string(valid[:24])})
		}
	}
	// pre-identity snapshots: streams an older build wrote, with no ID field
	// on sentences — one with per-sentence Terms (loads as a full-fidelity
	// warm start) and one without (the text-renormalizing fallback). Both
	// must keep loading forever.
	legacyTerms, legacyBare := legacySnapshots(corpus.GenerateSized(corpus.CUDA, 60, 0.3, 11))
	snaps = append(snaps,
		seed{"cuda_legacy_terms_only", string(legacyTerms)},
		seed{"cuda_legacy_no_terms", string(legacyBare)},
	)
	snaps = append(snaps, seed{"empty", ""}, seed{"not_gob", "{\"advisor\":\"cuda\"}"})
	writeBytes("internal/core/testdata/fuzz/FuzzLoadAdvisor", snaps)
}

// legacySentence mirrors the pre-identity htmldoc.Sentence wire shape: no ID
// field. gob matches struct fields by name, so encoding these locally-defined
// structs reproduces byte-compatible old-format streams.
type legacySentence struct {
	Text    string
	Section int
}

// legacySnapshot mirrors the pre-identity advisorSnapshot wire shape.
type legacySnapshot struct {
	Version   int
	Threshold float64
	Title     string
	Sections  []htmldoc.Section
	Sentences []legacySentence
	Advising  []core.AdvisingSentence
	Terms     [][]string
}

// legacySnapshots encodes a guide the way pre-identity builds persisted it:
// once with the per-sentence Terms lists, once without.
func legacySnapshots(g *corpus.Guide) (withTerms, withoutTerms []byte) {
	adv := core.New().BuildFromSentences(g.Doc, g.Sentences)
	snap := legacySnapshot{
		Version:   1,
		Threshold: 0.15,
		Title:     g.Doc.Title,
		Sections:  g.Doc.Sections,
		Advising:  adv.Rules(),
	}
	for _, s := range g.Sentences {
		snap.Sentences = append(snap.Sentences, legacySentence{Text: s.Text, Section: s.Section})
		snap.Terms = append(snap.Terms, textproc.NormalizeTerms(s.Text))
	}
	var a, b bytes.Buffer
	if err := gob.NewEncoder(&a).Encode(snap); err != nil {
		log.Fatal(err)
	}
	snap.Terms = nil
	if err := gob.NewEncoder(&b).Encode(snap); err != nil {
		log.Fatal(err)
	}
	return a.Bytes(), b.Bytes()
}

type seed struct{ name, value string }

// write emits one file per seed in the `go test fuzz v1` corpus format.
func write(dir string, seeds []seed) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, s := range seeds {
		body := "go test fuzz v1\nstring(" + strconv.Quote(s.value) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, s.name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("%s: %d seeds", dir, len(seeds))
}

// topkSeed is one FuzzTopKParity input: a newline-joined sentence corpus,
// a query, and the k / threshold / shard-count axes.
type topkSeed struct {
	name, blob, query string
	k                 int
	threshold         float64
	shards            int
}

// joinLines joins sentences into the newline-separated corpus blob the
// parity fuzzer splits back apart.
func joinLines(texts []string) string {
	out := ""
	for i, t := range texts {
		if i > 0 {
			out += "\n"
		}
		out += t
	}
	return out
}

// writeTopK emits FuzzTopKParity's five-argument corpus files.
func writeTopK(dir string, seeds []topkSeed) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, s := range seeds {
		body := "go test fuzz v1\n" +
			"string(" + strconv.Quote(s.blob) + ")\n" +
			"string(" + strconv.Quote(s.query) + ")\n" +
			"int(" + strconv.Itoa(s.k) + ")\n" +
			"float64(" + strconv.FormatFloat(s.threshold, 'g', -1, 64) + ")\n" +
			"int(" + strconv.Itoa(s.shards) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, s.name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("%s: %d seeds", dir, len(seeds))
}

// writeBytes is write for []byte-typed fuzz targets (binary inputs).
func writeBytes(dir string, seeds []seed) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, s := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(s.value) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, s.name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("%s: %d seeds", dir, len(seeds))
}
