// Command corpusgen renders a seeded, size-parameterized synthetic HPC
// guide as HTML on stdout (or to -o). It is the CLI face of
// corpus.GenerateSized: the scale and sharding benchmarks use the same
// generator in-process, and corpusgen makes the identical documents
// available to shell workflows — exporting a 10k-sentence guide to feed
// `egeria -doc ... serve -shards 8`, say, or regenerating a scaling corpus
// byte-for-byte from its (register, size, fraction, seed) tuple.
//
//	go run ./tools/corpusgen -register cuda -sentences 10000 -seed 7 -o guide.html
//
// Output is deterministic in the flag tuple: the same flags always produce
// the same document.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/corpus"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("corpusgen: ")

	var (
		register  = flag.String("register", "cuda", "guide register: cuda, opencl, xeon")
		sentences = flag.Int("sentences", 0, "total sentence count (0: the register's paper-faithful Table 7 size)")
		advising  = flag.Float64("advising-frac", 0.15, "fraction of advising sentences (ignored when -sentences is 0)")
		seed      = flag.Int64("seed", 1, "generation seed")
		out       = flag.String("o", "", "output path (default stdout)")
		stats     = flag.Bool("stats", false, "print sentence/advising counts to stderr")
	)
	flag.Parse()

	g, err := generate(*register, *sentences, *advising, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "%s: %d sentences, %d advising, %d sections\n",
			g.Doc.Title, len(g.Sentences), g.AdvisingCount(), len(g.Doc.Sections))
	}
	html := g.RenderHTML()
	if *out == "" {
		fmt.Print(html)
		return
	}
	if err := os.WriteFile(*out, []byte(html), 0o644); err != nil {
		log.Fatal(err)
	}
}

// generate resolves the register name and builds the guide: full-size
// (Table 7) when nSentences is 0, custom-size otherwise.
func generate(register string, nSentences int, advisingFrac float64, seed int64) (*corpus.Guide, error) {
	var reg corpus.Register
	switch strings.ToLower(register) {
	case "cuda":
		reg = corpus.CUDA
	case "opencl":
		reg = corpus.OpenCL
	case "xeon", "xeonphi":
		reg = corpus.XeonPhi
	default:
		return nil, fmt.Errorf("unknown register %q (want cuda, opencl, xeon)", register)
	}
	if nSentences < 0 {
		return nil, fmt.Errorf("-sentences must be >= 0, got %d", nSentences)
	}
	if nSentences == 0 {
		return corpus.Generate(reg, seed), nil
	}
	if advisingFrac <= 0 || advisingFrac >= 1 {
		return nil, fmt.Errorf("-advising-frac must be in (0,1), got %v", advisingFrac)
	}
	return corpus.GenerateSized(reg, nSentences, advisingFrac, seed), nil
}
