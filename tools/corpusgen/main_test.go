package main

import (
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a, err := generate("cuda", 200, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := generate("cuda", 200, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sentences) != 200 || len(b.Sentences) != 200 {
		t.Fatalf("sentence counts = %d, %d, want 200", len(a.Sentences), len(b.Sentences))
	}
	if a.RenderHTML() != b.RenderHTML() {
		t.Fatal("same (register, size, frac, seed) produced different HTML")
	}
	c, err := generate("cuda", 200, 0.2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.RenderHTML() == c.RenderHTML() {
		t.Fatal("different seeds produced identical HTML")
	}
}

func TestGenerateFullSize(t *testing.T) {
	g, err := generate("xeon", 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Sentences) == 0 {
		t.Fatal("full-size guide has no sentences")
	}
	if !strings.Contains(g.RenderHTML(), "<html") {
		t.Fatal("RenderHTML did not produce an HTML document")
	}
}

func TestGenerateRejectsBadFlags(t *testing.T) {
	if _, err := generate("vax", 0, 0, 1); err == nil {
		t.Fatal("unknown register accepted")
	}
	if _, err := generate("cuda", -5, 0.2, 1); err == nil {
		t.Fatal("negative sentence count accepted")
	}
	if _, err := generate("cuda", 100, 1.5, 1); err == nil {
		t.Fatal("advising fraction > 1 accepted")
	}
}
