// Command coverreport turns a `go test -coverprofile` file into a
// per-package statement-coverage table plus the repo total, and optionally
// enforces a floor:
//
//	go test -coverprofile=coverage.out ./...
//	go run ./tools/coverreport -profile coverage.out -baseline 84.0
//
// With -baseline, the command exits 1 when total coverage falls below the
// floor — the regression gate `make cover` runs in CI. Coverage is counted
// in statements (the unit the cover tool records), so the total matches
// what `go tool cover -func` reports as "total:".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// pkgCov accumulates covered/total statement counts for one package.
type pkgCov struct {
	covered int
	total   int
}

func pct(covered, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(covered) / float64(total)
}

// parseProfile reads a cover profile in "set" or "count" mode. Each line
// after the mode header is
//
//	name.go:line.col,line.col numStmts hitCount
//
// and a statement counts as covered when its hit count is nonzero.
func parseProfile(path string) (map[string]*pkgCov, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	byPkg := map[string]*pkgCov{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "mode:") || line == "" {
			continue
		}
		colon := strings.LastIndex(line, ".go:")
		if colon < 0 {
			return nil, fmt.Errorf("malformed profile line: %q", line)
		}
		file := line[:colon+3]
		pkg := file
		if slash := strings.LastIndex(file, "/"); slash >= 0 {
			pkg = file[:slash]
		}
		fields := strings.Fields(line[colon+4:])
		if len(fields) != 3 {
			return nil, fmt.Errorf("malformed profile line: %q", line)
		}
		stmts, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("bad statement count in %q: %v", line, err)
		}
		hits, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("bad hit count in %q: %v", line, err)
		}
		c := byPkg[pkg]
		if c == nil {
			c = &pkgCov{}
			byPkg[pkg] = c
		}
		c.total += stmts
		if hits > 0 {
			c.covered += stmts
		}
	}
	return byPkg, sc.Err()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("coverreport: ")
	profile := flag.String("profile", "coverage.out", "cover profile produced by go test -coverprofile")
	baseline := flag.Float64("baseline", 0, "fail (exit 1) when total statement coverage drops below this percentage; 0 disables the gate")
	flag.Parse()

	byPkg, err := parseProfile(*profile)
	if err != nil {
		log.Fatal(err)
	}
	if len(byPkg) == 0 {
		log.Fatal("profile holds no coverage blocks")
	}
	pkgs := make([]string, 0, len(byPkg))
	for p := range byPkg {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)

	width := len("TOTAL")
	for _, p := range pkgs {
		if len(p) > width {
			width = len(p)
		}
	}
	var covered, total int
	for _, p := range pkgs {
		c := byPkg[p]
		covered += c.covered
		total += c.total
		fmt.Printf("%-*s  %6.1f%%  (%d/%d statements)\n", width, p, pct(c.covered, c.total), c.covered, c.total)
	}
	totalPct := pct(covered, total)
	fmt.Printf("%-*s  %6.1f%%  (%d/%d statements)\n", width, "TOTAL", totalPct, covered, total)

	if *baseline > 0 && totalPct < *baseline {
		log.Fatalf("total coverage %.1f%% is below the %.1f%% baseline", totalPct, *baseline)
	}
	if *baseline > 0 {
		fmt.Printf("coverage gate: %.1f%% >= %.1f%% baseline\n", totalPct, *baseline)
	}
}
