package postag

import (
	"testing"
	"testing/quick"

	"repro/internal/textproc"
)

// tagOf returns the tag assigned to the first occurrence of word in sentence.
func tagOf(t *testing.T, sentence, word string) Tag {
	t.Helper()
	words := textproc.Words(sentence)
	tags := Tags(words)
	for i, w := range words {
		if w == word {
			return tags[i]
		}
	}
	t.Fatalf("word %q not found in %q (tokens %v)", word, sentence, words)
	return ""
}

func TestTagClosedClass(t *testing.T) {
	s := "The kernel can often be faster if it uses the shared memory."
	checks := map[string]Tag{
		"The": DT, "can": MD, "often": RB, "if": IN, "it": PRP, "the": DT,
	}
	for w, want := range checks {
		if got := tagOf(t, s, w); got != want {
			t.Errorf("tag(%q) = %v, want %v", w, got, want)
		}
	}
}

func TestTagImperative(t *testing.T) {
	cases := []struct {
		sentence string
		verb     string
	}{
		{"Use shared memory to reduce global memory traffic.", "Use"},
		{"Avoid bank conflicts in shared memory.", "Avoid"},
		{"Unroll the inner loop to reduce instruction overhead.", "Unroll"},
		{"Align the data to the transaction size.", "Align"},
		{"Ensure that all accesses are coalesced.", "Ensure"},
		{"Pack small transfers into one larger transfer.", "Pack"},
	}
	for _, c := range cases {
		if got := tagOf(t, c.sentence, c.verb); got != VB {
			t.Errorf("imperative %q in %q tagged %v, want VB", c.verb, c.sentence, got)
		}
	}
}

func TestTagNotImperative(t *testing.T) {
	// Sentence-initial noun/verb-ambiguous words with a finite verb later
	// must stay nominal.
	cases := []struct {
		sentence string
		word     string
	}{
		{"Bank conflicts hurt the performance of shared memory.", "Bank"},
		{"Pinning takes time, so avoid incurring pinning costs.", "Pinning"},
		{"Register usage can be controlled using the maxrregcount compiler option.", "Register"},
	}
	for _, c := range cases {
		got := tagOf(t, c.sentence, c.word)
		if got == VB {
			t.Errorf("%q in %q wrongly tagged VB", c.word, c.sentence)
		}
	}
}

func TestTagModalComplement(t *testing.T) {
	s := "A developer may prefer using buffers instead of images."
	if got := tagOf(t, s, "prefer"); got != VB {
		t.Errorf("prefer tagged %v, want VB", got)
	}
	if got := tagOf(t, s, "using"); got != VBG {
		t.Errorf("using tagged %v, want VBG", got)
	}
	if got := tagOf(t, s, "developer"); got != NN {
		t.Errorf("developer tagged %v, want NN", got)
	}
}

func TestTagPassive(t *testing.T) {
	s := "This synchronization guarantee can often be leveraged to avoid explicit calls between command submissions."
	if got := tagOf(t, s, "leveraged"); got != VBN {
		t.Errorf("leveraged tagged %v, want VBN", got)
	}
	if got := tagOf(t, s, "be"); got != VB {
		t.Errorf("be tagged %v, want VB", got)
	}
	if got := tagOf(t, s, "avoid"); got != VB {
		t.Errorf("avoid tagged %v, want VB", got)
	}
	if got := tagOf(t, s, "calls"); got != NNS {
		t.Errorf("calls tagged %v, want NNS", got)
	}
}

func TestTagPassiveIsNeeded(t *testing.T) {
	s := "A developer may prefer buffers if no sampling operation is needed."
	if got := tagOf(t, s, "needed"); got != VBN {
		t.Errorf("needed tagged %v, want VBN", got)
	}
	if got := tagOf(t, s, "is"); got != VBZ {
		t.Errorf("is tagged %v, want VBZ", got)
	}
}

func TestTagInfinitivePurpose(t *testing.T) {
	s := "The first step is to minimize data transfers with low bandwidth."
	if got := tagOf(t, s, "to"); got != TO {
		t.Errorf("to tagged %v, want TO", got)
	}
	if got := tagOf(t, s, "minimize"); got != VB {
		t.Errorf("minimize tagged %v, want VB", got)
	}
	if got := tagOf(t, s, "transfers"); got != NNS {
		t.Errorf("transfers tagged %v, want NNS", got)
	}
}

func TestTagVBZPromotion(t *testing.T) {
	s := "Pinning takes time in most cases."
	if got := tagOf(t, s, "takes"); got != VBZ {
		t.Errorf("takes tagged %v, want VBZ", got)
	}
}

func TestTagGerundAfterPreposition(t *testing.T) {
	s := "The first step in maximizing overall memory throughput is important."
	if got := tagOf(t, s, "maximizing"); got != VBG {
		t.Errorf("maximizing tagged %v, want VBG", got)
	}
}

func TestTagIdentifiersAndAcronyms(t *testing.T) {
	s := "The GPU executes clWaitForEvents() before the maxrregcount option takes effect."
	if got := tagOf(t, s, "GPU"); got != NNP {
		t.Errorf("GPU tagged %v, want NNP", got)
	}
	if got := tagOf(t, s, "clWaitForEvents()"); got != NN {
		t.Errorf("identifier tagged %v, want NN", got)
	}
}

func TestTagNumbers(t *testing.T) {
	s := "Choose a multiple of 32 threads and 3.14 is irrelevant."
	if got := tagOf(t, s, "32"); got != CD {
		t.Errorf("32 tagged %v, want CD", got)
	}
	if got := tagOf(t, s, "3.14"); got != CD {
		t.Errorf("3.14 tagged %v, want CD", got)
	}
}

func TestTagPunctuation(t *testing.T) {
	s := "First, measure; then optimize."
	words := textproc.Words(s)
	tags := Tags(words)
	for i, w := range words {
		if textproc.IsPunct(w) && tags[i] != PUNCT {
			t.Errorf("punct %q tagged %v", w, tags[i])
		}
	}
}

func TestTagAdverbs(t *testing.T) {
	s := "Carefully measure the kernel and optimize it significantly."
	if got := tagOf(t, s, "Carefully"); got != RB {
		t.Errorf("Carefully tagged %v, want RB", got)
	}
	if got := tagOf(t, s, "significantly"); got != RB {
		t.Errorf("significantly tagged %v, want RB", got)
	}
}

func TestTagComparatives(t *testing.T) {
	s := "A faster path uses the largest block size."
	if got := tagOf(t, s, "faster"); got != JJR {
		t.Errorf("faster tagged %v, want JJR", got)
	}
	if got := tagOf(t, s, "largest"); got != JJS {
		t.Errorf("largest tagged %v, want JJS", got)
	}
}

func TestTagConjoinedVerbs(t *testing.T) {
	s := "Developers can choose to use conditional compilation or provide two separate kernels."
	if got := tagOf(t, s, "provide"); !got.IsVerb() {
		t.Errorf("provide tagged %v, want a verb tag", got)
	}
}

func TestTagLengthMatchesInput(t *testing.T) {
	f := func(raw string) bool {
		words := textproc.Words(raw)
		return len(Tags(words)) == len(words)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTagDeterministic(t *testing.T) {
	s := "The number of threads per block should be chosen as a multiple of the warp size."
	w := textproc.Words(s)
	a := Tags(w)
	b := Tags(w)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTagHelpers(t *testing.T) {
	if !VB.IsVerb() || !VBG.IsVerb() || NN.IsVerb() {
		t.Error("IsVerb broken")
	}
	if !NN.IsNoun() || !NNS.IsNoun() || VB.IsNoun() {
		t.Error("IsNoun broken")
	}
	if !JJ.IsAdjective() || !JJR.IsAdjective() || RB.IsAdjective() {
		t.Error("IsAdjective broken")
	}
	if !RB.IsAdverb() || JJ.IsAdverb() {
		t.Error("IsAdverb broken")
	}
	if !VBZ.FiniteVerb() || !MD.FiniteVerb() || VB.FiniteVerb() || VBG.FiniteVerb() {
		t.Error("FiniteVerb broken")
	}
}

func TestLexiconClasses(t *testing.T) {
	a, ok := LexiconClasses("use")
	if !ok || a&CanNoun == 0 || a&CanVerb == 0 {
		t.Errorf("use: %v %v", a, ok)
	}
	if _, ok := LexiconClasses("zzzz"); ok {
		t.Error("zzzz should be unknown")
	}
}

func BenchmarkTagSentence(b *testing.B) {
	words := textproc.Words("The number of threads per block should be chosen as a multiple of the warp size to avoid wasting computing resources with under-populated warps as much as possible.")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tags(words)
	}
}
