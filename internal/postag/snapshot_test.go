package postag

import (
	"strings"
	"testing"

	"repro/internal/textproc"
)

// Snapshot suite: full tag sequences for guide-register sentences, reviewed
// by hand once and pinned. A failing entry means the tagger's behaviour
// changed on a construction the rest of the pipeline depends on — inspect
// before updating.
var tagSnapshots = []struct {
	sentence string
	tags     string // space-separated, one per token
}{
	{
		"Use shared memory to reduce global memory traffic.",
		"VB VBN NN TO VB JJ NN NN .",
	},
	{
		"The warp size is thirty-two threads.",
		"DT NN NN VBZ CD NNS .",
	},
	{
		"This synchronization guarantee can often be leveraged to avoid explicit calls.",
		"DT NN NN MD RB VB VBN TO VB JJ NNS .",
	},
	{
		"Pinning takes time, so avoid incurring pinning costs.",
		"VBG VBZ NN . IN VBP VBG VBG NNS .",
	},
	{
		"The number of threads per block should be chosen as a multiple of the warp size.",
		"DT NN IN NNS IN NN MD VB VBN IN DT NN IN DT NN NN .",
	},
	{
		"Developers can parameterize the execution configuration.",
		"NNS MD VB DT NN NN .",
	},
	{
		"It is often better to recompute a value than to fetch it.",
		"PRP VBZ RB JJ TO VB DT NN IN TO VB PRP .",
	},
	{
		"Do not use mapped memory for large transfers.",
		"VBP RB VB VBN NN IN JJ NNS .",
	},
	{
		"A kernel that spills registers loses throughput.",
		"DT NN DT VBZ NNS VBZ NN .",
	},
	{
		"To maximize instruction throughput the application should minimize arithmetic.",
		"TO VB NN NN DT NN MD VB NN .",
	},
}

func TestTagSnapshots(t *testing.T) {
	for _, snap := range tagSnapshots {
		words := textproc.Words(snap.sentence)
		got := Tags(words)
		want := strings.Fields(snap.tags)
		if len(got) != len(want) {
			t.Errorf("%q: %d tags, snapshot has %d", snap.sentence, len(got), len(want))
			continue
		}
		for i := range want {
			if string(got[i]) != want[i] {
				t.Errorf("%q: token %d (%s) tagged %s, snapshot %s",
					snap.sentence, i, words[i], got[i], want[i])
			}
		}
	}
}
