package postag

import (
	"testing"

	"repro/internal/textproc"
)

// Regression tests for the contextual repair rules added while building the
// golden dependency suite; each pins one construction the guides use.

func TestRuleNumberWords(t *testing.T) {
	s := "The request splits into two transactions of thirty-two bytes."
	if got := tagOf(t, s, "two"); got != CD {
		t.Errorf("two tagged %v, want CD", got)
	}
	if got := tagOf(t, s, "thirty-two"); got != CD {
		t.Errorf("thirty-two tagged %v, want CD", got)
	}
	// "one" stays a pronoun ("one can experiment ...")
	if got := tagOf(t, "One can experiment with the tile size.", "One"); got != PRP {
		t.Errorf("One tagged %v, want PRP", got)
	}
}

func TestRuleParticipleAfterPreposition(t *testing.T) {
	s := "Change the layout from interleaved to planar."
	if got := tagOf(t, s, "interleaved"); got != VBN {
		t.Errorf("interleaved tagged %v, want VBN", got)
	}
}

func TestRulePassivePostmodifier(t *testing.T) {
	s := "The result is a scan followed by a pack."
	if got := tagOf(t, s, "followed"); got != VBN {
		t.Errorf("followed tagged %v, want VBN", got)
	}
}

func TestRuleNNSBetweenNounAndDeterminer(t *testing.T) {
	s := "A stride that crosses the segment boundary splits each request."
	if got := tagOf(t, s, "splits"); got != VBZ {
		t.Errorf("splits tagged %v, want VBZ", got)
	}
}

func TestRuleFrontedClauseVerb(t *testing.T) {
	s := "When the queue drains, submit the next batch."
	if got := tagOf(t, s, "drains"); got != VBZ {
		t.Errorf("drains tagged %v, want VBZ", got)
	}
	if got := tagOf(t, s, "submit"); got != VB {
		t.Errorf("submit tagged %v, want VB", got)
	}
}

func TestRuleRelativeClauseVerb(t *testing.T) {
	s := "A kernel that spills registers loses throughput."
	if got := tagOf(t, s, "spills"); got != VBZ {
		t.Errorf("spills tagged %v, want VBZ", got)
	}
	if got := tagOf(t, s, "loses"); got != VBZ {
		t.Errorf("loses tagged %v, want VBZ", got)
	}
}

func TestRuleConjoinedImperatives(t *testing.T) {
	s := "Avoid atomics and use privatized counters."
	if got := tagOf(t, s, "use"); got != VB {
		t.Errorf("use tagged %v, want VB", got)
	}
	if got := tagOf(t, s, "privatized"); got != VBN {
		t.Errorf("privatized tagged %v, want VBN", got)
	}
}

func TestRuleUnknownVerbAfterTo(t *testing.T) {
	s := "It is faster to rebuild the table than to repopulate it."
	if got := tagOf(t, s, "rebuild"); got != VB {
		t.Errorf("rebuild tagged %v, want VB", got)
	}
	if got := tagOf(t, s, "repopulate"); got != VB {
		t.Errorf("repopulate tagged %v, want VB", got)
	}
}

func TestRuleNominalizationAfterDeterminer(t *testing.T) {
	s := "Transform the gather into a scan."
	if got := tagOf(t, s, "gather"); got != NN {
		t.Errorf("gather tagged %v, want NN", got)
	}
	if got := tagOf(t, s, "Transform"); got != VB {
		t.Errorf("Transform tagged %v, want VB", got)
	}
}

func TestRuleSentenceFinalPluralStaysNominal(t *testing.T) {
	s := "The developers of the runtime document this behavior in the release notes."
	if got := tagOf(t, s, "notes"); got != NNS {
		t.Errorf("notes tagged %v, want NNS", got)
	}
	if got := tagOf(t, s, "document"); got != VBP {
		t.Errorf("document tagged %v, want VBP", got)
	}
}

func TestRuleGerundSubject(t *testing.T) {
	s := "Tiling the loops improves locality."
	if got := tagOf(t, s, "Tiling"); got != VBG {
		t.Errorf("Tiling tagged %v, want VBG", got)
	}
	if got := tagOf(t, s, "improves"); got != VBZ {
		t.Errorf("improves tagged %v, want VBZ", got)
	}
}

// sanity: the repair rules never leave a tag slice with a different length
// or untagged positions.
func TestRepairPreservesShape(t *testing.T) {
	sentences := []string{
		"When the queue drains, submit the next batch.",
		"Avoid atomics and use privatized counters.",
		"A kernel that spills registers loses throughput.",
		"To hide the latency, increase the number of resident warps.",
	}
	for _, s := range sentences {
		words := textproc.Words(s)
		tags := Tags(words)
		if len(tags) != len(words) {
			t.Fatalf("%q: %d tags for %d words", s, len(tags), len(words))
		}
		for i, tg := range tags {
			if tg == "" {
				t.Errorf("%q: empty tag at %d", s, i)
			}
		}
	}
}
