package postag

import "strings"

// Ambig records which open word classes a lexicon entry can belong to.
type Ambig uint8

const (
	CanNoun Ambig = 1 << iota
	CanVerb
	CanAdj
	CanAdv
)

// closedClass maps closed-class words to their (almost always unambiguous)
// tag. Checked before anything else.
var closedClass = map[string]Tag{
	// determiners
	"the": DT, "a": DT, "an": DT, "this": DT, "that": DT, "these": DT,
	"those": DT, "each": DT, "every": DT, "some": DT, "any": DT, "no": DT,
	"all": DT, "both": DT, "another": DT, "such": DT, "either": DT,
	"neither": DT,
	// pronouns
	"it": PRP, "they": PRP, "we": PRP, "you": PRP, "he": PRP, "she": PRP,
	"i": PRP, "them": PRP, "us": PRP, "him": PRP, "her": PRP, "one": PRP,
	"itself": PRP, "themselves": PRP, "yourself": PRP,
	"its": PRPS, "their": PRPS, "your": PRPS, "our": PRPS, "his": PRPS,
	"my": PRPS,
	// coordinating conjunctions
	"and": CC, "or": CC, "but": CC, "nor": CC, "yet": CC, "plus": CC,
	// modals
	"can": MD, "could": MD, "may": MD, "might": MD, "must": MD,
	"shall": MD, "should": MD, "will": MD, "would": MD, "cannot": MD,
	"ca": MD, // tokenized "can't" -> "ca" "n't"
	// prepositions & subordinators
	"of": IN, "in": IN, "on": IN, "at": IN, "by": IN, "for": IN,
	"with": IN, "from": IN, "into": IN, "onto": IN, "upon": IN,
	"about": IN, "between": IN, "among": IN, "through": IN, "during": IN,
	"before": IN, "after": IN, "above": IN, "below": IN, "under": IN,
	"over": IN, "within": IN, "without": IN, "across": IN, "against": IN,
	"along": IN, "around": IN, "behind": IN, "beside": IN, "besides": IN,
	"beyond": IN, "despite": IN, "except": IN, "inside": IN, "outside": IN,
	"per": IN, "since": IN, "than": IN, "toward": IN, "towards": IN,
	"unlike": IN, "until": IN, "via": IN, "versus": IN, "if": IN,
	"because": IN, "although": IN, "though": IN, "unless": IN, "while": IN,
	"whereas": IN, "whether": IN, "so": IN, "as": IN, "like": IN,
	"worth": IN, "amid": IN, "throughout": IN,
	// wh-words
	"which": WDT, "whatever": WDT,
	"who": WP, "whom": WP, "whose": WP, "what": WP,
	"when": WRB, "where": WRB, "why": WRB, "how": WRB, "whenever": WRB,
	"wherever": WRB,
	// other closed items
	"there": EX,
	"not":   RB, "n't": RB,
	"'s": POS,
	"oh": UH, "yes": UH,
}

// numberWords are spelled-out numerals, tagged CD.
var numberWords = map[string]bool{
	"zero": true, "one": false, // "one" stays PRP (closed class)
	"two": true, "three": true, "four": true, "five": true, "six": true,
	"seven": true, "eight": true, "nine": true, "ten": true, "eleven": true,
	"twelve": true, "sixteen": true, "twenty": true, "thirty": true,
	"thirty-two": true, "sixty-four": true, "hundred": true,
	"thousand": true, "million": true, "billion": true,
}

// commonAdverbs are frequent -ly-less adverbs (plus degree words).
var commonAdverbs = map[string]bool{
	"very": true, "too": true, "also": true, "then": true, "thus": true,
	"hence": true, "therefore": true, "however": true, "often": true,
	"always": true, "never": true, "sometimes": true, "usually": true,
	"frequently": true, "rarely": true, "instead": true, "rather": true,
	"even": true, "only": true, "just": true, "still": true, "already": true,
	"again": true, "once": true, "twice": true, "here": true, "now": true,
	"soon": true, "later": true, "first": true, "together": true,
	"well": true, "much": true, "more": true, "most": true, "less": true,
	"least": true, "further": true, "otherwise": true, "moreover": true,
	"furthermore": true, "consequently": true, "accordingly": true,
	"alternatively": true, "additionally": true, "meanwhile": true,
	"nevertheless": true, "nonetheless": true, "especially": true,
	"particularly": true, "specifically": true, "generally": true,
	"typically": true, "currently": true, "directly": true, "early": true,
	"fast": true, "far": true, "long": true, "ahead": true,
}

// beForms / haveForms / doForms drive auxiliary detection downstream.
var beForms = map[string]Tag{
	"be": VB, "is": VBZ, "are": VBP, "am": VBP, "was": VBD, "were": VBD,
	"been": VBN, "being": VBG,
}

var haveForms = map[string]Tag{
	"have": VBP, "has": VBZ, "had": VBD, "having": VBG,
}

var doForms = map[string]Tag{
	"do": VBP, "does": VBZ, "did": VBD, "doing": VBG, "done": VBN,
}

// openLexiconRaw lists open-class words with their possible classes:
// n = noun, v = verb, j = adjective, r = adverb. Words may carry several.
// The register is that of GPU/accelerator programming guides.
const openLexiconRaw = `
access:nv accomplish:v account:nv achieve:v act:nv add:v address:nv adjust:v adopt:v
absorb:v advance:nv advantage:n advice:n advise:v affect:v aggregate:nvj algorithm:n
alias:nv align:v alignment:n allocate:v allocation:n allow:v alternative:nj
amount:nv analysis:n analyze:v answer:nv application:n apply:v approach:nv
appropriate:j architecture:n argue:v argument:n arithmetic:nj arrange:v
array:nv arrive:v aspect:n assembly:n assign:v associate:v assume:v
atomic:j attach:v attain:v attempt:nv attribute:nv avoid:v await:v
bad:j balance:nv band:n bandwidth:n bank:nv barrier:n base:nvj basic:j
batch:nv become:v begin:v behavior:n benchmark:nv beneficial:j benefit:nv
best:jr better:jr big:j bind:v bit:n block:nv board:n body:n boost:nv
bottleneck:n bound:nv boundary:n branch:nv break:nv bridge:nv brief:j
bring:v buffer:nv build:v bus:n byte:n cache:nv calculate:v call:nv
capability:n capacity:n capture:nv care:nv careful:j carry:v case:n cast:nv
cause:nv cell:n chain:nv chance:n change:nv channel:n chapter:n check:nv
chip:n choice:n choose:v chunk:n circumvent:v cite:v claim:nv class:n
clause:n clean:vj clear:vj clock:n close:vj cluster:nv coalesce:v code:nv
collect:v collection:n combine:v command:nv comment:nv common:j
communicate:v compare:v comparison:n compile:v compiler:n complete:vj
complex:j complexity:n component:n compose:v compute:nv computation:n
concept:n concurrent:j condition:nv conditional:j configure:v
configuration:n conflict:nv connect:v consider:v consist:v constant:nj
constraint:n construct:nv consume:v contain:v content:n context:n
contiguous:j continue:v contribute:v control:nv convert:v cooperate:v
coordinate:nv copy:nv core:n correct:vj correspond:v cost:nv count:nv
counter:n couple:nv course:n cover:nv create:v critical:j cross:v
crucial:j current:nj cycle:nv data:n deal:nv debug:v decide:v decision:n
declare:v decompose:v decrease:nv dedicate:v default:nv defer:v define:v
degree:n delay:nv delete:v demand:nv demonstrate:v denote:v depend:v
dependence:n dependency:n depth:n describe:v design:nv desirable:j
detail:nv detect:v determine:v develop:v developer:n device:n devote:v
differ:v difference:n different:j difficult:j dimension:n direct:vj
direction:n directive:n disable:v discard:v discuss:v dispatch:nv
distinct:j distribute:v diverge:v divergence:n divergent:j divide:v
document:nv domain:n dominate:v double:vj download:nv drive:nv driver:n
drain:nv drop:nv dual:j due:j dump:nv duplicate:nv duration:n dynamic:j each:j
ease:nv easy:j edge:n effect:nv effective:j efficiency:n efficient:j
effort:n element:n eliminate:v embed:v emit:v employ:v empty:vj emulate:v
enable:v encounter:v encourage:v end:nv engine:n enhance:v enqueue:v
ensure:v enter:v entire:j entry:n environment:n equal:vj equation:n
equip:v error:n essential:j establish:v estimate:nv evaluate:v even:jr
event:n evict:v evolve:v examine:v example:n exceed:v excess:nj
exchange:nv exclusive:j execute:v execution:n exercise:nv exhibit:nv
exist:v expand:v expect:v expense:n expensive:j experience:nv experiment:nv
expert:n explain:v explicit:j exploit:nv explore:v export:nv expose:v
express:vj extend:v extension:n extent:n external:j extra:j extract:nv
fact:n factor:nv fail:v failure:n fall:nv false:j fast:jr fault:n
feature:nv feed:nv fetch:nv few:j field:n figure:nv file:nv fill:v
filter:nv final:j find:v fine:j finish:nv fit:nv fix:nv flag:nv flexible:j
float:nv flow:nv flush:nv focus:nv fold:nv follow:v footprint:n force:nv
form:nv format:nv formula:n forward:vj fraction:n fragment:nv frame:nv
framework:n free:vj frequency:n frequent:j full:j fully:r function:nv
furthermore:r fuse:v fusion:n gain:nv gap:n gather:v general:j generate:v
generation:n gigabyte:n give:v global:j good:j grain:n granularity:n
graph:n graphic:nj great:j grid:n group:nv grow:v guarantee:nv guard:nv
guide:nv guideline:n half:nj halt:nv handle:nv happen:v hard:jr
hardware:n harness:nv hash:nv hazard:n head:nv heavy:j help:nv hide:v
hierarchy:n high:jr hint:nv hit:nv hold:v host:nv hurt:v hybrid:nj idea:n
ideal:j identical:j identify:v idle:vj ignore:v illustrate:v image:n
imbalance:n impact:nv imperative:nj implement:v implementation:n
implication:n implicit:j imply:v import:nv important:j improve:v
improvement:n include:v incorporate:v increase:nv increment:nv incur:v
independent:j index:nv indicate:v indirect:j individual:nj inefficient:j
infer:v influence:nv inform:v information:n inherent:j initial:j
initialize:v inline:vj inner:j input:nv insert:v inspect:v install:v
instance:n instead:r instruction:n instrument:nv integer:n integrate:v
intend:v intense:j intensity:n intensive:j interact:v interest:nv
interface:nv interleave:v intermediate:j internal:j interpret:v
interrupt:nv intrinsic:nj introduce:v invalidate:v invoke:v involve:v
issue:nv item:n iterate:v iteration:n join:nv keep:v kernel:n key:nj
keyword:n kind:n know:v label:nv lane:n language:n large:j last:vj
latency:n launch:nv layer:n layout:n lead:nv leak:nv learn:v leave:v
less:jr level:n leverage:nv library:n lie:v lifetime:n light:nj like:v
likely:jr limit:nv limiter:n line:nv linear:j link:nv list:nv little:j
live:vj load:nv local:j locality:n locate:v location:n lock:nv logic:n lose:v
logical:j long:jr look:nv loop:nv low:jr lower:vj machine:n main:j
maintain:v major:j make:v manage:v management:n manner:n manual:nj many:j
map:nv mask:nv master:nv match:nv matrix:n matter:nv maximal:j maximize:v
maximum:nj measure:nv mechanism:n media:n memory:n mention:v merge:nv
mesh:n message:n method:n metric:n migrate:v minimal:j minimize:v
minimum:nj minor:j miss:nv mitigate:v mix:nv mode:n model:nv modern:j
modify:v module:n moment:n monitor:nv move:nv multiple:nj multiply:v
multiprocessor:n name:nv narrow:vj native:j nature:n near:j necessary:j
need:nv negative:j nest:nv network:nv new:j next:j node:n normal:j
normalize:v notable:j note:nv notice:nv number:nv object:nv observe:v
obtain:v occupancy:n occupy:v occur:v offer:nv offload:nv offset:nv
often:r old:j operand:n operate:v operation:n opportunity:n optimal:j
optimization:n optimize:v option:n optional:j order:nv organize:v
orient:v origin:n original:j other:j outer:j outline:nv output:nv
outstanding:j overall:j overcome:v overhead:n overlap:nv overload:nv
override:nv own:vj pack:nv package:nv pad:nv padding:n page:nv pair:nv
parallel:nj parallelism:n parameter:n parameterize:v part:nv partial:j
particular:j partition:nv pass:nv passive:j patch:nv path:n pattern:nv peak:nj
penalty:n pend:v per:j percent:n perform:v performance:n period:n
permit:v phase:nv pick:nv piece:nv pin:nv pinpoint:v pipeline:nv pitch:nv
place:nv plan:nv platform:n point:nv pointer:n policy:n pool:nv poor:j
popular:j populate:v port:nv portion:n position:nv possess:v possible:j
post:nv potential:nj power:nv practice:nv pragma:n precede:v precision:n
predicate:nv predict:v prefer:v prefetch:nv prepare:v presence:n
present:vj preserve:v pressure:nv prevent:v previous:j primary:j
principle:n print:nv prior:j privatize:v priority:n private:j problem:n procedure:n
proceed:v process:nv processor:n produce:v product:n profile:nv
profiler:n program:nv programmer:n progress:nv project:nv promote:v
prompt:vj proper:j property:n propose:v protect:v prove:v provide:v
purpose:n push:nv put:v quantity:n query:nv question:nv queue:nv quick:j
range:nv rank:nv rate:nv rather:r ratio:n raw:j reach:nv read:nv ready:j rebuild:v
real:j realize:v rearrange:v reason:nv receive:v recent:j recognize:v
recommend:v recompute:v recompute:v record:nv recover:v recycle:v rectify:v reduce:v reorganize:v
reduction:n redundant:j refactor:v refer:v reference:nv refine:v
region:n register:nv regular:j relate:v relation:n relative:j release:nv
relevant:j reliable:j rely:v remain:v remark:nv remember:v remind:v
remove:v render:v reorder:v repeat:v replace:v replicate:v report:nv
represent:v request:nv require:v requirement:n research:nv reserve:nv
reside:v resident:nj resolve:v resource:n respect:nv respond:v response:n
rest:nv restrict:v restructure:v result:nv resume:v retain:v rethink:v retire:v
retrieve:v return:nv reuse:nv reveal:v review:nv revise:v revolve:v
rewrite:v right:j root:nv round:nv routine:n row:n rule:nv run:nv
runtime:n same:j sample:nv satisfy:v save:nv scale:nv scan:nv scatter:v
schedule:nv scheduler:n scheme:n scope:nv second:nj section:n see:v
seek:v segment:nv select:v selection:n selector:n semantic:j send:v
sense:nv separate:vj sequence:nv sequential:j serial:j serialize:v
serve:v server:n service:nv set:nv setting:n setup:n several:j shape:nv
share:nv shift:nv short:j show:nv side:n sign:nv signal:nv significant:j
similar:j simple:j simplify:v simulate:v simultaneous:j single:j site:n
situation:n size:nv skip:nv slow:vj small:j smooth:vj software:n
solution:n solve:v sort:nv source:nv space:nv span:nv spawn:v special:j
specific:j specification:n specify:v speed:nv spend:v spill:nv split:nv
spot:nv spread:nv stack:nv stage:nv stall:nv standard:nj start:nv state:nv
statement:n static:j statistic:n stay:v stem:nv step:nv storage:n
store:nv strategy:n stream:nv strength:n stress:nv stride:nv string:n
strip:nv strong:j structure:nv student:n study:nv style:n subdivide:v
subject:nv submit:v subsection:n subsequent:j subset:n substantial:j
substitute:nv suffer:v sufficient:j suggest:v suit:nv suitable:j sum:nv
summarize:v summary:n supply:nv support:nv suppose:v surface:nv survey:nv
suspend:v sustain:v swap:nv switch:nv synchronize:v synchronization:n
synthesize:v system:n table:n tag:nv tail:n take:v talk:nv target:nv
task:n technique:n technology:n tell:v temporary:j tend:v term:nv test:nv
texture:nv thrash:v thread:nv threshold:n throughput:n throw:v tie:nv
tile:nv time:nv tip:nv together:r token:n tolerate:v tool:n top:nj
topic:n total:nj trace:nv track:nv trade:nv tradeoff:n traffic:n
transaction:n transfer:nv transform:nv transition:nv translate:v
transpose:nv traverse:v treat:v trigger:nv trip:nv true:j try:nv tune:nv
tuning:n turn:nv twice:r type:nv typical:j uniform:j unit:n unite:v
unroll:v update:nv upload:nv upper:j usage:n use:nv useful:j user:n
utilize:v utilization:n validate:v value:nv variable:nj variant:n
variation:n vary:v vector:nv vendor:n verify:v version:n view:nv
virtual:j visible:j visit:nv volume:n wait:nv want:v warp:nv waste:nv
watch:nv wave:n way:n weak:j weight:nv wide:j width:n window:n wise:j
word:n work:nv workload:n wrap:nv write:nv yield:nv zero:nvj zone:n
`

var openLexicon = buildOpenLexicon(openLexiconRaw)

func buildOpenLexicon(raw string) map[string]Ambig {
	m := make(map[string]Ambig, 1500)
	for _, entry := range strings.Fields(raw) {
		colon := strings.IndexByte(entry, ':')
		if colon < 0 {
			continue
		}
		word := entry[:colon]
		var a Ambig
		for _, c := range entry[colon+1:] {
			switch c {
			case 'n':
				a |= CanNoun
			case 'v':
				a |= CanVerb
			case 'j':
				a |= CanAdj
			case 'r':
				a |= CanAdv
			}
		}
		m[word] = a
	}
	return m
}

// LexiconClasses returns the word-class ambiguity set recorded for the
// lowercase word, and whether the word is in the open-class lexicon.
func LexiconClasses(word string) (Ambig, bool) {
	a, ok := openLexicon[word]
	return a, ok
}
