// Package postag implements a deterministic rule- and lexicon-based
// part-of-speech tagger producing a Penn-Treebank-style tagset. It replaces
// the statistical taggers inside Stanford CoreNLP used by the original Egeria
// implementation; its lexicon and disambiguation rules are tuned for the
// register of HPC programming guides (imperatives, passives, purpose
// clauses), which is exactly the set of constructions Egeria's selectors
// inspect.
package postag

// Tag is a Penn-Treebank-style part-of-speech tag.
type Tag string

// The tagset. Only the tags the downstream dependency parser and SRL layers
// consume are distinguished; rarer Penn tags are folded into their nearest
// neighbour (e.g. NNPS into NNS).
const (
	CC    Tag = "CC"   // coordinating conjunction
	CD    Tag = "CD"   // cardinal number
	DT    Tag = "DT"   // determiner
	EX    Tag = "EX"   // existential there
	IN    Tag = "IN"   // preposition / subordinating conjunction
	JJ    Tag = "JJ"   // adjective
	JJR   Tag = "JJR"  // adjective, comparative
	JJS   Tag = "JJS"  // adjective, superlative
	MD    Tag = "MD"   // modal
	NN    Tag = "NN"   // noun, singular or mass
	NNS   Tag = "NNS"  // noun, plural
	NNP   Tag = "NNP"  // proper noun
	POS   Tag = "POS"  // possessive ending
	PRP   Tag = "PRP"  // personal pronoun
	PRPS  Tag = "PRP$" // possessive pronoun
	RB    Tag = "RB"   // adverb
	RBR   Tag = "RBR"  // adverb, comparative
	RBS   Tag = "RBS"  // adverb, superlative
	RP    Tag = "RP"   // particle
	SYM   Tag = "SYM"  // symbol
	TO    Tag = "TO"   // infinitival to
	UH    Tag = "UH"   // interjection
	VB    Tag = "VB"   // verb, base form
	VBD   Tag = "VBD"  // verb, past tense
	VBG   Tag = "VBG"  // verb, gerund/present participle
	VBN   Tag = "VBN"  // verb, past participle
	VBP   Tag = "VBP"  // verb, non-3rd-person singular present
	VBZ   Tag = "VBZ"  // verb, 3rd-person singular present
	WDT   Tag = "WDT"  // wh-determiner
	WP    Tag = "WP"   // wh-pronoun
	WRB   Tag = "WRB"  // wh-adverb
	PUNCT Tag = "."    // punctuation (collapsed)
)

// IsVerb reports whether t is any verbal tag.
func (t Tag) IsVerb() bool {
	switch t {
	case VB, VBD, VBG, VBN, VBP, VBZ:
		return true
	}
	return false
}

// IsNoun reports whether t is any nominal tag.
func (t Tag) IsNoun() bool {
	switch t {
	case NN, NNS, NNP:
		return true
	}
	return false
}

// IsAdjective reports whether t is any adjectival tag.
func (t Tag) IsAdjective() bool {
	switch t {
	case JJ, JJR, JJS:
		return true
	}
	return false
}

// IsAdverb reports whether t is any adverbial tag.
func (t Tag) IsAdverb() bool {
	switch t {
	case RB, RBR, RBS:
		return true
	}
	return false
}

// FiniteVerb reports whether t is a finite verb form (can head a clause with
// tense): VBZ, VBP, VBD, or MD. VB counts as finite only in imperatives,
// which the parser handles separately.
func (t Tag) FiniteVerb() bool {
	switch t {
	case VBZ, VBP, VBD, MD:
		return true
	}
	return false
}
