package postag

import (
	"strings"

	"repro/internal/textproc"
)

// TaggedToken pairs a token with its assigned tag.
type TaggedToken struct {
	Text string
	Tag  Tag
}

// Tag assigns a part-of-speech tag to every token of one sentence. The
// algorithm is two-phase: lexicon/morphology assignment followed by
// contextual repair rules (a small Brill-style pass specialized for the
// constructions Egeria's selectors need: imperatives, passives, modal
// complements, infinitival purpose clauses).
func Tags(words []string) []Tag {
	n := len(words)
	tags := make([]Tag, n)
	lower := make([]string, n)
	for i, w := range words {
		lower[i] = strings.ToLower(w)
		tags[i] = initialTag(w, lower[i], i)
	}
	contextualRepair(words, lower, tags)
	return tags
}

// TagTokens is a convenience wrapper returning token/tag pairs.
func TagTokens(words []string) []TaggedToken {
	tags := Tags(words)
	out := make([]TaggedToken, len(words))
	for i := range words {
		out[i] = TaggedToken{Text: words[i], Tag: tags[i]}
	}
	return out
}

func initialTag(word, lw string, pos int) Tag {
	if textproc.IsPunct(word) {
		return PUNCT
	}
	if textproc.IsNumeric(word) {
		return CD
	}
	if lw == "to" {
		return TO
	}
	if t, ok := closedClass[lw]; ok {
		return t
	}
	if t, ok := beForms[lw]; ok {
		return t
	}
	if t, ok := haveForms[lw]; ok {
		return t
	}
	if t, ok := doForms[lw]; ok {
		return t
	}
	if numberWords[lw] {
		return CD
	}
	if commonAdverbs[lw] {
		return RB
	}
	if isAcronym(word) {
		return NNP
	}
	if isIdentifier(word) {
		return NN
	}
	if t, ok := morphologicalTag(lw); ok {
		return t
	}
	// capitalized word not at sentence start and unknown: proper noun
	if pos > 0 && word[0] >= 'A' && word[0] <= 'Z' {
		if _, known := openLexicon[lw]; !known {
			return NNP
		}
	}
	return suffixHeuristic(lw)
}

// isIdentifier reports whether the token looks like a code identifier
// (contains characters no English word has).
func isIdentifier(w string) bool {
	return strings.ContainsAny(w, "_()#/\\{}<>=") ||
		strings.Contains(w, ".") ||
		hasInnerUpper(w)
}

func hasInnerUpper(w string) bool {
	for i := 1; i < len(w); i++ {
		if w[i] >= 'A' && w[i] <= 'Z' {
			return true
		}
	}
	return false
}

func isAcronym(w string) bool {
	if len(w) < 2 {
		return false
	}
	for i := 0; i < len(w); i++ {
		b := w[i]
		if !(b >= 'A' && b <= 'Z') && !(b >= '0' && b <= '9') {
			return false
		}
	}
	return true
}

// morphologicalTag analyses inflectional endings against the open lexicon.
func morphologicalTag(lw string) (Tag, bool) {
	if a, ok := openLexicon[lw]; ok {
		return baseFormTag(a), true
	}
	switch {
	case strings.HasSuffix(lw, "ing") && len(lw) > 4:
		base := textproc.Lemma(lw, textproc.VerbClass)
		if a, ok := openLexicon[base]; ok && a&CanVerb != 0 {
			return VBG, true
		}
		if base != lw {
			return VBG, true // unknown -ing: participle is the safer default
		}
	case strings.HasSuffix(lw, "ed") && len(lw) > 3:
		base := textproc.Lemma(lw, textproc.VerbClass)
		if a, ok := openLexicon[base]; ok && a&CanVerb != 0 {
			return VBD, true // repaired to VBN contextually
		}
		if base != lw {
			return VBD, true
		}
	case strings.HasSuffix(lw, "s") && !strings.HasSuffix(lw, "ss") && len(lw) > 2:
		vbase := textproc.Lemma(lw, textproc.VerbClass)
		nbase := textproc.Lemma(lw, textproc.NounClass)
		va, vok := openLexicon[vbase]
		na, nok := openLexicon[nbase]
		verbOK := vok && va&CanVerb != 0
		nounOK := nok && na&CanNoun != 0
		switch {
		case nounOK:
			return NNS, true // repaired to VBZ contextually when needed
		case verbOK:
			return VBZ, true
		}
		return NNS, true
	case strings.HasSuffix(lw, "er") && len(lw) > 3:
		base := textproc.Lemma(lw, textproc.AdjClass)
		if a, ok := openLexicon[base]; ok && a&CanAdj != 0 {
			return JJR, true
		}
	case strings.HasSuffix(lw, "est") && len(lw) > 4:
		base := textproc.Lemma(lw, textproc.AdjClass)
		if a, ok := openLexicon[base]; ok && a&CanAdj != 0 {
			return JJS, true
		}
	}
	// irregular inflections ("chosen", "written", "held"): the lemmatizer's
	// irregular table recognizes them even without a regular suffix.
	if base := textproc.Lemma(lw, textproc.VerbClass); base != lw {
		if a, ok := openLexicon[base]; ok && a&CanVerb != 0 {
			if strings.HasSuffix(lw, "en") || strings.HasSuffix(lw, "wn") ||
				strings.HasSuffix(lw, "ne") || strings.HasSuffix(lw, "un") {
				return VBN, true
			}
			return VBD, true
		}
	}
	return NN, false
}

// baseFormTag picks the default tag for a base-form lexicon entry; ambiguous
// noun/verb entries default to NN and are promoted to VB/VBP contextually.
func baseFormTag(a Ambig) Tag {
	switch {
	case a&CanNoun != 0:
		return NN
	case a&CanVerb != 0:
		return VBP
	case a&CanAdj != 0:
		return JJ
	case a&CanAdv != 0:
		return RB
	}
	return NN
}

func suffixHeuristic(lw string) Tag {
	switch {
	case strings.HasSuffix(lw, "ly"):
		return RB
	case strings.HasSuffix(lw, "tion"), strings.HasSuffix(lw, "sion"),
		strings.HasSuffix(lw, "ment"), strings.HasSuffix(lw, "ness"),
		strings.HasSuffix(lw, "ity"), strings.HasSuffix(lw, "ance"),
		strings.HasSuffix(lw, "ence"), strings.HasSuffix(lw, "ship"),
		strings.HasSuffix(lw, "ism"), strings.HasSuffix(lw, "ware"),
		strings.HasSuffix(lw, "put"):
		return NN
	case strings.HasSuffix(lw, "ous"), strings.HasSuffix(lw, "ful"),
		strings.HasSuffix(lw, "less"), strings.HasSuffix(lw, "able"),
		strings.HasSuffix(lw, "ible"), strings.HasSuffix(lw, "ive"),
		strings.HasSuffix(lw, "ic"), strings.HasSuffix(lw, "al"),
		strings.HasSuffix(lw, "ant"), strings.HasSuffix(lw, "ent"):
		return JJ
	case strings.HasSuffix(lw, "ize"), strings.HasSuffix(lw, "ise"),
		strings.HasSuffix(lw, "ify"):
		return VB
	}
	return NN
}

// contextualRepair applies ordered repair rules over the initial tags.
func contextualRepair(words, lower []string, tags []Tag) {
	n := len(tags)

	canBeVerb := func(i int) (Tag, bool) {
		lw := lower[i]
		if a, ok := openLexicon[lw]; ok && a&CanVerb != 0 {
			return VB, true
		}
		base := textproc.Lemma(lw, textproc.VerbClass)
		if base == lw {
			return "", false
		}
		if a, ok := openLexicon[base]; ok && a&CanVerb != 0 {
			switch {
			case strings.HasSuffix(lw, "ing"):
				return VBG, true
			case strings.HasSuffix(lw, "ed"):
				return VBN, true
			case strings.HasSuffix(lw, "s"):
				return VBZ, true
			}
		}
		return "", false
	}

	// Rule 1: word after MD, TO or do-support (skipping adverbs/negation)
	// becomes a base-form verb when it can be one: "may prefer",
	// "to minimize", "should be", "do not use".
	for i := 1; i < n; i++ {
		_, isDo := doForms[lower[i-1]]
		if tags[i-1] != MD && tags[i-1] != TO && !isDo {
			continue
		}
		j := i
		for j < n && (tags[j].IsAdverb() || lower[j] == "not") {
			j++
		}
		if j >= n {
			break
		}
		if _, ok := beForms[lower[j]]; ok {
			tags[j] = VB
			continue
		}
		if lw := lower[j]; lw == "have" || lw == "do" {
			tags[j] = VB
			continue
		}
		if a, ok := openLexicon[lower[j]]; ok && a&CanVerb != 0 {
			tags[j] = VB
		} else if !ok && tags[j] == NN && tags[i-1] == TO && !nounSuffix(lower[j]) {
			// unknown word after infinitival "to" is almost always a verb
			// ("to rebuild", "to restructure") — unless it carries an
			// unambiguous noun suffix ("to completion")
			tags[j] = VB
		}
	}

	// Rule 2: past forms after a be/have auxiliary (skipping adverbs)
	// become past participles: "can often be leveraged", "has been shown",
	// "is needed".
	for i := 0; i < n; i++ {
		if tags[i] != VBD && tags[i] != VBN {
			continue
		}
		for j := i - 1; j >= 0 && i-j <= 4; j-- {
			if tags[j].IsAdverb() || lower[j] == "not" {
				continue
			}
			_, isBe := beForms[lower[j]]
			_, isHave := haveForms[lower[j]]
			if isBe || isHave || lower[j] == "be" || lower[j] == "been" ||
				lower[j] == "being" || lower[j] == "get" || lower[j] == "gets" {
				tags[i] = VBN
			}
			break
		}
	}

	// Rule 3: participial premodifier — VBD directly before a noun acts
	// adjectivally when it does not follow a subject; retag as VBN
	// ("optimized code", "shared memory"): keeps NP chunking sane.
	// Runs again after the imperative rule, whose retagging can expose
	// new premodifier positions ("Use shared memory").
	retagPremodifiers := func() {
		for i := 0; i+1 < n; i++ {
			if tags[i] == VBD && (tags[i+1].IsNoun() || tags[i+1] == VBG) {
				if i == 0 || tags[i-1] == DT || tags[i-1].IsAdjective() ||
					tags[i-1] == IN || tags[i-1] == CC || tags[i-1] == PRPS ||
					tags[i-1] == CD || tags[i-1].IsVerb() || tags[i-1] == TO {
					tags[i] = VBN
				}
			}
		}
	}
	retagPremodifiers()

	// Rule 4: noun/verb-ambiguous token after a determiner, possessive,
	// adjective or preposition is a noun: "the call", "a map".
	for i := 1; i < n; i++ {
		if !tags[i].IsVerb() {
			continue
		}
		prev := tags[i-1]
		if prev == DT || prev == PRPS || prev.IsAdjective() || prev == CD {
			lw := lower[i]
			if a, ok := openLexicon[lw]; ok && a&CanNoun != 0 {
				tags[i] = NN
			} else if strings.HasSuffix(lw, "ing") {
				// "the pinning" — gerund as noun head
				if i+1 >= n || !tags[i+1].IsNoun() {
					tags[i] = NN
				}
			} else if (tags[i] == VB || tags[i] == VBP) && (prev == DT || prev == PRPS) {
				// determiners never precede finite verbs: "the gather",
				// "a fetch" are nominalizations even for verb-only words
				tags[i] = NN
			}
		}
	}

	// Rule 4b: a past form directly after a preposition is a participial
	// complement ("from interleaved to planar"), and a past form directly
	// followed by "by" is a passive postmodifier ("a scan followed by a
	// pack") — both are VBN, not finite verbs.
	for i := 1; i < n; i++ {
		if tags[i] != VBD {
			continue
		}
		if tags[i-1] == IN || tags[i-1] == TO {
			tags[i] = VBN
			continue
		}
		if i+1 < n && lower[i+1] == "by" && tags[i-1].IsNoun() {
			tags[i] = VBN
		}
	}

	// Rule 5b: a plural-looking token wedged between a noun and a
	// determiner phrase must be a verb — "the segment boundary splits each
	// request" — regardless of finite verbs elsewhere in the sentence.
	for i := 1; i+1 < n; i++ {
		if tags[i] != NNS {
			continue
		}
		if !tags[i-1].IsNoun() && tags[i-1] != PRP {
			continue
		}
		if tags[i+1] != DT && tags[i+1] != PRPS {
			continue
		}
		if vt, ok := canBeVerb(i); ok && vt == VBZ {
			tags[i] = VBZ
		}
	}

	// Rule 5c: inside a fronted subordinate clause ("When the queue
	// drains, ..."), the clause needs a verb before the comma; promote the
	// last verb-capable NNS if no finite verb precedes it.
	if n > 2 && clauseOpeners[lower[0]] {
		comma := -1
		for i := 1; i < n; i++ {
			if words[i] == "," {
				comma = i
				break
			}
		}
		if comma > 1 {
			hasFinite := false
			last := -1
			for i := 1; i < comma; i++ {
				if tags[i].FiniteVerb() {
					hasFinite = true
					break
				}
				if tags[i] == NNS && (tags[i-1].IsNoun() || tags[i-1] == PRP) {
					last = i
				}
			}
			if !hasFinite && last > 0 {
				if vt, ok := canBeVerb(last); ok && vt == VBZ {
					tags[last] = VBZ
				}
			}
		}
	}

	// Rule 5d: a plural-looking token right after a relative pronoun is the
	// relative clause's verb: "a kernel that spills registers".
	for i := 1; i < n; i++ {
		if tags[i] != NNS {
			continue
		}
		switch lower[i-1] {
		case "that", "which", "who":
			if vt, ok := canBeVerb(i); ok && vt == VBZ {
				tags[i] = VBZ
			}
		}
	}

	// Rule 6: sentence-initial imperative. If the first non-adverbial token
	// is a known base-form verb and the rest of the clause contains no
	// finite verb before a clause boundary, the sentence is imperative:
	// "Use shared memory to ...", "Avoid incurring pinning costs ...".
	start := 0
	for start < n && (tags[start].IsAdverb() || tags[start] == PUNCT || tags[start] == UH) {
		start++
	}
	if start < n {
		lw := lower[start]
		if a, ok := openLexicon[lw]; ok && a&CanVerb != 0 &&
			(!tags[start].FiniteVerb() || tags[start] == VBP) && tags[start] != VBG {
			if !clauseHasFiniteVerbBefore(tags, lower, start+1) {
				tags[start] = VB
				retagPremodifiers()
			}
		}
	}

	// Rule 6c: a semicolon restarts the clause; apply the imperative test
	// right after it ("transfers dominate; overlap them with kernels").
	for i := 0; i+1 < n; i++ {
		if words[i] != ";" {
			continue
		}
		j := i + 1
		for j < n && (tags[j].IsAdverb() || tags[j] == PUNCT) {
			j++
		}
		if j >= n {
			break
		}
		if a, ok := openLexicon[lower[j]]; ok && a&CanVerb != 0 &&
			(!tags[j].FiniteVerb() || tags[j] == VBP) && tags[j] != VBG && tags[j] != VBN {
			if !clauseHasFiniteVerbBefore(tags, lower, j+1) {
				tags[j] = VB
				retagPremodifiers()
			}
		}
	}

	// Rule 6b: a fronted subordinate or purpose clause shifts the main
	// clause after the first comma: "If the kernel is memory bound, use
	// shared memory"; "To hide latency, increase occupancy." Apply the
	// imperative test at the post-comma position.
	if start < n && (clauseOpeners[lower[start]] || tags[start] == TO || tags[start] == WRB || tags[start] == VBG) {
		for i := start + 1; i+1 < n; i++ {
			if words[i] != "," {
				continue
			}
			j := i + 1
			for j < n && (tags[j].IsAdverb() || tags[j] == PUNCT) {
				j++
			}
			if j >= n {
				break
			}
			lw := lower[j]
			if a, ok := openLexicon[lw]; ok && a&CanVerb != 0 &&
				(!tags[j].FiniteVerb() || tags[j] == VBP) && tags[j] != VBG && tags[j] != VBN {
				if !clauseHasFiniteVerbBefore(tags, lower, j+1) {
					tags[j] = VB
					retagPremodifiers()
				}
			}
			break
		}
	}

	// Rule 5 (runs after the imperative rules so their VB retags are
	// visible): an NNS after a complete NP may be the main verb — "the
	// kernel uses registers". Promote only when the sentence still has no
	// finite verb and no imperative VB (an imperative sentence already has
	// its verb: "increase the number of resident warps").
	if !hasFiniteVerb(tags) && !hasBareVB(tags) {
		for i := 1; i < n; i++ {
			if tags[i] != NNS {
				continue
			}
			if !tags[i-1].IsNoun() && tags[i-1] != PRP {
				continue
			}
			// a clause-final plural is (almost) never the verb: "the
			// release notes." stays nominal
			if i+1 >= n || tags[i+1] == PUNCT {
				continue
			}
			if vt, ok := canBeVerb(i); ok && vt == VBZ {
				tags[i] = VBZ
				break
			}
		}
	}

	// Rule 7: conjoined verbs copy the form of the first conjunct:
	// "... choose to use X, or ... provide two separate kernels".
	for i := 2; i < n; i++ {
		if tags[i-1] != CC && !(tags[i-1] == PUNCT && words[i-1] == ",") {
			continue
		}
		// find nearest verb to the left
		for j := i - 2; j >= 0; j-- {
			if tags[j].IsVerb() {
				if tags[i] == NN || tags[i] == VBP {
					if a, ok := openLexicon[lower[i]]; ok && a&CanVerb != 0 {
						// only promote when the candidate precedes a
						// plausible object/complement
						if i+1 < n && (tags[i+1] == DT || tags[i+1].IsAdjective() || tags[i+1].IsNoun() || tags[i+1] == CD || tags[i+1] == TO || tags[i+1] == VBG || tags[i+1] == VBD || tags[i+1] == VBN || tags[i+1] == PRP || tags[i+1] == PRPS) {
							tags[i] = tags[j]
						}
					}
				}
				break
			}
			if tags[j] == PUNCT {
				break
			}
			// scan past the first conjunct's object NP ("Avoid atomics
			// and use ...") but give up after a few tokens
			if i-j > 6 {
				break
			}
		}
	}

	// Rule 8: bare NN directly after a subject NP/pronoun at clause level
	// with no other finite verb is a present-tense verb:
	// "developers prefer buffers" (prefer tagged VBP by lexicon already;
	// this covers noun/verb ambiguous cases like "the compiler maps X").
	if !hasFiniteVerb(tags) {
		for i := 1; i < n; i++ {
			if tags[i] != NN && tags[i] != VBP {
				continue
			}
			if tags[i] == NN {
				a, ok := openLexicon[lower[i]]
				if !ok || a&CanVerb == 0 {
					continue
				}
			}
			if (tags[i-1].IsNoun() || tags[i-1] == PRP) && i+1 < n &&
				(tags[i+1] == DT || tags[i+1].IsNoun() || tags[i+1].IsAdjective() || tags[i+1] == VBG || tags[i+1] == TO || tags[i+1] == PRPS) {
				tags[i] = VBP
				break
			}
		}
	}
	// final premodifier pass: retags exposed by rules 6-8 ("and use
	// privatized counters" once "use" became a verb)
	retagPremodifiers()
}

// nounSuffix reports an unambiguous noun-deriving suffix.
func nounSuffix(lw string) bool {
	for _, suf := range []string{"tion", "sion", "ment", "ness", "ity",
		"ance", "ence", "ship", "ism", "ware", "age", "ture", "hood"} {
		if strings.HasSuffix(lw, suf) {
			return true
		}
	}
	return false
}

// hasBareVB reports whether any token carries the bare-verb tag VB (an
// imperative or promoted infinitive).
func hasBareVB(tags []Tag) bool {
	for _, t := range tags {
		if t == VB {
			return true
		}
	}
	return false
}

func hasFiniteVerb(tags []Tag) bool {
	for _, t := range tags {
		if t.FiniteVerb() {
			return true
		}
	}
	return false
}

// clauseHasFiniteVerbBefore reports whether a finite verb occurs from
// position i up to the first strong clause boundary (a semicolon or the
// subordinators which introduce a fresh clause). Commas are NOT treated as
// boundaries: "Pinning takes time, so avoid ..." must see "takes".
// subordinators that open an embedded clause: a finite verb beyond one of
// these belongs to the embedded clause, not the main clause.
var clauseOpeners = map[string]bool{
	"that": true, "if": true, "because": true, "when": true, "where": true,
	"while": true, "although": true, "though": true, "unless": true,
	"whether": true, "so": true, "since": true, "which": true, "who": true,
}

func clauseHasFiniteVerbBefore(tags []Tag, lower []string, i int) bool {
	for ; i < len(tags); i++ {
		if clauseOpeners[lower[i]] {
			return false
		}
		if tags[i].FiniteVerb() {
			// a VBD directly followed by a noun is almost certainly a
			// participial premodifier in this register ("shared memory"),
			// not a finite verb; keep scanning.
			if tags[i] == VBD && i+1 < len(tags) && (tags[i+1].IsNoun() || tags[i+1] == VBG) {
				continue
			}
			return true
		}
		if lower[i] == ";" {
			return false
		}
	}
	return false
}
