package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
)

// MetricsHandler serves the registry's snapshot as JSON — the /metricz
// endpoint.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		serveJSON(w, r.Snapshot())
	})
}

// tracezSummary is one row of the /tracez listing.
type tracezSummary struct {
	ID        string `json:"id"`
	Name      string `json:"name"`
	DurMicros int64  `json:"dur_micros"`
	Spans     int    `json:"spans"`
}

// TraceHandler serves the trace store — the /tracez endpoint. Without
// parameters it lists recent traces (newest first); ?id= returns one full
// trace tree; ?n= bounds the listing length.
func TraceHandler(s *TraceStore) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s == nil {
			http.Error(w, `{"error":"tracing disabled"}`, http.StatusNotFound)
			return
		}
		if id := r.URL.Query().Get("id"); id != "" {
			t, ok := s.Get(id)
			if !ok {
				http.Error(w, `{"error":"unknown trace id"}`, http.StatusNotFound)
				return
			}
			serveJSON(w, t)
			return
		}
		n, _ := strconv.Atoi(r.URL.Query().Get("n"))
		traces := s.Recent(n)
		out := make([]tracezSummary, len(traces))
		for i, t := range traces {
			out[i] = tracezSummary{ID: t.ID, Name: t.Root.Name, DurMicros: t.DurMicros, Spans: t.Spans()}
		}
		serveJSON(w, out)
	})
}

// Middleware wraps an HTTP handler so every request runs under a trace: the
// context carries a fresh trace ID (and the root span when sampled), and the
// response carries it in X-Trace-Id. Handlers that manage their own traces
// (the service layer) should not be wrapped.
func Middleware(t *Tracer, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, root := t.Start(r.Context(), r.Method+" "+r.URL.Path)
		defer root.Finish()
		w.Header().Set("X-Trace-Id", TraceID(ctx))
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

func serveJSON(w http.ResponseWriter, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		http.Error(w, `{"error":"encode response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_, _ = buf.WriteTo(w)
}
