// Package obs is Egeria's zero-dependency observability layer: a
// request-scoped span tracer, a metrics registry, and the HTTP surfaces
// (/metricz, /tracez) that expose both.
//
// Tracing is request-scoped and context-propagated: a Tracer starts a Trace
// per request (subject to sampling), the root Span rides the
// context.Context, and every instrumented layer attaches child spans via
// SpanFrom(ctx).StartChild(...). All Span methods are nil-receiver safe, so
// uninstrumented or unsampled paths pay only a nil check — the hot path
// stays cheap with sampling off.
//
// Every request gets a trace ID (surfaced in responses and logs) even when
// its spans are not recorded; sampling only controls whether the span tree
// is materialized and retained for /tracez.
package obs

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// traceSeq makes trace IDs process-unique; idEpoch distinguishes processes.
var (
	traceSeq atomic.Uint64
	idEpoch  = uint32(time.Now().UnixNano())
)

// NewTraceID returns a process-unique request identifier. IDs are unique
// within a process (a strictly increasing sequence) and prefixed with a
// process-start stamp so IDs from different runs rarely collide.
func NewTraceID() string {
	return strconv.FormatUint(uint64(idEpoch), 16) + "-" + strconv.FormatUint(traceSeq.Add(1), 16)
}

// ctx keys for the trace ID (always present on traced requests) and the
// current span (present only when the trace is sampled).
type traceIDKey struct{}
type spanKey struct{}

// WithTraceID stamps ctx with a request's trace ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceID returns the request's trace ID, or "" when the request was not
// started through a Tracer.
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}

// ContextWithSpan attaches a span to ctx so downstream layers can extend the
// trace via SpanFrom.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom returns the current span, or nil when the request is unsampled
// (or untraced). The single ctx.Value lookup is the entire per-request cost
// of instrumentation with sampling off.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan starts a child of the context's current span and returns a
// derived context carrying it. When the request is unsampled it returns ctx
// unchanged and a nil (no-op) span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.StartChild(name)
	return context.WithValue(ctx, spanKey{}, child), child
}

// Attr is one span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation within a trace. A nil *Span is a valid no-op:
// every method checks its receiver, so instrumentation never branches on
// "is tracing on".
type Span struct {
	trace *Trace
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    []Attr
	children []*Span
}

// StartChild starts and returns a sub-span. Safe for concurrent use: a
// request handler and the cache's compute goroutine may attach children to
// the same parent.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	child := &Span{trace: s.trace, name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
	return child
}

// SetAttr records a key/value attribute on the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetAttrInt is SetAttr for integer values.
func (s *Span) SetAttrInt(key string, value int) {
	s.SetAttr(key, strconv.Itoa(value))
}

// Finish marks the span complete. Finishing the trace's root span publishes
// the trace to the tracer's store. Finish is idempotent.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	already := !s.end.IsZero()
	if !already {
		s.end = time.Now()
	}
	s.mu.Unlock()
	if already {
		return
	}
	if s.trace != nil && s.trace.root == s && s.trace.store != nil {
		s.trace.store.add(s.trace)
	}
}

// Trace is one request's span tree.
type Trace struct {
	id    string
	start time.Time
	root  *Span
	store *TraceStore
}

// ID returns the trace identifier.
func (t *Trace) ID() string { return t.id }

// Tracer starts traces, applying sampling. A nil *Tracer never samples but
// still assigns trace IDs, so serving layers can hold an optional tracer
// without branching.
type Tracer struct {
	period int64 // sample every period-th trace; 0 = never
	n      atomic.Int64
	store  *TraceStore
}

// NewTracer creates a tracer that samples approximately rate of the traces
// it starts (rate <= 0: none; rate >= 1: all; in between: every round(1/rate)-th)
// and retains sampled traces in store (required when rate > 0).
func NewTracer(rate float64, store *TraceStore) *Tracer {
	t := &Tracer{store: store}
	switch {
	case rate <= 0:
		t.period = 0
	case rate >= 1:
		t.period = 1
	default:
		t.period = int64(1/rate + 0.5)
	}
	return t
}

// Store returns the tracer's trace store (nil for a nil tracer).
func (t *Tracer) Store() *TraceStore {
	if t == nil {
		return nil
	}
	return t.store
}

// Start begins a trace for one request: the returned context always carries
// a fresh trace ID, and additionally carries the root span when this trace
// is sampled (root is nil otherwise). The caller must Finish the root span.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	id := NewTraceID()
	ctx = WithTraceID(ctx, id)
	if t == nil || t.period == 0 || t.store == nil || t.n.Add(1)%t.period != 0 {
		return ctx, nil
	}
	tr := &Trace{id: id, start: time.Now(), store: t.store}
	tr.root = &Span{trace: tr, name: name, start: tr.start}
	return ContextWithSpan(ctx, tr.root), tr.root
}

// TraceStore retains the most recent completed traces for /tracez.
type TraceStore struct {
	mu   sync.Mutex
	buf  []*Trace
	next int
	n    int
}

// DefaultTraceCapacity is how many completed traces NewTraceStore retains
// when given a non-positive capacity.
const DefaultTraceCapacity = 128

// NewTraceStore creates a store retaining the last capacity traces.
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceStore{buf: make([]*Trace, capacity)}
}

func (s *TraceStore) add(t *Trace) {
	s.mu.Lock()
	s.buf[s.next] = t
	s.next = (s.next + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	}
	s.mu.Unlock()
}

// Len returns how many traces the store currently holds.
func (s *TraceStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Get exports the trace with the given ID, newest first on duplicates.
func (s *TraceStore) Get(id string) (TraceJSON, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < s.n; i++ {
		// walk newest to oldest
		idx := ((s.next-1-i)%len(s.buf) + len(s.buf)) % len(s.buf)
		if t := s.buf[idx]; t != nil && t.id == id {
			return t.export(), true
		}
	}
	return TraceJSON{}, false
}

// Recent exports up to n of the most recent traces, newest first (n <= 0
// means all retained).
func (s *TraceStore) Recent(n int) []TraceJSON {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 || n > s.n {
		n = s.n
	}
	out := make([]TraceJSON, 0, n)
	for i := 0; i < n; i++ {
		idx := ((s.next-1-i)%len(s.buf) + len(s.buf)) % len(s.buf)
		if t := s.buf[idx]; t != nil {
			out = append(out, t.export())
		}
	}
	return out
}

// TraceJSON is the exported form of one trace: the span tree with
// durations in microseconds and span starts relative to the trace start.
type TraceJSON struct {
	ID        string    `json:"id"`
	Start     time.Time `json:"start"`
	DurMicros int64     `json:"dur_micros"`
	Root      SpanJSON  `json:"root"`
}

// SpanJSON is the exported form of one span.
type SpanJSON struct {
	Name        string     `json:"name"`
	StartMicros int64      `json:"start_micros"` // offset from trace start
	DurMicros   int64      `json:"dur_micros"`
	Unfinished  bool       `json:"unfinished,omitempty"`
	Attrs       []Attr     `json:"attrs,omitempty"`
	Children    []SpanJSON `json:"children,omitempty"`
}

func (t *Trace) export() TraceJSON {
	root := t.root.export(t.start)
	return TraceJSON{ID: t.id, Start: t.start, DurMicros: root.DurMicros, Root: root}
}

func (s *Span) export(traceStart time.Time) SpanJSON {
	s.mu.Lock()
	end := s.end
	attrs := append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	out := SpanJSON{
		Name:        s.name,
		StartMicros: s.start.Sub(traceStart).Microseconds(),
		Attrs:       attrs,
	}
	if end.IsZero() {
		// still running (e.g. a cache fill outliving its request's deadline)
		out.Unfinished = true
	} else {
		out.DurMicros = end.Sub(s.start).Microseconds()
	}
	for _, c := range children {
		out.Children = append(out.Children, c.export(traceStart))
	}
	return out
}

// Spans counts the spans in the exported tree (diagnostic convenience).
func (t TraceJSON) Spans() int { return t.Root.countSpans() }

func (s SpanJSON) countSpans() int {
	n := 1
	for _, c := range s.Children {
		n += c.countSpans()
	}
	return n
}
