package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("reqs") != c {
		t.Error("Counter not idempotent")
	}
	g := r.Gauge("inflight")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}

	var nc *Counter
	nc.Inc()
	nc.Add(3)
	var ng *Gauge
	ng.Set(1)
	ng.Add(1)
	var nh *Histogram
	nh.Observe(1)
	nh.ObserveDuration(time.Second)
	if nc.Value() != 0 || ng.Value() != 0 || nh.Count() != 0 || nh.Sum() != 0 || nh.Quantile(0.5) != 0 {
		t.Error("nil metrics must read as zero")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 10, 100, 1000)
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v)) // 1..100: 10 in (..10], 90 in (10..100]
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 5050 {
		t.Errorf("sum = %v", h.Sum())
	}
	snap := h.snapshot()
	if len(snap.Buckets) != 2 || snap.Buckets[0].Count != 10 || snap.Buckets[1].Count != 90 {
		t.Errorf("buckets = %+v", snap.Buckets)
	}
	if snap.Overflow != 0 {
		t.Errorf("overflow = %d", snap.Overflow)
	}
	// p50 interpolates within (10,100]: rank 50, 40 of 90 into the bucket
	want := 10 + 90*(40.0/90.0)
	if math.Abs(h.Quantile(0.5)-want) > 1e-9 {
		t.Errorf("p50 = %v, want %v", h.Quantile(0.5), want)
	}
	h.Observe(5000) // beyond the last bound
	if h.snapshot().Overflow != 1 {
		t.Errorf("overflow = %d, want 1", h.snapshot().Overflow)
	}
	// quantiles attribute overflow to the last bound rather than inventing values
	if q := h.Quantile(1); q != 1000 {
		t.Errorf("p100 = %v, want 1000", q)
	}
}

func TestHistogramExactBoundLandsInBucket(t *testing.T) {
	h := newHistogram([]float64{10, 100})
	h.Observe(10) // le semantics: exactly 10 belongs to the first bucket
	snap := h.snapshot()
	if len(snap.Buckets) != 1 || snap.Buckets[0].LE != 10 || snap.Buckets[0].Count != 1 {
		t.Errorf("buckets = %+v", snap.Buckets)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram(DefaultLatencyBounds)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i % 997))
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("count = %d, want %d", h.Count(), workers*per)
	}
	var bucketTotal int64
	snap := h.snapshot()
	for _, b := range snap.Buckets {
		bucketTotal += b.Count
	}
	bucketTotal += snap.Overflow
	if bucketTotal != workers*per {
		t.Errorf("bucket total = %d, want %d", bucketTotal, workers*per)
	}
}

func TestRegistrySnapshotAndMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Gauge("b").Set(-2)
	r.Histogram("c").ObserveDuration(42 * time.Microsecond)

	rec := httptest.NewRecorder()
	MetricsHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metricz", nil))
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metricz decode: %v (%s)", err, rec.Body.String())
	}
	if snap.Counters["a"] != 3 || snap.Gauges["b"] != -2 {
		t.Errorf("snapshot = %+v", snap)
	}
	h := snap.Histograms["c"]
	if h.Count != 1 || math.Abs(h.Sum-42) > 1e-9 {
		t.Errorf("histogram snapshot = %+v", h)
	}
}
