package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestTraceIDsUnique(t *testing.T) {
	const n = 1000
	ids := make(chan string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids <- NewTraceID()
		}()
	}
	wg.Wait()
	close(ids)
	seen := map[string]bool{}
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
}

func TestTracerSampledTraceTree(t *testing.T) {
	store := NewTraceStore(8)
	tr := NewTracer(1, store)
	ctx, root := tr.Start(context.Background(), "GET /v1/query")
	if root == nil {
		t.Fatal("rate-1 tracer did not sample")
	}
	if TraceID(ctx) == "" {
		t.Fatal("no trace id on context")
	}
	ctx2, span := StartSpan(ctx, "cache")
	span.SetAttr("hit", "false")
	_, child := StartSpan(ctx2, "score")
	child.SetAttrInt("docs", 42)
	child.Finish()
	span.Finish()
	root.Finish()

	got, ok := store.Get(TraceID(ctx))
	if !ok {
		t.Fatalf("trace %q not in store", TraceID(ctx))
	}
	if got.Root.Name != "GET /v1/query" {
		t.Errorf("root name = %q", got.Root.Name)
	}
	if got.Spans() != 3 {
		t.Errorf("span count = %d, want 3", got.Spans())
	}
	if len(got.Root.Children) != 1 || got.Root.Children[0].Name != "cache" {
		t.Fatalf("unexpected children: %+v", got.Root.Children)
	}
	cache := got.Root.Children[0]
	if len(cache.Children) != 1 || cache.Children[0].Name != "score" {
		t.Fatalf("cache children: %+v", cache.Children)
	}
	if len(cache.Attrs) != 1 || cache.Attrs[0].Key != "hit" {
		t.Errorf("cache attrs: %+v", cache.Attrs)
	}
	// the tree must survive a JSON round trip (the /tracez contract)
	data, err := json.Marshal(got)
	if err != nil {
		t.Fatalf("marshal trace: %v", err)
	}
	var back TraceJSON
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal trace: %v", err)
	}
	if back.ID != got.ID || back.Spans() != 3 {
		t.Errorf("round trip mismatch: %+v", back)
	}
}

func TestTracerUnsampledIsNoop(t *testing.T) {
	tr := NewTracer(0, NewTraceStore(4))
	ctx, root := tr.Start(context.Background(), "req")
	if root != nil {
		t.Fatal("rate-0 tracer sampled")
	}
	if TraceID(ctx) == "" {
		t.Fatal("unsampled request must still get a trace id")
	}
	// all downstream instrumentation must be a no-op, not a panic
	ctx2, span := StartSpan(ctx, "child")
	if span != nil {
		t.Fatal("StartSpan returned a live span without a sampled trace")
	}
	span.SetAttr("k", "v")
	span.SetAttrInt("n", 1)
	grand := span.StartChild("grandchild")
	grand.Finish()
	span.Finish()
	root.Finish()
	_ = ctx2

	var nilTracer *Tracer
	ctx3, s := nilTracer.Start(context.Background(), "req")
	if s != nil || TraceID(ctx3) == "" {
		t.Fatal("nil tracer must assign ids without sampling")
	}
}

func TestTracerSamplingPeriod(t *testing.T) {
	store := NewTraceStore(64)
	tr := NewTracer(0.25, store) // every 4th
	sampled := 0
	for i := 0; i < 40; i++ {
		_, root := tr.Start(context.Background(), "req")
		if root != nil {
			sampled++
			root.Finish()
		}
	}
	if sampled != 10 {
		t.Errorf("sampled %d of 40 at rate 0.25, want 10", sampled)
	}
}

func TestTraceStoreEvictsOldest(t *testing.T) {
	store := NewTraceStore(2)
	tr := NewTracer(1, store)
	var ids []string
	for i := 0; i < 3; i++ {
		ctx, root := tr.Start(context.Background(), "req")
		ids = append(ids, TraceID(ctx))
		root.Finish()
	}
	if store.Len() != 2 {
		t.Fatalf("store len = %d, want 2", store.Len())
	}
	if _, ok := store.Get(ids[0]); ok {
		t.Error("oldest trace should have been evicted")
	}
	for _, id := range ids[1:] {
		if _, ok := store.Get(id); !ok {
			t.Errorf("trace %q missing", id)
		}
	}
	recent := store.Recent(0)
	if len(recent) != 2 || recent[0].ID != ids[2] || recent[1].ID != ids[1] {
		t.Errorf("Recent order wrong: %+v", recent)
	}
}

func TestUnfinishedSpanExport(t *testing.T) {
	store := NewTraceStore(4)
	tr := NewTracer(1, store)
	ctx, root := tr.Start(context.Background(), "req")
	_, child := StartSpan(ctx, "slow")
	root.Finish() // request returned before the child (e.g. deadline hit)
	got, ok := store.Get(TraceID(ctx))
	if !ok {
		t.Fatal("trace missing")
	}
	if len(got.Root.Children) != 1 || !got.Root.Children[0].Unfinished {
		t.Errorf("expected one unfinished child, got %+v", got.Root.Children)
	}
	child.Finish()
}

func TestTraceHandler(t *testing.T) {
	store := NewTraceStore(8)
	tr := NewTracer(1, store)
	ctx, root := tr.Start(context.Background(), "req")
	root.Finish()

	h := TraceHandler(store)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/tracez", nil))
	var list []tracezSummary
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatalf("tracez list: %v (%s)", err, rec.Body.String())
	}
	if len(list) != 1 || list[0].ID != TraceID(ctx) {
		t.Fatalf("tracez listing: %+v", list)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/tracez?id="+TraceID(ctx), nil))
	var full TraceJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &full); err != nil {
		t.Fatalf("tracez by id: %v", err)
	}
	if full.ID != TraceID(ctx) {
		t.Errorf("trace id = %q", full.ID)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/tracez?id=nope", nil))
	if rec.Code != 404 {
		t.Errorf("unknown id -> %d, want 404", rec.Code)
	}
}
