package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. A nil *Counter is a valid
// no-op, so components can hold optional counters without branching.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. A nil *Gauge is a valid no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add applies a delta.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBounds are the fixed histogram bucket upper bounds used for
// latency histograms, in microseconds: roughly exponential from 1µs to 5s.
var DefaultLatencyBounds = []float64{
	1, 2.5, 5, 10, 25, 50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000,
}

// Histogram is a fixed-bucket histogram. Observations beyond the last bound
// land in an overflow bucket. All methods are safe for concurrent use and
// nil-receiver safe.
type Histogram struct {
	bounds  []float64      // ascending upper bounds
	buckets []atomic.Int64 // len(bounds)+1; last = overflow
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBounds
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a latency in microseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d.Nanoseconds()) / 1e3)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the p-quantile (0 <= p <= 1) by linear interpolation
// within the containing bucket; 0 when empty. Values in the overflow bucket
// are attributed to the last bound.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := p * float64(total)
	var seen float64
	lower := 0.0
	for i := range h.buckets {
		n := float64(h.buckets[i].Load())
		if n == 0 {
			continue
		}
		upper := h.bounds[len(h.bounds)-1]
		if i < len(h.bounds) {
			upper = h.bounds[i]
		}
		if seen+n >= rank {
			frac := (rank - seen) / n
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lower + (upper-lower)*frac
		}
		seen += n
		lower = upper
	}
	return h.bounds[len(h.bounds)-1]
}

// snapshot exports the histogram under no lock; counts are read atomically
// so totals are consistent to within in-flight observations.
func (h *Histogram) snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{
		Count:    h.Count(),
		Sum:      h.Sum(),
		Buckets:  make([]BucketCount, 0, len(h.bounds)),
		Overflow: h.buckets[len(h.bounds)].Load(),
		P50:      h.Quantile(0.50),
		P99:      h.Quantile(0.99),
	}
	for i, b := range h.bounds {
		if n := h.buckets[i].Load(); n > 0 {
			snap.Buckets = append(snap.Buckets, BucketCount{LE: b, Count: n})
		}
	}
	return snap
}

// BucketCount is one non-empty histogram bucket in a snapshot.
type BucketCount struct {
	LE    float64 `json:"le"` // bucket upper bound
	Count int64   `json:"count"`
}

// HistogramSnapshot is the exported form of a histogram (the /metricz
// shape). Empty buckets are omitted.
type HistogramSnapshot struct {
	Count    int64         `json:"count"`
	Sum      float64       `json:"sum"`
	P50      float64       `json:"p50"`
	P99      float64       `json:"p99"`
	Buckets  []BucketCount `json:"buckets,omitempty"`
	Overflow int64         `json:"overflow,omitempty"`
}

// Registry names and owns metrics. Lookups are get-or-create, so callers
// can resolve handles at construction time and pay only atomic ops after.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry, used by components that are not
// handed an explicit one (package-level pipeline metrics).
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (DefaultLatencyBounds when none are given).
// Bounds are fixed at creation; later calls with different bounds return
// the existing histogram.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is the JSON shape served on /metricz.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot exports every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	snap := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		snap.Histograms[name] = h.snapshot()
	}
	return snap
}
