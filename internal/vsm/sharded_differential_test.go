package vsm

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/doc"
)

// The sharded differential suite: metamorphic properties pinning
// ShardedIndex to the monolithic Index bit-for-bit. Every comparison is on
// math.Float64bits — "close" is not equivalence.

// idsFor stamps deterministic unique identities for a term-list corpus.
func idsFor(n int, gen *int) []doc.SentenceID {
	ids := make([]doc.SentenceID, n)
	for i := range ids {
		ids[i] = doc.SentenceID(fmt.Sprintf("sent-%06d", *gen))
		*gen++
	}
	return ids
}

// diffQueries exercises in-vocab, out-of-vocab, zero-IDF ("common" is in
// every generated document), and repeated terms.
var diffQueries = []string{
	"term03 term17 common",
	"term00",
	"common term29 term29",
	"term34 term05",
	"nosuchterm",
}

func sameScores(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: score lengths %d vs %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: doc %d: %x vs %x", label, i, got[i], want[i])
		}
	}
}

// TestShardedBitIdenticalAcrossShardCounts is the heart of the suite: 100
// random corpora, each indexed monolithically and at every shard count in
// 1..8, must produce Float64bits-identical score slices for both backends.
func TestShardedBitIdenticalAcrossShardCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	gen := 0
	for round := 0; round < 100; round++ {
		termLists := randomTermLists(rng, 3+rng.Intn(40))
		ids := idsFor(len(termLists), &gen)
		mono := BuildFromTerms(termLists)
		q := diffQueries[round%len(diffQueries)]
		wantVSM := mono.QueryAll(q)
		wantBM25 := mono.BM25().Scores(q)
		for nShards := 1; nShards <= 8; nShards++ {
			sh := BuildShardedFromTerms(termLists, ids, nShards)
			if sh.Len() != mono.Len() {
				t.Fatalf("round %d shards %d: Len %d vs %d", round, nShards, sh.Len(), mono.Len())
			}
			label := fmt.Sprintf("round %d shards %d query %q", round, nShards, q)
			sameScores(t, label+" vsm", sh.QueryAll(q), wantVSM)
			sameScores(t, label+" bm25", sh.BM25().Scores(q), wantBM25)
		}
	}
}

// TestShardedPermutationInvariance: permuting the document order (identities
// riding along) permutes the score slice and nothing else — scores stay
// bit-identical per document, at several shard counts.
func TestShardedPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	gen := 0
	for round := 0; round < 25; round++ {
		termLists := randomTermLists(rng, 5+rng.Intn(30))
		ids := idsFor(len(termLists), &gen)
		perm := rng.Perm(len(termLists))
		permLists := make([][]string, len(termLists))
		permIDs := make([]doc.SentenceID, len(ids))
		for newPos, oldPos := range perm {
			permLists[newPos] = termLists[oldPos]
			permIDs[newPos] = ids[oldPos]
		}
		for _, nShards := range []int{1, 2, 3, 5, 8} {
			orig := BuildShardedFromTerms(termLists, ids, nShards)
			shuf := BuildShardedFromTerms(permLists, permIDs, nShards)
			for _, q := range diffQueries {
				os, ss := orig.QueryAll(q), shuf.QueryAll(q)
				for newPos, oldPos := range perm {
					if math.Float64bits(ss[newPos]) != math.Float64bits(os[oldPos]) {
						t.Fatalf("round %d shards %d %q: permuted doc %d (was %d): %x vs %x",
							round, nShards, q, newPos, oldPos, ss[newPos], os[oldPos])
					}
				}
				ob, sb := orig.BM25().Scores(q), shuf.BM25().Scores(q)
				for newPos, oldPos := range perm {
					if math.Float64bits(sb[newPos]) != math.Float64bits(ob[oldPos]) {
						t.Fatalf("round %d shards %d bm25 %q: permuted doc %d (was %d): %x vs %x",
							round, nShards, q, newPos, oldPos, sb[newPos], ob[oldPos])
					}
				}
			}
		}
	}
}

// TestShardedQueryAndTopKMatchMonolithic pins the match-list paths: Query
// (threshold filter, full sort) and TopK (per-shard bounded selection +
// k-way merge) must reproduce the monolithic lists exactly — same indices,
// same score bits, same order. Duplicated documents force score ties, so
// this also pins tie stability: ties resolve by ascending global index in
// both layouts.
func TestShardedQueryAndTopKMatchMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	gen := 0
	for round := 0; round < 40; round++ {
		termLists := randomTermLists(rng, 4+rng.Intn(24))
		// duplicate a few documents verbatim: identical term lists score
		// identically, producing exact ties at distinct indices
		for d := 0; d < 3 && len(termLists) > 0; d++ {
			termLists = append(termLists, termLists[rng.Intn(len(termLists))])
		}
		ids := idsFor(len(termLists), &gen)
		mono := BuildFromTerms(termLists)
		for _, nShards := range []int{1, 2, 4, 7, 8} {
			sh := BuildShardedFromTerms(termLists, ids, nShards)
			for _, q := range diffQueries {
				for _, threshold := range []float64{DefaultThreshold, 0.01, 0} {
					want := mono.Query(q, threshold)
					got := sh.Query(q, threshold)
					sameMatches(t, fmt.Sprintf("round %d shards %d Query(%q,%v)", round, nShards, q, threshold), got, want)
					for _, k := range []int{0, 1, 3, 10, 1000} {
						wantK := mono.TopK(q, k, threshold)
						gotK := sh.TopK(q, k, threshold)
						sameMatches(t, fmt.Sprintf("round %d shards %d TopK(%q,%d,%v)", round, nShards, q, k, threshold), gotK, wantK)
					}
				}
			}
		}
	}
}

func sameMatches(t *testing.T, label string, got, want []Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches vs %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Index != want[i].Index || math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
			t.Fatalf("%s: match %d: (%d, %x) vs (%d, %x)",
				label, i, got[i].Index, got[i].Score, want[i].Index, want[i].Score)
		}
	}
}

// shardedEdit extends randomEdit with identity bookkeeping: kept sentences
// carry their IDs forward (so they stay in their shard), added sentences
// get fresh ones.
func shardedEdit(rng *rand.Rand, termLists [][]string, ids []doc.SentenceID, gen *int) ([][]string, []doc.SentenceID, []doc.Kept, []AddedDoc) {
	next, kept, added := randomEdit(rng, termLists)
	nextIDs := make([]doc.SentenceID, len(next))
	for _, k := range kept {
		nextIDs[k.New] = ids[k.Old]
	}
	for i := range added {
		id := doc.SentenceID(fmt.Sprintf("sent-%06d", *gen))
		*gen++
		added[i].ID = id
		nextIDs[added[i].Pos] = id
	}
	return next, nextIDs, kept, added
}

// sameShardedIndex compares two sharded indexes exhaustively: global
// statistics bitwise, per-shard layouts via sameIndex, and the
// local-to-global document maps.
func sameShardedIndex(t *testing.T, got, want *ShardedIndex) {
	t.Helper()
	if got.n != want.n || len(got.shards) != len(want.shards) {
		t.Fatalf("shape: n %d vs %d, shards %d vs %d", got.n, want.n, len(got.shards), len(want.shards))
	}
	for term, id := range want.vocab {
		if got.vocab[term] != id {
			t.Fatalf("vocab[%q]: %d vs %d", term, got.vocab[term], id)
		}
	}
	for id := range want.idf {
		if math.Float64bits(got.idf[id]) != math.Float64bits(want.idf[id]) {
			t.Fatalf("idf[%d]: %x vs %x", id, got.idf[id], want.idf[id])
		}
	}
	for sh := range want.shards {
		if len(got.docs[sh]) != len(want.docs[sh]) {
			t.Fatalf("shard %d: %d docs vs %d", sh, len(got.docs[sh]), len(want.docs[sh]))
		}
		for i := range want.docs[sh] {
			if got.docs[sh][i] != want.docs[sh][i] {
				t.Fatalf("shard %d doc map[%d]: %d vs %d", sh, i, got.docs[sh][i], want.docs[sh][i])
			}
		}
		sameIndex(t, got.shards[sh], want.shards[sh])
	}
	for i := range want.ids {
		if got.ids[i] != want.ids[i] {
			t.Fatalf("ids[%d]: %q vs %q", i, got.ids[i], want.ids[i])
		}
	}
}

// TestShardedRebuildEqualsColdBuild: a sharded Rebuild over a random edit
// script is bit-identical to a cold sharded build of the successor corpus —
// including the shard assignment of every kept sentence — and both stay
// bit-identical to the monolithic index. The chain runs 6 steps, covering
// the acceptance criterion of >= 3 chained incremental rebuilds.
func TestShardedRebuildEqualsColdBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	gen := 0
	for _, nShards := range []int{2, 4, 8} {
		termLists := randomTermLists(rng, 20)
		ids := idsFor(len(termLists), &gen)
		sh := BuildShardedFromTerms(termLists, ids, nShards)
		for step := 0; step < 6; step++ {
			next, nextIDs, kept, added := shardedEdit(rng, termLists, ids, &gen)
			got, err := sh.Rebuild(kept, added)
			if err != nil {
				t.Fatalf("shards %d step %d: Rebuild: %v", nShards, step, err)
			}
			cold := BuildShardedFromTerms(next, nextIDs, nShards)
			sameShardedIndex(t, got, cold)
			mono := BuildFromTerms(next)
			for _, q := range diffQueries {
				sameScores(t, fmt.Sprintf("shards %d step %d vsm %q", nShards, step, q), got.QueryAll(q), mono.QueryAll(q))
				sameScores(t, fmt.Sprintf("shards %d step %d bm25 %q", nShards, step, q), got.BM25().Scores(q), mono.BM25().Scores(q))
			}
			sh, termLists, ids = got, next, nextIDs
		}
	}
}

// TestShardedRebuildValidation: the sharded Rebuild enforces the same tiling
// contract as the monolithic one.
func TestShardedRebuildValidation(t *testing.T) {
	gen := 0
	lists := [][]string{{"a"}, {"b"}}
	sh := BuildShardedFromTerms(lists, idsFor(2, &gen), 2)
	if _, err := sh.Rebuild([]doc.Kept{{Old: 0, New: 0}}, []AddedDoc{{Pos: 2, Terms: []string{"c"}, ID: "x"}}); err == nil {
		t.Error("gap: want error, got nil")
	}
	if _, err := sh.Rebuild([]doc.Kept{{Old: 0, New: 0}, {Old: 1, New: 0}}, nil); err == nil {
		t.Error("double assignment: want error, got nil")
	}
	if _, err := sh.Rebuild([]doc.Kept{{Old: 5, New: 0}}, nil); err == nil {
		t.Error("old out of range: want error, got nil")
	}
	next, err := sh.Rebuild(nil, nil)
	if err != nil {
		t.Fatalf("empty successor: %v", err)
	}
	if next.Len() != 0 || next.ShardCount() != 2 {
		t.Fatalf("empty successor: Len %d ShardCount %d, want 0 and 2", next.Len(), next.ShardCount())
	}
}

// TestShardedSerialScoringBitIdentical: WithSerialScoring keeps the fan-out
// on one goroutine and must not change a single bit.
func TestShardedSerialScoringBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	gen := 0
	termLists := randomTermLists(rng, 50)
	sh := BuildShardedFromTerms(termLists, idsFor(len(termLists), &gen), 4)
	for _, q := range diffQueries {
		terms := splitTerms(q)
		par := sh.QueryAllTerms(terms)
		ser := sh.QueryAllTermsCtx(WithSerialScoring(t.Context()), terms)
		sameScores(t, "serial vs parallel "+q, ser, par)
	}
}

func splitTerms(q string) []string {
	var out []string
	cur := ""
	for _, r := range q + " " {
		if r == ' ' {
			if cur != "" {
				out = append(out, cur)
				cur = ""
			}
			continue
		}
		cur += string(r)
	}
	return out
}
