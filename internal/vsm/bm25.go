package vsm

import (
	"context"
	"math"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/textproc"
)

// BM25 parameters (standard Robertson/Spärck-Jones defaults).
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// BM25 scores sentences with Okapi BM25 over the *same* inverted postings
// as the TF-IDF index it derives from: every posting carries the term's raw
// frequency alongside its cosine weight, so this view adds only the BM25
// IDF table and the per-document length-normalization denominators — no
// second tokenization pass, no second postings store. It is the retrieval
// ablation against the paper's TF-IDF/VSM choice (Eqs. 1-2), selectable per
// query in the serving layer. BM25 scores are unbounded and NOT comparable
// with cosine similarities; compare them only within this backend.
//
// Unlike the cosine backend, BM25 keeps contributions from zero-IDF terms
// (terms appearing in every document): their BM25 IDF log(1 + 1/(2N+1)) is
// small but positive, matching the standard formulation.
type BM25 struct {
	ix   *Index
	idf  []float64 // log((N - df + .5)/(df + .5) + 1), per term id
	norm []float64 // k1*(1 - b + b*len/avgLen), per document

	pruneOnce sync.Once // lazily-built impact-ordered pruning view
	prune     *pruneState
}

// BM25 returns the BM25 scoring view over this index's postings, built
// lazily on first use and cached (an Index is immutable after Build, so the
// view is safe to share across goroutines).
func (ix *Index) BM25() *BM25 {
	ix.bm25Once.Do(func() {
		b := &BM25{ix: ix, idf: make([]float64, len(ix.idf)), norm: make([]float64, ix.n)}
		var total float64
		for _, l := range ix.docLens {
			total += float64(l)
		}
		var avg float64
		if ix.n > 0 {
			avg = total / float64(ix.n)
		}
		n := float64(ix.n)
		for t := range b.idf {
			df := float64(len(ix.postings[t]))
			b.idf[t] = math.Log((n-df+0.5)/(df+0.5) + 1)
		}
		for d, l := range ix.docLens {
			if avg > 0 {
				b.norm[d] = bm25K1 * (1 - bm25B + bm25B*float64(l)/avg)
			} else {
				b.norm[d] = bm25K1
			}
		}
		ix.bm25 = b
	})
	return ix.bm25
}

// BuildBM25 constructs a BM25 scorer over raw sentences — the standalone
// entry point for experiments; a serving layer uses Index.BM25 so both
// backends share one postings store.
func BuildBM25(sentences []string) *BM25 { return Build(sentences).BM25() }

// Backend implements Scorer.
func (b *BM25) Backend() string { return BackendBM25 }

// ScoreTerms returns the BM25 score of every sentence for a pre-normalized
// query term list. Duplicate query terms count once (the standard binary
// query model). Accumulation walks query terms in ascending term-id order,
// so identical queries produce bit-identical scores.
func (b *BM25) ScoreTerms(terms []string) []float64 {
	out := make([]float64, b.ix.n)
	for _, t := range queryIDs(b.ix.vocab, terms) {
		idf := b.idf[t]
		for _, p := range b.ix.postings[t] {
			tf := float64(p.tf)
			out[p.doc] += idf * tf * (bm25K1 + 1) / (tf + b.norm[p.doc])
		}
	}
	return out
}

// ScoreTermsCtx implements Scorer: ScoreTerms with an optional trace span.
func (b *BM25) ScoreTermsCtx(ctx context.Context, terms []string) []float64 {
	if parent := obs.SpanFrom(ctx); parent != nil {
		span := parent.StartChild("bm25.score")
		span.SetAttrInt("query_terms", len(terms))
		span.SetAttrInt("docs", b.ix.n)
		defer span.Finish()
	}
	return b.ScoreTerms(terms)
}

// Scores returns the BM25 score of every sentence for raw query text.
func (b *BM25) Scores(query string) []float64 {
	return b.ScoreTerms(textproc.NormalizeTerms(query))
}

// TopK returns the k best-scoring sentences with positive score, best first
// (ties by ascending index); k <= 0 returns nothing.
func (b *BM25) TopK(query string, k int) []Match {
	return b.TopKCtx(context.Background(), query, k)
}

// TopKCtx is TopK honoring the pruning decision on ctx (default on). The
// pruned path runs MaxScore elimination over per-term contribution lists in
// descending contribution order; results are Float64bits-identical to
// exhaustive scoring (see TestPruneDifferential).
func (b *BM25) TopKCtx(ctx context.Context, query string, k int) []Match {
	if k <= 0 {
		return nil
	}
	return b.topMatches(PruningOn(ctx), queryIDs(b.ix.vocab, textproc.NormalizeTerms(query)), k)
}

// queryIDs resolves query terms to their sorted unique vocabulary ids —
// BM25's binary query model (duplicate terms count once).
func queryIDs(vocab map[string]int, terms []string) []int {
	seen := map[int]bool{}
	ids := make([]int, 0, len(terms))
	for _, t := range terms {
		if id, ok := vocab[t]; ok && !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// bm25Prune returns the BM25 pruning state: per-term posting contributions
// c = idf·tf·(k1+1)/(tf+norm) precomputed with the exact float expression
// ScoreTerms accumulates, stored in both document and descending-impact
// order. Built lazily on first use; safe to share (BM25 is immutable).
func (b *BM25) bm25Prune() *pruneState {
	b.pruneOnce.Do(func() {
		b.prune = buildBM25Prune(b.ix.postings, b.idf, b.norm, func(d int32) int32 { return d })
	})
	return b.prune
}

// buildBM25Prune assembles a BM25 pruning state over one partition's
// postings. normDoc maps a partition-local document to its ordinal in the
// norm table — the identity for a monolithic index, the local-to-global
// remap for a shard (shards score with GLOBAL idf and norms so their
// contributions are bit-identical to the monolithic accumulation).
func buildBM25Prune(postings [][]posting, idf, norm []float64, normDoc func(int32) int32) *pruneState {
	st := &pruneState{terms: make([]pruneList, len(postings))}
	for t, posts := range postings {
		tidf := idf[t]
		pl := &st.terms[t]
		pl.docs = make([]int32, len(posts))
		pl.w = make([]float64, len(posts))
		for i, p := range posts {
			tf := float64(p.tf)
			pl.docs[i] = p.doc
			pl.w[i] = tidf * tf * (bm25K1 + 1) / (tf + norm[normDoc(p.doc)])
		}
		pl.buildImpactOrder()
	}
	return st
}

// topMatches is BM25's selection core: MaxScore over contribution-ordered
// postings when pruning is on and the corpus is big enough, the exhaustive
// score-filter-sort-truncate otherwise. The admission rule is strictly
// positive score (threshold 0, strict), so every admissible document
// appears in some query term's postings — contributions are positive.
func (b *BM25) topMatches(prune bool, ids []int, k int) []Match {
	if prune {
		if b.ix.n >= minPruneDocs {
			st := b.bm25Prune()
			refs := make([]termRef, len(ids))
			for i, t := range ids {
				refs[i] = termRef{id: t, mult: 1, list: &st.terms[t]}
			}
			if out, skipped, ok := pruneSelect(refs, 0, true, k, b.ix.n); ok {
				pruneQueries.Inc()
				pruneSkipped.Add(skipped)
				return out
			}
		}
		pruneFallbacks.Inc()
	}
	out := make([]float64, b.ix.n)
	for _, t := range ids {
		idf := b.idf[t]
		for _, p := range b.ix.postings[t] {
			tf := float64(p.tf)
			out[p.doc] += idf * tf * (bm25K1 + 1) / (tf + b.norm[p.doc])
		}
	}
	var matches []Match
	for i, s := range out {
		if s > 0 {
			matches = append(matches, Match{Index: i, Score: s})
		}
	}
	sortMatches(matches)
	if k > 0 && len(matches) > k {
		matches = matches[:k]
	}
	return matches
}
