package vsm

import (
	"context"
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/textproc"
)

// BM25 parameters (standard Robertson/Spärck-Jones defaults).
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// BM25 scores sentences with Okapi BM25 over the *same* inverted postings
// as the TF-IDF index it derives from: every posting carries the term's raw
// frequency alongside its cosine weight, so this view adds only the BM25
// IDF table and the per-document length-normalization denominators — no
// second tokenization pass, no second postings store. It is the retrieval
// ablation against the paper's TF-IDF/VSM choice (Eqs. 1-2), selectable per
// query in the serving layer. BM25 scores are unbounded and NOT comparable
// with cosine similarities; compare them only within this backend.
//
// Unlike the cosine backend, BM25 keeps contributions from zero-IDF terms
// (terms appearing in every document): their BM25 IDF log(1 + 1/(2N+1)) is
// small but positive, matching the standard formulation.
type BM25 struct {
	ix   *Index
	idf  []float64 // log((N - df + .5)/(df + .5) + 1), per term id
	norm []float64 // k1*(1 - b + b*len/avgLen), per document
}

// BM25 returns the BM25 scoring view over this index's postings, built
// lazily on first use and cached (an Index is immutable after Build, so the
// view is safe to share across goroutines).
func (ix *Index) BM25() *BM25 {
	ix.bm25Once.Do(func() {
		b := &BM25{ix: ix, idf: make([]float64, len(ix.idf)), norm: make([]float64, ix.n)}
		var total float64
		for _, l := range ix.docLens {
			total += float64(l)
		}
		var avg float64
		if ix.n > 0 {
			avg = total / float64(ix.n)
		}
		n := float64(ix.n)
		for t := range b.idf {
			df := float64(len(ix.postings[t]))
			b.idf[t] = math.Log((n-df+0.5)/(df+0.5) + 1)
		}
		for d, l := range ix.docLens {
			if avg > 0 {
				b.norm[d] = bm25K1 * (1 - bm25B + bm25B*float64(l)/avg)
			} else {
				b.norm[d] = bm25K1
			}
		}
		ix.bm25 = b
	})
	return ix.bm25
}

// BuildBM25 constructs a BM25 scorer over raw sentences — the standalone
// entry point for experiments; a serving layer uses Index.BM25 so both
// backends share one postings store.
func BuildBM25(sentences []string) *BM25 { return Build(sentences).BM25() }

// Backend implements Scorer.
func (b *BM25) Backend() string { return BackendBM25 }

// ScoreTerms returns the BM25 score of every sentence for a pre-normalized
// query term list. Duplicate query terms count once (the standard binary
// query model). Accumulation walks query terms in ascending term-id order,
// so identical queries produce bit-identical scores.
func (b *BM25) ScoreTerms(terms []string) []float64 {
	out := make([]float64, b.ix.n)
	seen := map[int]bool{}
	ids := make([]int, 0, len(terms))
	for _, t := range terms {
		if id, ok := b.ix.vocab[t]; ok && !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, t := range ids {
		idf := b.idf[t]
		for _, p := range b.ix.postings[t] {
			tf := float64(p.tf)
			out[p.doc] += idf * tf * (bm25K1 + 1) / (tf + b.norm[p.doc])
		}
	}
	return out
}

// ScoreTermsCtx implements Scorer: ScoreTerms with an optional trace span.
func (b *BM25) ScoreTermsCtx(ctx context.Context, terms []string) []float64 {
	if parent := obs.SpanFrom(ctx); parent != nil {
		span := parent.StartChild("bm25.score")
		span.SetAttrInt("query_terms", len(terms))
		span.SetAttrInt("docs", b.ix.n)
		defer span.Finish()
	}
	return b.ScoreTerms(terms)
}

// Scores returns the BM25 score of every sentence for raw query text.
func (b *BM25) Scores(query string) []float64 {
	return b.ScoreTerms(textproc.NormalizeTerms(query))
}

// TopK returns the k best-scoring sentences with positive score, best first
// (ties by ascending index); k <= 0 returns nothing.
func (b *BM25) TopK(query string, k int) []Match {
	if k <= 0 {
		return nil
	}
	var matches []Match
	for i, s := range b.Scores(query) {
		if s > 0 {
			matches = append(matches, Match{Index: i, Score: s})
		}
	}
	sortMatches(matches)
	if len(matches) > k {
		matches = matches[:k]
	}
	return matches
}
