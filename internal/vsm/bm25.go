package vsm

import (
	"math"

	"repro/internal/textproc"
)

// BM25 parameters (standard Robertson/Spärck-Jones defaults).
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// BM25Index scores sentences with Okapi BM25 — the retrieval ablation
// against the paper's TF-IDF/VSM choice (Eqs. 1-2). Built from the same
// normalized term stream as Index.
type BM25Index struct {
	vocab  map[string]int
	idf    []float64 // BM25 idf: log((N - df + .5)/(df + .5) + 1)
	docs   [][]entry // raw term frequencies per sentence (sorted by term)
	lens   []float64 // token counts
	avgLen float64
	n      int
}

// BuildBM25 constructs a BM25 index over raw sentences.
func BuildBM25(sentences []string) *BM25Index {
	ix := &BM25Index{vocab: map[string]int{}, n: len(sentences)}
	var df []int
	termLists := make([][]string, len(sentences))
	var totalLen float64
	for i, s := range sentences {
		terms := textproc.NormalizeTerms(s)
		termLists[i] = terms
		ix.lens = append(ix.lens, float64(len(terms)))
		totalLen += float64(len(terms))
		seen := map[int]bool{}
		for _, t := range terms {
			id, ok := ix.vocab[t]
			if !ok {
				id = len(ix.vocab)
				ix.vocab[t] = id
				df = append(df, 0)
			}
			if !seen[id] {
				df[id]++
				seen[id] = true
			}
		}
	}
	if ix.n > 0 {
		ix.avgLen = totalLen / float64(ix.n)
	}
	ix.idf = make([]float64, len(df))
	for id, d := range df {
		ix.idf[id] = math.Log((float64(ix.n)-float64(d)+0.5)/(float64(d)+0.5) + 1)
	}
	ix.docs = make([][]entry, ix.n)
	for i, terms := range termLists {
		tf := map[int]float64{}
		for _, t := range terms {
			tf[ix.vocab[t]]++
		}
		vec := make([]entry, 0, len(tf))
		for id, f := range tf {
			vec = append(vec, entry{term: id, weight: f})
		}
		sortEntries(vec)
		ix.docs[i] = vec
	}
	return ix
}

func sortEntries(v []entry) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j].term < v[j-1].term; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// Scores returns the BM25 score of every sentence for the query.
func (ix *BM25Index) Scores(query string) []float64 {
	qTerms := textproc.NormalizeTerms(query)
	out := make([]float64, ix.n)
	qIDs := map[int]bool{}
	for _, t := range qTerms {
		if id, ok := ix.vocab[t]; ok {
			qIDs[id] = true
		}
	}
	if len(qIDs) == 0 {
		return out
	}
	for i, doc := range ix.docs {
		norm := bm25K1 * (1 - bm25B + bm25B*ix.lens[i]/ix.avgLen)
		var s float64
		for _, e := range doc {
			if !qIDs[e.term] {
				continue
			}
			s += ix.idf[e.term] * (e.weight * (bm25K1 + 1)) / (e.weight + norm)
		}
		out[i] = s
	}
	return out
}

// TopK returns the indices of the k best-scoring sentences with positive
// score, best first (ties by index).
func (ix *BM25Index) TopK(query string, k int) []Match {
	scores := ix.Scores(query)
	var matches []Match
	for i, s := range scores {
		if s > 0 {
			matches = append(matches, Match{Index: i, Score: s})
		}
	}
	sortMatches(matches)
	if len(matches) > k {
		matches = matches[:k]
	}
	return matches
}
