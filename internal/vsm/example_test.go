package vsm_test

import (
	"fmt"

	"repro/internal/vsm"
)

// Example retrieves the most relevant sentence for a query.
func Example() {
	ix := vsm.Build([]string{
		"Use shared memory to reduce global memory traffic.",
		"Avoid bank conflicts in shared memory.",
		"The warp size is thirty-two threads.",
	})
	for _, m := range ix.TopK("bank conflicts", 1, vsm.DefaultThreshold) {
		fmt.Println(m.Index)
	}
	// Output:
	// 1
}
