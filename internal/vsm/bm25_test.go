package vsm

import (
	"math"
	"testing"
)

func TestBM25RelevanceOrdering(t *testing.T) {
	ix := BuildBM25(corpus)
	top := ix.TopK("how to avoid shared memory bank conflicts", 3)
	if len(top) == 0 {
		t.Fatal("no matches")
	}
	if top[0].Index != 1 {
		t.Errorf("top match %d (%q), want 1", top[0].Index, corpus[top[0].Index])
	}
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Error("not sorted")
		}
	}
}

func TestBM25NoOverlap(t *testing.T) {
	ix := BuildBM25(corpus)
	for _, s := range ix.Scores("zyzzyva quux") {
		if s != 0 {
			t.Errorf("score %f for vocab-free query", s)
		}
	}
	if got := ix.TopK("", 5); len(got) != 0 {
		t.Errorf("empty query matched: %v", got)
	}
}

func TestBM25ScoresNonNegative(t *testing.T) {
	ix := BuildBM25(corpus)
	for _, q := range []string{"memory", "divergent warps control flow", "register compiler"} {
		for i, s := range ix.Scores(q) {
			if s < 0 || math.IsNaN(s) {
				t.Errorf("q=%q sentence %d score %f", q, i, s)
			}
		}
	}
}

func TestBM25LengthNormalization(t *testing.T) {
	// same term frequency, shorter document scores higher
	docs := []string{
		"coalesce the accesses",
		"coalesce the accesses while considering many other unrelated aspects of the launch configuration and the driver behavior",
	}
	ix := BuildBM25(docs)
	s := ix.Scores("coalesce accesses")
	if s[0] <= s[1] {
		t.Errorf("length normalization inverted: %f vs %f", s[0], s[1])
	}
}

func TestBM25EmptyIndex(t *testing.T) {
	ix := BuildBM25(nil)
	if got := ix.Scores("anything"); len(got) != 0 {
		t.Errorf("empty index scored: %v", got)
	}
}

func BenchmarkBM25Query(b *testing.B) {
	ix := BuildBM25(corpus)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix.Scores("how to avoid shared memory bank conflicts")
	}
}
