package vsm

import (
	"math"
	"testing"
	"testing/quick"
)

var corpus = []string{
	"Use shared memory to reduce global memory traffic.",
	"Avoid bank conflicts in shared memory.",
	"The warp size is thirty-two threads.",
	"Coalesce global memory accesses to maximize bandwidth.",
	"Unroll small loops to reduce instruction overhead.",
	"Register usage can be controlled with a compiler option.",
	"Minimize divergent warps caused by control flow instructions.",
	"Overlap data transfers with kernel execution using streams.",
}

func TestQueryRelevanceOrdering(t *testing.T) {
	ix := Build(corpus)
	matches := ix.Query("how to avoid shared memory bank conflicts", 0.01)
	if len(matches) == 0 {
		t.Fatal("no matches")
	}
	if matches[0].Index != 1 {
		t.Errorf("top match = %d (%q), want 1", matches[0].Index, corpus[matches[0].Index])
	}
	for i := 1; i < len(matches); i++ {
		if matches[i].Score > matches[i-1].Score {
			t.Errorf("matches not sorted: %v", matches)
		}
	}
}

func TestQueryThreshold(t *testing.T) {
	ix := Build(corpus)
	all := ix.Query("memory", 0)
	strict := ix.Query("memory", 0.5)
	if len(strict) > len(all) {
		t.Error("higher threshold returned more matches")
	}
	for _, m := range strict {
		if m.Score < 0.5 {
			t.Errorf("match below threshold: %+v", m)
		}
	}
}

func TestQueryNoVocabularyOverlap(t *testing.T) {
	ix := Build(corpus)
	if got := ix.Query("zyzzyva quux", 0.01); len(got) != 0 {
		t.Errorf("expected no matches, got %v", got)
	}
	if got := ix.Query("", 0.01); len(got) != 0 {
		t.Errorf("empty query matched: %v", got)
	}
}

func TestSimilarityBounds(t *testing.T) {
	ix := Build(corpus)
	for i := range corpus {
		s := ix.Similarity(i, corpus[i])
		if s < 0.999 || s > 1.001 {
			t.Errorf("self-similarity of %d = %f, want 1", i, s)
		}
	}
	if ix.Similarity(-1, "memory") != 0 || ix.Similarity(99, "memory") != 0 {
		t.Error("out-of-range similarity should be 0")
	}
}

func TestIDFBehaviour(t *testing.T) {
	ix := Build(corpus)
	// "memory" appears in several sentences, "warp" in fewer:
	// rarer terms must have higher IDF.
	if ix.IDF("memori") <= 0 {
		t.Errorf("idf(memori) = %f, want > 0", ix.IDF("memori"))
	}
	if ix.IDF("warp") <= ix.IDF("memori") {
		t.Errorf("idf(warp)=%f should exceed idf(memori)=%f", ix.IDF("warp"), ix.IDF("memori"))
	}
	if ix.IDF("nonexistentterm") != 0 {
		t.Error("unknown term should have idf 0")
	}
}

func TestQueryAllMatchesSerial(t *testing.T) {
	ix := Build(corpus)
	for _, q := range []string{"memory bandwidth", "divergent warps", "loop unrolling"} {
		par := ix.QueryAll(q)
		ser := ix.QuerySerial(q)
		if len(par) != len(ser) {
			t.Fatalf("length mismatch %d vs %d", len(par), len(ser))
		}
		for i := range par {
			if math.Abs(par[i]-ser[i]) > 1e-12 {
				t.Errorf("q=%q i=%d: parallel %f != serial %f", q, i, par[i], ser[i])
			}
		}
	}
}

func TestTopK(t *testing.T) {
	ix := Build(corpus)
	m := ix.TopK("memory", 2, 0)
	if len(m) > 2 {
		t.Errorf("TopK returned %d matches", len(m))
	}
}

func TestLenAndVocab(t *testing.T) {
	ix := Build(corpus)
	if ix.Len() != len(corpus) {
		t.Errorf("Len = %d", ix.Len())
	}
	if ix.VocabSize() == 0 {
		t.Error("empty vocabulary")
	}
}

func TestEmptyIndex(t *testing.T) {
	ix := Build(nil)
	if ix.Len() != 0 {
		t.Error("empty index has nonzero len")
	}
	if got := ix.Query("anything", 0); len(got) != 0 {
		t.Errorf("empty index matched: %v", got)
	}
}

// Property: cosine similarity is symmetric and within [0, 1+eps] for
// nonnegative TF-IDF vectors.
func TestCosineProperties(t *testing.T) {
	ix := Build(corpus)
	texts := append([]string{}, corpus...)
	texts = append(texts, "memory", "warp divergence", "")
	f := func(i, j uint8) bool {
		a := texts[int(i)%len(texts)]
		b := texts[int(j)%len(texts)]
		sab := ix.Cosine(a, b)
		sba := ix.Cosine(b, a)
		if math.Abs(sab-sba) > 1e-12 {
			return false
		}
		return sab >= -1e-12 && sab <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: every score Query returns is reproduced by Similarity.
func TestQueryScoresConsistent(t *testing.T) {
	ix := Build(corpus)
	for _, q := range []string{"shared memory", "register usage compiler"} {
		for _, m := range ix.Query(q, 0.01) {
			if math.Abs(ix.Similarity(m.Index, q)-m.Score) > 1e-12 {
				t.Errorf("inconsistent score for %d", m.Index)
			}
		}
	}
}

func BenchmarkBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Build(corpus)
	}
}

func BenchmarkQuery(b *testing.B) {
	ix := Build(corpus)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix.Query("how to avoid shared memory bank conflicts", DefaultThreshold)
	}
}
