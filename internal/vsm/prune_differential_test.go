package vsm

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
)

// The pruning differential suite: MaxScore candidate elimination over
// impact-ordered postings must be Float64bits-identical to exhaustive
// scoring — same indices, same score bits, same order — for both backends,
// monolithic and sharded, across k values, thresholds, duplicate-score
// ties, and chained Rebuilds. Every comparison goes through sameMatches
// (math.Float64bits); "close" is not equivalence.

// pruneOn/pruneOff pin the two paths explicitly: pruneOn forces the pruned
// path even if a future default changes, pruneOff is the exhaustive
// reference.
func pruneOn() context.Context  { return WithPruning(context.Background(), true) }
func pruneOff() context.Context { return WithPruning(context.Background(), false) }

// pruneQueriesFor exercises single-term, multi-term, zero-IDF, repeated,
// and out-of-vocabulary queries, plus wide queries touching many terms
// (where per-term elimination has real work to do).
var pruneQueriesFor = append([]string{
	"term03 term17 common",
	"term00",
	"common term29 term29",
	"nosuchterm",
	"term01 term04 term09 term16 term25 term28",
	"term00 term01 term02 term03 term04 term05 term06 term07 common",
}, diffQueries...)

// prunedCorpus builds a random corpus big enough to clear the pruning gate
// on most rounds, with a few duplicated documents forcing exact score ties
// at distinct indices (the tie cases the strict-< skip predicate must get
// right without falling back).
func prunedCorpus(rng *rand.Rand, n int) [][]string {
	termLists := randomTermLists(rng, n)
	for d := 0; d < 4 && len(termLists) > 0; d++ {
		termLists = append(termLists, termLists[rng.Intn(len(termLists))])
	}
	return termLists
}

// TestPruneDifferential is the heart of the suite: 100 random corpora —
// sizes straddling the minPruneDocs gate — where pruned TopK and Query
// must reproduce the exhaustive lists exactly for VSM and BM25,
// monolithic and sharded (1/4/8), across k in {1, 3, n, 2n} (plus k <= 0
// returning nothing) and thresholds including the <= 0 fallback cases.
func TestPruneDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	gen := 0
	before := pruneQueries.Value()
	for round := 0; round < 100; round++ {
		// odd rounds stay under minPruneDocs to pin the tiny-corpus fallback
		size := 3 + rng.Intn(24)
		if round%2 == 0 {
			size = minPruneDocs + rng.Intn(120)
		}
		termLists := prunedCorpus(rng, size)
		ids := idsFor(len(termLists), &gen)
		mono := BuildFromTerms(termLists)
		n := mono.Len()
		q := pruneQueriesFor[round%len(pruneQueriesFor)]
		ks := []int{0, 1, 3, n, 2 * n}
		for _, threshold := range []float64{DefaultThreshold, 0.01, 0.6, 0, -1} {
			label := fmt.Sprintf("round %d %q thr %v", round, q, threshold)
			wantQ := mono.QueryCtx(pruneOff(), q, threshold)
			sameMatches(t, label+" mono Query", mono.QueryCtx(pruneOn(), q, threshold), wantQ)
			for _, k := range ks {
				wantK := mono.TopKCtx(pruneOff(), q, k, threshold)
				sameMatches(t, fmt.Sprintf("%s mono TopK k=%d", label, k),
					mono.TopKCtx(pruneOn(), q, k, threshold), wantK)
			}
		}
		bm := mono.BM25()
		for _, k := range ks {
			wantK := bm.TopKCtx(pruneOff(), q, k)
			sameMatches(t, fmt.Sprintf("round %d %q mono bm25 TopK k=%d", round, q, k),
				bm.TopKCtx(pruneOn(), q, k), wantK)
		}
		for _, nShards := range []int{1, 4, 8} {
			sh := BuildShardedFromTerms(termLists, ids, nShards)
			for _, threshold := range []float64{DefaultThreshold, 0, -1} {
				label := fmt.Sprintf("round %d shards %d %q thr %v", round, nShards, q, threshold)
				wantQ := mono.QueryCtx(pruneOff(), q, threshold)
				sameMatches(t, label+" Query", sh.QueryCtx(pruneOn(), q, threshold), wantQ)
				sameMatches(t, label+" Query off", sh.QueryCtx(pruneOff(), q, threshold), wantQ)
				for _, k := range ks {
					wantK := mono.TopKCtx(pruneOff(), q, k, threshold)
					sameMatches(t, fmt.Sprintf("%s TopK k=%d", label, k),
						sh.TopKCtx(pruneOn(), q, k, threshold), wantK)
				}
			}
			shb := sh.BM25()
			for _, k := range ks {
				wantK := bm.TopKCtx(pruneOff(), q, k)
				sameMatches(t, fmt.Sprintf("round %d shards %d %q bm25 TopK k=%d", round, nShards, q, k),
					shb.TopKCtx(pruneOn(), q, k), wantK)
				sameMatches(t, fmt.Sprintf("round %d shards %d %q bm25 TopK off k=%d", round, nShards, q, k),
					shb.TopKCtx(pruneOff(), q, k), wantK)
			}
		}
	}
	// the suite must have actually taken the pruned path, not fallen back
	// its way to a vacuous pass
	if pruneQueries.Value() == before {
		t.Fatal("pruned path never engaged across 100 rounds")
	}
}

// TestPruneMatchesTermsParity pins the serving-path form: MatchesTermsCtx
// (pruned and exhaustive) must equal filtering the full score slice at the
// threshold — including the empty-query and threshold <= 0 edge where
// every document scores 0 and is admitted.
func TestPruneMatchesTermsParity(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	gen := 0
	termLists := prunedCorpus(rng, minPruneDocs+40)
	ids := idsFor(len(termLists), &gen)
	mono := BuildFromTerms(termLists)
	sh := BuildShardedFromTerms(termLists, ids, 4)
	queries := append([]string{"", "common", "nosuchterm"}, pruneQueriesFor...)
	for _, q := range queries {
		terms := splitTerms(q)
		scores := mono.QueryAllTerms(terms)
		for _, threshold := range []float64{DefaultThreshold, 0.01, 0} {
			var want []Match
			for i, s := range scores {
				if s >= threshold {
					want = append(want, Match{Index: i, Score: s})
				}
			}
			sortMatches(want)
			label := fmt.Sprintf("MatchesTerms %q thr %v", q, threshold)
			sameMatches(t, label+" mono on", mono.MatchesTermsCtx(pruneOn(), terms, threshold), want)
			sameMatches(t, label+" mono off", mono.MatchesTermsCtx(pruneOff(), terms, threshold), want)
			sameMatches(t, label+" sharded on", sh.MatchesTermsCtx(pruneOn(), terms, threshold), want)
			sameMatches(t, label+" sharded off", sh.MatchesTermsCtx(pruneOff(), terms, threshold), want)
		}
	}
}

// TestPruneAcrossRebuilds chains random edits through Rebuild and checks
// that the successor indexes — whose pruning state is rebuilt lazily from
// the new postings — keep pruned retrieval bit-identical to exhaustive,
// monolithic and sharded.
func TestPruneAcrossRebuilds(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	gen := 0
	termLists := prunedCorpus(rng, minPruneDocs+60)
	ids := idsFor(len(termLists), &gen)
	mono := BuildFromTerms(termLists)
	sh := BuildShardedFromTerms(termLists, ids, 4)
	for step := 0; step < 5; step++ {
		next, nextIDs, kept, added := shardedEdit(rng, termLists, ids, &gen)
		var err error
		if mono, err = mono.Rebuild(kept, added); err != nil {
			t.Fatalf("step %d: mono Rebuild: %v", step, err)
		}
		if sh, err = sh.Rebuild(kept, added); err != nil {
			t.Fatalf("step %d: sharded Rebuild: %v", step, err)
		}
		n := mono.Len()
		for _, q := range pruneQueriesFor {
			for _, k := range []int{1, 3, n} {
				label := fmt.Sprintf("step %d %q k=%d", step, q, k)
				want := mono.TopKCtx(pruneOff(), q, k, DefaultThreshold)
				sameMatches(t, label+" mono", mono.TopKCtx(pruneOn(), q, k, DefaultThreshold), want)
				sameMatches(t, label+" sharded", sh.TopKCtx(pruneOn(), q, k, DefaultThreshold), want)
				wantB := mono.BM25().TopKCtx(pruneOff(), q, k)
				sameMatches(t, label+" bm25 mono", mono.BM25().TopKCtx(pruneOn(), q, k), wantB)
				sameMatches(t, label+" bm25 sharded", sh.BM25().TopKCtx(pruneOn(), q, k), wantB)
			}
		}
		termLists, ids = next, nextIDs
	}
}

// TestPruneContextToggle pins the context plumbing: unset defaults to on,
// explicit values round-trip, and PruningOn reflects them.
func TestPruneContextToggle(t *testing.T) {
	if on, set := Pruning(context.Background()); !on || set {
		t.Fatalf("background: on=%v set=%v, want true/false", on, set)
	}
	if !PruningOn(context.Background()) {
		t.Fatal("PruningOn(background) = false, want true (default on)")
	}
	for _, v := range []bool{true, false} {
		ctx := WithPruning(context.Background(), v)
		if on, set := Pruning(ctx); on != v || !set {
			t.Fatalf("WithPruning(%v): on=%v set=%v", v, on, set)
		}
		if PruningOn(ctx) != v {
			t.Fatalf("PruningOn(WithPruning(%v)) = %v", v, !v)
		}
	}
}

// TestPruneFallbackCounted pins the observability contract: a pruning
// request the bound math cannot serve (threshold <= 0 admits zero-score
// documents) takes the exhaustive path and counts a fallback; a servable
// request counts a pruned query and, on a corpus with skippable postings,
// skipped postings.
func TestPruneFallbackCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	termLists := prunedCorpus(rng, minPruneDocs+80)
	ix := BuildFromTerms(termLists)

	fallbacks := pruneFallbacks.Value()
	ix.TopKCtx(pruneOn(), "term03 term17", 3, 0) // threshold 0: exhaustive by construction
	if got := pruneFallbacks.Value(); got != fallbacks+1 {
		t.Fatalf("threshold 0 fallbacks: %d, want %d", got, fallbacks+1)
	}

	tiny := BuildFromTerms([][]string{{"alpha", "beta"}, {"beta"}, {"gamma"}, {"delta"}})
	fallbacks = pruneFallbacks.Value()
	tiny.TopKCtx(pruneOn(), "alpha", 2, DefaultThreshold)
	if got := pruneFallbacks.Value(); got != fallbacks+1 {
		t.Fatalf("tiny-corpus fallbacks: %d, want %d", got, fallbacks+1)
	}

	queries, skipped := pruneQueries.Value(), pruneSkipped.Value()
	ix.TopKCtx(pruneOn(), "term03 term17 term25", 1, DefaultThreshold)
	if got := pruneQueries.Value(); got != queries+1 {
		t.Fatalf("pruned queries: %d, want %d", got, queries+1)
	}
	if pruneSkipped.Value() < skipped {
		t.Fatalf("skipped postings went backwards: %d -> %d", skipped, pruneSkipped.Value())
	}
}
