package vsm

import (
	"context"
	"math"
	"sort"
	"testing"

	"repro/internal/textproc"
)

// Differential tests between the two scoring backends: properties that must
// hold regardless of backend (zero-overlap queries score zero everywhere),
// bit-exactness of the Scorer indirection against the direct VSM path, and
// agreement of the shared-postings BM25 with a from-scratch reference
// implementation.

var diffSentences = []string{
	"Use shared memory to reduce global memory traffic.",
	"Avoid bank conflicts when accessing shared memory banks.",
	"Coalesce global memory accesses for maximum bandwidth.",
	"Minimize divergent branches within a warp.",
	"Overlap data transfers with kernel execution using streams.",
	"Prefer single precision arithmetic when accuracy permits.",
	"Occupancy depends on registers and shared memory per block.",
}

func TestBackendsAgreeOnZeroOverlap(t *testing.T) {
	ix := Build(diffSentences)
	terms := textproc.NormalizeTerms("quantum chromodynamics lattice pasta")
	for _, backend := range Backends() {
		scorer, err := ix.Scorer(backend)
		if err != nil {
			t.Fatal(err)
		}
		for d, s := range scorer.ScoreTermsCtx(context.Background(), terms) {
			if s != 0 {
				t.Errorf("%s: zero-overlap query scored doc %d at %v, want 0", backend, d, s)
			}
		}
	}
}

// TestScorerVSMBitIdentical pins the refactoring invariant of the Scorer
// interface: scoring through ix.Scorer("vsm") (and its "" default spelling)
// is bit-for-bit the same as the direct Index path, and every Query match
// score equals the corresponding dense score exactly.
func TestScorerVSMBitIdentical(t *testing.T) {
	ix := Build(diffSentences)
	queries := []string{
		"shared memory bank conflicts",
		"global memory bandwidth",
		"divergent warp execution",
		"transfer overlap streams",
	}
	for _, q := range queries {
		terms := textproc.NormalizeTerms(q)
		direct := ix.QueryAllTerms(terms)
		for _, spelling := range []string{"", BackendVSM} {
			scorer, err := ix.Scorer(spelling)
			if err != nil {
				t.Fatal(err)
			}
			viaScorer := scorer.ScoreTermsCtx(context.Background(), terms)
			for d := range direct {
				if math.Float64bits(direct[d]) != math.Float64bits(viaScorer[d]) {
					t.Fatalf("q=%q spelling=%q doc %d: direct %x via-scorer %x",
						q, spelling, d, math.Float64bits(direct[d]), math.Float64bits(viaScorer[d]))
				}
			}
		}
		for _, m := range ix.Query(q, DefaultThreshold) {
			if math.Float64bits(m.Score) != math.Float64bits(direct[m.Index]) {
				t.Fatalf("q=%q: Query score %v != dense score %v at doc %d", q, m.Score, direct[m.Index], m.Index)
			}
		}
	}
}

// TestSerialScoringBitIdentical: the batch executor's serial-scoring hint
// must not change a single bit of any score.
func TestSerialScoringBitIdentical(t *testing.T) {
	ix := Build(diffSentences)
	terms := textproc.NormalizeTerms("shared memory global bandwidth warp")
	par := ix.QueryAllTermsCtx(context.Background(), terms)
	ser := ix.QueryAllTermsCtx(WithSerialScoring(context.Background()), terms)
	for d := range par {
		if math.Float64bits(par[d]) != math.Float64bits(ser[d]) {
			t.Fatalf("doc %d: parallel %x serial %x", d, math.Float64bits(par[d]), math.Float64bits(ser[d]))
		}
	}
}

// naiveBM25 recomputes Okapi BM25 from the raw sentences with none of the
// index's machinery — its own tokenization pass, df counts and length table
// — as an independent reference for the shared-postings implementation.
func naiveBM25(sentences []string, query string, k1, b float64) []float64 {
	docTerms := make([][]string, len(sentences))
	lens := make([]float64, len(sentences))
	var total float64
	for i, s := range sentences {
		docTerms[i] = textproc.NormalizeTerms(s)
		lens[i] = float64(len(docTerms[i]))
		total += lens[i]
	}
	avg := total / float64(len(sentences))
	df := map[string]int{}
	for _, terms := range docTerms {
		seen := map[string]bool{}
		for _, t := range terms {
			if !seen[t] {
				seen[t] = true
				df[t]++
			}
		}
	}
	n := float64(len(sentences))
	qset := map[string]bool{}
	var qterms []string
	for _, t := range textproc.NormalizeTerms(query) {
		if !qset[t] && df[t] > 0 {
			qset[t] = true
			qterms = append(qterms, t)
		}
	}
	sort.Strings(qterms)
	out := make([]float64, len(sentences))
	for _, qt := range qterms {
		idf := math.Log((n-float64(df[qt])+0.5)/(float64(df[qt])+0.5) + 1)
		for d, terms := range docTerms {
			tf := 0.0
			for _, t := range terms {
				if t == qt {
					tf++
				}
			}
			if tf == 0 {
				continue
			}
			norm := k1 * (1 - b + b*lens[d]/avg)
			out[d] += idf * tf * (k1 + 1) / (tf + norm)
		}
	}
	return out
}

func TestBM25MatchesNaiveReference(t *testing.T) {
	ix := Build(diffSentences)
	bm := ix.BM25()
	for _, q := range []string{
		"shared memory bank conflicts",
		"global memory coalescing bandwidth",
		"warp divergence",
		"memory memory memory", // duplicate query terms count once
	} {
		got := bm.Scores(q)
		want := naiveBM25(diffSentences, q, bm25K1, bm25B)
		for d := range want {
			if math.Abs(got[d]-want[d]) > 1e-12 {
				t.Errorf("q=%q doc %d: shared-postings %v, naive reference %v", q, d, got[d], want[d])
			}
		}
	}
}

// TestUniversalTermBackendSplit pins the zero-weight-postings design: a term
// in every document has IDF 0 under TF-IDF (invisible to cosine) but a
// small positive Okapi IDF, so only BM25 can rank by it.
func TestUniversalTermBackendSplit(t *testing.T) {
	docs := []string{
		"memory memory tiling",
		"memory layout",
		"memory prefetch distance",
	}
	ix := Build(docs)
	if scores := ix.QueryAllTerms([]string{"memori"}); anyPositive(scores) {
		t.Errorf("VSM scored a df==N term: %v", scores)
	}
	bm := ix.BM25().ScoreTerms([]string{"memori"})
	if !anyPositive(bm) {
		t.Errorf("BM25 ignored a df==N term: %v", bm)
	}
	// doc 0 has tf=2 for the term: BM25's tf saturation must still rank it
	// at least as high as the tf=1 docs of similar length
	if bm[0] <= 0 || bm[0] < bm[1]*0.99 {
		t.Errorf("BM25 tf weighting off: %v", bm)
	}
}

func anyPositive(s []float64) bool {
	for _, v := range s {
		if v > 0 {
			return true
		}
	}
	return false
}

// TestTopKEdgeCases drives both backends' TopK through the boundary cases a
// caller can hit: non-positive k, k past the match count, and score ties.
func TestTopKEdgeCases(t *testing.T) {
	ix := Build(diffSentences)
	bm := ix.BM25()
	const q = "shared memory"
	cases := []struct {
		name string
		k    int
		want func(n int) bool // accepts the returned length
	}{
		{"k negative", -3, func(n int) bool { return n == 0 }},
		{"k zero", 0, func(n int) bool { return n == 0 }},
		{"k one", 1, func(n int) bool { return n == 1 }},
		{"k huge", 1000, func(n int) bool { return n >= 1 && n <= len(diffSentences) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ix.TopK(q, tc.k, 0); !tc.want(len(got)) {
				t.Errorf("vsm TopK(k=%d) returned %d matches", tc.k, len(got))
			}
			if got := bm.TopK(q, tc.k); !tc.want(len(got)) {
				t.Errorf("bm25 TopK(k=%d) returned %d matches", tc.k, len(got))
			}
		})
	}
	// ties break by ascending index, and results are sorted best-first
	for _, matches := range [][]Match{ix.TopK(q, 100, 0), bm.TopK(q, 100)} {
		for i := 1; i < len(matches); i++ {
			prev, cur := matches[i-1], matches[i]
			if cur.Score > prev.Score {
				t.Fatalf("not sorted: %v", matches)
			}
			if cur.Score == prev.Score && cur.Index < prev.Index {
				t.Fatalf("tie not broken by index: %v", matches)
			}
		}
	}
	// identical duplicate docs are an exact tie; order must be by index
	dup := Build([]string{"tune the block size", "tune the block size", "unrelated text"})
	m := dup.TopK("block size", 2, 0)
	if len(m) != 2 || m[0].Index != 0 || m[1].Index != 1 {
		t.Errorf("duplicate-doc tie order: %v", m)
	}
	if m[0].Score != m[1].Score {
		t.Errorf("identical docs scored differently: %v vs %v", m[0].Score, m[1].Score)
	}
}
