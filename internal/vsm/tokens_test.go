package vsm

import (
	"math/rand"
	"testing"

	"repro/internal/textproc"
)

// tokenTestSentences exercises the normalization edge cases: stopwords,
// punctuation runs, identifiers, clitics and numbers.
var tokenTestSentences = []string{
	"Avoid shared memory bank conflicts to maximize bandwidth.",
	"The number of threads per block should be a multiple of the warp size.",
	"Don't use clWaitForEvents() unless synchronization is required!",
	"Coalesced accesses -- e.g. 128-byte transactions -- reduce memory latency by 3.14x.",
	"It is recommended to overlap transfers with execution.",
	"",
	"   ",
	"cudaMemcpyAsync overlaps; cudaMemcpy does not.",
}

// TestBuildFromTokensBitExact asserts that an index built from pre-tokenized
// sentences is bit-exact with one built from the raw texts: identical
// vocabulary size, identical IDFs, and float64-identical scores for every
// document against a battery of queries. This is the guarantee that lets the
// annotate-once pipeline hand Stage I's tokens to Stage II without changing
// a single retrieval result.
func TestBuildFromTokensBitExact(t *testing.T) {
	tokens := make([][]string, len(tokenTestSentences))
	for i, s := range tokenTestSentences {
		tokens[i] = textproc.Words(s)
	}
	fromText := Build(tokenTestSentences)
	fromTokens := BuildFromTokens(tokens)
	assertIndexesBitExact(t, fromText, fromTokens)
}

// TestBuildFromTermsBitExact covers the third construction path — fully
// pre-normalized terms, as produced by nlp.Annotation.Terms.
func TestBuildFromTermsBitExact(t *testing.T) {
	terms := make([][]string, len(tokenTestSentences))
	for i, s := range tokenTestSentences {
		terms[i] = textproc.NormalizeTerms(s)
	}
	fromText := Build(tokenTestSentences)
	fromTerms := BuildFromTerms(terms)
	assertIndexesBitExact(t, fromText, fromTerms)
}

// TestBuildFromTokensBitExactRandom repeats the equivalence over larger
// random corpora so vocabulary-id assignment order is stressed too.
func TestBuildFromTokensBitExactRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sentences := randomCorpus(rng, 300)
	tokens := make([][]string, len(sentences))
	for i, s := range sentences {
		tokens[i] = textproc.Words(s)
	}
	assertIndexesBitExact(t, Build(sentences), BuildFromTokens(tokens))
}

func assertIndexesBitExact(t *testing.T, a, b *Index) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("Len: %d vs %d", a.Len(), b.Len())
	}
	if a.VocabSize() != b.VocabSize() {
		t.Fatalf("VocabSize: %d vs %d", a.VocabSize(), b.VocabSize())
	}
	for term := range a.vocab {
		if a.IDF(term) != b.IDF(term) {
			t.Fatalf("IDF(%q): %v vs %v", term, a.IDF(term), b.IDF(term))
		}
	}
	queries := []string{
		"avoid bank conflicts",
		"memory latency",
		"warp size threads per block",
		"overlap transfers with execution",
		"clWaitForEvents synchronization",
	}
	for _, q := range queries {
		sa := a.QueryAll(q)
		sb := b.QueryAll(q)
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("QueryAll(%q)[%d]: %v vs %v (must be bit-identical)", q, i, sa[i], sb[i])
			}
		}
		// the terms-fed query path must match the string path bit-exactly too
		st := a.QueryAllTerms(textproc.NormalizeTerms(q))
		for i := range sa {
			if sa[i] != st[i] {
				t.Fatalf("QueryAllTerms(%q)[%d]: %v vs %v", q, i, st[i], sa[i])
			}
		}
	}
}
