package vsm

import (
	"context"
	"errors"
	"fmt"
	"strings"
)

// Backend names understood by Index.Scorer.
const (
	// BackendVSM is the paper's Stage-II model: TF-IDF weights with cosine
	// similarity (Eqs. 1-2) and the 0.15 recommendation threshold. It is the
	// default backend everywhere a backend is selectable.
	BackendVSM = "vsm"
	// BackendBM25 is Okapi BM25 over the same postings — the lexical
	// retrieval ablation, selectable per query.
	BackendBM25 = "bm25"
)

// ErrUnknownBackend reports a backend name Index.Scorer does not know.
var ErrUnknownBackend = errors.New("vsm: unknown scoring backend")

// Scorer is a pluggable Stage-II scoring backend over the sentences of one
// Index. ScoreTermsCtx returns one score per sentence for a pre-normalized
// query term list; scores are comparable only within a single backend (a
// cosine similarity and a BM25 score live on different scales).
type Scorer interface {
	// Backend names the scoring model ("vsm", "bm25").
	Backend() string
	// ScoreTermsCtx scores every sentence for the query terms, recording a
	// child span when ctx carries a sampled trace.
	ScoreTermsCtx(ctx context.Context, terms []string) []float64
}

// Backends lists the scoring backends every Index offers, default first.
func Backends() []string { return []string{BackendVSM, BackendBM25} }

// ValidBackend reports whether name selects a known backend; the empty
// string selects the default (VSM) and is valid.
func ValidBackend(name string) bool {
	return name == "" || name == BackendVSM || name == BackendBM25
}

// Backend implements Scorer: the Index itself is the TF-IDF/cosine backend.
func (ix *Index) Backend() string { return BackendVSM }

// ScoreTermsCtx implements Scorer by delegating to QueryAllTermsCtx — the
// exact code path Query/QueryTerms already use, so scoring through the
// Scorer interface is bit-identical to the direct path (pinned by
// TestScorerVSMBitIdentical).
func (ix *Index) ScoreTermsCtx(ctx context.Context, terms []string) []float64 {
	return ix.QueryAllTermsCtx(ctx, terms)
}

// Scorer returns the named scoring backend over this index's postings. The
// empty string and "vsm" return the index itself (the paper-faithful
// default); "bm25" returns the shared-postings BM25 view. Anything else is
// ErrUnknownBackend.
func (ix *Index) Scorer(backend string) (Scorer, error) {
	switch backend {
	case "", BackendVSM:
		return ix, nil
	case BackendBM25:
		return ix.BM25(), nil
	}
	return unknownBackend(backend)
}

// unknownBackend builds the ErrUnknownBackend failure shared by every
// Retriever's Scorer method.
func unknownBackend(backend string) (Scorer, error) {
	return nil, fmt.Errorf("%w: %q (have %s)", ErrUnknownBackend, backend, strings.Join(Backends(), ", "))
}

// serialScoringKey marks a context whose Stage-II scoring must stay on the
// calling goroutine.
type serialScoringKey struct{}

// WithSerialScoring marks ctx so scoring under it runs on the calling
// goroutine instead of fanning out across GOMAXPROCS workers. A batch
// executor that is already parallel across queries uses this to avoid
// nested parallelism: P workers scoring serially beat P×GOMAXPROCS
// goroutines contending for the same cores. Scores are bit-identical to
// the parallel pass (each document's dot product is independent).
func WithSerialScoring(ctx context.Context) context.Context {
	return context.WithValue(ctx, serialScoringKey{}, true)
}

// SerialScoring reports whether ctx carries the WithSerialScoring mark.
func SerialScoring(ctx context.Context) bool {
	v, _ := ctx.Value(serialScoringKey{}).(bool)
	return v
}
