// Package vsm implements the Vector Space Model with TF-IDF weighting and
// cosine similarity used by Egeria's Stage II (knowledge recommendation),
// reproducing the paper's equations (1) and (2):
//
//	w(t,s)   = tf(t,s) * log(|S| / |{s' in S : t in s'}|)
//	sim(s,q) = (v_s . v_q) / (|v_s| |v_q|)
//
// It replaces the Gensim TF-IDF/VSM pipeline of the original implementation.
// An Index is immutable after Build and safe for concurrent queries; QueryAll
// fans the similarity computation across GOMAXPROCS goroutines for large
// sentence sets.
package vsm

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/doc"
	"repro/internal/obs"
	"repro/internal/textproc"
)

// Stage-II observability: query volume and scoring latency, reported into
// the default metrics registry (surfaced on /metricz as vsm_*).
var (
	queriesScored = obs.Default().Counter("vsm_queries_scored_total")
	scoreHist     = obs.Default().Histogram("vsm_score_micros")
)

// entry is one sparse vector component.
type entry struct {
	term   int
	weight float64
}

// posting is one inverted-index entry: a document containing a term, with
// the term's raw frequency and its normalized TF-IDF weight in that
// document. The weight drives the cosine backend; the raw frequency is what
// the BM25 backend scores from — both backends walk the same lists.
type posting struct {
	doc    int32
	tf     float32 // raw term frequency (BM25 backend)
	weight float64 // normalized TF-IDF weight (cosine backend)
}

// Index is a TF-IDF weighted vector space over a fixed sentence set.
type Index struct {
	vocab    map[string]int
	idf      []float64
	vecs     [][]entry     // L2-normalized sparse vectors, sorted by term id
	postings [][]posting   // per term id, ascending doc order
	docLens  []int32       // normalized term count per sentence (BM25 length norm)
	counted  []*termCounts // per-document term statistics, reused by Rebuild
	n        int           // number of sentences

	bm25Once sync.Once // lazily-built BM25 view over the same postings
	bm25     *BM25

	pruneOnce sync.Once // lazily-built impact-ordered pruning view (cosine)
	prune     *pruneState
}

// Match is one retrieval result.
type Match struct {
	Index int     // sentence index within the index
	Score float64 // cosine similarity to the query
}

// DefaultThreshold is the similarity threshold the paper uses to recommend a
// sentence (§3.2: 0.15).
const DefaultThreshold = 0.15

// Build constructs an index over raw sentences, normalizing each with
// textproc.NormalizeTerms (tokenize, lowercase, stop/punct removal, Porter
// stemming).
func Build(sentences []string) *Index {
	terms := make([][]string, len(sentences))
	for i, s := range sentences {
		terms[i] = textproc.NormalizeTerms(s)
	}
	return BuildFromTerms(terms)
}

// BuildFromTokens constructs an index over pre-tokenized sentences,
// normalizing each token list (stopword/punctuation removal, Porter
// stemming) without re-tokenizing. Because tokenization is deterministic,
// BuildFromTokens(Words(s)...) is bit-exact with Build(s...): identical
// vocabulary ids, IDF values and document vectors. This is the path the
// annotate-once pipeline uses — Stage I already tokenized every sentence,
// so Stage II must not pay for it again.
func BuildFromTokens(tokenLists [][]string) *Index {
	terms := make([][]string, len(tokenLists))
	for i, toks := range tokenLists {
		terms[i] = textproc.NormalizeWords(toks)
	}
	return BuildFromTerms(terms)
}

// BuildFromTerms constructs an index over pre-normalized term lists.
//
// Term ids are assigned in sorted term order, not first-appearance order.
// Because every weight accumulation (vector norms, dot products) runs in
// ascending term-id order, this makes scores a function of the document
// *set* alone: permuting the document order yields bit-identical cosine
// scores — the metamorphic property the Stage-II test suite checks.
func BuildFromTerms(termLists [][]string) *Index {
	counted := make([]*termCounts, len(termLists))
	for i, terms := range termLists {
		counted[i] = countTerms(terms)
	}
	return buildFromCounted(counted)
}

// termCounts is one document's corpus-independent term statistics: its
// unique terms in sorted order with their raw frequencies, plus the total
// term count (the BM25 length norm). Immutable after countTerms, so Rebuild
// shares it between an index and its successor for kept sentences.
type termCounts struct {
	terms  []string  // unique terms, sorted
	counts []float64 // raw frequency, aligned with terms
	total  int32     // total term occurrences including duplicates
}

// countTerms tallies a term list into its counted form.
func countTerms(terms []string) *termCounts {
	tf := make(map[string]float64, len(terms))
	for _, t := range terms {
		tf[t]++
	}
	tc := &termCounts{
		terms:  make([]string, 0, len(tf)),
		counts: make([]float64, 0, len(tf)),
		total:  int32(len(terms)),
	}
	for t := range tf {
		tc.terms = append(tc.terms, t)
	}
	sort.Strings(tc.terms)
	for _, t := range tc.terms {
		tc.counts = append(tc.counts, tf[t])
	}
	return tc
}

// buildFromCounted assembles an index from per-document counted vectors —
// the shared back half of BuildFromTerms and Rebuild. Everything global is
// computed here (document frequencies, IDF, weights, postings); everything
// per-document arrives precomputed in counted.
func buildFromCounted(counted []*termCounts) *Index {
	vocab, idf := globalStats(counted, len(counted))
	return buildWithStats(counted, vocab, idf)
}

// globalStats computes the corpus-wide retrieval statistics for a document
// set: term ids assigned in sorted term order and the IDF table
// log(n/df). n is the logical corpus size — for a sharded layout it is the
// global document count, not the size of any one partition, which is what
// keeps per-shard weights bit-identical to the monolithic index.
func globalStats(counted []*termCounts, n int) (map[string]int, []float64) {
	// document frequencies: counted terms are unique per document already
	dfByTerm := map[string]int{}
	for _, tc := range counted {
		for _, t := range tc.terms {
			dfByTerm[t]++
		}
	}
	terms := make([]string, 0, len(dfByTerm))
	for t := range dfByTerm {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	vocab := make(map[string]int, len(terms))
	idf := make([]float64, len(terms))
	for id, t := range terms {
		vocab[t] = id
		idf[id] = math.Log(float64(n) / float64(dfByTerm[t]))
	}
	return vocab, idf
}

// buildWithStats assembles an index over counted documents under an
// externally supplied vocabulary and IDF table. buildFromCounted passes the
// stats of the documents themselves (the monolithic layout); a ShardedIndex
// passes the global stats of the whole corpus so each shard's weights come
// out of the same floating-point operations in the same order as the
// monolithic build.
func buildWithStats(counted []*termCounts, vocab map[string]int, idf []float64) *Index {
	ix := &Index{
		vocab:   vocab,
		idf:     idf,
		counted: counted,
		n:       len(counted),
	}
	ix.vecs = make([][]entry, ix.n)
	ix.docLens = make([]int32, ix.n)
	full := make([][]docEntry, ix.n)
	for i, tc := range counted {
		ix.docLens[i] = tc.total
		full[i] = ix.vectorizeCounted(tc)
		vec := make([]entry, 0, len(full[i]))
		for _, e := range full[i] {
			if e.weight != 0 {
				vec = append(vec, entry{term: e.term, weight: e.weight})
			}
		}
		ix.vecs[i] = vec
	}
	ix.buildPostings(full)
	return ix
}

// docEntry is one document-vector component before the zero-weight filter:
// every in-vocabulary term of the document with its raw frequency and its
// normalized TF-IDF weight (0 for terms appearing in every document).
type docEntry struct {
	term   int
	tf     float32
	weight float64
}

// vectorizeCounted converts a counted document into the full entry list,
// keeping zero-weight (zero-IDF) terms so the postings retain their raw
// frequencies for the BM25 backend. The counted terms are sorted and vocab
// ids are assigned in sorted-term order, so the entries arrive in ascending
// term-id order without re-sorting, and the norm accumulates over the same
// weights in the same order as it always has — weights stay bit-identical.
func (ix *Index) vectorizeCounted(tc *termCounts) []docEntry {
	vec := make([]docEntry, 0, len(tc.terms))
	for i, t := range tc.terms {
		id := ix.vocab[t] // during a build every document term is in vocab
		f := tc.counts[i]
		vec = append(vec, docEntry{term: id, tf: float32(f), weight: f * ix.idf[id]})
	}
	var norm float64
	for i := range vec {
		norm += vec[i].weight * vec[i].weight
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i := range vec {
			vec[i].weight /= norm
		}
	}
	return vec
}

// AddedDoc is one new sentence handed to Rebuild: its position in the
// successor document, its normalized term list, and (for sharded layouts)
// its stable identity. The monolithic Index ignores ID; a ShardedIndex
// hashes it to keep shard assignment stable across edits.
type AddedDoc struct {
	Pos   int
	Terms []string
	ID    doc.SentenceID
}

// Rebuild constructs the successor index after a document edit: kept pairs
// map this index's sentences (Old position) to their new positions, reusing
// their per-document term statistics verbatim; added carries the term lists
// of new sentences at their new positions. Together they must tile the
// successor document exactly — every position in [0, kept+added) assigned
// once.
//
// Global statistics — document frequencies, IDF, and therefore every TF-IDF
// weight and posting — are recomputed from the merged set: IDF is
// corpus-wide, so one edit can shift every weight in the index. What Rebuild
// skips is the work that does not depend on the rest of the corpus: term
// counting here, and tokenization, stemming, and annotation upstream. The
// result is Float64bits-identical to a from-scratch BuildFromTerms over the
// successor's full term lists (see TestRebuildBitIdentical).
func (ix *Index) Rebuild(kept []doc.Kept, added []AddedDoc) (*Index, error) {
	counted, _, err := tileCounted(ix.counted, nil, kept, added)
	if err != nil {
		return nil, err
	}
	return buildFromCounted(counted), nil
}

// tileCounted validates and materializes the successor document of an edit:
// kept pairs reuse the previous counted statistics (and identity, when
// prevIDs is non-nil), added positions are counted fresh. The pairs must
// tile [0, kept+added) exactly — every position assigned once. Shared by
// Index.Rebuild and ShardedIndex.Rebuild so both enforce the same tiling
// contract with the same errors.
func tileCounted(prevCounted []*termCounts, prevIDs []doc.SentenceID, kept []doc.Kept, added []AddedDoc) ([]*termCounts, []doc.SentenceID, error) {
	n := len(kept) + len(added)
	counted := make([]*termCounts, n)
	ids := make([]doc.SentenceID, n)
	place := func(pos int, tc *termCounts) error {
		if pos < 0 || pos >= n {
			return fmt.Errorf("vsm: rebuild position %d outside [0,%d)", pos, n)
		}
		if counted[pos] != nil {
			return fmt.Errorf("vsm: rebuild position %d assigned twice", pos)
		}
		counted[pos] = tc
		return nil
	}
	for _, k := range kept {
		if k.Old < 0 || k.Old >= len(prevCounted) {
			return nil, nil, fmt.Errorf("vsm: rebuild kept old position %d outside [0,%d)", k.Old, len(prevCounted))
		}
		if err := place(k.New, prevCounted[k.Old]); err != nil {
			return nil, nil, err
		}
		if prevIDs != nil {
			ids[k.New] = prevIDs[k.Old]
		}
	}
	for _, a := range added {
		if err := place(a.Pos, countTerms(a.Terms)); err != nil {
			return nil, nil, err
		}
		ids[a.Pos] = a.ID
	}
	return counted, ids, nil
}

// buildPostings derives the shared inverted index from the full document
// vectors. Each term's posting list is in ascending document order because
// documents are visited in order. Lists include zero-weight postings for
// zero-IDF terms (terms in every document): cosine queries never walk them
// (query vectors drop zero-weight terms), but the BM25 backend needs their
// raw frequencies.
func (ix *Index) buildPostings(docs [][]docEntry) {
	counts := make([]int, len(ix.idf))
	for _, vec := range docs {
		for _, e := range vec {
			counts[e.term]++
		}
	}
	ix.postings = make([][]posting, len(ix.idf))
	for t, c := range counts {
		if c > 0 {
			ix.postings[t] = make([]posting, 0, c)
		}
	}
	for d, vec := range docs {
		for _, e := range vec {
			ix.postings[e.term] = append(ix.postings[e.term], posting{doc: int32(d), tf: e.tf, weight: e.weight})
		}
	}
}

// vectorize converts a term list into a normalized sparse TF-IDF vector.
// Terms outside the vocabulary are ignored.
func (ix *Index) vectorize(terms []string) []entry {
	return vectorizeWith(ix.vocab, ix.idf, terms)
}

// vectorizeWith is vectorize under explicit vocabulary and IDF tables — the
// shared query-side vectorizer of the monolithic Index and the ShardedIndex
// (which vectorizes once with the global tables and reuses the vector across
// every shard).
func vectorizeWith(vocab map[string]int, idf []float64, terms []string) []entry {
	tf := map[int]float64{}
	for _, t := range terms {
		if id, ok := vocab[t]; ok {
			tf[id]++
		}
	}
	vec := make([]entry, 0, len(tf))
	for id, f := range tf {
		w := f * idf[id]
		if w == 0 {
			continue
		}
		vec = append(vec, entry{term: id, weight: w})
	}
	// sort before accumulating the norm: map iteration order is random, and
	// summing in term order keeps vectorization bit-deterministic across
	// calls (identical queries must produce identical vectors and scores)
	sort.Slice(vec, func(a, b int) bool { return vec[a].term < vec[b].term })
	var norm float64
	for i := range vec {
		norm += vec[i].weight * vec[i].weight
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i := range vec {
			vec[i].weight /= norm
		}
	}
	return vec
}

// Len returns the number of sentences in the index.
func (ix *Index) Len() int { return ix.n }

// VocabSize returns the number of distinct terms.
func (ix *Index) VocabSize() int { return len(ix.vocab) }

// IDF returns the inverse document frequency of a term (0 if unknown).
func (ix *Index) IDF(term string) float64 {
	if id, ok := ix.vocab[term]; ok {
		return ix.idf[id]
	}
	return 0
}

// dot computes the dot product of two sorted sparse vectors.
func dot(a, b []entry) float64 {
	var s float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].term == b[j].term:
			s += a[i].weight * b[j].weight
			i++
			j++
		case a[i].term < b[j].term:
			i++
		default:
			j++
		}
	}
	return s
}

// QueryVector builds the normalized query vector for raw query text.
func (ix *Index) QueryVector(query string) []entry {
	return ix.vectorize(textproc.NormalizeTerms(query))
}

// Similarity returns the cosine similarity between sentence i and the query.
func (ix *Index) Similarity(i int, query string) float64 {
	if i < 0 || i >= ix.n {
		return 0
	}
	return dot(ix.vecs[i], ix.QueryVector(query))
}

// Query returns every sentence whose similarity to the query is at least
// threshold, sorted by descending score (ties by ascending index).
//
// For positive thresholds it walks the inverted index, scoring only the
// documents that share at least one term with the query; a document sharing
// no term has similarity exactly 0 and cannot clear the threshold. Scores are
// bit-identical to the dense scan: both accumulate the products of shared
// terms in ascending term order. A threshold <= 0 admits zero-score
// documents, so that case falls back to the dense scan.
func (ix *Index) Query(query string, threshold float64) []Match {
	return ix.QueryCtx(context.Background(), query, threshold)
}

// QueryCtx is Query honoring the pruning decision on ctx (default on):
// positive thresholds take the MaxScore candidate-elimination path over the
// impact-ordered postings, falling back to the exhaustive walk whenever the
// bound math cannot guarantee exactness. Pruned and exhaustive results are
// Float64bits-identical (see TestPruneDifferential).
func (ix *Index) QueryCtx(ctx context.Context, query string, threshold float64) []Match {
	qv := ix.QueryVector(query)
	if len(qv) == 0 {
		return nil
	}
	return ix.selectMatches(PruningOn(ctx), qv, threshold, 0)
}

// matchesVec is the vector-level core of Query: inverted walk for positive
// thresholds, dense scan otherwise, sorted best-first. Shared with the
// per-shard match path of ShardedIndex.
func (ix *Index) matchesVec(qv []entry, threshold float64) []Match {
	if threshold <= 0 {
		return ix.denseScan(qv, threshold)
	}
	scores, touched := ix.accumulate(qv)
	var out []Match
	for _, d := range touched {
		if s := scores[d]; s >= threshold {
			out = append(out, Match{Index: int(d), Score: s})
		}
	}
	sortMatches(out)
	return out
}

// accumulate walks the inverted index for a query vector and returns the
// per-document score accumulator plus the touched documents in first-touch
// order. Scores are bit-identical to the dense scan: both sum the products
// of shared terms in ascending term order.
func (ix *Index) accumulate(qv []entry) ([]float64, []int32) {
	scores := make([]float64, ix.n)
	seen := make([]bool, ix.n)
	touched := make([]int32, 0, 64)
	for _, q := range qv {
		for _, p := range ix.postings[q.term] {
			if !seen[p.doc] {
				seen[p.doc] = true
				touched = append(touched, p.doc)
			}
			scores[p.doc] += q.weight * p.weight
		}
	}
	return scores, touched
}

// topMatchesVec is matchesVec with bounded selection: it keeps only the k
// best matches (score desc, index asc) in a size-k heap instead of sorting
// every match, so a shard's contribution to a TopK merge costs
// O(matches·log k) rather than O(matches·log matches). The result is
// exactly the first k entries matchesVec would produce — the ordering is a
// total order, so bounded selection and sort-then-truncate agree.
func (ix *Index) topMatchesVec(qv []entry, threshold float64, k int) []Match {
	if k <= 0 {
		return nil
	}
	var scores []float64
	var touched []int32
	if threshold <= 0 {
		// zero-score documents are admissible: every document is a candidate
		scores = make([]float64, ix.n)
		for i, v := range ix.vecs {
			scores[i] = dot(v, qv)
		}
		touched = make([]int32, ix.n)
		for i := range touched {
			touched[i] = int32(i)
		}
	} else {
		scores, touched = ix.accumulate(qv)
	}
	// min-heap keyed "worst first": the root is the weakest of the k kept
	// matches and is evicted whenever a better candidate arrives
	worse := func(a, b Match) bool {
		if a.Score != b.Score {
			return a.Score < b.Score
		}
		return a.Index > b.Index
	}
	heap := make([]Match, 0, k)
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			w := i
			if l < len(heap) && worse(heap[l], heap[w]) {
				w = l
			}
			if r < len(heap) && worse(heap[r], heap[w]) {
				w = r
			}
			if w == i {
				return
			}
			heap[i], heap[w] = heap[w], heap[i]
			i = w
		}
	}
	for _, d := range touched {
		s := scores[d]
		if s < threshold {
			continue
		}
		m := Match{Index: int(d), Score: s}
		if len(heap) < k {
			heap = append(heap, m)
			for i := len(heap) - 1; i > 0; {
				p := (i - 1) / 2
				if !worse(heap[i], heap[p]) {
					break
				}
				heap[i], heap[p] = heap[p], heap[i]
				i = p
			}
			continue
		}
		if worse(m, heap[0]) {
			continue
		}
		heap[0] = m
		siftDown(0)
	}
	sortMatches(heap)
	return heap
}

// QueryDense is Query without the inverted-index fast path: it scores every
// document with a sparse dot product (ablation baseline and equivalence
// reference).
func (ix *Index) QueryDense(query string, threshold float64) []Match {
	qv := ix.QueryVector(query)
	if len(qv) == 0 {
		return nil
	}
	return ix.denseScan(qv, threshold)
}

func (ix *Index) denseScan(qv []entry, threshold float64) []Match {
	var out []Match
	for i, v := range ix.vecs {
		if s := dot(v, qv); s >= threshold {
			out = append(out, Match{Index: i, Score: s})
		}
	}
	sortMatches(out)
	return out
}

// QueryAll computes the similarity of every sentence to the query in
// parallel and returns the full score slice (one per sentence).
func (ix *Index) QueryAll(query string) []float64 {
	return ix.queryAllVec(ix.QueryVector(query))
}

// QueryAllTerms is QueryAll over a pre-normalized query term list — the
// annotation-fed path that lets a serving layer normalize a query once and
// reuse the terms for cache keying and retrieval.
func (ix *Index) QueryAllTerms(terms []string) []float64 {
	return ix.queryAllVec(ix.vectorize(terms))
}

// QueryAllTermsCtx is QueryAllTerms under a trace: when the context carries
// a sampled span, the scoring pass is recorded as a "vsm.score" child span
// with the query and index sizes as attributes. A context marked with
// WithSerialScoring keeps the whole pass on the calling goroutine (scores
// are bit-identical either way; see TestSerialScoringBitIdentical).
func (ix *Index) QueryAllTermsCtx(ctx context.Context, terms []string) []float64 {
	serial := SerialScoring(ctx)
	if parent := obs.SpanFrom(ctx); parent != nil {
		span := parent.StartChild("vsm.score")
		span.SetAttrInt("query_terms", len(terms))
		span.SetAttrInt("docs", ix.n)
		if serial {
			span.SetAttr("mode", "serial")
		}
		defer span.Finish()
	}
	if serial {
		return ix.serialScanVec(ix.vectorize(terms))
	}
	return ix.QueryAllTerms(terms)
}

// serialScanVec scores every document on the calling goroutine — the
// batch-executor path, where parallelism lives across queries rather than
// inside one.
func (ix *Index) serialScanVec(qv []entry) []float64 {
	start := time.Now()
	defer func() {
		scoreHist.ObserveDuration(time.Since(start))
		queriesScored.Inc()
	}()
	scores := make([]float64, ix.n)
	if len(qv) == 0 {
		return scores
	}
	for i, v := range ix.vecs {
		scores[i] = dot(v, qv)
	}
	return scores
}

func (ix *Index) queryAllVec(qv []entry) []float64 {
	start := time.Now()
	defer func() {
		scoreHist.ObserveDuration(time.Since(start))
		queriesScored.Inc()
	}()
	scores := make([]float64, ix.n)
	if len(qv) == 0 {
		return scores
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > ix.n {
		workers = ix.n
	}
	if workers <= 1 {
		for i, v := range ix.vecs {
			scores[i] = dot(v, qv)
		}
		return scores
	}
	var wg sync.WaitGroup
	chunk := (ix.n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > ix.n {
			hi = ix.n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				scores[i] = dot(ix.vecs[i], qv)
			}
		}(lo, hi)
	}
	wg.Wait()
	return scores
}

// QuerySerial is QueryAll restricted to one goroutine (ablation baseline).
func (ix *Index) QuerySerial(query string) []float64 {
	qv := ix.QueryVector(query)
	scores := make([]float64, ix.n)
	if len(qv) == 0 {
		return scores
	}
	for i, v := range ix.vecs {
		scores[i] = dot(v, qv)
	}
	return scores
}

// TopK returns the k best matches at or above threshold (nothing for
// k <= 0). Ties at the threshold boundary are kept — the cut happens on
// count, not on score — and ties within the list resolve by ascending
// sentence index, so the kept prefix is deterministic.
func (ix *Index) TopK(query string, k int, threshold float64) []Match {
	return ix.TopKCtx(context.Background(), query, k, threshold)
}

// TopKCtx is TopK honoring the pruning decision on ctx (default on). The
// pruned path bounds selection to a size-k heap fed by MaxScore candidate
// elimination; the result is exactly Query truncated to k — the match
// ordering is a total order, so bounded selection and sort-then-truncate
// agree, and pruning is Float64bits-identical to exhaustive scoring.
func (ix *Index) TopKCtx(ctx context.Context, query string, k int, threshold float64) []Match {
	if k <= 0 {
		return nil
	}
	qv := ix.QueryVector(query)
	if len(qv) == 0 {
		return nil
	}
	return ix.selectMatches(PruningOn(ctx), qv, threshold, k)
}

// MatchesTermsCtx returns every sentence scoring at or above threshold
// against pre-normalized query terms, best first — the serving-path form of
// Query. It honors tracing, pruning, and (via the exhaustive fallback's
// scan) the same score semantics as filtering QueryAllTerms: a threshold at
// or below zero admits zero-score sentences, so every sentence is returned.
func (ix *Index) MatchesTermsCtx(ctx context.Context, terms []string, threshold float64) []Match {
	prune := PruningOn(ctx)
	if parent := obs.SpanFrom(ctx); parent != nil {
		span := parent.StartChild("vsm.score")
		span.SetAttrInt("query_terms", len(terms))
		span.SetAttrInt("docs", ix.n)
		span.SetAttr("vsm.prune", pruneAttrVal(prune))
		defer span.Finish()
	}
	start := time.Now()
	defer func() {
		scoreHist.ObserveDuration(time.Since(start))
		queriesScored.Inc()
	}()
	return ix.selectMatches(prune, ix.vectorize(terms), threshold, 0)
}

// pruneAttrVal renders a pruning decision as the vsm.prune span attribute.
func pruneAttrVal(on bool) string {
	if on {
		return "on"
	}
	return "off"
}

func sortMatches(m []Match) {
	sort.Slice(m, func(a, b int) bool {
		if m[a].Score != m[b].Score {
			return m[a].Score > m[b].Score
		}
		return m[a].Index < m[b].Index
	})
}

// Cosine computes the cosine similarity of two raw texts under this index's
// TF-IDF weights (utility for tests and diagnostics).
func (ix *Index) Cosine(a, b string) float64 {
	return dot(ix.vectorize(textproc.NormalizeTerms(a)), ix.vectorize(textproc.NormalizeTerms(b)))
}

// Retriever is the retrieval surface core.Advisor programs against: either a
// monolithic Index (ShardCount 1) or a ShardedIndex. Both produce
// Float64bits-identical scores for the same corpus — the sharded layout is a
// performance topology, not a semantic one.
type Retriever interface {
	// Len returns the number of sentences indexed.
	Len() int
	// ShardCount reports the partition count (1 for a monolithic Index).
	ShardCount() int
	// QueryAll scores every sentence against raw query text.
	QueryAll(query string) []float64
	// QueryAllTermsCtx scores every sentence against pre-normalized terms,
	// honoring tracing and serial-scoring hints on the context.
	QueryAllTermsCtx(ctx context.Context, terms []string) []float64
	// MatchesTermsCtx returns every sentence scoring at or above threshold
	// against pre-normalized terms, best first (score desc, index asc),
	// honoring tracing and the pruning decision on the context. Results are
	// Float64bits-identical to filtering QueryAllTermsCtx's scores.
	MatchesTermsCtx(ctx context.Context, terms []string, threshold float64) []Match
	// Scorer returns the named scoring backend over this retriever.
	Scorer(backend string) (Scorer, error)
	// RebuildRetriever builds the successor retriever after a document edit,
	// preserving the layout (shard count, and for sharded layouts each kept
	// sentence's shard assignment via its stable identity).
	RebuildRetriever(kept []doc.Kept, added []AddedDoc) (Retriever, error)
}

// ShardCount reports 1: a monolithic Index is a single partition.
func (ix *Index) ShardCount() int { return 1 }

// RebuildRetriever is Rebuild under the Retriever interface.
func (ix *Index) RebuildRetriever(kept []doc.Kept, added []AddedDoc) (Retriever, error) {
	return ix.Rebuild(kept, added)
}
