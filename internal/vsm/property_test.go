package vsm

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// Metamorphic properties of Stage-II retrieval, each checked over 100
// randomized rounds with fixed seeds. These pin behaviours the rest of the
// system depends on: score determinism under document reordering (cache
// correctness), robustness to irrelevant corpus growth, and the threshold
// semantics of the paper's 0.15 recommendation cut (§3.2).

const propertyRounds = 100

// propVocab is a pool of already-normalized terms (no stopwords, stable
// under stemming is not required since BuildFromTerms skips normalization).
var propVocab = []string{
	"gpu", "kernel", "memori", "coalesc", "warp", "occup", "bandwidth",
	"latenc", "thread", "block", "cach", "regist", "share", "global",
	"branch", "diverg", "stride", "prefetch", "vector", "align",
}

func randPropTerms(rng *rand.Rand, minLen, maxLen int, pool []string) []string {
	n := minLen + rng.Intn(maxLen-minLen+1)
	out := make([]string, n)
	for i := range out {
		out[i] = pool[rng.Intn(len(pool))]
	}
	return out
}

// TestPropertyPermutationInvariance: permuting the document order yields
// bit-identical cosine scores for every document. This is what makes cached
// answers stable across index rebuilds that only reorder sentences — term
// ids are assigned in sorted vocabulary order, so float summation order is
// a function of the document set alone.
func TestPropertyPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < propertyRounds; round++ {
		nDocs := 2 + rng.Intn(40)
		docs := make([][]string, nDocs)
		for i := range docs {
			docs[i] = randPropTerms(rng, 1, 12, propVocab)
		}
		query := randPropTerms(rng, 1, 6, propVocab)

		scores := BuildFromTerms(docs).QueryAllTerms(query)

		perm := rng.Perm(nDocs)
		permuted := make([][]string, nDocs)
		for newPos, oldPos := range perm {
			permuted[newPos] = docs[oldPos]
		}
		permScores := BuildFromTerms(permuted).QueryAllTerms(query)

		for newPos, oldPos := range perm {
			if math.Float64bits(permScores[newPos]) != math.Float64bits(scores[oldPos]) {
				t.Fatalf("round %d: doc %d scored %v originally, %v after permutation (not bit-identical)",
					round, oldPos, scores[oldPos], permScores[newPos])
			}
		}
	}
}

// TestPropertyDuplicateNonMatchingDoc: duplicating a document that shares no
// term with the query (a) gives the copy similarity exactly 0 — it can never
// enter the answer set — and (b) leaves the identity of the top answer
// unchanged whenever the original top-1/top-2 margin exceeds the IDF
// perturbation the extra document introduces (~log((n+1)/n)).
func TestPropertyDuplicateNonMatchingDoc(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	effective := 0
	for round := 0; round < propertyRounds; round++ {
		// split the vocabulary: query terms come from the front half, the
		// non-matching document only from the back half, guaranteeing
		// disjointness
		qPool := propVocab[:len(propVocab)/2]
		dPool := propVocab[len(propVocab)/2:]

		nDocs := 3 + rng.Intn(30)
		docs := make([][]string, nDocs)
		docs[0] = randPropTerms(rng, 2, 8, dPool) // the non-matching doc
		for i := 1; i < nDocs; i++ {
			docs[i] = randPropTerms(rng, 1, 12, propVocab)
		}
		query := randPropTerms(rng, 1, 6, qPool)

		scores := BuildFromTerms(docs).QueryAllTerms(query)
		top, second := -1, -1
		for i, s := range scores {
			switch {
			case top < 0 || s > scores[top]:
				top, second = i, top
			case second < 0 || s > scores[second]:
				second = i
			}
		}
		if top < 0 || scores[top] == 0 {
			continue // query matched nothing; no top answer to preserve
		}

		dup := append(append([][]string{}, docs...), docs[0])
		dupScores := BuildFromTerms(dup).QueryAllTerms(query)
		if got := dupScores[nDocs]; got != 0 {
			t.Fatalf("round %d: duplicated non-matching doc scored %v, want exactly 0", round, got)
		}

		// perturbation bound: duplicating shifts every IDF by at most
		// log((n+1)/n) plus the df change of the duplicated doc's own terms;
		// only margins comfortably above that are expected to be stable
		margin := scores[top]
		if second >= 0 {
			margin = scores[top] - scores[second]
		}
		if margin < 0.05 {
			continue
		}
		effective++
		dupTop := 0
		for i := 0; i < nDocs; i++ { // the copy is excluded: it scored 0
			if dupScores[i] > dupScores[dupTop] {
				dupTop = i
			}
		}
		if dupTop != top {
			t.Fatalf("round %d: top answer moved from doc %d (%.4f) to doc %d (%.4f) after duplicating a non-matching doc",
				round, top, scores[top], dupTop, dupScores[dupTop])
		}
	}
	if effective < propertyRounds/4 {
		t.Fatalf("only %d/%d rounds had a decisive top answer; generator too weak", effective, propertyRounds)
	}
}

// TestPropertyThresholdMonotone: Query(q, θ) returns exactly the documents
// with score ≥ θ, sorted by descending score; raising θ can only shrink the
// answer set (monotone filtering); and the inverted-index path agrees with
// the dense scan bit-for-bit. Checked at the paper's 0.15 threshold and at
// random positive thresholds.
func TestPropertyThresholdMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < propertyRounds; round++ {
		nDocs := 2 + rng.Intn(40)
		sentences := make([]string, nDocs)
		for i := range sentences {
			sentences[i] = strings.Join(randPropTerms(rng, 1, 12, propVocab), " ")
		}
		q := strings.Join(randPropTerms(rng, 1, 6, propVocab), " ")
		ix := Build(sentences)
		scores := ix.QueryAll(q)

		thresholds := []float64{DefaultThreshold, 0.01 + 0.5*rng.Float64()}
		var prevSet map[int]bool
		// iterate thresholds in ascending order so the subset check applies
		if thresholds[1] < thresholds[0] {
			thresholds[0], thresholds[1] = thresholds[1], thresholds[0]
		}
		for _, th := range thresholds {
			got := ix.Query(q, th)
			gotSet := map[int]bool{}
			for i, m := range got {
				gotSet[m.Index] = true
				if math.Float64bits(m.Score) != math.Float64bits(scores[m.Index]) {
					t.Fatalf("round %d θ=%v: match %d score %v != QueryAll score %v",
						round, th, m.Index, m.Score, scores[m.Index])
				}
				if m.Score < th {
					t.Fatalf("round %d θ=%v: returned score %v below threshold", round, th, m.Score)
				}
				if i > 0 && got[i-1].Score < m.Score {
					t.Fatalf("round %d θ=%v: results not sorted by descending score", round, th)
				}
			}
			for i, s := range scores {
				if s >= th && !gotSet[i] {
					t.Fatalf("round %d θ=%v: doc %d (score %v) missing from results", round, th, i, s)
				}
			}
			if !matchesEqual(got, ix.QueryDense(q, th)) {
				t.Fatalf("round %d θ=%v: inverted-index and dense results differ", round, th)
			}
			// monotone: the higher-threshold set is a subset of the lower one
			if prevSet != nil {
				for idx := range gotSet {
					if !prevSet[idx] {
						t.Fatalf("round %d: doc %d appears at θ=%v but not at the lower threshold", round, idx, th)
					}
				}
			}
			prevSet = gotSet
		}
	}
}
