package vsm

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/doc"
	"repro/internal/obs"
)

// Both index layouts satisfy the Retriever contract the advisor builds on.
var (
	_ Retriever = (*Index)(nil)
	_ Retriever = (*ShardedIndex)(nil)
)

func TestShardOf(t *testing.T) {
	// identity-keyed assignment is a pure function of (id, nShards)
	for _, id := range []doc.SentenceID{"a", "b", "sent-000001", "x/y#3"} {
		for _, n := range []int{1, 2, 3, 8} {
			got := shardOf(id, 99, n)
			if got < 0 || got >= n {
				t.Fatalf("shardOf(%q, 99, %d) = %d out of range", id, n, got)
			}
			if again := shardOf(id, 0, n); again != got {
				t.Fatalf("shardOf(%q) depends on ordinal: %d vs %d", id, got, again)
			}
		}
	}
	// a missing identity falls back to round-robin on the ordinal
	for ord := 0; ord < 10; ord++ {
		if got := shardOf("", ord, 4); got != ord%4 {
			t.Fatalf("shardOf(\"\", %d, 4) = %d, want %d", ord, got, ord%4)
		}
	}
	// single shard short-circuits
	if got := shardOf("anything", 7, 1); got != 0 {
		t.Fatalf("shardOf with 1 shard = %d, want 0", got)
	}
}

func TestShardSizesSumToLen(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	gen := 0
	termLists := randomTermLists(rng, 37)
	sh := BuildShardedFromTerms(termLists, idsFor(len(termLists), &gen), 5)
	sizes := sh.ShardSizes()
	if len(sizes) != 5 {
		t.Fatalf("ShardSizes len = %d, want 5", len(sizes))
	}
	sum := 0
	for _, s := range sizes {
		sum += s
	}
	if sum != sh.Len() || sh.Len() != 37 {
		t.Fatalf("sizes sum %d, Len %d, want 37", sum, sh.Len())
	}
	if sh.ShardCount() != 5 {
		t.Fatalf("ShardCount = %d, want 5", sh.ShardCount())
	}
}

func TestBuildShardedNilIDsFallsBack(t *testing.T) {
	// nil or misaligned ids must not panic: every doc lands via round-robin
	lists := [][]string{{"a"}, {"b"}, {"c"}, {"d"}}
	sh := BuildShardedFromTerms(lists, nil, 2)
	if sh.Len() != 4 {
		t.Fatalf("Len = %d, want 4", sh.Len())
	}
	sizes := sh.ShardSizes()
	if sizes[0] != 2 || sizes[1] != 2 {
		t.Fatalf("round-robin sizes = %v, want [2 2]", sizes)
	}
}

func TestMergeMatchesEdges(t *testing.T) {
	m := func(idx int, score float64) Match { return Match{Index: idx, Score: score} }
	cases := []struct {
		name  string
		lists [][]Match
		k     int
		want  []Match
	}{
		{"empty", nil, 0, nil},
		{"all empty lists", [][]Match{nil, {}, nil}, 0, nil},
		{"single list passthrough", [][]Match{{m(0, 0.9), m(2, 0.5)}}, 0, []Match{m(0, 0.9), m(2, 0.5)}},
		{"interleave", [][]Match{{m(1, 0.8), m(3, 0.2)}, {m(0, 0.9), m(2, 0.5)}}, 0,
			[]Match{m(0, 0.9), m(1, 0.8), m(2, 0.5), m(3, 0.2)}},
		{"tie resolves by index", [][]Match{{m(5, 0.7)}, {m(2, 0.7)}}, 0,
			[]Match{m(2, 0.7), m(5, 0.7)}},
		{"k truncates", [][]Match{{m(1, 0.8)}, {m(0, 0.9), m(2, 0.5)}}, 2,
			[]Match{m(0, 0.9), m(1, 0.8)}},
		{"k larger than total", [][]Match{{m(1, 0.8)}}, 10, []Match{m(1, 0.8)}},
	}
	for _, tc := range cases {
		got := mergeMatches(tc.lists, tc.k)
		if len(got) != len(tc.want) {
			t.Fatalf("%s: %d matches, want %d", tc.name, len(got), len(tc.want))
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Fatalf("%s: match %d = %+v, want %+v", tc.name, i, got[i], tc.want[i])
			}
		}
	}
}

func TestTopMatchesVecEqualsSortTruncate(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for round := 0; round < 30; round++ {
		ix := BuildFromTerms(randomTermLists(rng, 5+rng.Intn(30)))
		q := diffQueries[round%len(diffQueries)]
		qv := ix.QueryVector(q)
		for _, threshold := range []float64{0, 0.01, DefaultThreshold} {
			full := ix.matchesVec(qv, threshold)
			for _, k := range []int{1, 2, 5, 100} {
				want := full
				if k < len(want) {
					want = want[:k]
				}
				got := ix.topMatchesVec(qv, threshold, k)
				if len(got) != len(want) {
					t.Fatalf("round %d k=%d th=%v: %d matches, want %d", round, k, threshold, len(got), len(want))
				}
				for i := range want {
					if got[i].Index != want[i].Index || math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
						t.Fatalf("round %d k=%d th=%v match %d: %+v vs %+v", round, k, threshold, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestShardedQueryEmptyAndUnknownTerms(t *testing.T) {
	gen := 0
	lists := [][]string{{"alpha", "beta"}, {"gamma"}}
	sh := BuildShardedFromTerms(lists, idsFor(2, &gen), 2)
	if got := sh.Query("", DefaultThreshold); got != nil {
		t.Fatalf("empty query: %v, want nil", got)
	}
	if got := sh.TopK("zzz", 5, DefaultThreshold); got != nil {
		t.Fatalf("out-of-vocab TopK: %v, want nil", got)
	}
	scores := sh.QueryAll("zzz")
	for i, s := range scores {
		if s != 0 {
			t.Fatalf("out-of-vocab score[%d] = %v, want 0", i, s)
		}
	}
}

func TestShardedScorerBackends(t *testing.T) {
	gen := 0
	sh := BuildShardedFromTerms([][]string{{"a"}, {"b"}}, idsFor(2, &gen), 2)
	vs, err := sh.Scorer(BackendVSM)
	if err != nil || vs.Backend() != BackendVSM {
		t.Fatalf("vsm scorer: %v backend %q", err, vs.Backend())
	}
	bm, err := sh.Scorer(BackendBM25)
	if err != nil || bm.Backend() != BackendBM25 {
		t.Fatalf("bm25 scorer: %v backend %q", err, bm.Backend())
	}
	if _, err := sh.Scorer("tfidf2"); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("unknown backend error = %v, want ErrUnknownBackend", err)
	}
}

func TestShardOutcomeNilSafe(t *testing.T) {
	var o *ShardOutcome
	if o.Total() != 0 || o.Failed() != 0 || o.Err() != nil {
		t.Fatal("nil ShardOutcome accessors must be zero-valued")
	}
	// a context without an outcome or fault yields nil hooks
	ctx := t.Context()
	if shardOutcomeFrom(ctx) != nil {
		t.Fatal("shardOutcomeFrom on bare context should be nil")
	}
	if shardFaultFrom(ctx) != nil {
		t.Fatal("shardFaultFrom on bare context should be nil")
	}
}

func TestShardFaultPartialAndTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	gen := 0
	termLists := randomTermLists(rng, 24)
	sh := BuildShardedFromTerms(termLists, idsFor(len(termLists), &gen), 4)
	terms := []string{"term03", "term17", "common"}
	healthy := sh.QueryAllTerms(terms)

	// fail exactly the first shard execution; serial scoring makes that
	// deterministically shard 0
	boom := errors.New("boom")
	var mu sync.Mutex
	calls := 0
	ctx := WithSerialScoring(t.Context())
	ctx, outcome := WithShardOutcome(ctx)
	ctx = WithShardFault(ctx, func() error {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if calls == 1 {
			return boom
		}
		return nil
	})
	partial := sh.QueryAllTermsCtx(ctx, terms)
	if outcome.Total() != 4 || outcome.Failed() != 1 {
		t.Fatalf("outcome total %d failed %d, want 4 and 1", outcome.Total(), outcome.Failed())
	}
	if !errors.Is(outcome.Err(), boom) {
		t.Fatalf("outcome err = %v, want boom", outcome.Err())
	}
	// failed shard's docs score zero; every other doc is bit-identical
	zeroed := map[int32]bool{}
	for _, g := range sh.docs[0] {
		zeroed[g] = true
	}
	for i := range healthy {
		if zeroed[int32(i)] {
			if partial[i] != 0 {
				t.Fatalf("failed-shard doc %d scored %v, want 0", i, partial[i])
			}
		} else if math.Float64bits(partial[i]) != math.Float64bits(healthy[i]) {
			t.Fatalf("healthy doc %d: %x vs %x", i, partial[i], healthy[i])
		}
	}

	// all shards failing is still a scored-zero slice, never a panic
	actx, all := WithShardOutcome(WithSerialScoring(t.Context()))
	actx = WithShardFault(actx, func() error { return boom })
	dead := sh.QueryAllTermsCtx(actx, terms)
	if all.Failed() != all.Total() || all.Total() != 4 {
		t.Fatalf("all-fail outcome: failed %d total %d", all.Failed(), all.Total())
	}
	for i, s := range dead {
		if s != 0 {
			t.Fatalf("all-fail score[%d] = %v, want 0", i, s)
		}
	}

	// faults also gate the BM25 fan-out
	bctx, bo := WithShardOutcome(WithSerialScoring(t.Context()))
	bctx = WithShardFault(bctx, func() error { return boom })
	bdead := sh.BM25().ScoreTermsCtx(bctx, terms)
	if bo.Failed() != 4 {
		t.Fatalf("bm25 all-fail: failed %d, want 4", bo.Failed())
	}
	for i, s := range bdead {
		if s != 0 {
			t.Fatalf("bm25 all-fail score[%d] = %v, want 0", i, s)
		}
	}
}

func TestShardedRebuildRetrieverKeepsLayout(t *testing.T) {
	gen := 0
	lists := [][]string{{"a"}, {"b"}, {"c"}}
	ids := idsFor(3, &gen)
	var r Retriever = BuildShardedFromTerms(lists, ids, 3)
	next, err := r.RebuildRetriever(
		[]doc.Kept{{Old: 0, New: 0}, {Old: 2, New: 1}},
		[]AddedDoc{{Pos: 2, Terms: []string{"d"}, ID: doc.SentenceID(fmt.Sprintf("sent-%06d", gen))}})
	if err != nil {
		t.Fatal(err)
	}
	if next.ShardCount() != 3 || next.Len() != 3 {
		t.Fatalf("ShardCount %d Len %d, want 3 and 3", next.ShardCount(), next.Len())
	}
}

func TestShardedAccessorsAndTracedPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	gen := 0
	termLists := randomTermLists(rng, 20)
	sh := BuildShardedFromTerms(termLists, idsFor(len(termLists), &gen), 3)
	mono := BuildFromTerms(termLists)

	if sh.VocabSize() != mono.VocabSize() {
		t.Fatalf("VocabSize %d vs %d", sh.VocabSize(), mono.VocabSize())
	}
	if got, want := sh.IDF("common"), mono.IDF("common"); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("IDF(common) %x vs %x", got, want)
	}
	if sh.IDF("nosuchterm") != 0 {
		t.Fatal("IDF of unknown term must be 0")
	}
	if !ValidBackend(BackendBM25) || ValidBackend("nope") {
		t.Fatal("ValidBackend broken")
	}
	if mono.BM25().Backend() != BackendBM25 {
		t.Fatal("monolithic BM25 backend name")
	}

	// the monolithic index is a Retriever too: single shard, Rebuild adapter
	var r Retriever = mono
	if r.ShardCount() != 1 {
		t.Fatalf("monolithic ShardCount = %d", r.ShardCount())
	}
	if _, err := r.RebuildRetriever(nil, []AddedDoc{{Pos: 0, Terms: []string{"x"}}}); err != nil {
		t.Fatal(err)
	}

	// WithShardFault with a nil draw is a no-op context
	ctx := t.Context()
	if WithShardFault(ctx, nil) != ctx {
		t.Fatal("nil draw must return the context unchanged")
	}

	// traced scoring: both backends, sharded and monolithic, under a real
	// recorded span — covers the StartChild branches
	tracer := obs.NewTracer(1.0, obs.NewTraceStore(obs.DefaultTraceCapacity))
	terms := []string{"term03", "term17", "common"}
	sctx, root := tracer.Start(t.Context(), "test.query")
	for _, ix := range []Retriever{sh, mono} {
		for _, backend := range Backends() {
			sc, err := ix.Scorer(backend)
			if err != nil {
				t.Fatal(err)
			}
			got := sc.ScoreTermsCtx(sctx, terms)
			want := mustScorer(t, mono, backend).ScoreTermsCtx(context.Background(), terms)
			sameScores(t, "traced "+backend, got, want)
		}
	}
	root.Finish()
}

func mustScorer(t *testing.T, ix Retriever, backend string) Scorer {
	t.Helper()
	sc, err := ix.Scorer(backend)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestShardedParallelFanOut forces the multi-worker pool (GOMAXPROCS is 1
// on the CI container, which would otherwise keep the fan-out serial) and
// checks the parallel scatter is bit-identical to the serial one.
func TestShardedParallelFanOut(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	rng := rand.New(rand.NewSource(79))
	gen := 0
	termLists := randomTermLists(rng, 60)
	sh := BuildShardedFromTerms(termLists, idsFor(len(termLists), &gen), 4)
	terms := []string{"term03", "term17", "common", "term29"}
	ser := sh.QueryAllTermsCtx(WithSerialScoring(t.Context()), terms)
	par := sh.QueryAllTerms(terms)
	sameScores(t, "parallel fan-out", par, ser)
	bser := sh.BM25().ScoreTermsCtx(WithSerialScoring(t.Context()), terms)
	bpar := sh.BM25().ScoreTerms(terms)
	sameScores(t, "parallel bm25 fan-out", bpar, bser)

	// partial failure under the parallel pool: exactly one shard's draw
	// fails; the failed-shard docs are zero and the rest bit-identical
	boom := errors.New("boom")
	var mu sync.Mutex
	calls := 0
	ctx, outcome := WithShardOutcome(t.Context())
	ctx = WithShardFault(ctx, func() error {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if calls == 1 {
			return boom
		}
		return nil
	})
	partial := sh.QueryAllTermsCtx(ctx, terms)
	if outcome.Failed() != 1 || outcome.Total() != 4 {
		t.Fatalf("outcome failed %d total %d, want 1 and 4", outcome.Failed(), outcome.Total())
	}
	mismatched := map[int]bool{}
	for i := range ser {
		if math.Float64bits(partial[i]) != math.Float64bits(ser[i]) {
			if partial[i] != 0 {
				t.Fatalf("doc %d diverged to nonzero %v", i, partial[i])
			}
			mismatched[i] = true
		}
	}
	// every mismatch must belong to a single shard's document set
	for shd := range sh.docs {
		inShard := 0
		for _, g := range sh.docs[shd] {
			if mismatched[int(g)] {
				inShard++
			}
		}
		if inShard > 0 && inShard != len(mismatched) {
			t.Fatalf("zeroed docs span shards: %d of %d in shard %d", inShard, len(mismatched), shd)
		}
	}
}
