package vsm

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/doc"
)

// randomTermLists generates documents over a small shared vocabulary so that
// document frequencies, zero-IDF terms, and repeated terms all occur.
func randomTermLists(rng *rand.Rand, n int) [][]string {
	vocab := make([]string, 30)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("term%02d", i)
	}
	lists := make([][]string, n)
	for i := range lists {
		m := 1 + rng.Intn(12)
		terms := make([]string, m)
		for j := range terms {
			terms[j] = vocab[rng.Intn(len(vocab))]
		}
		// "common" appears in every document → IDF 0 → zero-weight entries
		lists[i] = append(terms, "common")
	}
	return lists
}

// randomEdit derives a successor document from termLists: each old document
// is kept (possibly at a shifted position) or dropped, and new documents are
// spliced in. Returns the successor's full term lists plus the kept pairs
// and added docs that describe it for Rebuild.
func randomEdit(rng *rand.Rand, termLists [][]string) ([][]string, []doc.Kept, []AddedDoc) {
	var next [][]string
	var kept []doc.Kept
	var added []AddedDoc
	addNew := func() {
		m := 1 + rng.Intn(8)
		terms := make([]string, m)
		for j := range terms {
			terms[j] = fmt.Sprintf("term%02d", rng.Intn(35)) // may extend the vocab
		}
		added = append(added, AddedDoc{Pos: len(next), Terms: terms})
		next = append(next, terms)
	}
	for i, terms := range termLists {
		for rng.Intn(4) == 0 {
			addNew()
		}
		if rng.Intn(5) == 0 {
			continue // removed
		}
		kept = append(kept, doc.Kept{Old: i, New: len(next)})
		next = append(next, terms)
	}
	for rng.Intn(3) == 0 {
		addNew()
	}
	return next, kept, added
}

func sameIndex(t *testing.T, got, want *Index) {
	t.Helper()
	if got.n != want.n {
		t.Fatalf("n: %d vs %d", got.n, want.n)
	}
	if len(got.vocab) != len(want.vocab) {
		t.Fatalf("vocab size: %d vs %d", len(got.vocab), len(want.vocab))
	}
	for term, id := range want.vocab {
		if got.vocab[term] != id {
			t.Fatalf("vocab[%q]: %d vs %d", term, got.vocab[term], id)
		}
	}
	for id := range want.idf {
		if math.Float64bits(got.idf[id]) != math.Float64bits(want.idf[id]) {
			t.Fatalf("idf[%d]: %x vs %x", id, got.idf[id], want.idf[id])
		}
	}
	for i := range want.vecs {
		if len(got.vecs[i]) != len(want.vecs[i]) {
			t.Fatalf("vecs[%d] len: %d vs %d", i, len(got.vecs[i]), len(want.vecs[i]))
		}
		for j := range want.vecs[i] {
			g, w := got.vecs[i][j], want.vecs[i][j]
			if g.term != w.term || math.Float64bits(g.weight) != math.Float64bits(w.weight) {
				t.Fatalf("vecs[%d][%d]: %+v vs %+v", i, j, g, w)
			}
		}
	}
	for i := range want.docLens {
		if got.docLens[i] != want.docLens[i] {
			t.Fatalf("docLens[%d]: %d vs %d", i, got.docLens[i], want.docLens[i])
		}
	}
	for id := range want.postings {
		if len(got.postings[id]) != len(want.postings[id]) {
			t.Fatalf("postings[%d] len: %d vs %d", id, len(got.postings[id]), len(want.postings[id]))
		}
		for j := range want.postings[id] {
			g, w := got.postings[id][j], want.postings[id][j]
			if g != w {
				t.Fatalf("postings[%d][%d]: %+v vs %+v", id, j, g, w)
			}
		}
	}
}

// TestRebuildBitIdentical is the incremental≡full oracle at the index layer:
// for random corpora and random edits, Rebuild over (kept, added) must equal
// a from-scratch BuildFromTerms of the successor's full term lists — every
// IDF, vector weight, posting, and query score Float64bits-identical.
func TestRebuildBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	queries := []string{
		"term03 term17 common", "term00", "common term29 term29", "term34 term05",
	}
	for round := 0; round < 60; round++ {
		termLists := randomTermLists(rng, 3+rng.Intn(40))
		ix := BuildFromTerms(termLists)
		next, kept, added := randomEdit(rng, termLists)

		got, err := ix.Rebuild(kept, added)
		if err != nil {
			t.Fatalf("round %d: Rebuild: %v", round, err)
		}
		want := BuildFromTerms(next)
		sameIndex(t, got, want)

		for _, q := range queries {
			gs, ws := got.QueryAll(q), want.QueryAll(q)
			for i := range ws {
				if math.Float64bits(gs[i]) != math.Float64bits(ws[i]) {
					t.Fatalf("round %d: query %q doc %d: %x vs %x", round, q, i, gs[i], ws[i])
				}
			}
			gb, wb := got.BM25().Scores(q), want.BM25().Scores(q)
			for i := range wb {
				if math.Float64bits(gb[i]) != math.Float64bits(wb[i]) {
					t.Fatalf("round %d: bm25 %q doc %d: %x vs %x", round, q, i, gb[i], wb[i])
				}
			}
		}
	}
}

// TestRebuildChained checks that Rebuild composes: an index produced by
// Rebuild can itself be rebuilt, and the chain stays bit-identical to
// rebuilding from scratch at every step.
func TestRebuildChained(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	termLists := randomTermLists(rng, 20)
	ix := BuildFromTerms(termLists)
	for step := 0; step < 10; step++ {
		next, kept, added := randomEdit(rng, termLists)
		got, err := ix.Rebuild(kept, added)
		if err != nil {
			t.Fatalf("step %d: Rebuild: %v", step, err)
		}
		sameIndex(t, got, BuildFromTerms(next))
		ix, termLists = got, next
	}
}

func TestRebuildValidation(t *testing.T) {
	ix := BuildFromTerms([][]string{{"a"}, {"b"}})
	cases := []struct {
		name  string
		kept  []doc.Kept
		added []AddedDoc
	}{
		{"gap", []doc.Kept{{Old: 0, New: 0}}, []AddedDoc{{Pos: 2, Terms: []string{"c"}}}},
		{"double", []doc.Kept{{Old: 0, New: 0}, {Old: 1, New: 0}}, nil},
		{"old out of range", []doc.Kept{{Old: 5, New: 0}}, nil},
		{"new negative", []doc.Kept{{Old: 0, New: -1}}, nil},
		{"added collides", []doc.Kept{{Old: 0, New: 0}}, []AddedDoc{{Pos: 0, Terms: []string{"c"}}}},
	}
	for _, tc := range cases {
		if _, err := ix.Rebuild(tc.kept, tc.added); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
	// a full tiling succeeds, including the empty successor
	if _, err := ix.Rebuild(nil, nil); err != nil {
		t.Errorf("empty successor: %v", err)
	}
	if _, err := ix.Rebuild([]doc.Kept{{Old: 1, New: 0}}, []AddedDoc{{Pos: 1, Terms: []string{"c"}}}); err != nil {
		t.Errorf("valid tiling: %v", err)
	}
}
