package vsm

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// randomCorpus builds n pseudo-sentences over a small shared vocabulary so
// that queries overlap some, but not all, documents.
func randomCorpus(rng *rand.Rand, n int) []string {
	vocab := []string{
		"memory", "thread", "warp", "kernel", "latency", "bandwidth",
		"cache", "register", "occupancy", "divergence", "coalescing",
		"vector", "loop", "unroll", "block", "shared", "global", "atomic",
		"prefetch", "alignment", "throughput", "instruction", "barrier",
		"stream", "transfer", "optimize", "reduce", "avoid", "performance",
	}
	out := make([]string, n)
	for i := range out {
		k := 3 + rng.Intn(9)
		words := make([]string, k)
		for j := range words {
			words[j] = vocab[rng.Intn(len(vocab))]
		}
		out[i] = strings.Join(words, " ")
	}
	return out
}

func matchesEqual(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Index != b[i].Index || a[i].Score != b[i].Score {
			return false
		}
	}
	return true
}

// TestInvertedMatchesDenseScan checks that the inverted-index fast path of
// Query returns exactly the dense scan's Match set — same documents, same
// order, bit-identical scores — on random corpora and queries.
func TestInvertedMatchesDenseScan(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		docs := randomCorpus(rng, 50+rng.Intn(200))
		ix := Build(docs)
		for trial := 0; trial < 25; trial++ {
			q := randomCorpus(rng, 1)[0]
			for _, threshold := range []float64{DefaultThreshold, 0.01, 0.5} {
				fast := ix.Query(q, threshold)
				dense := ix.QueryDense(q, threshold)
				if !matchesEqual(fast, dense) {
					t.Fatalf("seed %d trial %d threshold %v: inverted %v != dense %v (query %q)",
						seed, trial, threshold, fast, dense, q)
				}
			}
		}
	}
}

// TestInvertedThresholdZeroFallsBackToDense: a non-positive threshold admits
// zero-score documents, which only the dense scan can enumerate.
func TestInvertedThresholdZeroFallsBackToDense(t *testing.T) {
	docs := []string{
		"avoid shared memory bank conflicts",
		"unroll the innermost loop",
		"completely unrelated botany sentence about flowers",
	}
	ix := Build(docs)
	got := ix.Query("shared memory", 0)
	if len(got) != len(docs) {
		t.Fatalf("threshold 0 should score all %d documents, got %d: %v", len(docs), len(got), got)
	}
}

// TestInvertedTopK: TopK rides the same fast path and must agree with a
// truncated dense scan.
func TestInvertedTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	docs := randomCorpus(rng, 120)
	ix := Build(docs)
	for trial := 0; trial < 10; trial++ {
		q := randomCorpus(rng, 1)[0]
		fast := ix.TopK(q, 5, DefaultThreshold)
		dense := ix.QueryDense(q, DefaultThreshold)
		if len(dense) > 5 {
			dense = dense[:5]
		}
		if !matchesEqual(fast, dense) {
			t.Fatalf("trial %d: TopK %v != dense[:5] %v (query %q)", trial, fast, dense, q)
		}
	}
}

// TestPostingsCoverVectors: every nonzero vector component appears in its
// term's posting list with the same weight, and posting lists are in
// ascending document order.
func TestPostingsCoverVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ix := Build(randomCorpus(rng, 80))
	var nPostings int
	for term, plist := range ix.postings {
		last := int32(-1)
		for _, p := range plist {
			if p.doc <= last {
				t.Fatalf("term %d postings not strictly ascending", term)
			}
			last = p.doc
			nPostings++
			found := false
			for _, e := range ix.vecs[p.doc] {
				if e.term == term {
					found = e.weight == p.weight
					break
				}
			}
			if !found {
				t.Fatalf("posting (term %d, doc %d, w %v) missing from vector", term, p.doc, p.weight)
			}
		}
	}
	var nEntries int
	for _, vec := range ix.vecs {
		nEntries += len(vec)
	}
	if nPostings != nEntries {
		t.Fatalf("postings %d != vector entries %d", nPostings, nEntries)
	}
}

func ExampleIndex_Query_invertedEquivalence() {
	ix := Build([]string{
		"minimize data transfers between host and device",
		"use shared memory to reduce global memory traffic",
		"unrelated sentence about gardening",
	})
	fast := ix.Query("reduce memory transfers", DefaultThreshold)
	dense := ix.QueryDense("reduce memory transfers", DefaultThreshold)
	fmt.Println(len(fast) == len(dense))
	// Output: true
}
