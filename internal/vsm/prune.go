// Dynamic pruning for Stage-II top-k retrieval: MaxScore-style candidate
// elimination over impact-ordered postings (DESIGN.md §14).
//
// Every term's posting list is stored twice — the existing ascending
// document order (exact rescoring) and descending contribution order (the
// pruned walk). Per-term upper bounds let the walk skip postings that
// provably cannot lift a document past the current k-th score or the
// recommendation threshold. The pruned path is a *candidate generator*:
// any document it emits is rescored by the exact exhaustive accumulation
// (ascending term-id order, the same float operations in the same order),
// so pruning decides only WHICH documents get scored, never what score
// they get — results are Float64bits-identical to exhaustive scoring, for
// both the TF-IDF/cosine and BM25 backends, monolithic or sharded.
//
// The exactness argument rests on one float lemma: for non-negative
// values summed sequentially in a fixed order, replacing each addend by a
// per-slot upper bound (and absent addends by their exact zero) never
// decreases any rounded partial sum, because IEEE rounding is monotone.
// Bounds are therefore accumulated in ascending term-id order — the same
// order exhaustive scoring uses — which makes bound >= true score hold
// exactly in floating point, with no epsilon slack. Whenever the bound
// math cannot guarantee exactness or cannot win (thresholds that admit
// zero-score documents, tiny corpora, non-finite bounds), the query falls
// back to the exhaustive path and the fallback is counted.
package vsm

import (
	"context"
	"math"
	"sort"
	"sync"

	"repro/internal/obs"
)

// Pruning observability (surfaced on /metricz as vsm_prune_*):
// queries that took the pruned path, postings the walk never touched, and
// prune-eligible queries that fell back to exhaustive scoring.
var (
	pruneQueries   = obs.Default().Counter("vsm_prune_queries_total")
	pruneSkipped   = obs.Default().Counter("vsm_prune_postings_skipped_total")
	pruneFallbacks = obs.Default().Counter("vsm_prune_fallbacks_total")
)

// minPruneDocs is the corpus size below which pruning is not attempted:
// the bound bookkeeping costs more than exhaustively scoring a handful of
// documents, so tiny corpora (and tiny shards) take the exhaustive path.
const minPruneDocs = 32

// seenPool recycles the per-query visited-document bitmaps so the pruned
// path does not churn an O(n) allocation per query. Buffers come back
// cleared (the put side zeroes only the prefix it used).
var seenPool = sync.Pool{New: func() any { return new([]bool) }}

// getSeen returns a cleared []bool of length n from the pool.
func getSeen(n int) *[]bool {
	p := seenPool.Get().(*[]bool)
	if cap(*p) < n {
		*p = make([]bool, n)
	}
	*p = (*p)[:n]
	return p
}

// putSeen clears and recycles a bitmap obtained from getSeen.
func putSeen(p *[]bool) {
	clear(*p)
	seenPool.Put(p)
}

// pruningKey marks a context with an explicit pruning decision.
type pruningKey struct{}

// WithPruning marks ctx with an explicit pruning decision for Stage-II
// retrieval. Pruned and exhaustive scoring produce Float64bits-identical
// results — the toggle exists as an operational escape hatch and as the
// differential-testing lever, not as a semantic choice.
func WithPruning(ctx context.Context, on bool) context.Context {
	return context.WithValue(ctx, pruningKey{}, on)
}

// Pruning reports the pruning decision carried by ctx and whether one was
// explicitly set (on defaults to true when unset).
func Pruning(ctx context.Context) (on, set bool) {
	v, ok := ctx.Value(pruningKey{}).(bool)
	if !ok {
		return true, false
	}
	return v, true
}

// PruningOn reports whether pruning is enabled on ctx (default true).
func PruningOn(ctx context.Context) bool {
	on, _ := Pruning(ctx)
	return on
}

// pruneList is one term's postings under one scoring backend, in the two
// orders pruning needs: ascending document order (docs/w — binary-searched
// during exact rescoring) and descending contribution order (impDocs/impW,
// ties by ascending document — the impact-ordered walk). w holds the
// per-posting score contribution before the query-side multiplier: the
// normalized TF-IDF weight for the cosine backend, the full precomputed
// BM25 contribution for BM25. maxW is w's maximum (0 for an empty list).
type pruneList struct {
	docs    []int32
	w       []float64
	impDocs []int32
	impW    []float64
	maxW    float64
}

// pruneState is the per-backend pruning view over one index partition.
type pruneState struct {
	terms []pruneList // indexed by term id
}

// buildImpactOrder fills a pruneList's impact-ordered arrays (and maxW)
// from its document-ordered ones.
func (pl *pruneList) buildImpactOrder() {
	n := len(pl.docs)
	ord := make([]int, n)
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool {
		if pl.w[ord[a]] != pl.w[ord[b]] {
			return pl.w[ord[a]] > pl.w[ord[b]]
		}
		return pl.docs[ord[a]] < pl.docs[ord[b]]
	})
	pl.impDocs = make([]int32, n)
	pl.impW = make([]float64, n)
	for i, j := range ord {
		pl.impDocs[i] = pl.docs[j]
		pl.impW[i] = pl.w[j]
	}
	if n > 0 {
		pl.maxW = pl.impW[0]
	}
}

// vsmPrune returns the cosine-backend pruning state, built lazily on first
// use (an Index is immutable after Build, so the state is safe to share).
func (ix *Index) vsmPrune() *pruneState {
	ix.pruneOnce.Do(func() {
		st := &pruneState{terms: make([]pruneList, len(ix.postings))}
		for t, posts := range ix.postings {
			pl := &st.terms[t]
			pl.docs = make([]int32, len(posts))
			pl.w = make([]float64, len(posts))
			for i, p := range posts {
				pl.docs[i] = p.doc
				pl.w[i] = p.weight
			}
			pl.buildImpactOrder()
		}
		ix.prune = st
	})
	return ix.prune
}

// termRef is one query term handed to the selection engine: its vocab id
// (the engine requires callers to pass terms in ascending id order — the
// exhaustive accumulation order), the query-side multiplier (contribution
// of a posting with stored weight w is mult*w), and the term's postings.
type termRef struct {
	id   int
	mult float64
	list *pruneList
}

// pruneSelect is the MaxScore selection engine shared by both backends and
// both layouts. It returns the matches exhaustive scoring would produce —
// every document scoring past threshold (score >= threshold, or strictly
// greater under strict), best first, truncated to k when k > 0 — plus the
// number of postings the walk skipped. ok=false means the bound math was
// unusable (non-finite or negative bounds) and the caller must fall back.
//
// terms must be sorted by ascending id; n is the partition's document
// count. Under strict=false the caller must guarantee threshold > 0, so
// every admissible document appears in some query term's postings; under
// strict=true (BM25's score-over-zero filter) the same holds because every
// posting's contribution is positive.
func pruneSelect(terms []termRef, threshold float64, strict bool, k, n int) (out []Match, skipped int64, ok bool) {
	m := len(terms)
	if m == 0 {
		return nil, 0, true
	}
	// per-term query upper bounds: ub[i] = fl(mult*maxW) dominates every
	// contribution fl(mult*w) of term i (float multiply is monotone for
	// non-negative operands)
	ub := make([]float64, m)
	for i, t := range terms {
		ub[i] = t.mult * t.list.maxW
		if math.IsNaN(ub[i]) || math.IsInf(ub[i], 0) || ub[i] < 0 || t.mult < 0 {
			return nil, 0, false
		}
	}
	if math.IsNaN(threshold) {
		return nil, 0, false
	}
	// pi: term positions in descending-ub order (ties by ascending id) —
	// the processing order; high-impact terms first fill the heap fast
	pi := make([]int, m)
	for i := range pi {
		pi[i] = i
	}
	sort.Slice(pi, func(a, b int) bool {
		if ub[pi[a]] != ub[pi[b]] {
			return ub[pi[a]] > ub[pi[b]]
		}
		return terms[pi[a]].id < terms[pi[b]].id
	})
	// inSuffix[i] tracks whether term i (by position in terms) is in the
	// not-yet-processed suffix pi[s:]; bound sums iterate terms in index
	// order, which IS ascending id order — the exhaustive accumulation
	// order the float monotonicity lemma requires.
	inSuffix := make([]bool, m)
	for i := range inSuffix {
		inSuffix[i] = true
	}
	// suffixBound(s, sub, c): the ascending-id-order float sum of ub over
	// the suffix pi[s:], with position sub's slot replaced by c. A document
	// whose matched terms all lie in the suffix, with contribution exactly
	// c at slot sub, scores at most this bound — exactly, in floats.
	suffixBound := func(sub int, c float64) float64 {
		var sum float64
		for i := 0; i < m; i++ {
			if !inSuffix[i] {
				continue
			}
			if i == sub {
				sum += c
			} else {
				sum += ub[i]
			}
		}
		return sum
	}

	// bounded min-heap keyed worst-first under the total match order
	// (score desc, index asc) — the same semantics as topMatchesVec, so
	// bounded selection equals sort-then-truncate
	worse := func(a, b Match) bool {
		if a.Score != b.Score {
			return a.Score < b.Score
		}
		return a.Index > b.Index
	}
	var heap []Match
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			w := i
			if l < len(heap) && worse(heap[l], heap[w]) {
				w = l
			}
			if r < len(heap) && worse(heap[r], heap[w]) {
				w = r
			}
			if w == i {
				return
			}
			heap[i], heap[w] = heap[w], heap[i]
			i = w
		}
	}
	// canSkip reports whether a document bounded by b can be eliminated
	// without scoring it: strictly below the admission threshold, or — once
	// the heap is full — strictly below the k-th score. Strict-< handles
	// k-th-score ties exactly: a document whose bound EQUALS the root score
	// could still win on the index tiebreak, so it is always scored. The
	// heap root only rises, so a skip decided now stays valid later.
	canSkip := func(b float64) bool {
		if strict {
			if b <= threshold {
				return true
			}
		} else if b < threshold {
			return true
		}
		return k > 0 && len(heap) == k && b < heap[0].Score
	}
	admit := func(s float64) bool {
		if strict {
			return s > threshold
		}
		return s >= threshold
	}
	// exact rescore: the same per-term contributions summed in the same
	// ascending term-id order as the exhaustive pass (for the cosine
	// backend mult*w == weight*mult bit-wise by commutativity of float
	// multiplication; for BM25 mult is 1 and 1*c == c exactly). The walk
	// already knows the contribution of the term it is walking (own, at
	// term position pos — the identical mult*w product), so that slot
	// skips the posting-list search.
	rescore := func(d int32, pos int, own float64) float64 {
		var s float64
		for i := range terms {
			if i == pos {
				s += own
				continue
			}
			lst := terms[i].list
			lo, hi := 0, len(lst.docs)
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if lst.docs[mid] < d {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < len(lst.docs) && lst.docs[lo] == d {
				s += terms[i].mult * lst.w[lo]
			}
		}
		return s
	}
	offer := func(mt Match) {
		if k <= 0 {
			out = append(out, mt)
			return
		}
		if len(heap) < k {
			heap = append(heap, mt)
			for i := len(heap) - 1; i > 0; {
				p := (i - 1) / 2
				if !worse(heap[i], heap[p]) {
					break
				}
				heap[i], heap[p] = heap[p], heap[i]
				i = p
			}
			return
		}
		if worse(mt, heap[0]) {
			return
		}
		heap[0] = mt
		siftDown(0)
	}

	seenp := getSeen(n)
	defer putSeen(seenp)
	seen := *seenp
	for s := 0; s < m; s++ {
		pos := pi[s]
		// whole-suffix elimination: every document not yet seen whose
		// matched terms all lie in pi[s:] scores at most the suffix bound;
		// documents already emitted are rescored exactly regardless
		if canSkip(suffixBound(-1, 0)) {
			for r := s; r < m; r++ {
				skipped += int64(len(terms[pi[r]].list.impW))
			}
			break
		}
		lst := terms[pos].list
		mult := terms[pos].mult
		// impact cutoff: the walkable prefix of this term's impact-ordered
		// list is exactly the postings whose substituted suffix bound is
		// not skippable — the bound is monotone in w and the list is sorted
		// by descending w, so the prefix is contiguous and binary-searchable.
		// The cutoff re-tightens periodically as the heap root rises.
		j, cut := 0, len(lst.impW)
		recalc := func() {
			cut = j + sort.Search(cut-j, func(x int) bool {
				return canSkip(suffixBound(pos, mult*lst.impW[j+x]))
			})
		}
		recalc()
		for j < cut {
			d := lst.impDocs[j]
			own := mult * lst.impW[j]
			j++
			if seen[d] {
				continue
			}
			seen[d] = true
			if mt := (Match{Index: int(d), Score: rescore(d, pos, own)}); admit(mt.Score) {
				was := len(heap)
				offer(mt)
				if k > 0 && was < k && len(heap) == k {
					// the heap just filled: the skip bar jumps from the
					// admission threshold to the k-th score, so re-tighten
					// immediately instead of waiting out the stride
					recalc()
					continue
				}
			}
			if j&7 == 0 {
				recalc()
			}
		}
		skipped += int64(len(lst.impW) - j)
		inSuffix[pos] = false
	}
	if k > 0 {
		out = heap
	}
	sortMatches(out)
	return out, skipped, true
}

// selectMatches is the selection core shared by the monolithic entry
// points and each shard of a sharded fan-out: the pruned engine when
// pruning is requested and the gate allows, the exhaustive path otherwise.
// k > 0 bounds the result to the k best; k <= 0 keeps every match at or
// above threshold. Results are Float64bits-identical either way.
func (ix *Index) selectMatches(prune bool, qv []entry, threshold float64, k int) []Match {
	if prune {
		// thresholds at or below zero admit zero-score documents, which
		// appear in no query term's postings — candidate generation cannot
		// see them, so those queries are exhaustive by construction
		if threshold > 0 && ix.n >= minPruneDocs {
			terms := make([]termRef, len(qv))
			st := ix.vsmPrune()
			for i, q := range qv {
				terms[i] = termRef{id: q.term, mult: q.weight, list: &st.terms[q.term]}
			}
			if out, skipped, ok := pruneSelect(terms, threshold, false, k, ix.n); ok {
				pruneQueries.Inc()
				pruneSkipped.Add(skipped)
				return out
			}
		}
		pruneFallbacks.Inc()
	}
	if k > 0 {
		return ix.topMatchesVec(qv, threshold, k)
	}
	return ix.matchesVec(qv, threshold)
}
