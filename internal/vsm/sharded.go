// Sharded retrieval: a ShardedIndex partitions the sentence set across N
// per-shard Index values by stable sentence identity while sharing one
// global vocabulary and one global IDF table, so every per-shard weight is
// Float64bits-identical to the monolithic index over the same corpus
// (DESIGN.md §13). Queries fan out across shards in a bounded worker pool
// and merge deterministically; a shard that fails a fault-injection draw
// degrades to partial results (its documents score zero) instead of
// failing the query.
package vsm

import (
	"context"
	"hash/fnv"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/doc"
	"repro/internal/obs"
	"repro/internal/textproc"
)

// Sharded-retrieval observability, alongside the vsm_* Stage-II metrics.
var (
	shardedQueries  = obs.Default().Counter("vsm_sharded_queries_total")
	shardScores     = obs.Default().Counter("vsm_shard_scores_total")
	shardFailures   = obs.Default().Counter("vsm_shard_failures_total")
	shardFanoutHist = obs.Default().Histogram("vsm_shard_fanout_micros")
)

// ShardedIndex is a TF-IDF vector space partitioned across shards.
//
// Layout: documents are assigned to shards by hashing their stable
// doc.SentenceID (falling back to the document ordinal when no identity is
// available), so an incremental Rebuild keeps every surviving sentence in
// its original shard. Global statistics — vocabulary, document frequencies,
// IDF — are computed over the whole corpus once and injected into each
// shard's build, which is what makes per-shard TF-IDF and BM25 weights
// bit-identical to the monolithic Index (each document's weights are a
// function of the global statistics and the document alone, and both
// layouts accumulate them in the same ascending term-id order).
//
// Like Index, a ShardedIndex is immutable after build and safe for
// concurrent queries.
type ShardedIndex struct {
	vocab   map[string]int
	idf     []float64
	shards  []*Index
	docs    [][]int32        // per shard: local position -> global ordinal, ascending
	ids     []doc.SentenceID // global ordinal -> identity (shard assignment key)
	counted []*termCounts    // global order, reused by Rebuild
	n       int

	bm25Once sync.Once
	bm25     *ShardedBM25
}

// BuildShardedFromTerms constructs a sharded index over pre-normalized term
// lists partitioned across nShards by the aligned sentence identities. A nil
// or misaligned ids slice falls back to ordinal-based assignment (round
// robin), which still balances shards but is not stable across edits;
// nShards < 1 builds a single shard.
func BuildShardedFromTerms(termLists [][]string, ids []doc.SentenceID, nShards int) *ShardedIndex {
	counted := make([]*termCounts, len(termLists))
	for i, terms := range termLists {
		counted[i] = countTerms(terms)
	}
	if len(ids) != len(termLists) {
		ids = make([]doc.SentenceID, len(termLists))
	}
	return buildSharded(counted, ids, nShards)
}

// shardOf maps a sentence to its shard: FNV-1a over the stable identity, or
// round robin on the ordinal when the sentence has none.
func shardOf(id doc.SentenceID, ordinal, nShards int) int {
	if nShards <= 1 {
		return 0
	}
	if id == "" {
		return ordinal % nShards
	}
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(nShards))
}

// buildSharded assembles the sharded layout: global statistics first, then
// one buildWithStats per partition — the same per-document math as the
// monolithic buildFromCounted, under the same statistics.
func buildSharded(counted []*termCounts, ids []doc.SentenceID, nShards int) *ShardedIndex {
	if nShards < 1 {
		nShards = 1
	}
	vocab, idf := globalStats(counted, len(counted))
	s := &ShardedIndex{
		vocab:   vocab,
		idf:     idf,
		counted: counted,
		ids:     ids,
		n:       len(counted),
	}
	part := make([][]*termCounts, nShards)
	s.docs = make([][]int32, nShards)
	for i, tc := range counted {
		sh := shardOf(ids[i], i, nShards)
		part[sh] = append(part[sh], tc)
		s.docs[sh] = append(s.docs[sh], int32(i))
	}
	s.shards = make([]*Index, nShards)
	for sh := range part {
		s.shards[sh] = buildWithStats(part[sh], vocab, idf)
	}
	return s
}

// Len returns the number of sentences across all shards.
func (s *ShardedIndex) Len() int { return s.n }

// ShardCount returns the number of partitions.
func (s *ShardedIndex) ShardCount() int { return len(s.shards) }

// ShardSizes returns the per-shard document counts (diagnostics and tests).
func (s *ShardedIndex) ShardSizes() []int {
	sizes := make([]int, len(s.shards))
	for i, sh := range s.shards {
		sizes[i] = sh.n
	}
	return sizes
}

// VocabSize returns the number of distinct terms in the global vocabulary.
func (s *ShardedIndex) VocabSize() int { return len(s.vocab) }

// IDF returns the global inverse document frequency of a term (0 if unknown).
func (s *ShardedIndex) IDF(term string) float64 {
	if id, ok := s.vocab[term]; ok {
		return s.idf[id]
	}
	return 0
}

// Rebuild constructs the successor sharded index after a document edit,
// under the same tiling contract as Index.Rebuild. Kept sentences carry
// their identity (and therefore their shard assignment) forward; the result
// is bit-identical to a cold sharded build over the successor corpus because
// it *is* one — only term counting is reused.
func (s *ShardedIndex) Rebuild(kept []doc.Kept, added []AddedDoc) (*ShardedIndex, error) {
	counted, ids, err := tileCounted(s.counted, s.ids, kept, added)
	if err != nil {
		return nil, err
	}
	return buildSharded(counted, ids, len(s.shards)), nil
}

// RebuildRetriever is Rebuild under the Retriever interface.
func (s *ShardedIndex) RebuildRetriever(kept []doc.Kept, added []AddedDoc) (Retriever, error) {
	return s.Rebuild(kept, added)
}

// shardFaultKey carries a per-shard fault draw; shardOutcomeKey carries the
// fan-out outcome recorder.
type (
	shardFaultKey   struct{}
	shardOutcomeKey struct{}
)

// WithShardFault arms a per-shard fault draw on the context: the fan-out
// calls draw once per shard, and a non-nil error fails that shard — its
// documents score zero (partial results) and the failure is recorded on the
// context's ShardOutcome. The serving layer wires its fault injector's
// vsm.score point through this so chaos tests exercise single-shard
// degradation rather than whole-query failure.
func WithShardFault(ctx context.Context, draw func() error) context.Context {
	if draw == nil {
		return ctx
	}
	return context.WithValue(ctx, shardFaultKey{}, draw)
}

func shardFaultFrom(ctx context.Context) func() error {
	draw, _ := ctx.Value(shardFaultKey{}).(func() error)
	return draw
}

// ShardOutcome records how a sharded fan-out went: how many shards ran and
// how many failed their fault draw. A nil outcome is inert, so callers that
// do not care simply never attach one.
type ShardOutcome struct {
	mu     sync.Mutex
	total  int
	failed int
	err    error
}

// WithShardOutcome attaches a fresh outcome recorder to the context and
// returns it; every sharded fan-out under the returned context reports into
// it.
func WithShardOutcome(ctx context.Context) (context.Context, *ShardOutcome) {
	o := &ShardOutcome{}
	return context.WithValue(ctx, shardOutcomeKey{}, o), o
}

func shardOutcomeFrom(ctx context.Context) *ShardOutcome {
	o, _ := ctx.Value(shardOutcomeKey{}).(*ShardOutcome)
	return o
}

// Total returns the number of shards the last fan-out ran.
func (o *ShardOutcome) Total() int {
	if o == nil {
		return 0
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.total
}

// Failed returns the number of shards that failed their fault draw.
func (o *ShardOutcome) Failed() int {
	if o == nil {
		return 0
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.failed
}

// Err returns the first shard failure, nil if every shard succeeded.
func (o *ShardOutcome) Err() error {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.err
}

func (o *ShardOutcome) setTotal(n int) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.total = n
	o.mu.Unlock()
}

func (o *ShardOutcome) recordFailure(err error) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.failed++
	if o.err == nil {
		o.err = err
	}
	o.mu.Unlock()
}

// fanOut runs fn once per shard in a bounded worker pool — at most
// min(GOMAXPROCS, shards) goroutines, or strictly the calling goroutine
// under WithSerialScoring. Each shard draws the context's fault point (if
// armed) before running; a failing shard is skipped and recorded. fn must
// write only shard-owned state (each shard's documents map to disjoint
// global ordinals, so per-shard writes into a shared score slice are
// race-free).
func (s *ShardedIndex) fanOut(ctx context.Context, fn func(sh int)) {
	start := time.Now()
	defer func() { shardFanoutHist.ObserveDuration(time.Since(start)) }()
	draw := shardFaultFrom(ctx)
	outcome := shardOutcomeFrom(ctx)
	outcome.setTotal(len(s.shards))
	parent := obs.SpanFrom(ctx)
	exec := func(sh int) {
		span := parent.StartChild("vsm.shard")
		span.SetAttrInt("shard", sh)
		span.SetAttrInt("docs", s.shards[sh].n)
		defer span.Finish()
		if draw != nil {
			if err := draw(); err != nil {
				span.SetAttr("error", err.Error())
				shardFailures.Inc()
				outcome.recordFailure(err)
				return
			}
		}
		fn(sh)
		shardScores.Inc()
	}
	workers := runtime.GOMAXPROCS(0)
	if SerialScoring(ctx) {
		workers = 1
	}
	if workers > len(s.shards) {
		workers = len(s.shards)
	}
	if workers <= 1 {
		for sh := range s.shards {
			exec(sh)
		}
		return
	}
	var next int32 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				sh := int(atomic.AddInt32(&next, 1))
				if sh >= len(s.shards) {
					return
				}
				exec(sh)
			}
		}()
	}
	wg.Wait()
}

// QueryVector builds the normalized query vector under the global
// vocabulary — vectorized once, shared by every shard.
func (s *ShardedIndex) QueryVector(query string) []entry {
	return vectorizeWith(s.vocab, s.idf, textproc.NormalizeTerms(query))
}

// scoreVec scatters per-shard dense dot products into one global score
// slice. Each document's score is a single dot product — the same
// accumulation as the monolithic dense scan — so the slice is bit-identical
// to Index.QueryAll over the same corpus, in any shard count.
func (s *ShardedIndex) scoreVec(ctx context.Context, qv []entry) []float64 {
	scores := make([]float64, s.n)
	if len(qv) == 0 {
		return scores
	}
	s.fanOut(ctx, func(sh int) {
		docs := s.docs[sh]
		for li, v := range s.shards[sh].vecs {
			scores[docs[li]] = dot(v, qv)
		}
	})
	return scores
}

// QueryAll computes the similarity of every sentence to the query across
// all shards and returns the full global score slice.
func (s *ShardedIndex) QueryAll(query string) []float64 {
	return s.queryAllVec(context.Background(), s.QueryVector(query))
}

// QueryAllTerms is QueryAll over a pre-normalized query term list.
func (s *ShardedIndex) QueryAllTerms(terms []string) []float64 {
	return s.queryAllVec(context.Background(), s.vectorize(terms))
}

func (s *ShardedIndex) vectorize(terms []string) []entry {
	return vectorizeWith(s.vocab, s.idf, terms)
}

func (s *ShardedIndex) queryAllVec(ctx context.Context, qv []entry) []float64 {
	start := time.Now()
	defer func() {
		scoreHist.ObserveDuration(time.Since(start))
		queriesScored.Inc()
		shardedQueries.Inc()
	}()
	return s.scoreVec(ctx, qv)
}

// QueryAllTermsCtx is QueryAllTerms under a trace: the scoring pass is
// recorded as a "vsm.score" span with a shard count attribute, and each
// shard's pass nests under it as a "vsm.shard" child. WithSerialScoring
// keeps the whole fan-out on the calling goroutine (scores are
// bit-identical either way).
func (s *ShardedIndex) QueryAllTermsCtx(ctx context.Context, terms []string) []float64 {
	if parent := obs.SpanFrom(ctx); parent != nil {
		span := parent.StartChild("vsm.score")
		span.SetAttrInt("query_terms", len(terms))
		span.SetAttrInt("docs", s.n)
		span.SetAttrInt("shards", len(s.shards))
		if SerialScoring(ctx) {
			span.SetAttr("mode", "serial")
		}
		defer span.Finish()
		ctx = obs.ContextWithSpan(ctx, span)
	}
	return s.queryAllVec(ctx, s.vectorize(terms))
}

// Backend implements Scorer: the ShardedIndex itself is the TF-IDF/cosine
// backend, like the monolithic Index.
func (s *ShardedIndex) Backend() string { return BackendVSM }

// ScoreTermsCtx implements Scorer by delegating to QueryAllTermsCtx.
func (s *ShardedIndex) ScoreTermsCtx(ctx context.Context, terms []string) []float64 {
	return s.QueryAllTermsCtx(ctx, terms)
}

// Scorer returns the named scoring backend over the sharded layout.
func (s *ShardedIndex) Scorer(backend string) (Scorer, error) {
	switch backend {
	case "", BackendVSM:
		return s, nil
	case BackendBM25:
		return s.BM25(), nil
	}
	return unknownBackend(backend)
}

// Query returns every sentence at or above threshold across all shards,
// merged into one globally sorted list — identical to Index.Query over the
// same corpus (per-document scores are bit-identical, the threshold filter
// is per-document, and the merge reproduces the same total order).
func (s *ShardedIndex) Query(query string, threshold float64) []Match {
	return s.QueryCtx(context.Background(), query, threshold)
}

// QueryCtx is Query honoring the pruning decision on ctx (default on):
// each shard runs MaxScore candidate elimination against its own postings
// before the merge. Per-shard pruning is exact per shard (same bound math
// as the monolithic path, over shard-local lists built from global
// statistics), so the merged result is Float64bits-identical to exhaustive
// scoring at any shard count.
func (s *ShardedIndex) QueryCtx(ctx context.Context, query string, threshold float64) []Match {
	qv := s.QueryVector(query)
	if len(qv) == 0 {
		return nil
	}
	return mergeMatches(s.shardMatches(ctx, qv, threshold, 0), 0)
}

// TopK returns the k best matches at or above threshold. Each shard
// early-exits at its own top k (a size-k bounded selection instead of a
// full sort); the global top k is a subset of the union of per-shard top
// ks, so the merged prefix equals the monolithic TopK exactly, including
// tie order.
func (s *ShardedIndex) TopK(query string, k int, threshold float64) []Match {
	return s.TopKCtx(context.Background(), query, k, threshold)
}

// TopKCtx is TopK honoring the pruning decision on ctx (default on); see
// QueryCtx for the per-shard pruning exactness argument.
func (s *ShardedIndex) TopKCtx(ctx context.Context, query string, k int, threshold float64) []Match {
	if k <= 0 {
		return nil
	}
	qv := s.QueryVector(query)
	if len(qv) == 0 {
		return nil
	}
	return mergeMatches(s.shardMatches(ctx, qv, threshold, k), k)
}

// MatchesTermsCtx returns every sentence at or above threshold across all
// shards, best first — the serving-path form of Query, honoring tracing,
// pruning, per-shard fault draws (a failed shard contributes no matches —
// the same partial-result degradation as the score-slice path), and the
// scoring metrics.
func (s *ShardedIndex) MatchesTermsCtx(ctx context.Context, terms []string, threshold float64) []Match {
	prune := PruningOn(ctx)
	if parent := obs.SpanFrom(ctx); parent != nil {
		span := parent.StartChild("vsm.score")
		span.SetAttrInt("query_terms", len(terms))
		span.SetAttrInt("docs", s.n)
		span.SetAttrInt("shards", len(s.shards))
		span.SetAttr("vsm.prune", pruneAttrVal(prune))
		defer span.Finish()
		ctx = obs.ContextWithSpan(ctx, span)
	}
	start := time.Now()
	defer func() {
		scoreHist.ObserveDuration(time.Since(start))
		queriesScored.Inc()
		shardedQueries.Inc()
	}()
	return mergeMatches(s.shardMatches(ctx, s.vectorize(terms), threshold, 0), 0)
}

// shardMatches collects each shard's sorted match list remapped to global
// ordinals. k > 0 bounds each shard's list to its top k; k <= 0 keeps every
// match. Each shard selects through its own pruning gate (per-shard bounds,
// per-shard fallback) when the context asks for pruning. The remap
// preserves sort order: per-shard local ordinals are ascending in global
// ordinal, so (score desc, local asc) maps to (score desc, global asc).
func (s *ShardedIndex) shardMatches(ctx context.Context, qv []entry, threshold float64, k int) [][]Match {
	prune := PruningOn(ctx)
	lists := make([][]Match, len(s.shards))
	s.fanOut(ctx, func(sh int) {
		local := s.shards[sh].selectMatches(prune, qv, threshold, k)
		docs := s.docs[sh]
		for i := range local {
			local[i].Index = int(docs[local[i].Index])
		}
		lists[sh] = local
	})
	return lists
}

// mergeMatches k-way merges sorted match lists under the global match order
// (score desc, index asc) with a heap of list heads. k > 0 stops after k
// results. Because the order is total (no two matches share score and
// index), the merge is deterministic and reproduces exactly the list a
// global sort would.
func mergeMatches(lists [][]Match, k int) []Match {
	type head struct{ list, pos int }
	better := func(a, b Match) bool {
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.Index < b.Index
	}
	heads := make([]head, 0, len(lists))
	total := 0
	for li, l := range lists {
		total += len(l)
		if len(l) > 0 {
			heads = append(heads, head{list: li, pos: 0})
		}
	}
	if total == 0 {
		return nil
	}
	at := func(h head) Match { return lists[h.list][h.pos] }
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			best := i
			if l < len(heads) && better(at(heads[l]), at(heads[best])) {
				best = l
			}
			if r < len(heads) && better(at(heads[r]), at(heads[best])) {
				best = r
			}
			if best == i {
				return
			}
			heads[i], heads[best] = heads[best], heads[i]
			i = best
		}
	}
	for i := len(heads)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	want := total
	if k > 0 && k < want {
		want = k
	}
	out := make([]Match, 0, want)
	for len(heads) > 0 && len(out) < want {
		h := heads[0]
		out = append(out, at(h))
		if h.pos+1 < len(lists[h.list]) {
			heads[0].pos++
		} else {
			heads[0] = heads[len(heads)-1]
			heads = heads[:len(heads)-1]
		}
		siftDown(0)
	}
	return out
}

// ShardedBM25 is the Okapi BM25 backend over a sharded layout. Its IDF
// table derives from global document frequencies (the sum of per-shard
// posting-list lengths — an exact integer, so equal to the monolithic df),
// and its length norms from the global corpus average accumulated in global
// document order; both therefore carry the exact bits of the monolithic
// BM25 view, and per-document accumulation walks the same query terms in
// the same ascending order — scores are Float64bits-identical.
type ShardedBM25 struct {
	s    *ShardedIndex
	idf  []float64 // global BM25 IDF, per term id
	norm []float64 // k1*(1 - b + b*len/avgLen), per global document

	pruneOnce sync.Once // lazily-built per-shard impact-ordered pruning views
	prune     []*pruneState
}

// BM25 returns the BM25 view over the sharded layout, built lazily on first
// use and cached.
func (s *ShardedIndex) BM25() *ShardedBM25 {
	s.bm25Once.Do(func() {
		b := &ShardedBM25{s: s, idf: make([]float64, len(s.idf)), norm: make([]float64, s.n)}
		// accumulate total length in global document order — the same
		// summation order as the monolithic BM25 build, so avg (and every
		// norm derived from it) carries identical bits
		var total float64
		for _, tc := range s.counted {
			total += float64(tc.total)
		}
		var avg float64
		if s.n > 0 {
			avg = total / float64(s.n)
		}
		n := float64(s.n)
		for t := range b.idf {
			gdf := 0
			for _, sh := range s.shards {
				gdf += len(sh.postings[t])
			}
			df := float64(gdf)
			b.idf[t] = math.Log((n-df+0.5)/(df+0.5) + 1)
		}
		for d, tc := range s.counted {
			if avg > 0 {
				b.norm[d] = bm25K1 * (1 - bm25B + bm25B*float64(tc.total)/avg)
			} else {
				b.norm[d] = bm25K1
			}
		}
		s.bm25 = b
	})
	return s.bm25
}

// Backend implements Scorer.
func (b *ShardedBM25) Backend() string { return BackendBM25 }

// ScoreTerms returns the BM25 score of every sentence across all shards for
// a pre-normalized query term list.
func (b *ShardedBM25) ScoreTerms(terms []string) []float64 {
	return b.scoreTerms(context.Background(), terms)
}

// ScoreTermsCtx implements Scorer: the sharded fan-out under an optional
// "bm25.score" trace span, honoring per-shard fault draws like the cosine
// path.
func (b *ShardedBM25) ScoreTermsCtx(ctx context.Context, terms []string) []float64 {
	if parent := obs.SpanFrom(ctx); parent != nil {
		span := parent.StartChild("bm25.score")
		span.SetAttrInt("query_terms", len(terms))
		span.SetAttrInt("docs", b.s.n)
		span.SetAttrInt("shards", len(b.s.shards))
		defer span.Finish()
		ctx = obs.ContextWithSpan(ctx, span)
	}
	return b.scoreTerms(ctx, terms)
}

func (b *ShardedBM25) scoreTerms(ctx context.Context, terms []string) []float64 {
	out := make([]float64, b.s.n)
	ids := queryIDs(b.s.vocab, terms)
	if len(ids) == 0 {
		return out
	}
	b.s.fanOut(ctx, func(sh int) {
		shard := b.s.shards[sh]
		docs := b.s.docs[sh]
		for _, t := range ids {
			idf := b.idf[t]
			for _, p := range shard.postings[t] {
				g := docs[p.doc]
				tf := float64(p.tf)
				out[g] += idf * tf * (bm25K1 + 1) / (tf + b.norm[g])
			}
		}
	})
	return out
}

// Scores returns the BM25 score of every sentence for raw query text.
func (b *ShardedBM25) Scores(query string) []float64 {
	return b.ScoreTerms(textproc.NormalizeTerms(query))
}

// shardPrune returns the per-shard BM25 pruning states: shard-local posting
// lists with contributions precomputed from the GLOBAL IDF table and GLOBAL
// length norms (a shard's own BM25 view would carry shard-local statistics
// and the wrong bits). Built lazily on first use and cached.
func (b *ShardedBM25) shardPrune() []*pruneState {
	b.pruneOnce.Do(func() {
		states := make([]*pruneState, len(b.s.shards))
		for sh, shard := range b.s.shards {
			docs := b.s.docs[sh]
			states[sh] = buildBM25Prune(shard.postings, b.idf, b.norm, func(d int32) int32 { return docs[d] })
		}
		b.prune = states
	})
	return b.prune
}

// TopK returns the k best-scoring sentences with positive score across all
// shards, best first (ties by ascending index); k <= 0 returns nothing.
// Identical to the monolithic BM25.TopK over the same corpus.
func (b *ShardedBM25) TopK(query string, k int) []Match {
	return b.TopKCtx(context.Background(), query, k)
}

// TopKCtx is TopK honoring the pruning decision on ctx (default on): each
// shard selects its own top k — pruned through its contribution-ordered
// lists or exhaustively on fallback — and the k-way merge keeps the global
// best. Results are Float64bits-identical either way.
func (b *ShardedBM25) TopKCtx(ctx context.Context, query string, k int) []Match {
	if k <= 0 {
		return nil
	}
	ids := queryIDs(b.s.vocab, textproc.NormalizeTerms(query))
	if len(ids) == 0 {
		return nil
	}
	prune := PruningOn(ctx)
	lists := make([][]Match, len(b.s.shards))
	b.s.fanOut(ctx, func(sh int) {
		local := b.topShard(sh, prune, ids, k)
		docs := b.s.docs[sh]
		for i := range local {
			local[i].Index = int(docs[local[i].Index])
		}
		lists[sh] = local
	})
	return mergeMatches(lists, k)
}

// topShard computes one shard's top-k BM25 matches in local ordinals:
// MaxScore elimination when pruning is on and the shard is big enough, the
// exhaustive shard scan otherwise. Both accumulate each document's
// contributions in ascending term-id order against global statistics, so
// the two paths (and any shard count) agree bit-for-bit.
func (b *ShardedBM25) topShard(sh int, prune bool, ids []int, k int) []Match {
	shard := b.s.shards[sh]
	docs := b.s.docs[sh]
	if prune {
		if shard.n >= minPruneDocs {
			st := b.shardPrune()[sh]
			refs := make([]termRef, len(ids))
			for i, t := range ids {
				refs[i] = termRef{id: t, mult: 1, list: &st.terms[t]}
			}
			if out, skipped, ok := pruneSelect(refs, 0, true, k, shard.n); ok {
				pruneQueries.Inc()
				pruneSkipped.Add(skipped)
				return out
			}
		}
		pruneFallbacks.Inc()
	}
	out := make([]float64, shard.n)
	for _, t := range ids {
		idf := b.idf[t]
		for _, p := range shard.postings[t] {
			tf := float64(p.tf)
			out[p.doc] += idf * tf * (bm25K1 + 1) / (tf + b.norm[docs[p.doc]])
		}
	}
	var matches []Match
	for i, s := range out {
		if s > 0 {
			matches = append(matches, Match{Index: i, Score: s})
		}
	}
	sortMatches(matches)
	if len(matches) > k {
		matches = matches[:k]
	}
	return matches
}
