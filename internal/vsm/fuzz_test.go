package vsm

import (
	"strings"
	"testing"

	"repro/internal/textproc"
)

// FuzzTopKParity fuzzes the MaxScore-pruned TopK against the
// sort-of-QueryAll reference: score every document exhaustively, filter at
// the threshold, sort under the total match order, truncate to k. Pruned
// retrieval — monolithic and sharded, VSM and BM25 — must reproduce that
// list Float64bits-exactly for arbitrary corpora, queries, k, thresholds
// (including NaN, infinities, and <= 0 fallback cases), and shard counts.
// Seeds live in testdata/fuzz/FuzzTopKParity (guide sentences × guide
// queries; regenerate with `go run ./tools/fuzzseed`).
func FuzzTopKParity(f *testing.F) {
	f.Add("alpha beta\nbeta gamma\ngamma delta beta\nalpha alpha", "alpha gamma", 3, 0.15, 2)
	f.Add("", "anything", 1, 0.15, 1)
	f.Add("same words here\nsame words here\nsame words here", "same words", 2, 0.0, 4)
	f.Add("tuning threads\nwarp divergence\nmemory coalescing", "warp memory", 10, -1.0, 8)
	f.Add("a b c\nb c d\nc d e\nd e f", "c", 0, 0.5, 3)

	f.Fuzz(func(t *testing.T, blob, query string, k int, threshold float64, nShards int) {
		if len(blob) > 1<<16 || len(query) > 1<<10 {
			return
		}
		sentences := strings.Split(blob, "\n")
		if len(sentences) > 96 {
			sentences = sentences[:96]
		}
		n := len(sentences)
		if k > 2*n+4 {
			k = k % (2*n + 5)
		}
		sh := nShards % 9
		if sh < 0 {
			sh = -sh
		}

		ix := Build(sentences)
		termLists := make([][]string, n)
		for i, s := range sentences {
			termLists[i] = textproc.NormalizeTerms(s)
		}
		sharded := BuildShardedFromTerms(termLists, nil, sh)

		// the sort-of-QueryAll reference for the cosine backend, mirroring
		// Query's empty-vector contract (no query terms in vocab: no matches)
		var want []Match
		if len(ix.QueryVector(query)) > 0 && k > 0 {
			for i, s := range ix.QueryAll(query) {
				if s >= threshold {
					want = append(want, Match{Index: i, Score: s})
				}
			}
			sortMatches(want)
			if len(want) > k {
				want = want[:k]
			}
		}
		sameMatches(t, "mono pruned", ix.TopKCtx(pruneOn(), query, k, threshold), want)
		sameMatches(t, "mono exhaustive", ix.TopKCtx(pruneOff(), query, k, threshold), want)
		sameMatches(t, "sharded pruned", sharded.TopKCtx(pruneOn(), query, k, threshold), want)
		sameMatches(t, "sharded exhaustive", sharded.TopKCtx(pruneOff(), query, k, threshold), want)

		// the BM25 reference: positive scores only, no threshold parameter
		var wantB []Match
		if k > 0 {
			for i, s := range ix.BM25().ScoreTerms(textproc.NormalizeTerms(query)) {
				if s > 0 {
					wantB = append(wantB, Match{Index: i, Score: s})
				}
			}
			sortMatches(wantB)
			if len(wantB) > k {
				wantB = wantB[:k]
			}
		}
		sameMatches(t, "bm25 mono pruned", ix.BM25().TopKCtx(pruneOn(), query, k), wantB)
		sameMatches(t, "bm25 sharded pruned", sharded.BM25().TopKCtx(pruneOn(), query, k), wantB)
	})
}
