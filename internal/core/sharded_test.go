package core

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"

	"repro/internal/corpus"
	"repro/internal/htmldoc"
	"repro/internal/textproc"
)

// sameAnswers demands bit-identical retrieval: same sentences in the same
// order with Float64bits-equal scores. The sharded index is sold as a layout
// change, not a scoring change, so "close" is not good enough here.
func sameAnswers(t *testing.T, label string, got, want []Answer) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d vs %d answers", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Sentence.Index != want[i].Sentence.Index ||
			math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
			t.Fatalf("%s: answer %d: (%d, %x) vs (%d, %x)", label, i,
				got[i].Sentence.Index, got[i].Score, want[i].Sentence.Index, want[i].Score)
		}
	}
}

var shardedTestQueries = []string{
	"how to avoid shared memory bank conflicts",
	"reduce instruction and memory latency",
	"minimize divergent warps",
	"zyzzyva nothing matches",
}

// TestWithShardsBuildsShardedIndex: the framework option actually changes
// the index layout, and answers stay bit-identical to the monolithic build
// across both backends.
func TestWithShardsBuildsShardedIndex(t *testing.T) {
	g := corpus.GenerateSized(corpus.CUDA, 200, 0.25, 31)
	mono := New().BuildFromSentences(g.Doc, g.Sentences)
	if mono.ShardCount() != 1 {
		t.Fatalf("monolithic ShardCount = %d, want 1", mono.ShardCount())
	}
	for _, n := range []int{2, 4, 8} {
		sh := New(WithShards(n)).BuildFromSentences(g.Doc, g.Sentences)
		if sh.ShardCount() != n {
			t.Fatalf("WithShards(%d) advisor ShardCount = %d", n, sh.ShardCount())
		}
		for _, q := range shardedTestQueries {
			sameAnswers(t, q, sh.Query(q), mono.Query(q))
			mb, err1 := mono.QueryBackend(q, "bm25")
			sb, err2 := sh.QueryBackend(q, "bm25")
			if err1 != nil || err2 != nil {
				t.Fatalf("bm25: %v / %v", err1, err2)
			}
			sameAnswers(t, "bm25 "+q, sb, mb)
		}
	}
	// WithShards(1) and WithShards(0) stay monolithic
	for _, n := range []int{0, 1} {
		a := New(WithShards(n)).BuildFromSentences(g.Doc, g.Sentences)
		if a.ShardCount() != 1 {
			t.Fatalf("WithShards(%d) ShardCount = %d, want 1", n, a.ShardCount())
		}
	}
}

// TestShardedSaveLoadRoundTrip: the v2 snapshot persists the shard layout —
// a loaded advisor has the same shard count and bit-identical answers.
func TestShardedSaveLoadRoundTrip(t *testing.T) {
	g := corpus.GenerateSized(corpus.CUDA, 180, 0.3, 37)
	orig := New(WithShards(4)).BuildFromSentences(g.Doc, g.Sentences)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAdvisor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ShardCount() != 4 {
		t.Fatalf("loaded ShardCount = %d, want 4", loaded.ShardCount())
	}
	for _, q := range shardedTestQueries {
		sameAnswers(t, q, loaded.Query(q), orig.Query(q))
	}
	// identity survives, so a loaded snapshot is a valid incremental base
	oid, lid := orig.SentenceIDs(), loaded.SentenceIDs()
	for i := range oid {
		if oid[i] != lid[i] {
			t.Fatalf("sentence %d ID %q vs %q", i, lid[i], oid[i])
		}
	}
}

// TestV1SnapshotLoadsMonolithic pins forward compatibility: a version-1
// stream (no Shards field — gob leaves it zero) must load as a single-shard
// advisor, not be rejected by the version gate.
func TestV1SnapshotLoadsMonolithic(t *testing.T) {
	g := corpus.GenerateSized(corpus.CUDA, 120, 0.3, 41)
	fresh := New().BuildFromSentences(g.Doc, g.Sentences)
	snap := advisorSnapshot{
		Version:   1,
		Threshold: 0.15,
		Title:     g.Doc.Title,
		Sections:  g.Doc.Sections,
		Advising:  fresh.Rules(),
	}
	for _, s := range g.Sentences {
		snap.Sentences = append(snap.Sentences, htmldoc.Sentence{Text: s.Text, Section: s.Section})
		snap.Terms = append(snap.Terms, textproc.NormalizeTerms(s.Text))
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAdvisor(&buf)
	if err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	if loaded.ShardCount() != 1 {
		t.Fatalf("v1 snapshot ShardCount = %d, want 1", loaded.ShardCount())
	}
	for _, q := range shardedTestQueries {
		sameAnswers(t, q, loaded.Query(q), fresh.Query(q))
	}
}

// TestShardedUpdatePreservesLayout: an incremental update of a sharded
// advisor keeps the shard layout and answers bit-identically to a cold
// sharded build of the new corpus — the update path's Rebuild goes through
// the same global-stats pipeline as the cold build.
func TestShardedUpdatePreservesLayout(t *testing.T) {
	const nShards = 4
	fw := New(WithShards(nShards))
	g := corpus.GenerateSized(corpus.CUDA, 150, 0.3, 43)
	adv := fw.BuildFromSentences(g.Doc, g.Sentences)

	// three chained edits: drop a prefix, drop a suffix, append fresh
	// sentences from a differently-seeded guide
	g2 := corpus.GenerateSized(corpus.CUDA, 150, 0.3, 44)
	edits := [][]htmldoc.Sentence{
		g.Sentences[10:],
		g.Sentences[10:140],
		append(append([]htmldoc.Sentence{}, g.Sentences[10:140]...), g2.Sentences[:20]...),
	}
	for step, sents := range edits {
		next, err := fw.UpdateFromSentences(adv, g.Doc, sents)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if next.ShardCount() != nShards {
			t.Fatalf("step %d: update dropped shards: ShardCount = %d", step, next.ShardCount())
		}
		cold := fw.BuildFromSentences(g.Doc, sents)
		for _, q := range shardedTestQueries {
			sameAnswers(t, q, next.Query(q), cold.Query(q))
		}
		adv = next
	}
}
