package core

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/htmldoc"
	"repro/internal/textproc"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g := corpus.GenerateSized(corpus.CUDA, 200, 0.25, 21)
	orig := New().BuildFromSentences(g.Doc, g.Sentences)

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAdvisor(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Stage-I output identical
	or, lr := orig.Rules(), loaded.Rules()
	if len(or) != len(lr) {
		t.Fatalf("rules: %d vs %d", len(or), len(lr))
	}
	for i := range or {
		if or[i] != lr[i] {
			t.Fatalf("rule %d differs: %+v vs %+v", i, or[i], lr[i])
		}
	}
	if orig.SentenceCount() != loaded.SentenceCount() {
		t.Error("sentence count differs")
	}
	if orig.CompressionRatio() != loaded.CompressionRatio() {
		t.Error("ratio differs")
	}

	// Stage-II answers identical (same sentences -> same index)
	for _, q := range []string{
		"how to avoid shared memory bank conflicts",
		"reduce instruction and memory latency",
		"zyzzyva nothing matches",
	} {
		oa := orig.Query(q)
		la := loaded.Query(q)
		if len(oa) != len(la) {
			t.Fatalf("query %q: %d vs %d answers", q, len(oa), len(la))
		}
		for i := range oa {
			if oa[i].Sentence.Index != la[i].Sentence.Index || !almostEq(oa[i].Score, la[i].Score) {
				t.Errorf("query %q answer %d differs", q, i)
			}
		}
	}

	// IsAdvising preserved
	for i := 0; i < orig.SentenceCount(); i++ {
		if orig.IsAdvising(i) != loaded.IsAdvising(i) {
			t.Fatalf("IsAdvising(%d) differs", i)
		}
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}

func TestSaveLoadPreservesSections(t *testing.T) {
	a := New().BuildFromHTML(miniGuide)
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAdvisor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range loaded.Rules() {
		if r.Section == "" {
			t.Errorf("loaded rule %d lost its section", i)
		}
	}
}

func TestLoadAdvisorErrors(t *testing.T) {
	if _, err := LoadAdvisor(strings.NewReader("garbage")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadAdvisor(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

// legacySentence / legacySnapshot mirror the pre-identity wire shapes (no
// Sentence.ID field). gob matches struct fields by name, so encoding them
// reproduces exactly the streams older builds wrote.
type legacySentence struct {
	Text    string
	Section int
}

type legacySnapshot struct {
	Version   int
	Threshold float64
	Title     string
	Sections  []htmldoc.Section
	Sentences []legacySentence
	Advising  []AdvisingSentence
	Terms     [][]string
}

// TestLoadLegacySnapshot pins snapshot back-compat: streams written before
// sentence identity existed (no ID field; with or without per-sentence
// Terms) must keep loading, answer identically to a fresh build, and — when
// Terms are present — come back as a valid incremental-rebuild base with the
// exact IDs a fresh extraction would stamp.
func TestLoadLegacySnapshot(t *testing.T) {
	g := corpus.GenerateSized(corpus.CUDA, 120, 0.3, 41)
	fresh := New().BuildFromSentences(g.Doc, g.Sentences)
	snap := legacySnapshot{
		Version:   1,
		Threshold: 0.15,
		Title:     g.Doc.Title,
		Sections:  g.Doc.Sections,
		Advising:  fresh.Rules(),
	}
	for _, s := range g.Sentences {
		snap.Sentences = append(snap.Sentences, legacySentence{Text: s.Text, Section: s.Section})
		snap.Terms = append(snap.Terms, textproc.NormalizeTerms(s.Text))
	}

	for _, tc := range []struct {
		name         string
		terms        [][]string
		wantIdentity bool
	}{
		{"terms_only", snap.Terms, true},
		{"no_terms", nil, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			legacy := snap
			legacy.Terms = tc.terms
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(legacy); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadAdvisor(&buf)
			if err != nil {
				t.Fatalf("legacy snapshot rejected: %v", err)
			}
			if got := loaded.HasIdentity(); got != tc.wantIdentity {
				t.Fatalf("HasIdentity = %v, want %v", got, tc.wantIdentity)
			}
			// load re-stamps the IDs a fresh extraction would assign
			fid, lid := fresh.SentenceIDs(), loaded.SentenceIDs()
			if len(fid) != len(lid) {
				t.Fatalf("%d vs %d sentence IDs", len(fid), len(lid))
			}
			for i := range fid {
				if fid[i] != lid[i] {
					t.Fatalf("sentence %d: re-stamped ID %s, fresh build has %s", i, lid[i], fid[i])
				}
			}
			lr := loaded.Rules()
			if len(lr) != len(fresh.Rules()) {
				t.Fatalf("rules: %d vs %d", len(lr), len(fresh.Rules()))
			}
			for _, q := range []string{"how to avoid shared memory bank conflicts", "reduce warp divergence"} {
				fa, la := fresh.Query(q), loaded.Query(q)
				if len(fa) != len(la) {
					t.Fatalf("query %q: %d vs %d answers", q, len(fa), len(la))
				}
				for i := range fa {
					if fa[i].Sentence.Index != la[i].Sentence.Index || !almostEq(fa[i].Score, la[i].Score) {
						t.Fatalf("query %q answer %d differs", q, i)
					}
				}
			}
		})
	}
}

func TestLoadedAdvisorAnswersReports(t *testing.T) {
	g := corpus.GenerateSized(corpus.CUDA, 200, 0.25, 21)
	orig := New().BuildFromSentences(g.Doc, g.Sentences)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAdvisor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Query("minimize divergent warps"); len(got) == 0 {
		t.Log("no answers on the small corpus; acceptable but suspicious")
	}
}
