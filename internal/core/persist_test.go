package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/corpus"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g := corpus.GenerateSized(corpus.CUDA, 200, 0.25, 21)
	orig := New().BuildFromSentences(g.Doc, g.Sentences)

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAdvisor(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Stage-I output identical
	or, lr := orig.Rules(), loaded.Rules()
	if len(or) != len(lr) {
		t.Fatalf("rules: %d vs %d", len(or), len(lr))
	}
	for i := range or {
		if or[i] != lr[i] {
			t.Fatalf("rule %d differs: %+v vs %+v", i, or[i], lr[i])
		}
	}
	if orig.SentenceCount() != loaded.SentenceCount() {
		t.Error("sentence count differs")
	}
	if orig.CompressionRatio() != loaded.CompressionRatio() {
		t.Error("ratio differs")
	}

	// Stage-II answers identical (same sentences -> same index)
	for _, q := range []string{
		"how to avoid shared memory bank conflicts",
		"reduce instruction and memory latency",
		"zyzzyva nothing matches",
	} {
		oa := orig.Query(q)
		la := loaded.Query(q)
		if len(oa) != len(la) {
			t.Fatalf("query %q: %d vs %d answers", q, len(oa), len(la))
		}
		for i := range oa {
			if oa[i].Sentence.Index != la[i].Sentence.Index || !almostEq(oa[i].Score, la[i].Score) {
				t.Errorf("query %q answer %d differs", q, i)
			}
		}
	}

	// IsAdvising preserved
	for i := 0; i < orig.SentenceCount(); i++ {
		if orig.IsAdvising(i) != loaded.IsAdvising(i) {
			t.Fatalf("IsAdvising(%d) differs", i)
		}
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}

func TestSaveLoadPreservesSections(t *testing.T) {
	a := New().BuildFromHTML(miniGuide)
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAdvisor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range loaded.Rules() {
		if r.Section == "" {
			t.Errorf("loaded rule %d lost its section", i)
		}
	}
}

func TestLoadAdvisorErrors(t *testing.T) {
	if _, err := LoadAdvisor(strings.NewReader("garbage")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadAdvisor(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestLoadedAdvisorAnswersReports(t *testing.T) {
	g := corpus.GenerateSized(corpus.CUDA, 200, 0.25, 21)
	orig := New().BuildFromSentences(g.Doc, g.Sentences)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAdvisor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Query("minimize divergent warps"); len(got) == 0 {
		t.Log("no answers on the small corpus; acceptable but suspicious")
	}
}
