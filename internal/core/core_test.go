package core

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/htmldoc"
	"repro/internal/nvvp"
	"repro/internal/selectors"
)

const miniGuide = `<html><head><title>Mini Guide</title></head><body>
<h1>1. Architecture</h1>
<p>Each multiprocessor contains eight cores. The warp size is thirty-two threads.
Shared memory is divided into banks.</p>
<h1>2. Performance</h1>
<h2>2.1. Memory</h2>
<p>Use shared memory to reduce global memory traffic. Avoid bank conflicts in
shared memory. Each bank serves one request per cycle.</p>
<h2>2.2. Control Flow</h2>
<p>To obtain best performance, the controlling condition should be written so as
to minimize the number of divergent warps. Any flow control instruction can
impact the effective instruction throughput.</p>
</body></html>`

func buildMini(t *testing.T) *Advisor {
	t.Helper()
	return New().BuildFromHTML(miniGuide)
}

func TestStageIRecognition(t *testing.T) {
	a := buildMini(t)
	rules := a.Rules()
	if len(rules) < 3 {
		t.Fatalf("only %d advising sentences: %+v", len(rules), rules)
	}
	var texts []string
	for _, r := range rules {
		texts = append(texts, r.Text)
	}
	joined := strings.Join(texts, "|")
	for _, want := range []string{"Use shared memory", "Avoid bank conflicts", "divergent warps"} {
		if !strings.Contains(joined, want) {
			t.Errorf("advising list missing %q; got %v", want, texts)
		}
	}
	for _, miss := range []string{"warp size is thirty-two", "Each bank serves"} {
		if strings.Contains(joined, miss) {
			t.Errorf("non-advising sentence selected: %q", miss)
		}
	}
}

func TestRulesCarrySectionsAndSelectors(t *testing.T) {
	a := buildMini(t)
	for _, r := range a.Rules() {
		if r.Section == "" {
			t.Errorf("rule %q has no section", r.Text)
		}
		if r.Selector == selectors.None {
			t.Errorf("rule %q has no selector", r.Text)
		}
	}
}

func TestQueryRetrievesRelevantAdvice(t *testing.T) {
	a := buildMini(t)
	answers := a.Query("how to avoid shared memory bank conflicts")
	if len(answers) == 0 {
		t.Fatal("no answers")
	}
	if !strings.Contains(answers[0].Sentence.Text, "bank conflicts") {
		t.Errorf("top answer = %q", answers[0].Sentence.Text)
	}
	for i := 1; i < len(answers); i++ {
		if answers[i].Score > answers[i-1].Score {
			t.Error("answers not sorted by score")
		}
	}
}

func TestQueryNoRelevantSentences(t *testing.T) {
	a := buildMini(t)
	if answers := a.Query("zebra migration patterns"); len(answers) != 0 {
		t.Errorf("expected no answers, got %+v", answers)
	}
}

func TestQueryOnlyReturnsAdvisingSentences(t *testing.T) {
	a := buildMini(t)
	// "warp size" matches an explanatory sentence strongly; Stage II must
	// not return it because Stage I filtered it.
	for _, ans := range a.Query("warp size threads") {
		if !a.IsAdvising(ans.Sentence.Index) {
			t.Errorf("non-advising sentence returned: %q", ans.Sentence.Text)
		}
	}
}

func TestFullDocQueryBypassesStageI(t *testing.T) {
	a := buildMini(t)
	full := a.FullDocQuery("warp size threads", 0.1)
	sawNonAdvising := false
	for _, ans := range full {
		if !a.IsAdvising(ans.Sentence.Index) {
			sawNonAdvising = true
		}
	}
	if !sawNonAdvising {
		t.Error("full-doc baseline should surface non-advising sentences")
	}
}

func TestCompressionRatio(t *testing.T) {
	a := buildMini(t)
	r := a.CompressionRatio()
	if r <= 1 {
		t.Errorf("ratio = %f, want > 1", r)
	}
	if a.SentenceCount() <= len(a.Rules()) {
		t.Error("advising should be a strict subset")
	}
}

func TestAnswerReport(t *testing.T) {
	g := corpus.Generate(corpus.CUDA, 1)
	a := New().BuildFromSentences(g.Doc, g.Sentences)
	text, err := nvvp.Synthesize("norm")
	if err != nil {
		t.Fatal(err)
	}
	report, err := nvvp.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	answers := a.AnswerReport(report)
	if len(answers) != 2 {
		t.Fatalf("%d report answers, want 2", len(answers))
	}
	for _, ra := range answers {
		if len(ra.Answers) == 0 {
			t.Errorf("issue %q got no recommendations", ra.Issue.Title)
		}
		// the paper reports 5-25 suggestions per query typically
		if len(ra.Answers) > 60 {
			t.Errorf("issue %q got %d recommendations; threshold too loose", ra.Issue.Title, len(ra.Answers))
		}
	}
}

func TestReportAnswersContainDesignatedAdvice(t *testing.T) {
	g := corpus.Generate(corpus.CUDA, 1)
	a := New().BuildFromSentences(g.Doc, g.Sentences)
	text, _ := nvvp.Synthesize("norm")
	report, _ := nvvp.Parse(text)
	answers := a.AnswerReport(report)
	// §4.1: the register-usage issue should surface the maxrregcount advice,
	// the divergence issue the thread-ID/divergent-warps advice.
	var regText, divText string
	for _, ra := range answers {
		var b strings.Builder
		for _, ans := range ra.Answers {
			b.WriteString(ans.Sentence.Text)
			b.WriteByte('|')
		}
		if strings.Contains(ra.Issue.Title, "Register") {
			regText = b.String()
		} else {
			divText = b.String()
		}
	}
	if !strings.Contains(regText, "maxrregcount") {
		t.Error("register-usage issue did not retrieve the maxrregcount advice")
	}
	if !strings.Contains(divText, "divergent warps") {
		t.Error("divergence issue did not retrieve the divergent-warps advice")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	g := corpus.GenerateSized(corpus.CUDA, 150, 0.2, 9)
	serial := New(WithParallelism(1)).BuildFromSentences(g.Doc, g.Sentences)
	parallel := New(WithParallelism(8)).BuildFromSentences(g.Doc, g.Sentences)
	sr, pr := serial.Rules(), parallel.Rules()
	if len(sr) != len(pr) {
		t.Fatalf("serial %d rules, parallel %d", len(sr), len(pr))
	}
	for i := range sr {
		if sr[i] != pr[i] {
			t.Fatalf("rule %d differs: %+v vs %+v", i, sr[i], pr[i])
		}
	}
}

func TestWithThreshold(t *testing.T) {
	g := corpus.GenerateSized(corpus.CUDA, 150, 0.2, 9)
	loose := New(WithThreshold(0.05)).BuildFromSentences(g.Doc, g.Sentences)
	tight := New(WithThreshold(0.5)).BuildFromSentences(g.Doc, g.Sentences)
	q := "minimize divergent warps in control flow"
	if len(loose.Query(q)) < len(tight.Query(q)) {
		t.Error("lower threshold must not return fewer answers")
	}
}

func TestWithConfig(t *testing.T) {
	cfg := selectors.DefaultConfig()
	cfg.FlaggingWords = append(cfg.FlaggingWords, "zgyx marker")
	f := New(WithConfig(cfg))
	doc := htmldoc.Parse("<p>The zgyx marker appears in this sentence. Plain fact here.</p>")
	a := f.BuildFromDocument(doc)
	if len(a.Rules()) != 1 {
		t.Errorf("custom keyword not honored: %+v", a.Rules())
	}
	if got := f.Config().FlaggingWords; len(got) != len(cfg.FlaggingWords) {
		t.Error("config not retained")
	}
}

func TestContextOf(t *testing.T) {
	a := buildMini(t)
	answers := a.Query("how to avoid shared memory bank conflicts")
	if len(answers) == 0 {
		t.Fatal("no answers")
	}
	ctx := a.ContextOf(answers[0])
	for _, c := range ctx {
		if c.Index == answers[0].Sentence.Index {
			t.Error("context includes the answer itself")
		}
		if c.Section != answers[0].Sentence.Section {
			t.Error("context crosses sections")
		}
	}
}

func TestBuildStats(t *testing.T) {
	a := buildMini(t)
	st := a.BuildStats()
	if st.Sentences != a.SentenceCount() {
		t.Errorf("stats sentences %d", st.Sentences)
	}
	if st.Advising != len(a.Rules()) {
		t.Errorf("stats advising %d vs %d rules", st.Advising, len(a.Rules()))
	}
	total := 0
	for sel, n := range st.BySelector {
		if sel == selectors.None {
			t.Error("None selector counted")
		}
		total += n
	}
	if total != st.Advising {
		t.Errorf("selector counts sum %d != advising %d", total, st.Advising)
	}
	if st.StageI <= 0 || st.Indexing < 0 {
		t.Errorf("timings: %+v", st)
	}
	// defensive copy: mutating the returned map must not affect the advisor
	st.BySelector[selectors.Keyword] = 9999
	if a.BuildStats().BySelector[selectors.Keyword] == 9999 {
		t.Error("BuildStats map not copied")
	}
}

func TestEmptyDocument(t *testing.T) {
	a := New().BuildFromHTML("")
	if a.SentenceCount() != 0 || len(a.Rules()) != 0 {
		t.Error("empty document should produce an empty advisor")
	}
	if got := a.Query("anything"); len(got) != 0 {
		t.Error("empty advisor answered")
	}
	if a.CompressionRatio() != 0 {
		t.Error("empty ratio")
	}
	if a.IsAdvising(0) || a.IsAdvising(-1) {
		t.Error("IsAdvising out of range")
	}
}

func BenchmarkBuildAdvisor150(b *testing.B) {
	g := corpus.GenerateSized(corpus.CUDA, 150, 0.2, 9)
	f := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.BuildFromSentences(g.Doc, g.Sentences)
	}
}

func BenchmarkAdvisorQuery(b *testing.B) {
	g := corpus.GenerateSized(corpus.CUDA, 300, 0.2, 9)
	a := New().BuildFromSentences(g.Doc, g.Sentences)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Query("minimize divergent warps in control flow")
	}
}
