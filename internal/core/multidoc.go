package core

import (
	"fmt"

	"repro/internal/htmldoc"
)

// BuildFromDocuments synthesizes one advisor over several documents — the
// paper's framing is "providing Egeria with a programming guide or other
// related documents" (plural). Sections are prefixed with their document's
// title so rule provenance stays visible, and the TF-IDF statistics span the
// whole combined corpus.
func (f *Framework) BuildFromDocuments(docs ...*htmldoc.Document) *Advisor {
	merged := &htmldoc.Document{}
	var sents []htmldoc.Sentence
	for di, doc := range docs {
		if doc == nil {
			continue
		}
		if merged.Title == "" {
			merged.Title = doc.Title
		} else {
			merged.Title += " + " + doc.Title
		}
		base := len(merged.Sections)
		for _, sec := range doc.Sections {
			prefixed := sec
			if len(docs) > 1 && doc.Title != "" {
				prefixed.Title = fmt.Sprintf("%s — %s", doc.Title, sec.Title)
			}
			merged.Sections = append(merged.Sections, prefixed)
		}
		for _, s := range doc.Sentences() {
			sents = append(sents, htmldoc.Sentence{Text: s.Text, Section: base + s.Section})
		}
		_ = di
	}
	return f.BuildFromSentences(merged, sents)
}

// RuleChange classifies one rule's fate between two advisor versions.
type RuleChange int

// Rule diff outcomes.
const (
	RuleKept RuleChange = iota
	RuleAdded
	RuleRemoved
)

// RuleDiffEntry is one advising sentence that appears in, disappeared from,
// or survived a document update.
type RuleDiffEntry struct {
	Change   RuleChange
	Sentence AdvisingSentence // from the new advisor for kept/added, old for removed
}

// RulesDiff summarizes how the extracted advice changed across two versions
// of a document — the maintenance story behind the paper's motivation that
// guides are "rapidly changing" and hard to keep up with.
type RulesDiff struct {
	Kept    []RuleDiffEntry
	Added   []RuleDiffEntry
	Removed []RuleDiffEntry
}

// DiffRules compares the Stage-I output of two advisors by sentence text.
func DiffRules(old, new *Advisor) RulesDiff {
	oldSet := make(map[string]AdvisingSentence, len(old.advising))
	for _, r := range old.Rules() {
		oldSet[r.Text] = r
	}
	var d RulesDiff
	seen := map[string]bool{}
	for _, r := range new.Rules() {
		if _, ok := oldSet[r.Text]; ok {
			d.Kept = append(d.Kept, RuleDiffEntry{Change: RuleKept, Sentence: r})
		} else {
			d.Added = append(d.Added, RuleDiffEntry{Change: RuleAdded, Sentence: r})
		}
		seen[r.Text] = true
	}
	for _, r := range old.Rules() {
		if !seen[r.Text] {
			d.Removed = append(d.Removed, RuleDiffEntry{Change: RuleRemoved, Sentence: r})
		}
	}
	return d
}

// Summary renders the diff counts.
func (d RulesDiff) Summary() string {
	return fmt.Sprintf("%d kept, %d added, %d removed",
		len(d.Kept), len(d.Added), len(d.Removed))
}

// Short renders only the churn — the form a registry hot-swap log line wants
// ("reloaded cuda: 3 added, 1 removed").
func (d RulesDiff) Short() string {
	return fmt.Sprintf("%d added, %d removed", len(d.Added), len(d.Removed))
}
