package core

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/nlp"
	"repro/internal/vsm"
)

// TestBuildPipelineEquivalence verifies the staged annotate->classify->index
// build end to end against the unshared reference path: per-sentence
// Classify decisions must match the built advisor's rule set exactly, and
// the advisor's index must score queries bit-identically to a vsm.Build
// over the raw texts.
func TestBuildPipelineEquivalence(t *testing.T) {
	for _, reg := range []corpus.Register{corpus.CUDA, corpus.OpenCL, corpus.XeonPhi} {
		g := corpus.Generate(reg, 1)
		fw := New()
		adv := fw.BuildFromSentences(g.Doc, g.Sentences)

		// Stage-I decisions: rule-by-rule against the string path
		rec := fw.Recognizer()
		wantAdv := 0
		for i, s := range g.Sentences {
			res := rec.Classify(s.Text)
			if res.Advising {
				wantAdv++
			}
			if adv.IsAdvising(i) != res.Advising {
				t.Errorf("%v sentence %d: advisor says %v, Classify says %v\n%q",
					reg, i, adv.IsAdvising(i), res.Advising, s.Text)
			}
		}
		if got := len(adv.Rules()); got != wantAdv {
			t.Errorf("%v: %d rules, reference path selects %d", reg, got, wantAdv)
		}
		for _, r := range adv.Rules() {
			if res := rec.Classify(r.Text); r.Selector != res.Selector {
				t.Errorf("%v rule %d: selector %v, reference %v", reg, r.Index, r.Selector, res.Selector)
			}
		}

		// Stage-II index: bit-exact against vsm.Build on the raw texts
		ref := vsm.Build(g.Texts())
		for _, q := range []string{
			"reduce instruction and memory latency",
			"avoid shared memory bank conflicts",
			"overlap transfers with execution",
		} {
			want := ref.QueryAll(q)
			got := adv.index.QueryAll(q)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%v query %q doc %d: %v vs %v (must be bit-identical)",
						reg, q, i, got[i], want[i])
				}
			}
		}
	}
}

// TestBuildStatsStages checks that the per-stage timings are populated and
// consistent (StageI is the sum of its two sub-stages).
func TestBuildStatsStages(t *testing.T) {
	g := corpus.GenerateSized(corpus.CUDA, 120, 0.25, 3)
	st := New().BuildFromSentences(g.Doc, g.Sentences).BuildStats()
	if st.Annotate <= 0 {
		t.Errorf("Annotate stage not timed: %v", st.Annotate)
	}
	if st.Classify <= 0 {
		t.Errorf("Classify stage not timed: %v", st.Classify)
	}
	if st.Indexing <= 0 {
		t.Errorf("Indexing stage not timed: %v", st.Indexing)
	}
	if st.StageI != st.Annotate+st.Classify {
		t.Errorf("StageI %v != Annotate %v + Classify %v", st.StageI, st.Annotate, st.Classify)
	}
}

// TestQueryTermsEquivalence verifies the terms-fed query path answers
// exactly like the string path.
func TestQueryTermsEquivalence(t *testing.T) {
	g := corpus.GenerateSized(corpus.CUDA, 150, 0.3, 5)
	adv := New().BuildFromSentences(g.Doc, g.Sentences)
	for _, q := range []string{
		"minimize divergent warps caused by control flow",
		"coalesce global memory accesses",
	} {
		viaString := adv.Query(q)
		viaTerms := adv.QueryTerms(nlp.QueryTerms(q))
		if len(viaString) != len(viaTerms) {
			t.Fatalf("query %q: %d vs %d answers", q, len(viaString), len(viaTerms))
		}
		for i := range viaString {
			if viaString[i] != viaTerms[i] {
				t.Fatalf("query %q answer %d: %+v vs %+v", q, i, viaString[i], viaTerms[i])
			}
		}
	}
}

// TestContextOfUnknownSection pins the fix for advisors built from bare
// sentences: with no section structure every rule has Section == "", and
// ContextOf must return nothing rather than the entire rule list.
func TestContextOfUnknownSection(t *testing.T) {
	g := corpus.GenerateSized(corpus.CUDA, 80, 0.4, 21)
	adv := New().BuildFromSentences(nil, g.Sentences) // bare: no document
	if len(adv.Rules()) < 2 {
		t.Skip("corpus produced fewer than 2 rules")
	}
	ans := Answer{Sentence: adv.Rules()[0], Score: 1}
	if ans.Sentence.Section != "" {
		t.Fatalf("bare-sentence rule unexpectedly has section %q", ans.Sentence.Section)
	}
	if ctx := adv.ContextOf(ans); len(ctx) != 0 {
		t.Fatalf("ContextOf with unknown section returned %d sentences, want 0", len(ctx))
	}

	// with a real document, same-section context still works
	advDoc := New().BuildFromSentences(g.Doc, g.Sentences)
	for _, r := range advDoc.Rules() {
		if r.Section == "" {
			continue
		}
		got := advDoc.ContextOf(Answer{Sentence: r})
		for _, c := range got {
			if c.Section != r.Section {
				t.Fatalf("context sentence from section %q, want %q", c.Section, r.Section)
			}
			if c.Index == r.Index {
				t.Fatalf("context includes the answer itself")
			}
		}
	}
}
