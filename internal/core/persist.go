package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"repro/internal/htmldoc"
	"repro/internal/nlp"
	"repro/internal/selectors"
	"repro/internal/textproc"
	"repro/internal/vsm"
)

// snapshotVersion guards the on-disk format. Version 2 added the Shards
// field (sharded index layout); version-1 snapshots load as single-shard.
const snapshotVersion = 2

// advisorSnapshot is the serialized form of an Advisor. The TF-IDF index is
// rebuilt on load from the stored per-sentence term lists (deterministic and
// far cheaper than re-normalizing text); what persistence buys is skipping
// Stage I, the expensive NLP pass over the document.
//
// Sentence identities ride along inside Sentences (htmldoc.Sentence.ID is a
// gob field); gob matches fields by name, so pre-identity snapshots decode
// with empty IDs and load re-stamps them — the ID is a pure function of the
// stored section paths and texts, so a re-stamp reproduces the original.
type advisorSnapshot struct {
	Version   int
	Threshold float64
	Title     string
	Sections  []htmldoc.Section
	Sentences []htmldoc.Sentence
	Advising  []AdvisingSentence
	// Terms holds the normalized retrieval terms per sentence. Older
	// snapshots lack it; load falls back to re-normalizing the text, which
	// produces the identical index (vsm.Build is NormalizeTerms +
	// BuildFromTerms).
	Terms [][]string
	// Shards records the index partition count (version 2+). Zero or one —
	// including every version-1 snapshot, where gob leaves the field zero —
	// loads the monolithic layout; scores are identical either way.
	Shards int
}

// Save serializes the advisor so it can be reloaded without re-running
// Stage I. The format is a versioned gob stream.
func (a *Advisor) Save(w io.Writer) error {
	terms := make([][]string, len(a.sentences))
	for i, s := range a.sentences {
		// the retained annotation's terms are bit-exact with NormalizeTerms;
		// prefer them so saving doesn't re-tokenize the document
		if i < len(a.anns) && a.anns[i] != nil {
			terms[i] = a.anns[i].Terms()
		} else {
			terms[i] = textproc.NormalizeTerms(s.Text)
		}
	}
	snap := advisorSnapshot{
		Version:   snapshotVersion,
		Threshold: a.threshold,
		Sentences: a.sentences,
		Advising:  a.advising,
		Terms:     terms,
		Shards:    a.ShardCount(),
	}
	if a.doc != nil {
		snap.Title = a.doc.Title
		snap.Sections = a.doc.Sections
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("core: save advisor: %w", err)
	}
	return nil
}

// LoadAdvisor reconstructs an advisor from a Save stream, rebuilding the
// retrieval index from the stored sentences.
func LoadAdvisor(r io.Reader) (*Advisor, error) {
	var snap advisorSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: load advisor: %w", err)
	}
	if snap.Version < 1 || snap.Version > snapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d, want 1..%d", snap.Version, snapshotVersion)
	}
	if snap.Threshold <= 0 {
		return nil, fmt.Errorf("core: snapshot has invalid threshold %v", snap.Threshold)
	}
	a := &Advisor{
		sentences: snap.Sentences,
		advising:  snap.Advising,
		threshold: snap.Threshold,
		isAdv:     make([]bool, len(snap.Sentences)),
		builtAt:   time.Now(),
		stats: BuildStats{
			Sentences:  len(snap.Sentences),
			Advising:   len(snap.Advising),
			BySelector: map[selectors.SelectorID]int{},
		},
	}
	for _, adv := range snap.Advising {
		a.stats.BySelector[adv.Selector]++
	}
	if snap.Title != "" || len(snap.Sections) > 0 {
		a.doc = htmldoc.FromBlocks(snap.Title, snap.Sections)
	}
	// stamp identities for pre-identity snapshots: the ID is a function of
	// the stored section path, text, and ordinal, so re-stamping reproduces
	// exactly the IDs the original build assigned
	a.sentences = htmldoc.StampIDs(a.doc, a.sentences)
	a.ids = htmldoc.IDsOf(a.sentences)
	for _, adv := range snap.Advising {
		if adv.Index < 0 || adv.Index >= len(a.isAdv) {
			return nil, fmt.Errorf("core: snapshot advising index %d out of range", adv.Index)
		}
		a.isAdv[adv.Index] = true
	}
	if len(snap.Terms) > 0 {
		if len(snap.Terms) != len(snap.Sentences) {
			return nil, fmt.Errorf("core: snapshot has %d term lists for %d sentences",
				len(snap.Terms), len(snap.Sentences))
		}
		// term-only annotations make the loaded advisor a valid incremental
		// base: a warm-started source can still take the differential path
		a.anns = make([]*nlp.Annotation, len(a.sentences))
		for i, s := range a.sentences {
			a.anns[i] = nlp.FromSavedTerms(s.Text, snap.Terms[i])
		}
		if snap.Shards > 1 {
			a.index = vsm.BuildShardedFromTerms(snap.Terms, a.ids, snap.Shards)
		} else {
			a.index = vsm.BuildFromTerms(snap.Terms)
		}
		return a, nil
	}
	// no stored terms: the annotations are gone and rebuilding them here
	// would re-run the NLP pass Save exists to skip — leave anns nil
	// (HasIdentity false) so updates from this advisor take the full path
	texts := make([]string, len(snap.Sentences))
	for i, s := range snap.Sentences {
		texts[i] = s.Text
	}
	a.index = vsm.Build(texts)
	return a, nil
}
