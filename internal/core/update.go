package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/doc"
	"repro/internal/htmldoc"
	"repro/internal/nlp"
	"repro/internal/obs"
	"repro/internal/selectors"
	"repro/internal/vsm"
)

// Incremental-build observability, alongside the core_build_* metrics: how
// many incremental updates ran and how many sentence annotations they reused
// instead of recomputing.
var (
	updatesTotal        = obs.Default().Counter("core_updates_total")
	updateReusedTotal   = obs.Default().Counter("core_update_sentences_reused_total")
	updateAnnotateMicro = obs.Default().Histogram("core_update_annotate_micros")
)

// ErrCannotUpdate reports that the previous advisor does not retain the
// per-sentence identity state an incremental rebuild needs (see
// Advisor.HasIdentity); the caller should fall back to a full build.
var ErrCannotUpdate = errors.New("core: previous advisor lacks sentence identity state; full rebuild required")

// UpdateFromSentences synthesizes an advisor for a new version of a document
// by reusing the previous version's per-sentence work. See
// UpdateFromSentencesCtx.
func (f *Framework) UpdateFromSentences(prev *Advisor, d *htmldoc.Document, sents []htmldoc.Sentence) (*Advisor, error) {
	return f.UpdateFromSentencesCtx(context.Background(), prev, d, sents)
}

// UpdateFromSentencesCtx is the incremental counterpart of
// BuildFromSentencesCtx: it diffs the new sentence list against prev by
// stable identity (internal/doc) and re-runs Stage I — annotation and
// selector classification — only over the Added sentences, splicing prev's
// annotations and classifications for the Kept ones. The TF-IDF index is
// rebuilt through vsm.Rebuild, which recomputes every corpus-wide statistic
// (document frequencies, IDF, weights, postings) but reuses the kept
// sentences' term counts.
//
// The result is indistinguishable from a full build of the same sentences:
// identical rules and Float64bits-identical retrieval scores under every
// backend (the eval suite's incremental≡full test enforces this). Only
// BuildStats differs — Reused reports how many sentences carried over.
//
// Returns ErrCannotUpdate when prev does not retain identity state (e.g. an
// advisor loaded from a pre-identity snapshot); callers then fall back to a
// full build. prev is never mutated: its annotations and index-side term
// counts are shared with the new advisor, but both treat them as immutable.
func (f *Framework) UpdateFromSentencesCtx(ctx context.Context, prev *Advisor, d *htmldoc.Document, sents []htmldoc.Sentence) (*Advisor, error) {
	if prev == nil || !prev.HasIdentity() {
		return nil, ErrCannotUpdate
	}
	updateSpan := obs.SpanFrom(ctx).StartChild("core.update")
	if updateSpan != nil {
		updateSpan.SetAttrInt("sentences", len(sents))
		ctx = obs.ContextWithSpan(ctx, updateSpan)
		defer updateSpan.Finish()
	}
	sents = htmldoc.StampIDs(d, sents)
	newIDs := htmldoc.IDsOf(sents)
	diffs := doc.Diff(prev.ids, newIDs)

	a := &Advisor{
		name:      prev.name,
		doc:       d,
		sentences: sents,
		ids:       newIDs,
		isAdv:     make([]bool, len(sents)),
		threshold: f.threshold,
		builtAt:   time.Now(),
		stats: BuildStats{
			Sentences:  len(sents),
			Reused:     len(diffs.Kept),
			BySelector: map[selectors.SelectorID]int{},
		},
	}

	// stage 1: annotate only the Added sentences. The cache is seeded with
	// every annotation of the previous version, so the kept sentences (and
	// any sentence that merely moved) are served from it.
	texts := make([]string, len(sents))
	for i, s := range sents {
		texts[i] = s.Text
	}
	cache := nlp.NewAnnotationCache()
	for i, id := range prev.ids {
		cache.Put(id, prev.anns[i])
	}
	start := time.Now()
	anns, reused := f.annotator.AnnotateAllCachedCtx(ctx, newIDs, texts, cache)
	a.anns = anns
	a.stats.Annotate = time.Since(start)
	updateAnnotateMicro.ObserveDuration(a.stats.Annotate)
	if reused < len(diffs.Kept) {
		// cannot happen: every kept ID was seeded above
		return nil, fmt.Errorf("core: incremental update reused %d annotations for %d kept sentences", reused, len(diffs.Kept))
	}

	// stage 2: classify only the Added sentences; kept sentences inherit the
	// previous version's Stage-I decision (the selectors are pure functions
	// of one sentence's annotation and the framework's immutable config, so
	// the decision cannot have changed).
	prevSel := make([]selectors.SelectorID, len(prev.ids))
	for _, adv := range prev.advising {
		prevSel[adv.Index] = adv.Selector
	}
	start = time.Now()
	classifySpan := obs.SpanFrom(ctx).StartChild("classify")
	addedAnns := make([]*nlp.Annotation, len(diffs.Added))
	for k, j := range diffs.Added {
		addedAnns[k] = anns[j]
	}
	addedResults := f.classifyAnnotated(addedAnns)
	results := make([]selectors.Result, len(sents))
	for _, kp := range diffs.Kept {
		if prev.isAdv[kp.Old] {
			results[kp.New] = selectors.Result{Advising: true, Selector: prevSel[kp.Old]}
		}
	}
	for k, j := range diffs.Added {
		results[j] = addedResults[k]
	}
	classifySpan.Finish()
	a.stats.Classify = time.Since(start)
	a.stats.StageI = a.stats.Annotate + a.stats.Classify

	for i, res := range results {
		if !res.Advising {
			continue
		}
		a.isAdv[i] = true
		a.stats.BySelector[res.Selector]++
		section := ""
		if d != nil && sents[i].Section >= 0 && sents[i].Section < len(d.Sections) {
			section = d.Sections[sents[i].Section].Path()
		}
		a.advising = append(a.advising, AdvisingSentence{
			Index:    i,
			Text:     sents[i].Text,
			Section:  section,
			Selector: res.Selector,
		})
	}
	a.stats.Advising = len(a.advising)

	// stage 3: differential index rebuild — corpus-wide statistics are
	// recomputed (one edit can shift every IDF), per-sentence term counts
	// are reused for the kept sentences.
	start = time.Now()
	indexSpan := obs.SpanFrom(ctx).StartChild("index")
	added := make([]vsm.AddedDoc, len(diffs.Added))
	for k, j := range diffs.Added {
		added[k] = vsm.AddedDoc{Pos: j, Terms: anns[j].Terms(), ID: newIDs[j]}
	}
	index, err := prev.index.RebuildRetriever(diffs.Kept, added)
	indexSpan.Finish()
	if err != nil {
		return nil, fmt.Errorf("core: incremental index rebuild: %w", err)
	}
	a.index = index
	a.stats.Indexing = time.Since(start)

	updatesTotal.Inc()
	updateReusedTotal.Add(int64(len(diffs.Kept)))
	if updateSpan != nil {
		updateSpan.SetAttrInt("kept", len(diffs.Kept))
		updateSpan.SetAttrInt("added", len(diffs.Added))
		updateSpan.SetAttrInt("removed", len(diffs.Removed))
		updateSpan.SetAttrInt("advising", len(a.advising))
	}
	return a, nil
}
