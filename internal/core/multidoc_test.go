package core

import (
	"strings"
	"testing"

	"repro/internal/htmldoc"
)

const guideA = `<html><head><title>Guide A</title></head><body>
<h1>1. Memory</h1>
<p>Use shared memory to reduce global traffic. The warp size is thirty-two
threads.</p></body></html>`

const guideB = `<html><head><title>Guide B</title></head><body>
<h1>1. Streams</h1>
<p>Overlap transfers with kernels to achieve full utilization of the bus.
Each stream owns a command queue.</p></body></html>`

func TestBuildFromDocuments(t *testing.T) {
	f := New()
	a := f.BuildFromDocuments(htmldoc.Parse(guideA), htmldoc.Parse(guideB))
	if a.SentenceCount() != 4 {
		t.Fatalf("sentence count %d", a.SentenceCount())
	}
	rules := a.Rules()
	if len(rules) != 2 {
		t.Fatalf("rules: %+v", rules)
	}
	// provenance: section paths carry the document title
	var sawA, sawB bool
	for _, r := range rules {
		if strings.Contains(r.Section, "Guide A") {
			sawA = true
		}
		if strings.Contains(r.Section, "Guide B") {
			sawB = true
		}
	}
	if !sawA || !sawB {
		t.Errorf("provenance lost: %+v", rules)
	}
	// retrieval spans both documents
	if got := a.Query("overlap transfers with streams"); len(got) == 0 {
		t.Error("combined advisor cannot answer from document B")
	}
	if got := a.Query("shared memory traffic"); len(got) == 0 {
		t.Error("combined advisor cannot answer from document A")
	}
}

func TestBuildFromDocumentsSingleKeepsSections(t *testing.T) {
	f := New()
	a := f.BuildFromDocuments(htmldoc.Parse(guideA))
	for _, r := range a.Rules() {
		if strings.Contains(r.Section, "—") {
			t.Errorf("single-doc build should not prefix sections: %q", r.Section)
		}
	}
	if a.SentenceCount() != 2 {
		t.Errorf("count %d", a.SentenceCount())
	}
}

func TestBuildFromDocumentsNil(t *testing.T) {
	f := New()
	a := f.BuildFromDocuments(nil, htmldoc.Parse(guideA))
	if a.SentenceCount() != 2 {
		t.Errorf("nil document not skipped: %d", a.SentenceCount())
	}
}

func TestDiffRules(t *testing.T) {
	f := New()
	v1 := f.BuildFromHTML(`<p>Use shared memory for the tile. Avoid bank conflicts
by padding. The warp size is thirty-two threads.</p>`)
	v2 := f.BuildFromHTML(`<p>Use shared memory for the tile. Align the base
pointer to the transaction size. The warp size is thirty-two threads.</p>`)
	d := DiffRules(v1, v2)
	if len(d.Kept) != 1 || !strings.Contains(d.Kept[0].Sentence.Text, "Use shared memory") {
		t.Errorf("kept: %+v", d.Kept)
	}
	if len(d.Added) != 1 || !strings.Contains(d.Added[0].Sentence.Text, "Align the base") {
		t.Errorf("added: %+v", d.Added)
	}
	if len(d.Removed) != 1 || !strings.Contains(d.Removed[0].Sentence.Text, "Avoid bank conflicts") {
		t.Errorf("removed: %+v", d.Removed)
	}
	if got := d.Summary(); got != "1 kept, 1 added, 1 removed" {
		t.Errorf("summary %q", got)
	}
}

func TestDiffRulesIdentical(t *testing.T) {
	f := New()
	v := f.BuildFromHTML(`<p>Avoid bank conflicts by padding.</p>`)
	d := DiffRules(v, v)
	if len(d.Added) != 0 || len(d.Removed) != 0 || len(d.Kept) != 1 {
		t.Errorf("self diff: %s", d.Summary())
	}
}
