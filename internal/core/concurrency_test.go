package core

import (
	"sync"
	"testing"

	"repro/internal/corpus"
)

// TestConcurrentQueries exercises an advisor from many goroutines at once
// (the web tool serves concurrent requests); run with -race. The advisor is
// immutable after Build, so all read paths must be safe.
func TestConcurrentQueries(t *testing.T) {
	g := corpus.GenerateSized(corpus.CUDA, 200, 0.25, 51)
	a := New().BuildFromSentences(g.Doc, g.Sentences)
	queries := []string{
		"how to avoid shared memory bank conflicts",
		"minimize divergent warps",
		"reduce instruction and memory latency",
		"overlap transfers with execution",
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q := queries[(w+i)%len(queries)]
				answers := a.Query(q)
				for _, ans := range answers {
					if !a.IsAdvising(ans.Sentence.Index) {
						errs <- "non-advising answer under concurrency"
						return
					}
				}
				_ = a.Rules()
				_ = a.CompressionRatio()
				_ = a.FullDocQuery(q, 0.2)
				_ = a.SectionOf(i % a.SentenceCount())
				_ = a.SentenceText(i % a.SentenceCount())
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestConcurrentBuilds runs several Stage-I builds in parallel sharing one
// Framework (the recognizer is shared state and must be read-only).
func TestConcurrentBuilds(t *testing.T) {
	fw := New(WithParallelism(4))
	guides := make([]*corpus.Guide, 4)
	for i := range guides {
		guides[i] = corpus.GenerateSized(corpus.CUDA, 80, 0.25, int64(60+i))
	}
	var wg sync.WaitGroup
	results := make([]*Advisor, len(guides))
	for i := range guides {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = fw.BuildFromSentences(guides[i].Doc, guides[i].Sentences)
		}(i)
	}
	wg.Wait()
	for i, a := range results {
		if a == nil || a.SentenceCount() != 80 {
			t.Errorf("build %d broken", i)
		}
	}
}
