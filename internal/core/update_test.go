package core

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/corpus"
	"repro/internal/htmldoc"
	"repro/internal/vsm"
)

// editGuide derives a new document version from a guide: one sentence
// rewritten, one inserted, one removed — a typical small documentation edit.
func editGuide(g *corpus.Guide) (*htmldoc.Document, []htmldoc.Sentence) {
	d := &htmldoc.Document{Title: g.Doc.Title, Sections: g.Doc.Sections}
	var sents []htmldoc.Sentence
	for i, s := range g.Sentences {
		switch i {
		case 3: // removed
			continue
		case 7: // rewritten (fresh identity)
			sents = append(sents, htmldoc.Sentence{
				Text: "Always coalesce global memory accesses for peak bandwidth.", Section: s.Section,
			})
		default:
			sents = append(sents, htmldoc.Sentence{Text: s.Text, Section: s.Section})
		}
	}
	sents = append(sents, htmldoc.Sentence{
		Text: "Prefer shared memory over repeated global loads.", Section: sents[len(sents)-1].Section,
	})
	return d, htmldoc.StampIDs(d, sents)
}

// assertEquivalent checks that an incrementally updated advisor is
// indistinguishable from a full build of the same sentences: identical
// rules and Float64bits-identical scores under both backends.
func assertEquivalent(t *testing.T, inc, full *Advisor) {
	t.Helper()
	ri, rf := inc.Rules(), full.Rules()
	if len(ri) != len(rf) {
		t.Fatalf("rules: %d incremental vs %d full", len(ri), len(rf))
	}
	for i := range rf {
		if ri[i] != rf[i] {
			t.Fatalf("rule %d: %+v vs %+v", i, ri[i], rf[i])
		}
	}
	for _, q := range corpus.CUDAQueries() {
		for _, backend := range vsm.Backends() {
			ai, err := inc.QueryBackend(q.Text, backend)
			if err != nil {
				t.Fatal(err)
			}
			af, err := full.QueryBackend(q.Text, backend)
			if err != nil {
				t.Fatal(err)
			}
			if len(ai) != len(af) {
				t.Fatalf("query %q/%s: %d vs %d answers", q.Text, backend, len(ai), len(af))
			}
			for i := range af {
				if ai[i].Sentence != af[i].Sentence ||
					math.Float64bits(ai[i].Score) != math.Float64bits(af[i].Score) {
					t.Fatalf("query %q/%s answer %d: %+v vs %+v", q.Text, backend, i, ai[i], af[i])
				}
			}
		}
	}
}

func TestUpdateEquivalentToFullBuild(t *testing.T) {
	g := corpus.GenerateSized(corpus.CUDA, 150, 0.3, 31)
	f := New()
	prev := f.BuildFromSentences(g.Doc, g.Sentences)
	d, sents := editGuide(g)

	inc, err := f.UpdateFromSentences(prev, d, sents)
	if err != nil {
		t.Fatal(err)
	}
	full := f.BuildFromSentences(d, sents)
	assertEquivalent(t, inc, full)

	stats := inc.BuildStats()
	if want := len(sents) - 2; stats.Reused != want { // rewritten + appended are new
		t.Fatalf("Reused = %d, want %d", stats.Reused, want)
	}
	if !inc.HasIdentity() {
		t.Fatal("incrementally built advisor lost identity state")
	}
}

func TestUpdateNoopEdit(t *testing.T) {
	g := corpus.GenerateSized(corpus.CUDA, 80, 0.3, 33)
	f := New()
	prev := f.BuildFromSentences(g.Doc, g.Sentences)
	inc, err := f.UpdateFromSentences(prev, g.Doc, g.Sentences)
	if err != nil {
		t.Fatal(err)
	}
	if got := inc.BuildStats().Reused; got != len(g.Sentences) {
		t.Fatalf("no-op edit reused %d of %d sentences", got, len(g.Sentences))
	}
	assertEquivalent(t, inc, prev)
}

func TestUpdateFromLoadedSnapshot(t *testing.T) {
	g := corpus.GenerateSized(corpus.CUDA, 120, 0.3, 35)
	f := New()
	orig := f.BuildFromSentences(g.Doc, g.Sentences)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	prev, err := LoadAdvisor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !prev.HasIdentity() {
		t.Fatal("warm-started advisor should retain identity state (terms snapshot)")
	}

	d, sents := editGuide(g)
	inc, err := f.UpdateFromSentences(prev, d, sents)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, inc, f.BuildFromSentences(d, sents))
}

func TestUpdateCannotUpdate(t *testing.T) {
	f := New()
	g := corpus.GenerateSized(corpus.CUDA, 40, 0.3, 37)
	if _, err := f.UpdateFromSentences(nil, g.Doc, g.Sentences); !errors.Is(err, ErrCannotUpdate) {
		t.Fatalf("nil prev: err = %v, want ErrCannotUpdate", err)
	}
	// an advisor stripped of its annotations (pre-identity snapshot without
	// terms) must refuse the incremental path
	prev := f.BuildFromSentences(g.Doc, g.Sentences)
	prev.anns = nil
	if _, err := f.UpdateFromSentences(prev, g.Doc, g.Sentences); !errors.Is(err, ErrCannotUpdate) {
		t.Fatalf("no annotations: err = %v, want ErrCannotUpdate", err)
	}
}
