package core_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

// FuzzLoadAdvisor feeds arbitrary bytes to the snapshot decoder. The
// contract under test: corrupt input of any shape — truncated gob streams,
// flipped bits, version skew, non-gob garbage — must come back as an error,
// never a panic; and anything that does decode must yield a usable advisor
// (rules enumerable, queries answerable) with internally consistent
// advising indices. The checked-in seed corpus
// (testdata/fuzz/FuzzLoadAdvisor, regenerate with `go run ./tools/fuzzseed`)
// starts the fuzzer from real snapshots and their corrupted variants.
func FuzzLoadAdvisor(f *testing.F) {
	g := corpus.GenerateSized(corpus.CUDA, 40, 0.3, 17)
	adv := core.New().BuildFromSentences(g.Doc, g.Sentences)
	var buf bytes.Buffer
	if err := adv.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("not a gob stream"))
	mutated := bytes.Clone(valid)
	mutated[len(mutated)/4] ^= 0x55
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := core.LoadAdvisor(bytes.NewReader(data))
		if err != nil {
			if a != nil {
				t.Fatal("LoadAdvisor returned both an advisor and an error")
			}
			return
		}
		// a successfully decoded snapshot must be fully usable
		rules := a.Rules()
		for i, r := range rules {
			if r.Index < 0 || r.Index >= a.SentenceCount() {
				t.Fatalf("rule %d: advising index %d outside %d sentences", i, r.Index, a.SentenceCount())
			}
			if !a.IsAdvising(r.Index) {
				t.Fatalf("rule %d: index %d not marked advising", i, r.Index)
			}
		}
		_ = a.Query("reduce global memory latency")
	})
}
