// Package core implements the Egeria framework itself: the generator of HPC
// advising tools. A Framework holds the configuration (keyword sets,
// similarity threshold, parallelism); feeding it a document synthesizes an
// Advisor — the two-stage pipeline of the paper:
//
//	Stage I  (advising sentence recognition): the five multi-layered
//	         selectors classify every sentence of the document.
//	Stage II (knowledge recommendation): a TF-IDF vector space over the
//	         document retrieves, from the Stage-I output, the advising
//	         sentences relevant to a query (natural-language text or an
//	         NVVP profiler report), using cosine similarity with the
//	         paper's 0.15 recommendation threshold.
//
// Stage I is embarrassingly parallel over sentences and fans out across
// GOMAXPROCS goroutines by default.
//
// Building is a staged annotate-once pipeline: every sentence is annotated
// exactly once (tokenize, POS-tag, parse, stem — see internal/nlp), the
// selectors classify the shared annotations, and the TF-IDF index is built
// from the annotations' term lists, so no layer re-tokenizes, re-stems or
// re-parses another layer's work.
package core

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/doc"
	"repro/internal/htmldoc"
	"repro/internal/nlp"
	"repro/internal/nvvp"
	"repro/internal/obs"
	"repro/internal/selectors"
	"repro/internal/vsm"
)

// Build observability: advisor synthesis volume and per-stage latency,
// reported into the default metrics registry (surfaced on /metricz as
// core_*). The per-stage histograms mirror BuildStats, but accumulate
// across every build the process runs.
var (
	buildsTotal   = obs.Default().Counter("core_builds_total")
	buildAnnotate = obs.Default().Histogram("core_build_annotate_micros")
	buildClassify = obs.Default().Histogram("core_build_classify_micros")
	buildIndex    = obs.Default().Histogram("core_build_index_micros")
)

// Framework is the advisor generator. The zero value is not usable; call
// New.
type Framework struct {
	cfg         selectors.Config
	recognizer  *selectors.Recognizer
	annotator   *nlp.Annotator
	threshold   float64
	parallelism int
	shards      int
}

// Option configures a Framework.
type Option func(*Framework)

// WithConfig replaces the default Table 2 keyword sets.
func WithConfig(cfg selectors.Config) Option {
	return func(f *Framework) { f.cfg = cfg }
}

// WithThreshold replaces the default 0.15 similarity threshold.
func WithThreshold(t float64) Option {
	return func(f *Framework) { f.threshold = t }
}

// WithParallelism fixes the Stage-I worker count (<=1 forces serial).
func WithParallelism(n int) Option {
	return func(f *Framework) { f.parallelism = n }
}

// WithShards partitions each advisor's Stage-II index across n shards keyed
// by stable sentence identity (<=1 keeps the monolithic index, the
// default). Sharded retrieval is Float64bits-identical to monolithic — see
// vsm.ShardedIndex — so this is purely a serving topology choice.
func WithShards(n int) Option {
	return func(f *Framework) { f.shards = n }
}

// New creates a Framework with the paper's defaults.
func New(opts ...Option) *Framework {
	f := &Framework{
		cfg:         selectors.DefaultConfig(),
		threshold:   vsm.DefaultThreshold,
		parallelism: runtime.GOMAXPROCS(0),
	}
	for _, o := range opts {
		o(f)
	}
	f.recognizer = selectors.New(f.cfg)
	f.annotator = nlp.NewAnnotator(nlp.WithParallelism(f.parallelism))
	return f
}

// Config returns the framework's keyword configuration.
func (f *Framework) Config() selectors.Config { return f.cfg }

// Recognizer exposes the compiled Stage-I recognizer (used by the
// experiment harness for per-selector ablations).
func (f *Framework) Recognizer() *selectors.Recognizer { return f.recognizer }

// AdvisingSentence is one Stage-I result.
type AdvisingSentence struct {
	Index    int // sentence index within the source document
	Text     string
	Section  string // section path ("5.4.2. Control Flow Instructions")
	Selector selectors.SelectorID
}

// BuildStats describes what the build pipeline did to a document, with
// per-stage timings for the three stages of the annotate-once pipeline.
type BuildStats struct {
	Sentences  int
	Advising   int
	Reused     int // sentences whose annotation+classification carried over (incremental builds)
	BySelector map[selectors.SelectorID]int
	Annotate   time.Duration // annotation time (tokenize, tag, parse, stem)
	Classify   time.Duration // selector time over the shared annotations
	StageI     time.Duration // total recognition time (Annotate + Classify)
	Indexing   time.Duration // TF-IDF index construction time
}

// Advisor is a synthesized advising tool for one document.
type Advisor struct {
	name      string // registry name ("cuda"); set via SetName
	builtAt   time.Time
	doc       *htmldoc.Document
	sentences []htmldoc.Sentence
	ids       []doc.SentenceID  // per-sentence stable identities (aligned with sentences)
	anns      []*nlp.Annotation // per-sentence annotations, retained for incremental rebuilds
	advising  []AdvisingSentence
	isAdv     []bool        // per sentence index
	index     vsm.Retriever // monolithic vsm.Index or vsm.ShardedIndex
	threshold float64
	stats     BuildStats
}

// Name returns the advisor's registry name ("" until SetName).
func (a *Advisor) Name() string { return a.name }

// SetName labels the advisor for serving registries and logs.
func (a *Advisor) SetName(name string) { a.name = name }

// BuiltAt returns when the advisor was synthesized (or loaded).
func (a *Advisor) BuiltAt() time.Time { return a.builtAt }

// Title returns the source document's title ("" when the advisor was built
// from bare sentences).
func (a *Advisor) Title() string {
	if a.doc == nil {
		return ""
	}
	return a.doc.Title
}

// BuildFromHTML synthesizes an advisor from a raw HTML guide.
func (f *Framework) BuildFromHTML(html string) *Advisor {
	doc := htmldoc.Parse(html)
	return f.BuildFromDocument(doc)
}

// BuildFromDocument synthesizes an advisor from a loaded document.
func (f *Framework) BuildFromDocument(doc *htmldoc.Document) *Advisor {
	return f.BuildFromSentences(doc, doc.Sentences())
}

// BuildFromSentences synthesizes an advisor from pre-split sentences (the
// path used by the synthetic corpora, whose ground-truth labels align with
// exactly these sentence boundaries). doc may be nil.
//
// The build is a three-stage annotate-once pipeline: (1) annotate every
// sentence in parallel, (2) classify the shared annotations, (3) build the
// TF-IDF index from the annotations' term lists. The index is bit-exact
// with one built from the raw texts (the annotation terms equal
// textproc.NormalizeTerms), but tokenization and stemming run once per
// sentence instead of twice.
func (f *Framework) BuildFromSentences(doc *htmldoc.Document, sents []htmldoc.Sentence) *Advisor {
	return f.BuildFromSentencesCtx(context.Background(), doc, sents)
}

// BuildFromSentencesCtx is BuildFromSentences under a trace: when ctx
// carries a sampled span, the three pipeline stages are recorded as
// annotate/classify/index child spans of a "core.build" span. The same
// stage timings also feed BuildStats and the core_build_* histograms.
func (f *Framework) BuildFromSentencesCtx(ctx context.Context, doc *htmldoc.Document, sents []htmldoc.Sentence) *Advisor {
	buildSpan := obs.SpanFrom(ctx).StartChild("core.build")
	if buildSpan != nil {
		buildSpan.SetAttrInt("sentences", len(sents))
		ctx = obs.ContextWithSpan(ctx, buildSpan)
		defer buildSpan.Finish()
	}
	sents = htmldoc.StampIDs(doc, sents)
	a := &Advisor{
		doc:       doc,
		sentences: sents,
		ids:       htmldoc.IDsOf(sents),
		isAdv:     make([]bool, len(sents)),
		threshold: f.threshold,
		builtAt:   time.Now(),
		stats: BuildStats{
			Sentences:  len(sents),
			BySelector: map[selectors.SelectorID]int{},
		},
	}
	texts := make([]string, len(sents))
	for i, s := range sents {
		texts[i] = s.Text
	}

	// stage 1: annotate (tokenize, tag, parse, stem) each sentence once
	start := time.Now()
	anns := f.annotator.AnnotateAllCtx(ctx, texts)
	a.anns = anns
	a.stats.Annotate = time.Since(start)
	buildAnnotate.ObserveDuration(a.stats.Annotate)

	// stage 2: classify the shared annotations
	start = time.Now()
	classifySpan := obs.SpanFrom(ctx).StartChild("classify")
	results := f.classifyAnnotated(anns)
	classifySpan.Finish()
	a.stats.Classify = time.Since(start)
	buildClassify.ObserveDuration(a.stats.Classify)
	a.stats.StageI = a.stats.Annotate + a.stats.Classify

	for i, res := range results {
		if !res.Advising {
			continue
		}
		a.isAdv[i] = true
		a.stats.BySelector[res.Selector]++
		section := ""
		if doc != nil && sents[i].Section >= 0 && sents[i].Section < len(doc.Sections) {
			section = doc.Sections[sents[i].Section].Path()
		}
		a.advising = append(a.advising, AdvisingSentence{
			Index:    i,
			Text:     sents[i].Text,
			Section:  section,
			Selector: res.Selector,
		})
	}
	a.stats.Advising = len(a.advising)

	// stage 3: the TF-IDF model is built over the whole document (as the
	// artifact describes) so term weights reflect corpus-wide statistics;
	// Stage II then restricts matches to the advising subset. The term
	// lists come from the annotations, so the text is not re-tokenized.
	start = time.Now()
	indexSpan := obs.SpanFrom(ctx).StartChild("index")
	terms := make([][]string, len(anns))
	for i, an := range anns {
		terms[i] = an.Terms()
	}
	if f.shards > 1 {
		a.index = vsm.BuildShardedFromTerms(terms, a.ids, f.shards)
	} else {
		a.index = vsm.BuildFromTerms(terms)
	}
	indexSpan.Finish()
	a.stats.Indexing = time.Since(start)
	buildIndex.ObserveDuration(a.stats.Indexing)
	buildsTotal.Inc()
	if buildSpan != nil {
		buildSpan.SetAttrInt("advising", len(a.advising))
	}
	return a
}

// BuildStats returns the Stage-I statistics recorded at build time. A loaded
// advisor (LoadAdvisor) reconstructs counts but not timings.
func (a *Advisor) BuildStats() BuildStats {
	// defensive copy of the map
	out := a.stats
	out.BySelector = make(map[selectors.SelectorID]int, len(a.stats.BySelector))
	for k, v := range a.stats.BySelector {
		out.BySelector[k] = v
	}
	return out
}

// classifyAnnotated runs the selectors over all annotations, parallel
// across workers. Work is distributed by an atomic counter rather than a
// pre-filled channel: claiming an index is one atomic add instead of a
// channel receive, and no O(n) channel fill precedes the fan-out.
func (f *Framework) classifyAnnotated(anns []*nlp.Annotation) []selectors.Result {
	n := len(anns)
	out := make([]selectors.Result, n)
	workers := f.parallelism
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i, an := range anns {
			out[i] = f.recognizer.ClassifyAnnotated(an)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = f.recognizer.ClassifyAnnotated(anns[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// Rules returns the Stage-I output: the concise list of advising sentences
// extracted from the document (what the tool's front page shows).
func (a *Advisor) Rules() []AdvisingSentence { return a.advising }

// SentenceIDs returns the stable identity of every sentence, aligned with
// document order — the left-hand side of doc.Diff when this advisor is the
// previous version of a document.
func (a *Advisor) SentenceIDs() []doc.SentenceID { return a.ids }

// HasIdentity reports whether the advisor retains enough per-sentence state
// to serve as the base of an incremental rebuild: a stamped identity and an
// annotation (at least term-only, see nlp.FromSavedTerms) for every
// sentence. Freshly built advisors always do; advisors loaded from
// pre-identity snapshots without term lists do not, and updates from them
// fall back to a full build.
func (a *Advisor) HasIdentity() bool {
	if len(a.ids) != len(a.sentences) || len(a.anns) != len(a.sentences) {
		return false
	}
	for i := range a.sentences {
		if a.ids[i] == "" || a.anns[i] == nil {
			return false
		}
	}
	return true
}

// SentenceCount returns the document's total sentence count.
func (a *Advisor) SentenceCount() int { return len(a.sentences) }

// ShardCount reports how many partitions the advisor's Stage-II index has
// (1 for the monolithic layout).
func (a *Advisor) ShardCount() int {
	if a.index == nil {
		return 1
	}
	return a.index.ShardCount()
}

// IsAdvising reports Stage I's decision for sentence i.
func (a *Advisor) IsAdvising(i int) bool {
	return i >= 0 && i < len(a.isAdv) && a.isAdv[i]
}

// SentenceText returns the text of sentence i ("" when out of range).
func (a *Advisor) SentenceText(i int) string {
	if i < 0 || i >= len(a.sentences) {
		return ""
	}
	return a.sentences[i].Text
}

// SectionOf returns the section path of sentence i ("" when unknown).
func (a *Advisor) SectionOf(i int) string {
	if a.doc == nil || i < 0 || i >= len(a.sentences) {
		return ""
	}
	si := a.sentences[i].Section
	if si < 0 || si >= len(a.doc.Sections) {
		return ""
	}
	return a.doc.Sections[si].Path()
}

// CompressionRatio returns total sentences / advising sentences — the
// "Ratio" column of the paper's Table 7.
func (a *Advisor) CompressionRatio() float64 {
	if len(a.advising) == 0 {
		return 0
	}
	return float64(len(a.sentences)) / float64(len(a.advising))
}

// Answer is one Stage-II recommendation.
type Answer struct {
	Sentence AdvisingSentence
	Score    float64
}

// Query answers a natural-language query with the relevant advising
// sentences at the framework's threshold, best first. An empty result
// corresponds to the tool's "No relevant sentences found".
func (a *Advisor) Query(q string) []Answer {
	return a.QueryWithThreshold(q, a.threshold)
}

// QueryWithThreshold is Query with an explicit similarity threshold.
func (a *Advisor) QueryWithThreshold(q string, threshold float64) []Answer {
	return a.QueryTermsWithThreshold(nlp.QueryTerms(q), threshold)
}

// QueryTerms answers a pre-normalized query term list at the framework's
// threshold — the annotation-fed path: a serving layer that already
// normalized the query (for cache keying, say) passes the terms straight
// through instead of having retrieval re-tokenize the text.
func (a *Advisor) QueryTerms(terms []string) []Answer {
	return a.QueryTermsWithThreshold(terms, a.threshold)
}

// QueryTermsWithThreshold is QueryTerms with an explicit threshold.
func (a *Advisor) QueryTermsWithThreshold(terms []string, threshold float64) []Answer {
	return a.QueryTermsWithThresholdCtx(context.Background(), terms, threshold)
}

// QueryTermsCtx is QueryTerms under a trace: when ctx carries a sampled
// span, Stage-II scoring is recorded beneath it (see vsm.QueryAllTermsCtx).
func (a *Advisor) QueryTermsCtx(ctx context.Context, terms []string) []Answer {
	return a.QueryTermsWithThresholdCtx(ctx, terms, a.threshold)
}

// QueryTermsWithThresholdCtx is the context-carrying form of
// QueryTermsWithThreshold, the path the serving layer uses so a sampled
// request's trace shows where its scoring time went. Retrieval goes through
// vsm's match form (MatchesTermsCtx) rather than the full score slice, so a
// context with pruning enabled — the default — lets the index skip
// documents that provably cannot clear the threshold; answers are
// Float64bits-identical either way.
func (a *Advisor) QueryTermsWithThresholdCtx(ctx context.Context, terms []string, threshold float64) []Answer {
	matches := a.index.MatchesTermsCtx(ctx, terms, threshold)
	var out []Answer
	for _, m := range matches {
		if adv, ok := a.advisingAt(m.Index); ok {
			out = append(out, Answer{Sentence: adv, Score: m.Score})
		}
	}
	sortAnswers(out)
	return out
}

// advisingAt returns the advising sentence at a global sentence index, if
// that sentence is advising. a.advising is sorted by ascending Index, so
// the lookup is a binary search.
func (a *Advisor) advisingAt(index int) (AdvisingSentence, bool) {
	i := sort.Search(len(a.advising), func(i int) bool { return a.advising[i].Index >= index })
	if i < len(a.advising) && a.advising[i].Index == index {
		return a.advising[i], true
	}
	return AdvisingSentence{}, false
}

// Backends lists the retrieval backends the advisor can score with: the
// paper's TF-IDF/VSM (default) plus the alternates sharing its index.
func (a *Advisor) Backends() []string { return vsm.Backends() }

// QueryBackend answers a natural-language query with the named scoring
// backend (see QueryTermsBackendCtx; "" selects the paper's VSM).
func (a *Advisor) QueryBackend(q, backend string) ([]Answer, error) {
	return a.QueryTermsBackendCtx(context.Background(), backend, nlp.QueryTerms(q))
}

// QueryTermsBackendCtx answers a pre-normalized query term list with the
// named scoring backend. The empty string and "vsm" run the paper's
// TF-IDF/cosine model with the advisor's threshold — bit-identical to
// QueryTermsCtx, since both delegate to the same index scan. "bm25" scores
// with Okapi BM25 over the same postings and keeps every advising sentence
// with positive score: BM25 scores are unbounded, so the paper's 0.15
// cosine threshold has no meaning there and rank order does the filtering.
// Scores are comparable only within one backend. An unknown backend name
// returns vsm.ErrUnknownBackend.
func (a *Advisor) QueryTermsBackendCtx(ctx context.Context, backend string, terms []string) ([]Answer, error) {
	scorer, err := a.index.Scorer(backend)
	if err != nil {
		return nil, err
	}
	if scorer.Backend() == vsm.BackendVSM {
		return a.QueryTermsWithThresholdCtx(ctx, terms, a.threshold), nil
	}
	scores := scorer.ScoreTermsCtx(ctx, terms)
	var out []Answer
	for _, adv := range a.advising {
		if s := scores[adv.Index]; s > 0 {
			out = append(out, Answer{Sentence: adv, Score: s})
		}
	}
	sortAnswers(out)
	return out, nil
}

// FullDocQuery retrieves over the whole document without the Stage-I filter
// — the paper's "full-doc" baseline (§4.2). Exposed here because it shares
// the advisor's TF-IDF index.
func (a *Advisor) FullDocQuery(q string, threshold float64) []Answer {
	scores := a.index.QueryAll(q)
	var out []Answer
	for i, s := range scores {
		if s < threshold {
			continue
		}
		section := ""
		if a.doc != nil {
			si := a.sentences[i].Section
			if si >= 0 && si < len(a.doc.Sections) {
				section = a.doc.Sections[si].Path()
			}
		}
		out = append(out, Answer{
			Sentence: AdvisingSentence{Index: i, Text: a.sentences[i].Text, Section: section},
			Score:    s,
		})
	}
	sortAnswers(out)
	return out
}

// sortAnswers orders answers best-first, ties broken by document order.
func sortAnswers(out []Answer) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Sentence.Index < out[j].Sentence.Index
	})
}

// ReportAnswer pairs one profiler issue with its recommendations.
type ReportAnswer struct {
	Issue   nvvp.Issue
	Answers []Answer
}

// AnswerReport extracts the performance issues of an NVVP-style report and
// answers each as a query — the report-driven path of the paper's §4.1.
func (a *Advisor) AnswerReport(r *nvvp.Report) []ReportAnswer {
	var out []ReportAnswer
	for _, issue := range r.Issues() {
		out = append(out, ReportAnswer{
			Issue:   issue,
			Answers: a.Query(issue.Query()),
		})
	}
	return out
}

// ContextOf returns the other advising sentences sharing the section of the
// given answer — the tool's "other advising sentences in the same
// subsections" view (Fig. 4). When the answer's section is unknown (an
// advisor built from bare sentences has no section structure), there is no
// meaningful "same section" and nothing is returned — previously every
// other advising sentence matched the empty section and the whole rule list
// came back as context.
func (a *Advisor) ContextOf(ans Answer) []AdvisingSentence {
	if ans.Sentence.Section == "" {
		return nil
	}
	var out []AdvisingSentence
	for _, adv := range a.advising {
		if adv.Section == ans.Sentence.Section && adv.Index != ans.Sentence.Index {
			out = append(out, adv)
		}
	}
	return out
}
