package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/selectors"
)

// Example shows the minimal document -> advisor -> answer flow.
func Example() {
	guide := `<html><head><title>Mini</title></head><body>
<h1>1. Performance</h1>
<p>Use shared memory to reduce global memory traffic. The warp size is
thirty-two threads. Avoid bank conflicts by padding the shared array.</p>
</body></html>`

	advisor := core.New().BuildFromHTML(guide)
	fmt.Printf("rules: %d of %d sentences\n", len(advisor.Rules()), advisor.SentenceCount())
	for _, a := range advisor.Query("how to avoid bank conflicts") {
		fmt.Println(a.Sentence.Text)
	}
	// Output:
	// rules: 2 of 3 sentences
	// Avoid bank conflicts by padding the shared array.
}

// ExampleWithConfig extends the keyword sets for a new domain.
func ExampleWithConfig() {
	cfg := selectors.DefaultConfig().Merge(selectors.Config{
		FlaggingWords: []string{"rule of thumb"},
	})
	advisor := core.New(core.WithConfig(cfg)).BuildFromHTML(
		"<p>A useful rule of thumb is to size batches by the queue depth. The queue has eight slots.</p>")
	fmt.Println(len(advisor.Rules()))
	// Output:
	// 1
}
