package summarize

import (
	"math"
	"testing"
	"testing/quick"
)

var doc = []string{
	"Shared memory is divided into banks that serve one request per cycle.",       // 0
	"Bank conflicts in shared memory serialize the conflicting requests.",         // 1
	"Avoid bank conflicts in shared memory by padding the shared array.",          // 2
	"The weather was pleasant on the day of the conference.",                      // 3 (off-topic)
	"Shared memory bank conflicts lower the effective shared memory bandwidth.",   // 4
	"Padding the shared array changes which bank each shared memory access hits.", // 5
}

func TestScoresDistribution(t *testing.T) {
	scores := Scores(doc, Options{})
	if len(scores) != len(doc) {
		t.Fatalf("%d scores", len(scores))
	}
	var sum float64
	for i, s := range scores {
		if s < 0 {
			t.Errorf("negative score at %d", i)
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("scores sum to %f", sum)
	}
}

func TestCentralSentencesRankHigher(t *testing.T) {
	scores := Scores(doc, Options{})
	// the off-topic sentence shares no vocabulary and must rank last
	for i, s := range scores {
		if i == 3 {
			continue
		}
		if scores[3] >= s {
			t.Errorf("off-topic sentence outranks %d: %f >= %f", i, scores[3], s)
		}
	}
}

func TestTopKOrderAndBounds(t *testing.T) {
	top := TopK(doc, 3, Options{})
	if len(top) != 3 {
		t.Fatalf("top = %v", top)
	}
	scores := Scores(doc, Options{})
	for i := 1; i < len(top); i++ {
		if scores[top[i]] > scores[top[i-1]] {
			t.Error("top-k not sorted")
		}
	}
	if got := TopK(doc, 100, Options{}); len(got) != len(doc) {
		t.Errorf("k beyond n: %v", got)
	}
	if got := TopK(nil, 3, Options{}); len(got) != 0 {
		t.Errorf("empty doc: %v", got)
	}
}

func TestSelectVector(t *testing.T) {
	sel := Select(doc, 2)
	count := 0
	for _, s := range sel {
		if s {
			count++
		}
	}
	if count != 2 {
		t.Errorf("selected %d", count)
	}
}

func TestDeterministic(t *testing.T) {
	a := Scores(doc, Options{})
	b := Scores(doc, Options{})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic")
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	if got := Scores(nil, Options{}); got != nil {
		t.Errorf("nil input: %v", got)
	}
	one := Scores([]string{"only sentence here"}, Options{})
	if len(one) != 1 || math.Abs(one[0]-1) > 1e-9 {
		t.Errorf("single sentence: %v", one)
	}
	// all-identical sentences: uniform distribution
	same := Scores([]string{"a b c d", "a b c d", "a b c d"}, Options{})
	for _, s := range same {
		if math.Abs(s-1.0/3) > 1e-6 {
			t.Errorf("identical sentences not uniform: %v", same)
		}
	}
	// sentences with no shared vocabulary: uniform too
	disjoint := Scores([]string{"alpha beta gamma", "delta epsilon zeta", "eta theta iota"}, Options{})
	for _, s := range disjoint {
		if math.Abs(s-1.0/3) > 1e-6 {
			t.Errorf("disjoint sentences not uniform: %v", disjoint)
		}
	}
}

// Property: scores are a probability distribution for any input.
func TestScoresAlwaysDistribution(t *testing.T) {
	vocab := []string{"memory", "warp", "cache", "use", "the", "of", "bank", "thread", "kernel", "latency"}
	f := func(seed []byte) bool {
		if len(seed) == 0 {
			return true
		}
		n := int(seed[0])%6 + 1
		sentences := make([]string, n)
		si := 1
		for i := range sentences {
			var words []string
			for w := 0; w < 4+i; w++ {
				if si >= len(seed) {
					si = 0
				}
				words = append(words, vocab[int(seed[si])%len(vocab)])
				si++
			}
			sentences[i] = joinWords(words)
		}
		scores := Scores(sentences, Options{})
		var sum float64
		for _, s := range scores {
			if s < -1e-12 || math.IsNaN(s) {
				return false
			}
			sum += s
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func joinWords(ws []string) string {
	out := ""
	for i, w := range ws {
		if i > 0 {
			out += " "
		}
		out += w
	}
	return out + "."
}

func BenchmarkTextRank100(b *testing.B) {
	sentences := make([]string, 100)
	for i := range sentences {
		sentences[i] = doc[i%len(doc)]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Scores(sentences, Options{})
	}
}
