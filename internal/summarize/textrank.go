// Package summarize implements a classic extractive document summarizer
// (TextRank: PageRank over a sentence-similarity graph). The paper
// distinguishes advising sentence recognition from document summarization —
// "document summarization aims at creating a representative summary ... It
// focuses on finding the most informative sentences, which may not be
// advising sentences" (§3.1, §5) — and this package provides the summarizer
// that makes the contrast measurable: the experiment harness runs TextRank
// as an additional Table 8 baseline.
package summarize

import (
	"math"
	"sort"

	"repro/internal/textproc"
)

// Options tunes the TextRank computation.
type Options struct {
	Damping   float64 // PageRank damping factor (default 0.85)
	Tolerance float64 // L1 convergence tolerance (default 1e-6)
	MaxIter   int     // iteration cap (default 100)
}

func (o *Options) fill() {
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-6
	}
	if o.MaxIter == 0 {
		o.MaxIter = 100
	}
}

// Scores runs TextRank and returns one centrality score per sentence.
// Scores are non-negative and sum to ~1 for non-empty input.
func Scores(sentences []string, opts Options) []float64 {
	opts.fill()
	n := len(sentences)
	if n == 0 {
		return nil
	}
	terms := make([][]string, n)
	for i, s := range sentences {
		terms[i] = textproc.NormalizeTerms(s)
	}
	// similarity: classic TextRank overlap normalized by log lengths
	sim := make([][]float64, n)
	rowSum := make([]float64, n)
	for i := 0; i < n; i++ {
		sim[i] = make([]float64, n)
	}
	sets := make([]map[string]bool, n)
	for i, t := range terms {
		set := make(map[string]bool, len(t))
		for _, w := range t {
			set[w] = true
		}
		sets[i] = set
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := overlap(sets[i], sets[j], len(terms[i]), len(terms[j]))
			sim[i][j] = s
			sim[j][i] = s
			rowSum[i] += s
			rowSum[j] += s
		}
	}
	// power iteration
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for iter := 0; iter < opts.MaxIter; iter++ {
		var delta float64
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				if sim[j][i] > 0 && rowSum[j] > 0 {
					sum += rank[j] * sim[j][i] / rowSum[j]
				}
			}
			next[i] = (1-opts.Damping)/float64(n) + opts.Damping*sum
			delta += math.Abs(next[i] - rank[i])
		}
		rank, next = next, rank
		if delta < opts.Tolerance {
			break
		}
	}
	// normalize to a distribution
	var total float64
	for _, r := range rank {
		total += r
	}
	if total > 0 {
		for i := range rank {
			rank[i] /= total
		}
	}
	return rank
}

// overlap is the TextRank similarity: |shared terms| / (log|a| + log|b|).
func overlap(a, b map[string]bool, lenA, lenB int) float64 {
	if lenA < 2 || lenB < 2 {
		return 0
	}
	small, large := a, b
	if len(b) < len(a) {
		small, large = b, a
	}
	shared := 0
	for w := range small {
		if large[w] {
			shared++
		}
	}
	if shared == 0 {
		return 0
	}
	return float64(shared) / (math.Log(float64(lenA)) + math.Log(float64(lenB)))
}

// TopK returns the indices of the k highest-scoring sentences, in
// descending score order (ties by ascending index).
func TopK(sentences []string, k int, opts Options) []int {
	scores := Scores(sentences, opts)
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// Select returns a boolean selection vector marking the top-k sentences —
// the shape the recognition-baseline harness consumes.
func Select(sentences []string, k int) []bool {
	out := make([]bool, len(sentences))
	for _, i := range TopK(sentences, k, Options{}) {
		out[i] = true
	}
	return out
}
