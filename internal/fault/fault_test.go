package fault

import (
	"errors"
	"testing"
	"time"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if err := in.Err(StoreWrite); err != nil {
		t.Fatalf("nil injector returned %v", err)
	}
	data := []byte("payload")
	out, mangled := in.Mangle(StoreWrite, data)
	if mangled || string(out) != "payload" {
		t.Fatalf("nil injector mangled: %q %v", out, mangled)
	}
	if in.Active() {
		t.Fatal("nil injector active")
	}
	if in.String() != "" {
		t.Fatalf("nil injector spec %q", in.String())
	}
	in.Set(StoreWrite, Rule{ErrProb: 1})
	in.Reset()
	in.SetSleep(nil)
	if n := in.Hits(); len(n) != 0 {
		t.Fatalf("nil injector hits %v", n)
	}
}

func TestErrDeterministicForSeed(t *testing.T) {
	draw := func(seed int64) []bool {
		in := New(seed)
		in.Set(VSMScore, Rule{ErrProb: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Err(VSMScore) != nil
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identical seeds", i)
		}
	}
	c := draw(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced the identical fault sequence")
	}
}

func TestErrProbabilityEndpoints(t *testing.T) {
	in := New(1)
	in.Set(NLPAnnotate, Rule{ErrProb: 1})
	for i := 0; i < 20; i++ {
		err := in.Err(NLPAnnotate)
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("prob=1 draw %d: %v", i, err)
		}
	}
	if err := in.Err(ServiceHandler); err != nil {
		t.Fatalf("unconfigured point injected: %v", err)
	}
	if got := in.Hits()[NLPAnnotate]; got != 20 {
		t.Fatalf("hits = %d, want 20", got)
	}
}

func TestLatencyInjection(t *testing.T) {
	in := New(1)
	var slept []time.Duration
	in.SetSleep(func(d time.Duration) { slept = append(slept, d) })
	in.Set(VSMScore, Rule{Latency: 5 * time.Millisecond, LatencyProb: 1})
	for i := 0; i < 3; i++ {
		if err := in.Err(VSMScore); err != nil {
			t.Fatalf("latency-only rule returned error: %v", err)
		}
	}
	if len(slept) != 3 || slept[0] != 5*time.Millisecond {
		t.Fatalf("slept %v", slept)
	}

	// probabilistic latency: some draws sleep, some don't
	slept = nil
	in.Set(VSMScore, Rule{Latency: time.Millisecond, LatencyProb: 0.5})
	for i := 0; i < 64; i++ {
		_ = in.Err(VSMScore)
	}
	if len(slept) == 0 || len(slept) == 64 {
		t.Fatalf("latency@0.5 slept %d/64 times", len(slept))
	}
}

func TestMangleTruncates(t *testing.T) {
	in := New(3)
	in.Set(StoreWrite, Rule{PartialProb: 1})
	data := []byte("0123456789")
	out, mangled := in.Mangle(StoreWrite, data)
	if !mangled {
		t.Fatal("prob=1 mangle did not fire")
	}
	if len(out) >= len(data) {
		t.Fatalf("mangled output not truncated: %d bytes", len(out))
	}
	if string(data) != "0123456789" {
		t.Fatal("Mangle mutated the caller's slice")
	}
	// unconfigured point passes data through untouched
	out, mangled = in.Mangle(StoreRead, data)
	if mangled || &out[0] != &data[0] {
		t.Fatal("unconfigured mangle copied or fired")
	}
	// empty payloads cannot be truncated further
	if _, m := in.Mangle(StoreWrite, nil); m {
		t.Fatal("mangled an empty payload")
	}
}

func TestResetAndActive(t *testing.T) {
	in := New(1)
	if in.Active() {
		t.Fatal("fresh injector active")
	}
	in.Set(StoreWrite, Rule{ErrProb: 1})
	if !in.Active() {
		t.Fatal("configured injector inactive")
	}
	_ = in.Err(StoreWrite)
	in.Reset()
	if in.Active() {
		t.Fatal("reset injector still active")
	}
	if err := in.Err(StoreWrite); err != nil {
		t.Fatalf("reset injector injected: %v", err)
	}
	if in.Hits()[StoreWrite] != 1 {
		t.Fatal("Reset dropped hit counts")
	}
	// a zero rule removes the point
	in.Set(StoreWrite, Rule{ErrProb: 1})
	in.Set(StoreWrite, Rule{})
	if in.Active() {
		t.Fatal("zero rule did not remove the point")
	}
}

func TestParse(t *testing.T) {
	tests := []struct {
		spec    string
		wantErr bool
		check   func(t *testing.T, in *Injector)
	}{
		{spec: "", check: func(t *testing.T, in *Injector) {
			if in != nil {
				t.Fatal("empty spec built an injector")
			}
		}},
		{spec: "store.write:err=0.5;partial=0.25", check: func(t *testing.T, in *Injector) {
			r := in.rules[StoreWrite]
			if r.ErrProb != 0.5 || r.PartialProb != 0.25 {
				t.Fatalf("rule %+v", r)
			}
		}},
		{spec: "vsm.score:lat=5ms@0.5", check: func(t *testing.T, in *Injector) {
			r := in.rules[VSMScore]
			if r.Latency != 5*time.Millisecond || r.LatencyProb != 0.5 {
				t.Fatalf("rule %+v", r)
			}
		}},
		{spec: "all:err=0.1", check: func(t *testing.T, in *Injector) {
			if len(in.rules) != len(Points()) {
				t.Fatalf("all: configured %d points, want %d", len(in.rules), len(Points()))
			}
			for _, p := range Points() {
				if in.rules[p].ErrProb != 0.1 {
					t.Fatalf("point %s rule %+v", p, in.rules[p])
				}
			}
		}},
		{spec: "nlp.annotate:lat=1ms, vsm.score:err=1", check: func(t *testing.T, in *Injector) {
			if in.rules[NLPAnnotate].Latency != time.Millisecond || in.rules[VSMScore].ErrProb != 1 {
				t.Fatalf("rules %+v", in.rules)
			}
		}},
		{spec: "bogus.point:err=1", wantErr: true},
		{spec: "store.write", wantErr: true},
		{spec: "store.write:err=2", wantErr: true},
		{spec: "store.write:err=x", wantErr: true},
		{spec: "store.write:lat=-5ms", wantErr: true},
		{spec: "store.write:lat=5ms@9", wantErr: true},
		{spec: "store.write:frob=1", wantErr: true},
		{spec: "store.write:err", wantErr: true},
		{spec: "store.write:;", wantErr: true},
	}
	for _, tt := range tests {
		in, err := Parse(tt.spec, 1)
		if tt.wantErr {
			if err == nil {
				t.Errorf("Parse(%q): no error", tt.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.spec, err)
			continue
		}
		tt.check(t, in)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	in, err := Parse("store.read:err=0.2,store.write:err=0.5;partial=0.25,vsm.score:lat=5ms@0.5", 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := in.String()
	re, err := Parse(spec, 1)
	if err != nil {
		t.Fatalf("re-parse %q: %v", spec, err)
	}
	if re.String() != spec {
		t.Fatalf("round trip: %q -> %q", spec, re.String())
	}
}

func TestConcurrentDraws(t *testing.T) {
	in := New(1)
	in.SetSleep(func(time.Duration) {})
	in.Set(ServiceHandler, Rule{ErrProb: 0.5, Latency: time.Microsecond, LatencyProb: 0.5})
	in.Set(StoreWrite, Rule{PartialProb: 0.5})
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			data := []byte("abcdef")
			for i := 0; i < 200; i++ {
				_ = in.Err(ServiceHandler)
				_, _ = in.Mangle(StoreWrite, data)
				in.Active()
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	hits := in.Hits()
	if hits[ServiceHandler] == 0 || hits[StoreWrite] == 0 {
		t.Fatalf("hits %v", hits)
	}
}
