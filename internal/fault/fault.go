// Package fault is Egeria's deterministic fault-injection layer: named
// fault points threaded through the store, lifecycle, and serving paths
// that can inject errors, added latency, or torn (partial) writes with
// configurable probability.
//
// Determinism is the design constraint: every draw comes from one seeded
// PRNG, so a chaos run with a fixed seed injects the same fault sequence
// every time — failures found under -race reproduce exactly. There is no
// wall-clock randomness anywhere in the package.
//
// Cost when disabled is the other constraint. Components hold a plain
// *Injector that is nil in production unless the -fault dev flag is set,
// and every method is nil-receiver safe, so an uninstrumented process pays
// one nil check per fault point — the same pattern as the obs spans.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Point names one place where a fault can be injected. The catalog is
// deliberately small and stable: chaos suites enable every point by name,
// and DESIGN.md §12 documents what each one simulates.
type Point string

// The registered fault points.
const (
	// StoreWrite covers snapshot persistence: a clean write error, or a
	// torn write (payload truncated, manifest never updated — the crash
	// window the store's payload-before-manifest ordering protects).
	StoreWrite Point = "store.write"
	// StoreRead covers snapshot loading: a read error, surfaced by the
	// store as corruption (exactly what a real I/O error looks like).
	StoreRead Point = "store.read"
	// NLPAnnotate covers query-side annotation in the serving path.
	NLPAnnotate Point = "nlp.annotate"
	// VSMScore covers Stage-II retrieval scoring in the serving path.
	VSMScore Point = "vsm.score"
	// ServiceHandler covers the HTTP handler entry: the whole request
	// fails with a 500 before reaching its route.
	ServiceHandler Point = "service.handler"
	// LifecycleRebuild covers background rebuilds: the build attempt fails
	// before running, exercising the retry-with-backoff machinery.
	LifecycleRebuild Point = "lifecycle.rebuild"
)

// Points returns the full fault-point catalog, sorted.
func Points() []Point {
	return []Point{
		LifecycleRebuild, NLPAnnotate, ServiceHandler, StoreRead, StoreWrite, VSMScore,
	}
}

// validPoint reports whether p is in the catalog.
func validPoint(p Point) bool {
	for _, q := range Points() {
		if p == q {
			return true
		}
	}
	return false
}

// ErrInjected is the error every injected failure wraps; callers and tests
// distinguish synthetic faults from organic errors with errors.Is.
var ErrInjected = errors.New("fault: injected error")

// Rule configures one fault point. The zero Rule injects nothing.
type Rule struct {
	// ErrProb is the probability (0..1) that Err returns an injected error.
	ErrProb float64
	// Latency is added before Err returns (error or not) with probability
	// LatencyProb. Zero LatencyProb with nonzero Latency means always.
	Latency     time.Duration
	LatencyProb float64
	// PartialProb is the probability (0..1) that Mangle truncates a write,
	// simulating a crash mid-flush.
	PartialProb float64
}

func (r Rule) active() bool {
	return r.ErrProb > 0 || (r.Latency > 0 && r.LatencyProb >= 0) || r.PartialProb > 0
}

// String renders the rule in the -fault spec grammar.
func (r Rule) String() string {
	var parts []string
	if r.ErrProb > 0 {
		parts = append(parts, fmt.Sprintf("err=%g", r.ErrProb))
	}
	if r.Latency > 0 {
		p := r.LatencyProb
		if p <= 0 || p >= 1 {
			parts = append(parts, fmt.Sprintf("lat=%s", r.Latency))
		} else {
			parts = append(parts, fmt.Sprintf("lat=%s@%g", r.Latency, p))
		}
	}
	if r.PartialProb > 0 {
		parts = append(parts, fmt.Sprintf("partial=%g", r.PartialProb))
	}
	return strings.Join(parts, ";")
}

// Injector draws faults for a set of points from one seeded PRNG. All
// methods are safe for concurrent use and nil-receiver safe: a nil
// *Injector injects nothing and costs one nil check per call.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules map[Point]Rule
	hits  map[Point]int64 // injected faults per point (errors + latency + mangles)
	sleep func(time.Duration)
}

// New creates an Injector with the given PRNG seed and no rules.
func New(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		rules: map[Point]Rule{},
		hits:  map[Point]int64{},
		sleep: time.Sleep,
	}
}

// SetSleep replaces the latency sleeper — tests use it to count injected
// delays without slowing the suite down.
func (in *Injector) SetSleep(f func(time.Duration)) {
	if in == nil || f == nil {
		return
	}
	in.mu.Lock()
	in.sleep = f
	in.mu.Unlock()
}

// Set installs (or, with a zero Rule, removes) the rule for one point.
func (in *Injector) Set(p Point, r Rule) {
	if in == nil {
		return
	}
	in.mu.Lock()
	if r.active() {
		in.rules[p] = r
	} else {
		delete(in.rules, p)
	}
	in.mu.Unlock()
}

// Reset removes every rule, turning injection off while preserving the hit
// counts — chaos suites call it to verify recovery after a fault storm.
func (in *Injector) Reset() {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.rules = map[Point]Rule{}
	in.mu.Unlock()
}

// Active reports whether any point currently has a rule.
func (in *Injector) Active() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.rules) > 0
}

// Err draws one fault for p: it may sleep the configured latency, and
// returns an error wrapping ErrInjected with probability ErrProb. A nil
// injector or an unconfigured point returns nil immediately.
func (in *Injector) Err(p Point) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	r, ok := in.rules[p]
	if !ok {
		in.mu.Unlock()
		return nil
	}
	var delay time.Duration
	if r.Latency > 0 && (r.LatencyProb <= 0 || r.LatencyProb >= 1 || in.rng.Float64() < r.LatencyProb) {
		delay = r.Latency
	}
	fail := r.ErrProb > 0 && in.rng.Float64() < r.ErrProb
	if delay > 0 || fail {
		in.hits[p]++
	}
	sleep := in.sleep
	in.mu.Unlock()
	if delay > 0 {
		sleep(delay)
	}
	if fail {
		return fmt.Errorf("%w at %s", ErrInjected, p)
	}
	return nil
}

// Mangle draws a partial-write fault for p: with probability PartialProb it
// returns a truncated copy of data (at least one byte shorter, possibly
// empty) and true, simulating the bytes a crash mid-flush leaves behind.
// Otherwise — including for a nil injector — it returns data unchanged.
func (in *Injector) Mangle(p Point, data []byte) ([]byte, bool) {
	if in == nil || len(data) == 0 {
		return data, false
	}
	in.mu.Lock()
	r, ok := in.rules[p]
	if !ok || r.PartialProb <= 0 || in.rng.Float64() >= r.PartialProb {
		in.mu.Unlock()
		return data, false
	}
	n := in.rng.Intn(len(data)) // 0..len-1: always strictly truncated
	in.hits[p]++
	in.mu.Unlock()
	return append([]byte(nil), data[:n]...), true
}

// Hits returns how many faults have been injected per point since New.
func (in *Injector) Hits() map[Point]int64 {
	out := map[Point]int64{}
	if in == nil {
		return out
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for p, n := range in.hits {
		out[p] = n
	}
	return out
}

// String renders the current rules in the spec grammar, sorted by point.
func (in *Injector) String() string {
	if in == nil {
		return ""
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	points := make([]string, 0, len(in.rules))
	for p := range in.rules {
		points = append(points, string(p))
	}
	sort.Strings(points)
	var parts []string
	for _, p := range points {
		parts = append(parts, p+":"+in.rules[Point(p)].String())
	}
	return strings.Join(parts, ",")
}

// Parse builds an Injector from a -fault spec. The grammar is a comma
// list of entries, each POINT:SETTING[;SETTING...]:
//
//	err=P          inject an error with probability P
//	lat=D[@P]      add latency D (a time.Duration) with probability P (default 1)
//	partial=P      truncate a write with probability P (store.write only)
//
// The pseudo-point "all" applies an entry to every point in the catalog.
// An empty spec returns a nil injector — injection fully off.
//
//	-fault 'all:err=0.1'
//	-fault 'store.write:err=0.2;partial=0.3,vsm.score:lat=5ms@0.5'
func Parse(spec string, seed int64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	in := New(seed)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, settings, ok := strings.Cut(entry, ":")
		if !ok {
			return nil, fmt.Errorf("fault: entry %q needs POINT:SETTINGS", entry)
		}
		var targets []Point
		if name == "all" {
			targets = Points()
		} else {
			p := Point(name)
			if !validPoint(p) {
				return nil, fmt.Errorf("fault: unknown point %q (want one of %v or all)", name, Points())
			}
			targets = []Point{p}
		}
		r, err := parseRule(settings)
		if err != nil {
			return nil, fmt.Errorf("fault: entry %q: %w", entry, err)
		}
		for _, p := range targets {
			in.mu.Lock()
			merged := in.rules[p]
			if r.ErrProb > 0 {
				merged.ErrProb = r.ErrProb
			}
			if r.Latency > 0 {
				merged.Latency, merged.LatencyProb = r.Latency, r.LatencyProb
			}
			if r.PartialProb > 0 {
				merged.PartialProb = r.PartialProb
			}
			in.rules[p] = merged
			in.mu.Unlock()
		}
	}
	return in, nil
}

// parseRule parses the ";"-separated settings of one spec entry.
func parseRule(settings string) (Rule, error) {
	var r Rule
	for _, s := range strings.Split(settings, ";") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		key, val, ok := strings.Cut(s, "=")
		if !ok {
			return Rule{}, fmt.Errorf("setting %q needs KEY=VALUE", s)
		}
		switch key {
		case "err", "partial":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return Rule{}, fmt.Errorf("%s wants a probability in [0,1], got %q", key, val)
			}
			if key == "err" {
				r.ErrProb = p
			} else {
				r.PartialProb = p
			}
		case "lat":
			dur, prob := val, ""
			if at := strings.LastIndex(val, "@"); at >= 0 {
				dur, prob = val[:at], val[at+1:]
			}
			d, err := time.ParseDuration(dur)
			if err != nil || d <= 0 {
				return Rule{}, fmt.Errorf("lat wants a positive duration, got %q", dur)
			}
			r.Latency, r.LatencyProb = d, 1
			if prob != "" {
				p, err := strconv.ParseFloat(prob, 64)
				if err != nil || p < 0 || p > 1 {
					return Rule{}, fmt.Errorf("lat@ wants a probability in [0,1], got %q", prob)
				}
				r.LatencyProb = p
			}
		default:
			return Rule{}, fmt.Errorf("unknown setting %q (want err, lat, partial)", key)
		}
	}
	if !r.active() {
		return Rule{}, errors.New("entry configures nothing")
	}
	return r, nil
}
