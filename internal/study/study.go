// Package study reproduces the paper's user study (§4.1, Table 5) as a
// simulation. The original study gave 37 graduate students two weeks to
// optimize a CUDA sparse-matrix normalization program, with 22 randomly
// chosen students also receiving the Egeria-built CUDA advisor; the Egeria
// group achieved markedly larger speedups on both study GPUs.
//
// The simulation preserves the causal chain the table measures:
//
//	advisor output (real Stage I + Stage II over the synthetic CUDA guide)
//	→ which optimizations a student discovers
//	→ modeled kernel time (package gpusim)
//	→ speedup.
//
// Students with the advisor feed it the norm.cu NVVP report and the
// follow-up queries the paper quotes; an optimization "surfaces" when the
// retrieved advice mentions it. Surfaced optimizations are discovered with
// high probability, unsurfaced ones at the background rate every student
// has. Control students rely on the background rate alone.
package study

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/gpusim"
	"repro/internal/nvvp"
	"repro/internal/textproc"
)

// Params configures a simulated study run.
type Params struct {
	Students    int // total participants (paper: 37)
	WithAdvisor int // participants given the advisor (paper: 22)
	Seed        int64

	// discovery probabilities; zero values take the defaults
	PSurfaced   float64 // advisor group, optimization surfaced by advice (default 0.92)
	PBackground float64 // any student's own expertise (default 0.62)
}

// DefaultParams returns the paper's study configuration.
func DefaultParams() Params {
	return Params{Students: 37, WithAdvisor: 22, Seed: 17}
}

// StudentResult is one simulated participant.
type StudentResult struct {
	ID          int
	UsedAdvisor bool
	Discovered  []gpusim.Optimization
	Speedup780  float64
	Speedup480  float64
}

// GroupStats aggregates one group on one device.
type GroupStats struct {
	Average float64
	Median  float64
	N       int
}

// Results is a full study outcome (the content of Table 5).
type Results struct {
	Students   []StudentResult
	Surfaced   []gpusim.Optimization // optimizations the advisor surfaced
	Egeria780  GroupStats
	Egeria480  GroupStats
	Control780 GroupStats
	Control480 GroupStats
}

// followUpQueries are the student questions the paper quotes in §4.1.
var followUpQueries = []string{
	"reduce instruction and memory latency",
	"warp execution efficiency",
	"How to avoid thread divergence",
	"memory access coalescence",
}

// signatures map each optimization to the stemmed phrases whose appearance
// in retrieved advice surfaces it.
var signatures = map[gpusim.Optimization][]string{
	gpusim.RemoveDivergence: {"divergent", "divergence", "branch direction", "predication"},
	gpusim.CoalesceAccesses: {"coalescing", "coalesce", "coalesced", "alignment", "access pattern", "stride", "segment"},
	gpusim.TuneOccupancy:    {"occupancy", "threads per block", "block size", "register usage", "resident", "launch configuration", "execution configuration"},
	gpusim.UnrollLoop:       {"unroll", "unrolling"},
	gpusim.StageShared:      {"shared memory", "stage", "staging", "tile"},
	gpusim.PinTransfers:     {"pinned", "page-locked", "transfers", "streams", "overlap", "batching"},
}

// SurfacedOptimizations runs the advisor exactly as a student would (report
// upload plus follow-up queries) and returns the optimizations whose
// signatures appear in the retrieved advice.
func SurfacedOptimizations(advisor *core.Advisor) ([]gpusim.Optimization, error) {
	text, err := nvvp.Synthesize("norm")
	if err != nil {
		return nil, err
	}
	report, err := nvvp.Parse(text)
	if err != nil {
		return nil, err
	}
	var adviceStems [][]string
	for _, ra := range advisor.AnswerReport(report) {
		for _, ans := range ra.Answers {
			adviceStems = append(adviceStems, textproc.StemAll(textproc.Words(ans.Sentence.Text)))
		}
	}
	for _, q := range followUpQueries {
		for _, ans := range advisor.Query(q) {
			adviceStems = append(adviceStems, textproc.StemAll(textproc.Words(ans.Sentence.Text)))
		}
	}
	return matchStems(adviceStems), nil
}

// MatchOptimizations maps retrieved advice sentences to the kernel
// optimizations they mention, via the stemmed signature phrases. Used by
// the study and by closed-loop examples that apply advice to the kernel
// model.
func MatchOptimizations(adviceTexts []string) []gpusim.Optimization {
	stems := make([][]string, len(adviceTexts))
	for i, t := range adviceTexts {
		stems[i] = textproc.StemAll(textproc.Words(t))
	}
	return matchStems(stems)
}

func matchStems(adviceStems [][]string) []gpusim.Optimization {
	var surfaced []gpusim.Optimization
	for opt := gpusim.Optimization(0); opt < gpusim.NumOptimizations; opt++ {
		sigs := signatures[opt]
		found := false
		for _, sig := range sigs {
			sigStems := textproc.StemAll(textproc.Words(sig))
			for _, adv := range adviceStems {
				if containsSeq(adv, sigStems) {
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if found {
			surfaced = append(surfaced, opt)
		}
	}
	return surfaced
}

func containsSeq(haystack, needle []string) bool {
	if len(needle) == 0 || len(needle) > len(haystack) {
		return false
	}
outer:
	for i := 0; i+len(needle) <= len(haystack); i++ {
		for j, n := range needle {
			if haystack[i+j] != n {
				continue outer
			}
		}
		return true
	}
	return false
}

// Run simulates the study against a CUDA advisor.
func Run(advisor *core.Advisor, p Params) (*Results, error) {
	if p.Students <= 0 || p.WithAdvisor < 0 || p.WithAdvisor > p.Students {
		return nil, fmt.Errorf("study: bad params %+v", p)
	}
	if p.PSurfaced == 0 {
		p.PSurfaced = 0.92
	}
	if p.PBackground == 0 {
		p.PBackground = 0.62
	}
	surfaced, err := SurfacedOptimizations(advisor)
	if err != nil {
		return nil, err
	}
	isSurfaced := map[gpusim.Optimization]bool{}
	for _, o := range surfaced {
		isSurfaced[o] = true
	}

	rng := rand.New(rand.NewSource(p.Seed))
	base := gpusim.NormKernel()
	d780, d480 := gpusim.GTX780(), gpusim.GTX480()

	// random assignment of the advisor, as in the paper
	order := rng.Perm(p.Students)
	hasAdvisor := make([]bool, p.Students)
	for i := 0; i < p.WithAdvisor; i++ {
		hasAdvisor[order[i]] = true
	}

	res := &Results{Surfaced: surfaced}
	for id := 0; id < p.Students; id++ {
		skill := 0.8 + 0.4*rng.Float64() // individual variation
		var discovered []gpusim.Optimization
		for opt := gpusim.Optimization(0); opt < gpusim.NumOptimizations; opt++ {
			prob := p.PBackground * skill
			if hasAdvisor[id] && isSurfaced[opt] {
				prob = p.PSurfaced * skill
			}
			if prob > 0.99 {
				prob = 0.99
			}
			if rng.Float64() < prob {
				discovered = append(discovered, opt)
			}
		}
		k := gpusim.Apply(base, discovered...)
		res.Students = append(res.Students, StudentResult{
			ID:          id,
			UsedAdvisor: hasAdvisor[id],
			Discovered:  discovered,
			Speedup780:  gpusim.Speedup(base, k, d780),
			Speedup480:  gpusim.Speedup(base, k, d480),
		})
	}
	res.Egeria780 = stats(res.Students, true, func(s StudentResult) float64 { return s.Speedup780 })
	res.Egeria480 = stats(res.Students, true, func(s StudentResult) float64 { return s.Speedup480 })
	res.Control780 = stats(res.Students, false, func(s StudentResult) float64 { return s.Speedup780 })
	res.Control480 = stats(res.Students, false, func(s StudentResult) float64 { return s.Speedup480 })
	return res, nil
}

func stats(students []StudentResult, advisor bool, metric func(StudentResult) float64) GroupStats {
	var vals []float64
	for _, s := range students {
		if s.UsedAdvisor == advisor {
			vals = append(vals, metric(s))
		}
	}
	if len(vals) == 0 {
		return GroupStats{}
	}
	sort.Float64s(vals)
	var sum float64
	for _, v := range vals {
		sum += v
	}
	med := vals[len(vals)/2]
	if len(vals)%2 == 0 {
		med = (vals[len(vals)/2-1] + vals[len(vals)/2]) / 2
	}
	return GroupStats{Average: sum / float64(len(vals)), Median: med, N: len(vals)}
}

// speedups collects one group's speedups on one device.
func (r *Results) speedups(advisor bool, on780 bool) []float64 {
	var out []float64
	for _, s := range r.Students {
		if s.UsedAdvisor != advisor {
			continue
		}
		if on780 {
			out = append(out, s.Speedup780)
		} else {
			out = append(out, s.Speedup480)
		}
	}
	return out
}

// Table5CI renders Table 5 with bootstrap confidence intervals on the group
// means and a permutation p-value for the group gap — a statistical
// extension over the paper's bare means (n=22 and n=15 are small groups).
func Table5CI(r *Results) string {
	var b strings.Builder
	b.WriteString("Table 5 with 95% bootstrap CIs on the group means:\n")
	rows := []struct {
		name    string
		advisor bool
	}{
		{"Group 1: Egeria used", true},
		{"Group 2: Egeria not used", false},
	}
	for _, row := range rows {
		iv780 := eval.BootstrapMean(r.speedups(row.advisor, true), 2000, 0.95, 5)
		iv480 := eval.BootstrapMean(r.speedups(row.advisor, false), 2000, 0.95, 5)
		fmt.Fprintf(&b, "%-26s GTX780 %sX   GTX480 %sX\n", row.name, iv780, iv480)
	}
	p780 := eval.PermutationPValue(r.speedups(true, true), r.speedups(false, true), 5000, 5)
	p480 := eval.PermutationPValue(r.speedups(true, false), r.speedups(false, false), 5000, 5)
	fmt.Fprintf(&b, "group gap one-sided permutation p: GTX780 %.4f, GTX480 %.4f\n", p780, p480)
	return b.String()
}

// Table5 renders the results in the paper's Table 5 layout.
func Table5(r *Results) string {
	var b strings.Builder
	b.WriteString("Table 5: Speedups on a GPU Program\n")
	b.WriteString("                          GeForce GTX 780        GeForce GTX 480\n")
	b.WriteString("                          Average   Median       Average   Median\n")
	fmt.Fprintf(&b, "Group 1: Egeria used      %.2fX     %.2fX        %.2fX     %.2fX\n",
		r.Egeria780.Average, r.Egeria780.Median, r.Egeria480.Average, r.Egeria480.Median)
	fmt.Fprintf(&b, "Group 2: Egeria not used  %.2fX     %.2fX        %.2fX     %.2fX\n",
		r.Control780.Average, r.Control780.Median, r.Control480.Average, r.Control480.Median)
	return b.String()
}
