package study

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/gpusim"
)

func cudaAdvisor(t testing.TB) *core.Advisor {
	t.Helper()
	g := corpus.Generate(corpus.CUDA, 1)
	return core.New().BuildFromSentences(g.Doc, g.Sentences)
}

func TestSurfacedOptimizationsCoverage(t *testing.T) {
	a := cudaAdvisor(t)
	surfaced, err := SurfacedOptimizations(a)
	if err != nil {
		t.Fatal(err)
	}
	// the advisor must surface at least the optimizations its report
	// queries directly target, and most of the space overall
	if len(surfaced) < 4 {
		t.Fatalf("only %d optimizations surfaced: %v", len(surfaced), surfaced)
	}
	want := map[gpusim.Optimization]bool{
		gpusim.RemoveDivergence: true,
		gpusim.TuneOccupancy:    true,
	}
	for _, o := range surfaced {
		delete(want, o)
	}
	for o := range want {
		t.Errorf("optimization %v not surfaced by the advisor", o)
	}
}

func TestRunTable5Shape(t *testing.T) {
	a := cudaAdvisor(t)
	res, err := Run(a, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Students) != 37 {
		t.Fatalf("%d students", len(res.Students))
	}
	if res.Egeria780.N != 22 || res.Control780.N != 15 {
		t.Fatalf("group sizes: %d / %d", res.Egeria780.N, res.Control780.N)
	}
	// Table 5 shape: Egeria group beats control on both devices,
	// and every group does better on the 780 than the 480.
	if res.Egeria780.Average <= res.Control780.Average {
		t.Errorf("780: Egeria %.2f <= control %.2f", res.Egeria780.Average, res.Control780.Average)
	}
	if res.Egeria480.Average <= res.Control480.Average {
		t.Errorf("480: Egeria %.2f <= control %.2f", res.Egeria480.Average, res.Control480.Average)
	}
	if res.Egeria780.Average <= res.Egeria480.Average {
		t.Errorf("Egeria: 780 %.2f <= 480 %.2f", res.Egeria780.Average, res.Egeria480.Average)
	}
	if res.Control780.Average <= res.Control480.Average {
		t.Errorf("control: 780 %.2f <= 480 %.2f", res.Control780.Average, res.Control480.Average)
	}
	// magnitudes in the paper's band (generously)
	if res.Egeria780.Average < 4 || res.Egeria780.Average > 10 {
		t.Errorf("Egeria 780 average %.2f outside [4, 10]", res.Egeria780.Average)
	}
	if res.Control480.Average < 1.2 || res.Control480.Average > 5 {
		t.Errorf("control 480 average %.2f outside [1.2, 5]", res.Control480.Average)
	}
	// the gap should be material (paper: ~1.5x)
	if res.Egeria780.Average/res.Control780.Average < 1.15 {
		t.Errorf("780 gap too small: %.2f vs %.2f", res.Egeria780.Average, res.Control780.Average)
	}
}

func TestRunDeterministic(t *testing.T) {
	a := cudaAdvisor(t)
	p := DefaultParams()
	r1, err := Run(a, p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(a, p)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Egeria780.Average != r2.Egeria780.Average || r1.Control480.Median != r2.Control480.Median {
		t.Error("study not deterministic for fixed seed")
	}
}

func TestRunParamValidation(t *testing.T) {
	a := cudaAdvisor(t)
	if _, err := Run(a, Params{Students: 0}); err == nil {
		t.Error("zero students accepted")
	}
	if _, err := Run(a, Params{Students: 5, WithAdvisor: 9}); err == nil {
		t.Error("advisor count > students accepted")
	}
}

func TestStudentsDiscoverValidOptimizations(t *testing.T) {
	a := cudaAdvisor(t)
	res, err := Run(a, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	advTotal, ctlTotal := 0, 0
	for _, s := range res.Students {
		for _, o := range s.Discovered {
			if o < 0 || o >= gpusim.NumOptimizations {
				t.Fatalf("invalid optimization %d", o)
			}
		}
		if s.Speedup780 < 1 || s.Speedup480 < 1 {
			t.Errorf("student %d slowed the program: %.2f / %.2f", s.ID, s.Speedup780, s.Speedup480)
		}
		if s.UsedAdvisor {
			advTotal += len(s.Discovered)
		} else {
			ctlTotal += len(s.Discovered)
		}
	}
	perAdv := float64(advTotal) / float64(res.Egeria780.N)
	perCtl := float64(ctlTotal) / float64(res.Control780.N)
	// the paper: "an individual in that group typically implemented fewer
	// optimizations than an individual in the Egeria group"
	if perAdv <= perCtl {
		t.Errorf("per-student optimizations: advisor %.2f <= control %.2f", perAdv, perCtl)
	}
}

func TestTable5CIRendering(t *testing.T) {
	a := cudaAdvisor(t)
	res, err := Run(a, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	out := Table5CI(res)
	if !strings.Contains(out, "bootstrap") || !strings.Contains(out, "permutation p") {
		t.Errorf("CI table:\n%s", out)
	}
	// with this seed the group gap must be significant
	if !strings.Contains(out, "GTX780 0.00") {
		t.Errorf("expected a small p-value:\n%s", out)
	}
}

func TestSpeedupsGrouping(t *testing.T) {
	a := cudaAdvisor(t)
	res, err := Run(a, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.speedups(true, true)); n != 22 {
		t.Errorf("egeria 780 group size %d", n)
	}
	if n := len(res.speedups(false, false)); n != 15 {
		t.Errorf("control 480 group size %d", n)
	}
}

func TestMatchOptimizations(t *testing.T) {
	opts := MatchOptimizations([]string{
		"Unroll the innermost loop by hand.",
		"Stage reused tiles in shared memory.",
	})
	found := map[gpusim.Optimization]bool{}
	for _, o := range opts {
		found[o] = true
	}
	if !found[gpusim.UnrollLoop] || !found[gpusim.StageShared] {
		t.Errorf("matched: %v", opts)
	}
	if len(MatchOptimizations(nil)) != 0 {
		t.Error("empty advice matched optimizations")
	}
}

func TestTable5Rendering(t *testing.T) {
	a := cudaAdvisor(t)
	res, err := Run(a, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	out := Table5(res)
	if !strings.Contains(out, "Egeria used") || !strings.Contains(out, "GTX 780") {
		t.Errorf("table:\n%s", out)
	}
}
