package htmldoc

import "strings"

// ParseMarkdown loads a Markdown guide: ATX headings (#, ##, ...) open
// sections (with optional leading section numbers, as in HTML), blank lines
// separate paragraph blocks, fenced code blocks are dropped, and list items
// become blocks of their own. The artifact notes raw documents "can be in
// various formats (e.g., txt, pdf, HTML, JSON)"; Markdown is the common one
// for modern vendor documentation.
func ParseMarkdown(text string) *Document {
	doc := &Document{}
	var cur strings.Builder
	inFence := false

	flush := func() {
		block := normalizeSpace(cur.String())
		cur.Reset()
		if block == "" {
			return
		}
		if len(doc.Sections) == 0 {
			doc.Sections = append(doc.Sections, Section{Title: "Preamble", Level: 1})
		}
		s := &doc.Sections[len(doc.Sections)-1]
		s.Blocks = append(s.Blocks, block)
	}

	for _, raw := range strings.Split(text, "\n") {
		line := strings.TrimRight(raw, " \t\r")
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
			flush()
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		switch {
		case strings.HasPrefix(trimmed, "#"):
			flush()
			level := 0
			for level < len(trimmed) && trimmed[level] == '#' {
				level++
			}
			title := strings.TrimSpace(strings.Trim(trimmed[level:], "#"))
			if doc.Title == "" && level == 1 && len(doc.Sections) == 0 {
				doc.Title = stripMarkdownInline(title)
				continue
			}
			num := ""
			title = stripMarkdownInline(title)
			if m := sectionNumberRe.FindStringSubmatch(title); m != nil {
				num = m[1]
				title = strings.TrimSpace(title[len(m[0]):])
			}
			if level > 6 {
				level = 6
			}
			doc.Sections = append(doc.Sections, Section{Number: num, Title: title, Level: level})
		case trimmed == "":
			flush()
		case strings.HasPrefix(trimmed, "- ") || strings.HasPrefix(trimmed, "* ") ||
			strings.HasPrefix(trimmed, "+ "):
			flush()
			cur.WriteString(stripMarkdownInline(trimmed[2:]))
			flush()
		default:
			if cur.Len() > 0 {
				cur.WriteByte(' ')
			}
			cur.WriteString(stripMarkdownInline(trimmed))
		}
	}
	flush()
	return doc
}

// ParsePlainText loads a plain-text guide: a line that looks like a numbered
// heading ("5.4.2 Control Flow" — a section number followed by a short
// title, no terminal period) opens a section; blank lines separate blocks.
func ParsePlainText(text string) *Document {
	doc := &Document{}
	var cur strings.Builder

	flush := func() {
		block := normalizeSpace(cur.String())
		cur.Reset()
		if block == "" {
			return
		}
		if len(doc.Sections) == 0 {
			doc.Sections = append(doc.Sections, Section{Title: "Preamble", Level: 1})
		}
		s := &doc.Sections[len(doc.Sections)-1]
		s.Blocks = append(s.Blocks, block)
	}

	for _, raw := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(raw)
		switch {
		case trimmed == "":
			flush()
		case looksLikeHeadingLine(trimmed):
			flush()
			m := sectionNumberRe.FindStringSubmatch(trimmed)
			num := m[1]
			title := strings.TrimSpace(trimmed[len(m[0]):])
			doc.Sections = append(doc.Sections, Section{
				Number: num,
				Title:  title,
				Level:  strings.Count(num, ".") + 1,
			})
		default:
			if cur.Len() > 0 {
				cur.WriteByte(' ')
			}
			cur.WriteString(trimmed)
		}
	}
	flush()
	return doc
}

// looksLikeHeadingLine: "5.4.2 Control Flow Instructions" — numbered, short,
// no sentence-final period.
func looksLikeHeadingLine(line string) bool {
	m := sectionNumberRe.FindStringSubmatch(line)
	if m == nil {
		return false
	}
	rest := strings.TrimSpace(line[len(m[0]):])
	if rest == "" || len(rest) > 60 {
		return false
	}
	return !strings.HasSuffix(rest, ".")
}

// stripMarkdownInline removes emphasis markers and inline code/link syntax.
func stripMarkdownInline(s string) string {
	r := strings.NewReplacer("**", "", "__", "", "`", "")
	s = r.Replace(s)
	// [text](url) -> text
	for {
		open := strings.IndexByte(s, '[')
		if open < 0 {
			break
		}
		close := strings.IndexByte(s[open:], ']')
		if close < 0 {
			break
		}
		close += open
		if close+1 < len(s) && s[close+1] == '(' {
			end := strings.IndexByte(s[close:], ')')
			if end < 0 {
				break
			}
			s = s[:open] + s[open+1:close] + s[close+end+1:]
			continue
		}
		s = s[:open] + s[open+1:close] + s[close+1:]
	}
	return s
}
