// Package htmldoc implements the document loader of the Egeria framework:
// a small HTML tokenizer plus structure inference that converts a vendor
// programming guide (HTML) into a sequence of text blocks organized by
// chapter/section, mirroring the loader described in the paper (§3.2: "the
// loader extracts out all the contained sentences, and at the same time,
// infers the document structure (e.g., chapter, section, etc.) based on the
// indices or the HTML header tags").
package htmldoc

import (
	"strconv"
	"strings"
)

// tokenKind discriminates tokenizer output.
type tokenKind int

const (
	textToken tokenKind = iota
	startTagToken
	endTagToken
	selfClosingToken
)

// token is one HTML lexical unit.
type token struct {
	kind tokenKind
	name string // tag name, lowercase (tags only)
	text string // raw text (text tokens only)
	attr map[string]string
}

// tokenize lexes HTML into tokens, skipping comments, doctypes, and the
// contents of script/style elements.
func tokenize(html string) []token {
	var out []token
	i := 0
	n := len(html)
	for i < n {
		if html[i] != '<' {
			j := strings.IndexByte(html[i:], '<')
			if j < 0 {
				j = n - i
			}
			out = append(out, token{kind: textToken, text: html[i : i+j]})
			i += j
			continue
		}
		// comment
		if strings.HasPrefix(html[i:], "<!--") {
			end := strings.Index(html[i+4:], "-->")
			if end < 0 {
				break
			}
			i += 4 + end + 3
			continue
		}
		// doctype / processing instruction
		if i+1 < n && (html[i+1] == '!' || html[i+1] == '?') {
			end := strings.IndexByte(html[i:], '>')
			if end < 0 {
				break
			}
			i += end + 1
			continue
		}
		end := strings.IndexByte(html[i:], '>')
		if end < 0 {
			break
		}
		raw := html[i+1 : i+end]
		i += end + 1
		isEnd := strings.HasPrefix(raw, "/")
		raw = strings.TrimPrefix(raw, "/")
		selfClosing := strings.HasSuffix(raw, "/")
		raw = strings.TrimSuffix(raw, "/")
		name, attrs := parseTag(raw)
		if name == "" {
			continue
		}
		switch {
		case isEnd:
			out = append(out, token{kind: endTagToken, name: name})
		case selfClosing:
			out = append(out, token{kind: selfClosingToken, name: name, attr: attrs})
		default:
			out = append(out, token{kind: startTagToken, name: name, attr: attrs})
			// raw-text elements: skip to the matching close tag
			if name == "script" || name == "style" {
				idx := rawTextEnd(html[i:], name)
				if idx < 0 {
					i = n
					break
				}
				i += idx
				gt := strings.IndexByte(html[i:], '>')
				if gt < 0 {
					i = n
					break
				}
				i += gt + 1
				out = append(out, token{kind: endTagToken, name: name})
			}
		}
	}
	return out
}

// rawTextEnd returns the byte offset in s of the first "</name" close-tag
// marker, matched case-insensitively. It compares in place rather than
// lowercasing a copy: strings.ToLower re-encodes invalid UTF-8 bytes as the
// 3-byte replacement rune, so an index found in the lowered string is not a
// valid offset into the original when the raw text contains such bytes.
func rawTextEnd(s, name string) int {
	closer := "</" + name
	for i := 0; i+len(closer) <= len(s); i++ {
		if s[i] == '<' && strings.EqualFold(s[i:i+len(closer)], closer) {
			return i
		}
	}
	return -1
}

// parseTag splits "a href=..." into the tag name and its attributes.
func parseTag(raw string) (string, map[string]string) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return "", nil
	}
	nameEnd := strings.IndexAny(raw, " \t\r\n")
	if nameEnd < 0 {
		return strings.ToLower(raw), nil
	}
	name := strings.ToLower(raw[:nameEnd])
	rest := raw[nameEnd:]
	attrs := map[string]string{}
	for {
		rest = strings.TrimLeft(rest, " \t\r\n")
		if rest == "" {
			break
		}
		eq := strings.IndexByte(rest, '=')
		sp := strings.IndexAny(rest, " \t\r\n")
		if eq < 0 || (sp >= 0 && sp < eq) {
			// bare attribute
			if sp < 0 {
				attrs[strings.ToLower(rest)] = ""
				break
			}
			attrs[strings.ToLower(rest[:sp])] = ""
			rest = rest[sp:]
			continue
		}
		key := strings.ToLower(strings.TrimSpace(rest[:eq]))
		rest = rest[eq+1:]
		var val string
		if rest != "" && (rest[0] == '"' || rest[0] == '\'') {
			q := rest[0]
			close := strings.IndexByte(rest[1:], q)
			if close < 0 {
				val = rest[1:]
				rest = ""
			} else {
				val = rest[1 : 1+close]
				rest = rest[close+2:]
			}
		} else {
			sp2 := strings.IndexAny(rest, " \t\r\n")
			if sp2 < 0 {
				val = rest
				rest = ""
			} else {
				val = rest[:sp2]
				rest = rest[sp2:]
			}
		}
		if key != "" {
			attrs[key] = val
		}
	}
	return name, attrs
}

// entities handled by DecodeEntities beyond numeric references.
var namedEntities = map[string]string{
	"amp": "&", "lt": "<", "gt": ">", "quot": `"`, "apos": "'",
	"nbsp": " ", "mdash": "—", "ndash": "–", "hellip": "…",
	"ldquo": `"`, "rdquo": `"`, "lsquo": "'", "rsquo": "'",
	"times": "×", "copy": "©", "reg": "®", "trade": "™", "deg": "°",
	"ge": "≥", "le": "≤", "ne": "≠", "plusmn": "±", "middot": "·",
}

// DecodeEntities resolves named and numeric HTML character references.
func DecodeEntities(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		if s[i] != '&' {
			b.WriteByte(s[i])
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 10 {
			b.WriteByte(s[i])
			i++
			continue
		}
		ent := s[i+1 : i+semi]
		if strings.HasPrefix(ent, "#") {
			num := ent[1:]
			base := 10
			if strings.HasPrefix(num, "x") || strings.HasPrefix(num, "X") {
				num = num[1:]
				base = 16
			}
			if cp, err := strconv.ParseInt(num, base, 32); err == nil && cp > 0 {
				b.WriteRune(rune(cp))
				i += semi + 1
				continue
			}
		} else if rep, ok := namedEntities[ent]; ok {
			b.WriteString(rep)
			i += semi + 1
			continue
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}
