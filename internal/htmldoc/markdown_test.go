package htmldoc

import (
	"strings"
	"testing"
)

const mdGuide = "# CUDA Tuning Notes\n" +
	"\n" +
	"Preface paragraph before any section.\n" +
	"\n" +
	"## 1. Memory\n" +
	"\n" +
	"Use **shared memory** to stage reused tiles. Avoid bank\n" +
	"conflicts by padding the array.\n" +
	"\n" +
	"- Align the base pointer to the `transaction` size.\n" +
	"- Batch small transfers into one.\n" +
	"\n" +
	"```\n" +
	"__global__ void k() { /* dropped */ }\n" +
	"```\n" +
	"\n" +
	"### 1.1. Caches\n" +
	"\n" +
	"A cache hit avoids a trip to [device memory](https://example.com).\n"

func TestParseMarkdownStructure(t *testing.T) {
	doc := ParseMarkdown(mdGuide)
	if doc.Title != "CUDA Tuning Notes" {
		t.Errorf("title %q", doc.Title)
	}
	if len(doc.Sections) != 3 { // Preamble, 1. Memory, 1.1. Caches
		t.Fatalf("sections: %+v", doc.Sections)
	}
	if doc.Sections[0].Title != "Preamble" {
		t.Errorf("first section %+v", doc.Sections[0])
	}
	mem := doc.SectionByNumber("1")
	if mem == nil || mem.Title != "Memory" || mem.Level != 2 {
		t.Fatalf("memory section: %+v", mem)
	}
	caches := doc.SectionByNumber("1.1")
	if caches == nil || caches.Level != 3 {
		t.Fatalf("caches section: %+v", caches)
	}
}

func TestParseMarkdownContent(t *testing.T) {
	doc := ParseMarkdown(mdGuide)
	all := strings.Join(flattenBlocks(doc), "|")
	if strings.Contains(all, "**") || strings.Contains(all, "`") {
		t.Errorf("inline markers leaked: %q", all)
	}
	if strings.Contains(all, "__global__") {
		t.Error("fenced code leaked")
	}
	if !strings.Contains(all, "Align the base pointer to the transaction size.") {
		t.Errorf("list item missing: %q", all)
	}
	if !strings.Contains(all, "device memory") || strings.Contains(all, "example.com") {
		t.Errorf("link not unwrapped: %q", all)
	}
	// multi-line paragraph joined
	if !strings.Contains(all, "Avoid bank conflicts by padding the array.") {
		t.Errorf("wrapped paragraph not joined: %q", all)
	}
}

func TestParseMarkdownAdvisorPath(t *testing.T) {
	// sentences extracted from markdown feed the pipeline like HTML ones
	doc := ParseMarkdown(mdGuide)
	sents := doc.Sentences()
	if len(sents) < 5 {
		t.Fatalf("only %d sentences", len(sents))
	}
}

func TestParsePlainText(t *testing.T) {
	text := `1 Vectorization

Align the data on sixty-four byte boundaries. The compiler reports
which loops vectorized.

1.1 Remainder Loops

Pad the arrays to a full vector width.`
	doc := ParsePlainText(text)
	if len(doc.Sections) != 2 {
		t.Fatalf("sections: %+v", doc.Sections)
	}
	if doc.Sections[0].Number != "1" || doc.Sections[1].Number != "1.1" {
		t.Errorf("numbers: %+v", doc.Sections)
	}
	if doc.Sections[1].Level != 2 {
		t.Errorf("level: %+v", doc.Sections[1])
	}
	if len(doc.Sections[0].Blocks) != 1 {
		t.Errorf("blocks: %+v", doc.Sections[0].Blocks)
	}
}

func TestParsePlainTextHeadingHeuristics(t *testing.T) {
	// a numbered sentence is NOT a heading (ends with a period)
	doc := ParsePlainText("1 This is a full sentence that ends with a period.\n\nBody text here.")
	if len(doc.Sections) != 1 || doc.Sections[0].Title != "Preamble" {
		t.Errorf("sections: %+v", doc.Sections)
	}
}

func TestMarkdownDegenerate(t *testing.T) {
	for _, s := range []string{"", "#", "# ", "```", "```\nunterminated", "- ", "[broken](link"} {
		doc := ParseMarkdown(s)
		_ = doc.Sentences()
	}
	for _, s := range []string{"", "1 ", "   \n\n  "} {
		doc := ParsePlainText(s)
		_ = doc.Sentences()
	}
}

func flattenBlocks(d *Document) []string {
	var out []string
	for _, s := range d.Sections {
		out = append(out, s.Blocks...)
	}
	return out
}
