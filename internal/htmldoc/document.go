package htmldoc

import (
	"regexp"
	"strings"

	"repro/internal/doc"
	"repro/internal/textproc"
)

// Section is one structural unit of a guide (chapter, section, subsection),
// identified by its heading.
type Section struct {
	Number string // "5.4.2" when the heading is numbered, else ""
	Title  string // heading text without the number
	Level  int    // 1 for h1/chapter ... 6
	Blocks []string
}

// Path renders the section identity the way the paper's figures do:
// "5.4.2. Control Flow Instructions".
func (s *Section) Path() string {
	if s.Number != "" {
		return s.Number + ". " + s.Title
	}
	return s.Title
}

// Document is a loaded guide: a title plus ordered sections.
type Document struct {
	Title    string
	Sections []Section
}

// Sentence is one sentence of the document with its structural location and
// stable identity. ID is a function of the text, the section path, and the
// occurrence ordinal among identical (section, text) pairs — never of the
// sentence's position — so edits elsewhere in the document leave it intact
// (see internal/doc). Document.Sentences stamps IDs at extraction; StampIDs
// fills them in for sentence lists built by other paths.
type Sentence struct {
	Text    string
	Section int            // index into Document.Sections
	ID      doc.SentenceID // stable identity ("" until stamped)
}

// sectionNumberRe matches leading section numbers like "5.", "5.4.2", "5.4.2.".
var sectionNumberRe = regexp.MustCompile(`^(\d+(?:\.\d+)*)\.?\s+`)

// blockTags end a text block when opened or closed.
var blockTags = map[string]bool{
	"p": true, "div": true, "li": true, "ul": true, "ol": true, "table": true,
	"tr": true, "td": true, "th": true, "br": true, "blockquote": true,
	"pre": true, "section": true, "article": true, "body": true, "html": true,
	"dd": true, "dt": true, "dl": true, "figure": true, "figcaption": true,
}

// Parse loads an HTML guide into a structured Document. Heading tags h1-h6
// open sections; numbered headings ("5.4.2 Control Flow Instructions")
// contribute the section number. Code blocks (<pre>, <code> spanning a whole
// block) are dropped — the advising pipeline works on prose.
func Parse(html string) *Document {
	doc := &Document{}
	tokens := tokenize(html)

	var cur strings.Builder
	inHeading := 0 // >0: collecting heading text at that level
	inTitle := false
	inPre := false
	headingText := strings.Builder{}

	flush := func() {
		text := normalizeSpace(DecodeEntities(cur.String()))
		cur.Reset()
		if text == "" {
			return
		}
		if len(doc.Sections) == 0 {
			doc.Sections = append(doc.Sections, Section{Title: "Preamble", Level: 1})
		}
		s := &doc.Sections[len(doc.Sections)-1]
		s.Blocks = append(s.Blocks, text)
	}

	for _, tok := range tokens {
		switch tok.kind {
		case textToken:
			if inTitle {
				doc.Title += tok.text
				continue
			}
			if inPre {
				continue
			}
			if inHeading > 0 {
				headingText.WriteString(tok.text)
			} else {
				cur.WriteString(tok.text)
			}
		case startTagToken, selfClosingToken:
			switch {
			case tok.name == "title":
				inTitle = true
			case tok.name == "pre" || tok.name == "code":
				if tok.name == "pre" {
					flush()
					inPre = true
				}
			case isHeading(tok.name):
				flush()
				inHeading = int(tok.name[1] - '0')
				headingText.Reset()
			case blockTags[tok.name]:
				flush()
			}
		case endTagToken:
			switch {
			case tok.name == "title":
				inTitle = false
				doc.Title = normalizeSpace(DecodeEntities(doc.Title))
			case tok.name == "pre":
				inPre = false
			case isHeading(tok.name) && inHeading > 0:
				title := normalizeSpace(DecodeEntities(headingText.String()))
				num := ""
				if m := sectionNumberRe.FindStringSubmatch(title); m != nil {
					num = m[1]
					title = strings.TrimSpace(title[len(m[0]):])
				}
				doc.Sections = append(doc.Sections, Section{
					Number: num, Title: title, Level: inHeading,
				})
				inHeading = 0
			case blockTags[tok.name]:
				flush()
			default:
				// inline tag inside text: keep a space so words don't fuse
				if inHeading == 0 && !inPre {
					cur.WriteByte(' ')
				}
			}
		}
	}
	flush()
	return doc
}

func isHeading(name string) bool {
	return len(name) == 2 && name[0] == 'h' && name[1] >= '1' && name[1] <= '6'
}

func normalizeSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// Sentences splits every block of every section into sentences, preserving
// the section back-pointer and stamping each sentence's stable identity.
func (d *Document) Sentences() []Sentence {
	var out []Sentence
	for si := range d.Sections {
		for _, block := range d.Sections[si].Blocks {
			for _, s := range textproc.SentenceStrings(block) {
				out = append(out, Sentence{Text: s, Section: si})
			}
		}
	}
	return StampIDs(d, out)
}

// StampIDs assigns sentence identities (see internal/doc): each sentence's
// ID hashes its text, its section path under d (or "" when d is nil or the
// section index is out of range), and its occurrence ordinal among identical
// (section, text) pairs. Sentences that already carry an ID are left alone;
// when every sentence is already stamped the input slice is returned as-is,
// otherwise a stamped copy is returned and the input is not mutated.
func StampIDs(d *Document, sents []Sentence) []Sentence {
	missing := false
	for i := range sents {
		if sents[i].ID == "" {
			missing = true
			break
		}
	}
	if !missing {
		return sents
	}
	keys := make([]doc.Key, len(sents))
	for i, s := range sents {
		section := ""
		if d != nil && s.Section >= 0 && s.Section < len(d.Sections) {
			section = d.Sections[s.Section].Path()
		}
		keys[i] = doc.Key{Section: section, Text: s.Text}
	}
	ids := doc.Assign(keys)
	out := make([]Sentence, len(sents))
	copy(out, sents)
	for i := range out {
		if out[i].ID == "" {
			out[i].ID = ids[i]
		}
	}
	return out
}

// IDsOf projects a sentence list onto its identities ("" for unstamped
// sentences) — the shape doc.Diff consumes.
func IDsOf(sents []Sentence) []doc.SentenceID {
	ids := make([]doc.SentenceID, len(sents))
	for i, s := range sents {
		ids[i] = s.ID
	}
	return ids
}

// SentenceCount returns the total number of sentences in the document.
func (d *Document) SentenceCount() int {
	return len(d.Sentences())
}

// SectionByNumber finds a section by its number string ("5.4.2"); returns
// nil when absent.
func (d *Document) SectionByNumber(num string) *Section {
	for i := range d.Sections {
		if d.Sections[i].Number == num {
			return &d.Sections[i]
		}
	}
	return nil
}

// FromBlocks builds a Document directly from pre-extracted text blocks with
// section titles — the path used for non-HTML sources (the artifact notes
// raw documents "can be in various formats"; the corpus generator uses this).
func FromBlocks(title string, sections []Section) *Document {
	return &Document{Title: title, Sections: sections}
}
