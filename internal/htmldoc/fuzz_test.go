package htmldoc

import (
	"testing"
	"unicode/utf8"
)

// FuzzTokenize drives the HTML lexer and the full document loader with
// arbitrary byte strings. Seeds live in testdata/fuzz/FuzzTokenize — the
// three rendered synthetic guides (regenerate with `go run ./tools/fuzzseed`)
// — plus the adversarial fragments below. Invariants: no panics or hangs,
// token kinds carry the right payload, and every extracted sentence points
// at a valid section.
func FuzzTokenize(f *testing.F) {
	f.Add("<html><body><h1>1. Title</h1><p>Use coalesced access.</p></body></html>")
	f.Add("<p>unterminated <b>tag soup")
	f.Add("<!-- comment only -->")
	f.Add("<!-- unterminated comment")
	f.Add("<script>var x = '<p>not text</p>';</script>after")
	f.Add("<style>p { color: red }</style>")
	f.Add("<>< <a <a href=><a href='x\" >text</  a  >")
	f.Add("plain text, no markup at all. Two sentences!")
	f.Add("<h2>2.1</h2><pre>code\nblock</pre><h9>not a heading</h9>")
	f.Add("<p>&lt;escaped&gt; &amp; &#65; &unknown; &#xZZ;</p>")
	f.Add("\xff\xfe<p>invalid utf8 \x80 bytes</p>")
	// regression: invalid UTF-8 inside a raw-text element used to shift the
	// close-tag offset (found by this fuzzer) — see rawTextEnd
	f.Add("<stYle>\xf1\xf1\xf1\xf1</stYle")
	f.Add("<script>\x80\x80 var x = 1 </SCRIPT ></script>")

	f.Fuzz(func(t *testing.T, html string) {
		for _, tok := range tokenize(html) {
			switch tok.kind {
			case textToken:
				if tok.name != "" {
					t.Errorf("text token carries tag name %q", tok.name)
				}
			case startTagToken, endTagToken, selfClosingToken:
				if tok.name == "" {
					t.Error("tag token with empty name")
				}
			default:
				t.Errorf("unknown token kind %d", tok.kind)
			}
		}
		doc := Parse(html)
		for _, s := range doc.Sentences() {
			if s.Section < 0 || s.Section >= len(doc.Sections) {
				t.Errorf("sentence %q points at section %d of %d", s.Text, s.Section, len(doc.Sections))
			}
			if utf8.ValidString(html) && !utf8.ValidString(s.Text) {
				t.Errorf("valid input produced invalid UTF-8 sentence %q", s.Text)
			}
		}
		// the sibling loaders must hold the same section invariant
		for _, alt := range []*Document{ParseMarkdown(html), ParsePlainText(html)} {
			for _, s := range alt.Sentences() {
				if s.Section < 0 || s.Section >= len(alt.Sections) {
					t.Errorf("loader sentence %q points at section %d of %d", s.Text, s.Section, len(alt.Sections))
				}
			}
		}
	})
}
