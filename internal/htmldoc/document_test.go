package htmldoc

import (
	"strings"
	"testing"
	"testing/quick"
)

const sampleGuide = `<!DOCTYPE html>
<html><head><title>CUDA C Programming Guide</title>
<style>body { color: red; }</style>
<script>var x = "<h1>not a heading</h1>";</script>
</head>
<body>
<h1>5. Performance Guidelines</h1>
<p>This chapter gives guidance.</p>
<h2>5.1. Overall Performance Optimization Strategies</h2>
<p>Performance optimization revolves around three basic strategies.
Maximize parallel execution to achieve maximum utilization.</p>
<h2>5.4. Maximize Instruction Throughput</h2>
<p>To maximize instruction throughput the application should minimize
the use of arithmetic instructions with low throughput.</p>
<h3>5.4.2. Control Flow Instructions</h3>
<p>Any flow control instruction (<code>if</code>, <code>switch</code>)
can significantly impact the effective instruction throughput.</p>
<pre>
__global__ void kernel() { /* code dropped */ }
</pre>
<ul><li>Use &lt;#pragma unroll&gt; to control unrolling.</li>
<li>Avoid divergent warps &amp; serialization.</li></ul>
</body></html>`

func TestParseTitleAndSections(t *testing.T) {
	doc := Parse(sampleGuide)
	if doc.Title != "CUDA C Programming Guide" {
		t.Errorf("title = %q", doc.Title)
	}
	if len(doc.Sections) != 4 {
		t.Fatalf("got %d sections: %+v", len(doc.Sections), doc.Sections)
	}
	s := doc.SectionByNumber("5.4.2")
	if s == nil {
		t.Fatal("section 5.4.2 missing")
	}
	if s.Title != "Control Flow Instructions" || s.Level != 3 {
		t.Errorf("section = %+v", s)
	}
	if s.Path() != "5.4.2. Control Flow Instructions" {
		t.Errorf("path = %q", s.Path())
	}
}

func TestParseDropsScriptStyleAndPre(t *testing.T) {
	doc := Parse(sampleGuide)
	for _, sec := range doc.Sections {
		for _, b := range sec.Blocks {
			if strings.Contains(b, "not a heading") || strings.Contains(b, "color: red") {
				t.Errorf("script/style leaked into block %q", b)
			}
			if strings.Contains(b, "__global__") {
				t.Errorf("pre content leaked: %q", b)
			}
		}
	}
}

func TestParseEntities(t *testing.T) {
	doc := Parse(sampleGuide)
	found := false
	for _, sec := range doc.Sections {
		for _, b := range sec.Blocks {
			if strings.Contains(b, "<#pragma unroll>") {
				found = true
			}
			if strings.Contains(b, "&amp;") {
				t.Errorf("undecoded entity in %q", b)
			}
		}
	}
	if !found {
		t.Error("entity-decoded list item missing")
	}
}

func TestParseInlineTagsKeepWordsSeparate(t *testing.T) {
	doc := Parse("<p>use the <em>shared</em>memory path</p>")
	if len(doc.Sections) == 0 || len(doc.Sections[0].Blocks) == 0 {
		t.Fatal("no blocks")
	}
	b := doc.Sections[0].Blocks[0]
	if strings.Contains(b, "sharedmemory") {
		t.Errorf("inline close tag fused words: %q", b)
	}
}

func TestSentencesBackPointers(t *testing.T) {
	doc := Parse(sampleGuide)
	sents := doc.Sentences()
	if len(sents) == 0 {
		t.Fatal("no sentences")
	}
	for _, s := range sents {
		if s.Section < 0 || s.Section >= len(doc.Sections) {
			t.Errorf("bad section pointer %d", s.Section)
		}
		if strings.TrimSpace(s.Text) == "" {
			t.Error("empty sentence")
		}
	}
	if doc.SentenceCount() != len(sents) {
		t.Error("SentenceCount mismatch")
	}
}

func TestParseUnnumberedHeadings(t *testing.T) {
	doc := Parse("<h1>Introduction</h1><p>Hello world.</p>")
	if len(doc.Sections) != 1 || doc.Sections[0].Number != "" || doc.Sections[0].Title != "Introduction" {
		t.Errorf("sections = %+v", doc.Sections)
	}
	if doc.Sections[0].Path() != "Introduction" {
		t.Errorf("path = %q", doc.Sections[0].Path())
	}
}

func TestParseTextBeforeFirstHeading(t *testing.T) {
	doc := Parse("<p>Preface text.</p><h1>1. Start</h1><p>Body.</p>")
	if len(doc.Sections) != 2 {
		t.Fatalf("sections = %+v", doc.Sections)
	}
	if doc.Sections[0].Title != "Preamble" {
		t.Errorf("first section = %+v", doc.Sections[0])
	}
}

func TestDecodeEntities(t *testing.T) {
	cases := map[string]string{
		"a &amp; b":        "a & b",
		"&lt;tag&gt;":      "<tag>",
		"&#65;&#66;":       "AB",
		"&#x41;":           "A",
		"no entities":      "no entities",
		"&unknown; stays":  "&unknown; stays",
		"&quot;q&quot;":    `"q"`,
		"5 &le; 6 &ge; 4":  "5 ≤ 6 ≥ 4",
		"bare & ampersand": "bare & ampersand",
	}
	for in, want := range cases {
		if got := DecodeEntities(in); got != want {
			t.Errorf("DecodeEntities(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseMalformedHTML(t *testing.T) {
	// unterminated tags and comments must not panic or loop
	for _, s := range []string{
		"<p>text", "<p", "text <", "<!-- unterminated", "<p>a<b>c",
		"</div></div>", "<h1>t", "", "<script>x", "plain text only",
	} {
		doc := Parse(s)
		_ = doc.Sentences()
	}
}

// Property: Parse never panics and every emitted block is non-empty
// whitespace-normalized text.
func TestParseRobustness(t *testing.T) {
	f := func(s string) bool {
		doc := Parse(s)
		for _, sec := range doc.Sections {
			for _, b := range sec.Blocks {
				if strings.TrimSpace(b) == "" {
					return false
				}
				if strings.Contains(b, "  ") {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestFromBlocks(t *testing.T) {
	doc := FromBlocks("Synthetic", []Section{
		{Number: "1", Title: "Intro", Level: 1, Blocks: []string{"One sentence. Two sentences."}},
	})
	if doc.SentenceCount() != 2 {
		t.Errorf("count = %d", doc.SentenceCount())
	}
}

func BenchmarkParseGuide(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Parse(sampleGuide)
	}
}
