package depparse_test

import (
	"fmt"

	"repro/internal/depparse"
)

// Example parses the paper's Figure 2a sentence and prints the relation its
// caption highlights.
func Example() {
	tree := depparse.ParseText("A developer may prefer using buffers instead of images.")
	for _, r := range tree.RelationsOfType(depparse.Xcomp) {
		fmt.Printf("xcomp(%s, %s)\n", tree.Word(r.Governor), tree.Word(r.Dependent))
	}
	// Output:
	// xcomp(prefer, using)
}
