package depparse

import (
	"testing"
	"testing/quick"

	"repro/internal/postag"
	"repro/internal/textproc"
)

// findRel returns the first relation of type rt whose governor word equals
// gov (or any governor when gov == "*"), and whether one exists.
func findRel(t *Tree, rt RelType, gov string) (Relation, bool) {
	for _, r := range t.Relations {
		if r.Type != rt {
			continue
		}
		if gov == "*" || t.Word(r.Governor) == gov {
			return r, true
		}
	}
	return Relation{}, false
}

func mustRel(t *testing.T, tree *Tree, rt RelType, gov, dep string) {
	t.Helper()
	for _, r := range tree.Relations {
		if r.Type == rt && tree.Word(r.Governor) == gov && tree.Word(r.Dependent) == dep {
			return
		}
	}
	t.Errorf("missing %s(%s, %s); relations:\n%s", rt, gov, dep, tree)
}

// TestFigure2aDependencyStructure reproduces the relations the paper's
// Figure 2a highlights for the category-II example sentence.
func TestFigure2aDependencyStructure(t *testing.T) {
	tree := ParseText("Thus, a developer may prefer using buffers instead of images if no sampling operation is needed.")
	mustRel(t, tree, Root, "ROOT", "prefer")
	mustRel(t, tree, Nsubj, "prefer", "developer")
	mustRel(t, tree, Det, "developer", "a")
	mustRel(t, tree, Xcomp, "prefer", "using")
	mustRel(t, tree, Aux, "prefer", "may")
	mustRel(t, tree, Dobj, "using", "buffers")
	mustRel(t, tree, Nsubjpass, "needed", "operation")
}

// TestFigure2bDependencyStructure reproduces the relations for the
// category-III (passive) example sentence.
func TestFigure2bDependencyStructure(t *testing.T) {
	tree := ParseText("This synchronization guarantee can often be leveraged to avoid explicit clWaitForEvents() calls between command submissions.")
	mustRel(t, tree, Root, "ROOT", "leveraged")
	mustRel(t, tree, Nsubjpass, "leveraged", "guarantee")
	mustRel(t, tree, Aux, "leveraged", "can")
	mustRel(t, tree, Auxpass, "leveraged", "be")
	mustRel(t, tree, Advmod, "leveraged", "often")
	mustRel(t, tree, Xcomp, "leveraged", "avoid")
	mustRel(t, tree, Mark, "avoid", "to")
	mustRel(t, tree, Dobj, "avoid", "calls")
	mustRel(t, tree, Det, "guarantee", "This")
	mustRel(t, tree, Nn, "guarantee", "synchronization")
}

func TestXcompRecommendedQueue(t *testing.T) {
	tree := ParseText("It is recommended to queue kernels in order.")
	mustRel(t, tree, Xcomp, "recommended", "queue")
	mustRel(t, tree, Nsubjpass, "recommended", "It")
}

func TestXcompAdjectiveGovernor(t *testing.T) {
	// Rule 2 governors include adjectives: "better", "faster", "best".
	tree := ParseText("It is often better to use registers for this purpose.")
	mustRel(t, tree, Acomp, "is", "better")
	mustRel(t, tree, Xcomp, "better", "use")

	tree2 := ParseText("It is faster to pack small transfers into one larger transfer.")
	mustRel(t, tree2, Xcomp, "faster", "pack")
}

func TestImperativeNoSubject(t *testing.T) {
	tree := ParseText("Use shared memory to reduce global memory traffic.")
	root := tree.RootIndex()
	if root < 0 || tree.Words[root] != "Use" {
		t.Fatalf("root = %q, want Use\n%s", tree.Word(root), tree)
	}
	if tree.HasSubject(root) {
		t.Errorf("imperative root should have no subject\n%s", tree)
	}
	mustRel(t, tree, Xcomp, "Use", "reduce")
}

func TestImperativeConjChain(t *testing.T) {
	// The paper's category-IV example: the advising verb "avoid" is
	// coordinated with the clause head "takes".
	tree := ParseText("Pinning takes time, so avoid incurring pinning costs where CPU overhead must be avoided.")
	root := tree.RootIndex()
	if root < 0 || tree.Words[root] != "takes" {
		t.Fatalf("root = %q, want takes\n%s", tree.Word(root), tree)
	}
	chain := tree.ConjChainFromRoot()
	foundAvoid := false
	for _, i := range chain {
		if tree.Words[i] == "avoid" {
			foundAvoid = true
			if tree.HasSubject(i) {
				t.Errorf("conjoined imperative 'avoid' should have no subject\n%s", tree)
			}
		}
	}
	if !foundAvoid {
		t.Errorf("conj chain %v does not include 'avoid'\n%s", chain, tree)
	}
}

func TestDeclarativeHasSubject(t *testing.T) {
	tree := ParseText("The kernel uses thirty registers for each thread.")
	root := tree.RootIndex()
	if root < 0 || tree.Words[root] != "uses" {
		t.Fatalf("root = %q, want uses\n%s", tree.Word(root), tree)
	}
	if !tree.HasSubject(root) {
		t.Errorf("declarative root should have a subject\n%s", tree)
	}
}

func TestKeySubjectSentence(t *testing.T) {
	// Category V: sentences whose subject is in KEY SUBJECTS.
	tree := ParseText("For peak performance on all devices, developers can choose to use conditional compilation for key code loops in the kernel, or in some cases even provide two separate kernels.")
	r, ok := findRel(tree, Nsubj, "choose")
	if !ok {
		t.Fatalf("no nsubj(choose, *)\n%s", tree)
	}
	if tree.Word(r.Dependent) != "developers" {
		t.Errorf("nsubj(choose, %s), want developers", tree.Word(r.Dependent))
	}
	if tree.Lemma(r.Dependent) != "developer" {
		t.Errorf("lemma = %q, want developer", tree.Lemma(r.Dependent))
	}
	mustRel(t, tree, Xcomp, "choose", "use")
}

func TestSubjectAcrossPPChain(t *testing.T) {
	tree := ParseText("The number of threads per block should be chosen as a multiple of the warp size.")
	r, ok := findRel(tree, Nsubjpass, "chosen")
	if !ok {
		t.Fatalf("no nsubjpass(chosen, *)\n%s", tree)
	}
	if tree.Word(r.Dependent) != "number" {
		t.Errorf("nsubjpass(chosen, %s), want number", tree.Word(r.Dependent))
	}
}

func TestGerundAfterPreposition(t *testing.T) {
	tree := ParseText("The first step in maximizing overall memory throughput for the application is to minimize data transfers with low bandwidth.")
	root := tree.RootIndex()
	if root < 0 || tree.Words[root] != "is" {
		t.Fatalf("root = %q, want is\n%s", tree.Word(root), tree)
	}
	mustRel(t, tree, Pcomp, "in", "maximizing")
	mustRel(t, tree, Dobj, "maximizing", "throughput")
	r, ok := findRel(tree, Nsubj, "is")
	if !ok || tree.Word(r.Dependent) != "step" {
		t.Fatalf("want nsubj(is, step)\n%s", tree)
	}
	mustRel(t, tree, Xcomp, "is", "minimize")
	mustRel(t, tree, Dobj, "minimize", "transfers")
}

func TestAdvclSubordinateClause(t *testing.T) {
	tree := ParseText("If the kernel is memory bound, use shared memory for the hot data.")
	root := tree.RootIndex()
	if root < 0 || tree.Words[root] != "use" {
		t.Fatalf("root = %q, want use\n%s", tree.Word(root), tree)
	}
	if tree.HasSubject(root) {
		t.Errorf("imperative 'use' has a subject\n%s", tree)
	}
	if _, ok := findRel(tree, Advcl, "use"); !ok {
		t.Errorf("missing advcl(use, *)\n%s", tree)
	}
}

func TestPrepositionalAttachment(t *testing.T) {
	tree := ParseText("Minimize data transfers with low bandwidth.")
	mustRel(t, tree, Prep, "transfers", "with")
	mustRel(t, tree, Pobj, "with", "bandwidth")
}

func TestLemmaMethod(t *testing.T) {
	tree := ParseText("Developers prefer using buffers.")
	for i, w := range tree.Words {
		switch w {
		case "Developers":
			if tree.Lemma(i) != "developer" {
				t.Errorf("lemma(Developers) = %q", tree.Lemma(i))
			}
		case "using":
			if tree.Lemma(i) != "use" {
				t.Errorf("lemma(using) = %q", tree.Lemma(i))
			}
		case "buffers":
			if tree.Lemma(i) != "buffer" {
				t.Errorf("lemma(buffers) = %q", tree.Lemma(i))
			}
		}
	}
	if tree.Lemma(-1) != "" || tree.Lemma(99) != "" {
		t.Error("out-of-range lemma should be empty")
	}
}

func TestHasRelationHelper(t *testing.T) {
	tree := ParseText("A developer may prefer using buffers.")
	if !tree.HasRelation(Xcomp, "prefer") {
		t.Errorf("HasRelation(xcomp, prefer) = false\n%s", tree)
	}
	if !tree.HasRelation(Xcomp, "*") {
		t.Error("wildcard governor failed")
	}
	if tree.HasRelation(Xcomp, "buffer") {
		t.Error("false positive governor")
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	if tr := ParseText(""); len(tr.Relations) != 0 {
		t.Errorf("empty sentence produced relations: %v", tr.Relations)
	}
	tr := ParseText(".")
	if tr.RootIndex() != -1 {
		// a lone punctuation token may be left unrooted
		t.Logf("punct-only root: %d", tr.RootIndex())
	}
	tr2 := ParseText("Performance.")
	if tr2.RootIndex() < 0 {
		t.Errorf("single-noun sentence should still have a root\n%s", tr2)
	}
}

// Structural invariants checked over arbitrary English-like inputs:
// at most one root, every non-punct token has exactly one head, no cycles,
// all indices in range.
func TestParseStructuralInvariants(t *testing.T) {
	vocab := []string{
		"the", "a", "kernel", "memory", "use", "avoid", "shared", "can",
		"be", "optimized", "to", "reduce", "and", "or", "if", "is",
		"threads", "should", "developers", "prefer", "using", "fast", ",",
		".", "performance", "with", "for", "of", "often", "not",
	}
	f := func(seed []byte) bool {
		if len(seed) == 0 {
			return true
		}
		if len(seed) > 24 {
			seed = seed[:24]
		}
		words := make([]string, len(seed))
		for i, b := range seed {
			words[i] = vocab[int(b)%len(vocab)]
		}
		tree := ParseWords(words)
		return checkTreeInvariants(tree)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func checkTreeInvariants(tree *Tree) bool {
	n := len(tree.Words)
	roots := 0
	for _, r := range tree.Relations {
		if r.Dependent < 0 || r.Dependent >= n {
			return false
		}
		if r.Governor < -1 || r.Governor >= n {
			return false
		}
		if r.Type == Root {
			roots++
		}
	}
	if roots > 1 {
		return false
	}
	// each token attached at most once
	seen := make(map[int]int, n)
	for _, r := range tree.Relations {
		seen[r.Dependent]++
		if seen[r.Dependent] > 1 {
			return false
		}
	}
	// non-punct tokens all attached when a root exists
	if roots == 1 {
		for i := 0; i < n; i++ {
			if tree.Tags[i] == postag.PUNCT {
				continue
			}
			if tree.HeadOf(i) == -2 {
				return false
			}
		}
	}
	// acyclic: walking heads terminates at root or unattached
	for i := 0; i < n; i++ {
		steps := 0
		for j := i; j >= 0; j = tree.HeadOf(j) {
			steps++
			if steps > n+1 {
				return false
			}
		}
	}
	return true
}

func TestParsePaperSentencesInvariants(t *testing.T) {
	sentences := []string{
		"This can be a good choice when the host does not read the memory object to avoid the host having to make a copy of the data to transfer.",
		"Thus, a developer may prefer using buffers instead of images if no sampling operation is needed.",
		"This synchronization guarantee can often be leveraged to avoid explicit clWaitForEvents() calls between command submissions.",
		"Pinning takes time, so avoid incurring pinning costs where CPU overhead must be avoided.",
		"For peak performance on all devices, developers can choose to use conditional compilation for key code loops in the kernel, or in some cases even provide two separate kernels.",
		"The first step in maximizing overall memory throughput for the application is to minimize data transfers with low bandwidth.",
		"Register usage can be controlled using the maxrregcount compiler option or launch bounds as described in Launch Bounds.",
		"The number of threads per block should be chosen as a multiple of the warp size to avoid wasting computing resources with under-populated warps as much as possible.",
		"To obtain best performance in cases where the control flow depends on the thread ID, the controlling condition should be written so as to minimize the number of divergent warps.",
	}
	for _, s := range sentences {
		tree := ParseText(s)
		if !checkTreeInvariants(tree) {
			t.Errorf("invariants violated for %q\n%s", s, tree)
		}
		if tree.RootIndex() < 0 {
			t.Errorf("no root for %q", s)
		}
	}
}

func TestTreeString(t *testing.T) {
	tree := ParseText("Avoid bank conflicts.")
	s := tree.String()
	if s == "" {
		t.Error("empty String()")
	}
}

func BenchmarkParseSentence(b *testing.B) {
	words := textproc.Words("The number of threads per block should be chosen as a multiple of the warp size to avoid wasting computing resources with under-populated warps as much as possible.")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ParseWords(words)
	}
}
