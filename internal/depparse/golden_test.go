package depparse

import "testing"

// golden is one sentence with the relations the parser must produce
// (governor word, relation, dependent word). Only selector-relevant
// relations are pinned; the rest of the tree may vary.
type golden struct {
	sentence string
	rels     [][3]string // {type, governor, dependent}
	noSubj   []string    // verbs that must NOT govern a subject
	root     string
}

var goldenSuite = []golden{
	{
		sentence: "Use shared memory.",
		root:     "Use",
		rels:     [][3]string{{"dobj", "Use", "memory"}},
		noSubj:   []string{"Use"},
	},
	{
		sentence: "The compiler unrolls small loops automatically.",
		root:     "unrolls",
		rels: [][3]string{
			{"nsubj", "unrolls", "compiler"},
			{"dobj", "unrolls", "loops"},
			{"advmod", "unrolls", "automatically"},
		},
	},
	{
		sentence: "Applications should coalesce their global accesses.",
		root:     "coalesce",
		rels: [][3]string{
			{"nsubj", "coalesce", "Applications"},
			{"aux", "coalesce", "should"},
			{"poss", "accesses", "their"},
		},
	},
	{
		sentence: "The accesses are coalesced by the hardware.",
		root:     "coalesced",
		rels: [][3]string{
			{"nsubjpass", "coalesced", "accesses"},
			{"auxpass", "coalesced", "are"},
			{"prep", "coalesced", "by"},
			{"pobj", "by", "hardware"},
		},
	},
	{
		sentence: "Developers may want to measure the kernel first.",
		root:     "want",
		rels: [][3]string{
			{"nsubj", "want", "Developers"},
			{"xcomp", "want", "measure"},
			{"mark", "measure", "to"},
		},
	},
	{
		sentence: "Tiling the loops improves locality.",
		root:     "improves",
		rels:     [][3]string{{"dobj", "improves", "locality"}},
	},
	{
		sentence: "The hardware splits the request into two transactions.",
		root:     "splits",
		rels: [][3]string{
			{"nsubj", "splits", "hardware"},
			{"dobj", "splits", "request"},
			{"pobj", "into", "transactions"},
			{"num", "transactions", "two"},
		},
	},
	{
		sentence: "It is important to keep the pipeline busy.",
		rels: [][3]string{
			{"acomp", "is", "important"},
			{"xcomp", "important", "keep"},
		},
	},
	{
		sentence: "Avoid atomics and use privatized counters.",
		root:     "Avoid",
		rels: [][3]string{
			{"dobj", "Avoid", "atomics"},
			{"conj", "Avoid", "use"},
			{"cc", "Avoid", "and"},
			{"dobj", "use", "counters"},
		},
		noSubj: []string{"Avoid", "use"},
	},
	{
		sentence: "When the queue drains, submit the next batch.",
		root:     "submit",
		rels: [][3]string{
			{"nsubj", "drains", "queue"},
			{"mark", "drains", "When"},
			{"advcl", "submit", "drains"},
			{"dobj", "submit", "batch"},
		},
		noSubj: []string{"submit"},
	},
	{
		// embedded questions are outside the rule grammar's scope: only the
		// matrix clause is pinned
		sentence: "The guide describes how the scheduler issues instructions.",
		root:     "describes",
		rels: [][3]string{
			{"nsubj", "describes", "guide"},
		},
	},
	{
		sentence: "Programmers are encouraged to profile before tuning.",
		root:     "encouraged",
		rels: [][3]string{
			{"nsubjpass", "encouraged", "Programmers"},
			{"xcomp", "encouraged", "profile"},
		},
	},
	{
		sentence: "The L2 cache absorbs scattered traffic.",
		root:     "absorbs",
		rels: [][3]string{
			{"nsubj", "absorbs", "cache"},
			{"dobj", "absorbs", "traffic"},
			{"amod", "traffic", "scattered"},
		},
	},
	{
		sentence: "To hide the latency, increase the number of resident warps.",
		root:     "increase",
		rels: [][3]string{
			{"dobj", "increase", "number"},
			{"dobj", "hide", "latency"},
		},
		noSubj: []string{"increase"},
	},
	{
		sentence: "The runtime tracks every allocation and recycles it after the last reference.",
		root:     "tracks",
		rels: [][3]string{
			{"nsubj", "tracks", "runtime"},
			{"conj", "tracks", "recycles"},
		},
	},
	{
		sentence: "A kernel that spills registers loses throughput.",
		rels: [][3]string{
			{"nsubj", "spills", "kernel"},
			{"dobj", "spills", "registers"},
			{"dobj", "loses", "throughput"},
		},
	},
	{
		sentence: "Ensure that the buffer is aligned.",
		root:     "Ensure",
		rels: [][3]string{
			{"nsubjpass", "aligned", "buffer"},
		},
		noSubj: []string{"Ensure"},
	},
	{
		sentence: "Do not use mapped memory for large transfers.",
		root:     "use",
		rels: [][3]string{
			{"aux", "use", "Do"},
			{"neg", "use", "not"},
			{"dobj", "use", "memory"},
		},
		noSubj: []string{"use"},
	},
	{
		sentence: "Never call the blocking variant inside the loop.",
		root:     "call",
		rels: [][3]string{
			{"advmod", "call", "Never"},
			{"dobj", "call", "variant"},
		},
		noSubj: []string{"call"},
	},
	{
		sentence: "Prefer using events for cross-queue ordering.",
		root:     "Prefer",
		rels: [][3]string{
			{"xcomp", "Prefer", "using"},
			{"dobj", "using", "events"},
		},
		noSubj: []string{"Prefer"},
	},
	{
		sentence: "There are two ways to hide the latency.",
		root:     "are",
		rels: [][3]string{
			{"nsubj", "are", "There"},
			{"num", "ways", "two"},
			{"xcomp", "are", "hide"},
		},
	},
	{
		sentence: "Because the bus is slow, transfers dominate; overlap them with kernels.",
		root:     "dominate",
		rels: [][3]string{
			{"nsubj", "dominate", "transfers"},
			{"conj", "dominate", "overlap"},
			{"dobj", "overlap", "them"},
		},
		noSubj: []string{"overlap"},
	},
	{
		sentence: "Shared memory, unlike global memory, resides on the chip.",
		root:     "resides",
		rels: [][3]string{
			{"nsubj", "resides", "memory"},
			{"pobj", "on", "chip"},
		},
	},
	{
		sentence: "The driver can batch the submissions to cut the launch overhead.",
		root:     "batch",
		rels: [][3]string{
			{"nsubj", "batch", "driver"},
			{"aux", "batch", "can"},
			{"xcomp", "batch", "cut"},
		},
	},
}

func TestGoldenSuite(t *testing.T) {
	for _, g := range goldenSuite {
		tree := ParseText(g.sentence)
		if g.root != "" {
			root := tree.RootIndex()
			if root < 0 || tree.Words[root] != g.root {
				t.Errorf("%q: root %q, want %q\n%s", g.sentence, tree.Word(root), g.root, tree)
				continue
			}
		}
		for _, want := range g.rels {
			found := false
			for _, r := range tree.Relations {
				if string(r.Type) == want[0] && tree.Word(r.Governor) == want[1] && tree.Word(r.Dependent) == want[2] {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%q: missing %s(%s, %s)\n%s", g.sentence, want[0], want[1], want[2], tree)
			}
		}
		for _, verb := range g.noSubj {
			for i, w := range tree.Words {
				if w == verb && tree.HasSubject(i) {
					t.Errorf("%q: %q must have no subject\n%s", g.sentence, verb, tree)
				}
			}
		}
		if !checkTreeInvariants(tree) {
			t.Errorf("%q: structural invariants violated\n%s", g.sentence, tree)
		}
	}
}
