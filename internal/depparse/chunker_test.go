package depparse

import (
	"testing"

	"repro/internal/postag"
	"repro/internal/textproc"
)

// chunkKinds tags and chunks a sentence and returns the kind sequence.
func chunkKinds(s string) ([]chunkKind, []chunk) {
	words := textproc.Words(s)
	tags := postag.Tags(words)
	chunks := newChunker(words, tags).chunks()
	kinds := make([]chunkKind, len(chunks))
	for i, c := range chunks {
		kinds[i] = c.kind
	}
	return kinds, chunks
}

func TestChunkerBasicSequence(t *testing.T) {
	kinds, chunks := chunkKinds("The compiler unrolls small loops.")
	want := []chunkKind{npChunk, vgChunk, npChunk, punctTok}
	if len(kinds) != len(want) {
		t.Fatalf("kinds %v, want %v (%+v)", kinds, want, chunks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kind %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	// NP heads are the final nouns
	if chunks[0].head != 1 { // "compiler"
		t.Errorf("first NP head %d", chunks[0].head)
	}
	if chunks[2].head != 4 { // "loops"
		t.Errorf("second NP head %d", chunks[2].head)
	}
}

func TestChunkerVerbGroupSpan(t *testing.T) {
	_, chunks := chunkKinds("The guarantee can often be leveraged to avoid calls.")
	var vg *chunk
	for i := range chunks {
		if chunks[i].kind == vgChunk && !chunks[i].hasTo {
			vg = &chunks[i]
			break
		}
	}
	if vg == nil {
		t.Fatal("no main verb group")
	}
	// "can often be leveraged": start at "can" (2), head at "leveraged" (5)
	if vg.start != 2 || vg.head != 5 {
		t.Errorf("vg span [%d..%d] head %d", vg.start, vg.end, vg.head)
	}
	if !vg.passive {
		t.Error("passive not detected")
	}
}

func TestChunkerInfinitiveMarked(t *testing.T) {
	_, chunks := chunkKinds("Use buffers to avoid copies.")
	var toVG *chunk
	for i := range chunks {
		if chunks[i].kind == vgChunk && chunks[i].hasTo {
			toVG = &chunks[i]
		}
	}
	if toVG == nil {
		t.Fatal("no infinitival verb group")
	}
}

func TestChunkerSoAsCoordinator(t *testing.T) {
	kinds, _ := chunkKinds("Pinning takes time, so avoid pinning costs.")
	foundCC := false
	for _, k := range kinds {
		if k == ccMarker {
			foundCC = true
		}
	}
	if !foundCC {
		t.Errorf("no ccMarker for 'so': %v", kinds)
	}
}

func TestChunkerSubordinators(t *testing.T) {
	kinds, _ := chunkKinds("If the kernel stalls, raise the occupancy.")
	if kinds[0] != subMarker {
		t.Errorf("'If' chunked as %v", kinds[0])
	}
	// "as a multiple of the warp size" — prepositional "as", no subordinator
	kinds2, _ := chunkKinds("Choose the size as a multiple of the warp size.")
	for i, k := range kinds2 {
		if k == subMarker {
			t.Errorf("prepositional 'as' chunked as subordinator at %d: %v", i, kinds2)
		}
	}
}

func TestChunkerGerundSubjectIsNP(t *testing.T) {
	_, chunks := chunkKinds("Pinning takes time.")
	if chunks[0].kind != npChunk {
		t.Errorf("gerund subject chunked as %v", chunks[0].kind)
	}
}

func TestChunkerCoversAllTokens(t *testing.T) {
	sentences := []string{
		"The number of threads per block should be chosen as a multiple of the warp size.",
		"Thus, a developer may prefer using buffers instead of images if no sampling operation is needed.",
		"Do not use mapped memory for large transfers.",
	}
	for _, s := range sentences {
		words := textproc.Words(s)
		tags := postag.Tags(words)
		chunks := newChunker(words, tags).chunks()
		covered := make([]bool, len(words))
		for _, c := range chunks {
			if c.start < 0 || c.end >= len(words) || c.start > c.end {
				t.Fatalf("%q: bad span %+v", s, c)
			}
			if c.head < c.start || c.head > c.end {
				t.Fatalf("%q: head outside span %+v", s, c)
			}
			for i := c.start; i <= c.end; i++ {
				if covered[i] {
					t.Fatalf("%q: token %d covered twice", s, i)
				}
				covered[i] = true
			}
		}
		for i, c := range covered {
			if !c {
				t.Errorf("%q: token %d (%s) not chunked", s, i, words[i])
			}
		}
	}
}
