package depparse

import (
	"strings"

	"repro/internal/postag"
)

// Pcomp is the relation of a clausal complement of a preposition
// ("in maximizing throughput").
const Pcomp RelType = "pcomp"

// ParseTagged assembles the dependency tree from pre-tagged tokens.
func ParseTagged(words []string, tags []postag.Tag) *Tree {
	t := &Tree{
		Words: words,
		Tags:  tags,
		head:  make([]int, len(words)),
		relOf: make([]RelType, len(words)),
	}
	for i := range t.head {
		t.head[i] = -2
	}
	if len(words) == 0 {
		return t
	}
	a := &attacher{
		tree:       t,
		lower:      lowerAll(words),
		rootIdx:    -1,
		mainVerb:   -1,
		curVerb:    -1,
		subjCand:   -1,
		afterPrep:  -1,
		pendingCC:  -1,
		pendingSub: -1,
		predAdj:    -1,
		lastNPHead: -1,
		gerundSubj: -1,
	}
	a.run(newChunker(words, tags).chunks())
	a.finish()
	return t
}

func isRelativePronoun(lw string) bool {
	switch lw {
	case "that", "which", "who", "whose":
		return true
	}
	return false
}

func lowerAll(words []string) []string {
	out := make([]string, len(words))
	for i, w := range words {
		out[i] = strings.ToLower(w)
	}
	return out
}

// attacher holds the clause-assembly state of the single left-to-right
// attachment pass.
type attacher struct {
	tree  *Tree
	lower []string

	rootIdx    int
	mainVerb   int // head verb of the top-level clause
	curVerb    int // current attachment target verb
	subjCand   int // head of the most recent subject-position NP
	afterPrep  int // preposition token awaiting its object
	pendingCC  int
	pendingSub int // subordinator token awaiting its clause verb
	predAdj    int // predicate adjective after a copula
	lastNPHead int
	gerundSubj int // sentence-initial gerund awaiting its matrix verb
	inSub      bool
	inPcomp    bool
	prevKind   chunkKind
	prevWasVG  bool

	pendingAdvs  []int
	orphanPreps  []int // prepositions seen before any verb
	deferredAdvc []int // embedded clause heads awaiting a main verb
}

// attach adds relation rel(gov, dep) unless dep is already attached or the
// edge would create a cycle.
func (a *attacher) attach(rel RelType, gov, dep int) bool {
	t := a.tree
	if dep < 0 || dep >= len(t.head) || t.head[dep] != -2 || gov == dep {
		return false
	}
	// cycle check: follow heads upward from gov
	for g := gov; g >= 0; g = t.head[g] {
		if g == dep {
			return false
		}
		if t.head[g] == -2 {
			break
		}
	}
	t.head[dep] = gov
	t.relOf[dep] = rel
	t.Relations = append(t.Relations, Relation{Type: rel, Governor: gov, Dependent: dep})
	return true
}

func (a *attacher) run(chunks []chunk) {
	for _, ch := range chunks {
		switch ch.kind {
		case npChunk:
			a.onNP(ch)
		case vgChunk:
			a.onVG(ch)
		case adjChunk:
			a.onAdj(ch)
		case ppMarker:
			a.onPrep(ch)
		case advChunk:
			a.onAdv(ch)
		case ccMarker:
			a.pendingCC = ch.head
		case subMarker:
			a.pendingSub = ch.head
			// a relative pronoun directly after an NP keeps the NP as the
			// semantic subject of the relative verb ("a stride that
			// crosses ..."); other subordinators start a fresh clause.
			if !(a.prevKind == npChunk && isRelativePronoun(a.lower[ch.head])) {
				a.subjCand = -1
			}
		case punctTok:
			a.onPunct(ch)
		default:
			if a.curVerb >= 0 {
				a.attach(Dep, a.curVerb, ch.head)
			}
		}
		if ch.kind != punctTok {
			a.prevWasVG = ch.kind == vgChunk
		}
		a.prevKind = ch.kind
	}
}

func (a *attacher) onNP(ch chunk) {
	a.emitNPInternal(ch)
	h := ch.head
	switch {
	case a.afterPrep >= 0:
		a.attach(Pobj, a.afterPrep, h)
		a.afterPrep = -1
	case a.pendingCC >= 0 && a.prevKind == ccMarker && a.lastNPHead >= 0:
		a.attach(Conj, a.lastNPHead, h)
		a.attach(Cc, a.lastNPHead, a.pendingCC)
		a.pendingCC = -1
	case a.prevWasVG && a.curVerb >= 0:
		a.attach(Dobj, a.curVerb, h)
	case a.predAdj >= 0:
		// "is better a choice"-style: rare; attach under the adjective
		a.attach(Dep, a.predAdj, h)
	default:
		a.subjCand = h
	}
	a.lastNPHead = h
}

func (a *attacher) onVG(ch chunk) {
	h := ch.head
	a.emitVGInternal(ch)
	finite := a.tree.Tags[h].FiniteVerb() || vgHasFiniteAux(a.tree, ch) ||
		isBeWord(a.lower[h])
	switch {
	case ch.hasTo && a.curVerb < 0 && a.rootIdx < 0 && a.mainVerb < 0:
		// sentence-initial infinitive: a fronted purpose clause
		// ("To hide the latency, increase ..."); the main clause follows.
		a.deferredAdvc = append(a.deferredAdvc, h)
		a.curVerb = h
		a.inSub = true
	case a.tree.Tags[h] == postag.VBG && a.curVerb < 0 && a.rootIdx < 0 &&
		a.subjCand < 0 && a.gerundSubj < 0 && !ch.hasTo:
		// sentence-initial gerund phrase acts as the subject of the matrix
		// verb: "Tiling the loops improves locality."
		a.gerundSubj = h
		a.curVerb = h
	case a.afterPrep >= 0:
		// gerund complement of a preposition: "in maximizing throughput"
		a.attach(Pcomp, a.afterPrep, h)
		a.afterPrep = -1
		a.curVerb = h
		a.inPcomp = true
	case a.pendingSub >= 0:
		a.attach(Mark, h, a.pendingSub)
		if a.mainVerb >= 0 {
			a.attach(Advcl, a.mainVerb, h)
		} else {
			a.deferredAdvc = append(a.deferredAdvc, h)
		}
		a.attachSubject(ch)
		a.pendingSub = -1
		a.curVerb = h
		a.inSub = true
	case (ch.hasTo || a.tree.Tags[h] == postag.VBG) && (a.predAdj >= 0 || a.curVerb >= 0):
		gov := a.predAdj
		if gov < 0 {
			gov = a.curVerb
		}
		a.attach(Xcomp, gov, h)
		a.predAdj = -1
		a.curVerb = h
	case a.tree.Tags[h] == postag.VB && a.prevWasVG && a.curVerb >= 0:
		// bare-infinitive complement: "help avoid explicit calls"
		a.attach(Xcomp, a.curVerb, h)
		a.curVerb = h
	case a.pendingCC >= 0 && a.curVerb >= 0:
		a.attach(Conj, a.curVerb, h)
		a.attach(Cc, a.curVerb, a.pendingCC)
		// only an NP between the conjunction and this verb is its subject;
		// leftovers from the previous conjunct are not.
		if a.subjCand >= 0 && a.subjCand < a.pendingCC {
			a.subjCand = -1
		}
		a.pendingCC = -1
		a.attachSubject(ch)
		a.curVerb = h
		if !a.inSub {
			a.mainVerb = h
		}
	case a.curVerb < 0 || (a.inPcomp && finite) ||
		(a.inSub && a.mainVerb < 0 && finite) ||
		(a.gerundSubj >= 0 && a.gerundSubj == a.curVerb && finite):
		// main clause verb: first verb, or discovered after a pcomp
		// digression, a fronted subordinate/purpose clause, or a gerund
		// subject phrase
		if a.rootIdx < 0 {
			a.attach(Root, -1, h)
			a.rootIdx = h
		} else if a.mainVerb >= 0 {
			a.attach(Conj, a.mainVerb, h)
		}
		a.mainVerb = h
		a.curVerb = h
		a.inPcomp = false
		a.inSub = false
		if a.gerundSubj >= 0 {
			a.attach(Nsubj, h, a.gerundSubj)
			a.gerundSubj = -1
		} else {
			a.attachSubject(ch)
		}
		a.flushDeferred(h)
	default:
		// comma-spliced or relative clause verb: coordinate conservatively
		if a.subjCand >= 0 {
			a.attachSubject(ch)
		}
		a.attach(Conj, a.curVerb, h)
		a.curVerb = h
	}
	for _, adv := range a.pendingAdvs {
		a.attach(Advmod, h, adv)
	}
	a.pendingAdvs = a.pendingAdvs[:0]
	for _, p := range a.orphanPreps {
		a.attach(Prep, h, p)
	}
	a.orphanPreps = a.orphanPreps[:0]
}

// attachSubject links the pending subject candidate to the verb group head,
// choosing nsubjpass for passive groups.
func (a *attacher) attachSubject(ch chunk) {
	if a.subjCand < 0 {
		return
	}
	rel := Nsubj
	if ch.passive {
		rel = Nsubjpass
	}
	a.attach(rel, ch.head, a.subjCand)
	a.subjCand = -1
}

func (a *attacher) flushDeferred(mainVerb int) {
	for _, h := range a.deferredAdvc {
		a.attach(Advcl, mainVerb, h)
	}
	a.deferredAdvc = a.deferredAdvc[:0]
}

func (a *attacher) onAdj(ch chunk) {
	h := ch.head
	switch {
	case a.curVerb >= 0 && isBeWord(a.lower[a.curVerb]):
		a.attach(Acomp, a.curVerb, h)
		a.predAdj = h
	case a.afterPrep >= 0:
		// "at best", "in general": adjective as prep object
		a.attach(Pobj, a.afterPrep, h)
		a.afterPrep = -1
	case a.pendingCC >= 0 && a.predAdj >= 0:
		a.attach(Conj, a.predAdj, h)
		a.attach(Cc, a.predAdj, a.pendingCC)
		a.pendingCC = -1
	case a.curVerb >= 0:
		a.attach(Acomp, a.curVerb, h)
		a.predAdj = h
	case a.lastNPHead >= 0:
		a.attach(Amod, a.lastNPHead, h)
	}
}

func (a *attacher) onPrep(ch chunk) {
	h := ch.head
	var gov int
	switch {
	case a.prevKind == npChunk && a.lastNPHead >= 0:
		gov = a.lastNPHead
	case a.predAdj >= 0:
		gov = a.predAdj
	case a.curVerb >= 0:
		gov = a.curVerb
	case a.subjCand >= 0:
		gov = a.subjCand
	default:
		a.orphanPreps = append(a.orphanPreps, h)
		a.afterPrep = h
		return
	}
	a.attach(Prep, gov, h)
	a.afterPrep = h
}

func (a *attacher) onAdv(ch chunk) {
	if a.curVerb >= 0 {
		a.attach(Advmod, a.curVerb, ch.head)
		return
	}
	a.pendingAdvs = append(a.pendingAdvs, ch.head)
}

func (a *attacher) onPunct(ch chunk) {
	switch a.tree.Words[ch.head] {
	case ",":
		a.afterPrep = -1
		if a.inSub {
			a.inSub = false
			if a.mainVerb >= 0 {
				a.curVerb = a.mainVerb
			} else {
				// fronted subordinate clause; the main clause starts here
				a.curVerb = -1
				a.subjCand = -1
			}
		}
	case ";", ":":
		a.curVerb = -1
		a.subjCand = -1
		a.predAdj = -1
		a.afterPrep = -1
		a.pendingCC = -1
		a.pendingSub = -1
		a.inSub = false
		a.inPcomp = false
	}
}

func (a *attacher) emitNPInternal(ch chunk) {
	h := ch.head
	for i := ch.start; i <= ch.end; i++ {
		if i == h {
			continue
		}
		switch tg := a.tree.Tags[i]; {
		case tg == postag.DT:
			a.attach(Det, h, i)
		case tg == postag.PRPS:
			a.attach(Poss, h, i)
		case tg.IsAdjective():
			a.attach(Amod, h, i)
		case tg == postag.VBN || tg == postag.VBG:
			a.attach(Amod, h, i)
		case tg == postag.CD:
			a.attach(Num, h, i)
		case tg.IsNoun():
			a.attach(Nn, h, i)
		default:
			a.attach(Dep, h, i)
		}
	}
}

func (a *attacher) emitVGInternal(ch chunk) {
	h := ch.head
	headIsBe := isBeWord(a.lower[h])
	for i := ch.start; i <= ch.end; i++ {
		if i == h {
			continue
		}
		lw := a.lower[i]
		switch tg := a.tree.Tags[i]; {
		case tg == postag.TO:
			a.attach(Mark, h, i)
		case lw == "not" || lw == "n't":
			a.attach(Neg, h, i)
		case tg == postag.MD:
			a.attach(Aux, h, i)
		case isBeWord(lw) && !headIsBe:
			if ch.passive {
				a.attach(Auxpass, h, i)
			} else {
				a.attach(Aux, h, i)
			}
		case tg.IsVerb():
			a.attach(Aux, h, i)
		case tg.IsAdverb():
			a.attach(Advmod, h, i)
		default:
			a.attach(Dep, h, i)
		}
	}
}

// vgHasFiniteAux reports whether the verb group contains a finite auxiliary
// (so "can ... be leveraged" counts as finite even though its head is VBN).
func vgHasFiniteAux(t *Tree, ch chunk) bool {
	for i := ch.start; i <= ch.end; i++ {
		if t.Tags[i].FiniteVerb() {
			return true
		}
	}
	return false
}

// finish guarantees the structural invariants: exactly one root when the
// sentence is non-empty, and every non-punctuation token attached.
func (a *attacher) finish() {
	t := a.tree
	if a.rootIdx < 0 {
		// no verb group became root: promote the first verb, else the
		// first subject-like noun, else the first non-punct token.
		cand := -1
		for i, tg := range t.Tags {
			if tg.IsVerb() {
				cand = i
				break
			}
		}
		if cand < 0 {
			for i, tg := range t.Tags {
				if tg != postag.PUNCT {
					cand = i
					break
				}
			}
		}
		if cand >= 0 {
			if t.head[cand] == -2 {
				a.attach(Root, -1, cand)
			} else {
				// walk up to the top of cand's chain and root that
				top := cand
				for t.head[top] >= 0 {
					top = t.head[top]
				}
				if t.head[top] == -2 {
					a.attach(Root, -1, top)
				}
			}
			a.rootIdx = t.RootIndex()
		}
	}
	if a.rootIdx < 0 {
		return
	}
	for i := range t.head {
		if t.head[i] == -2 && t.Tags[i] != postag.PUNCT && i != a.rootIdx {
			a.attach(Dep, a.rootIdx, i)
		}
	}
}
