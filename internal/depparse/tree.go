// Package depparse implements a deterministic, rule-based typed dependency
// parser producing the Stanford-dependencies relation subset that Egeria's
// selectors consume: root, nsubj, nsubjpass, xcomp, dobj, det, amod, nn,
// aux, auxpass, cop, mark, advmod, prep, pobj, cc, conj, advcl, ccomp, neg,
// num, acomp. It replaces the Stanford CoreNLP dependency parser used by the
// original implementation. The parser is a chunk-then-attach design: noun
// phrases and verb groups are chunked over POS tags, then clause structure
// is assembled and relations emitted.
package depparse

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/postag"
	"repro/internal/textproc"
)

// RelType names a typed dependency relation.
type RelType string

// The emitted relation inventory (Stanford dependencies naming).
const (
	Root      RelType = "root"
	Nsubj     RelType = "nsubj"
	Nsubjpass RelType = "nsubjpass"
	Xcomp     RelType = "xcomp"
	Dobj      RelType = "dobj"
	Det       RelType = "det"
	Amod      RelType = "amod"
	Nn        RelType = "nn"
	Aux       RelType = "aux"
	Auxpass   RelType = "auxpass"
	Cop       RelType = "cop"
	Mark      RelType = "mark"
	Advmod    RelType = "advmod"
	Prep      RelType = "prep"
	Pobj      RelType = "pobj"
	Cc        RelType = "cc"
	Conj      RelType = "conj"
	Advcl     RelType = "advcl"
	Ccomp     RelType = "ccomp"
	Neg       RelType = "neg"
	Num       RelType = "num"
	Acomp     RelType = "acomp"
	Poss      RelType = "poss"
	Dep       RelType = "dep"
)

// Relation is one typed dependency edge. Governor == -1 denotes the virtual
// ROOT node.
type Relation struct {
	Type      RelType
	Governor  int
	Dependent int
}

// Tree is the dependency analysis of one sentence.
type Tree struct {
	Words     []string
	Tags      []postag.Tag
	Relations []Relation
	head      []int     // head token index per token; -1 root; -2 unattached
	relOf     []RelType // relation to head per token
}

// ParseText tokenizes, tags and parses a single sentence.
func ParseText(sentence string) *Tree {
	words := textproc.Words(sentence)
	return ParseWords(words)
}

// ParseWords tags and parses a pre-tokenized sentence.
func ParseWords(words []string) *Tree {
	return ParseTagged(words, postag.Tags(words))
}

// Word returns the token text at index i, or "ROOT" for -1.
func (t *Tree) Word(i int) string {
	if i < 0 {
		return "ROOT"
	}
	return t.Words[i]
}

// Lemma returns the lemma of token i steered by its POS tag.
func (t *Tree) Lemma(i int) string {
	if i < 0 || i >= len(t.Words) {
		return ""
	}
	switch {
	case t.Tags[i].IsVerb():
		return textproc.Lemma(t.Words[i], textproc.VerbClass)
	case t.Tags[i].IsNoun():
		return textproc.Lemma(t.Words[i], textproc.NounClass)
	case t.Tags[i].IsAdjective():
		return textproc.Lemma(t.Words[i], textproc.AdjClass)
	}
	return strings.ToLower(t.Words[i])
}

// RootIndex returns the token index of the root, or -1 when the sentence has
// no tokens.
func (t *Tree) RootIndex() int {
	for _, r := range t.Relations {
		if r.Type == Root {
			return r.Dependent
		}
	}
	return -1
}

// RelationsOfType returns all relations with the given type.
func (t *Tree) RelationsOfType(rt RelType) []Relation {
	var out []Relation
	for _, r := range t.Relations {
		if r.Type == rt {
			out = append(out, r)
		}
	}
	return out
}

// HeadOf returns the head token index of token i (-1 for the root token).
func (t *Tree) HeadOf(i int) int {
	if i < 0 || i >= len(t.head) {
		return -2
	}
	return t.head[i]
}

// RelationTo returns the relation type linking token i to its head.
func (t *Tree) RelationTo(i int) RelType {
	if i < 0 || i >= len(t.relOf) {
		return Dep
	}
	return t.relOf[i]
}

// HasSubject reports whether token i governs an nsubj or nsubjpass relation.
func (t *Tree) HasSubject(i int) bool {
	for _, r := range t.Relations {
		if (r.Type == Nsubj || r.Type == Nsubjpass) && r.Governor == i {
			return true
		}
	}
	return false
}

// SubjectsOf returns the dependents of nsubj/nsubjpass relations governed by
// token i.
func (t *Tree) SubjectsOf(i int) []int {
	var out []int
	for _, r := range t.Relations {
		if (r.Type == Nsubj || r.Type == Nsubjpass) && r.Governor == i {
			out = append(out, r.Dependent)
		}
	}
	return out
}

// AllSubjects returns the dependents of every nsubj relation in the tree.
func (t *Tree) AllSubjects() []int {
	var out []int
	for _, r := range t.Relations {
		if r.Type == Nsubj {
			out = append(out, r.Dependent)
		}
	}
	return out
}

// ConjChainFromRoot returns the root token plus every token reachable from it
// via conj relations (transitively). Used by the imperative selector to
// consider coordinated clause heads ("..., so avoid ...").
func (t *Tree) ConjChainFromRoot() []int {
	root := t.RootIndex()
	if root < 0 {
		return nil
	}
	seen := map[int]bool{root: true}
	queue := []int{root}
	for len(queue) > 0 {
		g := queue[0]
		queue = queue[1:]
		for _, r := range t.Relations {
			if r.Type == Conj && r.Governor == g && !seen[r.Dependent] {
				seen[r.Dependent] = true
				queue = append(queue, r.Dependent)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// String renders the relations in the conventional
// reltype(governor-idx, dependent-idx) format, one per line.
func (t *Tree) String() string {
	var b strings.Builder
	for _, r := range t.Relations {
		fmt.Fprintf(&b, "%s(%s-%d, %s-%d)\n",
			r.Type, t.Word(r.Governor), r.Governor+1, t.Word(r.Dependent), r.Dependent+1)
	}
	return b.String()
}

// HasRelation reports whether the tree contains a relation of the given type
// whose governor's lemma equals govLemma ("*" matches any governor).
func (t *Tree) HasRelation(rt RelType, govLemma string) bool {
	for _, r := range t.Relations {
		if r.Type != rt {
			continue
		}
		if govLemma == "*" || t.Lemma(r.Governor) == govLemma {
			return true
		}
	}
	return false
}
