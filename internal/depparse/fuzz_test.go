package depparse

import (
	"testing"
)

// FuzzParse feeds the dependency parser arbitrary sentence strings. Seeds
// live in testdata/fuzz/FuzzParse — sentences from the three synthetic
// guides (regenerate with `go run ./tools/fuzzseed`) — plus the adversarial
// cases below. Invariants: no panics, tags align with words, every relation
// endpoint is a valid token index (governor -1 = virtual ROOT, Root
// relations only from ROOT), and the tree walks the selectors rely on stay
// in bounds.
func FuzzParse(f *testing.F) {
	f.Add("")
	f.Add("use")
	f.Add("it is recommended to coalesce global memory accesses")
	f.Add("avoid shared memory bank conflicts , and prefer registers")
	f.Add("punctuation only ?! ... ---")
	f.Add("123 456 7.89 0x1f")
	f.Add("a a a a a a a a a a a a a a a a a a a a a a a a a a a a")
	f.Add("ALL CAPS SHOUTING WITH weird MiXeD caSE")
	f.Add("\tleading whitespace\nand newlines\r\n")
	f.Add("émigré naïve café — unicode words")

	f.Fuzz(func(t *testing.T, sentence string) {
		tree := ParseText(sentence)
		n := len(tree.Words)
		if len(tree.Tags) != n {
			t.Fatalf("%d tags for %d words", len(tree.Tags), n)
		}
		for _, rel := range tree.Relations {
			if rel.Dependent < 0 || rel.Dependent >= n {
				t.Fatalf("relation %s: dependent %d out of range [0,%d)", rel.Type, rel.Dependent, n)
			}
			if rel.Governor < -1 || rel.Governor >= n {
				t.Fatalf("relation %s: governor %d out of range [-1,%d)", rel.Type, rel.Governor, n)
			}
			if rel.Type == Root && rel.Governor != -1 {
				t.Fatalf("root relation with governor %d, want -1", rel.Governor)
			}
			if rel.Type != Root && rel.Governor == rel.Dependent {
				t.Fatalf("relation %s: self-loop at %d", rel.Type, rel.Dependent)
			}
		}
		// the traversals Stage I runs on every sentence must stay in bounds
		for _, v := range tree.ConjChainFromRoot() {
			if v < 0 || v >= n {
				t.Fatalf("ConjChainFromRoot returned %d of %d", v, n)
			}
		}
		for _, s := range tree.AllSubjects() {
			if s < 0 || s >= n {
				t.Fatalf("AllSubjects returned %d of %d", s, n)
			}
		}
		for i := 0; i < n; i++ {
			_ = tree.Lemma(i)
			_ = tree.HasSubject(i)
		}
	})
}
