package depparse

import (
	"strings"

	"repro/internal/postag"
)

// chunkKind distinguishes the phrase types the attacher manipulates.
type chunkKind int

const (
	npChunk   chunkKind = iota // noun phrase
	vgChunk                    // verb group (aux chain + head verb)
	ppMarker                   // preposition (single token)
	advChunk                   // adverb (single token)
	adjChunk                   // predicate adjective (single token, outside NP)
	ccMarker                   // coordinating conjunction
	subMarker                  // subordinator opening an embedded clause
	punctTok                   // punctuation
	otherTok                   // anything else
)

// chunk is a contiguous token span with a designated head.
type chunk struct {
	kind    chunkKind
	start   int // first token index (inclusive)
	end     int // last token index (inclusive)
	head    int // head token index
	passive bool
	hasTo   bool // verb group introduced by infinitival "to"
	sub     bool // verb group preceded by a subordinator (embedded clause)
}

// subordinators open embedded clauses when seen at clause level.
var subordinators = map[string]bool{
	"if": true, "because": true, "when": true, "where": true, "while": true,
	"although": true, "though": true, "unless": true, "whether": true,
	"since": true, "that": true, "whenever": true, "wherever": true,
	"until": true, "once": true, "before": true, "after": true, "as": true,
}

// chunker groups the tagged tokens of one sentence into phrases.
type chunker struct {
	words []string
	lower []string
	tags  []postag.Tag
}

func newChunker(words []string, tags []postag.Tag) *chunker {
	lower := make([]string, len(words))
	for i, w := range words {
		lower[i] = strings.ToLower(w)
	}
	return &chunker{words: words, lower: lower, tags: tags}
}

// chunks performs a single left-to-right pass producing the phrase sequence.
func (c *chunker) chunks() []chunk {
	var out []chunk
	n := len(c.words)
	i := 0
	for i < n {
		t := c.tags[i]
		switch {
		case t == postag.PUNCT:
			out = append(out, chunk{kind: punctTok, start: i, end: i, head: i})
			i++
		case c.lower[i] == "so" && t == postag.IN:
			// ", so avoid ..." coordinates clauses
			out = append(out, chunk{kind: ccMarker, start: i, end: i, head: i})
			i++
		case t == postag.VBG && i+1 < n && c.tags[i+1].FiniteVerb():
			// gerund subject: "Pinning takes time"
			out = append(out, chunk{kind: npChunk, start: i, end: i, head: i})
			i++
		case c.lower[i] == "that" && t == postag.DT && c.finiteVerbNear(i, 4):
			// relative pronoun / complementizer: "a stride that crosses",
			// "ensure that all accesses are coalesced"
			out = append(out, chunk{kind: subMarker, start: i, end: i, head: i})
			i++
		case c.isVerbGroupStart(i):
			ch := c.scanVerbGroup(i)
			out = append(out, ch)
			i = ch.end + 1
		case c.isNPStart(i):
			ch := c.scanNP(i)
			out = append(out, ch)
			i = ch.end + 1
		case t == postag.IN:
			if subordinators[c.lower[i]] && c.clauseFollows(i) {
				out = append(out, chunk{kind: subMarker, start: i, end: i, head: i})
			} else {
				out = append(out, chunk{kind: ppMarker, start: i, end: i, head: i})
			}
			i++
		case t == postag.WDT || t == postag.WP || t == postag.WRB:
			out = append(out, chunk{kind: subMarker, start: i, end: i, head: i})
			i++
		case t == postag.CC:
			out = append(out, chunk{kind: ccMarker, start: i, end: i, head: i})
			i++
		case t.IsAdverb():
			out = append(out, chunk{kind: advChunk, start: i, end: i, head: i})
			i++
		case t.IsAdjective():
			out = append(out, chunk{kind: adjChunk, start: i, end: i, head: i})
			i++
		case t == postag.TO:
			// "to" not followed by a verb behaves as a preposition
			out = append(out, chunk{kind: ppMarker, start: i, end: i, head: i})
			i++
		default:
			out = append(out, chunk{kind: otherTok, start: i, end: i, head: i})
			i++
		}
	}
	return out
}

// finiteVerbNear reports whether a finite verb occurs within the next
// `window` tokens after position i.
func (c *chunker) finiteVerbNear(i, window int) bool {
	limit := i + 1 + window
	if limit > len(c.tags) {
		limit = len(c.tags)
	}
	for j := i + 1; j < limit; j++ {
		if c.tags[j].FiniteVerb() {
			return true
		}
	}
	return false
}

// clauseFollows reports whether a subject+verb (or verb) plausibly follows
// position i, distinguishing subordinator use of "as"/"before"/... from
// prepositional use ("as a multiple of the warp size").
func (c *chunker) clauseFollows(i int) bool {
	lw := c.lower[i]
	// strong subordinators always open clauses
	switch lw {
	case "if", "because", "although", "though", "unless", "whether", "while", "that", "whenever", "wherever", "when", "where":
		// "that" as determiner is tagged DT, so IN-"that" is a complementizer
		return true
	}
	// weak ones (as, before, after, since, until, once): require a finite
	// verb within the next few tokens before any preposition.
	limit := i + 7
	if limit > len(c.tags) {
		limit = len(c.tags)
	}
	for j := i + 1; j < limit; j++ {
		if c.tags[j].FiniteVerb() {
			return true
		}
		if c.tags[j] == postag.IN || c.tags[j] == postag.PUNCT {
			return false
		}
	}
	return false
}

func (c *chunker) isVerbGroupStart(i int) bool {
	t := c.tags[i]
	if t == postag.MD {
		return true
	}
	if t == postag.TO {
		// infinitival to: followed by (adverb*) base verb
		j := i + 1
		for j < len(c.tags) && c.tags[j].IsAdverb() {
			j++
		}
		return j < len(c.tags) && c.tags[j] == postag.VB
	}
	if !t.IsVerb() {
		return false
	}
	if t == postag.VBG {
		// gerund head ("prefer using buffers", "in maximizing throughput")
		// vs NP-internal premodifier ("a sampling operation"): premodifier
		// exactly when NP material directly precedes.
		if i == 0 {
			return true
		}
		pt := c.tags[i-1]
		if pt == postag.DT || pt == postag.PRPS || pt.IsAdjective() ||
			pt == postag.CD || pt.IsNoun() {
			return false
		}
		return true
	}
	if t == postag.VBN {
		// a past participle heads a verb group only inside an auxiliary
		// chain ("is shared"); elsewhere it premodifies ("shared memory").
		j := i - 1
		for j >= 0 && (c.tags[j].IsAdverb() || c.lower[j] == "not") {
			j--
		}
		return j >= 0 && c.isAuxWord(j)
	}
	return true
}

func (c *chunker) isAuxWord(i int) bool {
	switch c.lower[i] {
	case "be", "is", "are", "am", "was", "were", "been", "being",
		"have", "has", "had", "having", "do", "does", "did",
		"can", "could", "may", "might", "must", "shall", "should",
		"will", "would", "cannot", "ca", "to", "get", "gets", "got":
		return true
	}
	return false
}

// scanVerbGroup consumes an auxiliary chain plus head verb starting at i:
// [TO] (MD|be|have|do)* (RB|not)* V. The head is the final, rightmost verb.
func (c *chunker) scanVerbGroup(i int) chunk {
	n := len(c.tags)
	ch := chunk{kind: vgChunk, start: i}
	j := i
	if c.tags[j] == postag.TO {
		ch.hasTo = true
		j++
	}
	lastVerb := -1
	sawBe := false
	sawBeLast := false
	for j < n {
		t := c.tags[j]
		lw := c.lower[j]
		if t.IsAdverb() || lw == "not" || lw == "n't" {
			j++
			continue
		}
		if !t.IsVerb() && t != postag.MD {
			break
		}
		// premodifier check: a VBN/VBG before nominal material terminates
		// the group unless a be-auxiliary directly licenses it
		if (t == postag.VBN || t == postag.VBG) && !sawBeLast && lastVerb >= 0 {
			// e.g. "uses shared memory": "shared" starts an NP, not the VG
			if j+1 < n && (c.tags[j+1].IsNoun() || c.tags[j+1].IsAdjective()) {
				break
			}
		}
		lastVerb = j
		sawBeLast = isBeWord(lw)
		if sawBeLast {
			sawBe = true
		}
		j++
		// only auxiliaries continue the chain; a lexical verb ends it
		// unless the next token is a verb licensed by this one (be/have/do/MD)
		if !c.isAuxWord(lastVerb) {
			break
		}
	}
	if lastVerb < 0 {
		// degenerate: "to" with no verb; treat as single-token marker
		ch.end = i
		ch.head = i
		return ch
	}
	ch.end = j - 1
	if ch.end < lastVerb {
		ch.end = lastVerb
	}
	ch.head = lastVerb
	ch.passive = sawBe && c.tags[lastVerb] == postag.VBN && !isBeWord(c.lower[lastVerb])
	return ch
}

func isBeWord(lw string) bool {
	switch lw {
	case "be", "is", "are", "am", "was", "were", "been", "being":
		return true
	}
	return false
}

func (c *chunker) isNPStart(i int) bool {
	t := c.tags[i]
	switch {
	case t == postag.DT, t == postag.PRPS, t == postag.PRP, t == postag.EX,
		t == postag.CD, t.IsNoun():
		return true
	case t.IsAdjective():
		// adjective opening an NP: must be followed by nominal material
		for j := i + 1; j < len(c.tags); j++ {
			tj := c.tags[j]
			if tj.IsAdjective() || tj == postag.CD || tj == postag.VBN || tj == postag.VBG {
				continue
			}
			return tj.IsNoun()
		}
	case t == postag.VBN:
		// participial premodifier opening an NP: "shared memory",
		// "privatized counters"
		return c.nominalAhead(i)
	}
	return false
}

// scanNP consumes (DT|PRP$)? (JJ|VBN|VBG|CD|NN*)* head-noun, head = last noun.
func (c *chunker) scanNP(i int) chunk {
	n := len(c.tags)
	ch := chunk{kind: npChunk, start: i}
	j := i
	lastNoun := -1
	if c.tags[j] == postag.PRP || c.tags[j] == postag.EX {
		ch.end = j
		ch.head = j
		return ch
	}
	if c.tags[j] == postag.DT || c.tags[j] == postag.PRPS {
		j++
	}
	if j < n && j == i && c.tags[j] == postag.VBN {
		// NP opened by a participle premodifier: consume it first
		j++
	}
	for j < n {
		t := c.tags[j]
		switch {
		case t.IsNoun():
			lastNoun = j
			j++
		case t.IsAdjective() || t == postag.CD:
			// only continue if nominal material can still follow
			if lastNoun >= 0 && !c.nominalAhead(j) {
				goto done
			}
			j++
		case (t == postag.VBN || t == postag.VBG) && c.nominalAhead(j):
			j++ // participial premodifier
		case t == postag.POS:
			j++ // possessive 's
		default:
			goto done
		}
	}
done:
	if lastNoun < 0 {
		// determiner or adjectives with no noun: head = last token scanned
		if j-1 >= i {
			ch.end = j - 1
			ch.head = j - 1
		} else {
			ch.end = i
			ch.head = i
		}
		return ch
	}
	ch.end = lastNoun
	ch.head = lastNoun
	// do not absorb trailing adjectives past the head noun
	return ch
}

// nominalAhead reports whether a noun occurs before any non-premodifier token
// starting at j+... (used to decide if an adjective/participle is inside an NP).
func (c *chunker) nominalAhead(j int) bool {
	for k := j + 1; k < len(c.tags); k++ {
		t := c.tags[k]
		if t.IsNoun() {
			return true
		}
		if t.IsAdjective() || t == postag.CD || t == postag.VBN || t == postag.VBG {
			continue
		}
		return false
	}
	return false
}
