// Package doc defines the canonical sentence-identity layer the incremental
// build pipeline rests on. Every stage of the framework — extraction,
// annotation, Stage-I classification, Stage-II indexing, persistence, and
// the corpus lifecycle — correlates sentences across document versions
// through a SentenceID rather than a positional index.
//
// A SentenceID is a function of exactly three things: the sentence's text,
// the path of the section containing it, and its occurrence ordinal among
// identical (section, text) pairs. It deliberately excludes the sentence's
// position in the document, so inserting, deleting, moving, or editing
// sentences *elsewhere* never changes an untouched sentence's identity —
// the property that lets a rebuild re-annotate only what actually changed.
//
// Diff compares two versions of a document by identity and partitions the
// sentences into Added, Removed, and Kept. Within one document IDs are
// unique by construction (the ordinal disambiguates duplicates), so Kept is
// a one-to-one position mapping: old index → new index.
package doc

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// SentenceID is the stable identity of one sentence: a hex digest of the
// sentence text, its section path, and its occurrence ordinal among
// identical (section, text) pairs in the same document. The empty string
// means "identity not assigned".
type SentenceID string

// Key is the identity-bearing content of one sentence — everything that
// goes into its SentenceID besides the duplicate ordinal.
type Key struct {
	Section string // section path ("5.4.2. Control Flow Instructions"; "" for bare sentences)
	Text    string
}

// idBytes is how many digest bytes an ID keeps. 16 bytes (128 bits) makes
// accidental collisions across document versions vanishingly unlikely while
// keeping IDs short enough to read in logs and diff output.
const idBytes = 16

// New computes the identity of one sentence. ordinal is the number of
// earlier sentences in the same document with an identical Key (0 for the
// first occurrence). Fields are length-prefixed before hashing so no two
// distinct (section, text, ordinal) triples can collide by concatenation.
func New(k Key, ordinal int) SentenceID {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(k.Section)))
	h.Write(buf[:])
	h.Write([]byte(k.Section))
	binary.LittleEndian.PutUint64(buf[:], uint64(len(k.Text)))
	h.Write(buf[:])
	h.Write([]byte(k.Text))
	binary.LittleEndian.PutUint64(buf[:], uint64(ordinal))
	h.Write(buf[:])
	sum := h.Sum(nil)
	return SentenceID(hex.EncodeToString(sum[:idBytes]))
}

// Assign computes the identity of every sentence of a document, in order.
// Ordinals are assigned per distinct Key by first occurrence, so the IDs of
// a document's sentences are pairwise distinct, and a sentence's ID only
// changes when the sentence itself, its section, or the number of identical
// copies *before* it changes.
func Assign(keys []Key) []SentenceID {
	ids := make([]SentenceID, len(keys))
	seen := make(map[Key]int, len(keys))
	for i, k := range keys {
		ids[i] = New(k, seen[k])
		seen[k]++
	}
	return ids
}

// Kept maps one sentence that survived a document edit: its position in the
// old sentence list and its position in the new one.
type Kept struct {
	Old, New int
}

// Diffs partitions a document edit by sentence identity. Every new-document
// index appears exactly once across Added and Kept, and every old-document
// index exactly once across Removed and Kept — Kept ∪ Added always
// reconstructs the new document.
type Diffs struct {
	OldLen, NewLen int
	Added          []int  // indices into the new sentence list
	Removed        []int  // indices into the old sentence list
	Kept           []Kept // old→new position pairs, ascending by New
}

// Diff compares two sentence-identity lists. IDs within each list are
// assumed unique (what Assign guarantees); if a duplicate does appear, the
// first occurrence wins and the rest are treated as added/removed.
func Diff(old, new []SentenceID) Diffs {
	d := Diffs{OldLen: len(old), NewLen: len(new)}
	oldByID := make(map[SentenceID]int, len(old))
	for i := len(old) - 1; i >= 0; i-- { // first occurrence wins
		oldByID[old[i]] = i
	}
	matched := make([]bool, len(old))
	for j, id := range new {
		if i, ok := oldByID[id]; ok && id != "" && !matched[i] {
			matched[i] = true
			d.Kept = append(d.Kept, Kept{Old: i, New: j})
			continue
		}
		d.Added = append(d.Added, j)
	}
	for i := range old {
		if !matched[i] {
			d.Removed = append(d.Removed, i)
		}
	}
	return d
}

// ChangeRatio is the fraction of the document the edit touched:
// (added + removed) / max(oldLen, newLen). A no-op edit is 0; a complete
// rewrite approaches 2 (everything removed plus everything added). The
// lifecycle manager compares it against the incremental-rebuild threshold.
func (d Diffs) ChangeRatio() float64 {
	n := d.OldLen
	if d.NewLen > n {
		n = d.NewLen
	}
	if n == 0 {
		return 0
	}
	return float64(len(d.Added)+len(d.Removed)) / float64(n)
}

// ReuseRatio is the fraction of the new document whose sentences carried
// over: kept / newLen (1 for an identical document, 0 for a full rewrite or
// an empty new document).
func (d Diffs) ReuseRatio() float64 {
	if d.NewLen == 0 {
		return 0
	}
	return float64(len(d.Kept)) / float64(d.NewLen)
}
