package doc_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/doc"
)

func keysOf(sents [][2]string) []doc.Key {
	keys := make([]doc.Key, len(sents))
	for i, s := range sents {
		keys[i] = doc.Key{Section: s[0], Text: s[1]}
	}
	return keys
}

func TestAssignUniqueAndDeterministic(t *testing.T) {
	sents := [][2]string{
		{"1. Intro", "Use coalesced accesses."},
		{"1. Intro", "Use coalesced accesses."},  // duplicate: ordinal disambiguates
		{"2. Memory", "Use coalesced accesses."}, // same text, other section
		{"2. Memory", "Prefer shared memory."},
	}
	a := doc.Assign(keysOf(sents))
	b := doc.Assign(keysOf(sents))
	seen := map[doc.SentenceID]int{}
	for i, id := range a {
		if id == "" {
			t.Fatalf("sentence %d: empty ID", i)
		}
		if id != b[i] {
			t.Fatalf("sentence %d: Assign not deterministic: %s vs %s", i, id, b[i])
		}
		if j, dup := seen[id]; dup {
			t.Fatalf("sentences %d and %d share ID %s", j, i, id)
		}
		seen[id] = i
	}
}

func TestDiffIdentical(t *testing.T) {
	ids := doc.Assign(keysOf([][2]string{{"s", "a"}, {"s", "b"}, {"t", "a"}}))
	d := doc.Diff(ids, ids)
	if len(d.Added) != 0 || len(d.Removed) != 0 || len(d.Kept) != 3 {
		t.Fatalf("identical docs: got %+v", d)
	}
	if d.ChangeRatio() != 0 || d.ReuseRatio() != 1 {
		t.Fatalf("identical docs: change=%v reuse=%v", d.ChangeRatio(), d.ReuseRatio())
	}
	for _, k := range d.Kept {
		if k.Old != k.New {
			t.Fatalf("identical docs: kept pair %+v not positional identity", k)
		}
	}
}

func TestDiffEmptyEdges(t *testing.T) {
	ids := doc.Assign(keysOf([][2]string{{"s", "a"}, {"s", "b"}}))
	if d := doc.Diff(nil, ids); len(d.Added) != 2 || len(d.Kept) != 0 || len(d.Removed) != 0 {
		t.Fatalf("nil→doc: %+v", d)
	}
	if d := doc.Diff(ids, nil); len(d.Removed) != 2 || len(d.Kept) != 0 || len(d.Added) != 0 {
		t.Fatalf("doc→nil: %+v", d)
	}
	if d := doc.Diff(nil, nil); d.ChangeRatio() != 0 {
		t.Fatalf("nil→nil ratio: %v", d.ChangeRatio())
	}
}

// editScript applies n random edits (insert, delete, move, duplicate,
// rewrite) to a sentence list and returns the result plus the set of
// original indices whose sentences were never themselves touched (they may
// still have moved position).
func editScript(rng *rand.Rand, sents [][2]string, n int) (out [][2]string, untouched map[string]bool) {
	out = append([][2]string(nil), sents...)
	touched := map[string]bool{}
	key := func(s [2]string) string { return s[0] + "\x00" + s[1] }
	for e := 0; e < n; e++ {
		switch op := rng.Intn(5); op {
		case 0: // insert a brand-new sentence
			i := rng.Intn(len(out) + 1)
			s := [2]string{fmt.Sprintf("s%d", rng.Intn(6)), fmt.Sprintf("new sentence %d-%d", e, rng.Int63())}
			out = append(out[:i], append([][2]string{s}, out[i:]...)...)
		case 1: // delete
			if len(out) == 0 {
				continue
			}
			i := rng.Intn(len(out))
			touched[key(out[i])] = true
			out = append(out[:i], out[i+1:]...)
		case 2: // move (positions change, identity must not)
			if len(out) < 2 {
				continue
			}
			i := rng.Intn(len(out))
			s := out[i]
			out = append(out[:i], out[i+1:]...)
			j := rng.Intn(len(out) + 1)
			out = append(out[:j], append([][2]string{s}, out[j:]...)...)
		case 3: // duplicate an existing sentence (ordinals shift for its copies)
			if len(out) == 0 {
				continue
			}
			i := rng.Intn(len(out))
			s := out[i]
			touched[key(s)] = true
			j := rng.Intn(len(out) + 1)
			out = append(out[:j], append([][2]string{s}, out[j:]...)...)
		case 4: // rewrite text in place
			if len(out) == 0 {
				continue
			}
			i := rng.Intn(len(out))
			touched[key(out[i])] = true
			out[i][1] = fmt.Sprintf("rewritten %d-%d", e, rng.Int63())
			touched[key(out[i])] = true
		}
	}
	untouched = map[string]bool{}
	for _, s := range sents {
		if !touched[key(s)] {
			untouched[key(s)] = true
		}
	}
	return out, untouched
}

// TestDiffMetamorphic drives Diff with random edit scripts and checks the
// structural invariants that the incremental build pipeline depends on:
//
//  1. Kept ∪ Added partitions the new document (every new index exactly
//     once), and Kept ∪ Removed partitions the old one.
//  2. Kept pairs carry identical IDs, so splicing old per-sentence state at
//     kept positions reconstructs the new document exactly.
//  3. IDs are stable under unrelated edits: a (section, text) pair whose
//     sentences were never themselves edited or duplicated keeps every one
//     of its IDs, no matter what happened elsewhere in the document.
func TestDiffMetamorphic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 100; round++ {
		n := 5 + rng.Intn(60)
		sents := make([][2]string, n)
		for i := range sents {
			sec := fmt.Sprintf("s%d", rng.Intn(5))
			if rng.Intn(10) == 0 && i > 0 {
				sents[i] = sents[rng.Intn(i)] // seed some duplicates
				continue
			}
			sents[i] = [2]string{sec, fmt.Sprintf("sentence %d of round %d", i, round)}
		}
		edited, untouched := editScript(rng, sents, 1+rng.Intn(12))

		oldIDs := doc.Assign(keysOf(sents))
		newIDs := doc.Assign(keysOf(edited))
		d := doc.Diff(oldIDs, newIDs)

		// invariant 1: exact partitions on both sides
		newSeen := make([]int, len(newIDs))
		for _, j := range d.Added {
			newSeen[j]++
		}
		oldSeen := make([]int, len(oldIDs))
		for _, i := range d.Removed {
			oldSeen[i]++
		}
		for _, k := range d.Kept {
			newSeen[k.New]++
			oldSeen[k.Old]++
			// invariant 2: kept means identical identity
			if oldIDs[k.Old] != newIDs[k.New] {
				t.Fatalf("round %d: kept pair %+v has IDs %s vs %s", round, k, oldIDs[k.Old], newIDs[k.New])
			}
		}
		for j, c := range newSeen {
			if c != 1 {
				t.Fatalf("round %d: new index %d covered %d times (want 1)", round, j, c)
			}
		}
		for i, c := range oldSeen {
			if c != 1 {
				t.Fatalf("round %d: old index %d covered %d times (want 1)", round, i, c)
			}
		}

		// invariant 3: untouched (section,text) pairs keep all their IDs
		kept := map[doc.SentenceID]bool{}
		for _, k := range d.Kept {
			kept[oldIDs[k.Old]] = true
		}
		for i, s := range sents {
			if untouched[s[0]+"\x00"+s[1]] && !kept[oldIDs[i]] {
				t.Fatalf("round %d: untouched sentence %d (%q/%q) lost its identity", round, i, s[0], s[1])
			}
		}

		// ratios stay in range and agree with the partition sizes
		if r := d.ChangeRatio(); r < 0 || r > 2 {
			t.Fatalf("round %d: change ratio %v out of range", round, r)
		}
		if got, want := d.ReuseRatio(), float64(len(d.Kept))/float64(len(newIDs)); len(newIDs) > 0 && got != want {
			t.Fatalf("round %d: reuse ratio %v, want %v", round, got, want)
		}
	}
}
