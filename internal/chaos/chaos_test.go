package chaos

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// contractServer is a minimal fake that honors the service contract: JSON
// everywhere, X-Trace-Id on every response, error bodies with error and
// trace_id fields. Behavior is switchable per test.
func contractServer(behave func(w http.ResponseWriter, r *http.Request) bool) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Trace-Id", "t-123")
		if behave != nil && behave(w, r) {
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		switch {
		case strings.HasSuffix(r.URL.Path, "/query"):
			fmt.Fprint(w, `{"advisor":"cuda","count":1,"answers":[{"text":"use shared memory"}]}`)
		case r.URL.Path == "/v1/ask":
			fmt.Fprint(w, `{"query":"q","k":3,"count":0,"answers":[]}`)
		case r.URL.Path == "/v1/batch":
			fmt.Fprint(w, `{"count":1,"errors":0,"results":[]}`)
		case r.URL.Path == "/v1/admin/reload":
			fmt.Fprint(w, `{"advisor":"cuda","duration_micros":1,"state":{}}`)
		case r.URL.Path == "/statsz":
			fmt.Fprint(w, `{"requests":1}`)
		default:
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"error":"no route","trace_id":"t-123"}`)
		}
	}))
}

func baseConfig(url string) Config {
	return Config{
		BaseURL:  url,
		Advisors: []string{"cuda"},
		Queries:  []string{"memory coalescing", "bank conflicts"},
		Workers:  2,
		Requests: 40,
		Seed:     7,
		Reload:   true,
	}
}

func TestRunCleanServerNoAnomalies(t *testing.T) {
	ts := contractServer(nil)
	defer ts.Close()
	res := Run(baseConfig(ts.URL))
	if res.AnomalyN != 0 {
		t.Fatalf("clean server produced anomalies: %v", res.Anomalies)
	}
	if res.Requests != 80 {
		t.Fatalf("requests = %d, want 80", res.Requests)
	}
	if res.ByStatus[200] != 80 {
		t.Fatalf("status histogram %v", res.Statuses())
	}
	// the weighted mix exercises every operation at this volume
	for _, kind := range []string{"query", "ask", "batch", "reload", "statsz"} {
		if res.ByKind[kind] == 0 {
			t.Errorf("operation %s never issued (mix %v)", kind, res.ByKind)
		}
	}
}

func TestRunDeterministicMix(t *testing.T) {
	ts := contractServer(nil)
	defer ts.Close()
	a := Run(baseConfig(ts.URL))
	b := Run(baseConfig(ts.URL))
	for kind, n := range a.ByKind {
		if b.ByKind[kind] != n {
			t.Fatalf("mix not deterministic: %v vs %v", a.ByKind, b.ByKind)
		}
	}
}

func TestRunWellFormedErrorsAreNotAnomalies(t *testing.T) {
	// a 500 with a proper JSON error body and trace ID is an expected
	// fault-injection outcome, not a contract violation
	ts := contractServer(func(w http.ResponseWriter, r *http.Request) bool {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, `{"error":"fault: injected error at service.handler","trace_id":"t-123"}`)
		return true
	})
	defer ts.Close()
	res := Run(baseConfig(ts.URL))
	if res.AnomalyN != 0 {
		t.Fatalf("well-formed 500s flagged: %v", res.Anomalies)
	}
	if res.Errors5xx() != res.Requests {
		t.Fatalf("Errors5xx = %d, want %d", res.Errors5xx(), res.Requests)
	}
}

func TestRunFlagsContractViolations(t *testing.T) {
	tests := []struct {
		name   string
		behave func(w http.ResponseWriter, r *http.Request) bool
		want   string
	}{
		{"html error page", func(w http.ResponseWriter, r *http.Request) bool {
			w.Header().Set("Content-Type", "text/html")
			w.WriteHeader(500)
			fmt.Fprint(w, "<html>oops</html>")
			return true
		}, "content type"},
		{"truncated json", func(w http.ResponseWriter, r *http.Request) bool {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"count": 1, "answ`)
			return true
		}, "not valid JSON"},
		{"error without trace id", func(w http.ResponseWriter, r *http.Request) bool {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(500)
			fmt.Fprint(w, `{"error":"boom"}`)
			return true
		}, "without trace_id"},
		{"unexpected status", func(w http.ResponseWriter, r *http.Request) bool {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTeapot)
			fmt.Fprint(w, `{"error":"teapot","trace_id":"t"}`)
			return true
		}, "unexpected status 418"},
		{"missing trace header", func(w http.ResponseWriter, r *http.Request) bool {
			w.Header().Del("X-Trace-Id")
			return false
		}, "missing X-Trace-Id"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ts := contractServer(tt.behave)
			defer ts.Close()
			cfg := baseConfig(ts.URL)
			cfg.Workers, cfg.Requests = 1, 5
			res := Run(cfg)
			if res.AnomalyN == 0 {
				t.Fatalf("violation not flagged")
			}
			found := false
			for _, a := range res.Anomalies {
				if strings.Contains(a, tt.want) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("anomalies %v do not mention %q", res.Anomalies, tt.want)
			}
		})
	}
}

func TestRunTransportErrorIsAnomalous(t *testing.T) {
	ts := contractServer(nil)
	ts.Close() // server gone: every request is a transport error
	cfg := baseConfig(ts.URL)
	cfg.Workers, cfg.Requests = 1, 3
	res := Run(cfg)
	if res.AnomalyN != 3 {
		t.Fatalf("dead server anomalies = %d, want 3 (%v)", res.AnomalyN, res.Anomalies)
	}
}

func TestRunEmptyConfigIsAnomalous(t *testing.T) {
	res := Run(Config{BaseURL: "http://127.0.0.1:1"})
	if res.AnomalyN == 0 {
		t.Fatal("empty advisor/query pools accepted")
	}
}

func TestAnomalyListIsBounded(t *testing.T) {
	res := &Result{ByKind: map[string]int64{}, ByStatus: map[int]int64{}}
	for i := 0; i < 100; i++ {
		res.anomaly("a%d", i)
	}
	if len(res.Anomalies) != maxAnomalies || res.AnomalyN != 100 {
		t.Fatalf("kept %d listed / %d counted", len(res.Anomalies), res.AnomalyN)
	}
}
