// Package chaos is the deterministic chaos/soak harness: it drives
// concurrent query, batch, ask, reload, and stats traffic against a running
// Egeria server and validates every response against the service's error
// contract — well-formed JSON, a trace ID on every failure, and only
// expected status codes per endpoint.
//
// The harness is traffic only; faults are injected server-side (see
// internal/fault and the serve -fault flag). Keeping the two decoupled
// means the same traffic mix can run against a fault-free control server to
// establish the expected answers, then against the chaos server, and the
// recovered answers can be compared byte-for-byte.
//
// Determinism: each worker draws its operation sequence from its own seeded
// PRNG (Config.Seed + worker index), so a failing run replays with the same
// request mix. Server-side fault draws are ordered by goroutine scheduling
// and are deterministic per seed only in aggregate — which is exactly what
// the suite asserts (counts and invariants, never per-request outcomes).
package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
)

// maxAnomalies bounds how many anomaly strings a Result keeps; the count
// keeps climbing so a flood is still visible.
const maxAnomalies = 20

// Config describes one chaos run.
type Config struct {
	// BaseURL is the server under test (no trailing slash).
	BaseURL string
	// Client is the HTTP client to use (default http.DefaultClient).
	Client *http.Client
	// Advisors are the registry names traffic targets; at least one.
	Advisors []string
	// Queries is the question pool workers draw from; at least one.
	Queries []string
	// Workers is the number of concurrent traffic generators (default 4).
	Workers int
	// Requests is how many operations each worker issues (default 50).
	Requests int
	// Seed derives each worker's PRNG (worker i uses Seed+i).
	Seed int64
	// Reload includes POST /v1/admin/reload in the mix (needs a lifecycle
	// manager server-side; 409s from colliding reloads are expected).
	Reload bool
}

func (c Config) withDefaults() Config {
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Requests <= 0 {
		c.Requests = 50
	}
	return c
}

// Result aggregates a run. Anomalies are contract violations — an anomalous
// run is a failed run regardless of status-code distribution.
type Result struct {
	mu        sync.Mutex
	Requests  int64
	ByKind    map[string]int64 // operation -> count
	ByStatus  map[int]int64    // HTTP status -> count
	AnomalyN  int64            // total contract violations
	Anomalies []string         // first maxAnomalies violation descriptions
}

func (r *Result) count(kind string, status int) {
	r.mu.Lock()
	r.Requests++
	r.ByKind[kind]++
	r.ByStatus[status]++
	r.mu.Unlock()
}

func (r *Result) anomaly(format string, args ...any) {
	r.mu.Lock()
	r.AnomalyN++
	if len(r.Anomalies) < maxAnomalies {
		r.Anomalies = append(r.Anomalies, fmt.Sprintf(format, args...))
	}
	r.mu.Unlock()
}

// Errors5xx returns how many responses were server errors — under fault
// injection these are expected; the suite asserts they are well-formed, not
// absent.
func (r *Result) Errors5xx() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for status, c := range r.ByStatus {
		if status >= 500 {
			n += c
		}
	}
	return n
}

// Statuses returns a copy of the status histogram.
func (r *Result) Statuses() map[int]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[int]int64, len(r.ByStatus))
	for k, v := range r.ByStatus {
		out[k] = v
	}
	return out
}

// expected status sets per operation: anything else is a contract anomaly.
var expectedStatus = map[string]map[int]bool{
	"query":  {200: true, 400: true, 404: true, 429: true, 500: true, 503: true},
	"ask":    {200: true, 400: true, 429: true, 500: true, 503: true},
	"batch":  {200: true, 400: true, 413: true, 429: true, 500: true, 503: true},
	"reload": {200: true, 404: true, 409: true, 429: true, 500: true, 501: true, 503: true},
	"statsz": {200: true, 500: true},
}

// Run drives the configured traffic mix and returns the aggregate result.
// It never fails fast: the point of a chaos run is to keep the pressure on
// and report every contract violation at the end.
func Run(cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{ByKind: map[string]int64{}, ByStatus: map[int]int64{}}
	if len(cfg.Advisors) == 0 || len(cfg.Queries) == 0 {
		res.anomaly("config: need at least one advisor and one query")
		return res
	}
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			for i := 0; i < cfg.Requests; i++ {
				step(cfg, rng, res)
			}
		}(w)
	}
	wg.Wait()
	return res
}

// step issues one operation drawn from the weighted mix:
// 5/10 query, 2/10 ask, 1/10 batch, 1/10 reload (query when disabled),
// 1/10 statsz.
func step(cfg Config, rng *rand.Rand, res *Result) {
	advisor := cfg.Advisors[rng.Intn(len(cfg.Advisors))]
	q := cfg.Queries[rng.Intn(len(cfg.Queries))]
	switch d := rng.Intn(10); {
	case d < 5:
		doGet(cfg, res, "query",
			fmt.Sprintf("%s/v1/%s/query?q=%s", cfg.BaseURL, advisor, url.QueryEscape(q)))
	case d < 7:
		doGet(cfg, res, "ask",
			fmt.Sprintf("%s/v1/ask?q=%s&k=3", cfg.BaseURL, url.QueryEscape(q)))
	case d < 8:
		items := make([]map[string]string, 1+rng.Intn(4))
		for j := range items {
			items[j] = map[string]string{
				"advisor": cfg.Advisors[rng.Intn(len(cfg.Advisors))],
				"query":   cfg.Queries[rng.Intn(len(cfg.Queries))],
			}
		}
		body, _ := json.Marshal(map[string]any{"queries": items})
		doPost(cfg, res, "batch", cfg.BaseURL+"/v1/batch", body)
	case d < 9:
		if cfg.Reload {
			doPost(cfg, res, "reload", cfg.BaseURL+"/v1/admin/reload?advisor="+url.QueryEscape(advisor), nil)
		} else {
			doGet(cfg, res, "query",
				fmt.Sprintf("%s/v1/%s/query?q=%s", cfg.BaseURL, advisor, url.QueryEscape(q)))
		}
	default:
		doGet(cfg, res, "statsz", cfg.BaseURL+"/statsz")
	}
}

func doGet(cfg Config, res *Result, kind, url string) {
	resp, err := cfg.Client.Get(url)
	finish(res, kind, url, resp, err)
}

func doPost(cfg Config, res *Result, kind, url string, body []byte) {
	resp, err := cfg.Client.Post(url, "application/json", bytes.NewReader(body))
	finish(res, kind, url, resp, err)
}

// finish validates one response against the service contract and records it.
func finish(res *Result, kind, url string, resp *http.Response, err error) {
	if err != nil {
		// a transport error is a torn response: the server broke the
		// connection (panic, crash) instead of answering — always anomalous
		res.count(kind, 0)
		res.anomaly("%s %s: transport error: %v", kind, url, err)
		return
	}
	defer resp.Body.Close()
	body, rerr := io.ReadAll(resp.Body)
	res.count(kind, resp.StatusCode)
	if rerr != nil {
		res.anomaly("%s %s: truncated body after status %d: %v", kind, url, resp.StatusCode, rerr)
		return
	}
	if !expectedStatus[kind][resp.StatusCode] {
		res.anomaly("%s %s: unexpected status %d (body %.120q)", kind, url, resp.StatusCode, body)
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		res.anomaly("%s %s: response missing X-Trace-Id header", kind, url)
	}
	ct := resp.Header.Get("Content-Type")
	if !strings.Contains(ct, "application/json") {
		res.anomaly("%s %s: content type %q, want JSON", kind, url, ct)
		return
	}
	var decoded map[string]any
	if jerr := json.Unmarshal(body, &decoded); jerr != nil {
		res.anomaly("%s %s: status %d body is not valid JSON: %v (%.120q)", kind, url, resp.StatusCode, jerr, body)
		return
	}
	if resp.StatusCode >= 400 {
		msg, _ := decoded["error"].(string)
		if msg == "" {
			res.anomaly("%s %s: status %d error body without error field (%.120q)", kind, url, resp.StatusCode, body)
		}
		tid, _ := decoded["trace_id"].(string)
		if tid == "" {
			res.anomaly("%s %s: status %d error body without trace_id (%.120q)", kind, url, resp.StatusCode, body)
		}
	}
}
