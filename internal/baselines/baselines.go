// Package baselines implements the comparison methods of the paper's
// evaluation: the one-stage "keywords" method (stemmed keyword search over
// the raw document), the "full-doc" method (VSM/TF-IDF retrieval without
// advising-sentence recognition — served by core.Advisor.FullDocQuery), the
// "KeywordAll" recognition baseline of Table 8 (selector 1 run with the
// union of every keyword set), and single-selector recognition.
package baselines

import (
	"strings"

	"repro/internal/nlp"
	"repro/internal/selectors"
	"repro/internal/textproc"
)

// KeywordSearch implements the paper's keywords method: it returns the
// indices of the sentences containing any of the given keywords, with both
// keywords and sentences reduced to stems so variants of a word match
// (§4.2: "Both the keywords and the words in the document are reduced to
// their stem forms").  Multi-word keywords match as consecutive stems.
func KeywordSearch(sentences []string, keywords []string) []int {
	phrases := make([][]string, 0, len(keywords))
	for _, k := range keywords {
		if stems := textproc.StemAll(textproc.Words(k)); len(stems) > 0 {
			phrases = append(phrases, stems)
		}
	}
	var out []int
	for i, s := range sentences {
		stems := textproc.StemAll(textproc.Words(s))
		for _, p := range phrases {
			if containsSeq(stems, p) {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// KeywordSearchNoStemming is the ablation the paper mentions: exact
// lowercase substring matching without stemming ("the false positives ...
// could get reduced slightly, but the recall rate would get much lower").
func KeywordSearchNoStemming(sentences []string, keywords []string) []int {
	lowered := make([]string, len(keywords))
	for i, k := range keywords {
		lowered[i] = strings.ToLower(k)
	}
	var out []int
	for i, s := range sentences {
		ls := strings.ToLower(s)
		for _, k := range lowered {
			if k != "" && strings.Contains(ls, k) {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

func containsSeq(haystack, needle []string) bool {
	if len(needle) == 0 || len(needle) > len(haystack) {
		return false
	}
outer:
	for i := 0; i+len(needle) <= len(haystack); i++ {
		for j, n := range needle {
			if haystack[i+j] != n {
				continue outer
			}
		}
		return true
	}
	return false
}

// KeywordAllRecognize implements the Table 8 "KeywordAll" row: selector 1
// with the union of all keyword sets replacing FLAGGING WORDS. Returns the
// per-sentence advising predictions.
func KeywordAllRecognize(cfg selectors.Config, sentences []string) []bool {
	union := selectors.Config{FlaggingWords: cfg.AllKeywords()}
	rec := selectors.New(union)
	out := make([]bool, len(sentences))
	for i, s := range sentences {
		out[i] = rec.Selector1(s)
	}
	return out
}

// SingleSelectorRecognize runs only the k-th selector (1-5) over the
// sentences — the per-selector rows of Table 8. Annotates each sentence
// once; callers running several selectors over the same sentences should
// annotate once themselves and use Recognizer.SelectorAnnotated.
func SingleSelectorRecognize(rec *selectors.Recognizer, k int, sentences []string) []bool {
	out := make([]bool, len(sentences))
	for i, s := range sentences {
		out[i] = rec.SelectorAnnotated(k, nlp.Annotate(s))
	}
	return out
}

// QueryKeywords lists the candidate keyword sets the paper tried for each
// Table 6 performance issue (§4.2); the harness picks the best by
// F-measure, as the paper's underlining does.
func QueryKeywords(issue string) [][]string {
	switch {
	case strings.Contains(issue, "Warp Execution"):
		return [][]string{{"warp"}, {"execution"}, {"efficiency"}, {"warp efficiency"}, {"warp execution efficiency"}}
	case strings.Contains(issue, "Divergent"):
		return [][]string{{"divergence"}, {"branch"}, {"divergent branch"}}
	case strings.Contains(issue, "Alignment"):
		return [][]string{{"memory"}, {"alignment"}, {"memory alignment"}, {"access pattern"}}
	case strings.Contains(issue, "Memory Instruction"):
		return [][]string{{"utilization"}, {"memory"}, {"instruction"}, {"memory instruction"}, {"instruction throughput"}}
	case strings.Contains(issue, "Latencies"):
		return [][]string{{"instruction"}, {"latency"}, {"instruction latency"}}
	case strings.Contains(issue, "Bandwidth"):
		return [][]string{{"memory"}, {"bandwidth"}, {"memory bandwidth"}, {"transfer"}}
	}
	return [][]string{{"performance"}}
}
