package baselines

import (
	"testing"

	"repro/internal/selectors"
)

var sentences = []string{
	"Use shared memory to reduce global memory traffic.",      // 0 advising
	"The warp size is thirty-two threads.",                    // 1 fact
	"Avoid bank conflicts in shared memory.",                  // 2 advising
	"Divergent branches lower warp execution efficiency.",     // 3 fact w/ keywords
	"Each bank serves one request per cycle.",                 // 4 fact
	"Minimizing divergence improves the throughput of warps.", // 5 advising-ish
}

func TestKeywordSearchStemming(t *testing.T) {
	got := KeywordSearch(sentences, []string{"divergence"})
	// stemmed "diverg" matches both "Divergent" (no: divergent stems to
	// "diverg"? "divergent" -> step: 'ent' removal requires m>1: diverg-ent
	// -> "diverg") and "divergence"/"Minimizing divergence".
	if len(got) < 2 {
		t.Errorf("stemming missed variants: %v", got)
	}
	found3, found5 := false, false
	for _, i := range got {
		if i == 3 {
			found3 = true
		}
		if i == 5 {
			found5 = true
		}
	}
	if !found3 || !found5 {
		t.Errorf("expected sentences 3 and 5, got %v", got)
	}
}

func TestKeywordSearchPhrases(t *testing.T) {
	got := KeywordSearch(sentences, []string{"warp execution efficiency"})
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("phrase match: %v", got)
	}
}

func TestKeywordSearchEmpty(t *testing.T) {
	if got := KeywordSearch(sentences, nil); got != nil {
		t.Errorf("no keywords should match nothing: %v", got)
	}
	if got := KeywordSearch(nil, []string{"memory"}); got != nil {
		t.Errorf("no sentences: %v", got)
	}
}

func TestKeywordSearchNoStemmingIsStricter(t *testing.T) {
	stemmed := KeywordSearch(sentences, []string{"divergence"})
	raw := KeywordSearchNoStemming(sentences, []string{"divergence"})
	if len(raw) > len(stemmed) {
		t.Errorf("no-stemming found more: %v vs %v", raw, stemmed)
	}
	// exact substring still matches sentence 5
	found := false
	for _, i := range raw {
		if i == 5 {
			found = true
		}
	}
	if !found {
		t.Errorf("exact match missed: %v", raw)
	}
}

func TestKeywordAllRecognize(t *testing.T) {
	cfg := selectors.DefaultConfig()
	got := KeywordAllRecognize(cfg, sentences)
	if len(got) != len(sentences) {
		t.Fatal("length")
	}
	// sentence 0 contains "use"/"reduce" (imperative/flagging keywords)
	if !got[0] {
		t.Error("KeywordAll should flag sentence 0")
	}
	// sentence 4 contains none of the keywords
	if got[4] {
		t.Error("KeywordAll flagged a clean sentence")
	}
}

func TestKeywordAllSupersetOfSelector1(t *testing.T) {
	cfg := selectors.DefaultConfig()
	rec := selectors.New(cfg)
	all := KeywordAllRecognize(cfg, sentences)
	for i, s := range sentences {
		if rec.Selector1(s) && !all[i] {
			t.Errorf("KeywordAll missed a selector-1 sentence: %q", s)
		}
	}
}

func TestSingleSelectorRecognize(t *testing.T) {
	rec := selectors.Default()
	imp := SingleSelectorRecognize(rec, 3, sentences)
	if !imp[0] || !imp[2] {
		t.Errorf("imperative selector missed imperatives: %v", imp)
	}
	if imp[1] || imp[4] {
		t.Errorf("imperative selector flagged facts: %v", imp)
	}
}

func TestQueryKeywordsCoverAllIssues(t *testing.T) {
	issues := []string{
		"Low Warp Execution Efficiency",
		"Divergent Branches",
		"Global Memory Alignment and Access Pattern",
		"GPU Utilization is Limited by Memory Instruction Execution",
		"Instruction Latencies may be Limiting Performance",
		"GPU Utilization is Limited by Memory Bandwidth",
		"Something Unknown",
	}
	for _, issue := range issues {
		if cands := QueryKeywords(issue); len(cands) == 0 {
			t.Errorf("no candidates for %q", issue)
		}
	}
}
