package selectors

import (
	"testing"
	"testing/quick"

	"repro/internal/depparse"
)

// TestTable1ExampleSentences verifies that each example sentence of the
// paper's Table 1 is recognized as advising, via the selector designated for
// its category (category II and III share selector 2).
func TestTable1ExampleSentences(t *testing.T) {
	r := Default()
	cases := []struct {
		category string
		sentence string
		selector int
	}{
		{"I (keywords)",
			"This can be a good choice when the host does not read the memory object to avoid the host having to make a copy of the data to transfer.", 1},
		{"II (comparative)",
			"Thus, a developer may prefer using buffers instead of images if no sampling operation is needed.", 2},
		{"III (passive)",
			"This synchronization guarantee can often be leveraged to avoid explicit clWaitForEvents() calls between command submissions.", 2},
		{"IV (imperative)",
			"Pinning takes time, so avoid incurring pinning costs where CPU overhead must be avoided.", 3},
		{"V (subject)",
			"For peak performance on all devices, developers can choose to use conditional compilation for key code loops in the kernel, or in some cases even provide two separate kernels.", 4},
		{"VI (purpose)",
			"The first step in maximizing overall memory throughput for the application is to minimize data transfers with low bandwidth.", 5},
	}
	for _, c := range cases {
		tree := depparse.ParseText(c.sentence)
		if !r.SelectorTree(c.selector, tree) {
			t.Errorf("category %s: selector %d rejected the designated example:\n%q\n%s",
				c.category, c.selector, c.sentence, tree)
		}
		res := r.Classify(c.sentence)
		if !res.Advising {
			t.Errorf("category %s: Classify says non-advising for %q", c.category, c.sentence)
		}
	}
}

func TestSelector1Stemming(t *testing.T) {
	r := Default()
	// "encouraged" is a flagging word; stemming must let other variants hit
	positives := []string{
		"Developers are encouraged to profile before optimizing.",
		"We encourage the use of pinned memory for frequent transfers.",
		"Using intrinsic functions should be considered.",
		"Fusing the two kernels reduces launch overhead.", // "reduce"
		"Using textures can be useful for irregular access patterns.",
	}
	for _, s := range positives {
		if !r.Selector1(s) {
			t.Errorf("Selector1(%q) = false, want true", s)
		}
	}
	negatives := []string{
		"The device has sixteen streaming multiprocessors.",
		"Each bank serves one request per cycle.",
	}
	for _, s := range negatives {
		if r.Selector1(s) {
			t.Errorf("Selector1(%q) = true, want false", s)
		}
	}
}

func TestSelector1Phrases(t *testing.T) {
	r := Default()
	if !r.Selector1("Buffers are a good choice for streaming writes.") {
		t.Error("phrase 'good choice' missed")
	}
	if r.Selector1("The choice of scheduler is good for nothing here.") {
		t.Error("split phrase 'choice ... good' should not match")
	}
	if !r.Selector1("One way to hide latency is increasing occupancy.") {
		t.Error("phrase 'one way to' missed")
	}
}

func TestSelector2XcompGovernors(t *testing.T) {
	r := Default()
	positives := []string{
		"A developer may prefer using buffers instead of images.",
		"It is recommended to queue kernels in batches.",
		"It is often better to recompute values than to store them.",
		"This guarantee can be leveraged to avoid explicit synchronization calls.",
		"It is faster to pack small transfers into one larger transfer.",
	}
	for _, s := range positives {
		if !r.Selector2(s) {
			t.Errorf("Selector2(%q) = false, want true\n%s", s, depparse.ParseText(s))
		}
	}
	negatives := []string{
		"The warp scheduler issues one instruction per cycle.",
		"Each multiprocessor contains eight scalar processor cores.",
		"The program starts to run on the host.", // xcomp, but governor not in set
	}
	for _, s := range negatives {
		if r.Selector2(s) {
			t.Errorf("Selector2(%q) = true, want false\n%s", s, depparse.ParseText(s))
		}
	}
}

func TestSelector3Imperatives(t *testing.T) {
	r := Default()
	positives := []string{
		"Use shared memory to reduce global memory traffic.",
		"Avoid bank conflicts in shared memory.",
		"Unroll small loops with a pragma directive.",
		"Align the starting address to the transaction size.",
		"Ensure that global accesses are coalesced.",
	}
	for _, s := range positives {
		if !r.Selector3(s) {
			t.Errorf("Selector3(%q) = false, want true\n%s", s, depparse.ParseText(s))
		}
	}
	negatives := []string{
		"The kernel uses thirty-one registers for each thread.",
		"The compiler unrolls small loops automatically.", // has subject
		"All allocations are aligned on the boundary.",    // passive, subject
		"Consider the memory layout first.",               // verb not in IMPERATIVE WORDS
	}
	for _, s := range negatives {
		if r.Selector3(s) {
			t.Errorf("Selector3(%q) = true, want false\n%s", s, depparse.ParseText(s))
		}
	}
}

func TestSelector3NegatedImperatives(t *testing.T) {
	r := Default()
	// "do not <imperative word> ..." is advice too; the aux chain must not
	// hide the imperative root
	positives := []string{
		"Do not use mapped memory for large transfers.",
		"Do not map the same buffer twice in one kernel.",
	}
	for _, s := range positives {
		if !r.Selector3(s) {
			t.Errorf("Selector3(%q) = false, want true\n%s", s, depparse.ParseText(s))
		}
	}
	// negated declaratives with subjects stay out
	if r.Selector3("The runtime does not use the second copy engine by default.") {
		t.Error("negated declarative accepted")
	}
}

func TestSelector4KeySubjects(t *testing.T) {
	r := Default()
	positives := []string{
		"Developers can choose to use conditional compilation for key loops.",
		"The programmer can also control loop unrolling using a pragma.",
		"The application should maximize parallel execution between functional units.",
		"This technique applies when the working set fits in shared memory.",
	}
	for _, s := range positives {
		if !r.Selector4(s) {
			t.Errorf("Selector4(%q) = false, want true\n%s", s, depparse.ParseText(s))
		}
	}
	negatives := []string{
		"The warp size is thirty-two threads.",
		"Each bank can service one address per cycle.",
	}
	for _, s := range negatives {
		if r.Selector4(s) {
			t.Errorf("Selector4(%q) = true, want false\n%s", s, depparse.ParseText(s))
		}
	}
}

func TestSelector5Purpose(t *testing.T) {
	r := Default()
	positives := []string{
		"The first step is to minimize data transfers with low bandwidth.",
		"Pad the shared array in order to avoid bank conflicts.",
		"Coalesce global accesses to maximize memory bandwidth utilization.",
		"Overlap transfers with computation to achieve full utilization.",
	}
	for _, s := range positives {
		if !r.Selector5(s) {
			t.Errorf("Selector5(%q) = false, want true\n%s", s, depparse.ParseText(s))
		}
	}
	negatives := []string{
		"Use the profiler to inspect occupancy.", // predicate not in set
		"The scheduler issues instructions in order.",
	}
	for _, s := range negatives {
		if r.Selector5(s) {
			t.Errorf("Selector5(%q) = true, want false\n%s", s, depparse.ParseText(s))
		}
	}
}

func TestClassifyReportsFirstSelector(t *testing.T) {
	r := Default()
	res := r.Classify("Buffers are a good choice for streaming writes.")
	if !res.Advising || res.Selector != Keyword {
		t.Errorf("got %+v, want keyword selector", res)
	}
	res = r.Classify("Avoid bank conflicts in shared memory.")
	if !res.Advising || res.Selector != Imperative {
		t.Errorf("got %+v, want imperative selector", res)
	}
	res = r.Classify("Each bank serves one request per cycle.")
	if res.Advising || res.Selector != None {
		t.Errorf("got %+v, want non-advising", res)
	}
}

func TestClassifyParsedMatchesClassify(t *testing.T) {
	r := Default()
	sentences := []string{
		"Avoid bank conflicts in shared memory.",
		"The warp size is thirty-two threads.",
		"Developers can use streams to overlap transfers.",
		"It is recommended to queue kernels in batches.",
	}
	for _, s := range sentences {
		a := r.Classify(s)
		b := r.ClassifyParsed(depparse.ParseText(s))
		if a != b {
			t.Errorf("Classify(%q) = %+v but ClassifyParsed = %+v", s, a, b)
		}
	}
}

func TestXeonTunedConfig(t *testing.T) {
	tuned := New(XeonTunedConfig())
	base := Default()
	s := "Users should note that the data have to be aligned on the boundary for vectorization."
	if !tuned.Selector1(s) {
		t.Errorf("tuned config should flag 'have to be' sentence")
	}
	s2 := "One can experiment with smaller block sizes."
	if !tuned.Selector4(s2) {
		t.Errorf("tuned config should accept subject 'one'\n%s", depparse.ParseText(s2))
	}
	if got := base.Classify(s2); got.Selector == Subject {
		t.Errorf("base config should not accept subject 'one'")
	}
}

// Property: adding a flagging keyword never flips an advising sentence to
// non-advising (selector monotonicity).
func TestSelectorMonotonicity(t *testing.T) {
	base := Default()
	extended := New(func() Config {
		c := DefaultConfig()
		c.FlaggingWords = append(c.FlaggingWords, "magic phrase")
		return c
	}())
	sentences := []string{
		"Avoid bank conflicts in shared memory.",
		"The warp size is thirty-two threads.",
		"Buffers are a good choice for streaming writes.",
		"Developers can use streams to overlap transfers.",
	}
	for _, s := range sentences {
		if base.Classify(s).Advising && !extended.Classify(s).Advising {
			t.Errorf("monotonicity violated for %q", s)
		}
	}
}

func TestContainsSubsequenceProperty(t *testing.T) {
	f := func(hay []string, i, j uint8) bool {
		if len(hay) == 0 {
			return true
		}
		a := int(i) % len(hay)
		b := int(j) % len(hay)
		if a > b {
			a, b = b, a
		}
		// any contiguous slice of hay is a subsequence of hay
		return containsSubsequence(hay, hay[a:b+1])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	if containsSubsequence([]string{"a"}, nil) {
		t.Error("empty needle should not match")
	}
	if containsSubsequence([]string{"a"}, []string{"a", "b"}) {
		t.Error("needle longer than haystack matched")
	}
}

func TestAllKeywords(t *testing.T) {
	cfg := DefaultConfig()
	all := cfg.AllKeywords()
	want := len(cfg.FlaggingWords) + len(cfg.XcompGovernors) +
		len(cfg.ImperativeWords) + len(cfg.KeySubjects) + len(cfg.KeyPredicates)
	if len(all) != want {
		t.Errorf("AllKeywords length %d, want %d", len(all), want)
	}
}

func TestSelectorIDString(t *testing.T) {
	names := map[SelectorID]string{
		None: "none", Keyword: "keyword", Imperative: "imperative",
		Subject: "subject", Purpose: "purpose",
	}
	for id, want := range names {
		if got := id.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", id, got, want)
		}
	}
}

func BenchmarkClassify(b *testing.B) {
	r := Default()
	sentences := []string{
		"Avoid bank conflicts in shared memory.",
		"The warp size is thirty-two threads.",
		"This synchronization guarantee can often be leveraged to avoid explicit calls.",
		"The first step is to minimize data transfers with low bandwidth.",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Classify(sentences[i%len(sentences)])
	}
}
