// Package selectors implements Egeria's Stage-I multi-layered advising
// sentence recognition: five selectors that combine keyword matching,
// syntactic dependency analysis and semantic role labeling with the
// HPC-domain keyword sets of the paper's Table 2. A sentence is an advising
// sentence as soon as any selector accepts it.
package selectors

// Config carries the keyword sets steering the five selectors (paper
// Table 2). The artifact appendix notes these are user-extensible; the
// zero-value Config is not usable — start from DefaultConfig.
type Config struct {
	// FlaggingWords are matched after stemming anywhere in the sentence
	// (multi-word phrases match as consecutive stemmed tokens). Selector 1.
	FlaggingWords []string
	// XcompGovernors are the verbs/adjectives whose open clausal complement
	// marks categories II and III. Selector 2.
	XcompGovernors []string
	// ImperativeWords are the root verbs that mark advising imperatives
	// (category IV). Selector 3.
	ImperativeWords []string
	// KeySubjects are the nominal subjects of category V. Selector 4.
	KeySubjects []string
	// KeyPredicates are the purpose-clause predicates of category VI.
	// Selector 5.
	KeyPredicates []string
}

// DefaultConfig returns the exact keyword sets of the paper's Table 2.
func DefaultConfig() Config {
	return Config{
		FlaggingWords: []string{
			"better", "best performance", "higher performance",
			"maximum performance", "peak performance",
			"improve the performance", "higher impact", "more appropriate",
			"should", "high bandwidth", "benefit", "high throughput",
			"prefer", "effective way", "one way to", "the key to",
			"contribute to", "can be used to", "can lead to", "reduce",
			"can help", "can be important", "can be useful", "is important",
			"help avoid", "can avoid", "instead", "is desirable",
			"good choice", "ideal choice", "good idea", "good start",
			"encouraged",
		},
		XcompGovernors: []string{
			"prefer", "best", "faster", "better", "efficient", "beneficial",
			"appropriate", "recommended", "encouraged", "leveraged",
			"important", "useful", "required", "controlled",
		},
		ImperativeWords: []string{
			"use", "avoid", "create", "make", "map", "align", "add",
			"change", "ensure", "call", "unroll", "move", "select",
			"schedule", "switch", "transform", "pack",
		},
		KeySubjects: []string{
			"programmer", "developer", "application", "solution",
			"algorithm", "optimization", "guideline", "technique",
		},
		KeyPredicates: []string{
			"maximize", "minimize", "recommend", "accomplish", "achieve",
			"avoid",
		},
	}
}

// XeonTunedConfig returns DefaultConfig extended with the three keywords the
// paper adds when tuning for the Xeon Phi guide (§4.3): 'have to be' joins
// FLAGGING WORDS, 'user' and 'one' join KEY SUBJECTS. With this tuning the
// paper reports recall improving to 0.892 at 0.877 precision.
func XeonTunedConfig() Config {
	cfg := DefaultConfig()
	cfg.FlaggingWords = append(cfg.FlaggingWords, "have to be")
	cfg.KeySubjects = append(cfg.KeySubjects, "user", "one")
	return cfg
}
