package selectors

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/depparse"
)

// TestEveryFlaggingWordTriggers builds one representative sentence per
// FLAGGING WORDS entry and asserts selector 1 accepts it — the Table 2 set
// must be live end to end, including stemming of inflected uses.
func TestEveryFlaggingWordTriggers(t *testing.T) {
	r := Default()
	// hand-written carriers where naive embedding would be ungrammatical
	carriers := map[string]string{
		"better":                  "Texture fetches perform better for this access shape.",
		"best performance":        "The best performance comes from fully populated warps.",
		"higher performance":      "Fused kernels deliver higher performance on this device.",
		"maximum performance":     "Maximum performance requires all engines to stay busy.",
		"peak performance":        "Peak performance demands coalesced access on every lane.",
		"improve the performance": "Loop tiling will improve the performance of the solver.",
		"higher impact":           "Fixing the memory path has a higher impact than tuning arithmetic.",
		"more appropriate":        "A scatter layout is more appropriate for this workload.",
		"should":                  "The working set should fit in the first level cache.",
		"high bandwidth":          "Staging buffers exploit the high bandwidth of on-chip memory.",
		"benefit":                 "Long-running kernels benefit from persistent threads.",
		"high throughput":         "Batched launches sustain high throughput on small tasks.",
		"prefer":                  "Experienced authors prefer explicit synchronization here.",
		"effective way":           "Tiling is an effective way of exposing reuse.",
		"one way to":              "One way to cut launch overhead is kernel fusion.",
		"the key to":              "Locality is the key to sustained throughput.",
		"contribute to":           "Unaligned accesses contribute to transaction inflation.",
		"can be used to":          "Events can be used to order work across queues.",
		"can lead to":             "Oversubscription can lead to cache thrashing.",
		"reduce":                  "Wider loads reduce the instruction count of the copy loop.",
		"can help":                "Prefetching can help on strided streams.",
		"can be important":        "Launch order can be important for queue overlap.",
		"can be useful":           "Warm-up runs can be useful before timing.",
		"is important":            "Alignment is important for vector loads.",
		"help avoid":              "Private counters help avoid atomic contention.",
		"can avoid":               "Persistent kernels can avoid repeated launch costs.",
		"instead":                 "Fetch the value from constant memory instead.",
		"is desirable":            "A contiguous layout is desirable for the inner loop.",
		"good choice":             "Texture memory is a good choice for stencil reads.",
		"ideal choice":            "Shared memory is the ideal choice for the halo cells.",
		"good idea":               "Checking the occupancy first is a good idea.",
		"good start":              "Profiling the hottest kernel is a good start.",
		"encouraged":              "Vendors have encouraged this pattern for years.",
	}
	for _, kw := range DefaultConfig().FlaggingWords {
		sentence, ok := carriers[kw]
		if !ok {
			sentence = fmt.Sprintf("This technique %s in most kernels.", kw)
		}
		if !r.Selector1(sentence) {
			t.Errorf("flagging word %q: Selector1 rejected carrier %q", kw, sentence)
		}
	}
}

// TestEveryImperativeWordTriggers builds an imperative sentence for every
// IMPERATIVE WORDS entry and asserts selector 3 accepts it.
func TestEveryImperativeWordTriggers(t *testing.T) {
	r := Default()
	objects := map[string]string{
		"use":       "Use the on-chip buffer for the partial sums.",
		"avoid":     "Avoid atomic updates inside the inner loop.",
		"create":    "Create the streams once during initialization.",
		"make":      "Make the innermost dimension contiguous.",
		"map":       "Map each tile onto one compute unit.",
		"align":     "Align the buffer to the vector width.",
		"add":       "Add a prefetch for the next tile.",
		"change":    "Change the layout from interleaved to planar.",
		"ensure":    "Ensure the queue never drains between batches.",
		"call":      "Call the asynchronous variant of the copy.",
		"unroll":    "Unroll the cleanup loop by hand.",
		"move":      "Move the allocation out of the timestep loop.",
		"select":    "Select the tile size from the calibration table.",
		"schedule":  "Schedule the independent passes back to back.",
		"switch":    "Switch the accumulation to the tree form.",
		"transform": "Transform the gather into a scan followed by a pack.",
		"pack":      "Pack the flags into a single word.",
	}
	for _, kw := range DefaultConfig().ImperativeWords {
		sentence, ok := objects[kw]
		if !ok {
			t.Fatalf("no carrier sentence for imperative word %q", kw)
		}
		if !r.Selector3(sentence) {
			t.Errorf("imperative word %q: Selector3 rejected %q\n%s",
				kw, sentence, depparse.ParseText(sentence))
		}
	}
}

// TestEveryKeySubjectTriggers puts every KEY SUBJECTS entry in subject
// position and asserts selector 4 accepts it, singular and plural.
func TestEveryKeySubjectTriggers(t *testing.T) {
	r := Default()
	for _, kw := range DefaultConfig().KeySubjects {
		for _, form := range []string{kw, plural(kw)} {
			sentence := fmt.Sprintf("The %s can tune the launch parameters for the device.", form)
			if !r.Selector4(sentence) {
				t.Errorf("key subject %q (form %q): Selector4 rejected %q\n%s",
					kw, form, sentence, depparse.ParseText(sentence))
			}
		}
	}
}

func plural(w string) string {
	if strings.HasSuffix(w, "s") {
		return w + "es"
	}
	return w + "s"
}

// TestEveryKeyPredicateTriggers wraps every KEY PREDICATES entry in a
// purpose clause and asserts selector 5 accepts it.
func TestEveryKeyPredicateTriggers(t *testing.T) {
	r := Default()
	for _, kw := range DefaultConfig().KeyPredicates {
		sentence := fmt.Sprintf("Restructure the loop nest to %s a full overlap of the two phases.", kw)
		if !r.Selector5(sentence) {
			t.Errorf("key predicate %q: Selector5 rejected %q\n%s",
				kw, sentence, depparse.ParseText(sentence))
		}
	}
}

// TestXcompGovernorsTrigger exercises each XCOMP GOVERNORS entry in a frame
// that produces the xcomp relation: verbs with infinitival/gerund
// complements, adjectives and participles in predicative position.
func TestXcompGovernorsTrigger(t *testing.T) {
	r := Default()
	frames := map[string]string{
		"prefer":      "Expert authors prefer using events for cross-queue ordering.",
		"best":        "It is best to size the pool at startup.",
		"faster":      "It is faster to rebuild the table than to patch it.",
		"better":      "It is better to recompute the value than to store it.",
		"efficient":   "It is more efficient to batch the updates than to flush each one.",
		"beneficial":  "It is beneficial to keep both queues busy.",
		"appropriate": "It is appropriate to pin the staging area.",
		"recommended": "It is recommended to queue the kernels in submission order.",
		"encouraged":  "Authors are encouraged to measure before tuning.",
		"leveraged":   "The guarantee can be leveraged to skip the final barrier.",
		"important":   "It is important to keep the hot data resident.",
		"useful":      "It is useful to record an event per batch.",
		"required":    "The host is required to retain the buffer until completion.",
		"controlled":  "Spilling can be controlled using the launch bounds.",
	}
	for _, kw := range DefaultConfig().XcompGovernors {
		sentence, ok := frames[kw]
		if !ok {
			t.Fatalf("no carrier for xcomp governor %q", kw)
		}
		if !r.Selector2(sentence) {
			t.Errorf("xcomp governor %q: Selector2 rejected %q\n%s",
				kw, sentence, depparse.ParseText(sentence))
		}
	}
}
