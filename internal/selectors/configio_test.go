package selectors

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := XeonTunedConfig()
	var buf bytes.Buffer
	if err := cfg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadConfigJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg, back) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", cfg, back)
	}
}

func TestReadConfigJSONErrors(t *testing.T) {
	if _, err := ReadConfigJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadConfigJSON(strings.NewReader(`{"unknown_field": []}`)); err == nil {
		t.Error("unknown field accepted")
	}
	cfg, err := ReadConfigJSON(strings.NewReader(`{"flagging_words": ["custom phrase"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.FlaggingWords) != 1 || len(cfg.KeySubjects) != 0 {
		t.Errorf("partial config: %+v", cfg)
	}
}

func TestMergeDedupes(t *testing.T) {
	base := DefaultConfig()
	extra := Config{
		FlaggingWords: []string{"should", "brand new phrase"}, // "should" already present
		KeySubjects:   []string{"user"},
	}
	merged := base.Merge(extra)
	if len(merged.FlaggingWords) != len(base.FlaggingWords)+1 {
		t.Errorf("flagging words: %d, want %d", len(merged.FlaggingWords), len(base.FlaggingWords)+1)
	}
	if len(merged.KeySubjects) != len(base.KeySubjects)+1 {
		t.Errorf("key subjects: %d", len(merged.KeySubjects))
	}
	if len(merged.XcompGovernors) != len(base.XcompGovernors) {
		t.Errorf("xcomp governors changed: %d", len(merged.XcompGovernors))
	}
	// base order preserved
	if merged.FlaggingWords[0] != base.FlaggingWords[0] {
		t.Error("order not preserved")
	}
	// empty strings dropped
	m2 := base.Merge(Config{FlaggingWords: []string{""}})
	if len(m2.FlaggingWords) != len(base.FlaggingWords) {
		t.Error("empty keyword kept")
	}
}

func TestMergedConfigWorks(t *testing.T) {
	custom := Config{FlaggingWords: []string{"zgyx pattern"}}
	merged := DefaultConfig().Merge(custom)
	r := New(merged)
	if !r.Selector1("The zgyx pattern appears here.") {
		t.Error("merged keyword not live")
	}
	if !r.Selector1("Buffers are a good choice here.") {
		t.Error("base keyword lost")
	}
}
