package selectors_test

import (
	"fmt"

	"repro/internal/selectors"
)

// Example classifies the paper's category-III example sentence.
func Example() {
	r := selectors.Default()
	res := r.Classify("This synchronization guarantee can often be leveraged to avoid explicit clWaitForEvents() calls between command submissions.")
	fmt.Println(res.Advising, res.Selector)
	// Output:
	// true comparative/passive (xcomp)
}

// ExampleRecognizer_Selector3 shows the imperative rule in isolation.
func ExampleRecognizer_Selector3() {
	r := selectors.Default()
	fmt.Println(r.Selector3("Avoid bank conflicts in shared memory."))
	fmt.Println(r.Selector3("The compiler avoids bank conflicts automatically."))
	// Output:
	// true
	// false
}
