package selectors

import (
	"fmt"
	"strings"

	"repro/internal/depparse"
	"repro/internal/nlp"
	"repro/internal/srl"
	"repro/internal/textproc"
)

// Evidence explains why a selector accepted a sentence — the keyword,
// relation, or role that satisfied its rule. An advising tool that can say
// *why* a sentence is advice is easier to trust and to tune (mis-selected
// evidence points directly at the keyword or parse to fix).
type Evidence struct {
	Selector SelectorID
	Detail   string // human-readable, e.g. `flagging phrase "good choice"`
}

// Explain returns the evidence for every selector that accepts the sentence
// (not just the first, unlike Classify). An empty slice means no selector
// fires.
func (r *Recognizer) Explain(sentence string) []Evidence {
	return r.ExplainAnnotated(nlp.Annotate(sentence))
}

// ExplainParsed is Explain over a pre-parsed sentence.
func (r *Recognizer) ExplainParsed(tree *depparse.Tree) []Evidence {
	return r.ExplainAnnotated(nlp.FromTree("", tree))
}

// ExplainAnnotated is Explain over a shared annotation: the stems and
// purpose clauses Classify already materialized are reused, so explaining a
// classified sentence costs no additional NLP work.
func (r *Recognizer) ExplainAnnotated(a *nlp.Annotation) []Evidence {
	tree := a.Tree
	var out []Evidence

	// selector 1: first matching flagging phrase
	for pi, phrase := range r.flaggingPhrases {
		if containsSubsequence(a.Stems, phrase) {
			out = append(out, Evidence{
				Selector: Keyword,
				Detail:   fmt.Sprintf("flagging phrase %q", r.cfg.FlaggingWords[pi]),
			})
			break
		}
	}

	// selector 2: the xcomp governor
	for _, rel := range tree.Relations {
		if rel.Type != depparse.Xcomp || rel.Governor < 0 {
			continue
		}
		if r.xcompLemmas[tree.Lemma(rel.Governor)] || r.xcompLemmas[strings.ToLower(tree.Words[rel.Governor])] {
			out = append(out, Evidence{
				Selector: Comparative,
				Detail: fmt.Sprintf("xcomp(%s, %s)",
					tree.Words[rel.Governor], tree.Words[rel.Dependent]),
			})
			break
		}
	}

	// selector 3: the subjectless imperative root
	for _, v := range tree.ConjChainFromRoot() {
		if !tree.Tags[v].IsVerb() {
			continue
		}
		if tree.Tags[v] != "VB" && tree.Tags[v] != "VBP" {
			continue
		}
		if r.imperativeLems[tree.Lemma(v)] && !tree.HasSubject(v) {
			out = append(out, Evidence{
				Selector: Imperative,
				Detail:   fmt.Sprintf("imperative root %q with no subject", tree.Words[v]),
			})
			break
		}
	}

	// selector 4: the key subject
	for _, n := range tree.AllSubjects() {
		lemma := textproc.Lemma(tree.Words[n], textproc.NounClass)
		if r.subjectLemmas[lemma] {
			out = append(out, Evidence{
				Selector: Subject,
				Detail:   fmt.Sprintf("subject %q (lemma %q)", tree.Words[n], lemma),
			})
			break
		}
	}

	// selector 5: the purpose clause and its predicate
	for _, p := range a.Purposes() {
		lemma := textproc.Lemma(tree.Words[p.Predicate], textproc.VerbClass)
		if r.predicateLemmas[lemma] {
			out = append(out, Evidence{
				Selector: Purpose,
				Detail: fmt.Sprintf("purpose %q with predicate %q",
					srl.SpanText(tree, p.Start, p.End), lemma),
			})
			break
		}
	}
	return out
}
