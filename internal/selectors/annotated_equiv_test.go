package selectors

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/depparse"
	"repro/internal/nlp"
)

// TestClassifyAnnotatedEquivalence is the golden pipeline-equivalence test:
// over every sentence of the three synthetic corpora, the three
// classification entry points — Classify (raw string), ClassifyParsed
// (pre-parsed tree) and ClassifyAnnotated (shared annotation) — must make
// the identical Stage-I decision, and each of the five selectors must agree
// individually between its tree-fed and annotation-fed forms. Any drift
// here means the annotate-once refactor changed what the paper's Stage I
// selects.
func TestClassifyAnnotatedEquivalence(t *testing.T) {
	rec := Default()
	for _, reg := range []corpus.Register{corpus.CUDA, corpus.OpenCL, corpus.XeonPhi} {
		g := corpus.Generate(reg, 1)
		for i, s := range g.Texts() {
			tree := depparse.ParseText(s)
			ann := nlp.Annotate(s)

			fromString := rec.Classify(s)
			fromTree := rec.ClassifyParsed(tree)
			fromAnn := rec.ClassifyAnnotated(ann)
			if fromString != fromTree || fromTree != fromAnn {
				t.Errorf("%v sentence %d: Classify=%+v ClassifyParsed=%+v ClassifyAnnotated=%+v\n%q",
					reg, i, fromString, fromTree, fromAnn, s)
			}

			for k := 1; k <= 5; k++ {
				viaTree := rec.SelectorTree(k, tree)
				viaAnn := rec.SelectorAnnotated(k, ann)
				if viaTree != viaAnn {
					t.Errorf("%v sentence %d selector %d: tree=%v annotated=%v\n%q",
						reg, i, k, viaTree, viaAnn, s)
				}
			}
		}
	}
}

// TestExplainAnnotatedEquivalence checks the evidence path the same way:
// string-fed, tree-fed and annotation-fed Explain must produce identical
// evidence lists.
func TestExplainAnnotatedEquivalence(t *testing.T) {
	rec := Default()
	g := corpus.Generate(corpus.CUDA, 1)
	for i, s := range g.Texts() {
		fromString := rec.Explain(s)
		fromTree := rec.ExplainParsed(depparse.ParseText(s))
		fromAnn := rec.ExplainAnnotated(nlp.Annotate(s))
		if len(fromString) != len(fromTree) || len(fromTree) != len(fromAnn) {
			t.Fatalf("sentence %d: evidence counts differ: %d / %d / %d\n%q",
				i, len(fromString), len(fromTree), len(fromAnn), s)
		}
		for j := range fromString {
			if fromString[j] != fromTree[j] || fromTree[j] != fromAnn[j] {
				t.Errorf("sentence %d evidence %d: %+v / %+v / %+v",
					i, j, fromString[j], fromTree[j], fromAnn[j])
			}
		}
	}
}

// TestClassifyAnnotatedRepeatable verifies that re-classifying the same
// annotation (whose lazy products memoize) gives the same result.
func TestClassifyAnnotatedRepeatable(t *testing.T) {
	rec := Default()
	g := corpus.GenerateSized(corpus.CUDA, 60, 0.3, 9)
	for _, s := range g.Texts() {
		ann := nlp.Annotate(s)
		first := rec.ClassifyAnnotated(ann)
		second := rec.ClassifyAnnotated(ann)
		if first != second {
			t.Fatalf("classification of a shared annotation is not stable: %+v then %+v (%q)",
				first, second, s)
		}
	}
}
