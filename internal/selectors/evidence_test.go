package selectors

import (
	"strings"
	"testing"

	"repro/internal/depparse"
)

func evidenceFor(t *testing.T, sentence string) []Evidence {
	t.Helper()
	return Default().Explain(sentence)
}

func TestExplainFlaggingPhrase(t *testing.T) {
	ev := evidenceFor(t, "Buffers are a good choice for streaming writes.")
	if len(ev) == 0 || ev[0].Selector != Keyword {
		t.Fatalf("evidence: %+v", ev)
	}
	if !strings.Contains(ev[0].Detail, "good choice") {
		t.Errorf("detail %q", ev[0].Detail)
	}
}

func TestExplainXcomp(t *testing.T) {
	ev := evidenceFor(t, "It is recommended to queue kernels in batches.")
	found := false
	for _, e := range ev {
		if e.Selector == Comparative && strings.Contains(e.Detail, "xcomp(recommended, queue)") {
			found = true
		}
	}
	if !found {
		t.Errorf("evidence: %+v", ev)
	}
}

func TestExplainImperative(t *testing.T) {
	ev := evidenceFor(t, "Avoid bank conflicts in shared memory.")
	found := false
	for _, e := range ev {
		if e.Selector == Imperative && strings.Contains(e.Detail, `"Avoid"`) {
			found = true
		}
	}
	if !found {
		t.Errorf("evidence: %+v", ev)
	}
}

func TestExplainSubjectAndPurpose(t *testing.T) {
	ev := evidenceFor(t, "Developers can restructure the loop nest to minimize traffic.")
	var sawSubject, sawPurpose bool
	for _, e := range ev {
		if e.Selector == Subject && strings.Contains(e.Detail, `"developer"`) {
			sawSubject = true
		}
		if e.Selector == Purpose && strings.Contains(e.Detail, `"minimize"`) {
			sawPurpose = true
		}
	}
	if !sawSubject || !sawPurpose {
		t.Errorf("evidence: %+v", ev)
	}
}

func TestExplainEmptyForPlainSentences(t *testing.T) {
	if ev := evidenceFor(t, "The warp size is thirty-two threads."); len(ev) != 0 {
		t.Errorf("unexpected evidence: %+v", ev)
	}
}

// Explain and Classify must agree: evidence is non-empty exactly when
// Classify says advising, and the first evidence selector matches.
func TestExplainConsistentWithClassify(t *testing.T) {
	r := Default()
	sentences := []string{
		"Buffers are a good choice for streaming writes.",
		"Avoid bank conflicts in shared memory.",
		"It is recommended to queue kernels in batches.",
		"The warp size is thirty-two threads.",
		"Developers can tune the launch configuration.",
		"The first step is to minimize data transfers with low bandwidth.",
		"Each bank serves one request per cycle.",
	}
	for _, s := range sentences {
		tree := depparse.ParseText(s)
		res := r.ClassifyParsed(tree)
		ev := r.ExplainParsed(tree)
		if res.Advising != (len(ev) > 0) {
			t.Errorf("%q: advising=%v but %d evidence entries", s, res.Advising, len(ev))
			continue
		}
		if res.Advising && ev[0].Selector != res.Selector {
			t.Errorf("%q: Classify selector %v but first evidence %v", s, res.Selector, ev[0].Selector)
		}
	}
}
