package selectors

import (
	"strings"
	"time"

	"repro/internal/depparse"
	"repro/internal/nlp"
	"repro/internal/obs"
	"repro/internal/postag"
	"repro/internal/srl"
	"repro/internal/textproc"
)

// Stage-I observability: how many sentences each selector accepted and how
// long classification takes, reported into the default metrics registry
// (surfaced on /metricz as selectors_*).
var (
	classifiedTotal = obs.Default().Counter("selectors_classified_total")
	classifyHist    = obs.Default().Histogram("selectors_classify_micros")
	selectorHits    = func() (hits [NumSelectors + 1]*obs.Counter) {
		for id := None; id <= Purpose; id++ {
			hits[id] = obs.Default().Counter("selectors_hits_" + id.MetricName())
		}
		return hits
	}()
)

// SelectorID identifies one of the five selectors.
type SelectorID int

// Selector identifiers; None means no selector accepted the sentence.
const (
	None SelectorID = iota
	Keyword
	Comparative // selector 2 also covers passive category III
	Imperative
	Subject
	Purpose
	NumSelectors = 5
)

// MetricName names the selector as a metric-safe slug ("keyword",
// "comparative", ..., "none").
func (s SelectorID) MetricName() string {
	switch s {
	case Keyword:
		return "keyword"
	case Comparative:
		return "comparative"
	case Imperative:
		return "imperative"
	case Subject:
		return "subject"
	case Purpose:
		return "purpose"
	}
	return "none"
}

// String names the selector as the paper does.
func (s SelectorID) String() string {
	switch s {
	case Keyword:
		return "keyword"
	case Comparative:
		return "comparative/passive (xcomp)"
	case Imperative:
		return "imperative"
	case Subject:
		return "subject"
	case Purpose:
		return "purpose"
	}
	return "none"
}

// Result reports the classification of one sentence.
type Result struct {
	Advising bool
	Selector SelectorID // the first selector that accepted the sentence
}

// Recognizer classifies sentences as advising / non-advising. It is
// immutable after construction and safe for concurrent use.
type Recognizer struct {
	cfg Config

	flaggingPhrases [][]string // stemmed token sequences
	xcompLemmas     map[string]bool
	imperativeLems  map[string]bool
	subjectLemmas   map[string]bool
	predicateLemmas map[string]bool
}

// New compiles a Recognizer from cfg: flagging phrases are stemmed, and the
// dependency-level keyword sets are reduced to lemmas so that any inflection
// matches ("recommended" matches "recommend", "recommends", ...).
func New(cfg Config) *Recognizer {
	r := &Recognizer{
		cfg:             cfg,
		xcompLemmas:     map[string]bool{},
		imperativeLems:  map[string]bool{},
		subjectLemmas:   map[string]bool{},
		predicateLemmas: map[string]bool{},
	}
	for _, phrase := range cfg.FlaggingWords {
		stems := textproc.StemAll(textproc.Words(phrase))
		if len(stems) > 0 {
			r.flaggingPhrases = append(r.flaggingPhrases, stems)
		}
	}
	for _, w := range cfg.XcompGovernors {
		r.xcompLemmas[textproc.Lemma(w, textproc.VerbClass)] = true
		r.xcompLemmas[textproc.Lemma(w, textproc.AdjClass)] = true
		r.xcompLemmas[strings.ToLower(w)] = true
	}
	for _, w := range cfg.ImperativeWords {
		r.imperativeLems[textproc.Lemma(w, textproc.VerbClass)] = true
	}
	for _, w := range cfg.KeySubjects {
		r.subjectLemmas[textproc.Lemma(w, textproc.NounClass)] = true
	}
	for _, w := range cfg.KeyPredicates {
		r.predicateLemmas[textproc.Lemma(w, textproc.VerbClass)] = true
	}
	return r
}

// Default returns a Recognizer over DefaultConfig.
func Default() *Recognizer { return New(DefaultConfig()) }

// Config returns the configuration the recognizer was compiled from.
func (r *Recognizer) Config() Config { return r.cfg }

// ClassifyAnnotated runs the five selectors in order over a shared
// annotation — the canonical classification path. Every layer it needs
// (tokens, stems, tags, tree, purpose clauses) is read from the annotation,
// so nothing is recomputed; the annotation's lazy products (purpose
// clauses) are materialized at most once even across repeated calls.
func (r *Recognizer) ClassifyAnnotated(a *nlp.Annotation) Result {
	start := time.Now()
	res := r.classifyAnnotated(a)
	classifyHist.ObserveDuration(time.Since(start))
	classifiedTotal.Inc()
	selectorHits[res.Selector].Inc()
	return res
}

func (r *Recognizer) classifyAnnotated(a *nlp.Annotation) Result {
	if r.selector1Stems(a.Stems) {
		return Result{Advising: true, Selector: Keyword}
	}
	switch {
	case r.Selector2Tree(a.Tree):
		return Result{Advising: true, Selector: Comparative}
	case r.Selector3Tree(a.Tree):
		return Result{Advising: true, Selector: Imperative}
	case r.Selector4Tree(a.Tree):
		return Result{Advising: true, Selector: Subject}
	case r.selector5Annotated(a):
		return Result{Advising: true, Selector: Purpose}
	}
	return Result{}
}

// Classify is ClassifyAnnotated for a raw sentence (thin shim: annotate,
// then classify).
func (r *Recognizer) Classify(sentence string) Result {
	return r.ClassifyAnnotated(nlp.Annotate(sentence))
}

// ClassifyParsed is ClassifyAnnotated for a pre-parsed sentence (thin shim:
// wrap the tree in an annotation).
func (r *Recognizer) ClassifyParsed(tree *depparse.Tree) Result {
	return r.ClassifyAnnotated(nlp.FromTree("", tree))
}

// Selector1 implements Rule 1: the sentence contains a flagging keyword
// (after stemming; phrases match as consecutive stems).
func (r *Recognizer) Selector1(sentence string) bool {
	return r.selector1Tokens(textproc.Words(sentence))
}

func (r *Recognizer) selector1Tokens(words []string) bool {
	return r.selector1Stems(textproc.StemAll(words))
}

// selector1Stems matches the flagging phrases against pre-stemmed tokens —
// the annotation path, which shares the stems with Stage II's term
// normalization instead of re-stemming.
func (r *Recognizer) selector1Stems(stems []string) bool {
	for _, phrase := range r.flaggingPhrases {
		if containsSubsequence(stems, phrase) {
			return true
		}
	}
	return false
}

func containsSubsequence(haystack, needle []string) bool {
	if len(needle) == 0 || len(needle) > len(haystack) {
		return false
	}
outer:
	for i := 0; i+len(needle) <= len(haystack); i++ {
		for j, n := range needle {
			if haystack[i+j] != n {
				continue outer
			}
		}
		return true
	}
	return false
}

// Selector2 implements Rule 2 on raw text; see Selector2Tree.
func (r *Recognizer) Selector2(sentence string) bool {
	return r.Selector2Tree(depparse.ParseText(sentence))
}

// Selector2Tree implements Rule 2: the sentence contains
// xcomp(governor, *) with lemma(governor) in XCOMP GOVERNORS. This covers
// both comparative (category II) and passive (category III) sentences.
func (r *Recognizer) Selector2Tree(tree *depparse.Tree) bool {
	for _, rel := range tree.Relations {
		if rel.Type != depparse.Xcomp {
			continue
		}
		gov := rel.Governor
		if gov < 0 {
			continue
		}
		if r.xcompLemmas[tree.Lemma(gov)] || r.xcompLemmas[strings.ToLower(tree.Words[gov])] {
			return true
		}
	}
	return false
}

// Selector3 implements Rule 3 on raw text; see Selector3Tree.
func (r *Recognizer) Selector3(sentence string) bool {
	return r.Selector3Tree(depparse.ParseText(sentence))
}

// Selector3Tree implements Rule 3: the root verb (or a clause head
// coordinated with it, covering "..., so avoid ..." — the paper's own
// category-IV example) is an IMPERATIVE WORD with no nominal subject.
func (r *Recognizer) Selector3Tree(tree *depparse.Tree) bool {
	for _, v := range tree.ConjChainFromRoot() {
		if !tree.Tags[v].IsVerb() {
			continue
		}
		if tree.Tags[v] != postag.VB && tree.Tags[v] != postag.VBP {
			continue
		}
		if !r.imperativeLems[tree.Lemma(v)] {
			continue
		}
		if !tree.HasSubject(v) {
			return true
		}
	}
	return false
}

// Selector4 implements Rule 4 on raw text; see Selector4Tree.
func (r *Recognizer) Selector4(sentence string) bool {
	return r.Selector4Tree(depparse.ParseText(sentence))
}

// Selector4Tree implements Rule 4: the sentence contains nsubj(governor, n)
// with lemma(n) in KEY SUBJECTS.
func (r *Recognizer) Selector4Tree(tree *depparse.Tree) bool {
	for _, n := range tree.AllSubjects() {
		if r.subjectLemmas[textproc.Lemma(tree.Words[n], textproc.NounClass)] {
			return true
		}
	}
	return false
}

// Selector5 implements Rule 5 on raw text; see Selector5Tree.
func (r *Recognizer) Selector5(sentence string) bool {
	return r.Selector5Tree(depparse.ParseText(sentence))
}

// Selector5Tree implements Rule 5: the sentence contains an AM-PNC purpose
// argument whose predicate lemma is in KEY PREDICATES.
func (r *Recognizer) Selector5Tree(tree *depparse.Tree) bool {
	return srl.HasPurposeWithPredicate(tree, r.predicateLemmas)
}

// selector5Annotated is Rule 5 over the annotation's cached purpose clauses.
func (r *Recognizer) selector5Annotated(a *nlp.Annotation) bool {
	return srl.PurposesHavePredicate(a.Tree, a.Purposes(), r.predicateLemmas)
}

// SelectorTree dispatches to the k-th selector (1-based) over a parsed
// sentence; used by the Table 8 ablation harness.
func (r *Recognizer) SelectorTree(k int, tree *depparse.Tree) bool {
	switch k {
	case 1:
		return r.selector1Tokens(tree.Words)
	case 2:
		return r.Selector2Tree(tree)
	case 3:
		return r.Selector3Tree(tree)
	case 4:
		return r.Selector4Tree(tree)
	case 5:
		return r.Selector5Tree(tree)
	}
	return false
}

// SelectorAnnotated dispatches to the k-th selector (1-based) over a shared
// annotation, reusing its stems (selector 1) and cached purpose clauses
// (selector 5) — the ablation harness path that keeps per-selector runs
// from re-deriving each other's inputs.
func (r *Recognizer) SelectorAnnotated(k int, a *nlp.Annotation) bool {
	switch k {
	case 1:
		return r.selector1Stems(a.Stems)
	case 2:
		return r.Selector2Tree(a.Tree)
	case 3:
		return r.Selector3Tree(a.Tree)
	case 4:
		return r.Selector4Tree(a.Tree)
	case 5:
		return r.selector5Annotated(a)
	}
	return false
}

// AllKeywords returns the union of every keyword in the configuration —
// the KeywordAll baseline of the paper's Table 8.
func (c Config) AllKeywords() []string {
	var out []string
	out = append(out, c.FlaggingWords...)
	out = append(out, c.XcompGovernors...)
	out = append(out, c.ImperativeWords...)
	out = append(out, c.KeySubjects...)
	out = append(out, c.KeyPredicates...)
	return out
}
