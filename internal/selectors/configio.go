package selectors

import (
	"encoding/json"
	"fmt"
	"io"
)

// configJSON is the on-disk shape of a Config; field names match the
// paper's Table 2 set names for readability.
type configJSON struct {
	FlaggingWords   []string `json:"flagging_words"`
	XcompGovernors  []string `json:"xcomp_governors"`
	ImperativeWords []string `json:"imperative_words"`
	KeySubjects     []string `json:"key_subjects"`
	KeyPredicates   []string `json:"key_predicates"`
}

// WriteJSON serializes the configuration. Together with ReadConfigJSON it
// supports the paper's extension story: adapting the advisor generator to a
// new (even non-HPC) domain is a matter of editing a keyword file.
func (c Config) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(configJSON(c)); err != nil {
		return fmt.Errorf("selectors: write config: %w", err)
	}
	return nil
}

// ReadConfigJSON loads a configuration written by WriteJSON. Missing fields
// stay empty — callers who want the defaults as a base should merge with
// DefaultConfig via Merge.
func ReadConfigJSON(r io.Reader) (Config, error) {
	var cj configJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cj); err != nil {
		return Config{}, fmt.Errorf("selectors: read config: %w", err)
	}
	return Config(cj), nil
}

// Merge returns a configuration whose keyword sets are the union of c and
// other (duplicates removed, c's order first).
func (c Config) Merge(other Config) Config {
	return Config{
		FlaggingWords:   dedupeAppend(c.FlaggingWords, other.FlaggingWords),
		XcompGovernors:  dedupeAppend(c.XcompGovernors, other.XcompGovernors),
		ImperativeWords: dedupeAppend(c.ImperativeWords, other.ImperativeWords),
		KeySubjects:     dedupeAppend(c.KeySubjects, other.KeySubjects),
		KeyPredicates:   dedupeAppend(c.KeyPredicates, other.KeyPredicates),
	}
}

func dedupeAppend(a, b []string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	out := make([]string, 0, len(a)+len(b))
	for _, lists := range [][]string{a, b} {
		for _, w := range lists {
			if w == "" || seen[w] {
				continue
			}
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}
