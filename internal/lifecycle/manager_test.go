package lifecycle_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/lifecycle"
	"repro/internal/obs"
	"repro/internal/store"
)

// fakeRegistry records Register/Swap calls like service.Registry would.
type fakeRegistry struct {
	mu       sync.Mutex
	advisors map[string]*core.Advisor
	swaps    int
}

func newFakeRegistry() *fakeRegistry {
	return &fakeRegistry{advisors: map[string]*core.Advisor{}}
}

func (r *fakeRegistry) register(name string, a *core.Advisor) {
	r.mu.Lock()
	r.advisors[name] = a
	r.mu.Unlock()
}

func (r *fakeRegistry) swap(name string, a *core.Advisor) core.RulesDiff {
	r.mu.Lock()
	prev := r.advisors[name]
	r.advisors[name] = a
	r.swaps++
	r.mu.Unlock()
	if prev != nil {
		return core.DiffRules(prev, a)
	}
	return core.RulesDiff{}
}

func (r *fakeRegistry) get(name string) *core.Advisor {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.advisors[name]
}

func (r *fakeRegistry) swapCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.swaps
}

// buildSource is a Source over a mutable in-memory guide whose builds are
// counted, so tests can assert what warm start actually did.
type buildSource struct {
	name   string
	mu     sync.Mutex
	seed   int64
	builds atomic.Int64
}

func (s *buildSource) setSeed(seed int64) {
	s.mu.Lock()
	s.seed = seed
	s.mu.Unlock()
}

func (s *buildSource) source() lifecycle.Source {
	return lifecycle.Source{
		Name: s.name,
		Fingerprint: func() (string, error) {
			s.mu.Lock()
			defer s.mu.Unlock()
			return store.HashBytes([]byte(s.name + ":" + time.Unix(s.seed, 0).String())), nil
		},
		Build: func(ctx context.Context) (*core.Advisor, error) {
			s.mu.Lock()
			seed := s.seed
			s.mu.Unlock()
			s.builds.Add(1)
			g := corpus.GenerateSized(corpus.CUDA, 60, 0.3, seed)
			return core.New().BuildFromSentences(g.Doc, g.Sentences), nil
		},
	}
}

func managerOver(t *testing.T, st *store.Store, reg *fakeRegistry, srcs ...lifecycle.Source) *lifecycle.Manager {
	t.Helper()
	m := lifecycle.New(lifecycle.Options{
		Store:    st,
		Register: reg.register,
		Swap:     reg.swap,
		Backoff:  time.Millisecond,
		Metrics:  obs.NewRegistry(),
	})
	for _, s := range srcs {
		if err := m.AddSource(s); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestWarmStartColdThenSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, _ := store.Open(dir)
	src := &buildSource{name: "cuda", seed: 5}

	// first boot: nothing stored, must cold-build and snapshot
	reg1 := newFakeRegistry()
	m1 := managerOver(t, st, reg1, src.source())
	if err := m1.WarmStart(context.Background()); err != nil {
		t.Fatal(err)
	}
	if src.builds.Load() != 1 || reg1.get("cuda") == nil {
		t.Fatalf("cold boot: %d builds, advisor %v", src.builds.Load(), reg1.get("cuda"))
	}
	state := m1.State()
	if state.SnapshotMisses != 1 || state.SnapshotHits != 0 {
		t.Errorf("cold boot hits/misses = %d/%d, want 0/1", state.SnapshotHits, state.SnapshotMisses)
	}
	if state.Advisors[0].Origin != "build" {
		t.Errorf("origin %q, want build", state.Advisors[0].Origin)
	}

	// second boot: same fingerprint, must load the snapshot, not build
	reg2 := newFakeRegistry()
	m2 := managerOver(t, st, reg2, src.source())
	if err := m2.WarmStart(context.Background()); err != nil {
		t.Fatal(err)
	}
	if src.builds.Load() != 1 {
		t.Errorf("warm boot rebuilt: %d builds", src.builds.Load())
	}
	if got := m2.State(); got.SnapshotHits != 1 || got.Advisors[0].Origin != "snapshot" {
		t.Errorf("warm boot state: %+v", got)
	}
	// identical Stage-I output either way
	r1, r2 := reg1.get("cuda").Rules(), reg2.get("cuda").Rules()
	if len(r1) != len(r2) {
		t.Fatalf("rules %d vs %d across boots", len(r1), len(r2))
	}

	// third boot after the source changed: snapshot is stale, rebuild
	src.setSeed(6)
	reg3 := newFakeRegistry()
	m3 := managerOver(t, st, reg3, src.source())
	if err := m3.WarmStart(context.Background()); err != nil {
		t.Fatal(err)
	}
	if src.builds.Load() != 2 {
		t.Errorf("stale snapshot not rebuilt: %d builds", src.builds.Load())
	}
	if got := m3.State(); got.SnapshotMisses != 1 || got.Advisors[0].Origin != "build" {
		t.Errorf("stale boot state: %+v", got)
	}
}

func TestWarmStartQuarantinesCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, _ := store.Open(dir)
	src := &buildSource{name: "cuda", seed: 9}
	m1 := managerOver(t, st, newFakeRegistry(), src.source())
	if err := m1.WarmStart(context.Background()); err != nil {
		t.Fatal(err)
	}
	// smash the payload: startup must still succeed via cold build
	if err := os.WriteFile(filepath.Join(dir, "cuda.snap"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := newFakeRegistry()
	m2 := managerOver(t, st, reg, src.source())
	if err := m2.WarmStart(context.Background()); err != nil {
		t.Fatalf("corrupt snapshot failed startup: %v", err)
	}
	if reg.get("cuda") == nil {
		t.Fatal("no advisor registered after corrupt-snapshot fallback")
	}
	if got := m2.State(); got.SnapshotBad != 1 {
		t.Errorf("corrupt counter %d, want 1", got.SnapshotBad)
	}
	if _, err := os.Stat(filepath.Join(dir, "cuda.snap.bad")); err != nil {
		t.Errorf("bad snapshot not quarantined: %v", err)
	}
	// the rebuild re-snapshotted: a third boot is a hit again
	m3 := managerOver(t, st, newFakeRegistry(), src.source())
	if err := m3.WarmStart(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := m3.State(); got.SnapshotHits != 1 {
		t.Errorf("post-repair boot hits %d, want 1", got.SnapshotHits)
	}
}

func TestWarmStartBuildFailureIsFatal(t *testing.T) {
	m := lifecycle.New(lifecycle.Options{Metrics: obs.NewRegistry()})
	m.AddSource(lifecycle.Source{
		Name:        "broken",
		Fingerprint: func() (string, error) { return "f", nil },
		Build: func(context.Context) (*core.Advisor, error) {
			return nil, errors.New("no such guide")
		},
	})
	if err := m.WarmStart(context.Background()); err == nil {
		t.Fatal("broken source did not fail startup")
	}
}

func TestVerifyRejectsEmptyAdvisor(t *testing.T) {
	empty := core.New().BuildFromSentences(nil, nil)
	if err := lifecycle.Verify(empty); err == nil {
		t.Error("empty advisor passed verification")
	}
	g := corpus.GenerateSized(corpus.CUDA, 60, 0.3, 2)
	good := core.New().BuildFromSentences(g.Doc, g.Sentences)
	if err := lifecycle.Verify(good); err != nil {
		t.Errorf("healthy advisor failed verification: %v", err)
	}
}

// TestWatcherDebounceAndSwap drives the watcher loop tick by tick: one poll
// observing a change arms the debounce, the second fires the rebuild, and
// the new advisor is hot-swapped with a diff.
func TestWatcherDebounceAndSwap(t *testing.T) {
	st, _ := store.Open(t.TempDir())
	src := &buildSource{name: "cuda", seed: 21}
	reg := newFakeRegistry()
	m := managerOver(t, st, reg, src.source())
	if err := m.WarmStart(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go m.Run(ctx) // interval is long; we drive progress via ReloadNow below
	waitFor(t, func() bool { return m.State().Watching })

	builds := src.builds.Load()
	src.setSeed(22)
	// the debounced rebuild path is exercised via Run's ticker in production;
	// here we reload explicitly so the test is deterministic
	if err := m.ReloadNow(ctx, "cuda"); err != nil {
		t.Fatal(err)
	}
	if src.builds.Load() != builds+1 {
		t.Errorf("builds %d, want %d", src.builds.Load(), builds+1)
	}
	if reg.swapCount() != 1 {
		t.Errorf("swaps %d, want 1", reg.swapCount())
	}
	state := m.State()
	if state.Reloads != 1 || state.Advisors[0].Reloads != 1 || state.Advisors[0].LastSwap.IsZero() {
		t.Errorf("reload state: %+v", state.Advisors[0])
	}
	if !state.Watching {
		t.Error("State.Watching false while Run is active")
	}
}

// TestWatcherTicks runs the real polling loop with a tiny interval and
// waits for the debounced rebuild to land.
func TestWatcherTicks(t *testing.T) {
	st, _ := store.Open(t.TempDir())
	src := &buildSource{name: "cuda", seed: 31}
	reg := newFakeRegistry()
	m := lifecycle.New(lifecycle.Options{
		Store:    st,
		Register: reg.register,
		Swap:     reg.swap,
		Interval: 5 * time.Millisecond,
		Backoff:  time.Millisecond,
		Metrics:  obs.NewRegistry(),
	})
	if err := m.AddSource(src.source()); err != nil {
		t.Fatal(err)
	}
	if err := m.WarmStart(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go m.Run(ctx)

	src.setSeed(32)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m.State().Reloads >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := m.State().Reloads; got < 1 {
		t.Fatalf("watcher never rebuilt after a source change (reloads=%d)", got)
	}
	if reg.swapCount() < 1 {
		t.Error("watcher rebuilt without swapping")
	}
}

func TestPauseIsAKillSwitch(t *testing.T) {
	st, _ := store.Open(t.TempDir())
	src := &buildSource{name: "cuda", seed: 41}
	reg := newFakeRegistry()
	m := lifecycle.New(lifecycle.Options{
		Store:    st,
		Register: reg.register,
		Swap:     reg.swap,
		Interval: 5 * time.Millisecond,
		Backoff:  time.Millisecond,
		Metrics:  obs.NewRegistry(),
	})
	m.AddSource(src.source())
	if err := m.WarmStart(context.Background()); err != nil {
		t.Fatal(err)
	}
	m.Pause()
	if !m.Paused() {
		t.Fatal("Paused() false after Pause")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go m.Run(ctx)
	src.setSeed(42)
	time.Sleep(60 * time.Millisecond) // many poll periods
	if got := m.State().Reloads; got != 0 {
		t.Fatalf("paused watcher rebuilt %d times", got)
	}
	// explicit reloads still work while paused (operator override)
	if err := m.ReloadNow(ctx, "cuda"); err != nil {
		t.Fatal(err)
	}
	m.Resume()
	if m.State().Paused {
		t.Error("State.Paused true after Resume")
	}
}

func TestRebuildRetriesWithBackoff(t *testing.T) {
	var attempts atomic.Int64
	reg := newFakeRegistry()
	m := lifecycle.New(lifecycle.Options{
		Register: reg.register,
		Swap:     reg.swap,
		Retries:  3,
		Backoff:  time.Millisecond,
		Metrics:  obs.NewRegistry(),
	})
	m.AddSource(lifecycle.Source{
		Name:        "flaky",
		Fingerprint: func() (string, error) { return "f", nil },
		Build: func(context.Context) (*core.Advisor, error) {
			if attempts.Add(1) < 3 {
				return nil, errors.New("transient")
			}
			g := corpus.GenerateSized(corpus.CUDA, 60, 0.3, 1)
			return core.New().BuildFromSentences(g.Doc, g.Sentences), nil
		},
	})
	if err := m.ReloadNow(context.Background(), "flaky"); err != nil {
		t.Fatalf("reload did not recover over retries: %v", err)
	}
	if attempts.Load() != 3 {
		t.Errorf("attempts %d, want 3", attempts.Load())
	}

	// exhaustion: a permanently broken build surfaces the last error
	attempts.Store(0)
	m2 := lifecycle.New(lifecycle.Options{
		Register: reg.register,
		Retries:  1,
		Backoff:  time.Millisecond,
		Metrics:  obs.NewRegistry(),
	})
	m2.AddSource(lifecycle.Source{
		Name:        "dead",
		Fingerprint: func() (string, error) { return "f", nil },
		Build: func(context.Context) (*core.Advisor, error) {
			attempts.Add(1)
			return nil, errors.New("permanent")
		},
	})
	if err := m2.ReloadNow(context.Background(), "dead"); err == nil {
		t.Fatal("permanently broken build reported success")
	}
	if attempts.Load() != 2 {
		t.Errorf("attempts %d, want 2 (initial + 1 retry)", attempts.Load())
	}
	if st := m2.State(); st.Advisors[0].LastError == "" || st.BuildFailures != 2 {
		t.Errorf("failure not recorded: %+v (failures=%d)", st.Advisors[0], st.BuildFailures)
	}
}

func TestSingleFlight(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	reg := newFakeRegistry()
	m := lifecycle.New(lifecycle.Options{
		Register: reg.register,
		Swap:     reg.swap,
		Retries:  -1,
		Backoff:  time.Millisecond,
		Metrics:  obs.NewRegistry(),
	})
	m.AddSource(lifecycle.Source{
		Name:        "slow",
		Fingerprint: func() (string, error) { return "f", nil },
		Build: func(context.Context) (*core.Advisor, error) {
			once.Do(func() { close(started) })
			<-release
			g := corpus.GenerateSized(corpus.CUDA, 60, 0.3, 1)
			return core.New().BuildFromSentences(g.Doc, g.Sentences), nil
		},
	})
	errc := make(chan error, 1)
	go func() { errc <- m.ReloadNow(context.Background(), "slow") }()
	<-started
	if err := m.ReloadNow(context.Background(), "slow"); !errors.Is(err, lifecycle.ErrInProgress) {
		t.Errorf("concurrent reload: %v, want ErrInProgress", err)
	}
	if st := m.State(); !st.Advisors[0].Rebuilding {
		t.Error("State does not show the in-flight rebuild")
	}
	close(release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestReloadNowAllAndUnknown(t *testing.T) {
	st, _ := store.Open(t.TempDir())
	a := &buildSource{name: "a", seed: 1}
	b := &buildSource{name: "b", seed: 2}
	reg := newFakeRegistry()
	m := managerOver(t, st, reg, a.source(), b.source())
	if err := m.WarmStart(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := m.ReloadNow(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	if reg.swapCount() != 2 {
		t.Errorf("reload-all swapped %d advisors, want 2", reg.swapCount())
	}
	if err := m.ReloadNow(context.Background(), "nosuch"); !errors.Is(err, lifecycle.ErrUnknownSource) {
		t.Errorf("unknown source: %v", err)
	}
}

func TestAddSourceValidation(t *testing.T) {
	m := lifecycle.New(lifecycle.Options{Metrics: obs.NewRegistry()})
	if err := m.AddSource(lifecycle.Source{Name: "x"}); err == nil {
		t.Error("source without Build/Fingerprint accepted")
	}
	ok := lifecycle.Source{
		Name:        "x",
		Fingerprint: func() (string, error) { return "f", nil },
		Build:       func(context.Context) (*core.Advisor, error) { return nil, nil },
	}
	if err := m.AddSource(ok); err != nil {
		t.Fatal(err)
	}
	if err := m.AddSource(ok); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate source: %v", err)
	}
}

// waitFor polls cond until it holds or a generous deadline passes — for
// observing state set asynchronously by the Run goroutine.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}
