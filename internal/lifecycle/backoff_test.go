package lifecycle

import (
	"testing"
	"time"
)

func TestJitteredBackoffBoundsAndDeterminism(t *testing.T) {
	base := 100 * time.Millisecond
	for attempt := 0; attempt < 4; attempt++ {
		d1 := jitteredBackoff(base, attempt, "cuda")
		d2 := jitteredBackoff(base, attempt, "cuda")
		if d1 != d2 {
			t.Fatalf("attempt %d not deterministic: %v vs %v", attempt, d1, d2)
		}
		nominal := base << attempt
		lo, hi := nominal*3/4, nominal*5/4
		if d1 < lo || d1 > hi {
			t.Fatalf("attempt %d backoff %v outside ±25%% of %v", attempt, d1, nominal)
		}
	}
	// different advisors de-synchronize
	if jitteredBackoff(base, 0, "cuda") == jitteredBackoff(base, 0, "openmp") {
		t.Log("two advisors drew identical jitter (possible but suspicious)")
	}
}

// TestSnapshotSleeperIsHookable pins the test seam: the retry sleeper is a
// swappable field, so package tests can count sleeps instead of waiting.
func TestSnapshotSleeperIsHookable(t *testing.T) {
	m := New(Options{})
	var slept []time.Duration
	m.sleep = func(d time.Duration) { slept = append(slept, d) }
	m.sleep(5 * time.Millisecond)
	if len(slept) != 1 || slept[0] != 5*time.Millisecond {
		t.Fatalf("sleep hook not wired: %v", slept)
	}
}
