package lifecycle_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/lifecycle"
	"repro/internal/obs"
	"repro/internal/store"
)

// fullGuideSources mirrors the production 3-guide registry: one full-size
// synthetic guide per register, fingerprinted by register+seed.
func fullGuideSources() []lifecycle.Source {
	srcs := make([]lifecycle.Source, 0, 3)
	for _, reg := range []corpus.Register{corpus.CUDA, corpus.OpenCL, corpus.XeonPhi} {
		reg := reg
		srcs = append(srcs, lifecycle.Source{
			Name:        reg.String(),
			Fingerprint: func() (string, error) { return fmt.Sprintf("bench:%d:42", reg), nil },
			Build: func(ctx context.Context) (*core.Advisor, error) {
				g := corpus.Generate(reg, 42)
				return core.New().BuildFromSentences(g.Doc, g.Sentences), nil
			},
		})
	}
	return srcs
}

func benchManager(b *testing.B, st *store.Store) *lifecycle.Manager {
	b.Helper()
	m := lifecycle.New(lifecycle.Options{
		Store:    st,
		Register: func(string, *core.Advisor) {},
		Metrics:  obs.NewRegistry(),
	})
	for _, s := range fullGuideSources() {
		if err := m.AddSource(s); err != nil {
			b.Fatal(err)
		}
	}
	return m
}

// BenchmarkColdBuild is the baseline: every boot re-runs the Stage-I NLP
// pass for all three guides (no snapshot store).
func BenchmarkColdBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := benchManager(b, nil)
		if err := m.WarmStart(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmStart boots the same 3-guide registry from a pre-populated
// snapshot store. The acceptance bar is >= 3x faster than BenchmarkColdBuild.
func BenchmarkWarmStart(b *testing.B) {
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	// populate the store once, off the clock
	if err := benchManager(b, st).WarmStart(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := benchManager(b, st)
		if err := m.WarmStart(context.Background()); err != nil {
			b.Fatal(err)
		}
		if got := m.State().SnapshotHits; got != 3 {
			b.Fatalf("warm start had %d snapshot hits, want 3", got)
		}
	}
}
