package lifecycle_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/lifecycle"
	"repro/internal/obs"
	"repro/internal/store"
)

// fullGuideSources mirrors the production 3-guide registry: one full-size
// synthetic guide per register, fingerprinted by register+seed.
func fullGuideSources() []lifecycle.Source {
	srcs := make([]lifecycle.Source, 0, 3)
	for _, reg := range []corpus.Register{corpus.CUDA, corpus.OpenCL, corpus.XeonPhi} {
		reg := reg
		srcs = append(srcs, lifecycle.Source{
			Name:        reg.String(),
			Fingerprint: func() (string, error) { return fmt.Sprintf("bench:%d:42", reg), nil },
			Build: func(ctx context.Context) (*core.Advisor, error) {
				g := corpus.Generate(reg, 42)
				return core.New().BuildFromSentences(g.Doc, g.Sentences), nil
			},
		})
	}
	return srcs
}

func benchManager(b *testing.B, st *store.Store) *lifecycle.Manager {
	b.Helper()
	m := lifecycle.New(lifecycle.Options{
		Store:    st,
		Register: func(string, *core.Advisor) {},
		Metrics:  obs.NewRegistry(),
	})
	for _, s := range fullGuideSources() {
		if err := m.AddSource(s); err != nil {
			b.Fatal(err)
		}
	}
	return m
}

// BenchmarkColdBuild is the baseline: every boot re-runs the Stage-I NLP
// pass for all three guides (no snapshot store).
func BenchmarkColdBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := benchManager(b, nil)
		if err := m.WarmStart(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalRebuild measures the differential rebuild path on the
// 3-guide registry: each iteration edits a single sentence of the CUDA guide
// and reloads it, so Stage I re-runs over exactly one sentence and the index
// is rebuilt from the kept term counts. The acceptance bar is >= 5x faster
// than BenchmarkColdBuild (which rebuilds all three guides from scratch),
// with answers bit-identical to a full build under both backends (enforced
// by the equivalence suites in core and eval).
func BenchmarkIncrementalRebuild(b *testing.B) {
	guides := []*editableGuide{
		newEditableGuide("cuda", corpus.CUDA, 0, 42),
		newEditableGuide("opencl", corpus.OpenCL, 0, 42),
		newEditableGuide("xeon", corpus.XeonPhi, 0, 42),
	}
	m := lifecycle.New(lifecycle.Options{
		Register: func(string, *core.Advisor) {},
		Metrics:  obs.NewRegistry(),
	})
	for _, g := range guides {
		if err := m.AddSource(g.source()); err != nil {
			b.Fatal(err)
		}
	}
	if err := m.WarmStart(context.Background()); err != nil {
		b.Fatal(err)
	}
	cuda := guides[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cuda.setEdit(10, fmt.Sprintf("Coalesce global memory accesses for full bandwidth, revision %d.", i))
		if err := m.ReloadNow(context.Background(), "cuda"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if got := m.State().IncrementalRebuilds; got != int64(b.N) {
		b.Fatalf("incremental rebuilds = %d, want %d (some reloads took the full path)", got, b.N)
	}
}

// BenchmarkWarmStart boots the same 3-guide registry from a pre-populated
// snapshot store. The acceptance bar is >= 3x faster than BenchmarkColdBuild.
func BenchmarkWarmStart(b *testing.B) {
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	// populate the store once, off the clock
	if err := benchManager(b, st).WarmStart(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := benchManager(b, st)
		if err := m.WarmStart(context.Background()); err != nil {
			b.Fatal(err)
		}
		if got := m.State().SnapshotHits; got != 3 {
			b.Fatalf("warm start had %d snapshot hits, want 3", got)
		}
	}
}
