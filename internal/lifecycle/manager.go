// Package lifecycle manages the corpus of a running advising service: warm
// starts from the snapshot store, and a background rebuild loop that keeps
// advisors fresh as their source guides change — without ever building on
// the serving path.
//
// Warm start (WarmStart) fills a registry at boot: for each configured
// source it loads the stored snapshot when the source fingerprint matches,
// and cold-builds (then snapshots) only what is missing, stale, or corrupt.
// A corrupt snapshot is quarantined and counted, never fatal — the server
// always comes up.
//
// The rebuild loop (Run) is a polling watcher with debounce: a source whose
// fingerprint changed is rebuilt only after the new fingerprint has been
// observed in two consecutive polls, so a guide mid-edit does not trigger a
// storm of half-baked rebuilds. Rebuilds run in a bounded worker pool with
// per-advisor single-flight and retry-with-backoff; each successful build is
// verified (non-empty rules, self-query smoke check), snapshotted, and then
// hot-swapped into the live registry through the configured Swap hook (the
// service's Reload, which logs the rule diff and invalidates the cache).
// Pause is the kill switch: the watcher keeps polling but triggers nothing
// until Resume.
package lifecycle

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/doc"
	"repro/internal/fault"
	"repro/internal/htmldoc"
	"repro/internal/obs"
	"repro/internal/store"
)

// ErrInProgress: a rebuild for that advisor is already running (single
// flight); the caller's request is redundant, not failed.
var ErrInProgress = errors.New("lifecycle: rebuild already in progress")

// ErrUnknownSource: no source is registered under that name.
var ErrUnknownSource = errors.New("lifecycle: unknown source")

// Source is one advisor's provenance: where it comes from, how to detect
// that it changed, and how to build it.
type Source struct {
	// Name keys the advisor in the registry and the snapshot store.
	Name string
	// Path is the source document's path, recorded in manifests ("" for
	// generated sources).
	Path string
	// Fingerprint returns a stable content hash of everything the build
	// depends on (document bytes, keyword config, threshold). Equal
	// fingerprints promise bit-identical builds; the watcher polls it and
	// warm start compares it against the stored manifest.
	Fingerprint func() (string, error)
	// Build constructs the advisor from source — the expensive Stage-I path.
	Build func(ctx context.Context) (*core.Advisor, error)
	// Sentences extracts the source's current document and sentence list
	// without building — the cheap front half of Build, used to diff a
	// changed source against the serving advisor by sentence identity.
	// Optional; nil disables the incremental rebuild path for this source.
	Sentences func(ctx context.Context) (*htmldoc.Document, []htmldoc.Sentence, error)
	// Update incrementally rebuilds from the previous advisor (typically
	// core.Framework.UpdateFromSentencesCtx): Stage I runs only over the
	// sentences the diff marked Added. Optional; nil disables the
	// incremental path. The result must be equivalent to a full Build of
	// the same sentences — the manager verifies and snapshots it the same
	// way.
	Update func(ctx context.Context, prev *core.Advisor, d *htmldoc.Document, sents []htmldoc.Sentence) (*core.Advisor, error)
}

// Options configures a Manager. Registry registration and hot swap are
// plain funcs so the package stays decoupled from the serving layer: wire
// Register to service.Registry.Add and Swap to service.(*Service).Reload.
type Options struct {
	// Store persists snapshots; nil disables persistence (every start is a
	// cold build, the watcher still works).
	Store *store.Store
	// Register installs an advisor at warm start (before traffic flows).
	Register func(name string, a *core.Advisor)
	// Swap hot-swaps an advisor under live traffic and returns the rule
	// diff. Settable later via SetSwap, since the serving layer is usually
	// constructed after warm start. Defaults to Register with a zero diff.
	Swap func(name string, next *core.Advisor) core.RulesDiff
	// Interval is the watcher poll period (default 15s).
	Interval time.Duration
	// Retries is how many times a failed rebuild is retried (default 3,
	// negative for none).
	Retries int
	// Backoff is the first retry delay, doubled per attempt (default 1s).
	Backoff time.Duration
	// Workers bounds concurrent builds (default 2) so a multi-guide refresh
	// cannot starve the serving goroutines of CPU.
	Workers int
	// Logger receives lifecycle events (default: discard).
	Logger *slog.Logger
	// Metrics is the registry for the lifecycle_* counters and histograms
	// (default obs.Default()).
	Metrics *obs.Registry
	// Fault is the fault-injection layer for the lifecycle.rebuild point;
	// nil (the production default) costs one nil check per rebuild attempt.
	// Store-level faults are wired into the Store itself via SetFaults.
	Fault *fault.Injector
	// IncrementalThreshold is the change-ratio ceiling for differential
	// rebuilds: when a changed source's sentence diff against the serving
	// advisor has ChangeRatio <= threshold, the rebuild reuses the previous
	// advisor's per-sentence work (Source.Update) instead of running the
	// full pipeline. 0 selects the default 0.30; negative disables the
	// incremental path entirely. Values above ~1 make every edit
	// incremental (a full rewrite has ratio ~2).
	IncrementalThreshold float64
}

// DefaultIncrementalThreshold is the change-ratio ceiling below which a
// rebuild takes the differential path. 30%: past that, the fixed costs of
// the full pipeline dominate anyway and the diff bookkeeping buys little.
const DefaultIncrementalThreshold = 0.30

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 15 * time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = time.Second
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if o.Metrics == nil {
		o.Metrics = obs.Default()
	}
	if o.Register == nil {
		o.Register = func(string, *core.Advisor) {}
	}
	if o.IncrementalThreshold == 0 {
		o.IncrementalThreshold = DefaultIncrementalThreshold
	}
	return o
}

// sourceState is one source's live bookkeeping.
type sourceState struct {
	src       Source
	inflight  bool
	current   *core.Advisor // the serving advisor — the base of the next incremental rebuild
	liveHash  string        // fingerprint of the serving advisor
	pending   string        // changed fingerprint awaiting debounce confirmation
	origin    string        // "snapshot" or "build"
	builtAt   time.Time
	lastSwap  time.Time
	reloads   int64
	lastDiff  string
	lastErr   string
	lastMode  string  // "incremental" or "full" — how the last rebuild ran
	lastReuse float64 // reuse ratio of the last incremental rebuild
}

// Manager owns the corpus lifecycle for a set of sources.
type Manager struct {
	opts    Options
	mu      sync.Mutex
	sources map[string]*sourceState
	order   []string
	swap    func(name string, next *core.Advisor) core.RulesDiff
	paused  atomic.Bool
	running atomic.Bool
	slots   chan struct{}       // bounded build pool
	flt     *fault.Injector     // nil unless fault injection is enabled
	sleep   func(time.Duration) // retry sleeper; replaced in tests

	reloads     *obs.Counter
	hits        *obs.Counter
	misses      *obs.Counter
	corrupt     *obs.Counter
	failures    *obs.Counter
	rebuildIncr *obs.Counter // lifecycle_rebuild_total{mode="incremental"}
	rebuildFull *obs.Counter // lifecycle_rebuild_total{mode="full"}
	storeRetry  *obs.Counter // lifecycle_store_retries_total
	swapHist    *obs.Histogram
	buildHist   *obs.Histogram
	loadHist    *obs.Histogram
}

// New creates a Manager; add sources with AddSource, then WarmStart and
// (optionally) Run.
func New(opts Options) *Manager {
	opts = opts.withDefaults()
	m := &Manager{
		opts:        opts,
		sources:     map[string]*sourceState{},
		swap:        opts.Swap,
		slots:       make(chan struct{}, opts.Workers),
		flt:         opts.Fault,
		sleep:       time.Sleep,
		reloads:     opts.Metrics.Counter("lifecycle_reloads_total"),
		hits:        opts.Metrics.Counter("lifecycle_snapshot_hits_total"),
		misses:      opts.Metrics.Counter("lifecycle_snapshot_misses_total"),
		corrupt:     opts.Metrics.Counter("lifecycle_snapshot_corrupt_total"),
		failures:    opts.Metrics.Counter("lifecycle_build_failures_total"),
		rebuildIncr: opts.Metrics.Counter(`lifecycle_rebuild_total{mode="incremental"}`),
		rebuildFull: opts.Metrics.Counter(`lifecycle_rebuild_total{mode="full"}`),
		storeRetry:  opts.Metrics.Counter("lifecycle_store_retries_total"),
		swapHist:    opts.Metrics.Histogram("lifecycle_swap_latency_micros"),
		buildHist:   opts.Metrics.Histogram("lifecycle_build_micros"),
		loadHist:    opts.Metrics.Histogram("lifecycle_snapshot_load_micros"),
	}
	return m
}

// AddSource registers a source. Call before WarmStart/Run.
func (m *Manager) AddSource(src Source) error {
	if src.Name == "" || src.Fingerprint == nil || src.Build == nil {
		return errors.New("lifecycle: source needs Name, Fingerprint, and Build")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.sources[src.Name]; ok {
		return fmt.Errorf("lifecycle: duplicate source %q", src.Name)
	}
	m.sources[src.Name] = &sourceState{src: src}
	m.order = append(m.order, src.Name)
	return nil
}

// SetSwap installs the hot-swap hook (typically service.(*Service).Reload)
// once the serving layer exists. Until then swaps fall back to Register.
func (m *Manager) SetSwap(f func(name string, next *core.Advisor) core.RulesDiff) {
	m.mu.Lock()
	m.swap = f
	m.mu.Unlock()
}

func (m *Manager) doSwap(name string, next *core.Advisor) core.RulesDiff {
	m.mu.Lock()
	f := m.swap
	m.mu.Unlock()
	if f == nil {
		m.opts.Register(name, next)
		return core.RulesDiff{}
	}
	return f(name, next)
}

// Verify is the pre-swap smoke check: an advisor must have extracted at
// least one rule, and asking it one of its own rules back must retrieve
// something. A build that fails Verify never reaches the registry.
func Verify(a *core.Advisor) error {
	rules := a.Rules()
	if len(rules) == 0 {
		return errors.New("lifecycle: verify: advisor has no advising sentences")
	}
	for i, r := range rules {
		if i == 3 {
			break
		}
		if len(a.Query(r.Text)) > 0 {
			return nil
		}
	}
	return errors.New("lifecycle: verify: self-query smoke check found no answers")
}

// WarmStart fills the registry: snapshot when fresh, cold build otherwise,
// across a bounded worker pool. A build error fails startup (the server
// would have nothing to serve); a snapshot error never does — corrupt
// snapshots are quarantined and rebuilt from source.
func (m *Manager) WarmStart(ctx context.Context) error {
	span := obs.SpanFrom(ctx).StartChild("lifecycle.warmstart")
	defer span.Finish()
	m.mu.Lock()
	names := append([]string(nil), m.order...)
	m.mu.Unlock()
	span.SetAttrInt("sources", len(names))

	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			m.slots <- struct{}{}
			defer func() { <-m.slots }()
			if err := m.startOne(ctx, name); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}(name)
	}
	wg.Wait()
	return firstErr
}

// startOne warm-starts a single source: snapshot if fresh, else cold build.
func (m *Manager) startOne(ctx context.Context, name string) error {
	m.mu.Lock()
	st := m.sources[name]
	m.mu.Unlock()
	fp, err := st.src.Fingerprint()
	if err != nil {
		return fmt.Errorf("lifecycle: fingerprint %s: %w", name, err)
	}

	if m.opts.Store != nil {
		loadSpan := obs.SpanFrom(ctx).StartChild("lifecycle.load")
		loadSpan.SetAttr("advisor", name)
		start := time.Now()
		adv, man, lerr := m.opts.Store.Load(name)
		m.loadHist.ObserveDuration(time.Since(start))
		switch {
		case lerr == nil && man.SourceHash == fp:
			loadSpan.SetAttr("outcome", "hit")
			loadSpan.Finish()
			m.hits.Inc()
			m.opts.Register(name, adv)
			m.noteStarted(name, adv, fp, "snapshot", man.BuiltAt)
			m.opts.Logger.Info("warm start from snapshot", "advisor", name, "rules", man.Rules)
			return nil
		case lerr == nil:
			loadSpan.SetAttr("outcome", "stale")
			loadSpan.Finish()
			m.misses.Inc()
			m.opts.Logger.Info("snapshot stale, rebuilding", "advisor", name)
		case errors.Is(lerr, store.ErrCorrupt):
			loadSpan.SetAttr("outcome", "corrupt")
			loadSpan.Finish()
			m.corrupt.Inc()
			m.misses.Inc()
			if qerr := m.opts.Store.Quarantine(name); qerr != nil {
				m.opts.Logger.Warn("quarantine failed", "advisor", name, "err", qerr)
			}
			m.opts.Logger.Warn("snapshot corrupt, quarantined, rebuilding", "advisor", name, "err", lerr)
		default:
			loadSpan.SetAttr("outcome", "miss")
			loadSpan.Finish()
			m.misses.Inc()
		}
	}

	adv, err := m.buildVerified(ctx, name, st.src)
	if err != nil {
		return err
	}
	m.snapshot(name, st.src, adv, fp)
	m.opts.Register(name, adv)
	m.noteStarted(name, adv, fp, "build", adv.BuiltAt())
	m.opts.Logger.Info("cold built", "advisor", name, "rules", len(adv.Rules()))
	return nil
}

func (m *Manager) noteStarted(name string, adv *core.Advisor, fp, origin string, builtAt time.Time) {
	m.mu.Lock()
	st := m.sources[name]
	st.current = adv
	st.liveHash = fp
	st.origin = origin
	st.builtAt = builtAt
	st.lastErr = ""
	m.mu.Unlock()
}

// buildVerified runs Build then Verify under spans and the build histogram.
func (m *Manager) buildVerified(ctx context.Context, name string, src Source) (*core.Advisor, error) {
	buildSpan := obs.SpanFrom(ctx).StartChild("lifecycle.build")
	buildSpan.SetAttr("advisor", name)
	start := time.Now()
	adv, err := src.Build(ctx)
	m.buildHist.ObserveDuration(time.Since(start))
	buildSpan.Finish()
	if err != nil {
		m.failures.Inc()
		return nil, fmt.Errorf("lifecycle: build %s: %w", name, err)
	}
	verifySpan := obs.SpanFrom(ctx).StartChild("lifecycle.verify")
	err = Verify(adv)
	verifySpan.Finish()
	if err != nil {
		m.failures.Inc()
		return nil, fmt.Errorf("lifecycle: %s: %w", name, err)
	}
	return adv, nil
}

// tryIncremental attempts the differential rebuild path: extract the
// source's current sentences, diff them against the serving advisor by
// stable identity, and — when the change ratio is at or below the
// incremental threshold — rebuild through Source.Update, re-running Stage I
// only over the Added sentences. Returns ok=false (never an error) whenever
// the path does not apply or fails; the caller falls back to a full build.
// The diff itself is recorded as a lifecycle.diff span with the
// added/removed/kept partition sizes and the change ratio.
func (m *Manager) tryIncremental(ctx context.Context, name string, src Source, prev *core.Advisor) (*core.Advisor, float64, bool) {
	if m.opts.IncrementalThreshold < 0 || src.Sentences == nil || src.Update == nil {
		return nil, 0, false
	}
	if prev == nil || !prev.HasIdentity() {
		return nil, 0, false
	}
	d, sents, err := src.Sentences(ctx)
	if err != nil {
		m.opts.Logger.Warn("incremental path: sentence extraction failed, falling back to full build",
			"advisor", name, "err", err)
		return nil, 0, false
	}
	diffSpan := obs.SpanFrom(ctx).StartChild("lifecycle.diff")
	diffSpan.SetAttr("advisor", name)
	sents = htmldoc.StampIDs(d, sents)
	diffs := doc.Diff(prev.SentenceIDs(), htmldoc.IDsOf(sents))
	ratio := diffs.ChangeRatio()
	diffSpan.SetAttrInt("added", len(diffs.Added))
	diffSpan.SetAttrInt("removed", len(diffs.Removed))
	diffSpan.SetAttrInt("kept", len(diffs.Kept))
	diffSpan.SetAttr("change_ratio", fmt.Sprintf("%.3f", ratio))
	if ratio > m.opts.IncrementalThreshold {
		diffSpan.SetAttr("outcome", "full")
		diffSpan.Finish()
		m.opts.Logger.Info("change ratio above threshold, full rebuild",
			"advisor", name, "ratio", ratio, "threshold", m.opts.IncrementalThreshold)
		return nil, 0, false
	}
	diffSpan.SetAttr("outcome", "incremental")
	diffSpan.Finish()

	buildSpan := obs.SpanFrom(ctx).StartChild("lifecycle.build")
	buildSpan.SetAttr("advisor", name)
	buildSpan.SetAttr("mode", "incremental")
	start := time.Now()
	adv, err := src.Update(ctx, prev, d, sents)
	m.buildHist.ObserveDuration(time.Since(start))
	buildSpan.Finish()
	if err != nil {
		m.opts.Logger.Warn("incremental rebuild failed, falling back to full build",
			"advisor", name, "err", err)
		return nil, 0, false
	}
	verifySpan := obs.SpanFrom(ctx).StartChild("lifecycle.verify")
	err = Verify(adv)
	verifySpan.Finish()
	if err != nil {
		m.opts.Logger.Warn("incremental rebuild failed verification, falling back to full build",
			"advisor", name, "err", err)
		return nil, 0, false
	}
	return adv, diffs.ReuseRatio(), true
}

// snapshot persists a freshly built advisor, retrying transient store I/O
// failures with bounded jittered backoff (each retry increments
// lifecycle_store_retries_total). Exhausted retries are logged, not fatal:
// the advisor still serves, the next boot just cold-builds again.
func (m *Manager) snapshot(name string, src Source, adv *core.Advisor, fp string) {
	if m.opts.Store == nil {
		return
	}
	var err error
	for attempt := 0; attempt <= m.opts.Retries; attempt++ {
		if attempt > 0 {
			m.storeRetry.Inc()
			m.sleep(jitteredBackoff(m.opts.Backoff, attempt-1, name))
		}
		if _, err = m.opts.Store.Save(name, adv, src.Path, fp); err == nil {
			if attempt > 0 {
				m.opts.Logger.Info("snapshot save recovered", "advisor", name, "attempts", attempt+1)
			}
			return
		}
		m.opts.Logger.Warn("snapshot save failed", "advisor", name, "attempt", attempt+1, "err", err)
	}
	m.opts.Logger.Warn("snapshot save abandoned", "advisor", name, "err", err)
}

// jitteredBackoff is the attempt'th retry delay: base<<attempt scaled by a
// deterministic ±25% jitter derived from the advisor name and attempt, so
// concurrent retries for different advisors de-synchronize without
// wall-clock randomness (chaos runs stay reproducible).
func jitteredBackoff(base time.Duration, attempt int, name string) time.Duration {
	d := base << attempt
	h := fnv.New32a()
	_, _ = h.Write([]byte(name))
	_, _ = h.Write([]byte{byte(attempt)})
	frac := float64(h.Sum32()%1000)/1000.0*0.5 - 0.25 // [-0.25, +0.25)
	return d + time.Duration(float64(d)*frac)
}

// Run polls source fingerprints until ctx is cancelled, triggering
// debounced rebuilds. Call in its own goroutine.
func (m *Manager) Run(ctx context.Context) {
	m.running.Store(true)
	defer m.running.Store(false)
	t := time.NewTicker(m.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			m.tick(ctx)
		}
	}
}

// tick is one watcher poll: fingerprint every source, arm the debounce on a
// first-seen change, and fire the rebuild when the change holds for a
// second consecutive poll.
func (m *Manager) tick(ctx context.Context) {
	if m.paused.Load() {
		return
	}
	m.mu.Lock()
	names := append([]string(nil), m.order...)
	m.mu.Unlock()
	for _, name := range names {
		m.mu.Lock()
		st := m.sources[name]
		src := st.src
		live, pending, inflight := st.liveHash, st.pending, st.inflight
		m.mu.Unlock()
		if inflight {
			continue
		}
		fp, err := src.Fingerprint()
		if err != nil {
			m.setLastErr(name, fmt.Sprintf("fingerprint: %v", err))
			continue
		}
		switch {
		case fp == live:
			if pending != "" {
				m.setPending(name, "") // change reverted before debounce expired
			}
		case fp == pending:
			// stable across two polls — rebuild off the serving path
			m.setPending(name, "")
			go func(name string) {
				if err := m.rebuild(ctx, name); err != nil && !errors.Is(err, ErrInProgress) {
					m.opts.Logger.Warn("background rebuild failed", "advisor", name, "err", err)
				}
			}(name)
		default:
			m.setPending(name, fp)
		}
	}
}

func (m *Manager) setPending(name, fp string) {
	m.mu.Lock()
	m.sources[name].pending = fp
	m.mu.Unlock()
}

func (m *Manager) setLastErr(name, msg string) {
	m.mu.Lock()
	m.sources[name].lastErr = msg
	m.mu.Unlock()
}

// ReloadNow synchronously rebuilds and hot-swaps the named advisor,
// bypassing the debounce — the POST /v1/admin/reload path. An empty name
// reloads every source in order; the first error aborts the sweep.
func (m *Manager) ReloadNow(ctx context.Context, name string) error {
	if name != "" {
		return m.rebuild(ctx, name)
	}
	m.mu.Lock()
	names := append([]string(nil), m.order...)
	m.mu.Unlock()
	for _, n := range names {
		if err := m.rebuild(ctx, n); err != nil {
			return err
		}
	}
	return nil
}

// rebuild builds, verifies, snapshots, and hot-swaps one advisor, with
// per-advisor single-flight, a bounded worker slot, and retry-with-backoff.
func (m *Manager) rebuild(ctx context.Context, name string) error {
	m.mu.Lock()
	st, ok := m.sources[name]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownSource, name)
	}
	if st.inflight {
		m.mu.Unlock()
		return ErrInProgress
	}
	st.inflight = true
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		st.inflight = false
		m.mu.Unlock()
	}()

	select {
	case m.slots <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-m.slots }()

	span := obs.SpanFrom(ctx).StartChild("lifecycle.rebuild")
	span.SetAttr("advisor", name)
	defer span.Finish()

	var lastErr error
	for attempt := 0; attempt <= m.opts.Retries; attempt++ {
		if attempt > 0 {
			backoff := m.opts.Backoff << (attempt - 1)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if ferr := m.flt.Err(fault.LifecycleRebuild); ferr != nil {
			// injected rebuild fault: the attempt fails before any work,
			// exercising exactly this retry loop
			lastErr = fmt.Errorf("lifecycle: rebuild %s: %w", name, ferr)
			m.opts.Logger.Warn("rebuild attempt failed", "advisor", name, "attempt", attempt+1, "err", ferr)
			continue
		}
		fp, err := st.src.Fingerprint()
		if err != nil {
			lastErr = fmt.Errorf("lifecycle: fingerprint %s: %w", name, err)
			continue
		}
		m.mu.Lock()
		prev := st.current
		m.mu.Unlock()
		mode, reuse := "full", 0.0
		adv, r, ok := m.tryIncremental(ctx, name, st.src, prev)
		if ok {
			mode, reuse = "incremental", r
		} else {
			adv, err = m.buildVerified(ctx, name, st.src)
			if err != nil {
				lastErr = err
				m.opts.Logger.Warn("rebuild attempt failed", "advisor", name, "attempt", attempt+1, "err", err)
				continue
			}
		}
		m.snapshot(name, st.src, adv, fp)

		swapSpan := obs.SpanFrom(ctx).StartChild("lifecycle.swap")
		start := time.Now()
		diff := m.doSwap(name, adv)
		m.swapHist.ObserveDuration(time.Since(start))
		swapSpan.SetAttr("diff", diff.Short())
		swapSpan.Finish()
		m.reloads.Inc()
		if mode == "incremental" {
			m.rebuildIncr.Inc()
		} else {
			m.rebuildFull.Inc()
		}

		m.mu.Lock()
		st.current = adv
		st.liveHash = fp
		st.origin = "build"
		st.builtAt = adv.BuiltAt()
		st.lastSwap = time.Now()
		st.reloads++
		st.lastDiff = diff.Short()
		st.lastErr = ""
		st.lastMode = mode
		st.lastReuse = reuse
		m.mu.Unlock()
		m.opts.Logger.Info("hot-swapped", "advisor", name, "diff", diff.Short(), "mode", mode)
		return nil
	}
	m.setLastErr(name, lastErr.Error())
	return lastErr
}

// Pause is the kill switch: the watcher keeps polling but triggers no
// rebuilds until Resume. Explicit ReloadNow calls still work.
func (m *Manager) Pause() { m.paused.Store(true) }

// Resume re-enables automatic rebuilds.
func (m *Manager) Resume() { m.paused.Store(false) }

// Paused reports whether the kill switch is engaged.
func (m *Manager) Paused() bool { return m.paused.Load() }

// AdvisorState is one advisor's lifecycle view, as served on /statsz.
type AdvisorState struct {
	Advisor    string    `json:"advisor"`
	Origin     string    `json:"origin"` // "snapshot" or "build"
	SourcePath string    `json:"source_path,omitempty"`
	BuiltAt    time.Time `json:"built_at"`
	LastSwap   time.Time `json:"last_swap,omitempty"`
	Reloads    int64     `json:"reloads"`
	LastDiff   string    `json:"last_diff,omitempty"`
	LastError  string    `json:"last_error,omitempty"`
	Rebuilding bool      `json:"rebuilding,omitempty"`
	// LastMode reports how the last rebuild ran ("incremental" or "full";
	// "" before the first rebuild); LastReuseRatio is the fraction of the
	// document's sentences the last incremental rebuild carried over.
	LastMode       string  `json:"last_mode,omitempty"`
	LastReuseRatio float64 `json:"last_reuse_ratio,omitempty"`
	// Shards is the advisor's Stage-II index partition count; omitted for
	// the monolithic (single-shard) layout.
	Shards int `json:"shards,omitempty"`
}

// State is the lifecycle snapshot served on /statsz.
type State struct {
	Watching            bool           `json:"watching"`
	Paused              bool           `json:"paused"`
	Reloads             int64          `json:"reloads"`
	SnapshotHits        int64          `json:"snapshot_hits"`
	SnapshotMisses      int64          `json:"snapshot_misses"`
	SnapshotBad         int64          `json:"snapshot_corrupt"`
	BuildFailures       int64          `json:"build_failures"`
	IncrementalRebuilds int64          `json:"incremental_rebuilds"`
	FullRebuilds        int64          `json:"full_rebuilds"`
	Advisors            []AdvisorState `json:"advisors"`
}

// State returns a point-in-time lifecycle snapshot.
func (m *Manager) State() State {
	out := State{
		Watching:            m.running.Load(),
		Paused:              m.paused.Load(),
		Reloads:             m.reloads.Value(),
		SnapshotHits:        m.hits.Value(),
		SnapshotMisses:      m.misses.Value(),
		SnapshotBad:         m.corrupt.Value(),
		BuildFailures:       m.failures.Value(),
		IncrementalRebuilds: m.rebuildIncr.Value(),
		FullRebuilds:        m.rebuildFull.Value(),
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, name := range m.order {
		st := m.sources[name]
		as := AdvisorState{
			Advisor:        name,
			Origin:         st.origin,
			SourcePath:     st.src.Path,
			BuiltAt:        st.builtAt,
			LastSwap:       st.lastSwap,
			Reloads:        st.reloads,
			LastDiff:       st.lastDiff,
			LastError:      st.lastErr,
			Rebuilding:     st.inflight,
			LastMode:       st.lastMode,
			LastReuseRatio: st.lastReuse,
		}
		if st.current != nil && st.current.ShardCount() > 1 {
			as.Shards = st.current.ShardCount()
		}
		out.Advisors = append(out.Advisors, as)
	}
	sort.Slice(out.Advisors, func(i, j int) bool { return out.Advisors[i].Advisor < out.Advisors[j].Advisor })
	return out
}
