package lifecycle_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/lifecycle"
	"repro/internal/obs"
	"repro/internal/store"
)

func TestSnapshotRetriesOnStoreFaults(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(1)
	st.SetFaults(inj)
	reg := newFakeRegistry()
	metrics := obs.NewRegistry()
	src := &buildSource{name: "cuda", seed: 5}
	m := lifecycle.New(lifecycle.Options{
		Store:    st,
		Register: reg.register,
		Swap:     reg.swap,
		Retries:  2,
		Backoff:  time.Millisecond,
		Metrics:  metrics,
	})
	if err := m.AddSource(src.source()); err != nil {
		t.Fatal(err)
	}
	if err := m.WarmStart(context.Background()); err != nil {
		t.Fatal(err)
	}

	// every save fails: the snapshot is retried Retries times, then
	// abandoned — the rebuild itself still succeeds (persistence is not on
	// the serving path)
	inj.Set(fault.StoreWrite, fault.Rule{ErrProb: 1})
	src.setSeed(6)
	if err := m.ReloadNow(context.Background(), "cuda"); err != nil {
		t.Fatalf("rebuild failed on snapshot trouble: %v", err)
	}
	if got := metrics.Counter("lifecycle_store_retries_total").Value(); got != 2 {
		t.Fatalf("store retries = %d, want 2", got)
	}
	if reg.get("cuda") == nil || reg.swapCount() != 1 {
		t.Fatalf("advisor not swapped despite snapshot failure")
	}

	// injection off: the next rebuild persists cleanly, no extra retries
	inj.Reset()
	src.setSeed(7)
	if err := m.ReloadNow(context.Background(), "cuda"); err != nil {
		t.Fatal(err)
	}
	if got := metrics.Counter("lifecycle_store_retries_total").Value(); got != 2 {
		t.Fatalf("clean save still retried: %d", got)
	}
	if _, man, err := st.Load("cuda"); err != nil || man.Advisor != "cuda" {
		t.Fatalf("post-recovery snapshot missing: %v", err)
	}
}

func TestRebuildInjectedFaultExhaustsRetries(t *testing.T) {
	inj := fault.New(1)
	inj.Set(fault.LifecycleRebuild, fault.Rule{ErrProb: 1})
	reg := newFakeRegistry()
	src := &buildSource{name: "cuda", seed: 5}
	m := lifecycle.New(lifecycle.Options{
		Register: reg.register,
		Swap:     reg.swap,
		Retries:  1,
		Backoff:  time.Millisecond,
		Fault:    inj,
		Metrics:  obs.NewRegistry(),
	})
	if err := m.AddSource(src.source()); err != nil {
		t.Fatal(err)
	}
	err := m.ReloadNow(context.Background(), "cuda")
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("rebuild under full fault injection: %v, want ErrInjected", err)
	}
	if src.builds.Load() != 0 {
		t.Fatalf("injected rebuild faults still ran %d builds", src.builds.Load())
	}
	state := m.State()
	if state.Advisors[0].LastError == "" {
		t.Fatal("exhausted rebuild left no last_error on /statsz")
	}

	// injection off: the same manager heals on the next explicit reload
	inj.Reset()
	if err := m.ReloadNow(context.Background(), "cuda"); err != nil {
		t.Fatal(err)
	}
	if reg.get("cuda") == nil {
		t.Fatal("post-recovery reload did not install the advisor")
	}
	if st := m.State(); st.Advisors[0].LastError != "" {
		t.Fatalf("recovered rebuild left stale last_error %q", st.Advisors[0].LastError)
	}
}
