package lifecycle_test

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/htmldoc"
	"repro/internal/lifecycle"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/vsm"
)

// editableGuide is a Source over a guide whose sentences a test (or the
// benchmark) can edit between reloads, with full builds and incremental
// updates counted separately.
type editableGuide struct {
	name       string
	fw         *core.Framework
	mu         sync.Mutex
	d          *htmldoc.Document
	base       []htmldoc.Sentence // pristine extraction (texts + section indices)
	edits      map[int]string     // sentence index → replacement text
	version    int
	fullBuilds atomic.Int64
	updates    atomic.Int64
}

func newEditableGuide(name string, reg corpus.Register, n int, seed int64) *editableGuide {
	var g *corpus.Guide
	if n > 0 {
		g = corpus.GenerateSized(reg, n, 0.3, seed)
	} else {
		g = corpus.Generate(reg, seed)
	}
	return &editableGuide{
		name:  name,
		fw:    core.New(),
		d:     g.Doc,
		base:  g.Sentences,
		edits: map[int]string{},
	}
}

// setEdit replaces the text of sentence i from the next reload on.
func (e *editableGuide) setEdit(i int, text string) {
	e.mu.Lock()
	e.edits[i] = text
	e.version++
	e.mu.Unlock()
}

// sentences materializes the current document version: fresh unstamped
// copies of the base sentences with the edits applied.
func (e *editableGuide) sentences() []htmldoc.Sentence {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]htmldoc.Sentence, len(e.base))
	for i, s := range e.base {
		out[i] = htmldoc.Sentence{Text: s.Text, Section: s.Section}
		if text, ok := e.edits[i]; ok {
			out[i].Text = text
		}
	}
	return out
}

func (e *editableGuide) source() lifecycle.Source {
	return lifecycle.Source{
		Name: e.name,
		Fingerprint: func() (string, error) {
			e.mu.Lock()
			defer e.mu.Unlock()
			return fmt.Sprintf("%s:v%d", e.name, e.version), nil
		},
		Build: func(ctx context.Context) (*core.Advisor, error) {
			e.fullBuilds.Add(1)
			return e.fw.BuildFromSentencesCtx(ctx, e.d, e.sentences()), nil
		},
		Sentences: func(ctx context.Context) (*htmldoc.Document, []htmldoc.Sentence, error) {
			return e.d, e.sentences(), nil
		},
		Update: func(ctx context.Context, prev *core.Advisor, d *htmldoc.Document, sents []htmldoc.Sentence) (*core.Advisor, error) {
			e.updates.Add(1)
			return e.fw.UpdateFromSentencesCtx(ctx, prev, d, sents)
		},
	}
}

func incrementalManager(t *testing.T, st *store.Store, guides ...*editableGuide) (*lifecycle.Manager, *fakeRegistry) {
	t.Helper()
	reg := newFakeRegistry()
	m := lifecycle.New(lifecycle.Options{
		Store:    st,
		Register: reg.register,
		Swap:     reg.swap,
		Metrics:  obs.NewRegistry(),
	})
	for _, g := range guides {
		if err := m.AddSource(g.source()); err != nil {
			t.Fatal(err)
		}
	}
	return m, reg
}

// assertSameAnswers checks that two advisors give Float64bits-identical
// answers over the frozen eval queries under both backends.
func assertSameAnswers(t *testing.T, got, want *core.Advisor) {
	t.Helper()
	for _, q := range corpus.CUDAQueries() {
		for _, backend := range vsm.Backends() {
			ag, err := got.QueryBackend(q.Text, backend)
			if err != nil {
				t.Fatal(err)
			}
			aw, err := want.QueryBackend(q.Text, backend)
			if err != nil {
				t.Fatal(err)
			}
			if len(ag) != len(aw) {
				t.Fatalf("query %q/%s: %d vs %d answers", q.Text, backend, len(ag), len(aw))
			}
			for i := range aw {
				if ag[i].Sentence != aw[i].Sentence ||
					math.Float64bits(ag[i].Score) != math.Float64bits(aw[i].Score) {
					t.Fatalf("query %q/%s answer %d: %+v vs %+v", q.Text, backend, i, ag[i], aw[i])
				}
			}
		}
	}
}

func TestIncrementalRebuildSmallEdit(t *testing.T) {
	g := newEditableGuide("cuda", corpus.CUDA, 120, 51)
	m, reg := incrementalManager(t, nil, g)
	if err := m.WarmStart(context.Background()); err != nil {
		t.Fatal(err)
	}
	g.setEdit(10, "Align global memory accesses to transaction boundaries for best throughput.")
	if err := m.ReloadNow(context.Background(), "cuda"); err != nil {
		t.Fatal(err)
	}
	if got := g.updates.Load(); got != 1 {
		t.Fatalf("incremental updates = %d, want 1", got)
	}
	if got := g.fullBuilds.Load(); got != 1 { // warm start only
		t.Fatalf("full builds = %d, want 1", got)
	}
	st := m.State()
	if st.IncrementalRebuilds != 1 || st.FullRebuilds != 0 {
		t.Fatalf("rebuild counters: incremental=%d full=%d", st.IncrementalRebuilds, st.FullRebuilds)
	}
	adv := st.Advisors[0]
	if adv.LastMode != "incremental" {
		t.Fatalf("LastMode = %q, want incremental", adv.LastMode)
	}
	if want := float64(119) / 120; adv.LastReuseRatio != want {
		t.Fatalf("LastReuseRatio = %v, want %v", adv.LastReuseRatio, want)
	}

	// the swapped advisor is equivalent to a full build of the same edit
	assertSameAnswers(t, reg.get("cuda"), g.fw.BuildFromSentences(g.d, g.sentences()))
}

func TestFullRebuildAboveThreshold(t *testing.T) {
	g := newEditableGuide("cuda", corpus.CUDA, 60, 53)
	m, _ := incrementalManager(t, nil, g)
	if err := m.WarmStart(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ { // rewrite >30% of the document
		g.setEdit(i, fmt.Sprintf("Rewritten guidance sentence number %d about memory.", i))
	}
	if err := m.ReloadNow(context.Background(), "cuda"); err != nil {
		t.Fatal(err)
	}
	if got := g.updates.Load(); got != 0 {
		t.Fatalf("incremental updates = %d, want 0", got)
	}
	st := m.State()
	if st.FullRebuilds != 1 || st.IncrementalRebuilds != 0 {
		t.Fatalf("rebuild counters: incremental=%d full=%d", st.IncrementalRebuilds, st.FullRebuilds)
	}
	if got := st.Advisors[0].LastMode; got != "full" {
		t.Fatalf("LastMode = %q, want full", got)
	}
}

func TestIncrementalDisabledByNegativeThreshold(t *testing.T) {
	g := newEditableGuide("cuda", corpus.CUDA, 60, 55)
	reg := newFakeRegistry()
	m := lifecycle.New(lifecycle.Options{
		Register:             reg.register,
		Swap:                 reg.swap,
		Metrics:              obs.NewRegistry(),
		IncrementalThreshold: -1,
	})
	if err := m.AddSource(g.source()); err != nil {
		t.Fatal(err)
	}
	if err := m.WarmStart(context.Background()); err != nil {
		t.Fatal(err)
	}
	g.setEdit(3, "Use shared memory tiles to cut redundant global loads.")
	if err := m.ReloadNow(context.Background(), "cuda"); err != nil {
		t.Fatal(err)
	}
	if got := g.updates.Load(); got != 0 {
		t.Fatalf("incremental updates = %d, want 0 (path disabled)", got)
	}
	if st := m.State(); st.FullRebuilds != 1 {
		t.Fatalf("full rebuilds = %d, want 1", st.FullRebuilds)
	}
}

// TestIncrementalAfterSnapshotWarmStart exercises the warm-started base: an
// advisor loaded from the snapshot store (term-only annotations) must still
// support the differential path.
func TestIncrementalAfterSnapshotWarmStart(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := newEditableGuide("cuda", corpus.CUDA, 120, 57)
	m1, _ := incrementalManager(t, st, g)
	if err := m1.WarmStart(context.Background()); err != nil {
		t.Fatal(err)
	}

	// second boot: snapshot hit, then a small edit
	m2, reg := incrementalManager(t, st, g)
	if err := m2.WarmStart(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := m2.State().SnapshotHits; got != 1 {
		t.Fatalf("snapshot hits = %d, want 1", got)
	}
	g.setEdit(20, "Profile occupancy before tuning block dimensions.")
	if err := m2.ReloadNow(context.Background(), "cuda"); err != nil {
		t.Fatal(err)
	}
	if got := m2.State().IncrementalRebuilds; got != 1 {
		t.Fatalf("incremental rebuilds = %d, want 1 (warm-started base)", got)
	}
	assertSameAnswers(t, reg.get("cuda"), g.fw.BuildFromSentences(g.d, g.sentences()))
}
