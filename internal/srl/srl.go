// Package srl implements shallow semantic role labeling specialized for the
// roles Egeria's fifth selector consumes: predicates (V), core arguments
// (A0 subject, A1 object) and — critically — AM-PNC purpose adjuncts
// ("to minimize data transfers", "in order to hide latency", "so as to
// avoid bank conflicts", "for maximizing occupancy"). It replaces SENNA in
// the original implementation; the paper notes that purpose roles are the
// high-accuracy subset of SRL (88.2%), and a rule system over the dependency
// analysis recovers them reliably in the programming-guide register.
package srl

import (
	"strings"

	"repro/internal/depparse"
	"repro/internal/postag"
	"repro/internal/textproc"
)

// Role is a PropBank-style semantic role label.
type Role string

// Supported roles.
const (
	V     Role = "V"      // the predicate itself
	A0    Role = "A0"     // proto-agent (subject)
	A1    Role = "A1"     // proto-patient (object / passive subject)
	AMPNC Role = "AM-PNC" // purpose
	AMNEG Role = "AM-NEG" // negation
	AMMOD Role = "AM-MOD" // modal
	AMADV Role = "AM-ADV" // adverbial
)

// Argument is a labeled token span of one predicate's frame.
type Argument struct {
	Role  Role
	Start int // first token index (inclusive)
	End   int // last token index (inclusive)
}

// Frame is the predicate-argument structure centered on one verb.
type Frame struct {
	Predicate int // token index of the predicate verb
	Lemma     string
	Args      []Argument
}

// ArgsByRole returns the frame's arguments carrying the given role.
func (f *Frame) ArgsByRole(role Role) []Argument {
	var out []Argument
	for _, a := range f.Args {
		if a.Role == role {
			out = append(out, a)
		}
	}
	return out
}

// Purpose is a purpose clause found in a sentence: the adjunct span plus the
// predicate verb inside it.
type Purpose struct {
	Start     int // span start (the "to"/"for"/"in order" opener)
	End       int // span end (inclusive)
	Predicate int // token index of the purpose clause's predicate
}

// controlVerbs take an infinitival complement that is their object (A1), not
// a purpose adjunct: "wants to run", "tends to diverge".
var controlVerbs = map[string]bool{
	"want": true, "need": true, "try": true, "attempt": true, "tend": true,
	"begin": true, "start": true, "continue": true, "fail": true,
	"decide": true, "plan": true, "intend": true, "expect": true,
	"seem": true, "appear": true, "like": true, "wish": true, "hope": true,
}

// Label produces the predicate-argument frames of one parsed sentence.
func Label(tree *depparse.Tree) []Frame {
	return LabelWithPurposes(tree, PurposeClauses(tree))
}

// LabelWithPurposes is Label with the sentence's purpose clauses already
// computed — the annotation-fed entry point: an nlp.Annotation finds the
// purpose clauses once and shares them between selector 5 and full frame
// labeling instead of re-scanning the sentence.
func LabelWithPurposes(tree *depparse.Tree, purposes []Purpose) []Frame {
	n := len(tree.Words)
	if n == 0 {
		return nil
	}
	var frames []Frame
	for v := 0; v < n; v++ {
		if !isFramePredicate(tree, v) {
			continue
		}
		f := Frame{
			Predicate: v,
			Lemma:     textproc.Lemma(tree.Words[v], textproc.VerbClass),
		}
		f.Args = append(f.Args, Argument{Role: V, Start: v, End: v})
		// core arguments from the dependency tree
		for _, r := range tree.Relations {
			if r.Governor != v {
				continue
			}
			switch r.Type {
			case depparse.Nsubj:
				s, e := subtreeSpan(tree, r.Dependent, v)
				f.Args = append(f.Args, Argument{Role: A0, Start: s, End: e})
			case depparse.Nsubjpass, depparse.Dobj:
				s, e := subtreeSpan(tree, r.Dependent, v)
				f.Args = append(f.Args, Argument{Role: A1, Start: s, End: e})
			case depparse.Neg:
				f.Args = append(f.Args, Argument{Role: AMNEG, Start: r.Dependent, End: r.Dependent})
			case depparse.Aux:
				if tree.Tags[r.Dependent] == postag.MD {
					f.Args = append(f.Args, Argument{Role: AMMOD, Start: r.Dependent, End: r.Dependent})
				}
			case depparse.Advmod:
				f.Args = append(f.Args, Argument{Role: AMADV, Start: r.Dependent, End: r.Dependent})
			}
		}
		// purpose adjuncts governed by this predicate
		for _, p := range purposes {
			if governingPredicate(tree, p, purposes) == v {
				f.Args = append(f.Args, Argument{Role: AMPNC, Start: p.Start, End: p.End})
			}
		}
		frames = append(frames, f)
	}
	return frames
}

// isFramePredicate reports whether token v heads a predicate frame: a verb
// that is not a bare auxiliary of another verb.
func isFramePredicate(tree *depparse.Tree, v int) bool {
	if !tree.Tags[v].IsVerb() {
		return false
	}
	switch tree.RelationTo(v) {
	case depparse.Aux, depparse.Auxpass, depparse.Cop, depparse.Amod,
		depparse.Mark, depparse.Nn:
		return false
	}
	// a premodifier participle inside an NP is not a predicate
	if tree.RelationTo(v) == depparse.Dep && tree.HeadOf(v) >= 0 &&
		tree.Tags[tree.HeadOf(v)].IsNoun() {
		return false
	}
	return true
}

// subtreeSpan returns the contiguous token span covered by head's dependency
// subtree, never crossing the predicate token.
func subtreeSpan(tree *depparse.Tree, head, predicate int) (int, int) {
	n := len(tree.Words)
	inSub := make([]bool, n)
	inSub[head] = true
	// iterate to fixpoint: token joins if its governor is in the subtree
	for changed := true; changed; {
		changed = false
		for _, r := range tree.Relations {
			if r.Governor >= 0 && inSub[r.Governor] && r.Dependent != predicate && !inSub[r.Dependent] {
				inSub[r.Dependent] = true
				changed = true
			}
		}
	}
	start, end := head, head
	for i := 0; i < n; i++ {
		if inSub[i] {
			if i < start {
				start = i
			}
			if i > end {
				end = i
			}
		}
	}
	// clip at the predicate so spans stay on one side of it
	if predicate >= 0 {
		if start <= predicate && predicate <= end {
			if head < predicate {
				end = predicate - 1
			} else {
				start = predicate + 1
			}
		}
	}
	return start, end
}

// PurposeClauses finds every purpose adjunct in the sentence using surface
// patterns over tokens and tags:
//
//	(in order | so as)? to VB ...     — infinitival purpose
//	for (the purpose of)? VBG ...     — gerundive purpose
//
// Infinitival complements of control verbs ("tends to diverge") are excluded.
func PurposeClauses(tree *depparse.Tree) []Purpose {
	words := tree.Words
	tags := tree.Tags
	n := len(words)
	var out []Purpose
	for i := 0; i < n; i++ {
		lw := strings.ToLower(words[i])
		if lw == "to" {
			j := i + 1
			for j < n && tags[j].IsAdverb() {
				j++
			}
			if j >= n || tags[j] != postag.VB {
				continue
			}
			start := i
			// absorb "in order" / "so as" openers
			if i >= 2 {
				w1 := strings.ToLower(words[i-2])
				w2 := strings.ToLower(words[i-1])
				if (w1 == "in" && w2 == "order") || (w1 == "so" && w2 == "as") {
					start = i - 2
				}
			}
			// exclude control-verb complements
			if start == i && isControlComplement(tree, i) {
				continue
			}
			out = append(out, Purpose{Start: start, End: clauseEnd(tree, j), Predicate: j})
			i = j
			continue
		}
		if lw == "for" && i+1 < n {
			k := i + 1
			if strings.ToLower(words[k]) == "the" && k+2 < n &&
				strings.ToLower(words[k+1]) == "purpose" && strings.ToLower(words[k+2]) == "of" {
				k += 3
			}
			if k < n && tags[k] == postag.VBG {
				out = append(out, Purpose{Start: i, End: clauseEnd(tree, k), Predicate: k})
				i = k
			}
		}
	}
	return out
}

// isControlComplement reports whether the infinitive at "to" (index toIdx)
// complements a control verb directly to its left.
func isControlComplement(tree *depparse.Tree, toIdx int) bool {
	for j := toIdx - 1; j >= 0 && toIdx-j <= 2; j-- {
		if tree.Tags[j].IsAdverb() {
			continue
		}
		if tree.Tags[j].IsVerb() {
			return controlVerbs[textproc.Lemma(tree.Words[j], textproc.VerbClass)]
		}
		return false
	}
	return false
}

// clauseEnd scans from the purpose predicate to the end of its clause: the
// next top-level comma, semicolon, or sentence end.
func clauseEnd(tree *depparse.Tree, from int) int {
	n := len(tree.Words)
	end := n - 1
	for k := from; k < n; k++ {
		w := tree.Words[k]
		if w == "," || w == ";" || w == ":" {
			return k - 1
		}
	}
	// trim trailing sentence punctuation
	for end > from && tree.Tags[end] == postag.PUNCT {
		end--
	}
	return end
}

// governingPredicate decides which verb a purpose adjunct modifies: the
// nearest preceding frame predicate outside any purpose span; for a
// sentence-initial purpose clause, the first main-clause verb after it.
func governingPredicate(tree *depparse.Tree, p Purpose, all []Purpose) int {
	inPurpose := func(i int) bool {
		for _, q := range all {
			if i >= q.Start && i <= q.End {
				return true
			}
		}
		return false
	}
	for i := p.Start - 1; i >= 0; i-- {
		if inPurpose(i) {
			continue
		}
		if tree.Tags[i].IsVerb() && isFramePredicate(tree, i) {
			return i
		}
	}
	for i := p.End + 1; i < len(tree.Words); i++ {
		if inPurpose(i) {
			continue
		}
		if tree.Tags[i].IsVerb() && isFramePredicate(tree, i) {
			return i
		}
	}
	return -1
}

// HasPurposeWithPredicate reports whether the sentence contains a purpose
// clause whose predicate lemma is in the given set — the exact condition of
// Egeria's Rule 5.
func HasPurposeWithPredicate(tree *depparse.Tree, predicates map[string]bool) bool {
	return PurposesHavePredicate(tree, PurposeClauses(tree), predicates)
}

// PurposesHavePredicate is HasPurposeWithPredicate over precomputed purpose
// clauses (the annotation-fed entry point).
func PurposesHavePredicate(tree *depparse.Tree, purposes []Purpose, predicates map[string]bool) bool {
	for _, p := range purposes {
		lemma := textproc.Lemma(tree.Words[p.Predicate], textproc.VerbClass)
		if predicates[lemma] {
			return true
		}
	}
	return false
}

// SpanText renders the token span [start,end] of the tree as a string.
func SpanText(tree *depparse.Tree, start, end int) string {
	if start < 0 {
		start = 0
	}
	if end >= len(tree.Words) {
		end = len(tree.Words) - 1
	}
	if start > end {
		return ""
	}
	return strings.Join(tree.Words[start:end+1], " ")
}
