package srl_test

import (
	"fmt"

	"repro/internal/depparse"
	"repro/internal/srl"
)

// Example finds the purpose clause of the paper's Figure 3 sentence.
func Example() {
	tree := depparse.ParseText("The first step is to minimize data transfers with low bandwidth.")
	for _, p := range srl.PurposeClauses(tree) {
		fmt.Println(tree.Words[p.Predicate])
		fmt.Println(srl.SpanText(tree, p.Start, p.End))
	}
	// Output:
	// minimize
	// to minimize data transfers with low bandwidth
}
