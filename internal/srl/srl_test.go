package srl

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/depparse"
	"repro/internal/textproc"
)

func purposeTexts(sentence string) []string {
	tree := depparse.ParseText(sentence)
	var out []string
	for _, p := range PurposeClauses(tree) {
		out = append(out, SpanText(tree, p.Start, p.End))
	}
	return out
}

// TestFigure3SemanticRoles reproduces the paper's Figure 3: the category-VI
// example sentence has a purpose argument "to minimize data transfers with
// low bandwidth" whose predicate is "minimize".
func TestFigure3SemanticRoles(t *testing.T) {
	s := "The first step in maximizing overall memory throughput for the application is to minimize data transfers with low bandwidth."
	tree := depparse.ParseText(s)
	purposes := PurposeClauses(tree)
	if len(purposes) != 1 {
		t.Fatalf("got %d purposes (%v), want 1", len(purposes), purposes)
	}
	p := purposes[0]
	if tree.Words[p.Predicate] != "minimize" {
		t.Errorf("purpose predicate = %q, want minimize", tree.Words[p.Predicate])
	}
	got := SpanText(tree, p.Start, p.End)
	if !strings.HasPrefix(got, "to minimize data transfers") {
		t.Errorf("purpose span = %q", got)
	}

	// frames: 'minimize' must carry an A1 covering "data transfers ..."
	frames := Label(tree)
	var minFrame *Frame
	for i := range frames {
		if frames[i].Lemma == "minimize" {
			minFrame = &frames[i]
		}
	}
	if minFrame == nil {
		t.Fatalf("no frame for minimize; frames: %+v", frames)
	}
	a1 := minFrame.ArgsByRole(A1)
	if len(a1) == 0 {
		t.Fatalf("minimize has no A1")
	}
	if a1txt := SpanText(tree, a1[0].Start, a1[0].End); !strings.Contains(a1txt, "data transfers") {
		t.Errorf("A1 = %q, want it to cover 'data transfers'", a1txt)
	}

	// the 'be' frame carries the AM-PNC (as in the paper's SRL demo output)
	foundPNC := false
	for _, f := range frames {
		for _, a := range f.ArgsByRole(AMPNC) {
			if strings.Contains(SpanText(tree, a.Start, a.End), "minimize data transfers") {
				foundPNC = true
			}
		}
	}
	if !foundPNC {
		t.Errorf("no frame carries the AM-PNC purpose; frames: %+v", frames)
	}
}

func TestPurposeDetectionPatterns(t *testing.T) {
	cases := []struct {
		sentence string
		wantPred string
	}{
		{"Unroll the loop to reduce instruction overhead.", "reduce"},
		{"Stage data in shared memory in order to avoid redundant global loads.", "avoid"},
		{"The condition should be written so as to minimize the number of divergent warps.", "minimize"},
		{"Programmers must carefully control the bank bits to avoid bank conflicts as much as possible.", "avoid"},
		{"To obtain best performance, write the controlling condition carefully.", "obtain"},
	}
	for _, c := range cases {
		tree := depparse.ParseText(c.sentence)
		purposes := PurposeClauses(tree)
		if len(purposes) == 0 {
			t.Errorf("no purpose found in %q", c.sentence)
			continue
		}
		found := false
		for _, p := range purposes {
			if textproc.Lemma(tree.Words[p.Predicate], textproc.VerbClass) == c.wantPred {
				found = true
			}
		}
		if !found {
			t.Errorf("purpose predicate for %q: want %q, got %v", c.sentence, c.wantPred, purposeTexts(c.sentence))
		}
	}
}

func TestMultiplePurposesInOneSentence(t *testing.T) {
	s := "Tile the loops to maximize reuse and stage the halo once to minimize traffic."
	tree := depparse.ParseText(s)
	purposes := PurposeClauses(tree)
	if len(purposes) != 2 {
		t.Fatalf("got %d purposes: %v", len(purposes), purposeTexts(s))
	}
	preds := map[string]bool{}
	for _, p := range purposes {
		preds[textproc.Lemma(tree.Words[p.Predicate], textproc.VerbClass)] = true
	}
	if !preds["maximize"] || !preds["minimize"] {
		t.Errorf("predicates: %v", preds)
	}
}

func TestPurposeInPassiveMainClause(t *testing.T) {
	s := "The condition should be rewritten to minimize the number of divergent warps."
	tree := depparse.ParseText(s)
	purposes := PurposeClauses(tree)
	if len(purposes) != 1 {
		t.Fatalf("purposes: %v", purposeTexts(s))
	}
	if tree.Words[purposes[0].Predicate] != "minimize" {
		t.Errorf("predicate %q", tree.Words[purposes[0].Predicate])
	}
	// the purpose is governed by the passive main verb
	gov := governingPredicate(tree, purposes[0], purposes)
	if gov < 0 || tree.Lemma(gov) != "rewrite" {
		t.Errorf("governor %q", tree.Word(gov))
	}
}

func TestInOrderToMidSentence(t *testing.T) {
	s := "The halo is staged once per block in order to avoid redundant loads."
	got := purposeTexts(s)
	if len(got) != 1 || !strings.HasPrefix(got[0], "in order to avoid") {
		t.Errorf("purposes: %v", got)
	}
}

func TestPurposeSpanStopsAtComma(t *testing.T) {
	s := "To maximize coalescing, align the base address."
	tree := depparse.ParseText(s)
	purposes := PurposeClauses(tree)
	if len(purposes) != 1 {
		t.Fatalf("purposes: %v", purposeTexts(s))
	}
	span := SpanText(tree, purposes[0].Start, purposes[0].End)
	if strings.Contains(span, "align") {
		t.Errorf("purpose span leaked past the comma: %q", span)
	}
}

func TestControlVerbsExcluded(t *testing.T) {
	for _, s := range []string{
		"The branch tends to diverge under load.",
		"The scheduler wants to issue two instructions.",
	} {
		if got := purposeTexts(s); len(got) != 0 {
			t.Errorf("control complement mislabeled as purpose in %q: %v", s, got)
		}
	}
}

func TestNoPurposeInPlainSentences(t *testing.T) {
	for _, s := range []string{
		"The warp size is thirty-two threads.",
		"Global memory resides in device memory.",
		"Shared memory is divided into banks.",
	} {
		if got := purposeTexts(s); len(got) != 0 {
			t.Errorf("spurious purpose in %q: %v", s, got)
		}
	}
}

func TestHasPurposeWithPredicate(t *testing.T) {
	preds := map[string]bool{
		"maximize": true, "minimize": true, "recommend": true,
		"accomplish": true, "achieve": true, "avoid": true,
	}
	positive := []string{
		"The first step is to minimize data transfers with low bandwidth.",
		"Coalesce the accesses to maximize bandwidth utilization.",
		"Pad the array in order to avoid bank conflicts.",
		"Use streams to achieve overlap between transfers and execution.",
	}
	for _, s := range positive {
		if !HasPurposeWithPredicate(depparse.ParseText(s), preds) {
			t.Errorf("HasPurposeWithPredicate(%q) = false, want true", s)
		}
	}
	negative := []string{
		"Use the profiler to inspect the kernel.", // inspect not in set
		"The warp scheduler issues instructions in order.",
		"Bank conflicts increase latency.",
	}
	for _, s := range negative {
		if HasPurposeWithPredicate(depparse.ParseText(s), preds) {
			t.Errorf("HasPurposeWithPredicate(%q) = true, want false", s)
		}
	}
}

func TestFramesCoreArguments(t *testing.T) {
	tree := depparse.ParseText("The compiler unrolls small loops.")
	frames := Label(tree)
	if len(frames) == 0 {
		t.Fatal("no frames")
	}
	var main *Frame
	for i := range frames {
		if frames[i].Lemma == "unroll" {
			main = &frames[i]
		}
	}
	if main == nil {
		t.Fatalf("no unroll frame: %+v", frames)
	}
	if a0 := main.ArgsByRole(A0); len(a0) == 0 || !strings.Contains(SpanText(tree, a0[0].Start, a0[0].End), "compiler") {
		t.Errorf("A0 wrong: %+v", a0)
	}
	if a1 := main.ArgsByRole(A1); len(a1) == 0 || !strings.Contains(SpanText(tree, a1[0].Start, a1[0].End), "loops") {
		t.Errorf("A1 wrong: %+v", a1)
	}
}

func TestPassiveA1(t *testing.T) {
	tree := depparse.ParseText("Register usage can be controlled with a compiler option.")
	frames := Label(tree)
	for _, f := range frames {
		if f.Lemma == "control" {
			a1 := f.ArgsByRole(A1)
			if len(a1) == 0 || !strings.Contains(SpanText(tree, a1[0].Start, a1[0].End), "usage") {
				t.Errorf("passive A1 wrong: %+v", a1)
			}
			if mod := f.ArgsByRole(AMMOD); len(mod) == 0 {
				t.Errorf("missing AM-MOD for 'can'")
			}
			return
		}
	}
	t.Fatalf("no control frame: %+v", frames)
}

func TestNegation(t *testing.T) {
	tree := depparse.ParseText("The host does not read the memory object.")
	frames := Label(tree)
	found := false
	for _, f := range frames {
		if len(f.ArgsByRole(AMNEG)) > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no AM-NEG found: %+v", frames)
	}
}

func TestSpanTextBounds(t *testing.T) {
	tree := depparse.ParseText("Avoid conflicts.")
	if got := SpanText(tree, -5, 99); got == "" {
		t.Errorf("clamped span should be non-empty, got %q", got)
	}
	if got := SpanText(tree, 2, 1); got != "" {
		t.Errorf("inverted span should be empty, got %q", got)
	}
}

// Property: argument spans are within bounds and ordered, and every frame's
// predicate is a verb token.
func TestLabelInvariants(t *testing.T) {
	vocab := []string{
		"use", "shared", "memory", "to", "avoid", "bank", "conflicts",
		"the", "kernel", "is", "slow", ",", ".", "maximize", "for",
		"in", "order", "minimizing", "transfers", "and",
	}
	f := func(seed []byte) bool {
		if len(seed) == 0 {
			return true
		}
		if len(seed) > 20 {
			seed = seed[:20]
		}
		words := make([]string, len(seed))
		for i, b := range seed {
			words[i] = vocab[int(b)%len(vocab)]
		}
		tree := depparse.ParseWords(words)
		for _, fr := range Label(tree) {
			if fr.Predicate < 0 || fr.Predicate >= len(words) {
				return false
			}
			if !tree.Tags[fr.Predicate].IsVerb() {
				return false
			}
			for _, a := range fr.Args {
				if a.Start < 0 || a.End >= len(words) || a.Start > a.End {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLabel(b *testing.B) {
	tree := depparse.ParseText("The first step in maximizing overall memory throughput for the application is to minimize data transfers with low bandwidth.")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Label(tree)
	}
}
