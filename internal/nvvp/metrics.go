package nvvp

import (
	"encoding/json"
	"fmt"

	"repro/internal/gpusim"
)

// Metrics is the JSON profiler format — the "other commonly used profiling
// reports" extension the paper leaves as future work. A metrics snapshot is
// converted into performance issues by a threshold rule engine
// (Metrics.Issues), which feeds the same issue-to-query path as the text
// report format.
type Metrics struct {
	Program string `json:"program"`
	Kernel  string `json:"kernel"`

	// ratios in [0,1] unless noted
	WarpExecutionEfficiency float64 `json:"warp_execution_efficiency"`
	Occupancy               float64 `json:"occupancy"`
	GlobalLoadEfficiency    float64 `json:"global_load_efficiency"`
	BranchDivergence        float64 `json:"branch_divergence"`
	DramUtilization         float64 `json:"dram_utilization"`
	IssueSlotUtilization    float64 `json:"issue_slot_utilization"`
	LowThroughputInstFrac   float64 `json:"low_throughput_inst_fraction"`
	TransferComputeRatio    float64 `json:"transfer_compute_ratio"` // may exceed 1
}

// ParseMetricsJSON decodes a metrics snapshot.
func ParseMetricsJSON(data []byte) (*Metrics, error) {
	var m Metrics
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("nvvp: bad metrics JSON: %w", err)
	}
	for name, v := range map[string]float64{
		"warp_execution_efficiency": m.WarpExecutionEfficiency,
		"occupancy":                 m.Occupancy,
		"global_load_efficiency":    m.GlobalLoadEfficiency,
		"branch_divergence":         m.BranchDivergence,
		"dram_utilization":          m.DramUtilization,
		"issue_slot_utilization":    m.IssueSlotUtilization,
	} {
		if v < 0 || v > 1 {
			return nil, fmt.Errorf("nvvp: metric %s = %v outside [0,1]", name, v)
		}
	}
	if m.TransferComputeRatio < 0 {
		return nil, fmt.Errorf("nvvp: transfer_compute_ratio negative")
	}
	return &m, nil
}

// MarshalJSON-compatible round trip is provided by the struct tags; Encode
// renders the snapshot for storage.
func (m *Metrics) Encode() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// Thresholds for the issue rule engine. Exposed as variables so harnesses
// can ablate them.
var (
	WarpEfficiencyFloor   = 0.80
	DivergenceCeiling     = 0.20
	LoadEfficiencyFloor   = 0.60
	OccupancyFloor        = 0.50
	IssueUtilizationFloor = 0.60
	LowThroughputCeiling  = 0.30
	DramUtilizationCeil   = 0.80
	TransferRatioCeiling  = 0.75
)

// Issues applies the threshold rules and returns the detected performance
// issues in report order. Issue titles and query texts reuse the NVVP
// vocabulary so the advisor's retrieval path is identical for both formats.
func (m *Metrics) Issues() []Issue {
	var out []Issue
	add := func(section, title, desc string) {
		out = append(out, Issue{Section: section, Title: title, Description: desc})
	}
	if m.Occupancy < OccupancyFloor && m.IssueSlotUtilization < IssueUtilizationFloor {
		add("Instruction and Memory Latency",
			"Instruction Latencies may be Limiting Performance",
			fmt.Sprintf("Occupancy is %.0f%% and issue slot utilization %.0f%%. "+
				"Too few warps are resident to hide instruction latency. Keep more "+
				"warps and resident blocks per multiprocessor, control register "+
				"usage, tune occupancy and the block size, and expose "+
				"instruction-level parallelism.",
				m.Occupancy*100, m.IssueSlotUtilization*100))
	}
	if m.WarpExecutionEfficiency < WarpEfficiencyFloor {
		add("Compute Resources",
			"Low Warp Execution Efficiency",
			fmt.Sprintf("Warp execution efficiency is %.0f%%. Under-populated or "+
				"divergent warps waste compute resources. Choose the threads per "+
				"block as a multiple of the warp size and keep warps uniformly "+
				"filled with eligible work.", m.WarpExecutionEfficiency*100))
	}
	if m.BranchDivergence > DivergenceCeiling {
		add("Compute Resources",
			"Divergent Branches",
			fmt.Sprintf("%.0f%% of branches diverge. Threads of the same warp "+
				"follow different paths of thread ID dependent conditions and "+
				"serialize. Rewrite the controlling condition so as to minimize "+
				"the number of divergent warps.", m.BranchDivergence*100))
	}
	if m.LowThroughputInstFrac > LowThroughputCeiling {
		add("Compute Resources",
			"GPU Utilization is Limited by Memory Instruction Execution",
			fmt.Sprintf("%.0f%% of executed instructions have low throughput. "+
				"Maximize instruction throughput by trading precision for speed, "+
				"using intrinsic functions, and avoiding synchronization points.",
				m.LowThroughputInstFrac*100))
	}
	if m.GlobalLoadEfficiency < LoadEfficiencyFloor {
		add("Memory Bandwidth",
			"Global Memory Alignment and Access Pattern",
			fmt.Sprintf("Global load efficiency is %.0f%%. Accesses split into "+
				"extra transactions. Improve coalescing and alignment of the base "+
				"address, padding, and the per-thread access pattern.",
				m.GlobalLoadEfficiency*100))
	}
	if m.DramUtilization > DramUtilizationCeil || m.TransferComputeRatio > TransferRatioCeiling {
		add("Memory Bandwidth",
			"GPU Utilization is Limited by Memory Bandwidth",
			fmt.Sprintf("DRAM utilization is %.0f%% and transfers cost %.2fx the "+
				"kernel time. Minimize data transfers, batch small transfers, use "+
				"pinned host memory, stage reused tiles in shared memory, and "+
				"overlap transfers with streams.",
				m.DramUtilization*100, m.TransferComputeRatio))
	}
	return out
}

// MetricsReport wraps the metric issues in a Report so the advisor consumes
// both formats identically.
func (m *Metrics) Report() *Report {
	order := []string{"Instruction and Memory Latency", "Compute Resources", "Memory Bandwidth"}
	r := &Report{Program: m.Program, Sections: make([]Section, len(order))}
	sections := map[string]*Section{}
	for i, title := range order {
		r.Sections[i].Title = title
		sections[title] = &r.Sections[i]
	}
	for _, issue := range m.Issues() {
		s := sections[issue.Section]
		s.Issues = append(s.Issues, issue)
	}
	return r
}

// ProfileKernel derives a metrics snapshot from the analytic kernel model —
// the bridge that lets the simulated workflow run end to end: model a
// kernel, profile it, feed the profile to the advisor, apply the advice,
// re-profile.
func ProfileKernel(k gpusim.Kernel, d gpusim.Device) *Metrics {
	occ := k.Occupancy(d)
	kernelTime := k.KernelTime(d)
	transferTime := k.TransferTime(d)
	ratio := 0.0
	if kernelTime > 0 {
		ratio = transferTime / kernelTime
	}
	warpEff := 1 / k.DivergenceFactor
	loadEff := 1 / k.CoalesceWaste
	divergence := (k.DivergenceFactor - 1) / k.DivergenceFactor

	// utilization ratios from the model's time components: the fraction of
	// the kernel's bottleneck budget each unit consumes
	compute, mem, latency := k.Components(d)
	total := compute + mem + latency
	dramUtil, lowThroughput := 0.0, 0.0
	if total > 0 {
		dramUtil = mem / maxf(compute, maxf(mem, latency)+1e-30)
		// "low throughput instruction" pressure: issue slots consumed by
		// replayed/divergent instruction streams
		lowThroughput = (compute / total) * clamp01(k.DivergenceFactor-1+k.InstPerThread/4000)
	}
	return &Metrics{
		Program:                 k.Name,
		Kernel:                  k.Name + "_kernel",
		WarpExecutionEfficiency: clamp01(warpEff),
		Occupancy:               clamp01(occ),
		GlobalLoadEfficiency:    clamp01(loadEff),
		BranchDivergence:        clamp01(divergence),
		DramUtilization:         clamp01(dramUtil),
		IssueSlotUtilization:    clamp01(occ * 1.2),
		LowThroughputInstFrac:   clamp01(lowThroughput),
		TransferComputeRatio:    ratio,
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
