package nvvp

import (
	"strings"
	"testing"

	"repro/internal/gpusim"
)

func healthyMetrics() Metrics {
	return Metrics{
		Program:                 "toy",
		Kernel:                  "toy_kernel",
		WarpExecutionEfficiency: 0.95,
		Occupancy:               0.9,
		GlobalLoadEfficiency:    0.9,
		BranchDivergence:        0.05,
		DramUtilization:         0.4,
		IssueSlotUtilization:    0.8,
		LowThroughputInstFrac:   0.05,
		TransferComputeRatio:    0.1,
	}
}

func TestMetricsJSONRoundTrip(t *testing.T) {
	m := healthyMetrics()
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseMetricsJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if *back != m {
		t.Errorf("round trip mismatch:\n%+v\n%+v", *back, m)
	}
}

func TestParseMetricsJSONValidation(t *testing.T) {
	cases := []string{
		`{"occupancy": 1.5}`,
		`{"warp_execution_efficiency": -0.1}`,
		`{"transfer_compute_ratio": -1}`,
		`not json`,
	}
	for _, c := range cases {
		if _, err := ParseMetricsJSON([]byte(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
	if _, err := ParseMetricsJSON([]byte(`{}`)); err != nil {
		t.Errorf("empty metrics rejected: %v", err)
	}
}

func TestHealthyKernelHasNoIssues(t *testing.T) {
	m := healthyMetrics()
	if issues := m.Issues(); len(issues) != 0 {
		t.Errorf("healthy metrics produced issues: %+v", issues)
	}
}

func TestEachRuleFires(t *testing.T) {
	cases := []struct {
		mutate func(*Metrics)
		title  string
	}{
		{func(m *Metrics) { m.WarpExecutionEfficiency = 0.5 }, "Low Warp Execution Efficiency"},
		{func(m *Metrics) { m.BranchDivergence = 0.4 }, "Divergent Branches"},
		{func(m *Metrics) { m.GlobalLoadEfficiency = 0.3 }, "Global Memory Alignment and Access Pattern"},
		{func(m *Metrics) { m.Occupancy = 0.3; m.IssueSlotUtilization = 0.3 }, "Instruction Latencies may be Limiting Performance"},
		{func(m *Metrics) { m.DramUtilization = 0.95 }, "GPU Utilization is Limited by Memory Bandwidth"},
		{func(m *Metrics) { m.TransferComputeRatio = 2.0 }, "GPU Utilization is Limited by Memory Bandwidth"},
		{func(m *Metrics) { m.LowThroughputInstFrac = 0.5 }, "GPU Utilization is Limited by Memory Instruction Execution"},
	}
	for _, c := range cases {
		m := healthyMetrics()
		c.mutate(&m)
		issues := m.Issues()
		found := false
		for _, i := range issues {
			if i.Title == c.title {
				found = true
				if i.Description == "" {
					t.Errorf("%s: empty description", c.title)
				}
			}
		}
		if !found {
			t.Errorf("rule for %q did not fire: %+v", c.title, issues)
		}
	}
}

func TestMetricsReportStructure(t *testing.T) {
	m := healthyMetrics()
	m.BranchDivergence = 0.5
	m.DramUtilization = 0.95
	r := m.Report()
	if r.Program != "toy" {
		t.Errorf("program %q", r.Program)
	}
	if len(r.Sections) != 3 {
		t.Fatalf("%d sections", len(r.Sections))
	}
	if len(r.Issues()) != 2 {
		t.Errorf("%d issues, want 2", len(r.Issues()))
	}
	// issues live in the right sections
	for _, s := range r.Sections {
		for _, i := range s.Issues {
			if i.Section != s.Title {
				t.Errorf("issue %q in section %q tagged %q", i.Title, s.Title, i.Section)
			}
		}
	}
}

func TestProfileKernelBaselineShowsProblems(t *testing.T) {
	// the unoptimized study kernel must profile as problematic
	m := ProfileKernel(gpusim.NormKernel(), gpusim.GTX780())
	issues := m.Issues()
	if len(issues) < 3 {
		t.Fatalf("baseline kernel only shows %d issues: %+v", len(issues), issues)
	}
	titles := map[string]bool{}
	for _, i := range issues {
		titles[i.Title] = true
	}
	for _, want := range []string{"Divergent Branches", "Global Memory Alignment and Access Pattern"} {
		if !titles[want] {
			t.Errorf("baseline profile missing %q", want)
		}
	}
}

func TestProfileKernelOptimizedIsClean(t *testing.T) {
	k := gpusim.Apply(gpusim.NormKernel(),
		gpusim.RemoveDivergence, gpusim.CoalesceAccesses, gpusim.TuneOccupancy,
		gpusim.UnrollLoop, gpusim.StageShared, gpusim.PinTransfers)
	m := ProfileKernel(k, gpusim.GTX780())
	issues := m.Issues()
	if len(issues) > 1 {
		t.Errorf("fully optimized kernel still shows %d issues: %+v", len(issues), issues)
	}
}

func TestProfileKernelMetricsInRange(t *testing.T) {
	for _, d := range []gpusim.Device{gpusim.GTX780(), gpusim.GTX480()} {
		m := ProfileKernel(gpusim.NormKernel(), d)
		data, err := m.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ParseMetricsJSON(data); err != nil {
			t.Errorf("%s: profile fails its own validation: %v\n%s", d.Name, err, data)
		}
	}
}

func TestOptimizationImprovesItsMetric(t *testing.T) {
	base := ProfileKernel(gpusim.NormKernel(), gpusim.GTX780())
	divFixed := ProfileKernel(gpusim.Apply(gpusim.NormKernel(), gpusim.RemoveDivergence), gpusim.GTX780())
	if divFixed.BranchDivergence >= base.BranchDivergence {
		t.Error("divergence removal did not improve the divergence metric")
	}
	coalesced := ProfileKernel(gpusim.Apply(gpusim.NormKernel(), gpusim.CoalesceAccesses), gpusim.GTX780())
	if coalesced.GlobalLoadEfficiency <= base.GlobalLoadEfficiency {
		t.Error("coalescing did not improve load efficiency")
	}
	tuned := ProfileKernel(gpusim.Apply(gpusim.NormKernel(), gpusim.TuneOccupancy), gpusim.GTX780())
	if tuned.Occupancy <= base.Occupancy {
		t.Error("occupancy tuning did not improve occupancy")
	}
}

// TestBenchmarkKernelProfilesMatchReports ties the kernel models to the
// paper's Table 6 program set: each modeled baseline profiles with the
// issues its NVVP report lists, and each _opt variant clears the issue its
// optimization fixed.
func TestBenchmarkKernelProfilesMatchReports(t *testing.T) {
	d := gpusim.GTX780()
	titles := func(k gpusim.Kernel) map[string]bool {
		out := map[string]bool{}
		for _, i := range ProfileKernel(k, d).Issues() {
			out[i.Title] = true
		}
		return out
	}

	knn := titles(gpusim.KNNJoinKernel())
	for _, want := range []string{"Low Warp Execution Efficiency", "Divergent Branches"} {
		if !knn[want] {
			t.Errorf("knnjoin profile missing %q: %v", want, knn)
		}
	}

	knnOpt := titles(gpusim.KNNJoinOptKernel())
	if knnOpt["Divergent Branches"] {
		t.Error("knnjoin_opt still shows divergent branches")
	}

	trans := titles(gpusim.TransKernel())
	if !trans["Global Memory Alignment and Access Pattern"] {
		t.Errorf("trans profile missing the coalescing issue: %v", trans)
	}
	if !trans["Instruction Latencies may be Limiting Performance"] {
		t.Errorf("trans profile missing the latency issue: %v", trans)
	}

	transOpt := titles(gpusim.TransOptKernel())
	if transOpt["Global Memory Alignment and Access Pattern"] {
		t.Error("trans_opt still shows the coalescing issue")
	}
	if !transOpt["GPU Utilization is Limited by Memory Bandwidth"] {
		t.Errorf("trans_opt should saturate bandwidth (its report's issue): %v", transOpt)
	}
}

func TestMetricsIssueDescriptionsMentionValues(t *testing.T) {
	m := healthyMetrics()
	m.WarpExecutionEfficiency = 0.42
	issues := m.Issues()
	if len(issues) != 1 || !strings.Contains(issues[0].Description, "42%") {
		t.Errorf("description should carry the measured value: %+v", issues)
	}
}
