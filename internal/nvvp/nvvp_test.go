package nvvp

import (
	"strings"
	"testing"
)

func TestSynthesizeAndParseRoundTrip(t *testing.T) {
	for _, prog := range Programs() {
		text, err := Synthesize(prog)
		if err != nil {
			t.Fatalf("%s: %v", prog, err)
		}
		r, err := Parse(text)
		if err != nil {
			t.Fatalf("%s: parse: %v\n%s", prog, err, text)
		}
		if r.Program != prog+".cu" {
			t.Errorf("%s: program = %q", prog, r.Program)
		}
		if len(r.Sections) != 4 {
			t.Errorf("%s: %d sections, want 4 (overview + 3 aspects)", prog, len(r.Sections))
		}
	}
}

func TestIssueCountsMatchTable6(t *testing.T) {
	wantIssues := map[string]int{
		"knnjoin":     2, // warp efficiency + divergent branches
		"knnjoin_opt": 1,
		"trans":       2,
		"trans_opt":   1,
		"norm":        2, // Table 3: register usage + divergent branches
	}
	for prog, want := range wantIssues {
		text, err := Synthesize(prog)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(r.Issues()); got != want {
			t.Errorf("%s: %d issues, want %d", prog, got, want)
		}
	}
}

func TestNormReportMatchesTable3(t *testing.T) {
	text, err := Synthesize("norm")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	issues := r.Issues()
	titles := []string{}
	for _, i := range issues {
		titles = append(titles, i.Title)
	}
	joined := strings.Join(titles, "|")
	if !strings.Contains(joined, "Register Usage") || !strings.Contains(joined, "Divergent Branches") {
		t.Errorf("norm issues = %v, want Table 3 rows", titles)
	}
	for _, i := range issues {
		if i.Description == "" {
			t.Errorf("issue %q has empty description", i.Title)
		}
		q := i.Query()
		if !strings.HasPrefix(q, i.Title) {
			t.Errorf("query does not lead with title: %q", q)
		}
	}
	// the register-usage description carries the paper's numbers
	if !strings.Contains(text, "31 registers") || !strings.Contains(text, "7936 registers") {
		t.Error("Table 3 description details missing")
	}
}

func TestIssueSectionsAssigned(t *testing.T) {
	text, _ := Synthesize("knnjoin")
	r, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range r.Issues() {
		if i.Section != "Compute Resources" {
			t.Errorf("knnjoin issue %q in section %q, want Compute Resources", i.Title, i.Section)
		}
	}
	text2, _ := Synthesize("trans_opt")
	r2, _ := Parse(text2)
	for _, i := range r2.Issues() {
		if i.Section != "Memory Bandwidth" {
			t.Errorf("trans_opt issue in %q", i.Section)
		}
	}
}

func TestParseMultilineDescriptions(t *testing.T) {
	text := `=== NVVP Analysis Report ===
Program: toy.cu

-- 1. Overview --
body text

-- 2. Compute Resources --
Optimization: Some Issue
first line of description
second line of description

trailing body text outside the issue
`
	r, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	issues := r.Issues()
	if len(issues) != 1 {
		t.Fatalf("issues: %+v", issues)
	}
	if issues[0].Description != "first line of description second line of description" {
		t.Errorf("description = %q", issues[0].Description)
	}
	if !strings.Contains(r.Sections[1].Body, "trailing body text") {
		t.Errorf("section body = %q", r.Sections[1].Body)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("no header at all"); err == nil {
		t.Error("missing header accepted")
	}
	if _, err := Parse("=== NVVP Analysis Report ===\nProgram: x.cu\n"); err == nil {
		t.Error("no sections accepted")
	}
	if _, err := Parse("=== R ===\nOptimization: orphan\n"); err == nil {
		t.Error("orphan issue accepted")
	}
	if _, err := Synthesize("unknown_prog"); err == nil {
		t.Error("unknown program accepted")
	}
}

func TestEmptySectionsMarked(t *testing.T) {
	// per the paper, "some of the later three sections could be empty if no
	// issues exist in those aspects"
	text, _ := Synthesize("trans_opt")
	if !strings.Contains(text, "No issues detected in this aspect.") {
		t.Error("empty aspects should be marked")
	}
}

func TestWrap(t *testing.T) {
	out := wrap("aaa bbb ccc ddd", 7)
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if len(line) > 7 {
			t.Errorf("line too long: %q", line)
		}
	}
}

func BenchmarkParseReport(b *testing.B) {
	text, _ := Synthesize("knnjoin")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(text); err != nil {
			b.Fatal(err)
		}
	}
}
