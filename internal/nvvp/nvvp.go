// Package nvvp parses and synthesizes NVIDIA-Visual-Profiler-style analysis
// reports. The paper's advisor accepts NVVP reports (PDF exports) as queries
// and extracts the subsections carrying the "Optimization:" identifier as
// performance-issue content (§4.1); PDFs are not reproducible offline, so
// this package defines an equivalent plain-text report format that exercises
// the same extraction-and-query path, and synthesizes the reports of the
// paper's four benchmark programs (knnjoin, knnjoin_opt, trans, trans_opt)
// plus the user-study program (norm).
package nvvp

import (
	"fmt"
	"strings"

	"repro/internal/corpus"
)

// Issue is one performance issue extracted from a report.
type Issue struct {
	Section     string // report section the issue was found in
	Title       string // issue title (after "Optimization:")
	Description string
}

// Query renders the issue as the advisor query string: title plus
// description, as the paper combines them.
func (i Issue) Query() string {
	return strings.TrimSpace(i.Title + ". " + i.Description)
}

// Section is one of the report's four analysis sections.
type Section struct {
	Title  string
	Body   string
	Issues []Issue
}

// Report is a parsed profiler report.
type Report struct {
	Program  string
	Sections []Section
}

// Issues returns every issue of the report in order.
func (r *Report) Issues() []Issue {
	var out []Issue
	for _, s := range r.Sections {
		out = append(out, s.Issues...)
	}
	return out
}

// Parse reads the text report format:
//
//	=== NVVP Analysis Report ===
//	Program: knnjoin.cu
//
//	-- 1. Overview --
//	free text
//
//	-- 2. Compute Resources --
//	Optimization: Divergent Branches
//	description continuing
//	over multiple lines
//
// Sections open with "-- n. Title --"; each "Optimization:" line opens an
// issue whose description runs until the next issue, section, or blank line
// followed by a non-indented marker.
func Parse(text string) (*Report, error) {
	r := &Report{}
	lines := strings.Split(text, "\n")
	var cur *Section
	var curIssue *Issue
	sawHeader := false
	for _, raw := range lines {
		line := strings.TrimRight(raw, " \t\r")
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "=== ") && strings.HasSuffix(trimmed, " ==="):
			sawHeader = true
		case strings.HasPrefix(trimmed, "Program:"):
			r.Program = strings.TrimSpace(strings.TrimPrefix(trimmed, "Program:"))
		case strings.HasPrefix(trimmed, "-- ") && strings.HasSuffix(trimmed, " --"):
			title := strings.TrimSuffix(strings.TrimPrefix(trimmed, "-- "), " --")
			// strip a leading "n." ordinal
			if dot := strings.Index(title, ". "); dot > 0 && dot <= 3 {
				title = title[dot+2:]
			}
			r.Sections = append(r.Sections, Section{Title: title})
			cur = &r.Sections[len(r.Sections)-1]
			curIssue = nil
		case strings.HasPrefix(trimmed, "Optimization:"):
			if cur == nil {
				return nil, fmt.Errorf("nvvp: Optimization marker before any section")
			}
			cur.Issues = append(cur.Issues, Issue{
				Section: cur.Title,
				Title:   strings.TrimSpace(strings.TrimPrefix(trimmed, "Optimization:")),
			})
			curIssue = &cur.Issues[len(cur.Issues)-1]
		case trimmed == "":
			curIssue = nil
		default:
			switch {
			case curIssue != nil:
				if curIssue.Description != "" {
					curIssue.Description += " "
				}
				curIssue.Description += trimmed
			case cur != nil:
				if cur.Body != "" {
					cur.Body += " "
				}
				cur.Body += trimmed
			}
		}
	}
	if !sawHeader {
		return nil, fmt.Errorf("nvvp: missing report header")
	}
	if len(r.Sections) == 0 {
		return nil, fmt.Errorf("nvvp: report has no sections")
	}
	return r, nil
}

// issuePlacement maps a query's report section by its subtopic, mirroring
// NVVP's three analysis aspects.
func sectionFor(subtopic string) string {
	switch subtopic {
	case "instr-latency":
		return "Instruction and Memory Latency"
	case "warp-efficiency", "divergence", "mem-instruction":
		return "Compute Resources"
	default:
		return "Memory Bandwidth"
	}
}

// Programs lists the report programs the synthesizer knows.
func Programs() []string {
	return []string{"knnjoin", "knnjoin_opt", "trans", "trans_opt", "norm"}
}

// Synthesize renders the text report for one of the paper's programs. The
// issues match the paper's Table 6 rows (and, for norm, its Table 3).
func Synthesize(program string) (string, error) {
	var issues []corpus.Query
	switch program {
	case "knnjoin", "knnjoin_opt", "trans", "trans_opt":
		for _, q := range corpus.CUDAQueries() {
			if q.Report == program {
				issues = append(issues, q)
			}
		}
	case "norm":
		// the user-study program of §4.1: register usage + divergence
		issues = []corpus.Query{
			{
				Report: "norm",
				Issue:  "GPU Utilization May Be Limited By Register Usage",
				Text: "GPU utilization may be limited by register usage. " +
					"Theoretical occupancy is less than 100% but is large enough " +
					"that increasing occupancy may not improve performance. The " +
					"kernel uses 31 registers for each thread (7936 registers for " +
					"each block). Control register usage and occupancy, keep more " +
					"warps and blocks resident, and hide instruction latency.",
				Subtopic: "instr-latency",
			},
			{
				Report: "norm",
				Issue:  "Divergent Branches",
				Text: "Divergent branches. Compute resources are used most " +
					"efficiently when all threads in a warp have the same branching " +
					"behavior. When this does not occur the branch is said to be " +
					"divergent. Divergent branches lower warp execution efficiency " +
					"which leads to inefficient use of the GPU's compute resources. " +
					"Rewrite the thread ID dependent condition to minimize divergent warps.",
				Subtopic: "divergence",
			},
		}
	default:
		return "", fmt.Errorf("nvvp: unknown program %q (known: %s)", program, strings.Join(Programs(), ", "))
	}

	var b strings.Builder
	b.WriteString("=== NVVP Analysis Report ===\n")
	fmt.Fprintf(&b, "Program: %s.cu\n\n", program)
	b.WriteString("-- 1. Overview --\n")
	fmt.Fprintf(&b, "The most time-consuming kernel of %s.cu was analyzed over one run.\n", program)
	if len(issues) == 0 {
		b.WriteString("No further performance issues were detected in the later sections.\n")
	}
	b.WriteString("\n")
	// group issues by analysis section; emit all three standard sections
	order := []string{"Instruction and Memory Latency", "Compute Resources", "Memory Bandwidth"}
	for si, secTitle := range order {
		fmt.Fprintf(&b, "-- %d. %s --\n", si+2, secTitle)
		any := false
		for _, q := range issues {
			if sectionFor(q.Subtopic) != secTitle {
				continue
			}
			any = true
			fmt.Fprintf(&b, "Optimization: %s\n", q.Issue)
			b.WriteString(wrap(q.Text, 76))
			b.WriteString("\n")
		}
		if !any {
			b.WriteString("No issues detected in this aspect.\n")
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}

// wrap folds text at the given column for readable reports.
func wrap(text string, col int) string {
	words := strings.Fields(text)
	var b strings.Builder
	line := 0
	for i, w := range words {
		if line > 0 && line+1+len(w) > col {
			b.WriteByte('\n')
			line = 0
		} else if i > 0 {
			b.WriteByte(' ')
			line++
		}
		b.WriteString(w)
		line += len(w)
	}
	b.WriteByte('\n')
	return b.String()
}
