package experiments

import (
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/depparse"
	"repro/internal/eval"
	"repro/internal/selectors"
)

// recognitionAtSeed reruns the Table 8 comparison on a fresh corpus seed.
func recognitionAtSeed(reg corpus.Register, seed int64) (egeria, kwAll eval.PRF) {
	g := corpus.Generate(reg, seed)
	texts, labels := g.EvalSentences()
	truth := make([]bool, len(labels))
	for i, l := range labels {
		truth[i] = l.Advising
	}
	rec := selectors.Default()
	pred := make([]bool, len(texts))
	for i, s := range texts {
		pred[i] = rec.ClassifyParsed(depparse.ParseText(s)).Advising
	}
	ka := baselines.KeywordAllRecognize(selectors.DefaultConfig(), texts)
	return eval.Score(pred, truth), eval.Score(ka, truth)
}

// TestRecognitionShapeStableAcrossSeeds: the paper-shape conclusions must
// hold for corpora the experiments were never tuned against.
func TestRecognitionShapeStableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is slow")
	}
	for _, seed := range []int64{2, 3, 4} {
		egeria, kwAll := recognitionAtSeed(corpus.CUDA, seed)
		if egeria.F <= kwAll.F {
			t.Errorf("seed %d: Egeria F %.3f <= KeywordAll %.3f", seed, egeria.F, kwAll.F)
		}
		if egeria.Precision <= kwAll.Precision {
			t.Errorf("seed %d: Egeria P %.3f <= KeywordAll %.3f", seed, egeria.Precision, kwAll.Precision)
		}
		if egeria.F < 0.7 {
			t.Errorf("seed %d: Egeria F %.3f below the paper band", seed, egeria.F)
		}
	}
}

// TestAnswerQualityShapeStableAcrossSeeds: Egeria must beat full-doc on
// answer F for most queries regardless of the seed.
func TestAnswerQualityShapeStableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is slow")
	}
	for _, seed := range []int64{2, 3} {
		g := corpus.Generate(corpus.CUDA, seed)
		adv := core.New().BuildFromSentences(g.Doc, g.Sentences)
		wins := 0
		for _, q := range corpus.CUDAQueries() {
			truth := g.GroundTruth(q)
			var egeriaIdx, fullIdx []int
			for _, a := range adv.Query(q.Text) {
				egeriaIdx = append(egeriaIdx, a.Sentence.Index)
			}
			for _, a := range adv.FullDocQuery(q.Text, 0.15) {
				fullIdx = append(fullIdx, a.Sentence.Index)
			}
			if eval.ScoreSets(egeriaIdx, truth).F > eval.ScoreSets(fullIdx, truth).F {
				wins++
			}
		}
		if wins < 5 {
			t.Errorf("seed %d: Egeria beats full-doc on only %d/6 queries", seed, wins)
		}
	}
}

// TestCompressionStableAcrossSeeds: the Table 7 ratios stay in the paper's
// band for unseen seeds.
func TestCompressionStableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is slow")
	}
	for _, seed := range []int64{2, 5} {
		g := corpus.Generate(corpus.XeonPhi, seed)
		adv := core.New().BuildFromSentences(g.Doc, g.Sentences)
		r := adv.CompressionRatio()
		if r < 3 || r > 10 {
			t.Errorf("seed %d: ratio %.1f outside [3, 10]", seed, r)
		}
	}
}
