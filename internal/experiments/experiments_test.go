package experiments

import (
	"repro/internal/core"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/selectors"
)

func TestTable3ReportExtraction(t *testing.T) {
	out, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Register Usage") || !strings.Contains(out, "Divergent Branches") {
		t.Errorf("Table 3 missing issues:\n%s", out)
	}
}

func TestTable4QueryRetrieval(t *testing.T) {
	g, adv := BuildAdvisor(corpus.CUDA)
	out := Table4(g, adv)
	if !strings.Contains(out, "reduce instruction and memory latency") {
		t.Errorf("Table 4 header wrong:\n%s", out)
	}
	// the paper's answer covers latency-related advice; the retrieved rows
	// must include the latency section of the guide
	if !strings.Contains(out, "Multiprocessor Level") {
		t.Errorf("Table 4 should retrieve from the latency section:\n%s", out)
	}
}

func TestTable5UserStudyShape(t *testing.T) {
	_, adv := BuildAdvisor(corpus.CUDA)
	res, out, err := Table5(adv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Egeria780.Average <= res.Control780.Average ||
		res.Egeria480.Average <= res.Control480.Average {
		t.Errorf("Table 5 ordering broken:\n%s", out)
	}
}

func TestTable6Shape(t *testing.T) {
	g, adv := BuildAdvisor(corpus.CUDA)
	rows := Table6(g, adv)
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	wantGT := []int{6, 2, 7, 8, 11, 18}
	var egeriaBeatsFullDoc, egeriaBeatsKeywords int
	for i, r := range rows {
		if r.GroundTruth != wantGT[i] {
			t.Errorf("row %d ground truth %d, want %d", i, r.GroundTruth, wantGT[i])
		}
		// Egeria's recall must stay high (paper: 0.83-1.0)
		if r.Egeria.Recall < 0.6 {
			t.Errorf("row %q: Egeria recall %.3f too low", r.Issue, r.Egeria.Recall)
		}
		// full-doc finds everything Egeria finds (it is a superset), so its
		// recall is >= Egeria's, but precision collapses
		if r.FullDoc.Recall < r.Egeria.Recall-1e-9 {
			t.Errorf("row %q: full-doc recall %.3f < Egeria %.3f", r.Issue, r.FullDoc.Recall, r.Egeria.Recall)
		}
		if r.Egeria.F > r.FullDoc.F {
			egeriaBeatsFullDoc++
		}
		if r.Egeria.F > r.Keywords.F {
			egeriaBeatsKeywords++
		}
	}
	// the paper's central Table 6 claim: Egeria wins on F across the board
	if egeriaBeatsFullDoc < 5 {
		t.Errorf("Egeria beats full-doc on only %d/6 issues", egeriaBeatsFullDoc)
	}
	if egeriaBeatsKeywords < 5 {
		t.Errorf("Egeria beats keywords on only %d/6 issues", egeriaBeatsKeywords)
	}
}

func TestTable7Shape(t *testing.T) {
	rows := Table7()
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	wantSentences := []int{2140, 1944, 558}
	for i, r := range rows {
		if r.Sentences != wantSentences[i] {
			t.Errorf("%s: %d sentences, want %d", r.Guide, r.Sentences, wantSentences[i])
		}
		// compression in the paper's band (ratios 4.4-7.8)
		if r.Ratio < 3 || r.Ratio > 10 {
			t.Errorf("%s: ratio %.1f outside [3, 10]", r.Guide, r.Ratio)
		}
		if r.Selected >= r.Sentences || r.Selected == 0 {
			t.Errorf("%s: selected %d of %d", r.Guide, r.Selected, r.Sentences)
		}
	}
}

func TestTable8Shape(t *testing.T) {
	for _, reg := range []corpus.Register{corpus.CUDA, corpus.OpenCL, corpus.XeonPhi} {
		rows := Table8(reg, selectors.DefaultConfig())
		if len(rows) != 7 {
			t.Fatalf("%s: %d rows, want 7", reg, len(rows))
		}
		byName := map[string]Table8Row{}
		for _, r := range rows {
			byName[r.Method] = r
		}
		egeria := byName["Egeria"]
		// Egeria must beat every single selector and KeywordAll on F
		for _, name := range []string{"Keyword", "Comparative", "Imperative", "Subject", "Purpose", "KeywordAll"} {
			if byName[name].PRF.F >= egeria.PRF.F {
				t.Errorf("%s: %s F %.3f >= Egeria F %.3f", reg, name, byName[name].PRF.F, egeria.PRF.F)
			}
		}
		// paper bands: Egeria F 0.79-0.87, precision > 0.8-ish
		if egeria.PRF.F < 0.70 || egeria.PRF.F > 0.97 {
			t.Errorf("%s: Egeria F %.3f outside [0.70, 0.97]", reg, egeria.PRF.F)
		}
		if egeria.PRF.Precision < 0.72 {
			t.Errorf("%s: Egeria precision %.3f too low", reg, egeria.PRF.Precision)
		}
		// KeywordAll: near-total recall, poor precision (paper: R>=0.8, P<0.5)
		ka := byName["KeywordAll"]
		if ka.PRF.Recall < 0.75 {
			t.Errorf("%s: KeywordAll recall %.3f too low", reg, ka.PRF.Recall)
		}
		if ka.PRF.Precision >= egeria.PRF.Precision {
			t.Errorf("%s: KeywordAll precision %.3f >= Egeria %.3f", reg, ka.PRF.Precision, egeria.PRF.Precision)
		}
	}
}

func TestTable8RecallOrdering(t *testing.T) {
	// paper: recall 0.92 (CUDA) > 0.80 (OpenCL) > 0.71 (Xeon)
	recall := func(reg corpus.Register) float64 {
		for _, r := range Table8(reg, selectors.DefaultConfig()) {
			if r.Method == "Egeria" {
				return r.PRF.Recall
			}
		}
		return 0
	}
	c, o, x := recall(corpus.CUDA), recall(corpus.OpenCL), recall(corpus.XeonPhi)
	if !(c > o && o > x) {
		t.Errorf("recall ordering: CUDA %.3f, OpenCL %.3f, Xeon %.3f", c, o, x)
	}
}

func TestXeonTuningImprovesRecall(t *testing.T) {
	// §4.3: adding 'have to be', 'user', 'one' raises Xeon recall toward
	// 0.892 without wrecking precision.
	get := func(cfg selectors.Config) Table8Row {
		for _, r := range Table8(corpus.XeonPhi, cfg) {
			if r.Method == "Egeria" {
				return r
			}
		}
		return Table8Row{}
	}
	base := get(selectors.DefaultConfig())
	tuned := get(selectors.XeonTunedConfig())
	if tuned.PRF.Recall <= base.PRF.Recall {
		t.Errorf("tuning did not raise recall: %.3f -> %.3f", base.PRF.Recall, tuned.PRF.Recall)
	}
	if tuned.PRF.Precision < base.PRF.Precision-0.12 {
		t.Errorf("tuning wrecked precision: %.3f -> %.3f", base.PRF.Precision, tuned.PRF.Precision)
	}
}

func TestTable8SummarizerBaseline(t *testing.T) {
	rows := Table8WithSummarizer(corpus.CUDA, selectors.DefaultConfig())
	var egeria, textrank Table8Row
	for _, r := range rows {
		switch r.Method {
		case "Egeria":
			egeria = r
		case "TextRank (same budget)":
			textrank = r
		}
	}
	if textrank.Method == "" {
		t.Fatal("no TextRank row")
	}
	if textrank.Selected != egeria.Selected {
		t.Errorf("budget mismatch: TextRank %d vs Egeria %d", textrank.Selected, egeria.Selected)
	}
	// the paper's argument: informative != advising; the summarizer must
	// lose clearly to Egeria at the same selection budget
	if textrank.PRF.F >= egeria.PRF.F-0.1 {
		t.Errorf("TextRank F %.3f too close to Egeria %.3f — the summarization contrast failed",
			textrank.PRF.F, egeria.PRF.F)
	}
}

func TestTable8LeaveOneOut(t *testing.T) {
	rows := Table8LeaveOneOut(corpus.CUDA, selectors.DefaultConfig())
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	full := rows[0]
	if full.Method != "Egeria (all 5)" {
		t.Fatalf("first row %q", full.Method)
	}
	droppedSomething := false
	for _, r := range rows[1:] {
		// removing a selector can only lose recall, never gain it
		if r.PRF.Recall > full.PRF.Recall+1e-9 {
			t.Errorf("%s: recall %.3f exceeds full %.3f", r.Method, r.PRF.Recall, full.PRF.Recall)
		}
		if r.PRF.Recall < full.PRF.Recall-1e-9 {
			droppedSomething = true
		}
	}
	if !droppedSomething {
		t.Error("no selector contributes unique recall; the multi-layer design would be pointless")
	}
}

func TestTable8EgeriaEqualsSelectorUnion(t *testing.T) {
	// the Egeria row must equal the recognizer's own classification
	// (Classify is exactly the ordered union of the five selectors)
	g := corpus.Generate(corpus.XeonPhi, Seed)
	texts, labels := g.EvalSentences()
	rec := selectors.Default()
	rows := Table8(corpus.XeonPhi, selectors.DefaultConfig())
	var egeria Table8Row
	for _, r := range rows {
		if r.Method == "Egeria" {
			egeria = r
		}
	}
	sel := 0
	for i, s := range texts {
		if rec.Classify(s).Advising {
			sel++
		}
		_ = i
	}
	_ = labels
	if sel != egeria.Selected {
		t.Errorf("union selected %d but Classify selects %d", egeria.Selected, sel)
	}
}

func TestCategoryAttribution(t *testing.T) {
	rows := CategoryAttribution(corpus.CUDA, selectors.DefaultConfig())
	byCat := map[corpus.Category]AttributionRow{}
	total := 0
	for _, r := range rows {
		byCat[r.Category] = r
		total += r.Total
	}
	if total != 52 {
		t.Fatalf("total advising %d, want 52", total)
	}
	// each designated category is caught predominantly by its own selector
	checks := []struct {
		cat corpus.Category
		sel int // 0-based
	}{
		{corpus.CatKeyword, 0},
		{corpus.CatComparative, 1},
		{corpus.CatPassive, 1},
		{corpus.CatImperative, 2},
		{corpus.CatSubject, 3},
		{corpus.CatPurpose, 4},
	}
	for _, c := range checks {
		r := byCat[c.cat]
		if r.Total == 0 {
			t.Errorf("category %v empty", c.cat)
			continue
		}
		caught := r.BySelector[c.sel]
		if float64(caught)/float64(r.Total) < 0.7 {
			t.Errorf("category %v: designated selector %d catches only %d/%d",
				c.cat, c.sel+1, caught, r.Total)
		}
	}
	// hard sentences are missed by (nearly) all selectors
	hard := byCat[corpus.CatHard]
	if hard.Total > 0 && float64(hard.Missed)/float64(hard.Total) < 0.8 {
		t.Errorf("hard category: only %d/%d missed", hard.Missed, hard.Total)
	}
	if s := FormatAttribution(corpus.CUDA, rows); !strings.Contains(s, "VI purpose") {
		t.Error("format broken")
	}
}

func TestKappasAboveThreshold(t *testing.T) {
	for guide, k := range Kappas() {
		if k <= 0.8 {
			t.Errorf("%s: kappa %.3f <= 0.8", guide, k)
		}
	}
}

func TestRetrievalAblation(t *testing.T) {
	g, adv := BuildAdvisor(corpus.CUDA)
	rows := RetrievalAblation(g, adv)
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// both rankers must be usable; neither collapses
		if r.TFIDF.F == 0 && r.BM25.F == 0 {
			t.Errorf("%s: both rankers scored zero", r.Issue)
		}
		// at equal budget the two rankers should stay in the same ballpark:
		// the paper's TF-IDF choice is adequate, not magic
		if r.BM25.F < r.TFIDF.F-0.35 || r.TFIDF.F < r.BM25.F-0.35 {
			t.Errorf("%s: rankers diverge implausibly: tfidf %.3f bm25 %.3f", r.Issue, r.TFIDF.F, r.BM25.F)
		}
	}
	if s := FormatRetrievalAblation(rows); !strings.Contains(s, "BM25") {
		t.Error("format broken")
	}
}

func TestThresholdSweepMonotoneRecall(t *testing.T) {
	g, adv := BuildAdvisor(corpus.CUDA)
	points := ThresholdSweep(g, adv, []float64{0.05, 0.15, 0.30})
	if len(points) != 3 {
		t.Fatal("points")
	}
	// recall never increases as the threshold rises
	for i := 1; i < len(points); i++ {
		if points[i].MacroR > points[i-1].MacroR+1e-9 {
			t.Errorf("recall rose with threshold: %+v", points)
		}
	}
}

// TestHTMLPathEquivalence exercises the production path end to end: the
// guide rendered to HTML, loaded through the document loader, and advised —
// Stage I must select exactly the same sentences as the direct path.
func TestHTMLPathEquivalence(t *testing.T) {
	g := corpus.GenerateSized(corpus.CUDA, 250, 0.25, 41)
	direct := core.New().BuildFromSentences(g.Doc, g.Sentences)
	viaHTML := core.New().BuildFromHTML(g.RenderHTML())

	if direct.SentenceCount() != viaHTML.SentenceCount() {
		t.Fatalf("sentence counts: %d vs %d", direct.SentenceCount(), viaHTML.SentenceCount())
	}
	dr, hr := direct.Rules(), viaHTML.Rules()
	if len(dr) != len(hr) {
		t.Fatalf("rule counts: %d vs %d", len(dr), len(hr))
	}
	for i := range dr {
		if dr[i].Text != hr[i].Text || dr[i].Selector != hr[i].Selector {
			t.Fatalf("rule %d differs: %+v vs %+v", i, dr[i], hr[i])
		}
	}
	// answers agree as well
	q := "minimize divergent warps in the control flow"
	da, ha := direct.Query(q), viaHTML.Query(q)
	if len(da) != len(ha) {
		t.Fatalf("answers: %d vs %d", len(da), len(ha))
	}
	for i := range da {
		if da[i].Sentence.Text != ha[i].Sentence.Text {
			t.Errorf("answer %d differs", i)
		}
	}
}

func TestFormatters(t *testing.T) {
	g, adv := BuildAdvisor(corpus.CUDA)
	if s := FormatTable6(Table6(g, adv)); !strings.Contains(s, "Egeria") {
		t.Error("table 6 format")
	}
	if s := FormatTable7(Table7()); !strings.Contains(s, "CUDA Guide") {
		t.Error("table 7 format")
	}
	if s := FormatTable8(corpus.CUDA, Table8(corpus.CUDA, selectors.DefaultConfig())); !strings.Contains(s, "KeywordAll") {
		t.Error("table 8 format")
	}
	if s := FormatThresholdSweep(ThresholdSweep(g, adv, []float64{0.15})); !strings.Contains(s, "0.15") {
		t.Error("sweep format")
	}
}

func TestBackendAblation(t *testing.T) {
	g, adv := BuildAdvisor(corpus.CUDA)
	rows := BackendAblation(g, adv)
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Answers == 0 {
			t.Errorf("%s: VSM answered nothing, budget collapsed", r.Issue)
		}
		// precision is budget-matched, so the two backends never diverge
		// wildly over the same postings
		if r.BM25.F < r.VSM.F-0.35 || r.VSM.F < r.BM25.F-0.35 {
			t.Errorf("%s: backends diverge implausibly: vsm %.3f bm25 %.3f", r.Issue, r.VSM.F, r.BM25.F)
		}
	}
	out := FormatBackendAblation(rows)
	if !strings.Contains(out, "macro average") || !strings.Contains(out, "bm25") {
		t.Errorf("format broken:\n%s", out)
	}
}
