// Package experiments regenerates every table and figure of the paper's
// evaluation section against the synthetic corpora: Table 3 (report issue
// extraction), Table 4 / Fig. 4 (query retrieval), Table 5 (user study),
// Table 6 (answer quality vs the full-doc and keywords baselines), Table 7
// (guide compression statistics), Table 8 (advising sentence recognition
// ablation), the Fleiss' kappa checks, and the extension ablations
// (threshold sweep, serial-vs-parallel Stage I). cmd/egeria-eval prints the
// tables; bench_test.go wraps each experiment in a testing.B benchmark.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/nlp"
	"repro/internal/nvvp"
	"repro/internal/selectors"
	"repro/internal/study"
	"repro/internal/summarize"
	"repro/internal/vsm"
)

// Seed fixes corpus generation across all experiments.
const Seed = 1

// BuildAdvisor synthesizes the advisor for a register's full guide.
func BuildAdvisor(reg corpus.Register) (*corpus.Guide, *core.Advisor) {
	g := corpus.Generate(reg, Seed)
	adv := core.New().BuildFromSentences(g.Doc, g.Sentences)
	return g, adv
}

// FormatBuildStats renders the per-stage timings of the annotate-once build
// pipeline (annotate / classify / index) — the evaluation-harness view of
// where synthesis time goes.
func FormatBuildStats(name string, adv *core.Advisor) string {
	st := adv.BuildStats()
	return fmt.Sprintf(
		"Build pipeline (%s): %d sentences -> %d rules; annotate %v, classify %v, index %v",
		name, st.Sentences, st.Advising, st.Annotate, st.Classify, st.Indexing)
}

// --- Table 3 -------------------------------------------------------------

// Table3 reproduces the report-issue extraction of the paper's Table 3: the
// subsections of the norm.cu NVVP report that become advisor queries.
func Table3() (string, error) {
	text, err := nvvp.Synthesize("norm")
	if err != nil {
		return "", err
	}
	report, err := nvvp.Parse(text)
	if err != nil {
		return "", err
	}
	t := &eval.Table{Header: []string{"Subsection", "Description (abridged)"}}
	for _, issue := range report.Issues() {
		desc := issue.Description
		if len(desc) > 90 {
			desc = desc[:87] + "..."
		}
		t.AddRow(issue.Title, desc)
	}
	return "Table 3: Subsections from the norm.cu NVVP report used as queries\n" + t.String(), nil
}

// --- Table 4 / Fig. 4 ----------------------------------------------------

// Table4 reproduces the paper's Table 4: the sentences the CUDA advisor
// retrieves for the student query "reduce instruction and memory latency".
func Table4(g *corpus.Guide, adv *core.Advisor) string {
	const query = "reduce instruction and memory latency"
	answers := adv.Query(query)
	t := &eval.Table{Header: []string{"Section", "Score", "Sentence"}}
	for _, a := range answers {
		text := a.Sentence.Text
		if len(text) > 86 {
			text = text[:83] + "..."
		}
		t.AddRow(a.Sentence.Section, eval.F2(a.Score), text)
	}
	return fmt.Sprintf("Table 4: Retrieved sentences for the query %q (%d answers)\n%s",
		query, len(answers), t.String())
}

// --- Table 5 -------------------------------------------------------------

// Table5 runs the simulated user study on the CUDA advisor.
func Table5(adv *core.Advisor) (*study.Results, string, error) {
	res, err := study.Run(adv, study.DefaultParams())
	if err != nil {
		return nil, "", err
	}
	return res, study.Table5(res), nil
}

// --- Table 6 -------------------------------------------------------------

// Table6Row is one performance issue's scores for the three methods.
type Table6Row struct {
	Report      string
	Issue       string
	GroundTruth int
	Egeria      eval.PRF
	FullDoc     eval.PRF
	Keywords    eval.PRF
	BestKeyword string
}

// Table6 evaluates answer quality on the six performance-issue queries for
// Egeria, the full-doc method, and the keywords method (best keyword set per
// issue, as the paper's underlining selects).
func Table6(g *corpus.Guide, adv *core.Advisor) []Table6Row {
	texts := g.Texts()
	var rows []Table6Row
	for _, q := range corpus.CUDAQueries() {
		truth := g.GroundTruth(q)

		var egeriaIdx []int
		for _, a := range adv.Query(q.Text) {
			egeriaIdx = append(egeriaIdx, a.Sentence.Index)
		}
		var fullIdx []int
		for _, a := range adv.FullDocQuery(q.Text, 0.15) {
			fullIdx = append(fullIdx, a.Sentence.Index)
		}

		best := eval.PRF{}
		bestKw := ""
		for _, cand := range baselines.QueryKeywords(q.Issue) {
			got := baselines.KeywordSearch(texts, cand)
			score := eval.ScoreSets(got, truth)
			if score.F > best.F {
				best = score
				bestKw = strings.Join(cand, " ")
			}
		}

		rows = append(rows, Table6Row{
			Report:      q.Report,
			Issue:       q.Issue,
			GroundTruth: len(truth),
			Egeria:      eval.ScoreSets(egeriaIdx, truth),
			FullDoc:     eval.ScoreSets(fullIdx, truth),
			Keywords:    best,
			BestKeyword: bestKw,
		})
	}
	return rows
}

// FormatTable6 renders Table6 rows in the paper's layout.
func FormatTable6(rows []Table6Row) string {
	t := &eval.Table{Header: []string{
		"Report", "Performance Issue", "#gt",
		"Egeria P", "R", "F",
		"Full-doc P", "R", "F",
		"Keywords P", "R", "F",
	}}
	for _, r := range rows {
		issue := r.Issue
		if len(issue) > 44 {
			issue = issue[:41] + "..."
		}
		t.AddRow(r.Report, issue, fmt.Sprint(r.GroundTruth),
			eval.F3(r.Egeria.Precision), eval.F3(r.Egeria.Recall), eval.F3(r.Egeria.F),
			eval.F3(r.FullDoc.Precision), eval.F3(r.FullDoc.Recall), eval.F3(r.FullDoc.F),
			eval.F3(r.Keywords.Precision), eval.F3(r.Keywords.Recall), eval.F3(r.Keywords.F))
	}
	return "Table 6: Quality of Answers on Performance Queries\n" + t.String()
}

// --- Table 7 -------------------------------------------------------------

// Table7Row is one guide's compression statistics.
type Table7Row struct {
	Guide     string
	Sentences int
	Selected  int
	Ratio     float64
}

// Table7 computes the Stage-I compression statistics for all three guides.
func Table7() []Table7Row {
	var rows []Table7Row
	for _, reg := range []corpus.Register{corpus.CUDA, corpus.OpenCL, corpus.XeonPhi} {
		g, adv := BuildAdvisor(reg)
		rows = append(rows, Table7Row{
			Guide:     reg.String() + " Guide",
			Sentences: len(g.Sentences),
			Selected:  len(adv.Rules()),
			Ratio:     adv.CompressionRatio(),
		})
	}
	return rows
}

// FormatTable7 renders Table7 rows in the paper's layout.
func FormatTable7(rows []Table7Row) string {
	t := &eval.Table{Header: []string{"Documentation", "Sentences", "Egeria's selection", "Ratio"}}
	for _, r := range rows {
		t.AddRow(r.Guide, fmt.Sprint(r.Sentences), fmt.Sprint(r.Selected), fmt.Sprintf("%.1f", r.Ratio))
	}
	return "Table 7: Statistics of the guides and Egeria's selections\n" + t.String()
}

// --- Table 8 -------------------------------------------------------------

// Table8Row is one method's recognition quality on one guide.
type Table8Row struct {
	Method   string
	Selected int
	Correct  int
	PRF      eval.PRF
}

// recognitionData holds the shared per-selector predictions over a guide's
// evaluation subset; computed once and reused by Table 8 and its ablations.
type recognitionData struct {
	texts    []string
	truth    []bool
	perSel   [5][]bool // predictions of each selector alone
	kwAll    []bool
	selNames []string
}

func computeRecognition(reg corpus.Register, cfg selectors.Config) *recognitionData {
	g := corpus.Generate(reg, Seed)
	texts, labels := g.EvalSentences()
	d := &recognitionData{
		texts:    texts,
		truth:    make([]bool, len(labels)),
		selNames: []string{"Keyword", "Comparative", "Imperative", "Subject", "Purpose"},
	}
	for i, l := range labels {
		d.truth[i] = l.Advising
	}
	rec := selectors.New(cfg)
	// annotate every sentence once; all methods share the annotations
	// (selector 1 reuses the stems, selector 5 the cached purpose clauses)
	anns := nlp.NewAnnotator().AnnotateAll(texts)
	for k := 1; k <= 5; k++ {
		pred := make([]bool, len(texts))
		for i := range texts {
			pred[i] = rec.SelectorAnnotated(k, anns[i])
		}
		d.perSel[k-1] = pred
	}
	d.kwAll = baselines.KeywordAllRecognize(cfg, texts)
	return d
}

// union ORs the selector predictions whose (0-based) indices are in use.
func (d *recognitionData) union(use []int) []bool {
	out := make([]bool, len(d.texts))
	for _, k := range use {
		for i, p := range d.perSel[k] {
			if p {
				out[i] = true
			}
		}
	}
	return out
}

// Table8 evaluates advising-sentence recognition on a guide's labeled
// evaluation subset: each selector alone, the KeywordAll baseline, and the
// full Egeria assembly (the union of the five selectors). cfg lets the
// caller run the Xeon-tuned variant.
func Table8(reg corpus.Register, cfg selectors.Config) []Table8Row {
	d := computeRecognition(reg, cfg)
	var rows []Table8Row
	for k := 0; k < 5; k++ {
		rows = append(rows, scoreRow(d.selNames[k], d.perSel[k], d.truth))
	}
	rows = append(rows, scoreRow("KeywordAll", d.kwAll, d.truth))
	rows = append(rows, scoreRow("Egeria", d.union([]int{0, 1, 2, 3, 4}), d.truth))
	return rows
}

// Table8WithSummarizer extends Table 8 with the document-summarization
// baseline the paper argues against (§3.1/§5): TextRank selecting as many
// sentences as Egeria does. Summarization finds the most *informative*
// sentences, which are frequently not *advising* sentences — this row makes
// that argument quantitative.
func Table8WithSummarizer(reg corpus.Register, cfg selectors.Config) []Table8Row {
	d := computeRecognition(reg, cfg)
	rows := Table8(reg, cfg)
	egeriaCount := 0
	for _, p := range d.union([]int{0, 1, 2, 3, 4}) {
		if p {
			egeriaCount++
		}
	}
	sel := summarize.Select(d.texts, egeriaCount)
	rows = append(rows, scoreRow("TextRank (same budget)", sel, d.truth))
	return rows
}

// Table8LeaveOneOut measures Egeria with each selector removed — the
// multi-layer ablation DESIGN.md calls out: how much each layer contributes
// to the assembly's F-measure.
func Table8LeaveOneOut(reg corpus.Register, cfg selectors.Config) []Table8Row {
	d := computeRecognition(reg, cfg)
	full := scoreRow("Egeria (all 5)", d.union([]int{0, 1, 2, 3, 4}), d.truth)
	rows := []Table8Row{full}
	for drop := 0; drop < 5; drop++ {
		var use []int
		for k := 0; k < 5; k++ {
			if k != drop {
				use = append(use, k)
			}
		}
		rows = append(rows, scoreRow("without "+d.selNames[drop], d.union(use), d.truth))
	}
	return rows
}

func scoreRow(name string, pred, truth []bool) Table8Row {
	sel, correct := 0, 0
	for i := range pred {
		if pred[i] {
			sel++
			if truth[i] {
				correct++
			}
		}
	}
	return Table8Row{Method: name, Selected: sel, Correct: correct, PRF: eval.Score(pred, truth)}
}

// FormatTable8 renders one guide's Table 8 block.
func FormatTable8(reg corpus.Register, rows []Table8Row) string {
	t := &eval.Table{Header: []string{"Method", "Sel.Sents", "Correct", "P", "R", "F"}}
	for _, r := range rows {
		t.AddRow(r.Method, fmt.Sprint(r.Selected), fmt.Sprint(r.Correct),
			eval.F3(r.PRF.Precision), eval.F3(r.PRF.Recall), eval.F3(r.PRF.F))
	}
	return fmt.Sprintf("Table 8 (%s): Advising Sentence Recognition\n%s", reg, t.String())
}

// --- category attribution ------------------------------------------------

// AttributionRow reports, for one ground-truth category, how many of its
// sentences each selector catches — the empirical mapping between the
// paper's Table 1 categories and its five selectors.
type AttributionRow struct {
	Category   corpus.Category
	Total      int
	BySelector [5]int // caught by selector k (1-based k-1)
	Missed     int    // caught by no selector
}

// CategoryAttribution computes the category-by-selector catch matrix over a
// guide's evaluation subset.
func CategoryAttribution(reg corpus.Register, cfg selectors.Config) []AttributionRow {
	g := corpus.Generate(reg, Seed)
	texts, labels := g.EvalSentences()
	rec := selectors.New(cfg)
	rowFor := map[corpus.Category]*AttributionRow{}
	order := []corpus.Category{
		corpus.CatKeyword, corpus.CatComparative, corpus.CatPassive,
		corpus.CatImperative, corpus.CatSubject, corpus.CatPurpose,
		corpus.CatHard,
	}
	for _, c := range order {
		rowFor[c] = &AttributionRow{Category: c}
	}
	for i, l := range labels {
		if !l.Advising {
			continue
		}
		row, ok := rowFor[l.Category]
		if !ok {
			continue
		}
		row.Total++
		ann := nlp.Annotate(texts[i])
		any := false
		for k := 1; k <= 5; k++ {
			if rec.SelectorAnnotated(k, ann) {
				row.BySelector[k-1]++
				any = true
			}
		}
		if !any {
			row.Missed++
		}
	}
	out := make([]AttributionRow, 0, len(order))
	for _, c := range order {
		out = append(out, *rowFor[c])
	}
	return out
}

// categoryName names a corpus category like the paper's Table 1.
func categoryName(c corpus.Category) string {
	switch c {
	case corpus.CatKeyword:
		return "I keywords"
	case corpus.CatComparative:
		return "II comparative"
	case corpus.CatPassive:
		return "III passive"
	case corpus.CatImperative:
		return "IV imperative"
	case corpus.CatSubject:
		return "V subject"
	case corpus.CatPurpose:
		return "VI purpose"
	case corpus.CatHard:
		return "hard (no pattern)"
	}
	return "other"
}

// FormatAttribution renders the catch matrix.
func FormatAttribution(reg corpus.Register, rows []AttributionRow) string {
	t := &eval.Table{Header: []string{"Category", "Total", "S1", "S2", "S3", "S4", "S5", "Missed"}}
	for _, r := range rows {
		t.AddRow(categoryName(r.Category), fmt.Sprint(r.Total),
			fmt.Sprint(r.BySelector[0]), fmt.Sprint(r.BySelector[1]),
			fmt.Sprint(r.BySelector[2]), fmt.Sprint(r.BySelector[3]),
			fmt.Sprint(r.BySelector[4]), fmt.Sprint(r.Missed))
	}
	return fmt.Sprintf("Category-by-selector attribution (%s):\n%s", reg, t.String())
}

// --- Fleiss' kappa -------------------------------------------------------

// Kappas reproduces the rater-agreement statistics (§4.2/§4.3): simulated
// three-expert labels over each guide's evaluation subset.
func Kappas() map[string]float64 {
	out := map[string]float64{}
	for _, reg := range []corpus.Register{corpus.CUDA, corpus.OpenCL, corpus.XeonPhi} {
		g := corpus.Generate(reg, Seed)
		_, labels := g.EvalSentences()
		raters := corpus.SimulateRaters(labels, 3, 42)
		out[reg.String()] = eval.FleissKappaBinary(raters)
	}
	return out
}

// --- Extension ablations -------------------------------------------------

// ThresholdPoint is one point of the similarity-threshold sweep.
type ThresholdPoint struct {
	Threshold float64
	MacroP    float64
	MacroR    float64
	MacroF    float64
}

// ThresholdSweep sweeps the Stage-II similarity threshold around the
// paper's 0.15 default and reports macro-averaged P/R/F over the six
// queries — the design-choice ablation DESIGN.md calls out.
func ThresholdSweep(g *corpus.Guide, adv *core.Advisor, thresholds []float64) []ThresholdPoint {
	queries := corpus.CUDAQueries()
	var out []ThresholdPoint
	for _, th := range thresholds {
		var sp, sr, sf float64
		for _, q := range queries {
			truth := g.GroundTruth(q)
			var idx []int
			for _, a := range adv.QueryWithThreshold(q.Text, th) {
				idx = append(idx, a.Sentence.Index)
			}
			s := eval.ScoreSets(idx, truth)
			sp += s.Precision
			sr += s.Recall
			sf += s.F
		}
		n := float64(len(queries))
		out = append(out, ThresholdPoint{Threshold: th, MacroP: sp / n, MacroR: sr / n, MacroF: sf / n})
	}
	return out
}

// RetrievalRow compares the paper's TF-IDF/VSM Stage II against BM25 on one
// query (both over the Stage-I advising set; BM25 gets the same answer
// budget TF-IDF used, since it has no natural threshold).
type RetrievalRow struct {
	Issue string
	TFIDF eval.PRF
	BM25  eval.PRF
}

// RetrievalAblation runs the TF-IDF-vs-BM25 comparison over the six Table 6
// queries.
func RetrievalAblation(g *corpus.Guide, adv *core.Advisor) []RetrievalRow {
	// BM25 index over only the advising sentences, mapped back to global
	// sentence indices
	rules := adv.Rules()
	advTexts := make([]string, len(rules))
	advIdx := make([]int, len(rules))
	for i, r := range rules {
		advTexts[i] = r.Text
		advIdx[i] = r.Index
	}
	bm := vsm.BuildBM25(advTexts)

	var out []RetrievalRow
	for _, q := range corpus.CUDAQueries() {
		truth := g.GroundTruth(q)
		var tfidfIdx []int
		for _, a := range adv.Query(q.Text) {
			tfidfIdx = append(tfidfIdx, a.Sentence.Index)
		}
		var bmIdx []int
		for _, m := range bm.TopK(q.Text, len(tfidfIdx)) {
			bmIdx = append(bmIdx, advIdx[m.Index])
		}
		out = append(out, RetrievalRow{
			Issue: q.Issue,
			TFIDF: eval.ScoreSets(tfidfIdx, truth),
			BM25:  eval.ScoreSets(bmIdx, truth),
		})
	}
	return out
}

// FormatRetrievalAblation renders the comparison.
func FormatRetrievalAblation(rows []RetrievalRow) string {
	t := &eval.Table{Header: []string{"Issue", "TF-IDF P", "R", "F", "BM25 P", "R", "F"}}
	for _, r := range rows {
		issue := r.Issue
		if len(issue) > 40 {
			issue = issue[:37] + "..."
		}
		t.AddRow(issue,
			eval.F3(r.TFIDF.Precision), eval.F3(r.TFIDF.Recall), eval.F3(r.TFIDF.F),
			eval.F3(r.BM25.Precision), eval.F3(r.BM25.Recall), eval.F3(r.BM25.F))
	}
	return "Ablation: Stage-II weighting — TF-IDF/VSM (paper) vs BM25 (same budget)\n" + t.String()
}

// FormatThresholdSweep renders the sweep.
func FormatThresholdSweep(points []ThresholdPoint) string {
	t := &eval.Table{Header: []string{"Threshold", "macro-P", "macro-R", "macro-F"}}
	for _, p := range points {
		t.AddRow(eval.F2(p.Threshold), eval.F3(p.MacroP), eval.F3(p.MacroR), eval.F3(p.MacroF))
	}
	return "Ablation: Stage-II similarity threshold sweep (paper default 0.15)\n" + t.String()
}

// BackendRow compares the advisor's served scoring backends on one query:
// the paper's TF-IDF/VSM default against Okapi BM25 over the same shared
// postings — the exact path `/v1/{advisor}/query?backend=bm25` scores with.
// BM25 has no score threshold, so it is truncated to VSM's answer budget.
type BackendRow struct {
	Issue   string
	Answers int // VSM's answer count, the shared budget
	VSM     eval.PRF
	BM25    eval.PRF
}

// BackendAblation runs the served-backend comparison over the Table 6
// queries. Unlike RetrievalAblation, which rebuilds a standalone BM25 index
// from raw advising text, this goes through Advisor.QueryBackend so both
// backends share one tokenization, one postings list, and one advising set:
// any quality difference is the weighting model alone.
func BackendAblation(g *corpus.Guide, adv *core.Advisor) []BackendRow {
	var out []BackendRow
	for _, q := range corpus.CUDAQueries() {
		truth := g.GroundTruth(q)
		var vsmIdx []int
		for _, a := range adv.Query(q.Text) {
			vsmIdx = append(vsmIdx, a.Sentence.Index)
		}
		bmAns, err := adv.QueryBackend(q.Text, vsm.BackendBM25)
		if err != nil {
			// the backend name is a package constant; an error here is a bug
			panic(err)
		}
		if len(bmAns) > len(vsmIdx) {
			bmAns = bmAns[:len(vsmIdx)]
		}
		var bmIdx []int
		for _, a := range bmAns {
			bmIdx = append(bmIdx, a.Sentence.Index)
		}
		out = append(out, BackendRow{
			Issue:   q.Issue,
			Answers: len(vsmIdx),
			VSM:     eval.ScoreSets(vsmIdx, truth),
			BM25:    eval.ScoreSets(bmIdx, truth),
		})
	}
	return out
}

// FormatBackendAblation renders the served-backend comparison with a
// macro-averaged summary row.
func FormatBackendAblation(rows []BackendRow) string {
	t := &eval.Table{Header: []string{"Issue", "n", "VSM P", "R", "F", "BM25 P", "R", "F"}}
	var vp, vr, vf, bp, br, bf float64
	for _, r := range rows {
		issue := r.Issue
		if len(issue) > 40 {
			issue = issue[:37] + "..."
		}
		t.AddRow(issue, fmt.Sprintf("%d", r.Answers),
			eval.F3(r.VSM.Precision), eval.F3(r.VSM.Recall), eval.F3(r.VSM.F),
			eval.F3(r.BM25.Precision), eval.F3(r.BM25.Recall), eval.F3(r.BM25.F))
		vp += r.VSM.Precision
		vr += r.VSM.Recall
		vf += r.VSM.F
		bp += r.BM25.Precision
		br += r.BM25.Recall
		bf += r.BM25.F
	}
	if n := float64(len(rows)); n > 0 {
		t.AddRow("macro average", "",
			eval.F3(vp/n), eval.F3(vr/n), eval.F3(vf/n),
			eval.F3(bp/n), eval.F3(br/n), eval.F3(bf/n))
	}
	return "Ablation: served backends — VSM default vs ?backend=bm25 (shared postings, same budget)\n" + t.String()
}
