// Package eval implements the evaluation metrics of the paper: precision,
// recall, F-measure (§4.2), and Fleiss' kappa for inter-rater agreement
// (§4.2/§4.3), plus small helpers for majority voting and table rendering
// used by the experiment harness.
package eval

import (
	"fmt"
	"strings"
)

// PRF holds precision, recall and F-measure.
type PRF struct {
	Precision float64
	Recall    float64
	F         float64
	TP        int
	FP        int
	FN        int
}

// Score computes P/R/F from predicted and ground-truth boolean vectors.
// Panics if the lengths differ (caller bug).
func Score(predicted, truth []bool) PRF {
	if len(predicted) != len(truth) {
		panic(fmt.Sprintf("eval: length mismatch %d vs %d", len(predicted), len(truth)))
	}
	var tp, fp, fn int
	for i := range predicted {
		switch {
		case predicted[i] && truth[i]:
			tp++
		case predicted[i] && !truth[i]:
			fp++
		case !predicted[i] && truth[i]:
			fn++
		}
	}
	return FromCounts(tp, fp, fn)
}

// ScoreSets computes P/R/F from answer and ground-truth index sets.
func ScoreSets(answers, truth []int) PRF {
	truthSet := make(map[int]bool, len(truth))
	for _, t := range truth {
		truthSet[t] = true
	}
	var tp, fp int
	seen := map[int]bool{}
	for _, a := range answers {
		if seen[a] {
			continue
		}
		seen[a] = true
		if truthSet[a] {
			tp++
		} else {
			fp++
		}
	}
	fn := len(truthSet) - tp
	return FromCounts(tp, fp, fn)
}

// FromCounts computes the metrics from raw counts.
func FromCounts(tp, fp, fn int) PRF {
	p := PRF{TP: tp, FP: fp, FN: fn}
	if tp+fp > 0 {
		p.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		p.Recall = float64(tp) / float64(tp+fn)
	}
	if p.Precision+p.Recall > 0 {
		p.F = 2 * p.Precision * p.Recall / (p.Precision + p.Recall)
	}
	return p
}

// String renders the metrics the way the paper's tables do.
func (p PRF) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F=%.3f", p.Precision, p.Recall, p.F)
}

// FleissKappa computes Fleiss' kappa for n subjects rated by k raters into
// categories. ratings[i][c] is the number of raters assigning subject i to
// category c; every row must sum to the same rater count k >= 2.
// Returns kappa in [-1, 1]; a degenerate case (all ratings identical in one
// category) returns 1.
func FleissKappa(ratings [][]int) float64 {
	n := len(ratings)
	if n == 0 {
		return 1
	}
	k := 0
	for _, c := range ratings[0] {
		k += c
	}
	if k < 2 {
		return 1
	}
	nCat := len(ratings[0])
	pj := make([]float64, nCat)
	var pBarSum float64
	for _, row := range ratings {
		total := 0
		var rowAgreement float64
		for c, cnt := range row {
			total += cnt
			pj[c] += float64(cnt)
			rowAgreement += float64(cnt * (cnt - 1))
		}
		if total != k {
			panic("eval: ragged rating matrix")
		}
		pBarSum += rowAgreement / float64(k*(k-1))
	}
	pBar := pBarSum / float64(n)
	var pe float64
	for _, s := range pj {
		frac := s / float64(n*k)
		pe += frac * frac
	}
	if pe >= 1 {
		return 1
	}
	return (pBar - pe) / (1 - pe)
}

// FleissKappaBinary computes Fleiss' kappa for boolean rater vectors
// (raters[r][i] is rater r's label for subject i).
func FleissKappaBinary(raters [][]bool) float64 {
	if len(raters) == 0 || len(raters[0]) == 0 {
		return 1
	}
	n := len(raters[0])
	ratings := make([][]int, n)
	for i := 0; i < n; i++ {
		row := make([]int, 2)
		for _, r := range raters {
			if r[i] {
				row[1]++
			} else {
				row[0]++
			}
		}
		ratings[i] = row
	}
	return FleissKappa(ratings)
}

// Table renders an aligned text table with a header row, used by the
// experiment binaries to print the paper's tables.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// F3 formats a float with three decimals, the paper's table style.
func F3(v float64) string { return fmt.Sprintf("%.3f", v) }

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }
