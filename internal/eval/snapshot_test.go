package eval_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/experiments"
)

// TestSnapshotBitExactAnswers proves the warm-start contract: an advisor
// round-tripped through a snapshot (Save + LoadAdvisor) must produce
// Float64bits-identical Stage-II answers to the freshly built advisor — for
// both scoring backends, over the paper's frozen CUDA query set. Scores are
// compared at the bit level, not with a tolerance: the snapshot stores the
// exact normalized term lists the fresh build indexed, so the rebuilt index
// is the same index.
func TestSnapshotBitExactAnswers(t *testing.T) {
	g := corpus.Generate(corpus.CUDA, experiments.Seed)
	fresh := core.New().BuildFromSentences(g.Doc, g.Sentences)

	var buf strings.Builder
	if err := fresh.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadAdvisor(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}

	fr, lr := fresh.Rules(), loaded.Rules()
	if len(fr) != len(lr) {
		t.Fatalf("rules: fresh %d, loaded %d", len(fr), len(lr))
	}
	for i := range fr {
		if fr[i] != lr[i] {
			t.Fatalf("rule %d differs: fresh %+v, loaded %+v", i, fr[i], lr[i])
		}
	}

	for _, backend := range []string{"vsm", "bm25"} {
		for _, q := range corpus.CUDAQueries() {
			fa, err := fresh.QueryBackend(q.Text, backend)
			if err != nil {
				t.Fatal(err)
			}
			la, err := loaded.QueryBackend(q.Text, backend)
			if err != nil {
				t.Fatal(err)
			}
			if len(fa) != len(la) {
				t.Fatalf("%s %q: fresh %d answers, loaded %d", backend, q.Text, len(fa), len(la))
			}
			for i := range fa {
				if fa[i].Sentence.Index != la[i].Sentence.Index {
					t.Errorf("%s %q answer %d: sentence %d vs %d",
						backend, q.Text, i, fa[i].Sentence.Index, la[i].Sentence.Index)
				}
				fb, lb := math.Float64bits(fa[i].Score), math.Float64bits(la[i].Score)
				if fb != lb {
					t.Errorf("%s %q answer %d: score bits %016x vs %016x (%v vs %v)",
						backend, q.Text, i, fb, lb, fa[i].Score, la[i].Score)
				}
			}
		}
	}
}
