// Golden accuracy regression suite: freezes the pipeline's measured
// accuracy into checked-in golden files so an innocent-looking refactor
// that shifts Stage-I selection or Stage-II ranking fails loudly, with a
// diff showing exactly which metric moved.
//
// Regenerate after an *intentional* accuracy change with:
//
//	go test ./internal/eval/ -run Golden -update
//
// and review the golden diff like any other code change.
package eval_test

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/selectors"
	"repro/internal/service"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current pipeline's output")

// compareGolden diffs got against testdata/<name>, rewriting the file under
// -update. Line-oriented so a failure names the first drifted line.
func compareGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if string(want) == got {
		return
	}
	wantLines := strings.Split(string(want), "\n")
	gotLines := strings.Split(got, "\n")
	for i := 0; i < len(wantLines) || i < len(gotLines); i++ {
		var w, g string
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if w != g {
			t.Fatalf("%s drifted at line %d:\n  golden: %s\n  got:    %s\n(rerun with -update only if the accuracy change is intentional)", name, i+1, w, g)
		}
	}
	t.Fatalf("%s drifted (length)", name)
}

// TestGoldenStageISelectors freezes the per-selector and assembled
// precision/recall/F of advising-sentence recognition (the paper's Table 8)
// for every register. Raw TP/FP/FN counts are integers, so the file is
// exact — no float tolerance games.
func TestGoldenStageISelectors(t *testing.T) {
	var b strings.Builder
	b.WriteString("# Stage-I advising-sentence recognition, per selector and assembled.\n")
	b.WriteString("# register selector TP FP FN P R F\n")
	for _, reg := range []corpus.Register{corpus.CUDA, corpus.OpenCL, corpus.XeonPhi} {
		cfg := selectors.DefaultConfig()
		if reg == corpus.XeonPhi {
			cfg = selectors.XeonTunedConfig() // the §4.3 tuning the paper applies
		}
		for _, row := range experiments.Table8(reg, cfg) {
			p := row.PRF
			fmt.Fprintf(&b, "%s %s TP=%d FP=%d FN=%d P=%.6f R=%.6f F=%.6f\n",
				reg, strings.ReplaceAll(row.Method, " ", "_"), p.TP, p.FP, p.FN, p.Precision, p.Recall, p.F)
		}
	}
	compareGolden(t, "stage1_selectors.golden", b.String())
}

// TestGoldenStageIIAnswers freezes Stage-II retrieval for the paper's
// Table 6 query workload: the top-3 answer indices with bit-exact cosine
// scores (strconv.FormatFloat round-trips float64 exactly) and the number
// of answers above the 0.15 recommendation threshold. Any change to
// tokenization, TF-IDF weighting, or ranking shows up here.
func TestGoldenStageIIAnswers(t *testing.T) {
	g := corpus.Generate(corpus.CUDA, experiments.Seed)
	adv := core.New().BuildFromSentences(g.Doc, g.Sentences)
	var b strings.Builder
	b.WriteString("# Stage-II top-3 answers per Table 6 query: rule index, exact cosine score.\n")
	for _, q := range corpus.CUDAQueries() {
		answers := adv.Query(q.Text)
		fmt.Fprintf(&b, "%s/%s answers=%d", q.Report, q.Subtopic, len(answers))
		for i, a := range answers {
			if i == 3 {
				break
			}
			fmt.Fprintf(&b, " %d:%s", a.Sentence.Index, strconv.FormatFloat(a.Score, 'g', -1, 64))
		}
		b.WriteByte('\n')
	}
	compareGolden(t, "stage2_answers.golden", b.String())
}

var traceIDRe = regexp.MustCompile(`"trace_id":"[^"]*"`)

// TestGoldenQueryHTTP freezes the byte-exact /v1/query response body on the
// default path (no backend parameter) — the proof that adding pluggable
// backends left the pre-existing wire format untouched. Only the per-request
// trace ID is scrubbed; everything else, down to field order and float
// rendering, must match the golden bytes.
func TestGoldenQueryHTTP(t *testing.T) {
	g := corpus.Generate(corpus.CUDA, experiments.Seed)
	adv := core.New().BuildFromSentences(g.Doc, g.Sentences)
	reg := service.NewRegistry()
	reg.Add("cuda", adv)
	svc := service.New(reg, service.Options{})
	ts := httptest.NewServer(svc)
	defer ts.Close()

	var b strings.Builder
	for _, q := range []string{
		"how to avoid shared memory bank conflicts",
		"reduce global memory latency",
		"divergent branches in a warp",
	} {
		resp, err := http.Get(ts.URL + "/v1/cuda/query?q=" + strings.ReplaceAll(q, " ", "+"))
		if err != nil {
			t.Fatal(err)
		}
		body := make([]byte, 0, 4096)
		buf := make([]byte, 4096)
		for {
			n, rerr := resp.Body.Read(buf)
			body = append(body, buf[:n]...)
			if rerr != nil {
				break
			}
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("query %q: %d %s", q, resp.StatusCode, body)
		}
		scrubbed := traceIDRe.ReplaceAllString(string(body), `"trace_id":"-"`)
		fmt.Fprintf(&b, "GET /v1/cuda/query?q=%s\n%s", strings.ReplaceAll(q, " ", "+"), scrubbed)
	}
	compareGolden(t, "query_http.golden", b.String())
}
