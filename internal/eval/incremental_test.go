package eval_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/htmldoc"
	"repro/internal/vsm"
)

// editStep is one mutation of a document's sentence list — the edit shapes
// technical documentation actually sees between releases.
type editStep struct {
	name  string
	apply func(sents []htmldoc.Sentence) []htmldoc.Sentence
}

func unstamped(sents []htmldoc.Sentence) []htmldoc.Sentence {
	out := make([]htmldoc.Sentence, len(sents))
	for i, s := range sents {
		out[i] = htmldoc.Sentence{Text: s.Text, Section: s.Section}
	}
	return out
}

func editChain() []editStep {
	return []editStep{
		{"modify", func(s []htmldoc.Sentence) []htmldoc.Sentence {
			out := unstamped(s)
			out[9].Text = "Coalesce global memory accesses to use the full transaction width."
			return out
		}},
		{"insert", func(s []htmldoc.Sentence) []htmldoc.Sentence {
			out := unstamped(s)
			ins := htmldoc.Sentence{
				Text:    "Prefer shared memory staging over repeated global memory reads.",
				Section: out[len(out)/2].Section,
			}
			mid := len(out) / 2
			return append(out[:mid], append([]htmldoc.Sentence{ins}, out[mid:]...)...)
		}},
		{"delete", func(s []htmldoc.Sentence) []htmldoc.Sentence {
			out := unstamped(s)
			return append(out[:4], out[5:]...)
		}},
		{"duplicate", func(s []htmldoc.Sentence) []htmldoc.Sentence {
			out := unstamped(s)
			return append(out, out[7])
		}},
		{"move", func(s []htmldoc.Sentence) []htmldoc.Sentence {
			out := unstamped(s)
			moved := out[2]
			out = append(out[:2], out[3:]...)
			return append(out, moved)
		}},
	}
}

// TestIncrementalEqualsFullBuild is the end-to-end incremental≡full oracle:
// starting from a built guide, apply a chain of edits (modify, insert,
// delete, duplicate, move); after each step, an incremental update from the
// previous advisor must match a from-scratch build of the same sentences —
// identical Stage-I rules and Float64bits-identical Stage-II answers for
// both scoring backends over the frozen CUDA query set. The chain threads
// the *incremental* result forward as the next step's base, so divergence
// cannot hide by being re-derived from a clean build.
func TestIncrementalEqualsFullBuild(t *testing.T) {
	g := corpus.GenerateSized(corpus.CUDA, 150, 0.3, 61)
	fw := core.New()
	prev := fw.BuildFromSentences(g.Doc, g.Sentences)
	sents := g.Sentences

	for _, step := range editChain() {
		sents = step.apply(sents)
		inc, err := fw.UpdateFromSentences(prev, g.Doc, sents)
		if err != nil {
			t.Fatalf("step %s: %v", step.name, err)
		}
		full := fw.BuildFromSentences(g.Doc, sents)

		ir, fr := inc.Rules(), full.Rules()
		if len(ir) != len(fr) {
			t.Fatalf("step %s: rules %d incremental vs %d full", step.name, len(ir), len(fr))
		}
		for i := range fr {
			if ir[i] != fr[i] {
				t.Fatalf("step %s rule %d: %+v vs %+v", step.name, i, ir[i], fr[i])
			}
		}
		for _, backend := range vsm.Backends() {
			for _, q := range corpus.CUDAQueries() {
				ia, err := inc.QueryBackend(q.Text, backend)
				if err != nil {
					t.Fatal(err)
				}
				fa, err := full.QueryBackend(q.Text, backend)
				if err != nil {
					t.Fatal(err)
				}
				if len(ia) != len(fa) {
					t.Fatalf("step %s %s %q: %d vs %d answers", step.name, backend, q.Text, len(ia), len(fa))
				}
				for i := range fa {
					if ia[i].Sentence != fa[i].Sentence ||
						math.Float64bits(ia[i].Score) != math.Float64bits(fa[i].Score) {
						t.Fatalf("step %s %s %q answer %d: (%d, %x) vs (%d, %x)",
							step.name, backend, q.Text, i,
							ia[i].Sentence.Index, ia[i].Score, fa[i].Sentence.Index, fa[i].Score)
					}
				}
			}
		}
		if inc.BuildStats().Reused == 0 {
			t.Fatalf("step %s: incremental build reused nothing", step.name)
		}
		prev = inc // chain the incremental result forward
	}
}

// TestIncrementalChainDrift hammers the chaining property: many consecutive
// single-sentence modifications, each incremental on the last incremental
// result, must stay bit-identical to a from-scratch build at every step —
// no drift accumulates through repeated index rebuilds.
func TestIncrementalChainDrift(t *testing.T) {
	g := corpus.GenerateSized(corpus.CUDA, 100, 0.3, 63)
	fw := core.New()
	prev := fw.BuildFromSentences(g.Doc, g.Sentences)
	sents := g.Sentences

	for step := 0; step < 8; step++ {
		next := unstamped(sents)
		next[step*7%len(next)].Text = fmt.Sprintf(
			"Revision %d: overlap data transfers with kernel execution using streams.", step)
		inc, err := fw.UpdateFromSentences(prev, g.Doc, next)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		full := fw.BuildFromSentences(g.Doc, next)
		for _, q := range corpus.CUDAQueries() {
			ia := inc.Query(q.Text)
			fa := full.Query(q.Text)
			if len(ia) != len(fa) {
				t.Fatalf("step %d %q: %d vs %d answers", step, q.Text, len(ia), len(fa))
			}
			for i := range fa {
				if ia[i].Sentence != fa[i].Sentence ||
					math.Float64bits(ia[i].Score) != math.Float64bits(fa[i].Score) {
					t.Fatalf("step %d %q answer %d differs", step, q.Text, i)
				}
			}
		}
		prev, sents = inc, next
	}
}
