package eval

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/corpus"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestScoreBasic(t *testing.T) {
	pred := []bool{true, true, false, false, true}
	truth := []bool{true, false, true, false, true}
	p := Score(pred, truth)
	if p.TP != 2 || p.FP != 1 || p.FN != 1 {
		t.Fatalf("counts: %+v", p)
	}
	if !almost(p.Precision, 2.0/3) || !almost(p.Recall, 2.0/3) || !almost(p.F, 2.0/3) {
		t.Errorf("metrics: %+v", p)
	}
}

func TestScorePerfectAndEmpty(t *testing.T) {
	p := Score([]bool{true, false}, []bool{true, false})
	if p.Precision != 1 || p.Recall != 1 || p.F != 1 {
		t.Errorf("perfect: %+v", p)
	}
	p = Score([]bool{false, false}, []bool{false, false})
	if p.Precision != 0 || p.Recall != 0 || p.F != 0 {
		t.Errorf("empty: %+v", p)
	}
}

func TestScorePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	Score([]bool{true}, []bool{true, false})
}

func TestScoreSets(t *testing.T) {
	p := ScoreSets([]int{1, 2, 3, 3}, []int{2, 3, 4})
	// answers {1,2,3}: tp=2 (2,3), fp=1 (1), fn=1 (4)
	if p.TP != 2 || p.FP != 1 || p.FN != 1 {
		t.Errorf("%+v", p)
	}
	p = ScoreSets(nil, []int{1})
	if p.Recall != 0 || p.Precision != 0 {
		t.Errorf("empty answers: %+v", p)
	}
}

// TestFleissKappaWikipediaExample uses the canonical worked example from
// Fleiss (1971): 10 subjects, 14 raters, 5 categories; kappa = 0.210.
func TestFleissKappaWikipediaExample(t *testing.T) {
	ratings := [][]int{
		{0, 0, 0, 0, 14},
		{0, 2, 6, 4, 2},
		{0, 0, 3, 5, 6},
		{0, 3, 9, 2, 0},
		{2, 2, 8, 1, 1},
		{7, 7, 0, 0, 0},
		{3, 2, 6, 3, 0},
		{2, 5, 3, 2, 2},
		{6, 5, 2, 1, 0},
		{0, 2, 2, 3, 7},
	}
	kappa := FleissKappa(ratings)
	if math.Abs(kappa-0.210) > 0.001 {
		t.Errorf("kappa = %.4f, want 0.210", kappa)
	}
}

func TestFleissKappaPerfectAgreement(t *testing.T) {
	ratings := [][]int{{3, 0}, {0, 3}, {3, 0}}
	if k := FleissKappa(ratings); !almost(k, 1) {
		t.Errorf("kappa = %f, want 1", k)
	}
}

func TestFleissKappaDegenerate(t *testing.T) {
	if k := FleissKappa(nil); k != 1 {
		t.Errorf("empty: %f", k)
	}
	// all raters always pick category 0: pe == 1, defined as 1
	if k := FleissKappa([][]int{{3, 0}, {3, 0}}); k != 1 {
		t.Errorf("single category: %f", k)
	}
}

func TestFleissKappaBinary(t *testing.T) {
	raters := [][]bool{
		{true, false, true, false},
		{true, false, true, false},
		{true, false, false, false},
	}
	k := FleissKappaBinary(raters)
	if k <= 0.5 || k > 1 {
		t.Errorf("kappa = %f, want strong agreement", k)
	}
}

// TestFleissKappaSimulatedRaters verifies the reproduction target: the
// simulated expert raters over the generated ground truth must agree with
// kappa > 0.8, as the paper reports for its human raters.
func TestFleissKappaSimulatedRaters(t *testing.T) {
	for _, reg := range []corpus.Register{corpus.CUDA, corpus.OpenCL, corpus.XeonPhi} {
		g := corpus.Generate(reg, 1)
		_, labels := g.EvalSentences()
		raters := corpus.SimulateRaters(labels, 3, 42)
		k := FleissKappaBinary(raters)
		if k <= 0.8 {
			t.Errorf("%v: kappa = %.3f, want > 0.8", reg, k)
		}
	}
}

func TestFromCountsZeroDivision(t *testing.T) {
	p := FromCounts(0, 0, 0)
	if p.Precision != 0 || p.Recall != 0 || p.F != 0 {
		t.Errorf("%+v", p)
	}
}

// Property: F is always between min(P,R) and max(P,R) (harmonic mean), and
// all metrics are within [0,1].
func TestPRFProperties(t *testing.T) {
	f := func(tp, fp, fn uint8) bool {
		p := FromCounts(int(tp), int(fp), int(fn))
		if p.Precision < 0 || p.Precision > 1 || p.Recall < 0 || p.Recall > 1 || p.F < 0 || p.F > 1 {
			return false
		}
		lo, hi := p.Precision, p.Recall
		if lo > hi {
			lo, hi = hi, lo
		}
		return p.F >= lo-1e-9 && p.F <= hi+1e-9 || (p.Precision == 0 && p.Recall == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: kappa is <= 1 for any well-formed matrix.
func TestFleissKappaBounded(t *testing.T) {
	f := func(seed []byte) bool {
		if len(seed) < 4 {
			return true
		}
		n := int(seed[0])%8 + 2
		k := int(seed[1])%4 + 2
		ratings := make([][]int, n)
		si := 2
		for i := range ratings {
			row := make([]int, 3)
			left := k
			for c := 0; c < 2; c++ {
				if si >= len(seed) {
					break
				}
				take := int(seed[si]) % (left + 1)
				row[c] = take
				left -= take
				si++
			}
			row[2] = left
			ratings[i] = row
		}
		kappa := FleissKappa(ratings)
		return kappa <= 1+1e-9 && !math.IsNaN(kappa)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"Method", "P", "R"}}
	tb.AddRow("Egeria", F3(0.814), F3(0.923))
	tb.AddRow("KeywordAll", F3(0.486), F3(1.0))
	s := tb.String()
	if !strings.Contains(s, "Egeria") || !strings.Contains(s, "0.814") {
		t.Errorf("table:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Errorf("expected 4 lines, got %d:\n%s", len(lines), s)
	}
}

func TestFormatters(t *testing.T) {
	if F3(0.5) != "0.500" || F2(1.25) != "1.25" {
		t.Error("formatters")
	}
}
