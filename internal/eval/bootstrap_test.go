package eval

import (
	"testing"
	"testing/quick"
)

func TestBootstrapMeanBasic(t *testing.T) {
	values := []float64{4, 5, 6, 5, 4, 6, 5}
	iv := BootstrapMean(values, 2000, 0.95, 1)
	if iv.Point < 4.9 || iv.Point > 5.1 {
		t.Errorf("point %f", iv.Point)
	}
	if iv.Lo > iv.Point || iv.Hi < iv.Point {
		t.Errorf("interval does not contain point: %s", iv)
	}
	if iv.Lo < 4 || iv.Hi > 6 {
		t.Errorf("interval beyond data range: %s", iv)
	}
}

func TestBootstrapMedian(t *testing.T) {
	values := []float64{1, 2, 3, 4, 100}
	iv := BootstrapMedian(values, 2000, 0.95, 1)
	if iv.Point != 3 {
		t.Errorf("median point %f", iv.Point)
	}
	if iv.Lo > iv.Point || iv.Hi < iv.Point {
		t.Errorf("interval: %s", iv)
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	values := []float64{2, 4, 8, 16}
	a := BootstrapMean(values, 500, 0.95, 7)
	b := BootstrapMean(values, 500, 0.95, 7)
	if a != b {
		t.Error("nondeterministic for fixed seed")
	}
}

func TestBootstrapDegenerate(t *testing.T) {
	iv := BootstrapMean(nil, 100, 0.95, 1)
	if iv.Point != 0 || iv.Lo != 0 || iv.Hi != 0 {
		t.Errorf("empty input: %+v", iv)
	}
	one := BootstrapMean([]float64{3}, 100, 0.95, 1)
	if one.Point != 3 || one.Lo != 3 || one.Hi != 3 {
		t.Errorf("single value: %+v", one)
	}
	// defaults kick in for bad params
	d := BootstrapMean([]float64{1, 2}, -5, 2.0, 1)
	if d.Level != 0.95 {
		t.Errorf("level default: %+v", d)
	}
}

// Property: Lo <= Point <= Hi and both bounds within [min, max] of the data.
func TestBootstrapBoundsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		values := make([]float64, len(raw))
		lo, hi := 255.0, 0.0
		for i, b := range raw {
			values[i] = float64(b)
			if values[i] < lo {
				lo = values[i]
			}
			if values[i] > hi {
				hi = values[i]
			}
		}
		iv := BootstrapMean(values, 200, 0.9, 3)
		return iv.Lo >= lo-1e-9 && iv.Hi <= hi+1e-9 && iv.Lo <= iv.Hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPermutationPValue(t *testing.T) {
	big := []float64{7, 8, 7.5, 8.2, 7.8, 8.1, 7.6, 7.9}
	small := []float64{2, 2.5, 2.2, 2.8, 2.4, 2.6, 2.1, 2.3}
	p := PermutationPValue(big, small, 2000, 1)
	if p > 0.01 {
		t.Errorf("clear separation but p = %f", p)
	}
	// identical distributions: p should be large-ish
	same := []float64{5, 5.1, 4.9, 5.2, 4.8, 5.05, 4.95, 5.15}
	p2 := PermutationPValue(same, same, 2000, 1)
	if p2 < 0.2 {
		t.Errorf("identical groups but p = %f", p2)
	}
	if PermutationPValue(nil, same, 100, 1) != 1 {
		t.Error("empty group should return 1")
	}
}

func TestIntervalString(t *testing.T) {
	iv := Interval{Point: 5.5, Lo: 4.25, Hi: 6.75, Level: 0.95}
	if got := iv.String(); got != "5.50 [4.25, 6.75]" {
		t.Errorf("got %q", got)
	}
}
