package eval

import (
	"fmt"
	"math/rand"
	"sort"
)

// Interval is a bootstrap confidence interval for a statistic.
type Interval struct {
	Point float64 // statistic on the original sample
	Lo    float64 // lower percentile bound
	Hi    float64 // upper percentile bound
	Level float64 // confidence level, e.g. 0.95
}

// String renders the interval in the usual bracket notation.
func (iv Interval) String() string {
	return fmt.Sprintf("%.2f [%.2f, %.2f]", iv.Point, iv.Lo, iv.Hi)
}

// BootstrapMean computes a percentile-bootstrap confidence interval for the
// mean of values (resamples with replacement; deterministic in seed). The
// paper's Table 5 reports bare means over small student groups — the
// interval quantifies how stable those means are under resampling.
func BootstrapMean(values []float64, resamples int, level float64, seed int64) Interval {
	return bootstrap(values, mean, resamples, level, seed)
}

// BootstrapMedian is BootstrapMean for the median.
func BootstrapMedian(values []float64, resamples int, level float64, seed int64) Interval {
	return bootstrap(values, median, resamples, level, seed)
}

func bootstrap(values []float64, stat func([]float64) float64, resamples int, level float64, seed int64) Interval {
	if len(values) == 0 {
		return Interval{Level: level}
	}
	if resamples <= 0 {
		resamples = 1000
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	rng := rand.New(rand.NewSource(seed))
	stats := make([]float64, resamples)
	sample := make([]float64, len(values))
	for r := 0; r < resamples; r++ {
		for i := range sample {
			sample[i] = values[rng.Intn(len(values))]
		}
		stats[r] = stat(sample)
	}
	sort.Float64s(stats)
	alpha := (1 - level) / 2
	lo := stats[clampIndex(int(alpha*float64(resamples)), resamples)]
	hi := stats[clampIndex(int((1-alpha)*float64(resamples)), resamples)]
	return Interval{Point: stat(values), Lo: lo, Hi: hi, Level: level}
}

func clampIndex(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

func mean(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func median(v []float64) float64 {
	c := append([]float64{}, v...)
	sort.Float64s(c)
	m := c[len(c)/2]
	if len(c)%2 == 0 {
		m = (c[len(c)/2-1] + c[len(c)/2]) / 2
	}
	return m
}

// PermutationPValue tests whether the mean of group a exceeds that of group
// b beyond chance: it returns the one-sided p-value of the observed mean
// difference under random relabeling. Used to check that the Table 5 group
// gap is not an artifact of the random advisor assignment.
func PermutationPValue(a, b []float64, permutations int, seed int64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	if permutations <= 0 {
		permutations = 2000
	}
	observed := mean(a) - mean(b)
	pool := append(append([]float64{}, a...), b...)
	rng := rand.New(rand.NewSource(seed))
	exceed := 0
	for p := 0; p < permutations; p++ {
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		diff := mean(pool[:len(a)]) - mean(pool[len(a):])
		if diff >= observed {
			exceed++
		}
	}
	return (float64(exceed) + 1) / (float64(permutations) + 1)
}
