// Package nlp is the shared representation layer between Egeria's NLP
// passes: the annotate-once core. An Annotation carries everything the
// multi-layered Stage-I analysis derives from one sentence — tokens, POS
// tags, the dependency tree, Porter stems — plus lazily-computed products
// (retrieval terms, SRL purpose clauses and frames, lowercased forms), each
// materialized at most once and shared by every consumer.
//
// Before this layer existed, each downstream pass re-derived its inputs:
// selector 1 re-tokenized and re-stemmed text the parser had already
// tokenized, Explain re-parsed sentences Classify had just parsed, and the
// TF-IDF index re-tokenized and re-stemmed the exact sentences Stage I had
// processed. With Annotations, the per-sentence NLP cost is paid exactly
// once regardless of how many layers consume the result.
//
// Annotations are safe for concurrent use: the eager fields are immutable
// after construction and the lazy products are guarded by sync.Once.
package nlp

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/depparse"
	"repro/internal/obs"
	"repro/internal/postag"
	"repro/internal/srl"
	"repro/internal/textproc"
)

// Per-stage annotation metrics, registered on the default registry so every
// annotation path (builds, selectors, tools) reports into one place. The
// histograms record one observation per sentence per stage, in microseconds.
var (
	annotatedSentences = obs.Default().Counter("nlp_sentences_annotated_total")
	tokenizeHist       = obs.Default().Histogram("nlp_tokenize_micros")
	tagHist            = obs.Default().Histogram("nlp_tag_micros")
	parseHist          = obs.Default().Histogram("nlp_parse_micros")
	stemHist           = obs.Default().Histogram("nlp_stem_micros")
)

// Annotation is the full per-sentence analysis, produced once by an
// Annotator and consumed by selectors, SRL, indexing and serving.
type Annotation struct {
	Index int    // sentence index within the source document (-1 standalone)
	Text  string // the raw sentence text
	Tree  *depparse.Tree
	Stems []string // Porter stem of every token (aligned with Tree.Words)

	lowerOnce sync.Once
	lower     []string

	termsOnce sync.Once
	terms     []string

	purposeOnce sync.Once
	purposes    []srl.Purpose

	framesOnce sync.Once
	frames     []srl.Frame
}

// Tokens returns the sentence's word tokens (aliased, do not mutate).
func (a *Annotation) Tokens() []string { return a.Tree.Words }

// Tags returns the POS tags, aligned with Tokens.
func (a *Annotation) Tags() []postag.Tag { return a.Tree.Tags }

// Lower returns the lowercased token forms, computed on first use.
func (a *Annotation) Lower() []string {
	a.lowerOnce.Do(func() {
		a.lower = make([]string, len(a.Tree.Words))
		for i, w := range a.Tree.Words {
			a.lower[i] = strings.ToLower(w)
		}
	})
	return a.lower
}

// Terms returns the sentence's retrieval term sequence: stopwords and
// punctuation dropped, remaining tokens stemmed. It reuses the stems
// computed at annotation time and is bit-exact with
// textproc.NormalizeTerms(a.Text), so an index built from annotation terms
// is identical to one built from the raw sentence texts.
func (a *Annotation) Terms() []string {
	a.termsOnce.Do(func() {
		words := a.Tree.Words
		terms := make([]string, 0, len(words))
		for i, w := range words {
			if textproc.IsStopword(w) || textproc.IsPunct(w) {
				continue
			}
			terms = append(terms, a.Stems[i])
		}
		a.terms = terms
	})
	return a.terms
}

// Purposes returns the sentence's purpose clauses (SRL AM-PNC spans),
// computed on first use and shared by selector 5 and Frames.
func (a *Annotation) Purposes() []srl.Purpose {
	a.purposeOnce.Do(func() {
		a.purposes = srl.PurposeClauses(a.Tree)
	})
	return a.purposes
}

// Frames returns the sentence's predicate-argument frames, computed on
// first use (reusing Purposes rather than re-scanning for them).
func (a *Annotation) Frames() []srl.Frame {
	a.framesOnce.Do(func() {
		a.frames = srl.LabelWithPurposes(a.Tree, a.Purposes())
	})
	return a.frames
}

// Annotator produces Annotations. The zero value is usable; NewAnnotator
// applies options. An Annotator is stateless after construction and safe
// for concurrent use.
type Annotator struct {
	parallelism int
}

// Option configures an Annotator.
type Option func(*Annotator)

// WithParallelism fixes the AnnotateAll worker count (<=0 means
// GOMAXPROCS, <=1 forces serial).
func WithParallelism(n int) Option {
	return func(a *Annotator) { a.parallelism = n }
}

// NewAnnotator creates an Annotator.
func NewAnnotator(opts ...Option) *Annotator {
	a := &Annotator{}
	for _, o := range opts {
		o(a)
	}
	return a
}

// Annotate runs the eager layers (tokenize, POS-tag, dependency-parse,
// stem) over one sentence; the remaining products are computed lazily.
func (an *Annotator) Annotate(text string) *Annotation {
	return annotate(-1, text)
}

// AnnotateCtx is Annotate under a trace: when the context carries a sampled
// span, each NLP stage (tokenize, tag, parse, stem) is recorded as a child
// span — the per-stage view of where one sentence's annotation time goes.
func (an *Annotator) AnnotateCtx(ctx context.Context, text string) *Annotation {
	parent := obs.SpanFrom(ctx)
	if parent == nil {
		return annotate(-1, text)
	}
	span := parent.StartChild("nlp.annotate")
	defer span.Finish()
	a := annotateSpans(-1, text, span)
	span.SetAttrInt("tokens", len(a.Tree.Words))
	return a
}

// AnnotateAll annotates every sentence, fanning out across the annotator's
// worker count. Work is distributed by an atomic counter (no per-item
// channel operations) and out[i] always corresponds to texts[i].
func (an *Annotator) AnnotateAll(texts []string) []*Annotation {
	return an.AnnotateAllCtx(context.Background(), texts)
}

// AnnotateAllCtx is AnnotateAll under a trace: the whole fan-out is one
// span (per-sentence spans at this volume would dwarf the work being
// traced; per-stage timing is available from the nlp_* histograms).
func (an *Annotator) AnnotateAllCtx(ctx context.Context, texts []string) []*Annotation {
	n := len(texts)
	out := make([]*Annotation, n)
	workers := an.parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if span := obs.SpanFrom(ctx); span != nil {
		child := span.StartChild("nlp.annotate_all")
		child.SetAttrInt("sentences", n)
		child.SetAttrInt("workers", workers)
		defer child.Finish()
	}
	if workers <= 1 {
		for i, t := range texts {
			out[i] = annotate(i, t)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = annotate(i, texts[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// Annotate is the package-level convenience for one-off sentences.
func Annotate(text string) *Annotation { return annotate(-1, text) }

// FromTree wraps an already-parsed sentence in an Annotation (text may be
// "" when only the tree is known; it is informational).
func FromTree(text string, tree *depparse.Tree) *Annotation {
	return &Annotation{
		Index: -1,
		Text:  text,
		Tree:  tree,
		Stems: textproc.StemAll(tree.Words),
	}
}

// QueryTerms is the query-side annotation: the normalized term sequence
// retrieval scores against (queries need no parse). It equals
// textproc.NormalizeTerms and exists so serving layers normalize a query
// exactly once and reuse the terms for cache keying and scoring.
func QueryTerms(query string) []string {
	return textproc.NormalizeTerms(query)
}

// annotate runs the four eager stages explicitly (rather than through
// depparse.ParseText) so each stage's latency is observed into its
// histogram — the per-component instrumentation the serving layer's
// /metricz reports. The stage outputs are identical to ParseText's.
func annotate(idx int, text string) *Annotation {
	start := time.Now()
	words := textproc.Words(text)
	t1 := time.Now()
	tags := postag.Tags(words)
	t2 := time.Now()
	tree := depparse.ParseTagged(words, tags)
	t3 := time.Now()
	stems := textproc.StemAll(words)
	t4 := time.Now()
	tokenizeHist.ObserveDuration(t1.Sub(start))
	tagHist.ObserveDuration(t2.Sub(t1))
	parseHist.ObserveDuration(t3.Sub(t2))
	stemHist.ObserveDuration(t4.Sub(t3))
	annotatedSentences.Inc()
	return &Annotation{
		Index: idx,
		Text:  text,
		Tree:  tree,
		Stems: stems,
	}
}

// annotateSpans is annotate with a child span per stage, used when a
// sampled trace asks for the per-stage breakdown of one sentence.
func annotateSpans(idx int, text string, parent *obs.Span) *Annotation {
	s := parent.StartChild("tokenize")
	words := textproc.Words(text)
	s.Finish()
	s = parent.StartChild("tag")
	tags := postag.Tags(words)
	s.Finish()
	s = parent.StartChild("parse")
	tree := depparse.ParseTagged(words, tags)
	s.Finish()
	s = parent.StartChild("stem")
	stems := textproc.StemAll(words)
	s.Finish()
	annotatedSentences.Inc()
	return &Annotation{
		Index: idx,
		Text:  text,
		Tree:  tree,
		Stems: stems,
	}
}
