package nlp

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/depparse"
	"repro/internal/postag"
	"repro/internal/srl"
	"repro/internal/textproc"
)

var testSentences = []string{
	"Avoid shared memory bank conflicts to maximize bandwidth.",
	"The number of threads per block should be chosen as a multiple of the warp size.",
	"It is recommended to overlap data transfers with kernel execution.",
	"Don't use clWaitForEvents() unless synchronization is required!",
	"In order to hide latency, launch enough warps per multiprocessor.",
	"",
}

// TestAnnotationMatchesLayers verifies that every eager field of an
// annotation equals what the underlying layer computes directly.
func TestAnnotationMatchesLayers(t *testing.T) {
	for _, s := range testSentences {
		ann := Annotate(s)
		words := textproc.Words(s)
		if !reflect.DeepEqual(ann.Tokens(), words) {
			t.Errorf("Tokens(%q) = %v, want %v", s, ann.Tokens(), words)
		}
		if !reflect.DeepEqual(ann.Tags(), postag.Tags(words)) {
			t.Errorf("Tags(%q) mismatch", s)
		}
		if !reflect.DeepEqual(ann.Stems, textproc.StemAll(words)) {
			t.Errorf("Stems(%q) = %v, want %v", s, ann.Stems, textproc.StemAll(words))
		}
	}
}

// TestTermsMatchNormalizeTerms is the bit-exactness contract the index
// build relies on: annotation terms must equal textproc.NormalizeTerms on
// the raw text, element for element.
func TestTermsMatchNormalizeTerms(t *testing.T) {
	for _, s := range testSentences {
		got := Annotate(s).Terms()
		want := textproc.NormalizeTerms(s)
		if len(got) != len(want) {
			t.Fatalf("Terms(%q): %v, want %v", s, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Terms(%q)[%d] = %q, want %q", s, i, got[i], want[i])
			}
		}
	}
}

// TestLazyProductsMatchSRL verifies the lazily-computed SRL products equal
// direct srl calls on the same tree.
func TestLazyProductsMatchSRL(t *testing.T) {
	for _, s := range testSentences {
		ann := Annotate(s)
		if !reflect.DeepEqual(ann.Purposes(), srl.PurposeClauses(ann.Tree)) {
			t.Errorf("Purposes(%q) mismatch", s)
		}
		if !reflect.DeepEqual(ann.Frames(), srl.Label(ann.Tree)) {
			t.Errorf("Frames(%q) mismatch", s)
		}
		// memoized: the same slice comes back
		if len(ann.Purposes()) > 0 && &ann.Purposes()[0] != &ann.purposes[0] {
			t.Errorf("Purposes(%q) not memoized", s)
		}
	}
}

// TestQueryTerms pins the query-side annotation to the canonical
// normalization.
func TestQueryTerms(t *testing.T) {
	q := "How do I avoid divergent branches?"
	if !reflect.DeepEqual(QueryTerms(q), textproc.NormalizeTerms(q)) {
		t.Fatalf("QueryTerms(%q) = %v", q, QueryTerms(q))
	}
}

// TestAnnotateAllOrder checks that parallel annotation preserves order and
// indexes, and equals serial annotation.
func TestAnnotateAllOrder(t *testing.T) {
	texts := make([]string, 100)
	for i := range texts {
		texts[i] = testSentences[i%len(testSentences)]
	}
	parallel := NewAnnotator(WithParallelism(8)).AnnotateAll(texts)
	serial := NewAnnotator(WithParallelism(1)).AnnotateAll(texts)
	if len(parallel) != len(texts) || len(serial) != len(texts) {
		t.Fatalf("lengths: %d / %d, want %d", len(parallel), len(serial), len(texts))
	}
	for i := range texts {
		if parallel[i].Index != i || serial[i].Index != i {
			t.Fatalf("index %d: got %d / %d", i, parallel[i].Index, serial[i].Index)
		}
		if parallel[i].Text != texts[i] {
			t.Fatalf("text %d: got %q", i, parallel[i].Text)
		}
		if !reflect.DeepEqual(parallel[i].Tokens(), serial[i].Tokens()) {
			t.Fatalf("tokens %d differ between parallel and serial annotation", i)
		}
	}
}

// TestFromTree wraps a pre-parsed tree and must agree with direct
// annotation of the same text.
func TestFromTree(t *testing.T) {
	s := testSentences[0]
	tree := depparse.ParseText(s)
	ann := FromTree(s, tree)
	direct := Annotate(s)
	if !reflect.DeepEqual(ann.Stems, direct.Stems) {
		t.Fatalf("FromTree stems %v, want %v", ann.Stems, direct.Stems)
	}
	if !reflect.DeepEqual(ann.Terms(), direct.Terms()) {
		t.Fatalf("FromTree terms %v, want %v", ann.Terms(), direct.Terms())
	}
}

// TestConcurrentLazyAccess hammers the lazy products from many goroutines;
// run with -race. Every reader must observe the same memoized values.
func TestConcurrentLazyAccess(t *testing.T) {
	ann := Annotate("The first step is to minimize data transfers with low bandwidth in order to improve throughput.")
	var wg sync.WaitGroup
	terms := ann.Terms() // reference values
	purposes := ann.Purposes()
	frames := ann.Frames()
	lower := ann.Lower()
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if !reflect.DeepEqual(ann.Terms(), terms) ||
					!reflect.DeepEqual(ann.Purposes(), purposes) ||
					!reflect.DeepEqual(ann.Frames(), frames) ||
					!reflect.DeepEqual(ann.Lower(), lower) {
					t.Error("lazy product changed under concurrency")
					return
				}
			}
		}()
	}
	wg.Wait()
}
