package nlp

import (
	"context"
	"sync"

	"repro/internal/doc"
)

// AnnotationCache maps sentence identities to their annotations — the reuse
// store behind incremental rebuilds. A kept sentence's annotation (and every
// lazy product already materialized on it: terms, lowercased forms, SRL
// purposes and frames) is shared by the successor build instead of being
// recomputed; only added sentences pay the NLP cost. Safe for concurrent
// use; annotations themselves are already concurrency-safe.
type AnnotationCache struct {
	mu sync.RWMutex
	m  map[doc.SentenceID]*Annotation
}

// NewAnnotationCache creates an empty cache.
func NewAnnotationCache() *AnnotationCache {
	return &AnnotationCache{m: map[doc.SentenceID]*Annotation{}}
}

// Get returns the cached annotation for id, if any.
func (c *AnnotationCache) Get(id doc.SentenceID) (*Annotation, bool) {
	if c == nil || id == "" {
		return nil, false
	}
	c.mu.RLock()
	a, ok := c.m[id]
	c.mu.RUnlock()
	return a, ok
}

// Put stores an annotation under id (no-op for the empty ID).
func (c *AnnotationCache) Put(id doc.SentenceID, a *Annotation) {
	if c == nil || id == "" || a == nil {
		return
	}
	c.mu.Lock()
	c.m[id] = a
	c.mu.Unlock()
}

// Len returns the number of cached annotations.
func (c *AnnotationCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// FromSavedTerms reconstitutes a term-only annotation from persisted state:
// the sentence text plus the normalized retrieval terms a snapshot stored.
// It supports exactly the products persistence kept — Text and Terms — and
// exists so a warm-started advisor can seed an AnnotationCache without
// re-running any NLP stage. Tree-dependent accessors (Tokens, Tags,
// Purposes, Frames) must not be called on it; the incremental build path
// never does for kept sentences, whose classification is reused rather than
// recomputed.
func FromSavedTerms(text string, terms []string) *Annotation {
	a := &Annotation{Index: -1, Text: text}
	a.termsOnce.Do(func() { a.terms = terms })
	return a
}

// AnnotateAllCached is AnnotateAll with identity-keyed reuse: out[i] is the
// cached annotation for ids[i] when present, otherwise a fresh annotation of
// texts[i] (added to the cache). Fresh annotations are produced by the same
// parallel fan-out as AnnotateAll, and the second return value reports how
// many sentences were served from the cache. A nil cache degrades to
// AnnotateAll.
func (an *Annotator) AnnotateAllCached(ids []doc.SentenceID, texts []string, cache *AnnotationCache) ([]*Annotation, int) {
	return an.AnnotateAllCachedCtx(context.Background(), ids, texts, cache)
}

// AnnotateAllCachedCtx is AnnotateAllCached under a trace: the fan-out over
// the cache misses is recorded as one nlp.annotate_all span (see
// AnnotateAllCtx), so a trace of an incremental build shows only the added
// sentences' annotation time.
func (an *Annotator) AnnotateAllCachedCtx(ctx context.Context, ids []doc.SentenceID, texts []string, cache *AnnotationCache) ([]*Annotation, int) {
	n := len(texts)
	out := make([]*Annotation, n)
	if cache == nil {
		return an.AnnotateAllCtx(ctx, texts), 0
	}
	var missIdx []int
	for i := 0; i < n; i++ {
		var id doc.SentenceID
		if i < len(ids) {
			id = ids[i]
		}
		if a, ok := cache.Get(id); ok {
			out[i] = a
			continue
		}
		missIdx = append(missIdx, i)
	}
	if len(missIdx) > 0 {
		missTexts := make([]string, len(missIdx))
		for k, i := range missIdx {
			missTexts[k] = texts[i]
		}
		fresh := an.AnnotateAllCtx(ctx, missTexts)
		for k, i := range missIdx {
			a := fresh[k]
			a.Index = i // position in the full document, not the miss batch
			out[i] = a
			if i < len(ids) {
				cache.Put(ids[i], a)
			}
		}
	}
	return out, n - len(missIdx)
}
