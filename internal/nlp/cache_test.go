package nlp

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/doc"
	"repro/internal/obs"
)

func TestAnnotationCacheGetPutLen(t *testing.T) {
	c := NewAnnotationCache()
	if c.Len() != 0 {
		t.Fatalf("fresh cache Len = %d", c.Len())
	}
	a := Annotate(testSentences[0])
	c.Put("s1", a)
	if got, ok := c.Get("s1"); !ok || got != a {
		t.Fatalf("Get after Put: %v %v", got, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	// the empty ID is never stored or served: it means "identity unknown"
	c.Put("", a)
	if _, ok := c.Get(""); ok || c.Len() != 1 {
		t.Fatal("empty sentence ID cached")
	}
	// nil annotations are not stored either
	c.Put("s2", nil)
	if _, ok := c.Get("s2"); ok {
		t.Fatal("nil annotation cached")
	}
	// overwrite replaces
	b := Annotate(testSentences[1])
	c.Put("s1", b)
	if got, _ := c.Get("s1"); got != b {
		t.Fatal("Put did not overwrite")
	}
}

func TestAnnotationCacheNilSafety(t *testing.T) {
	var c *AnnotationCache
	c.Put("s1", Annotate("x"))
	if _, ok := c.Get("s1"); ok {
		t.Fatal("nil cache returned a hit")
	}
	if c.Len() != 0 {
		t.Fatalf("nil cache Len = %d", c.Len())
	}
}

// TestFromSavedTermsRoundTrip: a reconstituted annotation serves exactly the
// persisted terms — no NLP stage runs, so the terms are returned verbatim
// even when they differ from what fresh annotation would compute.
func TestFromSavedTermsRoundTrip(t *testing.T) {
	text := testSentences[0]
	saved := Annotate(text).Terms()
	a := FromSavedTerms(text, saved)
	if a.Text != text || a.Index != -1 {
		t.Fatalf("reconstituted annotation: text %q index %d", a.Text, a.Index)
	}
	if !reflect.DeepEqual(a.Terms(), saved) {
		t.Fatalf("Terms() = %v, want saved %v", a.Terms(), saved)
	}
	// the terms are pinned at construction, not recomputed on access
	marker := []string{"marker", "terms"}
	b := FromSavedTerms(text, marker)
	if !reflect.DeepEqual(b.Terms(), marker) {
		t.Fatalf("Terms() = %v recomputed, want pinned %v", b.Terms(), marker)
	}
}

// TestAnnotateAllCachedReuse: cached identities are served without
// re-annotation (pointer identity), misses are annotated, index-fixed to
// their full-document position, and added to the cache.
func TestAnnotateAllCachedReuse(t *testing.T) {
	an := NewAnnotator(WithParallelism(2))
	texts := []string{testSentences[0], testSentences[1], testSentences[2]}
	ids := []doc.SentenceID{"a", "b", "c"}

	cache := NewAnnotationCache()
	kept := Annotate(texts[1])
	kept.Index = 99 // position in a previous build; reuse keeps it as-is
	cache.Put("b", kept)

	out, hits := an.AnnotateAllCached(ids, texts, cache)
	if hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
	if out[1] != kept {
		t.Fatal("cached annotation not reused by pointer")
	}
	for _, i := range []int{0, 2} {
		if out[i].Text != texts[i] || out[i].Index != i {
			t.Fatalf("miss %d: text %q index %d", i, out[i].Text, out[i].Index)
		}
		if got, ok := cache.Get(ids[i]); !ok || got != out[i] {
			t.Fatalf("miss %d not added to cache", i)
		}
	}

	// a second pass over the same identities is all hits
	out2, hits2 := an.AnnotateAllCached(ids, texts, cache)
	if hits2 != 3 {
		t.Fatalf("second pass hits = %d, want 3", hits2)
	}
	for i := range out2 {
		if out2[i] != out[i] {
			t.Fatalf("second pass slot %d not served from cache", i)
		}
	}
}

// TestAnnotateAllCachedShortIDs: sentences beyond the id list are annotated
// fresh every time and never cached — identity unknown means no reuse.
func TestAnnotateAllCachedShortIDs(t *testing.T) {
	an := NewAnnotator()
	texts := []string{testSentences[0], testSentences[1]}
	cache := NewAnnotationCache()
	out, hits := an.AnnotateAllCached([]doc.SentenceID{"only-first"}, texts, cache)
	if hits != 0 || len(out) != 2 {
		t.Fatalf("hits %d len %d", hits, len(out))
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d, want 1 (unidentified sentence cached?)", cache.Len())
	}
	if out[1].Index != 1 {
		t.Fatalf("unidentified sentence index %d, want 1", out[1].Index)
	}
}

func TestAnnotateAllCachedNilCacheDegrades(t *testing.T) {
	an := NewAnnotator(WithParallelism(1))
	texts := []string{testSentences[0], testSentences[1]}
	out, hits := an.AnnotateAllCached([]doc.SentenceID{"a", "b"}, texts, nil)
	if hits != 0 {
		t.Fatalf("nil cache hits = %d", hits)
	}
	want := an.AnnotateAll(texts)
	for i := range out {
		if out[i].Text != want[i].Text || out[i].Index != i {
			t.Fatalf("slot %d: %q/%d", i, out[i].Text, out[i].Index)
		}
	}
}

// TestAnnotationCacheConcurrent hammers Get/Put/Len from many goroutines
// (run with -race): concurrent mixed access must never lose an entry that
// was Put, and Get must only return annotations that were stored.
func TestAnnotationCacheConcurrent(t *testing.T) {
	cache := NewAnnotationCache()
	base := Annotate(testSentences[0])
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := doc.SentenceID(fmt.Sprintf("s%d", i%50))
				if i%3 == 0 {
					cache.Put(id, base)
				} else if a, ok := cache.Get(id); ok && a != base {
					t.Errorf("cache returned an annotation nobody stored")
					return
				}
				_ = cache.Len()
			}
		}(w)
	}
	wg.Wait()
	if n := cache.Len(); n == 0 || n > 50 {
		t.Fatalf("post-hammer Len = %d, want 1..50", n)
	}
}

// TestAnnotateCtx: without a sampled span the traced path equals plain
// annotation; with one, each NLP stage appears as a child span.
func TestAnnotateCtx(t *testing.T) {
	an := NewAnnotator()
	text := testSentences[0]

	plain := an.AnnotateCtx(context.Background(), text)
	direct := an.Annotate(text)
	if !reflect.DeepEqual(plain.Tokens(), direct.Tokens()) || !reflect.DeepEqual(plain.Stems, direct.Stems) {
		t.Fatal("untraced AnnotateCtx diverges from Annotate")
	}

	store := obs.NewTraceStore(4)
	tracer := obs.NewTracer(1, store)
	ctx, root := tracer.Start(context.Background(), "test")
	if root == nil {
		t.Fatal("tracer with rate 1 did not sample")
	}
	traced := an.AnnotateCtx(ctx, text)
	root.Finish()
	if !reflect.DeepEqual(traced.Tokens(), direct.Tokens()) {
		t.Fatal("traced AnnotateCtx diverges from Annotate")
	}
	tj, ok := store.Get(obs.TraceID(ctx))
	if !ok {
		t.Fatal("sampled trace not stored")
	}
	if len(tj.Root.Children) != 1 || tj.Root.Children[0].Name != "nlp.annotate" {
		t.Fatalf("root children: %+v", tj.Root.Children)
	}
	stages := tj.Root.Children[0].Children
	want := []string{"tokenize", "tag", "parse", "stem"}
	if len(stages) != len(want) {
		t.Fatalf("stage spans: %+v", stages)
	}
	for i, s := range stages {
		if s.Name != want[i] {
			t.Fatalf("stage %d = %q, want %q", i, s.Name, want[i])
		}
	}
}

// TestAnnotateAllCtxTraced: the fan-out is recorded as a single
// nlp.annotate_all span with sentence and worker counts.
func TestAnnotateAllCtxTraced(t *testing.T) {
	store := obs.NewTraceStore(4)
	tracer := obs.NewTracer(1, store)
	ctx, root := tracer.Start(context.Background(), "test")
	out := NewAnnotator(WithParallelism(2)).AnnotateAllCtx(ctx, []string{testSentences[0], testSentences[1]})
	root.Finish()
	if len(out) != 2 {
		t.Fatalf("annotated %d", len(out))
	}
	tj, ok := store.Get(obs.TraceID(ctx))
	if !ok || len(tj.Root.Children) != 1 || tj.Root.Children[0].Name != "nlp.annotate_all" {
		t.Fatalf("trace: %+v", tj.Root)
	}
}
