package store_test

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/store"
)

func TestSaveInjectedWriteError(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	adv := smallAdvisor(t, 3)
	if _, err := st.Save("cuda", adv, "", "h1"); err != nil {
		t.Fatal(err)
	}

	inj := fault.New(1)
	inj.Set(fault.StoreWrite, fault.Rule{ErrProb: 1})
	st.SetFaults(inj)
	if _, err := st.Save("cuda", adv, "", "h2"); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("injected write error: %v", err)
	}
	// a clean write failure leaves the previous snapshot intact and loadable
	st.SetFaults(nil)
	if _, man, err := st.Load("cuda"); err != nil || man.SourceHash != "h1" {
		t.Fatalf("previous snapshot damaged: %v (hash %q)", err, man.SourceHash)
	}
}

func TestSaveTornWriteDetectedOnLoad(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	adv := smallAdvisor(t, 3)
	if _, err := st.Save("cuda", adv, "", "h1"); err != nil {
		t.Fatal(err)
	}

	// torn write: the truncated payload lands, the manifest never updates
	inj := fault.New(1)
	inj.Set(fault.StoreWrite, fault.Rule{PartialProb: 1})
	st.SetFaults(inj)
	adv2 := smallAdvisor(t, 4)
	if _, err := st.Save("cuda", adv2, "", "h2"); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("torn save returned %v", err)
	}
	st.SetFaults(nil)

	// the old manifest now describes different bytes: never trusted-torn,
	// always surfaced as corruption
	_, _, err = st.Load("cuda")
	if !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("torn snapshot loaded as %v, want ErrCorrupt", err)
	}

	// the standard recovery path heals the name completely
	if err := st.Quarantine("cuda"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Load("cuda"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("post-quarantine load: %v, want ErrNotFound", err)
	}
	if _, err := st.Save("cuda", adv2, "", "h2"); err != nil {
		t.Fatal(err)
	}
	if _, man, err := st.Load("cuda"); err != nil || man.SourceHash != "h2" {
		t.Fatalf("post-recovery load: %v (hash %q)", err, man.SourceHash)
	}
}

func TestLoadInjectedReadError(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Save("cuda", smallAdvisor(t, 3), "", "h1"); err != nil {
		t.Fatal(err)
	}
	inj := fault.New(1)
	inj.Set(fault.StoreRead, fault.Rule{ErrProb: 1})
	st.SetFaults(inj)
	if _, _, err := st.Load("cuda"); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("injected read error surfaced as %v, want ErrCorrupt", err)
	}
	// the bytes on disk were never touched: disabling injection heals
	st.SetFaults(nil)
	if _, _, err := st.Load("cuda"); err != nil {
		t.Fatalf("load after injection off: %v", err)
	}
}
