// Package store is the on-disk snapshot store behind warm starts and
// zero-downtime corpus reloads: one checksummed gob snapshot per advisor
// (the core.Advisor Save stream) plus a JSON manifest describing where the
// snapshot came from (source path and content hash), when it was built, and
// what bytes to expect (sha256 checksum, payload size).
//
// Crash safety is the point of the layout. Every write goes through a
// temporary file in the same directory, is fsynced, and is moved into place
// with an atomic rename, so a snapshot file is either the complete old
// version or the complete new version — never a torn write. The manifest is
// written after its payload: a crash between the two leaves a payload whose
// manifest still describes the previous bytes, which Load detects as a
// checksum mismatch and reports as ErrCorrupt. Callers (the lifecycle
// manager) treat ErrCorrupt as "rebuild from source", never as a fatal
// startup error, and Quarantine the bad files for post-mortems.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
)

// FormatVersion guards the store layout (file naming + manifest schema).
// The advisor payload carries its own gob-level version inside the stream
// (see core.LoadAdvisor); this one covers everything around it.
const FormatVersion = 1

// File suffixes of the store layout. A quarantined pair keeps its name with
// badSuffix appended, so operators can inspect what the checksum rejected.
const (
	snapSuffix     = ".snap"
	manifestSuffix = ".json"
	badSuffix      = ".bad"
	tmpSuffix      = ".tmp"
)

// ErrNotFound: no snapshot exists under that name (a clean miss — cold
// build, don't quarantine).
var ErrNotFound = errors.New("store: snapshot not found")

// ErrCorrupt: the snapshot exists but cannot be trusted — truncated or
// tampered payload, checksum mismatch, unreadable manifest, or a format
// version this binary does not speak. The caller should fall back to a cold
// build and may Quarantine the files.
var ErrCorrupt = errors.New("store: snapshot corrupt")

// Manifest describes one stored snapshot — the JSON sidecar of a .snap file.
type Manifest struct {
	FormatVersion int       `json:"format_version"`
	Advisor       string    `json:"advisor"`
	SourcePath    string    `json:"source_path,omitempty"`
	SourceHash    string    `json:"source_hash"`
	BuiltAt       time.Time `json:"built_at"`
	Checksum      string    `json:"checksum"` // sha256 hex of the .snap payload
	Bytes         int64     `json:"bytes"`    // payload size
	Rules         int       `json:"rules"`
	Sentences     int       `json:"sentences"`
}

// Store is a directory of advisor snapshots. Methods are safe for use from
// one process; two processes writing the same name race on "which complete
// snapshot wins", never on torn bytes (renames are atomic).
type Store struct {
	dir string
	flt *fault.Injector // nil unless fault injection is enabled
}

// SetFaults wires a fault injector into the store's I/O paths (store.write,
// store.read). A nil injector — the production default — costs one nil
// check per operation. Call before handing the store to concurrent users.
func (s *Store) SetFaults(in *fault.Injector) { s.flt = in }

// Open creates (if needed) and returns the store at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// validName rejects names that would escape the store directory or collide
// with the store's own suffix conventions.
func validName(name string) error {
	if name == "" {
		return errors.New("store: empty snapshot name")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("store: invalid snapshot name %q", name)
		}
	}
	if strings.HasPrefix(name, ".") || strings.Contains(name, "..") {
		return fmt.Errorf("store: invalid snapshot name %q", name)
	}
	return nil
}

func (s *Store) snapPath(name string) string     { return filepath.Join(s.dir, name+snapSuffix) }
func (s *Store) manifestPath(name string) string { return filepath.Join(s.dir, name+manifestSuffix) }

// Save snapshots the advisor under name. sourcePath (may be "") and
// sourceHash describe the advisor's source document, so a later Load can
// tell a fresh snapshot from a stale one. The payload lands first, the
// manifest second, both through temp-file + fsync + atomic rename; a crash
// at any point leaves either the previous complete snapshot or the new one.
func (s *Store) Save(name string, a *core.Advisor, sourcePath, sourceHash string) (Manifest, error) {
	if err := validName(name); err != nil {
		return Manifest{}, err
	}
	var payload strings.Builder
	if err := a.Save(&payload); err != nil {
		return Manifest{}, fmt.Errorf("store: encode %s: %w", name, err)
	}
	data := []byte(payload.String())
	man := Manifest{
		FormatVersion: FormatVersion,
		Advisor:       name,
		SourcePath:    sourcePath,
		SourceHash:    sourceHash,
		BuiltAt:       time.Now().UTC(),
		Checksum:      HashBytes(data),
		Bytes:         int64(len(data)),
		Rules:         len(a.Rules()),
		Sentences:     a.SentenceCount(),
	}
	manData, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return Manifest{}, fmt.Errorf("store: manifest %s: %w", name, err)
	}
	if ferr := s.flt.Err(fault.StoreWrite); ferr != nil {
		// clean injected write failure: nothing on disk changed
		return Manifest{}, fmt.Errorf("store: save %s: %w", name, ferr)
	}
	if torn, mangled := s.flt.Mangle(fault.StoreWrite, data); mangled {
		// simulated crash mid-save: the truncated payload lands (atomically,
		// as a real crash-then-rename interleaving would), the manifest is
		// never written, and the caller sees a failure. A later Load finds
		// the old manifest describing different bytes -> ErrCorrupt.
		_ = s.writeAtomic(s.snapPath(name), torn)
		return Manifest{}, fmt.Errorf("store: save %s: %w (torn write)", name, fault.ErrInjected)
	}
	if err := s.writeAtomic(s.snapPath(name), data); err != nil {
		return Manifest{}, err
	}
	if err := s.writeAtomic(s.manifestPath(name), append(manData, '\n')); err != nil {
		return Manifest{}, err
	}
	return man, nil
}

// writeAtomic writes data to path via a same-directory temp file, fsync,
// atomic rename, and a directory fsync so the rename itself is durable.
func (s *Store) writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, filepath.Base(path)+tmpSuffix+"*")
	if err != nil {
		return fmt.Errorf("store: temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("store: fsync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: close %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: rename %s: %w", path, err)
	}
	return s.syncDir()
}

// syncDir fsyncs the store directory so completed renames survive a crash.
// Platforms that refuse directory fsync (it is advisory on some filesystems)
// don't fail the save — the rename already happened atomically.
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// Manifest reads and validates the manifest for name without touching the
// payload — the cheap staleness probe warm start uses before deciding
// whether to read megabytes of snapshot.
func (s *Store) Manifest(name string) (Manifest, error) {
	if err := validName(name); err != nil {
		return Manifest{}, err
	}
	return s.readManifest(name)
}

func (s *Store) readManifest(name string) (Manifest, error) {
	data, err := os.ReadFile(s.manifestPath(name))
	if err != nil {
		if os.IsNotExist(err) {
			// manifest missing: a payload with no manifest is an interrupted
			// or foreign write — corrupt; neither file is a clean miss
			if _, serr := os.Stat(s.snapPath(name)); serr == nil {
				return Manifest{}, fmt.Errorf("%w: %s has a payload but no manifest", ErrCorrupt, name)
			}
			return Manifest{}, fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		return Manifest{}, fmt.Errorf("%w: read manifest %s: %v", ErrCorrupt, name, err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return Manifest{}, fmt.Errorf("%w: manifest %s: %v", ErrCorrupt, name, err)
	}
	if man.FormatVersion != FormatVersion {
		return Manifest{}, fmt.Errorf("%w: %s has format version %d, want %d",
			ErrCorrupt, name, man.FormatVersion, FormatVersion)
	}
	return man, nil
}

// Load reads, verifies, and decodes the snapshot under name. Every failure
// mode after "the files simply aren't there" is reported as ErrCorrupt so
// callers can fall back to a rebuild; only a clean absence is ErrNotFound.
func (s *Store) Load(name string) (*core.Advisor, Manifest, error) {
	if err := validName(name); err != nil {
		return nil, Manifest{}, err
	}
	man, err := s.readManifest(name)
	if err != nil {
		return nil, Manifest{}, err
	}
	if ferr := s.flt.Err(fault.StoreRead); ferr != nil {
		// an injected read failure surfaces exactly like a real I/O error:
		// as corruption, so callers fall back to a rebuild
		return nil, man, fmt.Errorf("%w: read payload %s: %v", ErrCorrupt, name, ferr)
	}
	data, err := os.ReadFile(s.snapPath(name))
	if err != nil {
		return nil, man, fmt.Errorf("%w: read payload %s: %v", ErrCorrupt, name, err)
	}
	if int64(len(data)) != man.Bytes {
		return nil, man, fmt.Errorf("%w: %s payload is %d bytes, manifest says %d",
			ErrCorrupt, name, len(data), man.Bytes)
	}
	if sum := HashBytes(data); sum != man.Checksum {
		return nil, man, fmt.Errorf("%w: %s checksum %s, manifest says %s",
			ErrCorrupt, name, sum, man.Checksum)
	}
	a, err := core.LoadAdvisor(strings.NewReader(string(data)))
	if err != nil {
		return nil, man, fmt.Errorf("%w: decode %s: %v", ErrCorrupt, name, err)
	}
	a.SetName(man.Advisor)
	return a, man, nil
}

// List returns the manifests of every readable snapshot, sorted by advisor
// name. Corrupt manifests are skipped — List is an inventory, not a
// validator; Load is where corruption is surfaced per name.
func (s *Store) List() ([]Manifest, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: list %s: %w", s.dir, err)
	}
	var out []Manifest
	for _, e := range entries {
		fname := e.Name()
		if e.IsDir() || !strings.HasSuffix(fname, manifestSuffix) || strings.HasSuffix(fname, badSuffix) {
			continue
		}
		name := strings.TrimSuffix(fname, manifestSuffix)
		man, err := s.readManifest(name)
		if err != nil {
			continue
		}
		out = append(out, man)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Advisor < out[j].Advisor })
	return out, nil
}

// Quarantine moves the snapshot pair aside (name.snap -> name.snap.bad,
// same for the manifest) so the next Load is a clean miss while the
// rejected bytes stay available for inspection. Missing files are fine —
// quarantining half a pair quarantines the half that exists.
func (s *Store) Quarantine(name string) error {
	if err := validName(name); err != nil {
		return err
	}
	var firstErr error
	for _, path := range []string{s.snapPath(name), s.manifestPath(name)} {
		if _, err := os.Stat(path); err != nil {
			continue
		}
		if err := os.Rename(path, path+badSuffix); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("store: quarantine %s: %w", path, err)
		}
	}
	if firstErr != nil {
		return firstErr
	}
	return s.syncDir()
}

// GC removes every snapshot pair whose name keep rejects, returning the
// removed names. Quarantined (.bad) files are left alone — they are
// evidence, and an operator deletes them deliberately.
func (s *Store) GC(keep func(name string) bool) ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: gc %s: %w", s.dir, err)
	}
	var removed []string
	for _, e := range entries {
		fname := e.Name()
		if e.IsDir() || !strings.HasSuffix(fname, snapSuffix) {
			continue
		}
		name := strings.TrimSuffix(fname, snapSuffix)
		if keep != nil && keep(name) {
			continue
		}
		if err := os.Remove(s.snapPath(name)); err != nil {
			return removed, fmt.Errorf("store: gc %s: %w", name, err)
		}
		_ = os.Remove(s.manifestPath(name)) // manifest may be missing; not an error
		removed = append(removed, name)
	}
	sort.Strings(removed)
	return removed, nil
}

// HashBytes returns the sha256 hex digest of b — the checksum and
// source-hash primitive the store and its callers share.
func HashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// HashFile returns the sha256 hex digest of the file's contents.
func HashFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
