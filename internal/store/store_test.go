package store_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/store"
)

func smallAdvisor(t testing.TB, seed int64) *core.Advisor {
	t.Helper()
	g := corpus.GenerateSized(corpus.CUDA, 60, 0.3, seed)
	return core.New().BuildFromSentences(g.Doc, g.Sentences)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	orig := smallAdvisor(t, 3)
	man, err := st.Save("cuda", orig, "/guides/cuda.html", "hash123")
	if err != nil {
		t.Fatal(err)
	}
	if man.Advisor != "cuda" || man.SourceHash != "hash123" || man.SourcePath != "/guides/cuda.html" {
		t.Errorf("manifest identity wrong: %+v", man)
	}
	if man.FormatVersion != store.FormatVersion || man.Checksum == "" || man.Bytes == 0 {
		t.Errorf("manifest integrity fields wrong: %+v", man)
	}
	if man.Rules != len(orig.Rules()) || man.Sentences != orig.SentenceCount() {
		t.Errorf("manifest counts %d/%d, want %d/%d", man.Rules, man.Sentences, len(orig.Rules()), orig.SentenceCount())
	}

	loaded, man2, err := st.Load("cuda")
	if err != nil {
		t.Fatal(err)
	}
	if man2.Checksum != man.Checksum {
		t.Errorf("manifest drifted between Save and Load")
	}
	if loaded.Name() != "cuda" {
		t.Errorf("loaded advisor name %q", loaded.Name())
	}
	or, lr := orig.Rules(), loaded.Rules()
	if len(or) != len(lr) {
		t.Fatalf("rules %d vs %d", len(or), len(lr))
	}
	for i := range or {
		if or[i] != lr[i] {
			t.Fatalf("rule %d differs", i)
		}
	}
	oa, la := orig.Query("reduce global memory latency"), loaded.Query("reduce global memory latency")
	if len(oa) != len(la) {
		t.Fatalf("answers %d vs %d", len(oa), len(la))
	}
}

func TestLoadMissing(t *testing.T) {
	st, _ := store.Open(t.TempDir())
	if _, _, err := st.Load("nope"); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("missing snapshot: %v, want ErrNotFound", err)
	}
	if _, err := st.Manifest("nope"); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("missing manifest: %v, want ErrNotFound", err)
	}
}

// TestLoadCorruption covers every way a snapshot can go bad: truncated
// payload, flipped bytes, garbage manifest, orphaned payload, and a format
// version from the future. Each must be ErrCorrupt (rebuild), never a panic
// or a clean miss.
func TestLoadCorruption(t *testing.T) {
	dir := t.TempDir()
	st, _ := store.Open(dir)
	if _, err := st.Save("cuda", smallAdvisor(t, 5), "", "h"); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "cuda.snap")
	manPath := filepath.Join(dir, "cuda.json")
	good, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	goodMan, _ := os.ReadFile(manPath)

	restore := func() {
		os.WriteFile(snapPath, good, 0o644)
		os.WriteFile(manPath, goodMan, 0o644)
	}

	cases := []struct {
		name    string
		corrupt func()
	}{
		{"truncated payload", func() { os.WriteFile(snapPath, good[:len(good)/2], 0o644) }},
		{"flipped byte", func() {
			bad := bytes.Clone(good)
			bad[len(bad)/2] ^= 0xff
			os.WriteFile(snapPath, bad, 0o644)
		}},
		{"garbage manifest", func() { os.WriteFile(manPath, []byte("{not json"), 0o644) }},
		{"payload without manifest", func() { os.Remove(manPath) }},
		{"version skew", func() {
			os.WriteFile(manPath, bytes.Replace(goodMan, []byte(`"format_version": 1`),
				[]byte(`"format_version": 99`), 1), 0o644)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			restore()
			c.corrupt()
			if _, _, err := st.Load("cuda"); !errors.Is(err, store.ErrCorrupt) {
				t.Errorf("Load after %s: %v, want ErrCorrupt", c.name, err)
			}
		})
	}

	// and a valid pair still loads after all that
	restore()
	if _, _, err := st.Load("cuda"); err != nil {
		t.Fatalf("restored snapshot does not load: %v", err)
	}
}

func TestQuarantine(t *testing.T) {
	dir := t.TempDir()
	st, _ := store.Open(dir)
	if _, err := st.Save("cuda", smallAdvisor(t, 7), "", "h"); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir, "cuda.snap"), []byte("garbage"), 0o644)
	if _, _, err := st.Load("cuda"); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("garbage payload: %v, want ErrCorrupt", err)
	}
	if err := st.Quarantine("cuda"); err != nil {
		t.Fatal(err)
	}
	// the bad bytes are preserved aside, and the name is now a clean miss
	if _, err := os.Stat(filepath.Join(dir, "cuda.snap.bad")); err != nil {
		t.Errorf("quarantined payload missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "cuda.json.bad")); err != nil {
		t.Errorf("quarantined manifest missing: %v", err)
	}
	if _, _, err := st.Load("cuda"); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("after quarantine: %v, want ErrNotFound", err)
	}
	// quarantining a missing name is a no-op
	if err := st.Quarantine("ghost"); err != nil {
		t.Errorf("quarantine of missing snapshot: %v", err)
	}
}

func TestListAndGC(t *testing.T) {
	dir := t.TempDir()
	st, _ := store.Open(dir)
	a := smallAdvisor(t, 9)
	for _, name := range []string{"cuda", "opencl", "xeon"} {
		if _, err := st.Save(name, a, "", "h-"+name); err != nil {
			t.Fatal(err)
		}
	}
	// a quarantined pair must not show up in List
	st.Save("stale", a, "", "h-stale")
	st.Quarantine("stale")

	mans, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(mans) != 3 || mans[0].Advisor != "cuda" || mans[1].Advisor != "opencl" || mans[2].Advisor != "xeon" {
		t.Fatalf("List = %+v", mans)
	}

	removed, err := st.GC(func(name string) bool { return name == "cuda" })
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 || removed[0] != "opencl" || removed[1] != "xeon" {
		t.Fatalf("GC removed %v", removed)
	}
	if _, _, err := st.Load("cuda"); err != nil {
		t.Errorf("kept snapshot gone: %v", err)
	}
	if _, _, err := st.Load("opencl"); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("collected snapshot still loads: %v", err)
	}
	// quarantined files survive GC
	if _, err := os.Stat(filepath.Join(dir, "stale.snap.bad")); err != nil {
		t.Errorf("GC removed quarantined evidence: %v", err)
	}
}

func TestInvalidNames(t *testing.T) {
	st, _ := store.Open(t.TempDir())
	a := smallAdvisor(t, 11)
	for _, name := range []string{"", "../escape", "a/b", ".hidden", "sp ace"} {
		if _, err := st.Save(name, a, "", "h"); err == nil {
			t.Errorf("Save accepted invalid name %q", name)
		}
		if _, _, err := st.Load(name); err == nil {
			t.Errorf("Load accepted invalid name %q", name)
		}
	}
}

func TestSaveOverwriteIsAtomic(t *testing.T) {
	dir := t.TempDir()
	st, _ := store.Open(dir)
	if _, err := st.Save("cuda", smallAdvisor(t, 13), "", "v1"); err != nil {
		t.Fatal(err)
	}
	man1, _ := st.Manifest("cuda")
	if _, err := st.Save("cuda", smallAdvisor(t, 14), "", "v2"); err != nil {
		t.Fatal(err)
	}
	man2, _ := st.Manifest("cuda")
	if man2.SourceHash != "v2" || man1.SourceHash != "v1" {
		t.Errorf("overwrite did not replace the manifest: %+v -> %+v", man1, man2)
	}
	if _, _, err := st.Load("cuda"); err != nil {
		t.Fatalf("overwritten snapshot does not load: %v", err)
	}
	// no temp litter left behind
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if n := e.Name(); n != "cuda.snap" && n != "cuda.json" {
			t.Errorf("unexpected file in store: %s", n)
		}
	}
}

func TestHashHelpers(t *testing.T) {
	if store.HashBytes([]byte("a")) == store.HashBytes([]byte("b")) {
		t.Error("hash collision on trivial inputs")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	os.WriteFile(path, []byte("content"), 0o644)
	h, err := store.HashFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if h != store.HashBytes([]byte("content")) {
		t.Error("HashFile disagrees with HashBytes")
	}
	if _, err := store.HashFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("HashFile on a missing file succeeded")
	}
}
