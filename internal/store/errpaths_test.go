package store_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/store"
)

// The degraded-directory and orphan-file paths: what List, GC, Quarantine,
// and the manifest probe do when the store directory is damaged in ways a
// crash, an operator, or a foreign process can produce.

func TestOpenErrors(t *testing.T) {
	if _, err := store.Open(""); err == nil {
		t.Error("Open(\"\") accepted")
	}
	// a path through a regular file cannot be created as a directory
	dir := t.TempDir()
	file := filepath.Join(dir, "plain")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Open(filepath.Join(file, "sub")); err == nil {
		t.Error("Open through a regular file accepted")
	}
	st, err := store.Open(filepath.Join(dir, "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Dir() != filepath.Join(dir, "snaps") {
		t.Errorf("Dir() = %q", st.Dir())
	}
}

func TestManifestProbe(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Manifest("no/slash"); err == nil {
		t.Error("invalid name accepted")
	}
	if _, err := st.Manifest("absent"); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("missing pair: %v, want ErrNotFound", err)
	}
	if _, err := st.Save("cuda", smallAdvisor(t, 3), "", "h1"); err != nil {
		t.Fatal(err)
	}
	man, err := st.Manifest("cuda")
	if err != nil || man.Advisor != "cuda" || man.SourceHash != "h1" {
		t.Fatalf("probe after save: %+v %v", man, err)
	}
}

// TestOrphanPayload: a .snap with no manifest is an interrupted or foreign
// write — ErrCorrupt from both the probe and Load, never a clean miss.
func TestOrphanPayload(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "cuda.snap"), []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Manifest("cuda"); !errors.Is(err, store.ErrCorrupt) {
		t.Errorf("orphan payload probe: %v, want ErrCorrupt", err)
	}
	if _, _, err := st.Load("cuda"); !errors.Is(err, store.ErrCorrupt) {
		t.Errorf("orphan payload load: %v, want ErrCorrupt", err)
	}
	// quarantine moves the half that exists; the next load is a clean miss
	if err := st.Quarantine("cuda"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "cuda.snap.bad")); err != nil {
		t.Errorf("orphan payload not quarantined: %v", err)
	}
	if _, _, err := st.Load("cuda"); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("post-quarantine load: %v, want ErrNotFound", err)
	}
}

// TestOrphanManifest: a manifest with no payload fails Load as corruption
// (the manifest promises bytes that are not there) and is skippable
// inventory for List.
func TestOrphanManifest(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Save("cuda", smallAdvisor(t, 3), "", "h1"); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "cuda.snap")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Load("cuda"); !errors.Is(err, store.ErrCorrupt) {
		t.Errorf("orphan manifest load: %v, want ErrCorrupt", err)
	}
	// the probe alone stays clean: manifests are readable without payloads
	if _, err := st.Manifest("cuda"); err != nil {
		t.Errorf("orphan manifest probe: %v", err)
	}
	// List reports it (inventory, not validation)...
	mans, err := st.List()
	if err != nil || len(mans) != 1 {
		t.Fatalf("List over orphan manifest: %v %v", mans, err)
	}
	// ...and GC leaves it alone (GC walks payloads), but quarantine clears it
	removed, err := st.GC(nil)
	if err != nil || len(removed) != 0 {
		t.Fatalf("GC removed %v, %v", removed, err)
	}
	if err := st.Quarantine("cuda"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Manifest("cuda"); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("post-quarantine probe: %v, want ErrNotFound", err)
	}
}

// TestListSkipsBadAndForeignEntries: quarantined pairs, corrupt manifests,
// subdirectories, and foreign files never show up in the inventory.
func TestListSkipsBadAndForeignEntries(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Save("keep", smallAdvisor(t, 3), "", "h1"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Save("broken", smallAdvisor(t, 4), "", "h2"); err != nil {
		t.Fatal(err)
	}
	// corrupt one manifest in place
	if err := os.WriteFile(filepath.Join(dir, "broken.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	// a quarantined pair
	if _, err := st.Save("bad", smallAdvisor(t, 5), "", "h3"); err != nil {
		t.Fatal(err)
	}
	if err := st.Quarantine("bad"); err != nil {
		t.Fatal(err)
	}
	// a wrong-format-version manifest
	if err := os.WriteFile(filepath.Join(dir, "future.json"),
		[]byte(`{"format_version":999,"advisor":"future"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// foreign noise: a subdirectory and an unrelated file
	if err := os.Mkdir(filepath.Join(dir, "subdir"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}

	mans, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(mans) != 1 || mans[0].Advisor != "keep" {
		names := make([]string, len(mans))
		for i, m := range mans {
			names[i] = m.Advisor
		}
		t.Fatalf("List = %v, want [keep]", names)
	}
	// the wrong-version manifest is corrupt for Load, too
	if _, _, err := st.Load("future"); !errors.Is(err, store.ErrCorrupt) {
		t.Errorf("future-version load: %v, want ErrCorrupt", err)
	}
}

// TestListGCUnreadableDir: once the directory is gone, inventory and GC fail
// loudly instead of reporting an empty store.
func TestListGCUnreadableDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snaps")
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := st.List(); err == nil {
		t.Error("List over a missing directory reported success")
	}
	if _, err := st.GC(nil); err == nil {
		t.Error("GC over a missing directory reported success")
	}
	// Save cannot stage its temp file either
	if _, err := st.Save("cuda", smallAdvisor(t, 3), "", "h"); err == nil {
		t.Error("Save into a missing directory reported success")
	}
}

// TestGCPreservesQuarantinedEvidence: GC removes rejected names but never
// touches .bad files, and tolerates a payload whose manifest is already gone.
func TestGCPreservesQuarantinedEvidence(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"keep", "drop", "bad"} {
		if _, err := st.Save(name, smallAdvisor(t, 3), "", "h"); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Quarantine("bad"); err != nil {
		t.Fatal(err)
	}
	// orphan payload: manifest removed by hand
	if err := os.Remove(filepath.Join(dir, "drop.json")); err != nil {
		t.Fatal(err)
	}
	removed, err := st.GC(func(name string) bool { return name == "keep" })
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != "drop" {
		t.Fatalf("GC removed %v, want [drop]", removed)
	}
	for _, f := range []string{"keep.snap", "keep.json", "bad.snap.bad", "bad.json.bad"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("GC removed %s: %v", f, err)
		}
	}
	for _, f := range []string{"drop.snap", "drop.json"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err == nil {
			t.Errorf("GC left %s behind", f)
		}
	}
}

func TestQuarantineInvalidAndMissing(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Quarantine("../escape"); err == nil {
		t.Error("invalid name accepted")
	}
	// nothing to move is not an error: the goal state (clean miss) holds
	if err := st.Quarantine("absent"); err != nil {
		t.Errorf("quarantining nothing: %v", err)
	}
}

// TestLoadSizeMismatch: a payload whose length disagrees with the manifest
// is corrupt before any checksum work happens.
func TestLoadSizeMismatch(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Save("cuda", smallAdvisor(t, 3), "", "h"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "cuda.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "cuda.snap"), append(data, "trailing"...), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = st.Load("cuda")
	if !errors.Is(err, store.ErrCorrupt) || !strings.Contains(err.Error(), "bytes") {
		t.Errorf("size mismatch: %v", err)
	}
}

func TestHashFileMissing(t *testing.T) {
	if _, err := store.HashFile(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Error("HashFile on a missing file reported success")
	}
}
