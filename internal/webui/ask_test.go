package webui

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func getPage(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, readBody(t, resp)
}

// TestAskFederated: with a federator installed, the /ask page fans the
// question out and attributes every hit to its advisor.
func TestAskFederated(t *testing.T) {
	s := testServer(t)
	var gotQ, gotBackend string
	var gotK int
	s.SetFederator(func(ctx context.Context, backend, q string, k int) []FederatedHit {
		gotQ, gotBackend, gotK = q, backend, k
		return []FederatedHit{
			{Advisor: "cuda", Section: "5.2", Text: "coalesce global accesses", Score: 2.0, Norm: 1.0},
			{Advisor: "opencl", Section: "3.1", Text: "tune the work group size", Score: 0.8, Norm: 0.9},
		}
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, body := getPage(t, ts.URL+"/ask?q="+url.QueryEscape("memory performance")+"&backend=bm25")
	if code != 200 {
		t.Fatalf("ask status %d", code)
	}
	if gotQ != "memory performance" || gotBackend != "bm25" || gotK != 3 {
		t.Fatalf("federator saw q=%q backend=%q k=%d", gotQ, gotBackend, gotK)
	}
	for _, wantSub := range []string{"cuda", "opencl", "coalesce global accesses", "tune the work group size", "every advisor"} {
		if !strings.Contains(body, wantSub) {
			t.Errorf("ask page missing %q", wantSub)
		}
	}
}

// TestAskStandaloneDegradesToSingleAdvisor: without a federator the page
// still answers, presenting this server's own advisor in the federated
// shape — top 3 answers, norms relative to the best hit.
func TestAskStandaloneDegradesToSingleAdvisor(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, body := getPage(t, ts.URL+"/ask?q="+url.QueryEscape("How to increase warp execution efficiency"))
	if code != 200 {
		t.Fatalf("ask status %d", code)
	}
	if !strings.Contains(body, "CUDA Adviser") || !strings.Contains(body, `class="hit"`) {
		t.Errorf("standalone ask did not answer:\n%.400s", body)
	}
	// norms render: the best hit is exactly 1.00
	if !strings.Contains(body, "norm 1.00") {
		t.Errorf("no normalized top answer on standalone ask:\n%.600s", body)
	}
	if n := strings.Count(body, `class="hit"`); n > 3 {
		t.Errorf("standalone ask shows %d hits, want <= 3", n)
	}
}

func TestAskEmptyQueryRedirects(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Get(ts.URL + "/ask?q=++")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSeeOther {
		t.Fatalf("empty ask: %d, want 303", resp.StatusCode)
	}
}

// TestAskNoResults: a question nobody answers renders the empty state, not
// an error page.
func TestAskNoResults(t *testing.T) {
	s := testServer(t)
	s.SetFederator(func(ctx context.Context, backend, q string, k int) []FederatedHit {
		return nil
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	code, body := getPage(t, ts.URL+"/ask?q=zzzzz")
	if code != 200 || !strings.Contains(body, "No advisor had a relevant sentence") {
		t.Errorf("empty federated ask: %d\n%.300s", code, body)
	}
}

// TestReloadInfoFooter: the lifecycle summary renders in the front-page
// footer when installed, including the hot-reload count and rule diff, and
// is absent both without the hook and when the hook reports nil.
func TestReloadInfoFooter(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, body := getPage(t, ts.URL+"/")
	if strings.Contains(body, `class="lifecycle"`) {
		t.Error("footer rendered without a reload-info hook")
	}

	built := time.Date(2026, 8, 8, 10, 30, 0, 0, time.UTC)
	swap := built.Add(45 * time.Minute)
	info := &ReloadInfo{Origin: "snapshot", BuiltAt: built}
	s.SetReloadInfo(func() *ReloadInfo { return info })

	_, body = getPage(t, ts.URL+"/")
	if !strings.Contains(body, `class="lifecycle"`) || !strings.Contains(body, "corpus: snapshot") {
		t.Fatalf("footer missing after SetReloadInfo:\n%.400s", body)
	}
	if !strings.Contains(body, "2026-08-08 10:30:00") {
		t.Errorf("footer missing build time:\n%s", footerLine(body))
	}
	if strings.Contains(body, "hot reload") {
		t.Errorf("reload-free footer mentions reloads:\n%s", footerLine(body))
	}

	// after a hot swap the footer gains the reload count, time, and diff
	info = &ReloadInfo{Origin: "build", BuiltAt: built, LastSwap: swap, Reloads: 2, LastDiff: "3 added, 1 removed"}
	_, body = getPage(t, ts.URL+"/")
	for _, wantSub := range []string{"corpus: build", "2 hot reload(s)", "11:15:00", "3 added, 1 removed"} {
		if !strings.Contains(body, wantSub) {
			t.Errorf("footer missing %q:\n%s", wantSub, footerLine(body))
		}
	}

	// a hook that reports nil hides the footer again
	info = nil
	_, body = getPage(t, ts.URL+"/")
	if strings.Contains(body, `class="lifecycle"`) {
		t.Error("footer rendered for a nil lifecycle summary")
	}
}

func footerLine(body string) string {
	if i := strings.Index(body, `class="lifecycle"`); i >= 0 {
		end := strings.Index(body[i:], "</p>")
		if end < 0 {
			end = len(body) - i
		}
		return body[i : i+end]
	}
	return "(no footer)"
}

// TestSetAdvisorProviderSwapsPages: pages render against the provider's
// advisor, fall back to the constructed one when the provider returns nil,
// and follow a hot swap on the next request.
func TestSetAdvisorProviderSwapsPages(t *testing.T) {
	s := testServer(t)
	var live *core.Advisor
	s.SetAdvisorProvider(func() *core.Advisor { return live })
	ts := httptest.NewServer(s)
	defer ts.Close()

	// nil provider result: constructed advisor serves
	_, before := getPage(t, ts.URL+"/")
	if !strings.Contains(before, "advising sentences") {
		t.Fatalf("fallback render broken:\n%.300s", before)
	}

	live = emptyAdvisor()
	_, after := getPage(t, ts.URL+"/")
	if !strings.Contains(after, "0 advising sentences") {
		t.Errorf("provider advisor not live after swap:\n%.300s", after)
	}
}

func emptyAdvisor() *core.Advisor {
	return core.New().BuildFromSentences(nil, nil)
}
