package webui

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/nvvp"
)

func testServer(t testing.TB) *Server {
	t.Helper()
	g := corpus.GenerateSized(corpus.CUDA, 250, 0.25, 4)
	a := core.New().BuildFromSentences(g.Doc, g.Sentences)
	return New(a, "CUDA Adviser")
}

func TestWebUIPages(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("index status %d", resp.StatusCode)
	}
	if !strings.Contains(body, "CUDA Adviser") || !strings.Contains(body, "advising sentences") {
		t.Errorf("index body:\n%s", body[:min(400, len(body))])
	}
	if !strings.Contains(body, `action="/query"`) || !strings.Contains(body, `action="/report"`) {
		t.Error("index missing query/report forms (Fig. 6 surface)")
	}
}

func TestQueryEndpoint(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/query?q=" + url.QueryEscape("How to increase warp execution efficiency"))
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	if !strings.Contains(body, "class=\"hit\"") {
		t.Errorf("no highlighted answers in query page:\n%s", body[:min(600, len(body))])
	}
}

func TestQueryEmptyRedirects(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest("GET", "/query?q=", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusSeeOther {
		t.Errorf("empty query status %d", rec.Code)
	}
}

func TestQueryNoResults(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest("GET", "/query?q=zyzzyva+quux", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "No relevant sentences found") {
		t.Errorf("no-result page wrong: %d\n%s", rec.Code, rec.Body.String()[:min(400, rec.Body.Len())])
	}
}

func TestReportUpload(t *testing.T) {
	s := testServer(t)
	text, err := nvvp.Synthesize("norm")
	if err != nil {
		t.Fatal(err)
	}
	form := url.Values{"report": {text}}
	req := httptest.NewRequest("POST", "/report", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("report status %d: %s", rec.Code, rec.Body.String())
	}
	body := rec.Body.String()
	if !strings.Contains(body, "Register Usage") || !strings.Contains(body, "Divergent Branches") {
		t.Error("report answers missing issue headings")
	}
}

func TestReportUploadJSONMetrics(t *testing.T) {
	s := testServer(t)
	metrics := `{
		"program": "mykernel",
		"warp_execution_efficiency": 0.5,
		"occupancy": 0.9,
		"global_load_efficiency": 0.9,
		"branch_divergence": 0.05,
		"dram_utilization": 0.4,
		"issue_slot_utilization": 0.8,
		"low_throughput_inst_fraction": 0.05,
		"transfer_compute_ratio": 0.1
	}`
	form := url.Values{"report": {metrics}}
	req := httptest.NewRequest("POST", "/report", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("metrics report status %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "Low Warp Execution Efficiency") {
		t.Error("metrics-derived issue missing from the answer page")
	}
}

func TestReportUploadErrors(t *testing.T) {
	s := testServer(t)
	// GET not allowed
	req := httptest.NewRequest("GET", "/report", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /report status %d", rec.Code)
	}
	// malformed report
	form := url.Values{"report": {"not a report"}}
	req = httptest.NewRequest("POST", "/report", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad report status %d", rec.Code)
	}
}

func TestAnswerPagesDeepLinkIntoDoc(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest("GET", "/query?q="+url.QueryEscape("warp execution efficiency"), nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	body := rec.Body.String()
	if !strings.Contains(body, `href="/doc#sec-`) {
		t.Error("answer page sections do not deep-link into the document browser")
	}
	// the referenced anchor must exist on the doc page
	start := strings.Index(body, `href="/doc#`)
	end := strings.Index(body[start+11:], `"`)
	anchor := body[start+11 : start+11+end]
	dreq := httptest.NewRequest("GET", "/doc", nil)
	drec := httptest.NewRecorder()
	s.ServeHTTP(drec, dreq)
	if !strings.Contains(drec.Body.String(), `id="`+anchor+`"`) {
		t.Errorf("anchor %q missing from the doc page", anchor)
	}
}

func TestDocBrowserPage(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest("GET", "/doc", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("doc status %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "full document") {
		t.Error("doc page missing title")
	}
	if !strings.Contains(body, `class="sent adv"`) {
		t.Error("no highlighted advising sentences on the doc page")
	}
	if !strings.Contains(body, `class="sent"`) {
		t.Error("no plain sentences on the doc page")
	}
}

func TestNotFound(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest("GET", "/missing", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("status %d", rec.Code)
	}
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestSetQuerierRoutesRetrieval(t *testing.T) {
	s := testServer(t)
	var got []string
	s.SetQuerier(func(_ context.Context, _ string, q string) []core.Answer {
		got = append(got, q)
		return []core.Answer{{
			Sentence: core.AdvisingSentence{Index: 0, Text: "use the shared path"},
			Score:    0.99,
		}}
	})
	req := httptest.NewRequest("GET", "/query?q="+url.QueryEscape("memory latency"), nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "use the shared path") {
		t.Fatalf("querier answer not rendered: %d", rec.Code)
	}
	if len(got) != 1 || got[0] != "memory latency" {
		t.Errorf("querier saw %v", got)
	}
	// report issues must flow through the same path
	text, err := nvvp.Synthesize("norm")
	if err != nil {
		t.Fatal(err)
	}
	form := url.Values{"report": {text}}
	req = httptest.NewRequest("POST", "/report", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("report status %d", rec.Code)
	}
	if len(got) < 2 {
		t.Errorf("report issues did not go through the querier: %v", got)
	}
}
