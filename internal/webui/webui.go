// Package webui serves an Egeria advising tool over HTTP, reproducing the
// artifact's web front-end (paper Figs. 6-7): a front page listing the
// advising sentences extracted from the guide with links into the document
// structure, a query box, and a report upload; answers are shown highlighted
// together with the other advising sentences of the same section.
package webui

import (
	"bytes"
	"context"
	"html/template"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/nlp"
	"repro/internal/nvvp"
	"repro/internal/obs"
)

// Observability for the HTML front-end, surfaced on /metricz as webui_*.
var (
	pagesTotal   = obs.Default().Counter("webui_pages_total")
	queriesTotal = obs.Default().Counter("webui_queries_total")
	reportsTotal = obs.Default().Counter("webui_reports_total")
	renderHist   = obs.Default().Histogram("webui_render_micros")
)

// FederatedHit is one advisor's answer inside the federated /ask page —
// the webui's own view of a cross-advisor result, so the package stays
// decoupled from the serving layer's wire types.
type FederatedHit struct {
	Advisor string
	Section string
	Text    string
	Score   float64 // raw backend score, advisor-local scale
	Norm    float64 // score / that advisor's best score
}

// ReloadInfo is the corpus-lifecycle summary shown in the front page footer:
// where the serving advisor came from and when it last changed under traffic.
type ReloadInfo struct {
	Origin   string    // "snapshot" (warm start) or "build"
	BuiltAt  time.Time // when the serving advisor was built
	LastSwap time.Time // zero until the first hot reload
	Reloads  int64     // hot reloads since boot
	LastDiff string    // rule diff of the last swap, e.g. "2 added, 1 removed"
}

// Server wraps an Advisor with HTTP handlers.
type Server struct {
	advisor    *core.Advisor
	title      string
	mux        *http.ServeMux
	querier    func(ctx context.Context, backend, q string) []core.Answer         // optional shared retrieval path
	federator  func(ctx context.Context, backend, q string, k int) []FederatedHit // optional cross-advisor ask
	provider   func() *core.Advisor                                               // optional live-advisor source
	reloadInfo func() *ReloadInfo                                                 // optional lifecycle summary
}

// New creates a Server for an advisor. title labels the pages
// (e.g. "CUDA Adviser").
func New(advisor *core.Advisor, title string) *Server {
	s := &Server{advisor: advisor, title: title, mux: http.NewServeMux()}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/ask", s.handleAsk)
	s.mux.HandleFunc("/report", s.handleReport)
	s.mux.HandleFunc("/doc", s.handleDoc)
	return s
}

// SetQuerier routes retrieval through f instead of calling the advisor
// directly — the hook that lets the HTML UI share a serving layer's query
// cache and admission control. backend selects the scoring model ("" for
// the default VSM). The context carries the request's trace span (if
// sampled), so shared-path queries appear in the request's trace tree.
// Call before serving traffic.
func (s *Server) SetQuerier(f func(ctx context.Context, backend, q string) []core.Answer) {
	s.querier = f
}

// SetFederator routes the /ask page through f, typically a serving layer's
// cross-advisor federation (each advisor's k best answers, merged by
// normalized score). Without a federator, /ask degrades to this server's
// single advisor. Call before serving traffic.
func (s *Server) SetFederator(f func(ctx context.Context, backend, q string, k int) []FederatedHit) {
	s.federator = f
}

// SetAdvisorProvider makes every page render against f() instead of the
// advisor captured at construction — the hook that lets a hot-swapped
// registry advisor reach the HTML UI without rebuilding the Server. f must
// be safe for concurrent use (registry lookups are). Call before serving
// traffic.
func (s *Server) SetAdvisorProvider(f func() *core.Advisor) {
	s.provider = f
}

// SetReloadInfo installs the lifecycle summary shown in the front-page
// footer (warm-start origin, last hot reload). nil results hide the footer.
// Call before serving traffic.
func (s *Server) SetReloadInfo(f func() *ReloadInfo) {
	s.reloadInfo = f
}

// adv returns the advisor to render: the live one when a provider is
// installed, else the one captured at construction.
func (s *Server) adv() *core.Advisor {
	if s.provider != nil {
		if a := s.provider(); a != nil {
			return a
		}
	}
	return s.advisor
}

// query answers q through the shared querier when one is installed; the
// standalone fallback goes through the annotation path (normalize once,
// score the terms) like the serving layer does. An unknown backend falls
// back to the default scoring rather than erroring — the HTML form only
// offers valid backends.
func (s *Server) query(ctx context.Context, backend, q string) []core.Answer {
	queriesTotal.Inc()
	if s.querier != nil {
		return s.querier(ctx, backend, q)
	}
	adv := s.adv()
	answers, err := adv.QueryTermsBackendCtx(ctx, backend, nlp.QueryTerms(q))
	if err != nil {
		return adv.QueryTermsCtx(ctx, nlp.QueryTerms(q))
	}
	return answers
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	pagesTotal.Inc()
	s.mux.ServeHTTP(w, r)
}

var indexTmpl = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><title>{{.Title}}</title>
<style>
body { font-family: sans-serif; margin: 2em; max-width: 60em; }
.section { margin-top: 1em; font-weight: bold; }
.rule { margin: .3em 0 .3em 1.5em; }
.selector { color: #888; font-size: .8em; }
form { margin: 1em 0; }
textarea { width: 100%; height: 8em; }
</style></head><body>
<h1>{{.Title}}</h1>
<p>{{.Count}} advising sentences extracted from {{.Total}} document sentences
(ratio {{printf "%.1f" .Ratio}}).</p>
<form action="/query" method="GET">
  <input type="text" name="q" size="60" placeholder="Ask an optimization question">
  <select name="backend">{{range .Backends}}<option value="{{.}}">{{.}}</option>{{end}}</select>
  <input type="submit" value="Search">
</form>
<form action="/ask" method="GET">
  <input type="text" name="q" size="60" placeholder="Ask every advisor at once">
  <input type="submit" value="Ask all">
</form>
<form action="/report" method="POST">
  <p>Or paste an NVVP analysis report:</p>
  <textarea name="report"></textarea><br>
  <input type="submit" value="Upload">
</form>
<p><a href="/doc">browse the full document</a></p>
{{with .Reload}}<p class="lifecycle">corpus: {{.Origin}}{{if not .BuiltAt.IsZero}}, built {{.BuiltAt.Format "2006-01-02 15:04:05 MST"}}{{end}}{{if .Reloads}} &middot; {{.Reloads}} hot reload(s), last at {{.LastSwap.Format "15:04:05"}}{{with .LastDiff}} ({{.}}){{end}}{{end}}</p>{{end}}
{{range .Groups}}
<div class="section"><a href="/doc#{{.Anchor}}">{{.Section}}</a></div>
{{range .Rules}}<div class="rule">{{.Text}} <span class="selector">[{{.Selector}}]</span></div>
{{end}}{{end}}
</body></html>`))

var answerTmpl = template.Must(template.New("answer").Parse(`<!DOCTYPE html>
<html><head><title>{{.Title}} — answers</title>
<style>
body { font-family: sans-serif; margin: 2em; max-width: 60em; }
.issue { margin-top: 1.5em; font-weight: bold; }
.section { margin-top: 1em; font-style: italic; }
.hit { background: #ffec8b; margin: .3em 0 .3em 1.5em; padding: .15em; }
.ctx { color: #444; margin: .3em 0 .3em 1.5em; }
.score { color: #888; font-size: .8em; }
</style></head><body>
<h1>{{.Title}}</h1>
<p><a href="/">back to the rule list</a></p>
{{range .Blocks}}
<div class="issue">{{.Heading}}</div>
{{if .Empty}}<p>No relevant sentences found.</p>{{end}}
{{range .Items}}
<div class="section"><a href="/doc#{{.Anchor}}">{{.Section}}</a></div>
<div class="hit">{{.Text}} <span class="score">(score {{printf "%.2f" .Score}})</span></div>
{{range .Context}}<div class="ctx">{{.}}</div>
{{end}}{{end}}{{end}}
</body></html>`))

type ruleGroup struct {
	Section string
	Anchor  string
	Rules   []core.AdvisingSentence
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	adv := s.adv()
	rules := adv.Rules()
	bySection := map[string][]core.AdvisingSentence{}
	var order []string
	for _, rule := range rules {
		if _, ok := bySection[rule.Section]; !ok {
			order = append(order, rule.Section)
		}
		bySection[rule.Section] = append(bySection[rule.Section], rule)
	}
	sort.Strings(order)
	var groups []ruleGroup
	for _, sec := range order {
		groups = append(groups, ruleGroup{Section: sec, Anchor: anchorFor(sec), Rules: bySection[sec]})
	}
	var reload *ReloadInfo
	if s.reloadInfo != nil {
		reload = s.reloadInfo()
	}
	data := struct {
		Title    string
		Count    int
		Total    int
		Ratio    float64
		Backends []string
		Groups   []ruleGroup
		Reload   *ReloadInfo
	}{s.title, len(rules), adv.SentenceCount(), adv.CompressionRatio(), adv.Backends(), groups, reload}
	render(w, indexTmpl, data)
}

type answerItem struct {
	Section string
	Anchor  string
	Text    string
	Score   float64
	Context []string
}

type answerBlock struct {
	Heading string
	Empty   bool
	Items   []answerItem
}

func (s *Server) answersToBlock(heading string, answers []core.Answer) answerBlock {
	b := answerBlock{Heading: heading, Empty: len(answers) == 0}
	for _, a := range answers {
		item := answerItem{
			Section: a.Sentence.Section,
			Anchor:  anchorFor(a.Sentence.Section),
			Text:    a.Sentence.Text,
			Score:   a.Score,
		}
		for _, c := range s.adv().ContextOf(a) {
			item.Context = append(item.Context, c.Text)
		}
		if len(item.Context) > 4 {
			item.Context = item.Context[:4]
		}
		b.Items = append(b.Items, item)
	}
	return b
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	if q == "" {
		http.Redirect(w, r, "/", http.StatusSeeOther)
		return
	}
	backend := strings.TrimSpace(r.URL.Query().Get("backend"))
	answers := s.query(r.Context(), backend, q)
	heading := "Query: " + q
	if backend != "" {
		heading += " (" + backend + ")"
	}
	data := struct {
		Title  string
		Blocks []answerBlock
	}{s.title, []answerBlock{s.answersToBlock(heading, answers)}}
	render(w, answerTmpl, data)
}

var askTmpl = template.Must(template.New("ask").Parse(`<!DOCTYPE html>
<html><head><title>{{.Title}} — federated answers</title>
<style>
body { font-family: sans-serif; margin: 2em; max-width: 60em; }
.hit { background: #ffec8b; margin: .3em 0 .3em 1.5em; padding: .15em; }
.advisor { color: #06c; font-weight: bold; margin-right: .5em; }
.section { color: #444; font-style: italic; }
.score { color: #888; font-size: .8em; }
</style></head><body>
<h1>{{.Title}} — every advisor</h1>
<p><a href="/">back to the rule list</a></p>
<div class="issue">Ask: {{.Query}}</div>
{{if not .Hits}}<p>No advisor had a relevant sentence.</p>{{end}}
{{range .Hits}}
<div class="hit"><span class="advisor">{{.Advisor}}</span>{{.Text}}
<span class="score">(norm {{printf "%.2f" .Norm}}, score {{printf "%.2f" .Score}})</span><br>
<span class="section">{{.Section}}</span></div>
{{end}}
</body></html>`))

// handleAsk renders the federated cross-advisor view. With a federator
// installed the question fans out to every registered advisor; standalone,
// it degrades to this server's single advisor presented in the same shape.
func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	if q == "" {
		http.Redirect(w, r, "/", http.StatusSeeOther)
		return
	}
	backend := strings.TrimSpace(r.URL.Query().Get("backend"))
	var hits []FederatedHit
	if s.federator != nil {
		hits = s.federator(r.Context(), backend, q, 3)
	} else {
		answers := s.query(r.Context(), backend, q)
		if len(answers) > 3 {
			answers = answers[:3]
		}
		for _, a := range answers {
			norm := 0.0
			if best := answers[0].Score; best > 0 {
				norm = a.Score / best
			}
			hits = append(hits, FederatedHit{
				Advisor: s.title,
				Section: a.Sentence.Section,
				Text:    a.Sentence.Text,
				Score:   a.Score,
				Norm:    norm,
			})
		}
	}
	data := struct {
		Title string
		Query string
		Hits  []FederatedHit
	}{s.title, q, hits}
	render(w, askTmpl, data)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a report", http.StatusMethodNotAllowed)
		return
	}
	if err := r.ParseForm(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	text := r.FormValue("report")
	var report *nvvp.Report
	var err error
	if strings.HasPrefix(strings.TrimSpace(text), "{") {
		var m *nvvp.Metrics
		if m, err = nvvp.ParseMetricsJSON([]byte(text)); err == nil {
			report = m.Report()
		}
	} else {
		report, err = nvvp.Parse(text)
	}
	if err != nil {
		http.Error(w, "could not parse report: "+err.Error(), http.StatusBadRequest)
		return
	}
	reportsTotal.Inc()
	var blocks []answerBlock
	for _, issue := range report.Issues() {
		// each issue is answered through the shared query path, so report
		// uploads also benefit from (and warm) the serving cache
		blocks = append(blocks, s.answersToBlock("Issue: "+issue.Title, s.query(r.Context(), "", issue.Query())))
	}
	if len(blocks) == 0 {
		blocks = []answerBlock{{Heading: "Report " + report.Program, Empty: true}}
	}
	data := struct {
		Title  string
		Blocks []answerBlock
	}{s.title, blocks}
	render(w, answerTmpl, data)
}

var docTmpl = template.Must(template.New("doc").Parse(`<!DOCTYPE html>
<html><head><title>{{.Title}} — document</title>
<style>
body { font-family: sans-serif; margin: 2em; max-width: 60em; }
h2 { margin-top: 1.2em; }
.sent { display: inline; }
.adv { background: #ffec8b; }
</style></head><body>
<h1>{{.Title}} — full document</h1>
<p><a href="/">back to the rule list</a></p>
{{range .Sections}}
<h2 id="{{.Anchor}}">{{.Heading}}</h2>
<p>{{range .Sentences}}<span class="sent{{if .Advising}} adv{{end}}">{{.Text}}</span> {{end}}</p>
{{end}}
</body></html>`))

type docSentence struct {
	Text     string
	Advising bool
}

type docSection struct {
	Anchor    string
	Heading   string
	Sentences []docSentence
}

// handleDoc renders the whole document with the advising sentences
// highlighted in place — the "richer context" view the paper's loader
// structure enables (§3.2), reachable from the answer pages' section links.
func (s *Server) handleDoc(w http.ResponseWriter, r *http.Request) {
	var sections []docSection
	bySection := map[string]int{}
	adv := s.adv()
	for i := 0; i < adv.SentenceCount(); i++ {
		sec := adv.SectionOf(i)
		idx, ok := bySection[sec]
		if !ok {
			idx = len(sections)
			bySection[sec] = idx
			sections = append(sections, docSection{
				Anchor:  anchorFor(sec),
				Heading: sec,
			})
		}
		sections[idx].Sentences = append(sections[idx].Sentences, docSentence{
			Text:     adv.SentenceText(i),
			Advising: adv.IsAdvising(i),
		})
	}
	data := struct {
		Title    string
		Sections []docSection
	}{s.title, sections}
	render(w, docTmpl, data)
}

// anchorFor derives a stable fragment identifier from a section path, so
// answer pages can deep-link into the document browser.
func anchorFor(section string) string {
	var b strings.Builder
	b.WriteString("sec-")
	for _, r := range section {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r - 'A' + 'a')
		default:
			b.WriteByte('-')
		}
	}
	return b.String()
}

func render(w http.ResponseWriter, t *template.Template, data any) {
	// render to a buffer first: template errors become clean 500s, and a
	// client that hangs up mid-transfer cannot trigger a spurious error
	// response on an already-started body
	start := time.Now()
	defer func() { renderHist.ObserveDuration(time.Since(start)) }()
	var buf bytes.Buffer
	if err := t.Execute(&buf, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = buf.WriteTo(w) // client disconnects are not server errors
}
