package corpus

import "math/rand"

// Query is one Table 6 workload: a performance issue extracted from an
// NVVP-style report, the query text the advisor receives, and the subtopic
// tag defining its relevance ground truth.
type Query struct {
	Report   string // the profiling report this issue came from
	Issue    string // the issue title as the paper's Table 6 lists it
	Text     string // issue title + description, used as the query
	Subtopic string // nuggets with this subtopic are the ground truth
}

// CUDAQueries returns the six performance-issue queries of the paper's
// Table 6 (two issues each for knnjoin and trans, one each for the
// optimized variants).
func CUDAQueries() []Query {
	return []Query{
		{
			Report:   "knnjoin",
			Issue:    "Low Warp Execution Efficiency",
			Subtopic: "warp-efficiency",
			Text: "Low warp execution efficiency. Compute resources are used most " +
				"efficiently when all threads in a warp execute together; " +
				"under-populated warps and ragged loop bounds lower warp execution " +
				"efficiency. Choose the number of threads per block as a multiple " +
				"of the warp size, size the grid to several blocks per " +
				"multiprocessor so warp slots stay filled at barriers, split an " +
				"oversized block into smaller blocks so the scheduler can cover " +
				"stalls, use a launch configuration that keeps every warp " +
				"scheduler supplied with eligible warps, assign complete warps to " +
				"uniform work, and avoid barrier calls between producer and " +
				"consumer warps.",
		},
		{
			Report:   "knnjoin",
			Issue:    "Divergent Branches",
			Subtopic: "divergence",
			Text: "Divergent branches. Compute resources are used most " +
				"efficiently when every thread of a warp has the same branching " +
				"behavior; when the branching depends on the thread ID, the " +
				"branch is divergent and the execution paths serialize. Rewrite " +
				"the controlling condition so as to minimize the number of " +
				"divergent warps, and schedule the work items so that neighboring " +
				"threads take the same branch direction.",
		},
		{
			Report:   "knnjoin_opt",
			Issue:    "Global Memory Alignment and Access Pattern",
			Subtopic: "mem-alignment",
			Text: "Global memory alignment and access pattern. Accesses that are " +
				"not aligned to the transaction size or that stride across " +
				"segment boundaries split into extra transactions. Improve " +
				"coalescing and alignment: align the base address of each array " +
				"to the transaction size, align rows of two-dimensional arrays " +
				"with padding at segment boundaries, use data types that satisfy " +
				"the alignment requirement, keep the per-thread access pattern at " +
				"a stride of one word, reorganize data into a structure of arrays " +
				"instead of an array of structures, and stage irregular accesses " +
				"through shared memory so the global phase stays coalesced.",
		},
		{
			Report:   "trans",
			Issue:    "GPU Utilization is Limited by Memory Instruction Execution",
			Subtopic: "mem-instruction",
			Text: "GPU utilization is limited by memory and arithmetic instruction " +
				"execution. Too many low-throughput arithmetic instructions, " +
				"synchronization points, and divergent control flow occupy the " +
				"issue slots. Maximize instruction throughput by trading precision " +
				"for speed, using intrinsic functions instead of the regular math " +
				"library, using single-precision constants with an f suffix " +
				"instead of the double-precision path, flushing denormalized " +
				"numbers to zero, favoring shifts and masks over integer division, " +
				"using restricted pointers so the compiler can reorder loads, " +
				"avoiding synchronization points, and replacing divergent branches " +
				"with predication.",
		},
		{
			Report:   "trans",
			Issue:    "Instruction Latencies may be Limiting Performance",
			Subtopic: "instr-latency",
			Text: "Instruction latencies may be limiting performance. Warps stall " +
				"waiting on the scoreboard because too few warps are resident and " +
				"the kernel exposes little instruction-level parallelism. Hide the " +
				"latency of each instruction by keeping enough warps and multiple " +
				"resident blocks per multiprocessor, maximize parallel execution " +
				"between the host and the devices, control register usage with " +
				"the maxrregcount compiler option or launch bounds, tune occupancy " +
				"with the occupancy calculator and the block size, parameterize " +
				"the execution configuration on register file and shared memory " +
				"size, interleave independent arithmetic between a load and its " +
				"first use to minimize scoreboard stalls, expose instruction-level " +
				"parallelism, and control loop unrolling with the pragma directive.",
		},
		{
			Report:   "trans_opt",
			Issue:    "GPU Utilization is Limited by Memory Bandwidth",
			Subtopic: "mem-bandwidth",
			Text: "GPU utilization is limited by memory bandwidth. The kernel " +
				"saturates device memory or host transfer bandwidth. Minimize and " +
				"avoid unnecessary data transfers between the host and the device, " +
				"batch many small transfers into a single large one to raise " +
				"effective bandwidth, use page-locked or pinned host memory mapped " +
				"into the device address space, use write-combined host " +
				"allocations for buffers the host only writes, stage reused tiles " +
				"and the halo region in shared memory to minimize redundant " +
				"traffic, overlap transfers with kernels using streams and keep " +
				"transfers outstanding in both directions for peak bus " +
				"utilization, recompute values on the device rather than fetch " +
				"them over the bus, move intermediate data structures entirely " +
				"into device memory, use the texture path for read-only data, " +
				"coalesce writes as aggressively as reads, size the working set " +
				"of each block to fit the cache, and avoid mapping the same " +
				"buffer for read and write when a private accumulator suffices.",
		},
	}
}

// GroundTruth returns the indices (into g.Sentences) of the sentences whose
// subtopic matches the query — the relevance ground truth of Table 6.
func (g *Guide) GroundTruth(q Query) []int {
	var out []int
	for i, l := range g.Labels {
		if l.Subtopic == q.Subtopic {
			out = append(out, i)
		}
	}
	return out
}

// SimulateRaters produces nRaters independent advising/non-advising label
// vectors: each rater reproduces the ground truth but disagrees with small
// probability — higher on sentences the generator marked ambiguous, matching
// the paper's observation that "some sentences are ambiguous in whether they
// are advising sentences" yet Fleiss' kappa stays above 0.8.
func SimulateRaters(labels []Label, nRaters int, seed int64) [][]bool {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]bool, nRaters)
	for r := range out {
		v := make([]bool, len(labels))
		for i, l := range labels {
			p := 0.015
			if l.Ambiguous {
				p = 0.20
			}
			if rng.Float64() < p {
				v[i] = !l.Advising
			} else {
				v[i] = l.Advising
			}
		}
		out[r] = v
	}
	return out
}

// MajorityVote reduces rater label vectors to one vector by majority.
func MajorityVote(raters [][]bool) []bool {
	if len(raters) == 0 {
		return nil
	}
	n := len(raters[0])
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		yes := 0
		for _, r := range raters {
			if i < len(r) && r[i] {
				yes++
			}
		}
		out[i] = yes*2 > len(raters)
	}
	return out
}
