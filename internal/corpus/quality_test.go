package corpus

import (
	"math/rand"
	"testing"

	"repro/internal/selectors"
)

// TestAdvisingTemplatesTriggerTheirCategory instantiates every advising
// template with every register's slot vocabulary and asserts the recognizer
// accepts nearly all instances — the generator's labels are only meaningful
// if the templates reliably exhibit their category's pattern.
func TestAdvisingTemplatesTriggerTheirCategory(t *testing.T) {
	rec := selectors.Default()
	for _, reg := range []Register{CUDA, OpenCL, XeonPhi} {
		slots := slotsFor(reg)
		rng := rand.New(rand.NewSource(99))
		total, accepted := 0, 0
		var misses []string
		for _, tmpl := range advisingBank {
			for trial := 0; trial < 3; trial++ {
				sentence := sentenceCase(fill(rng, tmpl.text, slots))
				total++
				if rec.Classify(sentence).Advising {
					accepted++
				} else if len(misses) < 5 {
					misses = append(misses, sentence)
				}
			}
		}
		rate := float64(accepted) / float64(total)
		if rate < 0.93 {
			t.Errorf("%v: only %.0f%% of advising instances recognized; e.g. %q",
				reg, rate*100, misses)
		}
	}
}

// TestExplanatoryTemplatesStayClean instantiates every explanatory template
// and asserts the recognizer rejects nearly all instances (they must not
// leak keyword stems or selector patterns).
func TestExplanatoryTemplatesStayClean(t *testing.T) {
	rec := selectors.Default()
	for _, reg := range []Register{CUDA, OpenCL, XeonPhi} {
		slots := slotsFor(reg)
		rng := rand.New(rand.NewSource(99))
		total, flagged := 0, 0
		var hits []string
		for _, tmpl := range explanatoryBank {
			for trial := 0; trial < 3; trial++ {
				sentence := sentenceCase(fill(rng, tmpl.text, slots))
				total++
				if rec.Classify(sentence).Advising {
					flagged++
					if len(hits) < 5 {
						hits = append(hits, sentence)
					}
				}
			}
		}
		rate := float64(flagged) / float64(total)
		if rate > 0.07 {
			t.Errorf("%v: %.0f%% of explanatory instances flagged as advising; e.g. %q",
				reg, rate*100, hits)
		}
	}
}

// TestHardTemplatesEvadeSelectors: the deliberate recall ceiling only works
// if the hard templates are genuinely invisible to the default selectors.
func TestHardTemplatesEvadeSelectors(t *testing.T) {
	rec := selectors.Default()
	for _, reg := range []Register{CUDA, OpenCL, XeonPhi} {
		slots := slotsFor(reg)
		rng := rand.New(rand.NewSource(99))
		pool := hardAdvisingBank
		if reg == XeonPhi {
			pool = append(append([]sentenceTemplate{}, hardAdvisingBank...), xeonTunableHard...)
		}
		total, flagged := 0, 0
		var hits []string
		for _, tmpl := range pool {
			for trial := 0; trial < 3; trial++ {
				sentence := sentenceCase(fill(rng, tmpl.text, slots))
				total++
				if rec.Classify(sentence).Advising {
					flagged++
					if len(hits) < 5 {
						hits = append(hits, sentence)
					}
				}
			}
		}
		rate := float64(flagged) / float64(total)
		if rate > 0.10 {
			t.Errorf("%v: %.0f%% of hard instances recognized (should evade); e.g. %q",
				reg, rate*100, hits)
		}
	}
}

// TestLabelConsistency: structural invariants of every generated label.
func TestLabelConsistency(t *testing.T) {
	for _, reg := range []Register{CUDA, OpenCL, XeonPhi} {
		g := Generate(reg, 2)
		for i, l := range g.Labels {
			if l.Advising != (l.Category != NonAdvising) {
				t.Fatalf("%v sentence %d: advising=%v but category=%v", reg, i, l.Advising, l.Category)
			}
			if l.Category < NonAdvising || l.Category > CatHard {
				t.Fatalf("%v sentence %d: category %d out of range", reg, i, l.Category)
			}
			if l.Subtopic != "" && !l.Advising {
				t.Fatalf("%v sentence %d: non-advising sentence carries subtopic %q", reg, i, l.Subtopic)
			}
		}
		// eval range is within bounds and half-open
		if g.EvalStart < 0 || g.EvalEnd > len(g.Sentences) || g.EvalStart >= g.EvalEnd {
			t.Fatalf("%v: eval range [%d, %d) invalid", reg, g.EvalStart, g.EvalEnd)
		}
	}
}

// TestEgeriaTrapsActuallyTrap: templates marked egeriaTrap must be accepted
// by the recognizer (that is their role), plain traps should mostly not be.
func TestEgeriaTrapsActuallyTrap(t *testing.T) {
	rec := selectors.Default()
	slots := slotsFor(CUDA)
	rng := rand.New(rand.NewSource(99))
	for _, tmpl := range trapBank {
		hits := 0
		const trials = 4
		for trial := 0; trial < trials; trial++ {
			sentence := sentenceCase(fill(rng, tmpl.text, slots))
			if rec.Classify(sentence).Advising {
				hits++
			}
		}
		if tmpl.egeriaTrap && hits == 0 {
			t.Errorf("egeria trap never fires: %q", tmpl.text)
		}
		if !tmpl.egeriaTrap && hits == trials {
			t.Errorf("plain trap always fools Egeria (should mostly fool keyword baselines only): %q", tmpl.text)
		}
	}
}
