package corpus

import (
	"strings"
	"testing"

	"repro/internal/htmldoc"
)

func TestRenderHTMLRoundTrip(t *testing.T) {
	g := GenerateSized(CUDA, 300, 0.2, 31)
	html := g.RenderHTML()
	doc := htmldoc.Parse(html)

	if doc.Title != g.Doc.Title {
		t.Errorf("title: %q vs %q", doc.Title, g.Doc.Title)
	}
	got := doc.Sentences()
	if len(got) != len(g.Sentences) {
		t.Fatalf("round trip produced %d sentences, want %d", len(got), len(g.Sentences))
	}
	for i := range got {
		if got[i].Text != g.Sentences[i].Text {
			t.Fatalf("sentence %d differs:\n got  %q\n want %q", i, got[i].Text, g.Sentences[i].Text)
		}
	}
}

func TestRenderHTMLSectionStructure(t *testing.T) {
	g := GenerateSized(CUDA, 200, 0.2, 31)
	doc := htmldoc.Parse(g.RenderHTML())
	// every original section with blocks must resurface with its number
	for _, sec := range g.Doc.Sections {
		if sec.Number == "" || len(sec.Blocks) == 0 {
			continue
		}
		if doc.SectionByNumber(sec.Number) == nil {
			t.Errorf("section %s lost in round trip", sec.Number)
		}
	}
}

func TestRenderHTMLEscaping(t *testing.T) {
	g := &Guide{Doc: htmldoc.FromBlocks("T & <T>", []htmldoc.Section{
		{Number: "1", Title: "A < B", Level: 1, Blocks: []string{"Use x < y & z > w."}},
	})}
	html := g.RenderHTML()
	if strings.Contains(html, "<T>") || strings.Contains(html, "x < y") {
		t.Errorf("unescaped content:\n%s", html)
	}
	doc := htmldoc.Parse(html)
	if doc.Title != "T & <T>" {
		t.Errorf("title round trip: %q", doc.Title)
	}
	if len(doc.Sections) != 1 || len(doc.Sections[0].Blocks) != 1 {
		t.Fatalf("sections: %+v", doc.Sections)
	}
	if doc.Sections[0].Blocks[0] != "Use x < y & z > w." {
		t.Errorf("block round trip: %q", doc.Sections[0].Blocks[0])
	}
}
