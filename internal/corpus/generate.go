package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/htmldoc"
)

// genSent is one planned sentence with its ground truth.
type genSent struct {
	text  string
	label Label
}

// secPlan is one planned section.
type secPlan struct {
	number string
	title  string
	level  int
	sents  []genSent
	inEval bool
}

// chapter skeletons surrounding the evaluation chapter, per register.
func skeletonFor(reg Register) (pre, post []string, evalNum string, evalTitle string) {
	switch reg {
	case CUDA:
		return []string{"Introduction", "Programming Model", "Programming Interface", "Hardware Implementation"},
			[]string{"C Language Extensions", "Runtime Reference"},
			"5", "Performance Guidelines"
	case OpenCL:
		return []string{"Architecture Overview"},
			[]string{"Runtime and Host APIs", "Appendix"},
			"2", "OpenCL Performance and Optimization for GCN Devices"
	default:
		// Xeon: the whole document is the labeled evaluation set; no
		// pre/post chapters outside it.
		return nil, nil, "1", "Best Practices"
	}
}

func generate(reg Register, spec guideSpec, seed int64) *Guide {
	rng := rand.New(rand.NewSource(seed))
	slots := slotsFor(reg)
	packs := packsFor(reg)

	// global quotas
	totalAdv := int(spec.advisingFrac*float64(spec.totalSentences) + 0.5)
	if totalAdv < spec.evalAdvising {
		totalAdv = spec.evalAdvising
	}
	restTotal := spec.totalSentences - spec.evalSentences
	if restTotal < 0 {
		restTotal = 0
	}
	restAdv := totalAdv - spec.evalAdvising
	if restAdv > restTotal {
		restAdv = restTotal
	}
	if restAdv < 0 {
		restAdv = 0
	}

	// nuggets available for the eval chapter, capped at the chapter's
	// advising quota (small GenerateSized corpora take a nugget prefix)
	var nuggets []genSent
	nuggetsPerPack := make([][]genSent, len(packs))
	for pi, p := range packs {
		for _, n := range p.nuggets {
			if len(nuggets) >= spec.evalAdvising {
				break
			}
			gs := genSent{text: n.text, label: Label{
				Advising: true, Category: n.category, Topic: p.name,
				Subtopic: n.subtopic, Ambiguous: n.ambiguous,
			}}
			nuggetsPerPack[pi] = append(nuggetsPerPack[pi], gs)
			nuggets = append(nuggets, gs)
		}
	}

	hardTarget := int(spec.hardFrac*float64(totalAdv) + 0.5)
	for _, n := range nuggets {
		if n.label.Category == CatHard {
			hardTarget--
		}
	}
	if hardTarget < 0 {
		hardTarget = 0
	}

	gen := &sentenceGen{rng: rng, slots: slots, reg: reg, seen: map[string]bool{}}

	// bulk advising: fill eval chapter beyond the nuggets, plus the rest of
	// the guide; hard quota is spread proportionally.
	evalBulkAdv := spec.evalAdvising - len(nuggets)
	if evalBulkAdv < 0 {
		evalBulkAdv = 0
	}
	bulkAdvTotal := evalBulkAdv + restAdv
	evalHard, restHard := splitQuota(hardTarget, evalBulkAdv, restAdv)
	evalAdvSents := gen.advising(evalBulkAdv, evalHard)
	restAdvSents := gen.advising(restAdv, restHard)
	_ = bulkAdvTotal

	// per-pack explanatory sentences occupy part of the eval chapter's
	// non-advising budget
	explainsPerPack := make([][]genSent, len(packs))
	totalExplains := 0
	for pi, p := range packs {
		for _, n := range p.explain {
			explainsPerPack[pi] = append(explainsPerPack[pi], genSent{text: n.text, label: Label{
				Advising: false, Category: NonAdvising, Topic: p.name,
				Ambiguous: n.ambiguous,
			}})
			totalExplains++
		}
	}

	// non-advising quotas
	evalNonAdv := spec.evalSentences - spec.evalAdvising
	restNonAdv := restTotal - restAdv
	totalNonAdv := evalNonAdv + restNonAdv
	trapTarget := int(spec.trapFrac*float64(totalNonAdv) + 0.5)
	evalTraps, restTraps := splitQuota(trapTarget, evalNonAdv, restNonAdv)
	evalBulkNon := evalNonAdv - totalExplains
	if evalBulkNon < 0 {
		evalBulkNon = 0
	}
	evalNonSents := gen.nonAdvising(evalBulkNon, evalTraps)
	for pi := range explainsPerPack {
		evalNonSents = append(evalNonSents, explainsPerPack[pi]...)
	}
	rng.Shuffle(len(evalNonSents), func(i, j int) { evalNonSents[i], evalNonSents[j] = evalNonSents[j], evalNonSents[i] })
	restNonSents := gen.nonAdvising(restNonAdv, restTraps)

	// assemble the section plan
	pre, post, evalNum, evalTitle := skeletonFor(reg)
	preCount := restTotal * 2 / 5
	preAdv := restAdv * 2 / 5

	var plan []secPlan
	num := 1
	mixPre := mixSentences(rng, restAdvSents[:preAdv], restNonSents[:preCount-preAdv])
	plan = append(plan, layoutChapters(rng, pre, &num, mixPre, false)...)

	// evaluation chapter with one subsection per topic pack
	evalPlan := layoutEvalChapter(rng, packs, nuggetsPerPack, evalAdvSents, evalNonSents, evalNum, evalTitle)
	// renumber eval chapter to the next sequential chapter number when the
	// skeleton's nominal number is already taken or out of order
	if evalNum != fmt.Sprint(num) {
		renumber(evalPlan, num)
	}
	num++
	plan = append(plan, evalPlan...)

	mixPost := mixSentences(rng, restAdvSents[preAdv:], restNonSents[preCount-preAdv:])
	plan = append(plan, layoutChapters(rng, post, &num, mixPost, false)...)

	return assemble(reg, spec, plan)
}

// splitQuota splits quota proportionally between two pools of sizes a and b.
func splitQuota(quota, a, b int) (int, int) {
	if quota <= 0 || a+b == 0 {
		return 0, 0
	}
	qa := quota * a / (a + b)
	if qa > a {
		qa = a
	}
	qb := quota - qa
	if qb > b {
		qb = b
	}
	return qa, qb
}

// sentenceGen instantiates templates without exact duplicates when possible.
type sentenceGen struct {
	rng   *rand.Rand
	slots map[string][]string
	reg   Register
	seen  map[string]bool
}

func (g *sentenceGen) instantiate(t sentenceTemplate, topic string) genSent {
	var text string
	for attempt := 0; attempt < 6; attempt++ {
		text = sentenceCase(fill(g.rng, t.text, g.slots))
		if !g.seen[text] {
			break
		}
	}
	g.seen[text] = true
	return genSent{text: text, label: Label{
		Advising:  t.category != NonAdvising,
		Category:  t.category,
		Topic:     topic,
		Ambiguous: t.ambiguous,
	}}
}

// advising produces n advising sentences, hard of them from the hard pools.
func (g *sentenceGen) advising(n, hard int) []genSent {
	if n <= 0 {
		return nil
	}
	if hard > n {
		hard = n
	}
	hardPool := hardAdvisingBank
	if g.reg == XeonPhi {
		hardPool = append(append([]sentenceTemplate{}, hardAdvisingBank...), xeonTunableHard...)
	}
	out := make([]genSent, 0, n)
	for i := 0; i < hard; i++ {
		out = append(out, g.instantiate(hardPool[g.rng.Intn(len(hardPool))], "general"))
	}
	for i := hard; i < n; i++ {
		out = append(out, g.instantiate(advisingBank[g.rng.Intn(len(advisingBank))], "general"))
	}
	g.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// nonAdvising produces n non-advising sentences, traps of them from trapBank.
func (g *sentenceGen) nonAdvising(n, traps int) []genSent {
	if n <= 0 {
		return nil
	}
	if traps > n {
		traps = n
	}
	out := make([]genSent, 0, n)
	for i := 0; i < traps; i++ {
		out = append(out, g.instantiate(trapBank[g.rng.Intn(len(trapBank))], "general"))
	}
	for i := traps; i < n; i++ {
		out = append(out, g.instantiate(explanatoryBank[g.rng.Intn(len(explanatoryBank))], "general"))
	}
	g.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// mixSentences interleaves advising and non-advising sentences randomly.
func mixSentences(rng *rand.Rand, adv, non []genSent) []genSent {
	out := make([]genSent, 0, len(adv)+len(non))
	out = append(out, adv...)
	out = append(out, non...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// layoutChapters distributes sentences across the given chapter titles, each
// split into subsections of 12-20 sentences.
func layoutChapters(rng *rand.Rand, titles []string, num *int, sents []genSent, inEval bool) []secPlan {
	var plan []secPlan
	if len(titles) == 0 {
		return nil
	}
	perChapter := (len(sents) + len(titles) - 1) / len(titles)
	idx := 0
	for _, title := range titles {
		chNum := fmt.Sprint(*num)
		*num++
		plan = append(plan, secPlan{number: chNum, title: title, level: 1, inEval: inEval})
		remaining := perChapter
		if idx+remaining > len(sents) {
			remaining = len(sents) - idx
		}
		sub := 1
		for remaining > 0 {
			take := 12 + rng.Intn(9)
			if take > remaining {
				take = remaining
			}
			plan = append(plan, secPlan{
				number: fmt.Sprintf("%s.%d", chNum, sub),
				title:  subsectionTitle(rng, sub),
				level:  2,
				sents:  sents[idx : idx+take],
				inEval: inEval,
			})
			idx += take
			remaining -= take
			sub++
		}
	}
	// any residue goes into the last subsection
	if idx < len(sents) && len(plan) > 0 {
		plan[len(plan)-1].sents = append(plan[len(plan)-1].sents, sents[idx:]...)
	}
	return plan
}

var subsectionNames = []string{
	"Overview", "Execution Resources", "Memory System", "Scheduling",
	"Data Movement", "Caches", "Synchronization", "Numerical Behavior",
	"Compilation", "Measurement", "Device Queries", "Versioning",
}

func subsectionTitle(rng *rand.Rand, sub int) string {
	return subsectionNames[(sub-1+rng.Intn(3))%len(subsectionNames)]
}

// layoutEvalChapter builds the evaluation chapter: one subsection per topic
// pack containing its nuggets plus a share of the bulk sentences.
func layoutEvalChapter(rng *rand.Rand, packs []topicPack, nuggetsPerPack [][]genSent, bulkAdv, bulkNon []genSent, evalNum, evalTitle string) []secPlan {
	plan := []secPlan{{number: evalNum, title: evalTitle, level: 1, inEval: true}}
	nPacks := len(packs)
	if nPacks == 0 {
		nPacks = 1
	}
	ai, ni := 0, 0
	for pi := 0; pi < len(packs); pi++ {
		sents := append([]genSent{}, nuggetsPerPack[pi]...)
		// share of bulk advising
		aTake := (len(bulkAdv) - ai) / (len(packs) - pi)
		sents = append(sents, bulkAdv[ai:ai+aTake]...)
		ai += aTake
		nTake := (len(bulkNon) - ni) / (len(packs) - pi)
		sents = append(sents, bulkNon[ni:ni+nTake]...)
		ni += nTake
		rng.Shuffle(len(sents), func(i, j int) { sents[i], sents[j] = sents[j], sents[i] })
		plan = append(plan, secPlan{
			number: fmt.Sprintf("%s.%d", evalNum, pi+1),
			title:  packs[pi].title,
			level:  2,
			sents:  sents,
			inEval: true,
		})
	}
	return plan
}

// renumber rewrites the chapter number of an eval-chapter plan in place.
func renumber(plan []secPlan, num int) {
	if len(plan) == 0 {
		return
	}
	old := plan[0].number
	plan[0].number = fmt.Sprint(num)
	for i := 1; i < len(plan); i++ {
		if len(plan[i].number) > len(old) && plan[i].number[:len(old)] == old {
			plan[i].number = fmt.Sprint(num) + plan[i].number[len(old):]
		}
	}
}

// assemble converts the section plan into the Guide with aligned labels.
func assemble(reg Register, spec guideSpec, plan []secPlan) *Guide {
	g := &Guide{Register: reg}
	var sections []htmldoc.Section
	evalStart, evalEnd := -1, -1
	for _, sp := range plan {
		sec := htmldoc.Section{Number: sp.number, Title: sp.title, Level: sp.level}
		si := len(sections)
		for _, s := range sp.sents {
			sec.Blocks = append(sec.Blocks, s.text)
			if sp.inEval {
				if evalStart < 0 {
					evalStart = len(g.Sentences)
				}
				evalEnd = len(g.Sentences) + 1
			}
			g.Sentences = append(g.Sentences, htmldoc.Sentence{Text: s.text, Section: si})
			g.Labels = append(g.Labels, s.label)
		}
		sections = append(sections, sec)
	}
	g.Doc = htmldoc.FromBlocks(spec.title, sections)
	if evalStart < 0 {
		evalStart, evalEnd = 0, len(g.Sentences)
	}
	g.EvalStart, g.EvalEnd = evalStart, evalEnd
	return g
}
