package corpus

// sentenceTemplate is one slot-filled sentence pattern with its ground-truth
// category fixed by construction.
type sentenceTemplate struct {
	text      string
	category  Category
	ambiguous bool
	// egeriaTrap marks non-advising templates expected to fool Egeria's
	// selectors (they contain a flagging keyword in a descriptive context);
	// plain traps only fool the keyword baselines.
	egeriaTrap bool
}

// Slot keys used by the banks (filled from each topic pack's slot map):
//
//	{np}     a resource/concept noun phrase ("shared memory", "the LDS")
//	{np2}    a second noun phrase
//	{goalvp} a base-form improvement verb phrase WITHOUT key predicates
//	         ("increase the reuse of staged tiles")
//	{keyvp}  a base-form verb phrase STARTING with a KEY PREDICATE
//	         ("minimize the number of divergent warps")
//	{impvp}  a base-form verb phrase starting with an IMPERATIVE WORD
//	         ("use a multiple of the warp size")
//	{ger}    a gerund phrase ("padding the shared array")
//	{ger2}   a second gerund phrase
//	{cond}   a subordinate condition clause body ("the access pattern is regular")
//	{fact}   a declarative fact body ("each bank serves one request per cycle")
//	{unit}   a hardware unit noun ("multiprocessor")
//	{tool}   a tool/option noun phrase ("the occupancy calculator")
//	{num}    a small number word ("two")
//	{metric} a measurable quantity ("bandwidth utilization") — must avoid
//	         flagging bigrams like "high bandwidth"
//	{subject} a KEY SUBJECTS noun ("developers", "the application")
//
// Advising bank: each template reliably exhibits its category's pattern.
var advisingBank = []sentenceTemplate{
	// Category I — flagging keywords.
	{text: "{np} can be a good choice when {cond}.", category: CatKeyword},
	{text: "It is important to keep {np} busy while {np2} is in flight.", category: CatKeyword},
	{text: "{np} is desirable for kernels in which {cond}.", category: CatKeyword},
	{text: "One way to {goalvp} is {ger}.", category: CatKeyword},
	{text: "{ger} can help when {cond}.", category: CatKeyword},
	{text: "The key to sustained {metric} is {ger}.", category: CatKeyword},
	{text: "{ger} is a good idea whenever {cond}.", category: CatKeyword},
	{text: "{np} should stay within {np2} for the common case.", category: CatKeyword},
	{text: "{ger} can be useful when {cond}.", category: CatKeyword},
	{text: "Consider {ger} instead of {ger2} when {cond}.", category: CatKeyword},
	{text: "{ger} can lead to measurably higher {metric}.", category: CatKeyword},

	// Category II — comparative xcomp.
	{text: "It is more efficient to {impvp} than to rely on {np}.", category: CatComparative},
	{text: "It is recommended to {impvp} when {cond}.", category: CatComparative},
	{text: "It is often faster to {impvp} if {cond}.", category: CatComparative},
	{text: "A developer may prefer {ger} instead of {ger2} if {cond}.", category: CatComparative},
	{text: "It is usually beneficial to {impvp} before launching the kernel.", category: CatComparative},
	{text: "It is appropriate to {impvp} when {cond}.", category: CatComparative},

	// Category III — passive with xcomp governor.
	{text: "{np} can often be leveraged to {goalvp}.", category: CatPassive},
	{text: "{np} can be controlled using {tool}.", category: CatPassive},
	{text: "{subject} are encouraged to {impvp} during tuning.", category: CatPassive},
	{text: "{np} is required to stay resident while {cond}.", category: CatPassive, ambiguous: true},

	// Category IV — imperatives.
	{text: "Use {np} to {goalvp}.", category: CatImperative},
	{text: "Avoid {ger} inside the innermost loop.", category: CatImperative},
	{text: "Align {np} to the transaction size reported by {tool}.", category: CatImperative},
	{text: "Ensure that {cond} before enabling {np}.", category: CatImperative},
	{text: "Unroll the innermost loop when {cond}.", category: CatImperative},
	{text: "Pack small requests into {np} whenever {cond}.", category: CatImperative},
	{text: "Move {np} out of the critical path, then measure again with {tool}.", category: CatImperative},
	{text: "Schedule {np} ahead of {np2} so that the two phases overlap.", category: CatImperative},
	{text: "Map {np} onto {np2} so that neighboring threads touch neighboring words.", category: CatImperative},

	// Category V — key subjects.
	{text: "{subject} can {impvp} for the hot loops of the kernel.", category: CatSubject},
	{text: "{subject} should {impvp} once the profile confirms that {cond}.", category: CatSubject},
	{text: "{subject} can also {impvp} when {cond}.", category: CatSubject},
	{text: "For stable results, {subject} can {impvp} and compare against {tool}.", category: CatSubject},

	// Category VI — purpose clauses with key predicates.
	{text: "The first step in improving {metric} is to {keyvp}.", category: CatPurpose},
	{text: "To {keyvp}, stage {np} through {np2}.", category: CatPurpose},
	{text: "Tile the computation in order to {keyvp}.", category: CatPurpose},
	{text: "Restructure {np} so as to {keyvp}.", category: CatPurpose},
	{text: "Reorder the loop nest to {keyvp} on this {unit}.", category: CatPurpose},
	{text: "Split the work at the boundary to {keyvp}.", category: CatPurpose},
	{text: "Fuse the two passes in order to {keyvp}.", category: CatPurpose},

	// additional category I variants
	{text: "It is desirable to keep {np} warm between launches.", category: CatKeyword},
	{text: "{ger} should come first, before any change to {np2}.", category: CatKeyword, ambiguous: true},
	{text: "An effective way to {goalvp} is {ger}.", category: CatKeyword},
	{text: "{ger} can be important once {cond}.", category: CatKeyword},

	// additional category II variants
	{text: "It is best to {impvp} while the profile is still fresh.", category: CatComparative},
	{text: "It is more appropriate to {impvp} than to touch {np2}.", category: CatComparative},

	// additional category IV variants
	{text: "Call {tool} before and after {ger}.", category: CatImperative},
	{text: "Create {np} once and reuse it across launches.", category: CatImperative},
	{text: "Make {np} the unit of scheduling when {cond}.", category: CatImperative},
	{text: "Add padding to {np} until {cond}.", category: CatImperative},
	{text: "Select the variant of {np} that matches the {unit}.", category: CatImperative},

	// additional category V variants
	{text: "{subject} should verify with {tool} that {cond}.", category: CatSubject},
	{text: "{subject} can fall back to {np2} whenever {cond}.", category: CatSubject},
}

// hardAdvisingBank: genuinely advising content that matches none of the six
// patterns — the deliberate recall ceiling.
var hardAdvisingBank = []sentenceTemplate{
	{text: "Keeping {np} within {np2} pays off on every generation of this {unit}.", category: CatHard},
	{text: "Trading precision for speed yields gains when the result tolerates it.", category: CatHard},
	{text: "A layout that interleaves {np} with {np2} usually wins on this {unit}.", category: CatHard, ambiguous: true},
	{text: "Fewer, larger transfers beat many small ones in almost every workload.", category: CatHard},
	{text: "Warm caches make the second pass over {np} nearly free, a property worth engineering for.", category: CatHard, ambiguous: true},
	{text: "There is rarely a substitute for measuring {metric} directly with {tool}.", category: CatHard, ambiguous: true},
	{text: "Launch enough work per {unit} that scheduling gaps disappear.", category: CatHard},
	{text: "When in doubt, restructure the data rather than the code.", category: CatHard},
	{text: "Native functions run substantially faster, although at somewhat lower accuracy.", category: CatHard, ambiguous: true},
	{text: "Arithmetic that hides behind outstanding loads costs nothing extra.", category: CatHard, ambiguous: true},
	{text: "A cold start costs more than the steady state ever gives back, so warm {np} deliberately.", category: CatHard, ambiguous: true},
	{text: "The cheapest {metric} comes from work you never issue.", category: CatHard, ambiguous: true},
	{text: "Regularity beats cleverness on this {unit}; straight loops outrun branchy ones.", category: CatHard},
}

// explanatoryBank: non-advising sentences (architecture, definitions,
// mechanics). They avoid every keyword stem in the default configuration.
var explanatoryBank = []sentenceTemplate{
	{text: "Each {unit} contains {num} copies of {np}.", category: NonAdvising},
	{text: "{np} resides in {np2} and has a latency of several hundred cycles.", category: NonAdvising},
	{text: "The hardware splits {np} into {num} independent regions.", category: NonAdvising},
	{text: "When {cond}, the {unit} serializes the conflicting requests.", category: NonAdvising},
	{text: "{np} is shared by all threads of a block, while {np2} is private to each thread.", category: NonAdvising},
	{text: "The runtime tracks {np} and recycles it after the last reference.", category: NonAdvising},
	{text: "A request to {np} is decomposed into {num} transactions by the {unit}.", category: NonAdvising},
	{text: "In this generation, {np} and {np2} occupy the same physical storage.", category: NonAdvising},
	{text: "{fact}.", category: NonAdvising},
	{text: "The figure above illustrates how {np} flows through the {unit}.", category: NonAdvising},
	{text: "This subsection describes the interaction between {np} and {np2}.", category: NonAdvising},
	{text: "During a context switch, the {unit} drains {np} before resuming.", category: NonAdvising},
	{text: "{np} is visible to the host only after the event completes.", category: NonAdvising},
	{text: "The driver records the state of {np} at every synchronization point.", category: NonAdvising},
	{text: "Older devices exposed {np} through a separate address space.", category: NonAdvising},
	{text: "The compiler assigns {np} automatically during register allocation.", category: NonAdvising},
	{text: "{np} has no effect on correctness; it changes only the timing of {np2}.", category: NonAdvising},
	{text: "An example follows in which {cond}.", category: NonAdvising},
	{text: "The table lists the capacity of {np} for each revision of the {unit}.", category: NonAdvising},
	{text: "Execution time varies by instruction and is typically about {num} clock cycles.", category: NonAdvising},
	{text: "The format of {np} is described in the appendix.", category: NonAdvising},
	{text: "A miss in {np} costs roughly {num} times the hit time.", category: NonAdvising},
	{text: "{np} and {np2} communicate through a dedicated channel on this {unit}.", category: NonAdvising},
	{text: "The size of {np} is fixed at device initialization.", category: NonAdvising},
	{text: "Every revision of the {unit} doubles the capacity of {np}.", category: NonAdvising},
	{text: "The query interface exposes the state of {np} to the host.", category: NonAdvising},
	{text: "Earlier chapters explained how {np} interacts with {np2}.", category: NonAdvising},
	{text: "When {cond}, the {unit} raises a fault and halts the launch.", category: NonAdvising},
}

// trapBank: non-advising sentences containing keyword material. Those with
// egeriaTrap=true defeat the full pipeline (they satisfy a selector rule
// while a human would not call them advice); the rest only fool keyword
// baselines.
var trapBank = []sentenceTemplate{
	// keyword-only traps (Egeria's syntax/semantics reject them)
	{text: "This section provides some guidance for experienced programmers who are tuning {np} for the first time.", category: NonAdvising},
	{text: "The scalar unit can use up to {num} operand sources per cycle.", category: NonAdvising},
	{text: "Whether the transformation applies depends on how the programmer declared {np}.", category: NonAdvising},
	{text: "The previous chapter defined the techniques referenced below.", category: NonAdvising},
	{text: "The calculator selects {np} according to the device revision.", category: NonAdvising},
	{text: "Earlier revisions mapped {np} onto {np2} in reverse order.", category: NonAdvising},
	{text: "The glossary defines utilization, occupancy, and related optimization terminology.", category: NonAdvising},
	// Egeria-fooling traps: a rule fires, yet the content is descriptive.
	{text: "By default the driver should report {num} regions for {np}.", category: NonAdvising, egeriaTrap: true, ambiguous: true},
	{text: "Requests that miss go to {np2} instead, as the figure shows.", category: NonAdvising, egeriaTrap: true, ambiguous: true},
	{text: "The reported figure can be useful context when reading the tables below.", category: NonAdvising, egeriaTrap: true, ambiguous: true},
	{text: "The appendix is a good start for terminology questions.", category: NonAdvising, egeriaTrap: true, ambiguous: true},
	{text: "On revision {num} hardware, the application reaches the steady state after a warm-up pass.", category: NonAdvising, egeriaTrap: true, ambiguous: true},
	{text: "The developers of the runtime document this behavior in the release notes.", category: NonAdvising, egeriaTrap: true, ambiguous: true},
	{text: "A better interconnect arrived with the later revision of the {unit}.", category: NonAdvising, egeriaTrap: true, ambiguous: true},
	{text: "The programmer guide lists the capacity of {np} for each revision.", category: NonAdvising},
	{text: "Peak figures assume that {cond}, which rarely holds in practice.", category: NonAdvising, ambiguous: true},
}
